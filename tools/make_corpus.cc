// Regenerates the committed HDSL fuzz corpus (tests/corpus/). Each corpus file is one small
// recorded session chosen to cover a distinct slice of the log grammar: the default config,
// main_only (single-thread counter windows), second_phase_only + keep_traces (trace-heavy
// records), a fault-injected session (kCounterFault records, NaN counter diffs), and an
// async study-app session (the HDSL v4 kAsyncPost/kAsyncRun/kAsyncWaitStart/kAsyncWaitEnd
// records plus thread-tagged samples). A final entry, fleet_kb.hdsl3, interleaves the
// single-session logs into one HDSL v3 container with epoch-publish frames — the on-disk
// shape of a --shared-kb service run — so the fuzzer exercises the mux grammar too. All
// seeds are fixed, so the corpus is reproducible byte-for-byte; after regenerating, refresh
// tests/corpus/MANIFEST.sha256 (see scripts/check_corpus.sh).
//
// Usage: make_corpus <output-dir>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/faultsim/fault_plan.h"
#include "src/hosts/mux_log.h"
#include "src/workload/catalog.h"
#include "src/workload/fleet.h"

namespace {

struct CorpusEntry {
  const char* file;
  size_t app_index;
  uint64_t seed;
  bool main_only = false;
  bool second_phase_only = false;
  bool keep_traces = false;
  const char* fault_profile = nullptr;
  bool async = false;  // app_index picks from async_apps() instead of study_apps()
};

constexpr CorpusEntry kCorpus[] = {
    {"default.hdsl", 0, 101},
    {"main_only.hdsl", 1, 102, /*main_only=*/true},
    {"second_phase.hdsl", 2, 103, false, /*second_phase_only=*/true, /*keep_traces=*/true},
    {"faulty.hdsl", 3, 104, false, false, false, /*fault_profile=*/"flaky-counters"},
    {"async_session.hdsl", 0, 105, false, false, false, nullptr, /*async=*/true},
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 1;
  }
  const std::string dir = argv[1];
  std::filesystem::create_directories(dir);

  workload::Catalog catalog;
  hangdoctor::BlockingApiDatabase known_db = catalog.MakeKnownDatabase();
  for (const CorpusEntry& entry : kCorpus) {
    workload::FleetJob job;
    job.spec = entry.async ? catalog.async_apps()[entry.app_index]
                           : catalog.study_apps()[entry.app_index];
    job.profile = droidsim::LgV10();
    job.seed = entry.seed;
    job.session = simkit::Seconds(10);
    job.known_db = &known_db;
    job.doctor.main_only = entry.main_only;
    job.doctor.second_phase_only = entry.second_phase_only;
    job.doctor.keep_traces = entry.keep_traces;
    if (entry.fault_profile != nullptr) {
      job.faults = faultsim::FaultProfile::Named(entry.fault_profile);
    }
    job.record_path = dir + "/" + entry.file;
    workload::FleetJobResult result = workload::RunFleetJob(job);
    if (!result.ok || !result.record_ok) {
      std::fprintf(stderr, "recording %s failed: %s%s\n", entry.file, result.error.c_str(),
                   result.record_error.c_str());
      return 1;
    }
    std::printf("%s: %s, %ju bytes\n", entry.file, job.spec->name.c_str(),
                static_cast<uintmax_t>(std::filesystem::file_size(job.record_path)));
  }

  // Final entry: the single-session logs above, interleaved round-robin into one v3 container
  // with a kEpochPublish frame after every 7th session frame — the on-disk shape of a
  // --shared-kb DetectorService run. Deterministic because the inputs and the schedule are.
  std::vector<hangdoctor::SessionLogSlice> slices;
  std::vector<size_t> remaining;
  for (size_t i = 0; i < std::size(kCorpus); ++i) {
    hangdoctor::SessionLogSlice slice;
    slice.id = telemetry::SessionId{static_cast<uint64_t>(i + 1)};
    slice.bytes = ReadFile(dir + "/" + kCorpus[i].file);
    size_t frames = 0;
    std::string error;
    if (!hangdoctor::MuxFrameCount(slice.bytes, &frames, &error)) {
      std::fprintf(stderr, "framing %s failed: %s\n", kCorpus[i].file, error.c_str());
      return 1;
    }
    slices.push_back(std::move(slice));
    remaining.push_back(frames);
  }
  std::vector<size_t> schedule;
  size_t emitted = 0;
  for (bool pending = true; pending;) {
    pending = false;
    for (size_t s = 0; s < remaining.size(); ++s) {
      if (remaining[s] == 0) {
        continue;
      }
      --remaining[s];
      pending = pending || remaining[s] > 0;
      schedule.push_back(s);
      if (++emitted % 7 == 0) {
        schedule.push_back(hangdoctor::kMuxEpochPublish);
      }
    }
  }
  std::string mux;
  std::string error;
  if (!hangdoctor::MuxSessionLogs(slices, schedule, &mux, &error)) {
    std::fprintf(stderr, "muxing fleet_kb.hdsl3 failed: %s\n", error.c_str());
    return 1;
  }
  const std::string mux_path = dir + "/fleet_kb.hdsl3";
  std::ofstream out(mux_path, std::ios::binary | std::ios::trunc);
  out.write(mux.data(), static_cast<std::streamsize>(mux.size()));
  out.close();
  if (!out) {
    std::fprintf(stderr, "writing %s failed\n", mux_path.c_str());
    return 1;
  }
  std::printf("fleet_kb.hdsl3: %zu sessions multiplexed, %zu bytes\n", slices.size(),
              mux.size());
  return 0;
}
