// Regenerates the committed HDSL fuzz corpus (tests/corpus/). Each corpus file is one small
// recorded session chosen to cover a distinct slice of the log grammar: the default config,
// main_only (single-thread counter windows), second_phase_only + keep_traces (trace-heavy
// records), and a fault-injected session (kCounterFault records, NaN counter diffs). All
// seeds are fixed, so the corpus is reproducible byte-for-byte; after regenerating, refresh
// tests/corpus/MANIFEST.sha256 (see scripts/check_corpus.sh).
//
// Usage: make_corpus <output-dir>
#include <cstdio>
#include <filesystem>
#include <string>

#include "src/faultsim/fault_plan.h"
#include "src/workload/catalog.h"
#include "src/workload/fleet.h"

namespace {

struct CorpusEntry {
  const char* file;
  size_t app_index;
  uint64_t seed;
  bool main_only = false;
  bool second_phase_only = false;
  bool keep_traces = false;
  const char* fault_profile = nullptr;
};

constexpr CorpusEntry kCorpus[] = {
    {"default.hdsl", 0, 101},
    {"main_only.hdsl", 1, 102, /*main_only=*/true},
    {"second_phase.hdsl", 2, 103, false, /*second_phase_only=*/true, /*keep_traces=*/true},
    {"faulty.hdsl", 3, 104, false, false, false, /*fault_profile=*/"flaky-counters"},
};

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 1;
  }
  const std::string dir = argv[1];
  std::filesystem::create_directories(dir);

  workload::Catalog catalog;
  hangdoctor::BlockingApiDatabase known_db = catalog.MakeKnownDatabase();
  for (const CorpusEntry& entry : kCorpus) {
    workload::FleetJob job;
    job.spec = catalog.study_apps()[entry.app_index];
    job.profile = droidsim::LgV10();
    job.seed = entry.seed;
    job.session = simkit::Seconds(10);
    job.known_db = &known_db;
    job.doctor.main_only = entry.main_only;
    job.doctor.second_phase_only = entry.second_phase_only;
    job.doctor.keep_traces = entry.keep_traces;
    if (entry.fault_profile != nullptr) {
      job.faults = faultsim::FaultProfile::Named(entry.fault_profile);
    }
    job.record_path = dir + "/" + entry.file;
    workload::FleetJobResult result = workload::RunFleetJob(job);
    if (!result.ok || !result.record_ok) {
      std::fprintf(stderr, "recording %s failed: %s%s\n", entry.file, result.error.c_str(),
                   result.record_error.c_str());
      return 1;
    }
    std::printf("%s: %s, %ju bytes\n", entry.file, job.spec->name.c_str(),
                static_cast<uintmax_t>(std::filesystem::file_size(job.record_path)));
  }
  return 0;
}
