// hdsl_compact: fleet-log compaction and rollups over HDSL session logs.
//
//   hdsl_compact compact <log-dir> <archive>   # every *.hdsl in <log-dir> -> one HDSC file
//   hdsl_compact extract <archive> <out-dir>   # archive -> the original logs, byte-identical
//   hdsl_compact rollup  <archive> [out-dir]   # per-app + per-API CSV (stdout, or two files)
//
// Logs are taken in sorted file-name order, so the archive — and every rollup derived from
// it — is a deterministic function of the directory's contents.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "src/hosts/compact_log.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: hdsl_compact compact <log-dir> <archive>\n"
               "       hdsl_compact extract <archive> <out-dir>\n"
               "       hdsl_compact rollup  <archive> [out-dir]\n");
  return 2;
}

bool ReadFile(const std::filesystem::path& path, std::string* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path.string();
    return false;
  }
  out->assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return true;
}

bool WriteFile(const std::filesystem::path& path, const std::string& bytes,
               std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    *error = "cannot write " + path.string();
    return false;
  }
  return true;
}

int Compact(const std::string& dir, const std::string& archive_path) {
  std::string error;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".hdsl") {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<hangdoctor::CompactInput> logs(paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    logs[i].name = paths[i].filename().string();
    if (!ReadFile(paths[i], &logs[i].bytes, &error)) {
      std::fprintf(stderr, "hdsl_compact: %s\n", error.c_str());
      return 1;
    }
  }
  std::string archive;
  hangdoctor::CompactStats stats;
  if (!hangdoctor::CompactSessionLogs(logs, &archive, &stats, &error)) {
    std::fprintf(stderr, "hdsl_compact: %s\n", error.c_str());
    return 1;
  }
  if (!WriteFile(archive_path, archive, &error)) {
    std::fprintf(stderr, "hdsl_compact: %s\n", error.c_str());
    return 1;
  }
  std::printf("compacted %zu logs: %zu -> %zu bytes (%.1f%%), pool %zu strings / %zu bytes\n",
              stats.logs, stats.input_bytes, stats.output_bytes,
              stats.input_bytes > 0
                  ? 100.0 * static_cast<double>(stats.output_bytes) /
                        static_cast<double>(stats.input_bytes)
                  : 0.0,
              stats.pool_strings, stats.pool_bytes);
  return 0;
}

int Extract(const std::string& archive_path, const std::string& out_dir) {
  std::string error;
  std::string archive;
  if (!ReadFile(archive_path, &archive, &error)) {
    std::fprintf(stderr, "hdsl_compact: %s\n", error.c_str());
    return 1;
  }
  std::vector<hangdoctor::CompactInput> logs;
  if (!hangdoctor::ExtractCompactLog(archive, &logs, &error)) {
    std::fprintf(stderr, "hdsl_compact: %s\n", error.c_str());
    return 1;
  }
  std::filesystem::create_directories(out_dir);
  for (const hangdoctor::CompactInput& log : logs) {
    // Names came from filename() at compact time, but an archive is attacker-suppliable:
    // never let one escape the output directory.
    std::filesystem::path name(log.name);
    if (name.filename() != name || log.name.empty()) {
      std::fprintf(stderr, "hdsl_compact: refusing log name '%s'\n", log.name.c_str());
      return 1;
    }
    if (!WriteFile(std::filesystem::path(out_dir) / name, log.bytes, &error)) {
      std::fprintf(stderr, "hdsl_compact: %s\n", error.c_str());
      return 1;
    }
  }
  std::printf("extracted %zu logs to %s\n", logs.size(), out_dir.c_str());
  return 0;
}

int Rollup(const std::string& archive_path, const std::string& out_dir) {
  std::string error;
  std::string archive;
  if (!ReadFile(archive_path, &archive, &error)) {
    std::fprintf(stderr, "hdsl_compact: %s\n", error.c_str());
    return 1;
  }
  std::vector<hangdoctor::AppRollupRow> apps;
  std::vector<hangdoctor::ApiRollupRow> apis;
  if (!hangdoctor::RollupCompactLog(archive, &apps, &apis, &error)) {
    std::fprintf(stderr, "hdsl_compact: %s\n", error.c_str());
    return 1;
  }
  std::string app_csv = hangdoctor::RenderAppRollupCsv(apps);
  std::string api_csv = hangdoctor::RenderApiRollupCsv(apis);
  if (out_dir.empty()) {
    std::fputs(app_csv.c_str(), stdout);
    std::fputs("\n", stdout);
    std::fputs(api_csv.c_str(), stdout);
    return 0;
  }
  std::filesystem::create_directories(out_dir);
  if (!WriteFile(std::filesystem::path(out_dir) / "apps.csv", app_csv, &error) ||
      !WriteFile(std::filesystem::path(out_dir) / "apis.csv", api_csv, &error)) {
    std::fprintf(stderr, "hdsl_compact: %s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %s/apps.csv (%zu rows) and %s/apis.csv (%zu rows)\n", out_dir.c_str(),
              apps.size(), out_dir.c_str(), apis.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string command = argc > 1 ? argv[1] : "";
  if (command == "compact" && argc == 4) {
    return Compact(argv[2], argv[3]);
  }
  if (command == "extract" && argc == 4) {
    return Extract(argv[2], argv[3]);
  }
  if (command == "rollup" && (argc == 3 || argc == 4)) {
    return Rollup(argv[2], argc == 4 ? argv[3] : "");
  }
  return Usage();
}
