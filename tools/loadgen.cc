// loadgen: replays recorded HDSL session logs against a running hangdoctord.
//
// Usage:
//   loadgen --port=N [--dir=PATH | --file=LOG ...] [--connections=N] [--sessions=N]
//           [--rate=F] [--chunk=N] [--chaos] [--seed=N]
//
// --dir collects every *.hdsl file under PATH (sorted by name, session ids 1..N in that
// order); --file names logs explicitly. --sessions repeats the collected logs round-robin
// until N sessions exist (fresh ids), which is how a handful of recorded logs load-tests a
// thousand-session fleet. --chaos enables the seeded disconnect/torn-frame plan.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "src/hosts/mux_log.h"
#include "src/netd/loadgen.h"

namespace {

int64_t FlagValue(int argc, char** argv, const char* prefix, int64_t fallback) {
  size_t len = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, len) == 0) {
      return std::strtoll(argv[i] + len, nullptr, 10);
    }
  }
  return fallback;
}

double FlagDouble(int argc, char** argv, const char* prefix, double fallback) {
  size_t len = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, len) == 0) {
      return std::strtod(argv[i] + len, nullptr);
    }
  }
  return fallback;
}

bool ReadFile(const std::string& path, std::string* bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  bytes->assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  auto port = static_cast<uint16_t>(FlagValue(argc, argv, "--port=", 0));
  if (port == 0) {
    std::fprintf(stderr, "loadgen: --port=N is required\n");
    return 2;
  }

  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--file=", 7) == 0) {
      paths.emplace_back(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--dir=", 6) == 0) {
      std::filesystem::path dir(argv[i] + 6);
      for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() == ".hdsl") {
          paths.push_back(entry.path().string());
        }
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    std::fprintf(stderr, "loadgen: no session logs (--dir=PATH or --file=LOG)\n");
    return 2;
  }

  std::vector<std::string> logs(paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    if (!ReadFile(paths[i], &logs[i])) {
      std::fprintf(stderr, "loadgen: cannot read %s\n", paths[i].c_str());
      return 2;
    }
  }

  auto want = static_cast<size_t>(
      FlagValue(argc, argv, "--sessions=", static_cast<int64_t>(logs.size())));
  std::vector<hangdoctor::SessionLogSlice> sessions;
  sessions.reserve(want);
  for (size_t i = 0; i < want; ++i) {
    sessions.push_back({telemetry::SessionId{i + 1}, logs[i % logs.size()]});
  }

  netd::LoadGenOptions options;
  options.connections = static_cast<int32_t>(FlagValue(argc, argv, "--connections=", 1));
  options.rate = FlagDouble(argc, argv, "--rate=", 0.0);
  options.chunk = static_cast<size_t>(FlagValue(argc, argv, "--chunk=", 0));
  options.seed = static_cast<uint64_t>(FlagValue(argc, argv, "--seed=", 1));
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chaos") == 0) {
      options.chaos = true;
    }
  }

  netd::LoadGenResult result = netd::RunLoadGen(port, sessions, options);
  size_t completed = 0, chaos_dropped = 0, failed = 0;
  for (const auto& conn : result.connections) {
    if (conn.completed) {
      ++completed;
    } else if (conn.chaos_disconnect) {
      ++chaos_dropped;
    } else if (!conn.error.empty()) {
      ++failed;
      std::fprintf(stderr, "loadgen: connection error: %s\n", conn.error.c_str());
    }
  }
  std::printf(
      "loadgen: %zu sessions over %zu connections: %zu completed, %zu chaos-dropped, "
      "%zu failed; %lld closed, %lld busy, %lld errors\n",
      sessions.size(), result.connections.size(), completed, chaos_dropped, failed,
      static_cast<long long>(result.sessions_closed), static_cast<long long>(result.busy),
      static_cast<long long>(result.errors));
  return failed == 0 ? 0 : 1;
}
