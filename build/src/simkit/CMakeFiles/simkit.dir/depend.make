# Empty dependencies file for simkit.
# This may be replaced when dependencies are built.
