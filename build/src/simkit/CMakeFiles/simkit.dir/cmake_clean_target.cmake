file(REMOVE_RECURSE
  "libsimkit.a"
)
