
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simkit/event_queue.cc" "src/simkit/CMakeFiles/simkit.dir/event_queue.cc.o" "gcc" "src/simkit/CMakeFiles/simkit.dir/event_queue.cc.o.d"
  "/root/repo/src/simkit/logging.cc" "src/simkit/CMakeFiles/simkit.dir/logging.cc.o" "gcc" "src/simkit/CMakeFiles/simkit.dir/logging.cc.o.d"
  "/root/repo/src/simkit/rng.cc" "src/simkit/CMakeFiles/simkit.dir/rng.cc.o" "gcc" "src/simkit/CMakeFiles/simkit.dir/rng.cc.o.d"
  "/root/repo/src/simkit/simulation.cc" "src/simkit/CMakeFiles/simkit.dir/simulation.cc.o" "gcc" "src/simkit/CMakeFiles/simkit.dir/simulation.cc.o.d"
  "/root/repo/src/simkit/stats.cc" "src/simkit/CMakeFiles/simkit.dir/stats.cc.o" "gcc" "src/simkit/CMakeFiles/simkit.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
