file(REMOVE_RECURSE
  "CMakeFiles/simkit.dir/event_queue.cc.o"
  "CMakeFiles/simkit.dir/event_queue.cc.o.d"
  "CMakeFiles/simkit.dir/logging.cc.o"
  "CMakeFiles/simkit.dir/logging.cc.o.d"
  "CMakeFiles/simkit.dir/rng.cc.o"
  "CMakeFiles/simkit.dir/rng.cc.o.d"
  "CMakeFiles/simkit.dir/simulation.cc.o"
  "CMakeFiles/simkit.dir/simulation.cc.o.d"
  "CMakeFiles/simkit.dir/stats.cc.o"
  "CMakeFiles/simkit.dir/stats.cc.o.d"
  "libsimkit.a"
  "libsimkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
