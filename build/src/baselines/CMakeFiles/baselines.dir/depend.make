# Empty dependencies file for baselines.
# This may be replaced when dependencies are built.
