file(REMOVE_RECURSE
  "CMakeFiles/baselines.dir/combined_detector.cc.o"
  "CMakeFiles/baselines.dir/combined_detector.cc.o.d"
  "CMakeFiles/baselines.dir/offline_scanner.cc.o"
  "CMakeFiles/baselines.dir/offline_scanner.cc.o.d"
  "CMakeFiles/baselines.dir/timeout_detector.cc.o"
  "CMakeFiles/baselines.dir/timeout_detector.cc.o.d"
  "CMakeFiles/baselines.dir/utilization_detector.cc.o"
  "CMakeFiles/baselines.dir/utilization_detector.cc.o.d"
  "libbaselines.a"
  "libbaselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
