file(REMOVE_RECURSE
  "libbaselines.a"
)
