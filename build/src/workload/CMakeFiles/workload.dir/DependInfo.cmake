
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/api_catalog.cc" "src/workload/CMakeFiles/workload.dir/api_catalog.cc.o" "gcc" "src/workload/CMakeFiles/workload.dir/api_catalog.cc.o.d"
  "/root/repo/src/workload/catalog.cc" "src/workload/CMakeFiles/workload.dir/catalog.cc.o" "gcc" "src/workload/CMakeFiles/workload.dir/catalog.cc.o.d"
  "/root/repo/src/workload/experiment.cc" "src/workload/CMakeFiles/workload.dir/experiment.cc.o" "gcc" "src/workload/CMakeFiles/workload.dir/experiment.cc.o.d"
  "/root/repo/src/workload/filler_apps.cc" "src/workload/CMakeFiles/workload.dir/filler_apps.cc.o" "gcc" "src/workload/CMakeFiles/workload.dir/filler_apps.cc.o.d"
  "/root/repo/src/workload/ground_truth.cc" "src/workload/CMakeFiles/workload.dir/ground_truth.cc.o" "gcc" "src/workload/CMakeFiles/workload.dir/ground_truth.cc.o.d"
  "/root/repo/src/workload/motivation_apps.cc" "src/workload/CMakeFiles/workload.dir/motivation_apps.cc.o" "gcc" "src/workload/CMakeFiles/workload.dir/motivation_apps.cc.o.d"
  "/root/repo/src/workload/study_apps.cc" "src/workload/CMakeFiles/workload.dir/study_apps.cc.o" "gcc" "src/workload/CMakeFiles/workload.dir/study_apps.cc.o.d"
  "/root/repo/src/workload/training.cc" "src/workload/CMakeFiles/workload.dir/training.cc.o" "gcc" "src/workload/CMakeFiles/workload.dir/training.cc.o.d"
  "/root/repo/src/workload/user_model.cc" "src/workload/CMakeFiles/workload.dir/user_model.cc.o" "gcc" "src/workload/CMakeFiles/workload.dir/user_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/hangdoctor/CMakeFiles/hangdoctor.dir/DependInfo.cmake"
  "/root/repo/build/src/droidsim/CMakeFiles/droidsim.dir/DependInfo.cmake"
  "/root/repo/build/src/perfsim/CMakeFiles/perfsim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernelsim/CMakeFiles/kernelsim.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
