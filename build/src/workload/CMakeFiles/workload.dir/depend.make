# Empty dependencies file for workload.
# This may be replaced when dependencies are built.
