file(REMOVE_RECURSE
  "CMakeFiles/workload.dir/api_catalog.cc.o"
  "CMakeFiles/workload.dir/api_catalog.cc.o.d"
  "CMakeFiles/workload.dir/catalog.cc.o"
  "CMakeFiles/workload.dir/catalog.cc.o.d"
  "CMakeFiles/workload.dir/experiment.cc.o"
  "CMakeFiles/workload.dir/experiment.cc.o.d"
  "CMakeFiles/workload.dir/filler_apps.cc.o"
  "CMakeFiles/workload.dir/filler_apps.cc.o.d"
  "CMakeFiles/workload.dir/ground_truth.cc.o"
  "CMakeFiles/workload.dir/ground_truth.cc.o.d"
  "CMakeFiles/workload.dir/motivation_apps.cc.o"
  "CMakeFiles/workload.dir/motivation_apps.cc.o.d"
  "CMakeFiles/workload.dir/study_apps.cc.o"
  "CMakeFiles/workload.dir/study_apps.cc.o.d"
  "CMakeFiles/workload.dir/training.cc.o"
  "CMakeFiles/workload.dir/training.cc.o.d"
  "CMakeFiles/workload.dir/user_model.cc.o"
  "CMakeFiles/workload.dir/user_model.cc.o.d"
  "libworkload.a"
  "libworkload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
