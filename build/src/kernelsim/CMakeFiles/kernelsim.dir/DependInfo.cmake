
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernelsim/background_load.cc" "src/kernelsim/CMakeFiles/kernelsim.dir/background_load.cc.o" "gcc" "src/kernelsim/CMakeFiles/kernelsim.dir/background_load.cc.o.d"
  "/root/repo/src/kernelsim/io.cc" "src/kernelsim/CMakeFiles/kernelsim.dir/io.cc.o" "gcc" "src/kernelsim/CMakeFiles/kernelsim.dir/io.cc.o.d"
  "/root/repo/src/kernelsim/kernel.cc" "src/kernelsim/CMakeFiles/kernelsim.dir/kernel.cc.o" "gcc" "src/kernelsim/CMakeFiles/kernelsim.dir/kernel.cc.o.d"
  "/root/repo/src/kernelsim/memory.cc" "src/kernelsim/CMakeFiles/kernelsim.dir/memory.cc.o" "gcc" "src/kernelsim/CMakeFiles/kernelsim.dir/memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simkit/CMakeFiles/simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
