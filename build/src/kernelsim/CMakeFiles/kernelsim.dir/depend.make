# Empty dependencies file for kernelsim.
# This may be replaced when dependencies are built.
