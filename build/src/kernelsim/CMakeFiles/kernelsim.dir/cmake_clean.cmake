file(REMOVE_RECURSE
  "CMakeFiles/kernelsim.dir/background_load.cc.o"
  "CMakeFiles/kernelsim.dir/background_load.cc.o.d"
  "CMakeFiles/kernelsim.dir/io.cc.o"
  "CMakeFiles/kernelsim.dir/io.cc.o.d"
  "CMakeFiles/kernelsim.dir/kernel.cc.o"
  "CMakeFiles/kernelsim.dir/kernel.cc.o.d"
  "CMakeFiles/kernelsim.dir/memory.cc.o"
  "CMakeFiles/kernelsim.dir/memory.cc.o.d"
  "libkernelsim.a"
  "libkernelsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernelsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
