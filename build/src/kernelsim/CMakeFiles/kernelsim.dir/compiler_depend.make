# Empty compiler generated dependencies file for kernelsim.
# This may be replaced when dependencies are built.
