file(REMOVE_RECURSE
  "libkernelsim.a"
)
