# Empty dependencies file for hangdoctor.
# This may be replaced when dependencies are built.
