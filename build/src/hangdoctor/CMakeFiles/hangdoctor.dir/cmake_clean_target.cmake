file(REMOVE_RECURSE
  "libhangdoctor.a"
)
