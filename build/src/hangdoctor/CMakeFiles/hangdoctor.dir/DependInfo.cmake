
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hangdoctor/correlation.cc" "src/hangdoctor/CMakeFiles/hangdoctor.dir/correlation.cc.o" "gcc" "src/hangdoctor/CMakeFiles/hangdoctor.dir/correlation.cc.o.d"
  "/root/repo/src/hangdoctor/filter.cc" "src/hangdoctor/CMakeFiles/hangdoctor.dir/filter.cc.o" "gcc" "src/hangdoctor/CMakeFiles/hangdoctor.dir/filter.cc.o.d"
  "/root/repo/src/hangdoctor/hang_doctor.cc" "src/hangdoctor/CMakeFiles/hangdoctor.dir/hang_doctor.cc.o" "gcc" "src/hangdoctor/CMakeFiles/hangdoctor.dir/hang_doctor.cc.o.d"
  "/root/repo/src/hangdoctor/report.cc" "src/hangdoctor/CMakeFiles/hangdoctor.dir/report.cc.o" "gcc" "src/hangdoctor/CMakeFiles/hangdoctor.dir/report.cc.o.d"
  "/root/repo/src/hangdoctor/trace_analyzer.cc" "src/hangdoctor/CMakeFiles/hangdoctor.dir/trace_analyzer.cc.o" "gcc" "src/hangdoctor/CMakeFiles/hangdoctor.dir/trace_analyzer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/droidsim/CMakeFiles/droidsim.dir/DependInfo.cmake"
  "/root/repo/build/src/perfsim/CMakeFiles/perfsim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernelsim/CMakeFiles/kernelsim.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
