file(REMOVE_RECURSE
  "CMakeFiles/hangdoctor.dir/correlation.cc.o"
  "CMakeFiles/hangdoctor.dir/correlation.cc.o.d"
  "CMakeFiles/hangdoctor.dir/filter.cc.o"
  "CMakeFiles/hangdoctor.dir/filter.cc.o.d"
  "CMakeFiles/hangdoctor.dir/hang_doctor.cc.o"
  "CMakeFiles/hangdoctor.dir/hang_doctor.cc.o.d"
  "CMakeFiles/hangdoctor.dir/report.cc.o"
  "CMakeFiles/hangdoctor.dir/report.cc.o.d"
  "CMakeFiles/hangdoctor.dir/trace_analyzer.cc.o"
  "CMakeFiles/hangdoctor.dir/trace_analyzer.cc.o.d"
  "libhangdoctor.a"
  "libhangdoctor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hangdoctor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
