
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perfsim/counter_hub.cc" "src/perfsim/CMakeFiles/perfsim.dir/counter_hub.cc.o" "gcc" "src/perfsim/CMakeFiles/perfsim.dir/counter_hub.cc.o.d"
  "/root/repo/src/perfsim/events.cc" "src/perfsim/CMakeFiles/perfsim.dir/events.cc.o" "gcc" "src/perfsim/CMakeFiles/perfsim.dir/events.cc.o.d"
  "/root/repo/src/perfsim/perf_session.cc" "src/perfsim/CMakeFiles/perfsim.dir/perf_session.cc.o" "gcc" "src/perfsim/CMakeFiles/perfsim.dir/perf_session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernelsim/CMakeFiles/kernelsim.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
