file(REMOVE_RECURSE
  "CMakeFiles/perfsim.dir/counter_hub.cc.o"
  "CMakeFiles/perfsim.dir/counter_hub.cc.o.d"
  "CMakeFiles/perfsim.dir/events.cc.o"
  "CMakeFiles/perfsim.dir/events.cc.o.d"
  "CMakeFiles/perfsim.dir/perf_session.cc.o"
  "CMakeFiles/perfsim.dir/perf_session.cc.o.d"
  "libperfsim.a"
  "libperfsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
