file(REMOVE_RECURSE
  "libperfsim.a"
)
