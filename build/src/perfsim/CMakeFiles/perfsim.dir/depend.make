# Empty dependencies file for perfsim.
# This may be replaced when dependencies are built.
