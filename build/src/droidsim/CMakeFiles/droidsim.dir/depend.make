# Empty dependencies file for droidsim.
# This may be replaced when dependencies are built.
