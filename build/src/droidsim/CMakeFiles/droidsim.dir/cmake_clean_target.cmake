file(REMOVE_RECURSE
  "libdroidsim.a"
)
