file(REMOVE_RECURSE
  "CMakeFiles/droidsim.dir/api.cc.o"
  "CMakeFiles/droidsim.dir/api.cc.o.d"
  "CMakeFiles/droidsim.dir/app.cc.o"
  "CMakeFiles/droidsim.dir/app.cc.o.d"
  "CMakeFiles/droidsim.dir/device.cc.o"
  "CMakeFiles/droidsim.dir/device.cc.o.d"
  "CMakeFiles/droidsim.dir/looper.cc.o"
  "CMakeFiles/droidsim.dir/looper.cc.o.d"
  "CMakeFiles/droidsim.dir/op_executor.cc.o"
  "CMakeFiles/droidsim.dir/op_executor.cc.o.d"
  "CMakeFiles/droidsim.dir/phone.cc.o"
  "CMakeFiles/droidsim.dir/phone.cc.o.d"
  "CMakeFiles/droidsim.dir/render_thread.cc.o"
  "CMakeFiles/droidsim.dir/render_thread.cc.o.d"
  "CMakeFiles/droidsim.dir/stack_sampler.cc.o"
  "CMakeFiles/droidsim.dir/stack_sampler.cc.o.d"
  "libdroidsim.a"
  "libdroidsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droidsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
