
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/droidsim/api.cc" "src/droidsim/CMakeFiles/droidsim.dir/api.cc.o" "gcc" "src/droidsim/CMakeFiles/droidsim.dir/api.cc.o.d"
  "/root/repo/src/droidsim/app.cc" "src/droidsim/CMakeFiles/droidsim.dir/app.cc.o" "gcc" "src/droidsim/CMakeFiles/droidsim.dir/app.cc.o.d"
  "/root/repo/src/droidsim/device.cc" "src/droidsim/CMakeFiles/droidsim.dir/device.cc.o" "gcc" "src/droidsim/CMakeFiles/droidsim.dir/device.cc.o.d"
  "/root/repo/src/droidsim/looper.cc" "src/droidsim/CMakeFiles/droidsim.dir/looper.cc.o" "gcc" "src/droidsim/CMakeFiles/droidsim.dir/looper.cc.o.d"
  "/root/repo/src/droidsim/op_executor.cc" "src/droidsim/CMakeFiles/droidsim.dir/op_executor.cc.o" "gcc" "src/droidsim/CMakeFiles/droidsim.dir/op_executor.cc.o.d"
  "/root/repo/src/droidsim/phone.cc" "src/droidsim/CMakeFiles/droidsim.dir/phone.cc.o" "gcc" "src/droidsim/CMakeFiles/droidsim.dir/phone.cc.o.d"
  "/root/repo/src/droidsim/render_thread.cc" "src/droidsim/CMakeFiles/droidsim.dir/render_thread.cc.o" "gcc" "src/droidsim/CMakeFiles/droidsim.dir/render_thread.cc.o.d"
  "/root/repo/src/droidsim/stack_sampler.cc" "src/droidsim/CMakeFiles/droidsim.dir/stack_sampler.cc.o" "gcc" "src/droidsim/CMakeFiles/droidsim.dir/stack_sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernelsim/CMakeFiles/kernelsim.dir/DependInfo.cmake"
  "/root/repo/build/src/perfsim/CMakeFiles/perfsim.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
