file(REMOVE_RECURSE
  "CMakeFiles/table4_sensitivity.dir/table4_sensitivity.cc.o"
  "CMakeFiles/table4_sensitivity.dir/table4_sensitivity.cc.o.d"
  "table4_sensitivity"
  "table4_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
