# Empty compiler generated dependencies file for table4_sensitivity.
# This may be replaced when dependencies are built.
