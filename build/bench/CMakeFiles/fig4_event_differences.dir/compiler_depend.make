# Empty compiler generated dependencies file for fig4_event_differences.
# This may be replaced when dependencies are built.
