file(REMOVE_RECURSE
  "CMakeFiles/fig4_event_differences.dir/fig4_event_differences.cc.o"
  "CMakeFiles/fig4_event_differences.dir/fig4_event_differences.cc.o.d"
  "fig4_event_differences"
  "fig4_event_differences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_event_differences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
