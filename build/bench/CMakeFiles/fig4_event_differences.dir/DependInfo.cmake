
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_event_differences.cc" "bench/CMakeFiles/fig4_event_differences.dir/fig4_event_differences.cc.o" "gcc" "bench/CMakeFiles/fig4_event_differences.dir/fig4_event_differences.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/workload.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/hangdoctor/CMakeFiles/hangdoctor.dir/DependInfo.cmake"
  "/root/repo/build/src/droidsim/CMakeFiles/droidsim.dir/DependInfo.cmake"
  "/root/repo/build/src/perfsim/CMakeFiles/perfsim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernelsim/CMakeFiles/kernelsim.dir/DependInfo.cmake"
  "/root/repo/build/src/simkit/CMakeFiles/simkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
