# Empty compiler generated dependencies file for table3_correlation.
# This may be replaced when dependencies are built.
