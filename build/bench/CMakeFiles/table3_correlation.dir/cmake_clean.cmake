file(REMOVE_RECURSE
  "CMakeFiles/table3_correlation.dir/table3_correlation.cc.o"
  "CMakeFiles/table3_correlation.dir/table3_correlation.cc.o.d"
  "table3_correlation"
  "table3_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
