file(REMOVE_RECURSE
  "CMakeFiles/fig6_k9mail_example.dir/fig6_k9mail_example.cc.o"
  "CMakeFiles/fig6_k9mail_example.dir/fig6_k9mail_example.cc.o.d"
  "fig6_k9mail_example"
  "fig6_k9mail_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_k9mail_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
