# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig6_k9mail_example.
