# Empty compiler generated dependencies file for fig6_k9mail_example.
# This may be replaced when dependencies are built.
