file(REMOVE_RECURSE
  "CMakeFiles/fig8_detection_overhead.dir/fig8_detection_overhead.cc.o"
  "CMakeFiles/fig8_detection_overhead.dir/fig8_detection_overhead.cc.o.d"
  "fig8_detection_overhead"
  "fig8_detection_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_detection_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
