file(REMOVE_RECURSE
  "CMakeFiles/fig5_ctx_switch_trace.dir/fig5_ctx_switch_trace.cc.o"
  "CMakeFiles/fig5_ctx_switch_trace.dir/fig5_ctx_switch_trace.cc.o.d"
  "fig5_ctx_switch_trace"
  "fig5_ctx_switch_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ctx_switch_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
