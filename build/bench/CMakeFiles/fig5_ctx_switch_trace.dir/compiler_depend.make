# Empty compiler generated dependencies file for fig5_ctx_switch_trace.
# This may be replaced when dependencies are built.
