file(REMOVE_RECURSE
  "CMakeFiles/fig7_state_transitions.dir/fig7_state_transitions.cc.o"
  "CMakeFiles/fig7_state_transitions.dir/fig7_state_transitions.cc.o.d"
  "fig7_state_transitions"
  "fig7_state_transitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_state_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
