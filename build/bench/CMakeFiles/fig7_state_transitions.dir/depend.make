# Empty dependencies file for fig7_state_transitions.
# This may be replaced when dependencies are built.
