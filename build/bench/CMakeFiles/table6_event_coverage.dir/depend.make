# Empty dependencies file for table6_event_coverage.
# This may be replaced when dependencies are built.
