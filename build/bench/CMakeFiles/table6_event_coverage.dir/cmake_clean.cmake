file(REMOVE_RECURSE
  "CMakeFiles/table6_event_coverage.dir/table6_event_coverage.cc.o"
  "CMakeFiles/table6_event_coverage.dir/table6_event_coverage.cc.o.d"
  "table6_event_coverage"
  "table6_event_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_event_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
