file(REMOVE_RECURSE
  "CMakeFiles/table2_timeout_quality.dir/table2_timeout_quality.cc.o"
  "CMakeFiles/table2_timeout_quality.dir/table2_timeout_quality.cc.o.d"
  "table2_timeout_quality"
  "table2_timeout_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_timeout_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
