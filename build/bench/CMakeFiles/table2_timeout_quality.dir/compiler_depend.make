# Empty compiler generated dependencies file for table2_timeout_quality.
# This may be replaced when dependencies are built.
