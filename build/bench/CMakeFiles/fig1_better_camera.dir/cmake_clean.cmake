file(REMOVE_RECURSE
  "CMakeFiles/fig1_better_camera.dir/fig1_better_camera.cc.o"
  "CMakeFiles/fig1_better_camera.dir/fig1_better_camera.cc.o.d"
  "fig1_better_camera"
  "fig1_better_camera.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_better_camera.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
