# Empty compiler generated dependencies file for fig1_better_camera.
# This may be replaced when dependencies are built.
