# Empty dependencies file for table5_app_study.
# This may be replaced when dependencies are built.
