file(REMOVE_RECURSE
  "CMakeFiles/table5_app_study.dir/table5_app_study.cc.o"
  "CMakeFiles/table5_app_study.dir/table5_app_study.cc.o.d"
  "table5_app_study"
  "table5_app_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_app_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
