# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/simkit_test[1]_include.cmake")
include("/root/repo/build/tests/kernelsim_test[1]_include.cmake")
include("/root/repo/build/tests/perfsim_test[1]_include.cmake")
include("/root/repo/build/tests/droidsim_test[1]_include.cmake")
include("/root/repo/build/tests/hangdoctor_test[1]_include.cmake")
include("/root/repo/build/tests/hangdoctor_runtime_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/generality_test[1]_include.cmake")
