file(REMOVE_RECURSE
  "CMakeFiles/kernelsim_test.dir/kernelsim_test.cc.o"
  "CMakeFiles/kernelsim_test.dir/kernelsim_test.cc.o.d"
  "kernelsim_test"
  "kernelsim_test.pdb"
  "kernelsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernelsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
