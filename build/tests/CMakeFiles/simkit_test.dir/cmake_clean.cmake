file(REMOVE_RECURSE
  "CMakeFiles/simkit_test.dir/simkit_test.cc.o"
  "CMakeFiles/simkit_test.dir/simkit_test.cc.o.d"
  "simkit_test"
  "simkit_test.pdb"
  "simkit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simkit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
