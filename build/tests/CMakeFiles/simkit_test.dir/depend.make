# Empty dependencies file for simkit_test.
# This may be replaced when dependencies are built.
