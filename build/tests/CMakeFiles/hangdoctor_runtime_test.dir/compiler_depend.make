# Empty compiler generated dependencies file for hangdoctor_runtime_test.
# This may be replaced when dependencies are built.
