file(REMOVE_RECURSE
  "CMakeFiles/hangdoctor_runtime_test.dir/hangdoctor_runtime_test.cc.o"
  "CMakeFiles/hangdoctor_runtime_test.dir/hangdoctor_runtime_test.cc.o.d"
  "hangdoctor_runtime_test"
  "hangdoctor_runtime_test.pdb"
  "hangdoctor_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hangdoctor_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
