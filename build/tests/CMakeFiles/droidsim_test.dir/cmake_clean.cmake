file(REMOVE_RECURSE
  "CMakeFiles/droidsim_test.dir/droidsim_test.cc.o"
  "CMakeFiles/droidsim_test.dir/droidsim_test.cc.o.d"
  "droidsim_test"
  "droidsim_test.pdb"
  "droidsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droidsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
