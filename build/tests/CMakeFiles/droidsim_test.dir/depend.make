# Empty dependencies file for droidsim_test.
# This may be replaced when dependencies are built.
