# Empty compiler generated dependencies file for perfsim_test.
# This may be replaced when dependencies are built.
