file(REMOVE_RECURSE
  "CMakeFiles/perfsim_test.dir/perfsim_test.cc.o"
  "CMakeFiles/perfsim_test.dir/perfsim_test.cc.o.d"
  "perfsim_test"
  "perfsim_test.pdb"
  "perfsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
