# Empty compiler generated dependencies file for hangdoctor_test.
# This may be replaced when dependencies are built.
