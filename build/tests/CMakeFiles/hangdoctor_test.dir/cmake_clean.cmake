file(REMOVE_RECURSE
  "CMakeFiles/hangdoctor_test.dir/hangdoctor_test.cc.o"
  "CMakeFiles/hangdoctor_test.dir/hangdoctor_test.cc.o.d"
  "hangdoctor_test"
  "hangdoctor_test.pdb"
  "hangdoctor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hangdoctor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
