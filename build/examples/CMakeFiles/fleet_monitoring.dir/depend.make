# Empty dependencies file for fleet_monitoring.
# This may be replaced when dependencies are built.
