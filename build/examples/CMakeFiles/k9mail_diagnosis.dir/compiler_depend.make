# Empty compiler generated dependencies file for k9mail_diagnosis.
# This may be replaced when dependencies are built.
