file(REMOVE_RECURSE
  "CMakeFiles/k9mail_diagnosis.dir/k9mail_diagnosis.cpp.o"
  "CMakeFiles/k9mail_diagnosis.dir/k9mail_diagnosis.cpp.o.d"
  "k9mail_diagnosis"
  "k9mail_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k9mail_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
