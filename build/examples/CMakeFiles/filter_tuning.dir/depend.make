# Empty dependencies file for filter_tuning.
# This may be replaced when dependencies are built.
