file(REMOVE_RECURSE
  "CMakeFiles/filter_tuning.dir/filter_tuning.cpp.o"
  "CMakeFiles/filter_tuning.dir/filter_tuning.cpp.o.d"
  "filter_tuning"
  "filter_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
