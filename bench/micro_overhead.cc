// Micro-benchmarks (google-benchmark) of the hot paths a production Hang Doctor would execute
// on-device: per-action state lookups, the S-Checker filter, perf-session bracketing, stack
// sampling, trace analysis, and the offline trainer. These measure this repository's actual
// implementation, complementing the simulated-cost overheads of Figure 8(c).
#include <benchmark/benchmark.h>

#include "src/droidsim/phone.h"
#include "src/hangdoctor/action_state.h"
#include "src/hangdoctor/correlation.h"
#include "src/hangdoctor/filter.h"
#include "src/hangdoctor/trace_analyzer.h"
#include "src/perfsim/perf_session.h"
#include "src/simkit/event_queue.h"
#include "src/simkit/rng.h"
#include "src/workload/api_catalog.h"
#include "src/workload/catalog.h"

namespace {

void BM_ActionTableLookup(benchmark::State& state) {
  hangdoctor::ActionTable table;
  for (int32_t uid = 0; uid < 64; ++uid) {
    table.Lookup(uid);
  }
  int32_t uid = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Lookup(uid));
    uid = (uid + 1) & 63;
  }
}
BENCHMARK(BM_ActionTableLookup);

void BM_FilterHasSymptoms(benchmark::State& state) {
  hangdoctor::SoftHangFilter filter = hangdoctor::SoftHangFilter::Default();
  telemetry::CounterArray diffs{};
  diffs[static_cast<size_t>(telemetry::PerfEventType::kContextSwitches)] = -25.0;
  diffs[static_cast<size_t>(telemetry::PerfEventType::kTaskClock)] = 9.0e7;
  diffs[static_cast<size_t>(telemetry::PerfEventType::kPageFaults)] = 120.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.HasSymptoms(diffs));
  }
}
BENCHMARK(BM_FilterHasSymptoms);

void BM_PerfSessionBracket(benchmark::State& state) {
  droidsim::Phone phone(droidsim::LgV10(), 3);
  droidsim::ApiRegistry registry;
  workload::StandardApis apis = workload::BuildStandardApis(&registry);
  droidsim::AppSpec spec;
  spec.name = "bench";
  spec.package = "bench";
  droidsim::App* app = phone.InstallApp(&spec);
  (void)apis;
  hangdoctor::SoftHangFilter filter = hangdoctor::SoftHangFilter::Default();
  for (auto _ : state) {
    perfsim::PerfSession session(&phone.counter_hub(), phone.profile().pmu, 7);
    session.AddThread(app->main_tid());
    session.AddThread(app->render_tid());
    for (telemetry::PerfEventType event : filter.Events()) {
      session.AddEvent(event);
    }
    session.Start();
    session.Stop();
    double diff = 0.0;
    for (telemetry::PerfEventType event : filter.Events()) {
      diff += session.ReadDifference(app->main_tid(), app->render_tid(), event);
    }
    benchmark::DoNotOptimize(diff);
  }
}
BENCHMARK(BM_PerfSessionBracket);

std::vector<telemetry::StackTrace> MakeTraces(size_t count, droidsim::SymbolTable* symbols) {
  telemetry::FrameId click =
      symbols->Intern({"onItemClick", "", "MessageList.java", 371, false});
  telemetry::FrameId load =
      symbols->Intern({"loadMessage", "com.fsck.k9.MessageView", "MessageView.java", 120,
                       false});
  telemetry::FrameId clean =
      symbols->Intern({"clean", "org.htmlcleaner.HtmlCleaner", "HtmlSanitizer.java", 25, true});
  telemetry::FrameId set_text =
      symbols->Intern({"setText", "android.widget.TextView", "MessageView.java", 140, false});
  std::vector<telemetry::StackTrace> traces;
  for (size_t i = 0; i < count; ++i) {
    telemetry::StackTrace trace;
    trace.frames = {click, load, i % 10 != 0 ? clean : set_text};
    traces.push_back(std::move(trace));
  }
  return traces;
}

void BM_TraceAnalyzer60(benchmark::State& state) {
  hangdoctor::TraceAnalyzer analyzer;
  droidsim::SymbolTable symbols;
  std::vector<telemetry::StackTrace> traces = MakeTraces(60, &symbols);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.Analyze(traces, symbols));
  }
}
BENCHMARK(BM_TraceAnalyzer60);

void BM_RankEvents(benchmark::State& state) {
  simkit::Rng rng(9, 9);
  std::vector<hangdoctor::LabeledSample> samples;
  for (int i = 0; i < 200; ++i) {
    hangdoctor::LabeledSample sample;
    sample.is_bug = (i % 2) == 0;
    for (size_t e = 0; e < telemetry::kNumPerfEvents; ++e) {
      sample.readings[e] = rng.Normal(sample.is_bug ? 100.0 : -50.0, 80.0);
    }
    samples.push_back(sample);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hangdoctor::RankEvents(samples));
  }
}
BENCHMARK(BM_RankEvents);

void BM_EventQueueSchedule(benchmark::State& state) {
  simkit::EventQueue queue;
  int64_t t = 0;
  for (auto _ : state) {
    queue.ScheduleAt(++t, [] {});
    if (queue.Size() > 1024) {
      while (!queue.Empty()) {
        queue.RunNext();
      }
    }
  }
}
BENCHMARK(BM_EventQueueSchedule);

void BM_SimulatedSecondOfUserTime(benchmark::State& state) {
  workload::Catalog* catalog = new workload::Catalog();  // leak: bench process lifetime
  const droidsim::AppSpec* spec = catalog->FindApp("K9-Mail");
  droidsim::Phone phone(droidsim::LgV10(), 77);
  droidsim::App* app = phone.InstallApp(spec);
  int32_t uid = 0;
  for (auto _ : state) {
    app->PerformAction(uid % app->num_actions());
    ++uid;
    phone.RunFor(simkit::Seconds(1));
  }
}
BENCHMARK(BM_SimulatedSecondOfUserTime);

}  // namespace

BENCHMARK_MAIN();
