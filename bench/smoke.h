// Smoke-run scaling for the bench binaries. CI registers every bench as a `smoke`-labelled
// CTest with HANGDOCTOR_SMOKE=1 in the environment; the heavy benches shrink their budgets
// through these helpers so bit-rot is caught without paying the full benchmark cost.
#ifndef BENCH_SMOKE_H_
#define BENCH_SMOKE_H_

#include <cstdlib>

namespace bench {

inline bool SmokeRun() {
  const char* env = std::getenv("HANGDOCTOR_SMOKE");
  return env != nullptr && *env != '\0' && *env != '0';
}

// Full budget normally; the tiny budget under HANGDOCTOR_SMOKE.
template <typename T>
T SmokeScaled(T full, T smoke) {
  return SmokeRun() ? smoke : full;
}

}  // namespace bench

#endif  // BENCH_SMOKE_H_
