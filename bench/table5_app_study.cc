// Reproduces Table 5 of the paper: the in-the-wild study over 114 apps. Each study app runs
// on a small fleet of devices with Hang Doctor attached; the fleet report's diagnosed bugs are
// matched against the catalog's ground-truth BugSpecs, and a PerfChecker-style offline scan of
// the same apps determines which of Hang Doctor's findings offline detection would miss (MO).
//
// The (app × device) runs are independent, so they fan out across workload::RunFleet —
// pass --jobs=N (or set HANGDOCTOR_JOBS) to pick the worker count; the merged results are
// bit-identical at any parallelism level.
//
// Paper reference: 16 of 114 tested apps show soft hang bugs; Hang Doctor identifies 34 bugs,
// 23 of which (68%) are missed by the offline detector because their root causes are
// previously unknown blocking APIs or self-developed operations. (Developer confirmations —
// 62% in the paper — require real issue trackers and are out of scope here.)
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/smoke.h"
#include "src/baselines/offline_scanner.h"
#include "src/faultsim/fault_plan.h"
#include "src/faultsim/fleet_faults.h"
#include "src/hangdoctor/stream_guard.h"
#include "src/hosts/hang_doctor.h"
#include "src/workload/distributed_fleet.h"
#include "src/workload/experiment.h"
#include "src/workload/fleet.h"

namespace {

std::string BugKey(const std::string& api, const std::string& file, int32_t line) {
  return api + "@" + file + ":" + std::to_string(line);
}

std::string JobLogPath(const std::string& dir, size_t job_index) {
  return dir + "/job_" + std::to_string(job_index) + ".hdsl";
}

std::string Downloads(int64_t n) {
  if (n >= 1000000) {
    return std::to_string(n / 1000000) + "M+";
  }
  if (n >= 1000) {
    return std::to_string(n / 1000) + "K+";
  }
  return std::to_string(n) + "+";
}

}  // namespace

int main(int argc, char** argv) {
  // Every argument is validated up front: an unknown flag or a typo'd --app= name fails
  // loudly with the valid spellings instead of silently running the default study.
  static const char* const kValueFlags[] = {"--fleet-scale=", "--faults=", "--record=",
                                            "--replay=",      "--jobs=",   "--shards=",
                                            "--threads=",     "--kb-epoch=", "--app=",
                                            "--workers=",     "--migrate-at=",
                                            "--fleet-faults="};
  static const char* const kBareFlags[] = {"--shared-kb", "--service", "--async"};
  std::vector<std::string> app_filter;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    bool known = false;
    for (const char* flag : kBareFlags) {
      if (std::strcmp(arg, flag) == 0) {
        known = true;
        break;
      }
    }
    for (const char* flag : kValueFlags) {
      if (std::strncmp(arg, flag, std::strlen(flag)) == 0) {
        known = true;
        if (std::strcmp(flag, "--app=") == 0) {
          app_filter.emplace_back(arg + std::strlen(flag));
        }
        break;
      }
    }
    if (!known) {
      std::fprintf(stderr, "unknown flag %s; valid flags:", arg);
      for (const char* flag : kBareFlags) {
        std::fprintf(stderr, " %s", flag);
      }
      for (const char* flag : kValueFlags) {
        std::fprintf(stderr, " %sN", flag);
      }
      std::fprintf(stderr, "\n");
      return 2;
    }
  }

  // Mutually-incompatible combinations fail up front, before any simulation runs. A flag
  // that the chosen mode would silently ignore is an error, not a no-op: --replay re-runs
  // detectors from recorded logs on the per-job path, so it cannot record, inject faults,
  // or use the service-mode topology knobs; --kb-epoch only means something once
  // --shared-kb exists to publish on that cadence.
  {
    auto has_value = [&](const char* prefix) {
      size_t len = std::strlen(prefix);
      for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix, len) == 0) {
          return true;
        }
      }
      return false;
    };
    const bool replaying = has_value("--replay=");
    struct Conflict {
      bool active;
      const char* message;
    };
    const Conflict conflicts[] = {
        {replaying && has_value("--record="),
         "--record and --replay are mutually exclusive: a replayed fleet never runs the "
         "live simulation, so nothing would be recorded"},
        {replaying && has_value("--faults="),
         "--faults does nothing under --replay: faults are injected at simulation time "
         "and are already baked into (or absent from) the recorded logs"},
        {replaying && has_value("--threads="),
         "--threads does nothing under --replay: replay re-runs detectors on the per-job "
         "path, not the pipelined service ingest"},
        {replaying && workload::HasFlag(argc, argv, "--shared-kb"),
         "--shared-kb does nothing under --replay: replay re-runs detectors on the "
         "per-job path, which has no fleet-wide knowledge base"},
        {replaying && workload::HasFlag(argc, argv, "--service"),
         "--service does nothing under --replay: replay re-runs detectors on the per-job "
         "path, not the session-multiplexed service"},
        {has_value("--kb-epoch=") && !workload::HasFlag(argc, argv, "--shared-kb"),
         "--kb-epoch requires --shared-kb: the epoch cadence is the shared knowledge "
         "base's publish schedule"},
        {replaying && has_value("--workers="),
         "--workers does nothing under --replay: the distributed fleet records and "
         "streams its own logs"},
        {has_value("--migrate-at=") && !has_value("--workers="),
         "--migrate-at requires --workers: migration is a distributed-fleet event"},
        {has_value("--fleet-faults=") && !has_value("--workers="),
         "--fleet-faults requires --workers: worker crashes and heartbeat loss are "
         "distributed-fleet events"},
    };
    for (const Conflict& conflict : conflicts) {
      if (conflict.active) {
        std::fprintf(stderr, "%s\n", conflict.message);
        return 2;
      }
    }
  }

  // --fleet-scale=N multiplies the devices per study app: the same study at N× fleet size,
  // e.g. to exercise --shared-kb epoch churn at scale. Table counts scale with it, so the
  // default (1) is what the goldens pin.
  int32_t fleet_scale = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--fleet-scale=", 14) == 0) {
      fleet_scale = std::atoi(argv[i] + 14);
      if (fleet_scale < 1) {
        std::fprintf(stderr, "--fleet-scale must be >= 1, got %s\n", argv[i] + 14);
        return 2;
      }
    }
  }
  const int32_t devices_per_app = bench::SmokeScaled(4, 1) * fleet_scale;
  const simkit::SimDuration session_length =
      bench::SmokeScaled(simkit::Seconds(420), simkit::Seconds(60));

  workload::Catalog catalog;
  hangdoctor::BlockingApiDatabase known_db = catalog.MakeKnownDatabase();
  baselines::OfflineScanner scanner(&known_db);
  const bool async_section = workload::HasFlag(argc, argv, "--async");

  // Resolve --app= names against the catalog before anything runs. An async study app is a
  // valid spelling only under --async (it never appears in the Table 5 rows).
  std::vector<const droidsim::AppSpec*> study_specs = catalog.study_apps();
  std::vector<const droidsim::AppSpec*> async_specs =
      async_section ? catalog.async_apps() : std::vector<const droidsim::AppSpec*>{};
  if (!app_filter.empty()) {
    auto named = [&](const std::vector<const droidsim::AppSpec*>& specs,
                     const std::string& name) {
      for (const droidsim::AppSpec* spec : specs) {
        if (spec->name == name) {
          return true;
        }
      }
      return false;
    };
    for (const std::string& name : app_filter) {
      if (named(catalog.study_apps(), name) || named(async_specs, name)) {
        continue;
      }
      if (named(catalog.async_apps(), name)) {
        std::fprintf(stderr, "--app=%s names an async study app; pass --async to run it\n",
                     name.c_str());
        return 2;
      }
      std::fprintf(stderr, "unknown app '%s' for --app=; valid apps:", name.c_str());
      for (const droidsim::AppSpec* spec : catalog.study_apps()) {
        std::fprintf(stderr, " '%s'", spec->name.c_str());
      }
      for (const droidsim::AppSpec* spec : catalog.async_apps()) {
        std::fprintf(stderr, " '%s' (--async)", spec->name.c_str());
      }
      std::fprintf(stderr, "\n");
      return 2;
    }
    auto keep = [&](const droidsim::AppSpec* spec) {
      for (const std::string& name : app_filter) {
        if (spec->name == name) {
          return true;
        }
      }
      return false;
    };
    std::erase_if(study_specs, [&](const droidsim::AppSpec* s) { return !keep(s); });
    std::erase_if(async_specs, [&](const droidsim::AppSpec* s) { return !keep(s); });
  }

  // One fleet job per (study app, device); app i owns indices [i*devices, (i+1)*devices).
  std::vector<workload::FleetJob> jobs;
  for (const droidsim::AppSpec* spec : study_specs) {
    for (int32_t device = 0; device < devices_per_app; ++device) {
      workload::FleetJob job;
      job.spec = spec;
      job.profile = droidsim::LgV10();
      job.seed = 1000 + static_cast<uint64_t>(device) * 77 +
                 static_cast<uint64_t>(spec->downloads % 97);
      job.session = session_length;
      job.device_id = device;
      job.known_db = &known_db;
      jobs.push_back(job);
    }
  }

  // --faults=PROFILE injects seeded telemetry faults into every job (src/faultsim); with the
  // flag absent the profile is "none" and the output below is byte-identical to a build
  // without the fault layer.
  faultsim::FaultProfile faults;
  try {
    faults = workload::ResolveFaultProfile(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s; known profiles:", e.what());
    for (const std::string& name : faultsim::FaultProfile::KnownProfiles()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }
  if (faults.enabled()) {
    for (workload::FleetJob& job : jobs) {
      job.faults = faults;
    }
  }

  // --record=DIR taps every job's telemetry into DIR/job_<i>.hdsl (results unchanged);
  // --replay=DIR skips the live fleet and re-runs the detectors from those logs instead.
  const std::string record_dir = workload::ResolveRecordDir(argc, argv);
  const std::string replay_dir = workload::ResolveReplayDir(argc, argv);
  if (!record_dir.empty()) {
    std::filesystem::create_directories(record_dir);
    for (size_t i = 0; i < jobs.size(); ++i) {
      jobs[i].record_path = JobLogPath(record_dir, i);
    }
  }

  // The fleet always runs through the session-multiplexed DetectorService (bit-identical to
  // the per-job path at any shard count); --service --shards=N makes the topology explicit
  // and prints it. The fault-free default output stays byte-identical to the goldens.
  workload::FleetOptions options;
  options.jobs = workload::ResolveJobs(argc, argv);
  options.shards = workload::ResolveShards(argc, argv);
  // --threads=N switches service ingest to the pipelined two-phase path (simulate + capture
  // device-side, then stream every session through per-shard rings into N shard workers).
  // Results — and the output below — stay bit-identical; only an extra topology line is
  // printed, so the default output remains byte-identical to the goldens.
  try {
    options.threads = workload::ResolveThreads(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  // --shared-kb pools every job's discoveries and diagnosis memos through one
  // epoch-published KnowledgeBase (--kb-epoch=N picks the publish cadence). The table below
  // is bit-identical either way — the KB is advisory — so only the summary block at the end
  // is new output, keeping the default byte-identical to the goldens.
  const bool shared_kb = workload::HasFlag(argc, argv, "--shared-kb");
  if (shared_kb) {
    options.shared_kb = true;
    try {
      options.kb_epoch_sessions = workload::ResolveKbEpoch(argc, argv);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  const bool service_flag = workload::HasFlag(argc, argv, "--service");
  auto fleet_start = std::chrono::steady_clock::now();
  workload::FleetSummary summary;
  if (!replay_dir.empty()) {
    std::vector<std::string> paths;
    paths.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
      paths.push_back(JobLogPath(replay_dir, i));
    }
    summary = workload::ReplayFleet(paths, options, &known_db);
  } else {
    summary = workload::RunFleet(jobs, options);
  }
  double fleet_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - fleet_start).count();

  std::printf("=== Table 5: apps with soft hang problems (of %zu apps tested) ===\n",
              catalog.all_apps().size());
  std::printf("fleet phase: %zu jobs on %d worker(s) in %.2f s\n", jobs.size(),
              options.jobs, fleet_seconds);
  if (service_flag) {
    std::printf("service mode: one DetectorService, %d shard(s), %zu multiplexed sessions\n",
                options.shards > 0 ? options.shards : options.jobs, jobs.size());
  }
  if (options.threads > 0) {
    std::printf("pipelined ingest: %d shard worker(s), per-shard MPMC rings, two-phase "
                "capture+ingest\n",
                options.threads);
  }
  if (fleet_scale > 1) {
    std::printf("fleet scale: %dx (%d devices per study app)\n", fleet_scale,
                devices_per_app);
  }
  std::printf("\n");
  std::printf("%-16s %-12s %-16s %-7s %-9s %-9s\n", "App (downloads)", "Commit", "Category",
              "Issue", "BD (MO)", "paper");

  int64_t total_detected = 0;
  int64_t total_missed_offline = 0;
  int64_t total_expected = 0;
  int64_t buggy_apps = 0;

  for (size_t app_index = 0; app_index < study_specs.size(); ++app_index) {
    const droidsim::AppSpec* spec = study_specs[app_index];
    std::vector<workload::BugSpec> expected = catalog.BugsOf(spec->name);
    total_expected += static_cast<int64_t>(expected.size());

    hangdoctor::HangBugReport app_report = summary.MergeReports(
        app_index * static_cast<size_t>(devices_per_app),
        (app_index + 1) * static_cast<size_t>(devices_per_app));

    // Match diagnosed bugs against the expected list; count offline-missed ones.
    std::set<std::string> diagnosed;
    for (const hangdoctor::BugReportEntry& entry : app_report.SortedEntries()) {
      diagnosed.insert(BugKey(entry.api, entry.file, entry.line));
    }
    int64_t detected = 0;
    int64_t missed_offline = 0;
    int64_t expected_missed = 0;
    for (const workload::BugSpec& bug : expected) {
      if (bug.missed_offline) {
        ++expected_missed;
      }
      if (diagnosed.count(BugKey(bug.api, bug.file, bug.line)) == 0) {
        continue;
      }
      ++detected;
      if (!scanner.Detects(*spec, bug.api)) {
        ++missed_offline;
      }
    }
    total_detected += detected;
    total_missed_offline += missed_offline;
    if (detected > 0) {
      ++buggy_apps;
    }
    std::printf("%-16s %-12s %-16s %-7s %ld (%ld)    %zu (%ld)\n",
                (spec->name + " (" + Downloads(spec->downloads) + ")").c_str(),
                spec->commit.c_str(), spec->category.c_str(),
                expected.empty() ? "-" : catalog.BugsOf(spec->name)[0].issue_id.c_str(),
                static_cast<long>(detected), static_cast<long>(missed_offline),
                expected.size(), static_cast<long>(expected_missed));
    for (const workload::BugSpec& bug : expected) {
      if (diagnosed.count(BugKey(bug.api, bug.file, bug.line)) == 0) {
        std::printf("    !! expected bug not diagnosed: %s@%s:%d\n", bug.api.c_str(),
                    bug.file.c_str(), bug.line);
      }
    }
  }

  std::printf("\nTotal: %ld bugs detected (%ld missed by offline detection, %.0f%%)\n",
              static_cast<long>(total_detected), static_cast<long>(total_missed_offline),
              total_detected > 0 ? 100.0 * static_cast<double>(total_missed_offline) /
                                       static_cast<double>(total_detected)
                                 : 0.0);
  std::printf("paper: 34 bugs detected (23 missed offline, 68%%); %ld/%zu study apps showed "
              "bugs\n",
              static_cast<long>(buggy_apps), study_specs.size());
  std::printf("new blocking APIs discovered by the fleet at runtime: %zu\n\n",
              summary.discovered.size());
  std::printf("%s\n", summary.merged_report.Render(devices_per_app).c_str());

  // --workers=N runs the same study through a coordinator/worker shard group
  // (src/fleetd): the jobs are recorded once, streamed over the wire to N embedded worker
  // daemons, optionally drain-migrated mid-run (--migrate-at=K, percent of frames) or hit
  // with seeded worker faults (--fleet-faults=PROFILE), and the folded fleet report is
  // checked bit-for-bit against the in-process oracle. Opt-in, so the default output stays
  // byte-identical to the goldens.
  {
    int32_t fleet_workers = 0;
    double migrate_at = -1.0;
    std::string fleet_fault_name;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--workers=", 10) == 0) {
        fleet_workers = std::atoi(argv[i] + 10);
        if (fleet_workers < 1) {
          std::fprintf(stderr, "--workers must be >= 1, got %s\n", argv[i] + 10);
          return 2;
        }
      } else if (std::strncmp(argv[i], "--migrate-at=", 13) == 0) {
        migrate_at = std::atof(argv[i] + 13);
        if (migrate_at < 0.0 || migrate_at > 100.0) {
          std::fprintf(stderr, "--migrate-at must be a percentage in [0, 100], got %s\n",
                       argv[i] + 13);
          return 2;
        }
      } else if (std::strncmp(argv[i], "--fleet-faults=", 15) == 0) {
        fleet_fault_name = argv[i] + 15;
      }
    }
    if (fleet_workers > 0) {
      workload::DistributedFleetOptions fleet_options;
      fleet_options.workers = fleet_workers;
      fleet_options.migrate_at = migrate_at >= 0.0 ? migrate_at / 100.0 : -1.0;
      if (!fleet_fault_name.empty()) {
        try {
          fleet_options.fleet_faults = faultsim::FleetFaultProfile::Named(fleet_fault_name);
        } catch (const std::invalid_argument& e) {
          std::fprintf(stderr, "%s; known profiles:", e.what());
          for (const std::string& name : faultsim::FleetFaultProfile::KnownProfiles()) {
            std::fprintf(stderr, " %s", name.c_str());
          }
          std::fprintf(stderr, "\n");
          return 2;
        }
        fleet_options.fault_seed = 4242;
      }
      std::string fleet_dir =
          (std::filesystem::temp_directory_path() /
           ("hd_table5_fleet_" + std::to_string(getpid())))
              .string();
      auto fleet_t0 = std::chrono::steady_clock::now();
      workload::FleetSummary fleet_oracle;
      workload::DistributedFleetResult fleet =
          workload::RunDistributedFleet(jobs, fleet_dir, fleet_options, &fleet_oracle);
      double fleet_secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - fleet_t0).count();
      std::filesystem::remove_all(fleet_dir);

      size_t fleet_aborted = 0;
      for (const netd::NetSessionOutcome& outcome : fleet.outcomes) {
        fleet_aborted += outcome.aborted ? 1 : 0;
      }
      std::printf("=== Distributed fleet (--workers=%d) ===\n", fleet_workers);
      std::printf("%zu sessions over %d worker daemon(s), %lld frames routed in %.2f s\n",
                  fleet.outcomes.size(), fleet_workers,
                  static_cast<long long>(fleet.frames_routed), fleet_secs);
      std::printf("migrated %lld, recovered %lld, failovers %lld, aborted %zu\n",
                  static_cast<long long>(fleet.stats.migrated),
                  static_cast<long long>(fleet.stats.recovered),
                  static_cast<long long>(fleet.stats.failovers), fleet_aborted);
      for (const std::string& event : fleet.events) {
        std::printf("  event: %s\n", event.c_str());
      }
      bool identical = fleet.merged.Render(devices_per_app) ==
                       fleet_oracle.merged_report.Render(devices_per_app);
      std::printf("merged report vs in-process oracle: %s\n\n",
                  identical ? "bit-identical" : "MISMATCH");
      if (!identical) {
        return 1;
      }
    }
  }

  if (shared_kb) {
    const hangdoctor::KnowledgeBase::Stats& kb = summary.kb;
    const int64_t probes = kb.memo_hits + kb.memo_misses;
    std::printf("=== Shared knowledge base (--shared-kb) ===\n");
    std::printf("epoch %llu after %ld publish(es): %zu discovered APIs, %zu memo entries\n",
                static_cast<unsigned long long>(kb.epoch),
                static_cast<long>(kb.publishes), kb.discovered, kb.memo_entries);
    std::printf("memo hits %ld / misses %ld (hit rate %.1f%%), known-API hits %ld, "
                "%ld sessions absorbed\n",
                static_cast<long>(kb.memo_hits), static_cast<long>(kb.memo_misses),
                probes > 0 ? 100.0 * static_cast<double>(kb.memo_hits) /
                                 static_cast<double>(probes)
                           : 0.0,
                static_cast<long>(kb.known_hits), static_cast<long>(kb.sessions_absorbed));
    std::printf("\n");
  }

  // Degradation accounting — printed only under --faults so the fault-free output stays
  // byte-identical to the pinned goldens.
  if (faults.enabled()) {
    hangdoctor::DegradationStats total;
    int64_t degraded_jobs = 0;
    int64_t stream_errors = 0;
    int64_t record_failures = 0;
    for (const workload::FleetJobResult& result : summary.jobs) {
      if (!result.ok) {
        continue;
      }
      total.counter_open_failures += result.degradation.counter_open_failures;
      total.counter_retries += result.degradation.counter_retries;
      total.invalid_counter_windows += result.degradation.invalid_counter_windows;
      total.degraded_checks += result.degradation.degraded_checks;
      total.empty_trace_windows += result.degradation.empty_trace_windows;
      total.dropped_records += result.degradation.dropped_records;
      if (result.degradation.Degraded()) {
        ++degraded_jobs;
      }
      if (!result.stream_ok) {
        ++stream_errors;
      }
      if (!result.record_ok) {
        ++record_failures;
      }
    }
    std::printf("=== Fault injection: profile '%s' ===\n", faults.name.c_str());
    std::printf("degraded jobs: %ld/%zu  (stream errors: %ld, torn recordings: %ld)\n",
                static_cast<long>(degraded_jobs), summary.jobs.size(),
                static_cast<long>(stream_errors), static_cast<long>(record_failures));
    std::printf("counter opens failed: %ld  retries: %ld  invalid windows: %ld  degraded "
                "checks: %ld\n",
                static_cast<long>(total.counter_open_failures),
                static_cast<long>(total.counter_retries),
                static_cast<long>(total.invalid_counter_windows),
                static_cast<long>(total.degraded_checks));
    std::printf("empty trace windows: %ld  dropped records: %ld\n",
                static_cast<long>(total.empty_trace_windows),
                static_cast<long>(total.dropped_records));
    for (const workload::FleetJobResult& result : summary.jobs) {
      if (!result.ok || result.degradation.Degraded() || !result.stream_ok ||
          !result.record_ok) {
        std::printf("  %s\n", result.Describe().c_str());
      }
    }
  }

  // --async: the waiting-chain study (DESIGN.md section 3.8). A separate fleet over the
  // async study apps — soft hangs that happen on worker threads behind a future — verifying
  // that every diagnosis names the async culprit frame, never the Future.get frame the
  // main-thread traces show, with the wait site kept as provenance. Opt-in, so the default
  // output above stays byte-identical to the goldens.
  if (async_section) {
    std::vector<workload::FleetJob> async_jobs;
    for (const droidsim::AppSpec* spec : async_specs) {
      for (int32_t device = 0; device < devices_per_app; ++device) {
        workload::FleetJob job;
        job.spec = spec;
        job.profile = droidsim::LgV10();
        job.seed = 5000 + static_cast<uint64_t>(device) * 77 +
                   static_cast<uint64_t>(spec->downloads % 97);
        job.session = session_length;
        job.device_id = device;
        job.known_db = &known_db;
        if (faults.enabled()) {
          job.faults = faults;
        }
        if (!record_dir.empty()) {
          job.record_path = record_dir + "/async_job_" + std::to_string(async_jobs.size()) +
                            ".hdsl";
        }
        async_jobs.push_back(job);
      }
    }
    workload::FleetSummary async_summary;
    if (!replay_dir.empty()) {
      std::vector<std::string> paths;
      paths.reserve(async_jobs.size());
      for (size_t i = 0; i < async_jobs.size(); ++i) {
        paths.push_back(replay_dir + "/async_job_" + std::to_string(i) + ".hdsl");
      }
      async_summary = workload::ReplayFleet(paths, options, &known_db);
    } else {
      async_summary = workload::RunFleet(async_jobs, options);
    }

    std::printf("=== Async study (--async): waiting-chain diagnosis over %zu apps ===\n",
                async_specs.size());
    int64_t async_detected = 0;
    int64_t async_expected = 0;
    int64_t wait_frame_bugs = 0;
    const std::string wait_api = catalog.std_apis().future_get->FullName();
    for (size_t app_index = 0; app_index < async_specs.size(); ++app_index) {
      const droidsim::AppSpec* spec = async_specs[app_index];
      std::vector<workload::BugSpec> expected = catalog.BugsOf(spec->name);
      async_expected += static_cast<int64_t>(expected.size());
      hangdoctor::HangBugReport app_report = async_summary.MergeReports(
          app_index * static_cast<size_t>(devices_per_app),
          (app_index + 1) * static_cast<size_t>(devices_per_app));
      const std::vector<hangdoctor::BugReportEntry> entries = app_report.SortedEntries();
      for (const hangdoctor::BugReportEntry& entry : entries) {
        if (entry.api == wait_api) {
          // A diagnosis pinned on the wait frame means the causal walk failed.
          ++wait_frame_bugs;
          std::printf("  !! %s: wait frame misattributed as culprit: %s@%s:%d\n",
                      spec->name.c_str(), entry.api.c_str(), entry.file.c_str(), entry.line);
        }
      }
      for (const workload::BugSpec& bug : expected) {
        const hangdoctor::BugReportEntry* match = nullptr;
        for (const hangdoctor::BugReportEntry& entry : entries) {
          if (BugKey(entry.api, entry.file, entry.line) == BugKey(bug.api, bug.file, bug.line)) {
            match = &entry;
            break;
          }
        }
        if (match == nullptr) {
          std::printf("  !! %s: expected async bug not diagnosed: %s@%s:%d\n",
                      spec->name.c_str(), bug.api.c_str(), bug.file.c_str(), bug.line);
          continue;
        }
        ++async_detected;
        std::printf("%-12s %s@%s:%d%s\n", spec->name.c_str(), match->api.c_str(),
                    match->file.c_str(), match->line,
                    match->self_developed ? " [self-developed]" : "");
        std::printf("%-12s   via wait %s (hangs: %ld, mean %.0f ms)\n", "",
                    match->wait_site.empty() ? "<missing>" : match->wait_site.c_str(),
                    static_cast<long>(match->occurrences), match->MeanHangMs());
      }
    }
    std::printf("async bugs diagnosed: %ld/%ld, wait-frame misattributions: %ld\n\n",
                static_cast<long>(async_detected), static_cast<long>(async_expected),
                static_cast<long>(wait_frame_bugs));
  }
  return 0;
}
