// Reproduces Table 5 of the paper: the in-the-wild study over 114 apps. Each study app runs
// on a small fleet of devices with Hang Doctor attached; the fleet report's diagnosed bugs are
// matched against the catalog's ground-truth BugSpecs, and a PerfChecker-style offline scan of
// the same apps determines which of Hang Doctor's findings offline detection would miss (MO).
//
// Paper reference: 16 of 114 tested apps show soft hang bugs; Hang Doctor identifies 34 bugs,
// 23 of which (68%) are missed by the offline detector because their root causes are
// previously unknown blocking APIs or self-developed operations. (Developer confirmations —
// 62% in the paper — require real issue trackers and are out of scope here.)
#include <cstdio>
#include <set>
#include <string>

#include "src/baselines/offline_scanner.h"
#include "src/hangdoctor/hang_doctor.h"
#include "src/workload/experiment.h"

namespace {

constexpr int32_t kDevicesPerApp = 4;
constexpr simkit::SimDuration kSessionLength = simkit::Seconds(420);

std::string BugKey(const std::string& api, const std::string& file, int32_t line) {
  return api + "@" + file + ":" + std::to_string(line);
}

std::string Downloads(int64_t n) {
  if (n >= 1000000) {
    return std::to_string(n / 1000000) + "M+";
  }
  if (n >= 1000) {
    return std::to_string(n / 1000) + "K+";
  }
  return std::to_string(n) + "+";
}

}  // namespace

int main() {
  workload::Catalog catalog;
  hangdoctor::BlockingApiDatabase known_db = catalog.MakeKnownDatabase();
  // The runtime side updates a copy so the offline scan below reflects pre-study knowledge.
  hangdoctor::BlockingApiDatabase runtime_db = catalog.MakeKnownDatabase();
  baselines::OfflineScanner scanner(&known_db);

  std::printf("=== Table 5: apps with soft hang problems (of %zu apps tested) ===\n\n",
              catalog.all_apps().size());
  std::printf("%-16s %-12s %-16s %-7s %-9s %-9s\n", "App (downloads)", "Commit", "Category",
              "Issue", "BD (MO)", "paper");

  int64_t total_detected = 0;
  int64_t total_missed_offline = 0;
  int64_t total_expected = 0;
  int64_t buggy_apps = 0;
  hangdoctor::HangBugReport fleet_report;

  for (const droidsim::AppSpec* spec : catalog.study_apps()) {
    std::vector<workload::BugSpec> expected = catalog.BugsOf(spec->name);
    total_expected += static_cast<int64_t>(expected.size());

    // Run the app on a handful of user devices, merging every device's findings.
    hangdoctor::HangBugReport app_report;
    for (int32_t device = 0; device < kDevicesPerApp; ++device) {
      workload::SingleAppHarness harness(droidsim::LgV10(), spec,
                                         /*seed=*/1000 + device * 77 +
                                             static_cast<uint64_t>(spec->downloads % 97));
      hangdoctor::HangDoctor doctor(&harness.phone(), &harness.app(),
                                    hangdoctor::HangDoctorConfig{}, &runtime_db, &app_report,
                                    device);
      harness.RunUserSession(kSessionLength);
    }
    fleet_report.Merge(app_report);

    // Match diagnosed bugs against the expected list; count offline-missed ones.
    std::set<std::string> diagnosed;
    for (const hangdoctor::BugReportEntry& entry : app_report.SortedEntries()) {
      diagnosed.insert(BugKey(entry.api, entry.file, entry.line));
    }
    int64_t detected = 0;
    int64_t missed_offline = 0;
    int64_t expected_missed = 0;
    for (const workload::BugSpec& bug : expected) {
      if (bug.missed_offline) {
        ++expected_missed;
      }
      if (diagnosed.count(BugKey(bug.api, bug.file, bug.line)) == 0) {
        continue;
      }
      ++detected;
      if (!scanner.Detects(*spec, bug.api)) {
        ++missed_offline;
      }
    }
    total_detected += detected;
    total_missed_offline += missed_offline;
    if (detected > 0) {
      ++buggy_apps;
    }
    std::printf("%-16s %-12s %-16s %-7s %ld (%ld)    %zu (%ld)\n",
                (spec->name + " (" + Downloads(spec->downloads) + ")").c_str(),
                spec->commit.c_str(), spec->category.c_str(),
                expected.empty() ? "-" : catalog.BugsOf(spec->name)[0].issue_id.c_str(),
                static_cast<long>(detected), static_cast<long>(missed_offline),
                expected.size(), static_cast<long>(expected_missed));
    for (const workload::BugSpec& bug : expected) {
      if (diagnosed.count(BugKey(bug.api, bug.file, bug.line)) == 0) {
        std::printf("    !! expected bug not diagnosed: %s@%s:%d\n", bug.api.c_str(),
                    bug.file.c_str(), bug.line);
      }
    }
  }

  std::printf("\nTotal: %ld bugs detected (%ld missed by offline detection, %.0f%%)\n",
              static_cast<long>(total_detected), static_cast<long>(total_missed_offline),
              total_detected > 0 ? 100.0 * static_cast<double>(total_missed_offline) /
                                       static_cast<double>(total_detected)
                                 : 0.0);
  std::printf("paper: 34 bugs detected (23 missed offline, 68%%); %ld/%zu study apps showed "
              "bugs\n",
              static_cast<long>(buggy_apps), catalog.study_apps().size());
  std::printf("new blocking APIs added to the offline database at runtime: %zu\n\n",
              runtime_db.discovered().size());
  std::printf("%s\n", fleet_report.Render(kDevicesPerApp).c_str());
  return 0;
}
