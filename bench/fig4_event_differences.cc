// Reproduces Figure 4 of the paper: the per-sample main−render differences of the three
// filter events (context-switches, task-clock, page-faults) over the training set, sorted
// descending, with soft-hang-bug samples (HB) and UI-API samples listed separately.
//
// Paper reference shapes:
//   (a) ~90% of HB samples have a positive context-switch difference; ~90% of UI-API samples
//       have a negative one.
//   (b) ~80% of HB samples exceed a 1.7e8 ns task-clock difference, more than twice the UI
//       80th percentile.
//   (c) ~90% of HB samples exceed a 500 page-fault difference, more than twice the UI 80th
//       percentile.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/simkit/stats.h"
#include "src/workload/training.h"

namespace {

void PrintSeries(const char* title, telemetry::PerfEventType event, double threshold,
                 const std::vector<hangdoctor::LabeledSample>& samples) {
  std::vector<double> bug_values;
  std::vector<double> ui_values;
  auto idx = static_cast<size_t>(event);
  for (const hangdoctor::LabeledSample& sample : samples) {
    (sample.is_bug ? bug_values : ui_values).push_back(sample.readings[idx]);
  }
  std::sort(bug_values.rbegin(), bug_values.rend());
  std::sort(ui_values.rbegin(), ui_values.rend());
  std::printf("%s (threshold %.3g)\n", title, threshold);
  std::printf("  %-28s %10s %10s\n", "series (sorted desc)", "HB", "UI-API");
  size_t rows = std::max(bug_values.size(), ui_values.size());
  for (size_t i = 0; i < rows; i += 8) {
    std::printf("  sample %3zu                   %10.3g %10.3g\n", i,
                i < bug_values.size() ? bug_values[i] : 0.0,
                i < ui_values.size() ? ui_values[i] : 0.0);
  }
  auto above = [threshold](const std::vector<double>& xs) {
    size_t n = 0;
    for (double x : xs) {
      if (x > threshold) {
        ++n;
      }
    }
    return xs.empty() ? 0.0 : 100.0 * static_cast<double>(n) / static_cast<double>(xs.size());
  };
  std::printf("  HB above threshold: %.0f%%   UI-API above threshold: %.0f%%\n",
              above(bug_values), above(ui_values));
  std::printf("  HB p50=%.3g p20=%.3g | UI p80=%.3g p50=%.3g\n\n",
              simkit::Percentile(bug_values, 50), simkit::Percentile(bug_values, 20),
              simkit::Percentile(ui_values, 80), simkit::Percentile(ui_values, 50));
}

}  // namespace

int main() {
  workload::Catalog catalog;
  workload::TrainingConfig config;
  workload::TrainingData data = workload::CollectTrainingSamples(catalog, config);
  std::printf("=== Figure 4: filter-event differences over the training set (%zu hangs) ===\n\n",
              data.diff_samples.size());
  PrintSeries("(a) Context-Switch Difference", telemetry::PerfEventType::kContextSwitches, 0.0,
              data.diff_samples);
  PrintSeries("(b) Task-Clock Difference", telemetry::PerfEventType::kTaskClock, 1.7e8,
              data.diff_samples);
  PrintSeries("(c) Page-Fault Difference", telemetry::PerfEventType::kPageFaults, 500.0,
              data.diff_samples);
  return 0;
}
