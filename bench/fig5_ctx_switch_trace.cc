// Reproduces Figure 5 of the paper: context-switch counts of the main and render threads over
// time for (a) an action hanging on a soft hang bug (K9-mail's HtmlCleaner.clean) and (b) an
// action hanging on legitimate UI work (K9-mail's Folders). The paper's point: early in a UI
// action the main thread runs developer code before feeding the render thread, so the first
// few hundred ms *look* like a bug — which is why S-Checker accumulates counters until the
// end of the action instead of sampling early (Section 3.3.1, "Discussion").
#include <cstdio>
#include <vector>

#include "src/droidsim/phone.h"
#include "src/perfsim/counter_hub.h"
#include "src/workload/catalog.h"

namespace {

struct Series {
  std::vector<double> main_ctx;
  std::vector<double> render_ctx;
};

// Runs one execution of `action`, sampling cumulative context switches every 100 ms.
Series TraceAction(const workload::Catalog& catalog, const char* app_name, const char* action,
                   uint64_t seed) {
  const droidsim::AppSpec* spec = catalog.FindApp(app_name);
  droidsim::Phone phone(droidsim::LgV10(), seed);
  droidsim::App* app = phone.InstallApp(spec);
  int32_t uid = -1;
  for (int32_t i = 0; i < app->num_actions(); ++i) {
    if (app->action(i).name == action) {
      uid = i;
    }
  }
  Series series;
  double main0 = phone.counter_hub().Value(app->main_tid(),
                                           telemetry::PerfEventType::kContextSwitches);
  double render0 = phone.counter_hub().Value(app->render_tid(),
                                             telemetry::PerfEventType::kContextSwitches);
  app->PerformAction(uid);
  for (int step = 0; step < 20; ++step) {
    phone.RunFor(simkit::Milliseconds(100));
    series.main_ctx.push_back(phone.counter_hub().Value(
                                  app->main_tid(), telemetry::PerfEventType::kContextSwitches) -
                              main0);
    series.render_ctx.push_back(
        phone.counter_hub().Value(app->render_tid(),
                                  telemetry::PerfEventType::kContextSwitches) -
        render0);
  }
  return series;
}

void Print(const char* title, const Series& series) {
  std::printf("%s\n  %-8s %12s %12s %12s\n", title, "time(s)", "main", "render", "difference");
  for (size_t i = 0; i < series.main_ctx.size(); ++i) {
    std::printf("  %-8.1f %12.0f %12.0f %12.0f\n", 0.1 * static_cast<double>(i + 1),
                series.main_ctx[i], series.render_ctx[i],
                series.main_ctx[i] - series.render_ctx[i]);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  workload::Catalog catalog;
  std::printf("=== Figure 5: cumulative context switches, main vs render thread ===\n\n");
  // (a) A real soft hang bug: clean parses a heavy HTML email on the main thread.
  Series bug = TraceAction(catalog, "K9-Mail", "OpenEmail", /*seed=*/12);
  Print("(a) soft hang bug action (OpenEmail / HtmlCleaner.clean)", bug);
  // (b) A UI-operation hang: Folders inflates and lays out the folder list.
  Series ui = TraceAction(catalog, "K9-Mail", "Folders", /*seed=*/12);
  Print("(b) UI-API action (Folders / inflate + layoutChildren)", ui);

  size_t early = 2;  // 300 ms in
  std::printf("shape check: bug diff early %+.0f -> end %+.0f; UI diff early %+.0f -> end "
              "%+.0f (paper: the UI action looks bug-like early and negative by the end)\n",
              bug.main_ctx[early] - bug.render_ctx[early],
              bug.main_ctx.back() - bug.render_ctx.back(),
              ui.main_ctx[early] - ui.render_ctx[early],
              ui.main_ctx.back() - ui.render_ctx.back());
  return 0;
}
