// Reproduces Table 3 of the paper: the top-10 performance events by Pearson correlation with
// soft hang bugs over the training set (10 well-known bugs + 11 UI-APIs), for
//   (a) main thread − render thread differences, and
//   (b) main thread only,
// plus the Section 3.3.1 appendix numbers: the trained filter's quality on the training set
// (the paper: 100% of bugs kept, 64% of UI false positives pruned, 81% accuracy).
//
// Paper reference values (LG V10): (a) context-switches 0.658, task-clock 0.632, cpu-clock
// 0.632, page-faults 0.561, ..., average of top-10 0.545; (b) average of top-10 0.472. The
// expected *shape*: kernel software events lead the ranking, and differencing against the
// render thread beats main-only by a clear margin on average.
#include <cstdio>

#include "src/hangdoctor/correlation.h"
#include "src/workload/training.h"

namespace {

void PrintTopTen(const char* title, const std::vector<hangdoctor::RankedEvent>& ranking) {
  std::printf("%s\n", title);
  std::printf("  %-26s %s\n", "Performance Event", "Corr. Coeff.");
  double sum = 0.0;
  for (size_t i = 0; i < 10 && i < ranking.size(); ++i) {
    std::printf("  %-26s %.3f\n", telemetry::PerfEventName(ranking[i].event).c_str(),
                ranking[i].correlation);
    sum += ranking[i].correlation;
  }
  std::printf("  %-26s %.3f\n\n", "Average (top-10)", sum / 10.0);
}

}  // namespace

int main() {
  workload::Catalog catalog;
  workload::TrainingConfig config;
  workload::TrainingData data = workload::CollectTrainingSamples(catalog, config);
  std::printf("=== Table 3: correlation analysis for S-Checker design ===\n");
  std::printf("training samples: %zu soft hangs (device: %s)\n\n", data.diff_samples.size(),
              config.profile.model.c_str());

  std::vector<hangdoctor::RankedEvent> diff_ranking = hangdoctor::RankEvents(data.diff_samples);
  std::vector<hangdoctor::RankedEvent> main_ranking =
      hangdoctor::RankEvents(data.main_only_samples);
  PrintTopTen("(a) Main Thread - Render Thread", diff_ranking);
  PrintTopTen("(b) Only Main Thread", main_ranking);

  std::printf("(appendix) full ranking, main - render:\n");
  for (const hangdoctor::RankedEvent& ranked : diff_ranking) {
    std::printf("  %-26s %.3f\n", telemetry::PerfEventName(ranked.event).c_str(),
                ranked.correlation);
  }
  std::printf("\n");

  // Section 3.3.1: train the filter on the ranked events and evaluate it on the training set.
  hangdoctor::SoftHangFilter trained =
      hangdoctor::TrainFilter(data.diff_samples, diff_ranking);
  hangdoctor::FilterQuality trained_quality =
      hangdoctor::EvaluateFilter(trained, data.diff_samples);
  std::printf("Trained filter: %s\n", trained.ToString().c_str());
  std::printf("  bugs kept: %ld/%ld, UI hangs pruned: %.0f%%, accuracy: %.0f%%\n",
              static_cast<long>(trained_quality.true_positives),
              static_cast<long>(trained_quality.true_positives +
                                trained_quality.false_negatives),
              100.0 * trained_quality.FalsePositivePruneRate(),
              100.0 * trained_quality.Accuracy());

  hangdoctor::FilterQuality default_quality =
      hangdoctor::EvaluateFilter(hangdoctor::SoftHangFilter::Default(), data.diff_samples);
  std::printf("Production filter (%s):\n  bugs kept: %ld/%ld, UI hangs pruned: %.0f%%, "
              "accuracy: %.0f%% (paper: 100%%, 64%%, 81%%)\n",
              hangdoctor::SoftHangFilter::Default().ToString().c_str(),
              static_cast<long>(default_quality.true_positives),
              static_cast<long>(default_quality.true_positives +
                                default_quality.false_negatives),
              100.0 * default_quality.FalsePositivePruneRate(),
              100.0 * default_quality.Accuracy());
  return 0;
}
