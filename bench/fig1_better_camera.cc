// Reproduces Figure 1 of the paper: the main-thread timeline of A Better Camera's Resume
// action, buggy (camera.setParameters and camera.open block the main thread; paper: 423 ms)
// versus fixed (camera.open moved to a worker thread; paper: 160 ms). UI APIs must stay on
// the main thread in both variants.
#include <cstdio>
#include <string>
#include <vector>

#include "src/droidsim/phone.h"
#include "src/workload/api_catalog.h"

namespace {

struct RunResult {
  simkit::SimDuration response = 0;
  std::vector<droidsim::OpContribution> contributions;
};

class ResultCatcher : public droidsim::AppObserver {
 public:
  explicit ResultCatcher(droidsim::App* app) : app_(app) { app_->AddObserver(this); }
  ~ResultCatcher() override { app_->RemoveObserver(this); }
  void OnActionQuiesced(droidsim::App& app, const droidsim::ActionExecution& execution) override {
    (void)app;
    result.response = execution.max_response;
    result.contributions = execution.contributions;
  }
  RunResult result;

 private:
  droidsim::App* app_;
};

// Builds the Figure 1 Resume event; `fixed` moves camera.open to a worker thread.
droidsim::AppSpec MakeCameraApp(const workload::StandardApis& apis, bool fixed) {
  droidsim::AppSpec spec;
  spec.name = fixed ? "ABC-fixed" : "ABC-buggy";
  spec.package = "com.almalence.opencam";
  droidsim::ActionSpec resume;
  resume.name = "ResumeMain";
  droidsim::InputEventSpec event;
  event.handler = "onResume";
  event.handler_file = "MainScreen.java";
  event.handler_line = 480;
  auto op = [](const droidsim::ApiSpec* api, int32_t line) {
    return droidsim::MakeOp(api, "MainScreen.java", line);
  };
  event.ops.push_back(op(apis.camera_set_parameters, 492));
  droidsim::OpNode open = op(apis.camera_open, 497);
  open.on_worker = fixed;  // the AsyncTask rewrite
  event.ops.push_back(std::move(open));
  event.ops.push_back(op(apis.ui_set_text, 505));
  event.ops.push_back(op(apis.ui_inflate, 512));
  event.ops.push_back(op(apis.ui_seekbar_init, 519));
  event.ops.push_back(op(apis.ui_orientation_enable, 526));
  resume.events.push_back(std::move(event));
  spec.actions.push_back(std::move(resume));
  return spec;
}

RunResult RunOnce(const droidsim::AppSpec& spec, uint64_t seed) {
  droidsim::Phone phone(droidsim::LgV10(), seed);
  droidsim::App* app = phone.InstallApp(&spec);
  ResultCatcher catcher(app);
  app->PerformAction(0);
  phone.RunFor(simkit::Seconds(10));
  return catcher.result;
}

void PrintTimeline(const char* title, const RunResult& result) {
  std::printf("%s (response time: %.0f ms)\n", title,
              simkit::ToMilliseconds(result.response));
  simkit::SimTime base = -1;
  for (const droidsim::OpContribution& contribution : result.contributions) {
    if (base < 0 || contribution.start < base) {
      base = contribution.start;
    }
  }
  for (const droidsim::OpContribution& contribution : result.contributions) {
    double start_ms = simkit::ToMilliseconds(contribution.start - base);
    double end_ms = start_ms + simkit::ToMilliseconds(contribution.duration);
    std::string bar(static_cast<size_t>(start_ms / 8), ' ');
    bar += std::string(std::max<size_t>(static_cast<size_t>((end_ms - start_ms) / 8), 1), '#');
    std::printf("  %-32s %6.0f..%6.0f ms |%s\n", contribution.api->FullName().c_str(),
                start_ms, end_ms, bar.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  droidsim::ApiRegistry registry;
  workload::StandardApis apis = workload::BuildStandardApis(&registry);
  std::printf("=== Figure 1: A Better Camera, buggy vs fixed main thread ===\n\n");
  droidsim::AppSpec buggy = MakeCameraApp(apis, /*fixed=*/false);
  droidsim::AppSpec fixed = MakeCameraApp(apis, /*fixed=*/true);
  // Note: these single executions always manifest (the Figure 1 trace is a manifesting run).
  RunResult buggy_run = RunOnce(buggy, /*seed=*/5);
  RunResult fixed_run = RunOnce(fixed, /*seed=*/5);
  PrintTimeline("Buggy main thread (camera.open blocks the event)", buggy_run);
  PrintTimeline("Fixed (camera.open posted to a worker thread)", fixed_run);
  std::printf("paper: buggy 423 ms -> fixed 160 ms; measured: %.0f ms -> %.0f ms (%.1fx)\n",
              simkit::ToMilliseconds(buggy_run.response),
              simkit::ToMilliseconds(fixed_run.response),
              static_cast<double>(buggy_run.response) /
                  static_cast<double>(std::max<simkit::SimDuration>(fixed_run.response, 1)));
  return 0;
}
