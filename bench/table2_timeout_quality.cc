// Reproduces Table 2 of the paper: detection quality of the Timeout-based (TI) method at
// 5 s / 1 s / 500 ms / 100 ms timeouts on the eight motivation apps of Table 1. All four
// detectors observe the *same* user trace; a true positive is a distinct soft hang bug whose
// hang was traced, a false positive a distinct UI operation whose hang was traced.
//
// Paper reference totals: 5 s -> 0/19 TP, 0 FP; 1 s -> 1/19, 0; 500 ms -> 2/19, 8;
// 100 ms -> 19/19, 33. The shape: long timeouts miss nearly everything; the 100 ms timeout
// finds every bug but drowns in UI false positives.
#include <cstdio>
#include <map>
#include <memory>
#include <set>

#include "bench/smoke.h"
#include "src/baselines/timeout_detector.h"
#include "src/workload/experiment.h"

namespace {

const simkit::SimDuration kTimeouts[] = {simkit::Seconds(5), simkit::Seconds(1),
                                         simkit::Milliseconds(500), simkit::Milliseconds(100)};
const simkit::SimDuration kSessionLength =
    bench::SmokeScaled(simkit::Seconds(900), simkit::Seconds(60));

}  // namespace

int main() {
  workload::Catalog catalog;
  std::printf("=== Table 2: Timeout-based detection quality vs timeout ===\n\n");
  std::printf("%-16s | TP @5s @1s @500ms @100ms | FP @5s @1s @500ms @100ms | bugs\n", "App");

  std::map<size_t, std::array<int64_t, 2>> totals;  // timeout idx -> {tp, fp}
  int64_t total_bugs = 0;
  for (const droidsim::AppSpec* spec : catalog.motivation_apps()) {
    workload::SingleAppHarness harness(droidsim::LgV10(), spec, /*seed=*/4242);
    std::vector<std::unique_ptr<baselines::TimeoutDetector>> detectors;
    for (simkit::SimDuration timeout : kTimeouts) {
      baselines::TimeoutDetectorConfig config;
      config.timeout = timeout;
      detectors.push_back(std::make_unique<baselines::TimeoutDetector>(&harness.phone(),
                                                                       &harness.app(), config));
    }
    harness.RunUserSession(kSessionLength);

    int64_t app_bugs = static_cast<int64_t>(catalog.BugsOf(spec->name).size());
    total_bugs += app_bugs;
    std::array<std::array<int64_t, 2>, 4> cells{};
    for (size_t t = 0; t < detectors.size(); ++t) {
      // True positives: distinct soft hang bugs traced (bug identity = culprit call site).
      // False positives: distinct user actions whose traced hangs were really UI work.
      std::set<std::string> bug_culprits;
      std::set<int32_t> ui_culprits;
      for (const baselines::DetectionOutcome& outcome : detectors[t]->outcomes()) {
        if (!outcome.traced) {
          continue;
        }
        const workload::HangLabel* label = harness.truth().Find(outcome.execution_id);
        if (label == nullptr || !label->hang) {
          continue;
        }
        if (label->cause_is_bug) {
          bug_culprits.insert(label->cause_api + "@" + label->cause_file + ":" +
                              std::to_string(label->cause_line));
        } else {
          ui_culprits.insert(outcome.action_uid);
        }
      }
      cells[t][0] = static_cast<int64_t>(bug_culprits.size());
      cells[t][1] = static_cast<int64_t>(ui_culprits.size());
      totals[t][0] += cells[t][0];
      totals[t][1] += cells[t][1];
    }
    std::printf("%-16s |     %2ld  %2ld     %2ld     %2ld |     %2ld  %2ld     %2ld     %2ld | %ld\n",
                spec->name.c_str(), static_cast<long>(cells[0][0]),
                static_cast<long>(cells[1][0]), static_cast<long>(cells[2][0]),
                static_cast<long>(cells[3][0]), static_cast<long>(cells[0][1]),
                static_cast<long>(cells[1][1]), static_cast<long>(cells[2][1]),
                static_cast<long>(cells[3][1]), static_cast<long>(app_bugs));
  }
  std::printf("%-16s |     %2ld  %2ld     %2ld     %2ld |     %2ld  %2ld     %2ld     %2ld | %ld\n",
              "TOTAL", static_cast<long>(totals[0][0]), static_cast<long>(totals[1][0]),
              static_cast<long>(totals[2][0]), static_cast<long>(totals[3][0]),
              static_cast<long>(totals[0][1]), static_cast<long>(totals[1][1]),
              static_cast<long>(totals[2][1]), static_cast<long>(totals[3][1]),
              static_cast<long>(total_bugs));
  std::printf("paper TOTAL      |      0   1      2     19 |      0   0      8     33 | 19\n");
  return 0;
}
