// Reproduces Table 6 of the paper: for each of the 23 previously unknown soft hang bugs (the
// validation set), which of S-Checker's three performance events detects it. An event
// "detects" a bug when its filter condition holds for the majority of the bug's observed soft
// hangs. Every new bug must be recognized by at least one event.
//
// Paper reference row (totals): 23 new bugs; 18 detected via context-switches, 12 via
// task-clock, 12 via page-faults; per-app pattern: CycleStreets/Merchant/GIT@OSC are
// context-switch-only (I/O-round-trip bound), Omni-Notes/RadioDroid are page-fault-only
// (allocation-heavy work inside render-busy actions), K9/QKSMS/UOITDC/SageMath/SkyTube hit
// multiple events.
#include <array>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/hangdoctor/filter.h"
#include "src/workload/training.h"

int main() {
  workload::Catalog catalog;
  workload::TrainingConfig config;
  config.executions_per_op = 16;
  workload::TrainingData validation = workload::CollectValidationSamples(catalog, config);
  hangdoctor::SoftHangFilter filter = hangdoctor::SoftHangFilter::Default();

  // source -> (per-condition match counts, total samples)
  struct Coverage {
    std::vector<int64_t> matched = std::vector<int64_t>(3, 0);
    int64_t samples = 0;
  };
  std::map<std::string, Coverage> by_bug;
  for (const hangdoctor::LabeledSample& sample : validation.diff_samples) {
    Coverage& coverage = by_bug[sample.source];
    std::vector<bool> matches = filter.MatchVector(sample.readings);
    for (size_t c = 0; c < matches.size(); ++c) {
      if (matches[c]) {
        ++coverage.matched[c];
      }
    }
    ++coverage.samples;
  }

  std::printf("=== Table 6: per-event detection of the 23 previously unknown bugs ===\n");
  std::printf("(validation samples: %zu soft hangs; an event detects a bug when its condition\n"
              " holds in the majority of that bug's hangs)\n\n",
              validation.diff_samples.size());
  std::printf("%-16s %-10s %-16s %-10s %-11s\n", "App", "New Bugs", "context-switches",
              "task-clock", "page-faults");

  // Aggregate per app, preserving Table 5 order.
  std::map<std::string, std::array<int64_t, 4>> per_app;  // bugs, ctx, task, page
  std::vector<std::string> app_order;
  int64_t missing = 0;
  for (const droidsim::AppSpec* app : catalog.study_apps()) {
    bool has_new_bug = false;
    for (const workload::BugSpec& bug : catalog.BugsOf(app->name)) {
      if (!bug.missed_offline) {
        continue;
      }
      has_new_bug = true;
      std::string key = app->name + "/" + bug.api + "@" + bug.file + ":" +
                        std::to_string(bug.line);
      auto& row = per_app[app->name];
      ++row[0];
      auto it = by_bug.find(key);
      bool any = false;
      if (it != by_bug.end() && it->second.samples > 0) {
        for (size_t c = 0; c < 3; ++c) {
          if (2 * it->second.matched[c] > it->second.samples) {
            ++row[c + 1];
            any = true;
          }
        }
      }
      if (!any) {
        ++missing;
        std::printf("  !! bug not recognized by any event: %s (%ld samples)\n", key.c_str(),
                    it == by_bug.end() ? 0L : static_cast<long>(it->second.samples));
      }
    }
    if (has_new_bug) {
      app_order.push_back(app->name);
    }
  }
  std::array<int64_t, 4> total{};
  for (const std::string& app : app_order) {
    const auto& row = per_app[app];
    auto cell = [](int64_t n) { return n == 0 ? std::string("-") : std::to_string(n); };
    std::printf("%-16s %-10ld %-16s %-10s %-11s\n", app.c_str(), static_cast<long>(row[0]),
                cell(row[1]).c_str(), cell(row[2]).c_str(), cell(row[3]).c_str());
    for (size_t i = 0; i < 4; ++i) {
      total[i] += row[i];
    }
  }
  std::printf("%-16s %-10ld %-16ld %-10ld %-11ld\n", "Total", static_cast<long>(total[0]),
              static_cast<long>(total[1]), static_cast<long>(total[2]),
              static_cast<long>(total[3]));
  std::printf("\npaper totals:    23         18               12         12\n");
  std::printf("bugs not recognized by any event: %ld (paper: 0)\n", static_cast<long>(missing));
  return 0;
}
