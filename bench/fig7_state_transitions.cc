// Reproduces Figure 7 of the paper: how action states prune the cost of UI false positives.
// The user alternates K9-mail's Folders and Inbox actions. Folders hangs on ordinary layout
// work and S-Checker sends it straight to Normal (no stack traces, ever). Inbox hangs on an
// image-grid bind whose page-fault difference exceeds the threshold — an S-Checker false
// positive — so it goes to Suspicious; on its next hang the Diagnoser collects traces, sees
// only UI frames, and sends it to Normal too (path B). Subsequent executions of both actions
// cost nothing.
#include <cstdio>

#include "src/hosts/hang_doctor.h"
#include "src/workload/catalog.h"
#include "src/workload/user_model.h"

int main() {
  workload::Catalog catalog;
  const droidsim::AppSpec* spec = catalog.FindApp("K9-Mail");
  droidsim::Phone phone(droidsim::LgV10(), /*seed=*/33);
  droidsim::App* app = phone.InstallApp(spec);
  hangdoctor::HangDoctor doctor(&phone, app, hangdoctor::HangDoctorConfig{});

  int32_t folders = -1;
  int32_t inbox = -1;
  for (int32_t i = 0; i < app->num_actions(); ++i) {
    if (app->action(i).name == "Folders") {
      folders = i;
    }
    if (app->action(i).name == "Inbox") {
      inbox = i;
    }
  }
  std::vector<int32_t> script = {folders, inbox, folders, inbox, folders, inbox,
                                 inbox,   folders, inbox, folders};
  workload::UserSessionConfig user_config;
  user_config.mean_think = simkit::Seconds(2);
  user_config.min_think = simkit::Seconds(2);
  workload::UserSession user(&phone, app, script, user_config);
  phone.RunFor(simkit::Seconds(40));

  std::printf("=== Figure 7: action-state transitions pruning UI false positives ===\n\n");
  std::printf("  %-5s %-8s %9s  %-13s %-17s %s\n", "exec", "action", "resp(ms)", "state",
              "verdict", "page-fault diff (thr. 500)");
  for (const hangdoctor::ExecutionRecord& record : doctor.log()) {
    if (record.action_uid != folders && record.action_uid != inbox) {
      continue;
    }
    const char* name = record.action_uid == folders ? "Folders" : "Inbox";
    double page_diff =
        record.schecker_diffs[static_cast<size_t>(telemetry::PerfEventType::kPageFaults)];
    std::printf("  %-5ld %-8s %9.0f  %-13s %-17s %s\n",
                static_cast<long>(record.execution_id), name,
                simkit::ToMilliseconds(record.response),
                hangdoctor::ActionStateName(record.state_before),
                hangdoctor::VerdictName(record.verdict),
                record.schecker_ran ? (page_diff > 500 ? "above" : "below") : "-");
  }
  std::printf("\nstate transitions:\n");
  for (const hangdoctor::StateTransition& transition : doctor.actions().transitions()) {
    std::printf("  t=%5.1fs %-8s %s -> %s (%s)\n", simkit::ToSeconds(transition.time),
                app->action(transition.action_uid).name.c_str(),
                hangdoctor::ActionStateName(transition.from),
                hangdoctor::ActionStateName(transition.to), transition.reason.c_str());
  }
  std::printf("\nstack-trace collections paid: %ld (paper: one, for Inbox's single Suspicious "
              "hang; Folders never traced)\n",
              static_cast<long>(doctor.log().size() > 0 ? [&] {
                int64_t traced = 0;
                for (const hangdoctor::ExecutionRecord& record : doctor.log()) {
                  traced += record.traced ? 1 : 0;
                }
                return traced;
              }() : 0));
  return 0;
}
