// Hot-path benchmark harness. Measures end-to-end simulated-session throughput
// (sessions/sec at --jobs=1 and fleet-saturated) plus per-path micro benches for the three
// steady-state hot paths (event queue churn, counter accounting, stack-sampler collection
// cycles), and emits machine-readable BENCH_hotpath.json so perf PRs leave a tracked
// trajectory. Global operator new/delete are replaced with counting versions, so the micro
// benches also report allocations per operation — the zero-allocation claim, measured.
//
// The "baseline" block in the JSON records the pre-optimization numbers measured on the
// seed revision (commit c15558d) on this same workload (96 sessions x 120 s, jobs=1), so
// the current numbers always have a fixed reference point.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench/smoke.h"
#include "src/droidsim/app.h"
#include "src/droidsim/phone.h"
#include "src/droidsim/stack_sampler.h"
#include "src/kernelsim/kernel.h"
#include "src/kernelsim/uarch.h"
#include "src/perfsim/counter_hub.h"
#include "src/simkit/event_queue.h"
#include "src/workload/catalog.h"
#include "src/workload/experiment.h"
#include "src/workload/fleet.h"

namespace {

std::atomic<int64_t> g_allocations{0};

int64_t AllocationCount() { return g_allocations.load(std::memory_order_relaxed); }

void* CountedAlloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct FleetTiming {
  double seconds = 0.0;
  double sessions_per_sec = 0.0;
};

FleetTiming TimeFleet(const std::vector<workload::FleetJob>& jobs, int32_t workers) {
  workload::FleetOptions options;
  options.jobs = workers;
  auto start = std::chrono::steady_clock::now();
  workload::FleetSummary summary = workload::RunFleet(jobs, options);
  FleetTiming timing;
  timing.seconds = Seconds(start);
  timing.sessions_per_sec =
      static_cast<double>(jobs.size() - summary.failed) / timing.seconds;
  return timing;
}

struct MicroResult {
  double ops_per_sec = 0.0;
  double allocs_per_op = 0.0;
};

// Steady-state event queue churn: schedule, then alternately cancel and pop+run.
MicroResult BenchEventQueue(int64_t ops) {
  simkit::EventQueue queue;
  int64_t sink = 0;
  for (int i = 0; i < 64; ++i) {  // warm the slab, heap and inline-callback slots
    queue.Cancel(queue.ScheduleAt(i, [&sink]() { ++sink; }));
  }
  int64_t allocs_before = AllocationCount();
  auto start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < ops; ++i) {
    simkit::EventId id = queue.ScheduleAt(i & 1023, [&sink]() { ++sink; });
    if ((i & 1) == 0) {
      queue.Cancel(id);
    } else {
      simkit::SimTime when = 0;
      simkit::EventCallback cb;
      queue.PopNext(&when, &cb);
      cb();
    }
  }
  MicroResult result;
  result.ops_per_sec = static_cast<double>(2 * ops) / Seconds(start);  // schedule + retire
  result.allocs_per_op =
      static_cast<double>(AllocationCount() - allocs_before) / static_cast<double>(2 * ops);
  return result;
}

// Steady-state counter accounting: the kernel-event path charged on every CPU slice.
MicroResult BenchCounterHub(droidsim::Phone* phone, droidsim::App* app, int64_t events) {
  perfsim::CounterHub& hub = phone->counter_hub();
  const kernelsim::Thread& thread = phone->kernel().GetThread(app->main_tid());
  kernelsim::MicroArchProfile uarch;
  hub.OnCpuCharge(thread, simkit::Microseconds(50), uarch);  // warm the dense state
  int64_t allocs_before = AllocationCount();
  auto start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < events; ++i) {
    hub.OnCpuCharge(thread, simkit::Microseconds(50), uarch);
  }
  MicroResult result;
  result.ops_per_sec = static_cast<double>(events) / Seconds(start);
  result.allocs_per_op =
      static_cast<double>(AllocationCount() - allocs_before) / static_cast<double>(events);
  return result;
}

// Steady-state sampling: a full StartCollection (TakeSample + slab reschedule) +
// StopCollection (O(1) cancel) cycle against a live looper.
MicroResult BenchSampler(droidsim::Phone* phone, droidsim::App* app, int64_t cycles) {
  droidsim::StackSampler sampler(&phone->sim(), &app->main_looper());
  sampler.StartCollection();  // warm the pooled sample slot and queue free list
  sampler.StopCollection();
  int64_t allocs_before = AllocationCount();
  auto start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < cycles; ++i) {
    sampler.StartCollection();
    sampler.StopCollection();
  }
  MicroResult result;
  result.ops_per_sec = static_cast<double>(cycles) / Seconds(start);
  result.allocs_per_op =
      static_cast<double>(AllocationCount() - allocs_before) / static_cast<double>(cycles);
  return result;
}

// Pre-optimization throughput measured on the seed revision with this exact workload
// (96 sessions x 120 s, jobs=1, 1-vCPU runner class).
constexpr double kBaselineSessionsPerSec = 22.88;
constexpr const char* kBaselineCommit = "c15558d";

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::SmokeRun();
  const size_t sessions = bench::SmokeScaled<size_t>(96, 4);
  const simkit::SimDuration session_length =
      bench::SmokeScaled(simkit::Seconds(120), simkit::Seconds(10));
  const int64_t micro_ops = bench::SmokeScaled<int64_t>(2'000'000, 100'000);

  workload::Catalog catalog;
  hangdoctor::BlockingApiDatabase known_db = catalog.MakeKnownDatabase();

  std::vector<workload::FleetJob> jobs;
  const auto& apps = catalog.study_apps();
  for (size_t i = 0; i < sessions; ++i) {
    workload::FleetJob job;
    job.spec = apps[i % apps.size()];
    job.profile = droidsim::LgV10();
    job.seed = workload::FleetSeed(0xB0B0, i);
    job.session = session_length;
    job.device_id = static_cast<int32_t>(i);
    job.known_db = &known_db;
    jobs.push_back(job);
  }

  // Warm-up run (page cache, allocator arenas), then the measured passes.
  TimeFleet(jobs, 1);
  FleetTiming single = TimeFleet(jobs, 1);
  int32_t saturated_workers = workload::ResolveJobs(argc, argv);
  FleetTiming saturated = TimeFleet(jobs, saturated_workers);
  double speedup = single.sessions_per_sec / kBaselineSessionsPerSec;

  // Micro benches run on a warmed phone so every pool is at steady state.
  droidsim::Phone phone(droidsim::LgV10(), /*seed=*/7);
  droidsim::App* app = phone.InstallApp(catalog.FindApp("K9-Mail"));
  phone.RunFor(simkit::Seconds(2));
  MicroResult queue_r = BenchEventQueue(micro_ops);
  MicroResult hub_r = BenchCounterHub(&phone, app, micro_ops);
  MicroResult sampler_r = BenchSampler(&phone, app, micro_ops / 4);

  std::printf("sessions=%zu session_length_s=%.0f%s\n", sessions,
              simkit::ToMilliseconds(session_length) / 1000.0, smoke ? " (smoke)" : "");
  std::printf("jobs=1  %.2f s  %.2f sessions/s", single.seconds, single.sessions_per_sec);
  if (!smoke) {
    std::printf("  (baseline %.2f @ %s, %.2fx)", kBaselineSessionsPerSec, kBaselineCommit,
                speedup);
  }
  std::printf("\njobs=%d  %.2f s  %.2f sessions/s\n", saturated_workers, saturated.seconds,
              saturated.sessions_per_sec);
  std::printf("event_queue  %.1f Mops/s  %.4f allocs/op\n", queue_r.ops_per_sec / 1e6,
              queue_r.allocs_per_op);
  std::printf("counter_hub  %.1f Mcharges/s  %.4f allocs/charge\n", hub_r.ops_per_sec / 1e6,
              hub_r.allocs_per_op);
  std::printf("sampler      %.2f Mcycles/s  %.4f allocs/cycle\n", sampler_r.ops_per_sec / 1e6,
              sampler_r.allocs_per_op);

  std::FILE* json = std::fopen("BENCH_hotpath.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_hotpath.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"hotpath\",\n");
  std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(json, "  \"workload\": {\"sessions\": %zu, \"session_length_s\": %.0f},\n",
               sessions, simkit::ToMilliseconds(session_length) / 1000.0);
  std::fprintf(json,
               "  \"baseline\": {\"commit\": \"%s\", \"sessions_per_sec_jobs1\": %.2f, "
               "\"comparable\": %s},\n",
               kBaselineCommit, kBaselineSessionsPerSec, smoke ? "false" : "true");
  std::fprintf(json,
               "  \"end_to_end\": {\n"
               "    \"jobs1\": {\"seconds\": %.3f, \"sessions_per_sec\": %.2f},\n"
               "    \"saturated\": {\"jobs\": %d, \"seconds\": %.3f, "
               "\"sessions_per_sec\": %.2f},\n"
               "    \"speedup_vs_baseline\": %.2f\n  },\n",
               single.seconds, single.sessions_per_sec, saturated_workers, saturated.seconds,
               saturated.sessions_per_sec, smoke ? 0.0 : speedup);
  std::fprintf(json,
               "  \"micro\": {\n"
               "    \"event_queue\": {\"ops_per_sec\": %.0f, \"allocs_per_op\": %.4f},\n"
               "    \"counter_hub\": {\"charges_per_sec\": %.0f, \"allocs_per_charge\": "
               "%.4f},\n"
               "    \"sampler\": {\"cycles_per_sec\": %.0f, \"allocs_per_cycle\": %.4f}\n"
               "  }\n}\n",
               queue_r.ops_per_sec, queue_r.allocs_per_op, hub_r.ops_per_sec,
               hub_r.allocs_per_op, sampler_r.ops_per_sec, sampler_r.allocs_per_op);
  std::fclose(json);
  std::printf("wrote BENCH_hotpath.json\n");
  return 0;
}
