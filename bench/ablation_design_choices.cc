// Ablation study of the design decisions DESIGN.md calls out (not a paper table; this is the
// repository's own analysis of *why* Hang Doctor's choices matter):
//
//  A. main−render differencing vs main-only counters (the Table 3(b) argument, but measured
//     as filter quality rather than correlations);
//  B. end-of-action accumulation vs an early 150 ms counter snapshot (the Figure 5 argument);
//  C. each filter condition alone vs the trio (the Table 6 argument);
//  D. the state machine vs tracing every hang (the phase-1 savings argument).
#include <cstdio>

#include "src/hosts/hang_doctor.h"
#include "src/perfsim/perf_session.h"
#include "src/workload/experiment.h"
#include "src/workload/training.h"
#include "src/workload/user_model.h"

namespace {

void PrintQuality(const char* label, const hangdoctor::FilterQuality& quality) {
  double recall =
      quality.true_positives + quality.false_negatives == 0
          ? 0.0
          : static_cast<double>(quality.true_positives) /
                static_cast<double>(quality.true_positives + quality.false_negatives);
  std::printf("  %-34s recall %3.0f%%  UI pruned %3.0f%%  accuracy %3.0f%%\n", label,
              100.0 * recall, 100.0 * quality.FalsePositivePruneRate(),
              100.0 * quality.Accuracy());
}

}  // namespace

int main() {
  workload::Catalog catalog;
  std::printf("=== Ablations of Hang Doctor's design choices ===\n\n");

  workload::TrainingConfig config;
  workload::TrainingData data = workload::CollectTrainingSamples(catalog, config);
  hangdoctor::SoftHangFilter trio = hangdoctor::SoftHangFilter::Default();

  // --- A: differencing against the render thread ---
  std::printf("A. main-render differencing vs main-only readings (production thresholds):\n");
  PrintQuality("main - render (Hang Doctor)",
               hangdoctor::EvaluateFilter(trio, data.diff_samples));
  PrintQuality("main only", hangdoctor::EvaluateFilter(trio, data.main_only_samples));
  std::printf("  (main-only floods: every heavy UI action looks like a bug without the render"
              "\n   thread as a reference)\n\n");

  // --- C: single conditions vs the trio ---
  std::printf("C. each condition alone vs the trio (on the training set):\n");
  const char* names[] = {"context-switches > 0 alone", "task-clock > 1.7e8 alone",
                         "page-faults > 500 alone"};
  for (size_t i = 0; i < trio.conditions().size(); ++i) {
    hangdoctor::SoftHangFilter single({trio.conditions()[i]});
    PrintQuality(names[i], hangdoctor::EvaluateFilter(single, data.diff_samples));
  }
  PrintQuality("all three (Hang Doctor)", hangdoctor::EvaluateFilter(trio, data.diff_samples));
  std::printf("\n");

  // --- B: early snapshot vs end-of-action accumulation ---
  std::printf("B. early 150 ms snapshot vs end-of-action accumulation (K9-Mail Folders, a UI "
              "action):\n");
  {
    const droidsim::AppSpec* spec = catalog.FindApp("K9-Mail");
    int32_t folders = -1;
    for (int32_t i = 0; i < 4; ++i) {
      if (spec->actions[static_cast<size_t>(i)].name == "Folders") {
        folders = i;
      }
    }
    int early_flags = 0;
    int late_flags = 0;
    constexpr int kRuns = 20;
    for (int run = 0; run < kRuns; ++run) {
      droidsim::Phone phone(droidsim::LgV10(), 4000 + run);
      droidsim::App* app = phone.InstallApp(spec);
      perfsim::PerfSession session(&phone.counter_hub(), phone.profile().pmu, 5000 + run);
      session.AddThread(app->main_tid());
      session.AddThread(app->render_tid());
      for (telemetry::PerfEventType event : trio.Events()) {
        session.AddEvent(event);
      }
      session.Start();
      app->PerformAction(folders);
      phone.RunFor(simkit::Milliseconds(150));  // the tempting early read
      telemetry::CounterArray early{};
      for (telemetry::PerfEventType event : trio.Events()) {
        early[static_cast<size_t>(event)] =
            session.ReadDifference(app->main_tid(), app->render_tid(), event);
      }
      phone.RunFor(simkit::Seconds(8));  // quiesce
      session.Stop();
      telemetry::CounterArray late{};
      for (telemetry::PerfEventType event : trio.Events()) {
        late[static_cast<size_t>(event)] =
            session.ReadDifference(app->main_tid(), app->render_tid(), event);
      }
      early_flags += trio.HasSymptoms(early) ? 1 : 0;
      late_flags += trio.HasSymptoms(late) ? 1 : 0;
    }
    std::printf("  flagged as bug-symptomatic: early read %d/%d runs, end-of-action %d/%d runs\n"
                "  (the main thread runs developer code before the render thread catches up —\n"
                "   Figure 5(b)'s reason S-Checker waits for the action to finish)\n\n",
                early_flags, kRuns, late_flags, kRuns);
  }

  // --- D: the state machine's savings ---
  std::printf("D. state machine vs tracing every hang (K9-Mail, same 5-minute trace):\n");
  {
    const droidsim::AppSpec* spec = catalog.FindApp("K9-Mail");
    workload::SingleAppHarness harness(droidsim::LgV10(), spec, 606);
    hangdoctor::HangDoctor with_states(&harness.phone(), &harness.app(),
                                       hangdoctor::HangDoctorConfig{});
    hangdoctor::HangDoctorConfig no_states_config;
    no_states_config.second_phase_only = true;  // = trace every soft hang
    hangdoctor::HangDoctor no_states(&harness.phone(), &harness.app(), no_states_config);
    harness.RunUserSession(simkit::Seconds(300));
    workload::TraceUsage usage = harness.Usage();
    workload::DetectionStats with_stats =
        workload::ScoreHangDoctor(harness.truth(), with_states.log());
    workload::DetectionStats without_stats =
        workload::ScoreHangDoctor(harness.truth(), no_states.log());
    std::printf("  with state machine   : TP %ld/%ld, FP %ld, %ld stack samples, %.2f%% "
                "overhead\n",
                static_cast<long>(with_stats.true_positives),
                static_cast<long>(with_stats.bug_hangs),
                static_cast<long>(with_stats.false_positives),
                static_cast<long>(with_states.stack_samples_taken()),
                with_states.overhead().OverheadPercent(usage.cpu, usage.bytes));
    std::printf("  trace every hang     : TP %ld/%ld, FP %ld, %ld stack samples, %.2f%% "
                "overhead\n",
                static_cast<long>(without_stats.true_positives),
                static_cast<long>(without_stats.bug_hangs),
                static_cast<long>(without_stats.false_positives),
                static_cast<long>(no_states.stack_samples_taken()),
                no_states.overhead().OverheadPercent(usage.cpu, usage.bytes));
  }
  return 0;
}
