// DetectorService capacity benchmark. One process, one service, N concurrent sessions: a
// donor SPI stream (one recorded droidsim session) is replayed into N live sessions
// round-robin — records of all sessions interleaved, the shape a fleet ingestion backend
// sees — and the bench reports sustained sessions/s plus resident memory at each
// concurrency level (1 / 100 / 10k live sessions; smoke: 1 / 10 / 100).
//
// The point being measured: session cost is one arena (core + action table + private
// blocking-API database), not one thread — so the sustained concurrent-session count
// exceeds the machine's thread count by orders of magnitude, and memory tracks *live*
// sessions (each level closes its sessions and the next level's RSS does not accumulate
// the total ever processed). Emits machine-readable BENCH_service.json.
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/smoke.h"
#include "src/hangdoctor/detector_service.h"
#include "src/hangdoctor/session_stream.h"
#include "src/hosts/hang_doctor.h"
#include "src/workload/catalog.h"
#include "src/workload/experiment.h"

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Current resident set in MiB (/proc/self/statm; falls back to getrusage peak).
double ResidentMb() {
  if (std::FILE* statm = std::fopen("/proc/self/statm", "r")) {
    long total = 0;
    long resident = 0;
    int fields = std::fscanf(statm, "%ld %ld", &total, &resident);
    std::fclose(statm);
    if (fields == 2) {
      return static_cast<double>(resident) * static_cast<double>(sysconf(_SC_PAGESIZE)) /
             (1024.0 * 1024.0);
    }
  }
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

double PeakRssMb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

// In-memory TelemetrySink: captures the donor session's SPI stream as owned payloads.
class StreamRecorder : public hangdoctor::TelemetrySink {
 public:
  void OnSessionStart(const hangdoctor::SessionInfo& info) override { info_ = info; }
  void OnDispatchStart(const hangdoctor::DispatchStart& start) override {
    hangdoctor::SpiPayload payload;
    payload.kind = hangdoctor::SpiPayload::Kind::kDispatchStart;
    payload.start = start;
    records_.push_back(std::move(payload));
  }
  void OnDispatchEnd(const hangdoctor::DispatchEnd& end) override {
    hangdoctor::SpiPayload payload;
    payload.kind = hangdoctor::SpiPayload::Kind::kDispatchEnd;
    payload.end = end;
    payload.samples.assign(end.samples.begin(), end.samples.end());
    records_.push_back(std::move(payload));
  }
  void OnActionQuiesce(const hangdoctor::ActionQuiesce& quiesce) override {
    hangdoctor::SpiPayload payload;
    payload.kind = hangdoctor::SpiPayload::Kind::kActionQuiesce;
    payload.quiesce = quiesce;
    records_.push_back(std::move(payload));
  }
  void OnCounterFault(const hangdoctor::CounterFault& fault) override {
    hangdoctor::SpiPayload payload;
    payload.kind = hangdoctor::SpiPayload::Kind::kCounterFault;
    payload.fault = fault;
    records_.push_back(std::move(payload));
  }

  const hangdoctor::SessionInfo& info() const { return info_; }
  const std::vector<hangdoctor::SpiPayload>& records() const { return records_; }

 private:
  hangdoctor::SessionInfo info_;
  std::vector<hangdoctor::SpiPayload> records_;
};

struct LevelResult {
  size_t concurrent = 0;
  double seconds = 0.0;
  double sessions_per_sec = 0.0;
  double records_per_sec = 0.0;
  double live_rss_mb = 0.0;    // resident while all sessions of the level are open
  double closed_rss_mb = 0.0;  // resident after every session of the level is closed
};

// Opens `concurrent` sessions, streams the donor records into all of them round-robin
// (record r of every session lands before record r+1 of any), then closes them all.
LevelResult RunLevel(size_t concurrent, const hangdoctor::SessionInfo& info,
                     const hangdoctor::HangDoctorConfig& config,
                     const std::vector<hangdoctor::SpiPayload>& records, int32_t shards) {
  hangdoctor::DetectorService service(hangdoctor::ServiceOptions{shards});
  auto start = std::chrono::steady_clock::now();
  for (size_t s = 0; s < concurrent; ++s) {
    service.Open(telemetry::SessionId{s}, info, config);
  }
  for (const hangdoctor::SpiPayload& payload : records) {
    for (size_t s = 0; s < concurrent; ++s) {
      telemetry::SessionId id{s};
      switch (payload.kind) {
        case hangdoctor::SpiPayload::Kind::kDispatchStart:
          service.OnDispatchStart(id, payload.start);
          break;
        case hangdoctor::SpiPayload::Kind::kDispatchEnd: {
          hangdoctor::DispatchEnd end = payload.end;
          end.samples = payload.samples;
          service.OnDispatchEnd(id, end);
          break;
        }
        case hangdoctor::SpiPayload::Kind::kActionQuiesce:
          service.OnActionQuiesced(id, payload.quiesce);
          break;
        case hangdoctor::SpiPayload::Kind::kCounterFault:
          service.OnCounterFault(id, payload.fault);
          break;
        default:
          break;
      }
    }
  }
  LevelResult result;
  result.live_rss_mb = ResidentMb();
  for (size_t s = 0; s < concurrent; ++s) {
    hangdoctor::SessionResult session = service.Close(telemetry::SessionId{s});
    (void)session;  // harvested and dropped: the arena is what we are freeing
  }
  result.concurrent = concurrent;
  result.seconds = Seconds(start);
  result.sessions_per_sec = static_cast<double>(concurrent) / result.seconds;
  result.records_per_sec =
      static_cast<double>(concurrent * records.size()) / result.seconds;
  result.closed_rss_mb = ResidentMb();
  return result;
}

}  // namespace

int main() {
  const bool smoke = bench::SmokeRun();
  const simkit::SimDuration donor_session =
      bench::SmokeScaled(simkit::Seconds(60), simkit::Seconds(10));
  const std::vector<size_t> levels =
      smoke ? std::vector<size_t>{1, 10, 100} : std::vector<size_t>{1, 100, 10000};

  // Donor stream: one recorded droidsim session; the replay property guarantees any core
  // fed this stream behaves bit-identically, so N sessions fed the same stream model N
  // concurrent devices exactly.
  workload::Catalog catalog;
  StreamRecorder recorder;
  hangdoctor::HangDoctorConfig config;
  workload::SingleAppHarness harness(droidsim::LgV10(), catalog.FindApp("K9-Mail"),
                                     /*seed=*/0x5E55);
  {
    hangdoctor::HangDoctor doctor(&harness.phone(), &harness.app(), config,
                                  /*database=*/nullptr, /*fleet_report=*/nullptr,
                                  /*device_id=*/0, &recorder);
    harness.RunUserSession(donor_session, {});
  }

  const unsigned threads = std::max(1u, std::thread::hardware_concurrency());
  const int32_t shards = static_cast<int32_t>(std::max(1u, threads / 2));
  std::printf("donor stream: %zu records (%s session)%s\n", recorder.records().size(),
              "K9-Mail", smoke ? " (smoke)" : "");
  std::printf("machine threads: %u   service shards: %d\n\n", threads, shards);

  std::vector<LevelResult> results;
  for (size_t level : levels) {
    LevelResult result =
        RunLevel(level, recorder.info(), config, recorder.records(), shards);
    std::printf(
        "concurrent=%-6zu  %8.3f s  %10.1f sessions/s  %12.0f records/s  "
        "rss live %.1f MB / closed %.1f MB\n",
        result.concurrent, result.seconds, result.sessions_per_sec, result.records_per_sec,
        result.live_rss_mb, result.closed_rss_mb);
    results.push_back(result);
  }

  const LevelResult& top = results.back();
  double sessions_per_thread = static_cast<double>(top.concurrent) / threads;
  std::printf("\nmax concurrency sustained: %zu sessions in one process = %.1fx the "
              "machine's %u threads\n",
              top.concurrent, sessions_per_thread, threads);

  std::FILE* json = std::fopen("BENCH_service.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_service.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"service\",\n");
  std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(json, "  \"donor_records\": %zu,\n", recorder.records().size());
  std::fprintf(json, "  \"threads\": %u,\n", threads);
  std::fprintf(json, "  \"shards\": %d,\n", shards);
  std::fprintf(json, "  \"levels\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const LevelResult& r = results[i];
    std::fprintf(json,
                 "    {\"concurrent_sessions\": %zu, \"seconds\": %.3f, "
                 "\"sessions_per_sec\": %.2f, \"records_per_sec\": %.0f, "
                 "\"live_rss_mb\": %.1f, \"closed_rss_mb\": %.1f}%s\n",
                 r.concurrent, r.seconds, r.sessions_per_sec, r.records_per_sec,
                 r.live_rss_mb, r.closed_rss_mb, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"max_concurrent_sessions\": %zu,\n", top.concurrent);
  std::fprintf(json, "  \"sessions_per_thread\": %.1f,\n", sessions_per_thread);
  std::fprintf(json, "  \"peak_rss_mb\": %.1f\n", PeakRssMb());
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("wrote BENCH_service.json\n");
  return 0;
}
