// DetectorService capacity benchmark. One process, one service, N concurrent sessions: a
// donor SPI stream (one recorded droidsim session) is replayed into N live sessions
// round-robin — records of all sessions interleaved, the shape a fleet ingestion backend
// sees — and the bench reports sustained sessions/s plus resident memory at each
// concurrency level (1 / 100 / 10k live sessions; smoke: 1 / 10 / 100).
//
// The point being measured: session cost is one arena (core + action table + private
// blocking-API database), not one thread — so the sustained concurrent-session count
// exceeds the machine's thread count by orders of magnitude, and memory tracks *live*
// sessions (each level closes its sessions and the next level's RSS does not accumulate
// the total ever processed).
//
// Second axis (the pipelined-ingest sweep): the same donor stream fans into the service
// through per-shard MPMC rings at threads ∈ {1, 2, 4} — `threads` producers feeding
// `threads` shard workers — measuring how ingest throughput scales with cores. Sessions are
// streamed as 16-byte record refs into one shared donor payload set, so the sweep measures
// routing + detection, not payload copying. Emits machine-readable BENCH_service.json with
// both the capacity levels and the threads axis.
//
// Fourth axis (`--net`, opt-in): the same ingest through the full hangdoctord network
// stack — an in-process epoll NetServer on a loopback port, driven by the loadgen over a
// connections sweep (up to 1024 concurrent connections) — measuring wire-ingest
// sessions/s and resident memory per concurrency level. Emitted as `net_axis` in the JSON
// and gated by scripts/check_bench_json.py --net.
//
// Fifth axis (`--fleet`, opt-in): the same recorded sessions through the distributed
// coordinator/worker shard group (src/fleetd) at workers ∈ {1, 2, 4} — each worker an
// embedded NetServer + DetectorService behind a socketpair, the coordinator routing every
// frame by session-id range — measuring routed throughput as the group widens and
// asserting the merged report stays byte-identical across worker counts (the distributed
// determinism contract). Emitted as `fleet_axis`, gated by check_bench_json.py --fleet.
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench/smoke.h"
#include "src/hangdoctor/detector_service.h"
#include "src/hangdoctor/knowledge_base.h"
#include "src/hangdoctor/session_stream.h"
#include "src/hosts/hang_doctor.h"
#include "src/hosts/mux_log.h"
#include "src/netd/loadgen.h"
#include "src/netd/server.h"
#include "src/workload/catalog.h"
#include "src/workload/distributed_fleet.h"
#include "src/workload/experiment.h"
#include "src/workload/fleet.h"

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Current resident set in MiB (/proc/self/statm; falls back to getrusage peak).
double ResidentMb() {
  if (std::FILE* statm = std::fopen("/proc/self/statm", "r")) {
    long total = 0;
    long resident = 0;
    int fields = std::fscanf(statm, "%ld %ld", &total, &resident);
    std::fclose(statm);
    if (fields == 2) {
      return static_cast<double>(resident) * static_cast<double>(sysconf(_SC_PAGESIZE)) /
             (1024.0 * 1024.0);
    }
  }
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

double PeakRssMb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

struct LevelResult {
  size_t concurrent = 0;
  double seconds = 0.0;
  double sessions_per_sec = 0.0;
  double records_per_sec = 0.0;
  double live_rss_mb = 0.0;    // resident while all sessions of the level are open
  double closed_rss_mb = 0.0;  // resident after every session of the level is closed
};

// Opens `concurrent` sessions, streams the donor records into all of them round-robin
// (record r of every session lands before record r+1 of any), then closes them all.
LevelResult RunLevel(size_t concurrent, const hangdoctor::SessionInfo& info,
                     const hangdoctor::HangDoctorConfig& config,
                     const std::vector<hangdoctor::SpiPayload>& records, int32_t shards) {
  hangdoctor::DetectorService service(hangdoctor::ServiceOptions{shards});
  auto start = std::chrono::steady_clock::now();
  for (size_t s = 0; s < concurrent; ++s) {
    service.Open(telemetry::SessionId{s}, info, config);
  }
  for (const hangdoctor::SpiPayload& payload : records) {
    for (size_t s = 0; s < concurrent; ++s) {
      telemetry::SessionId id{s};
      switch (payload.kind) {
        case hangdoctor::SpiPayload::Kind::kDispatchStart:
          service.OnDispatchStart(id, payload.start);
          break;
        case hangdoctor::SpiPayload::Kind::kDispatchEnd: {
          hangdoctor::DispatchEnd end = payload.end;
          end.samples = payload.samples;
          service.OnDispatchEnd(id, end);
          break;
        }
        case hangdoctor::SpiPayload::Kind::kActionQuiesce:
          service.OnActionQuiesced(id, payload.quiesce);
          break;
        case hangdoctor::SpiPayload::Kind::kCounterFault:
          service.OnCounterFault(id, payload.fault);
          break;
        default:
          break;
      }
    }
  }
  LevelResult result;
  result.live_rss_mb = ResidentMb();
  for (size_t s = 0; s < concurrent; ++s) {
    hangdoctor::SessionResult session = service.Close(telemetry::SessionId{s});
    (void)session;  // harvested and dropped: the arena is what we are freeing
  }
  result.concurrent = concurrent;
  result.seconds = Seconds(start);
  result.sessions_per_sec = static_cast<double>(concurrent) / result.seconds;
  result.records_per_sec =
      static_cast<double>(concurrent * records.size()) / result.seconds;
  result.closed_rss_mb = ResidentMb();
  return result;
}

struct SweepResult {
  int32_t threads = 0;
  int32_t shards = 0;
  size_t sessions = 0;
  double seconds = 0.0;
  double sessions_per_sec = 0.0;
  double records_per_sec = 0.0;
  double speedup = 1.0;  // vs the sweep's first (threads=1) entry
};

// Pipelined ingest at `threads` workers: `threads` producer threads each own an Ingestor and
// stream their share of `sessions` complete sessions (open, donor records, close) as refs
// into one shared payload set. All sessions drain at the barrier; throughput is wall-clock
// from first push to the drained harvest.
SweepResult RunSweep(int32_t threads, int32_t shards, size_t sessions,
                     const hangdoctor::SpiPayload& open_payload,
                     const hangdoctor::SpiPayload& close_payload,
                     const std::vector<hangdoctor::SpiPayload>& records) {
  hangdoctor::ServiceOptions options;
  options.shards = shards;
  options.threads = threads;
  hangdoctor::DetectorService service(options);
  size_t producers = std::min<size_t>(static_cast<size_t>(threads), sessions);
  producers = std::max<size_t>(producers, 1);

  auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> pushers;
    pushers.reserve(producers);
    for (size_t p = 0; p < producers; ++p) {
      pushers.emplace_back([p, producers, sessions, &service, &open_payload, &close_payload,
                            &records]() {
        hangdoctor::DetectorService::Ingestor ingestor(&service);
        for (size_t s = p; s < sessions; s += producers) {
          telemetry::SessionId id{s};
          ingestor.Push({id, &open_payload});
          for (const hangdoctor::SpiPayload& payload : records) {
            ingestor.Push({id, &payload});
          }
          ingestor.Push({id, &close_payload});
        }
      });  // the ingestor's destructor flushes its partial batches
    }
    for (std::thread& pusher : pushers) {
      pusher.join();
    }
  }
  std::vector<hangdoctor::SessionResult> results = service.DrainClosed();

  SweepResult result;
  result.threads = threads;
  result.shards = shards;
  result.sessions = results.size();
  result.seconds = Seconds(start);
  result.sessions_per_sec = static_cast<double>(results.size()) / result.seconds;
  result.records_per_sec =
      static_cast<double>(results.size() * (records.size() + 2)) / result.seconds;
  return result;
}

// One record push, shared by the capacity levels and the knowledge-base axis.
void PushRecord(hangdoctor::DetectorService* service, telemetry::SessionId id,
                const hangdoctor::SpiPayload& payload) {
  switch (payload.kind) {
    case hangdoctor::SpiPayload::Kind::kDispatchStart:
      service->OnDispatchStart(id, payload.start);
      break;
    case hangdoctor::SpiPayload::Kind::kDispatchEnd: {
      hangdoctor::DispatchEnd end = payload.end;
      end.samples = payload.samples;
      service->OnDispatchEnd(id, end);
      break;
    }
    case hangdoctor::SpiPayload::Kind::kActionQuiesce:
      service->OnActionQuiesced(id, payload.quiesce);
      break;
    case hangdoctor::SpiPayload::Kind::kCounterFault:
      service->OnCounterFault(id, payload.fault);
      break;
    default:
      break;
  }
}

struct KbArmResult {
  size_t sessions = 0;
  double seconds = 0.0;
  double sessions_per_sec = 0.0;
  int64_t memo_hits = 0;    // diagnoser runs skipped via a published memo
  int64_t memo_misses = 0;  // diagnoser runs that had to execute
  double hit_rate = 0.0;    // memo_hits / (memo_hits + memo_misses)
  double rss_mb = 0.0;
};

// Third axis (fleet scale): `sessions` complete sessions of the same donor app, one live at
// a time — the steady-state shape of a backend draining a fleet's queue — with and without
// the shared KnowledgeBase. With the KB, every session past the first publish resolves its
// hang diagnoses from epoch-published memos instead of re-running the Trace Analyzer, so
// the axis measures exactly the work the KB deletes.
KbArmResult RunKbArm(size_t sessions, const hangdoctor::SessionInfo& info,
                     const hangdoctor::HangDoctorConfig& config,
                     const std::vector<hangdoctor::SpiPayload>& records, int32_t shards,
                     hangdoctor::KnowledgeBase* kb, int64_t epoch_sessions) {
  hangdoctor::ServiceOptions options;
  options.shards = shards;
  options.knowledge_base = kb;
  options.kb_epoch_sessions = kb != nullptr ? epoch_sessions : 0;
  hangdoctor::DetectorService service(options);
  KbArmResult result;
  auto start = std::chrono::steady_clock::now();
  for (size_t s = 0; s < sessions; ++s) {
    telemetry::SessionId id{s};
    service.Open(id, info, config);
    for (const hangdoctor::SpiPayload& payload : records) {
      PushRecord(&service, id, payload);
    }
    hangdoctor::SessionResult session = service.Close(id);
    result.memo_hits += session.kb.memo_hits;
    result.memo_misses += session.kb.memo_misses;
  }
  result.sessions = sessions;
  result.seconds = Seconds(start);
  result.sessions_per_sec = static_cast<double>(sessions) / result.seconds;
  int64_t diagnoses = result.memo_hits + result.memo_misses;
  result.hit_rate =
      diagnoses > 0 ? static_cast<double>(result.memo_hits) / static_cast<double>(diagnoses)
                    : 0.0;
  result.rss_mb = ResidentMb();
  return result;
}

struct NetLevelResult {
  int32_t connections = 0;
  size_t sessions = 0;
  double seconds = 0.0;
  double sessions_per_sec = 0.0;
  int64_t sessions_closed = 0;
  int64_t busy = 0;
  int64_t errors = 0;
  double rss_mb = 0.0;
};

// One point of the `--net` sweep: a fresh NetServer on an ephemeral loopback port, the
// loadgen replaying `2 * connections` copies of the donor log (two sessions multiplexed per
// connection, the fleet shape) over `connections` concurrent connections. Wall-clock covers
// connect through the last kBye; RSS is sampled while the server still holds every
// harvested result, so the level's memory reflects the full in-flight load.
NetLevelResult RunNetLevel(int32_t connections, const std::string& donor_log,
                           int32_t workers, int32_t shards) {
  netd::ServerOptions options;
  options.service.shards = shards;
  options.workers = workers;
  options.max_connections = connections + 64;
  netd::NetServer server(options);

  std::vector<hangdoctor::SessionLogSlice> sessions;
  sessions.reserve(static_cast<size_t>(connections) * 2);
  for (size_t i = 0; i < static_cast<size_t>(connections) * 2; ++i) {
    sessions.push_back({telemetry::SessionId{i + 1}, donor_log});
  }

  netd::LoadGenOptions load;
  load.connections = connections;
  auto start = std::chrono::steady_clock::now();
  netd::LoadGenResult replay = netd::RunLoadGen(server.port(), sessions, load);

  NetLevelResult result;
  result.connections = connections;
  result.sessions = sessions.size();
  result.seconds = Seconds(start);
  result.sessions_per_sec = static_cast<double>(sessions.size()) / result.seconds;
  result.sessions_closed = replay.sessions_closed;
  result.busy = replay.busy;
  result.errors = replay.errors;
  result.rss_mb = ResidentMb();
  server.Stop();
  return result;
}

struct FleetLevelResult {
  int32_t workers = 0;
  size_t sessions = 0;
  int64_t frames_routed = 0;
  double seconds = 0.0;
  double sessions_per_sec = 0.0;
  double frames_per_sec = 0.0;
  size_t aborted = 0;
  bool report_identical = false;  // merged report matches the workers=1 reference run
  double rss_mb = 0.0;
};

// One point of the `--fleet` sweep: the donor log replicated into `sessions` sessions and
// streamed through a fresh shard group of `workers` in-process worker daemons. The caller
// compares each run's merged report against the workers=1 reference.
FleetLevelResult RunFleetLevel(int32_t workers,
                               std::span<const hangdoctor::SessionLogSlice> slices,
                               std::string* rendered) {
  workload::DistributedFleetOptions options;
  options.workers = workers;
  auto start = std::chrono::steady_clock::now();
  workload::DistributedFleetResult run =
      workload::RunDistributedFleetFromLogs(slices, options);

  FleetLevelResult result;
  result.workers = workers;
  result.sessions = slices.size();
  result.frames_routed = run.frames_routed;
  result.seconds = Seconds(start);
  result.sessions_per_sec = static_cast<double>(slices.size()) / result.seconds;
  result.frames_per_sec = static_cast<double>(run.frames_routed) / result.seconds;
  for (const netd::NetSessionOutcome& outcome : run.outcomes) {
    result.aborted += outcome.aborted ? 1 : 0;
  }
  *rendered = run.merged.Render(static_cast<int32_t>(slices.size()));
  result.rss_mb = ResidentMb();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool net = false;
  bool fleet = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--net") == 0) {
      net = true;
    }
    if (std::strcmp(argv[i], "--fleet") == 0) {
      fleet = true;
    }
  }
  const bool smoke = bench::SmokeRun();
  const simkit::SimDuration donor_session =
      bench::SmokeScaled(simkit::Seconds(60), simkit::Seconds(10));
  const std::vector<size_t> levels =
      smoke ? std::vector<size_t>{1, 10, 100} : std::vector<size_t>{1, 100, 10000};

  // Donor stream: one recorded droidsim session; the replay property guarantees any core
  // fed this stream behaves bit-identically, so N sessions fed the same stream model N
  // concurrent devices exactly.
  workload::Catalog catalog;
  hangdoctor::SpiStreamRecorder recorder;
  hangdoctor::HangDoctorConfig config;
  workload::SingleAppHarness harness(droidsim::LgV10(), catalog.FindApp("K9-Mail"),
                                     /*seed=*/0x5E55);
  {
    hangdoctor::HangDoctor doctor(&harness.phone(), &harness.app(), config,
                                  /*database=*/nullptr, /*fleet_report=*/nullptr,
                                  /*device_id=*/0, &recorder);
    harness.RunUserSession(donor_session, {});
  }

  const unsigned threads = std::max(1u, std::thread::hardware_concurrency());
  const int32_t shards = static_cast<int32_t>(std::max(1u, threads / 2));
  std::printf("donor stream: %zu records (%s session)%s\n", recorder.records().size(),
              "K9-Mail", smoke ? " (smoke)" : "");
  std::printf("machine threads: %u   service shards: %d\n\n", threads, shards);

  std::vector<LevelResult> results;
  for (size_t level : levels) {
    LevelResult result =
        RunLevel(level, recorder.info(), config, recorder.records(), shards);
    std::printf(
        "concurrent=%-6zu  %8.3f s  %10.1f sessions/s  %12.0f records/s  "
        "rss live %.1f MB / closed %.1f MB\n",
        result.concurrent, result.seconds, result.sessions_per_sec, result.records_per_sec,
        result.live_rss_mb, result.closed_rss_mb);
    results.push_back(result);
  }

  const LevelResult& top = results.back();
  double sessions_per_thread = static_cast<double>(top.concurrent) / threads;
  std::printf("\nmax concurrency sustained: %zu sessions in one process = %.1fx the "
              "machine's %u threads\n",
              top.concurrent, sessions_per_thread, threads);

  // Threads axis: same donor stream through the pipelined ingest at 1/2/4 shard workers.
  // Fixed shard count (8, comfortably above the largest thread count) so the sweep varies
  // exactly one knob; session count is sized to run a few seconds per point.
  const std::vector<int32_t> threads_axis = {1, 2, 4};
  const int32_t sweep_shards = 8;
  const size_t sweep_sessions = smoke ? 200 : 10000;
  hangdoctor::SpiPayload open_payload;
  open_payload.kind = hangdoctor::SpiPayload::Kind::kSessionOpen;
  open_payload.info = recorder.info();
  open_payload.config = config;
  hangdoctor::SpiPayload close_payload;
  close_payload.kind = hangdoctor::SpiPayload::Kind::kSessionClose;

  std::printf("\npipelined ingest sweep: %zu sessions, %d shards, per-shard MPMC rings\n",
              sweep_sessions, sweep_shards);
  std::vector<SweepResult> sweep;
  for (int32_t t : threads_axis) {
    SweepResult result = RunSweep(t, sweep_shards, sweep_sessions, open_payload,
                                  close_payload, recorder.records());
    result.speedup = sweep.empty() ? 1.0
                                   : result.sessions_per_sec / sweep.front().sessions_per_sec;
    std::printf("threads=%-2d  %8.3f s  %10.1f sessions/s  %12.0f records/s  %.2fx\n",
                result.threads, result.seconds, result.sessions_per_sec,
                result.records_per_sec, result.speedup);
    sweep.push_back(result);
  }

  // Knowledge-base axis: fleet-scale session count, one live session at a time, the same
  // app build throughout — so diagnosis memos repeat across sessions exactly as they do for
  // a fleet of devices. droidsim's synthetic stacks are far shallower than production
  // Android ones (depth ~2 over a dozen interned methods), which makes a Trace Analyzer run
  // nearly free and would understate the work a shared KB deletes; this axis therefore
  // synthesizes a production-shaped donor — a 6000-method symbol table, 8 hang diagnoses per
  // session, each carrying 25 stack samples of depth 35 — replayed second-phase-only so
  // every hang runs the Diagnoser.
  constexpr uint32_t kKbTable = 6000;
  telemetry::SymbolTable kb_symbols;
  for (uint32_t i = 0; i < kKbTable; ++i) {
    telemetry::StackFrame frame;
    frame.function = "method" + std::to_string(i);
    frame.clazz = "com.example.fleet.Class" + std::to_string(i / 20);
    frame.file = "Class" + std::to_string(i / 20) + ".java";
    frame.line = static_cast<int32_t>(i % 400);
    kb_symbols.Intern(frame, /*is_ui=*/false);
  }
  hangdoctor::SessionInfo kb_info;
  kb_info.app_package = "com.example.fleetapp";
  kb_info.num_actions = 8;
  kb_info.symbols = &kb_symbols;
  hangdoctor::HangDoctorConfig kb_config = config;
  kb_config.second_phase_only = true;
  constexpr uint32_t kKbHangs = 8;
  std::vector<hangdoctor::SpiPayload> kb_records;
  for (uint32_t hang = 0; hang < kKbHangs; ++hang) {
    const simkit::SimTime at = simkit::Seconds(10 * hang + 1);
    hangdoctor::SpiPayload start;
    start.kind = hangdoctor::SpiPayload::Kind::kDispatchStart;
    start.start.now = at;
    start.start.execution_id = hang + 1;
    start.start.action_uid = static_cast<int32_t>(hang % kb_info.num_actions);
    start.start.events_total = 1;
    kb_records.push_back(std::move(start));

    hangdoctor::SpiPayload end;
    end.kind = hangdoctor::SpiPayload::Kind::kDispatchEnd;
    end.end.now = at + simkit::Seconds(6);
    end.end.execution_id = hang + 1;
    end.end.response = simkit::Seconds(6);
    end.end.trace_stopped = true;
    for (uint32_t sample = 0; sample < 25; ++sample) {
      telemetry::StackTrace trace;
      trace.frames.reserve(35);
      for (uint32_t depth = 0; depth + 1 < 35; ++depth) {
        trace.frames.push_back((hang * 131 + depth * 7 + sample % 5) % kKbTable);
      }
      // 80% of the samples bottom out in this hang's culprit API — comfortably past the 50%
      // occurrence threshold — the rest in per-sample noise leaves.
      trace.frames.push_back(sample < 20 ? (hang * 37) % kKbTable
                                         : (hang * 37 + sample) % kKbTable);
      end.samples.push_back(std::move(trace));
    }
    kb_records.push_back(std::move(end));

    hangdoctor::SpiPayload quiesce;
    quiesce.kind = hangdoctor::SpiPayload::Kind::kActionQuiesce;
    quiesce.quiesce.now = at + simkit::Seconds(7);
    quiesce.quiesce.execution_id = hang + 1;
    quiesce.quiesce.action_uid = static_cast<int32_t>(hang % kb_info.num_actions);
    quiesce.quiesce.max_response = simkit::Seconds(6);
    kb_records.push_back(std::move(quiesce));
  }
  const size_t kb_sessions = smoke ? 2000 : 100000;
  const int64_t kb_epoch_sessions = 256;
  std::printf("\nknowledge-base axis: %zu sessions, %zu-record donor (%u diagnoses/session, "
              "%u-method table), epoch every %lld sessions\n",
              kb_sessions, kb_records.size(), kKbHangs, kKbTable,
              static_cast<long long>(kb_epoch_sessions));
  KbArmResult kb_off =
      RunKbArm(kb_sessions, kb_info, kb_config, kb_records, shards, nullptr, 0);
  hangdoctor::KnowledgeBase knowledge_base;
  KbArmResult kb_on = RunKbArm(kb_sessions, kb_info, kb_config, kb_records, shards,
                               &knowledge_base, kb_epoch_sessions);
  double kb_speedup = kb_on.sessions_per_sec / kb_off.sessions_per_sec;
  std::printf("kb off      %8.3f s  %10.1f sessions/s  %lld diagnoser runs  rss %.1f MB\n",
              kb_off.seconds, kb_off.sessions_per_sec,
              static_cast<long long>(kb_off.memo_misses), kb_off.rss_mb);
  std::printf("kb on       %8.3f s  %10.1f sessions/s  %lld diagnoser runs  rss %.1f MB\n",
              kb_on.seconds, kb_on.sessions_per_sec,
              static_cast<long long>(kb_on.memo_misses), kb_on.rss_mb);
  std::printf("kb hit rate %.1f%%  (%lld of %lld diagnoses from published memos)  "
              "speedup %.2fx\n",
              100.0 * kb_on.hit_rate, static_cast<long long>(kb_on.memo_hits),
              static_cast<long long>(kb_on.memo_hits + kb_on.memo_misses), kb_speedup);

  // Net axis (--net): the same service behind the hangdoctord wire stack, swept over
  // concurrent loadgen connections. Donor is one short recorded study-app session; every
  // connection multiplexes two copies under fresh session ids, so the top level holds
  // 2 * connections live sessions behind `connections` sockets.
  std::vector<NetLevelResult> net_levels;
  std::vector<int32_t> net_axis;
  std::string donor_log;  // recorded once, shared by the net and fleet axes
  if (net || fleet) {
    std::filesystem::path net_dir =
        std::filesystem::temp_directory_path() / "hd_bench_service_net";
    std::filesystem::create_directories(net_dir);
    workload::FleetJob donor_job;
    donor_job.spec = catalog.study_apps()[0];
    donor_job.profile = droidsim::LgV10();
    donor_job.seed = workload::FleetSeed(4242, 0);
    donor_job.session = simkit::Seconds(10);
    donor_job.record_path = (net_dir / "donor.hdsl").string();
    workload::FleetJobResult donor_result = workload::RunFleetJob(donor_job);
    if (!donor_result.ok || !donor_result.record_ok) {
      std::fprintf(stderr, "donor recording failed: %s%s\n",
                   donor_result.error.c_str(), donor_result.record_error.c_str());
      return 1;
    }
    std::ifstream donor_in(donor_job.record_path, std::ios::binary);
    donor_log.assign(std::istreambuf_iterator<char>(donor_in),
                     std::istreambuf_iterator<char>());
  }
  if (net) {
    net_axis = smoke ? std::vector<int32_t>{8, 32, 128}
                     : std::vector<int32_t>{64, 256, 1024};
    const int32_t net_workers = static_cast<int32_t>(std::min(4u, threads));
    std::printf("\nnet axis (--net): loopback hangdoctord ingest, %d epoll workers, "
                "%zu-byte donor log, 2 sessions per connection\n",
                net_workers, donor_log.size());
    for (int32_t connections : net_axis) {
      NetLevelResult result = RunNetLevel(connections, donor_log, net_workers, shards);
      std::printf("connections=%-5d  %8.3f s  %10.1f sessions/s  %lld closed  %lld busy  "
                  "%lld errors  rss %.1f MB\n",
                  result.connections, result.seconds, result.sessions_per_sec,
                  static_cast<long long>(result.sessions_closed),
                  static_cast<long long>(result.busy),
                  static_cast<long long>(result.errors), result.rss_mb);
      net_levels.push_back(result);
    }
  }

  // Fleet axis (--fleet): the donor sessions through the coordinator/worker shard group,
  // swept over the worker count. Every run must fold the same merged report — the workers=1
  // run is the reference — so the axis tracks both distributed throughput and the
  // determinism contract the distributed fleet is built on.
  std::vector<FleetLevelResult> fleet_levels;
  std::vector<int32_t> fleet_axis;
  if (fleet) {
    fleet_axis = {1, 2, 4};
    const size_t fleet_sessions = smoke ? 16 : 64;
    std::vector<hangdoctor::SessionLogSlice> fleet_slices;
    fleet_slices.reserve(fleet_sessions);
    for (size_t i = 0; i < fleet_sessions; ++i) {
      fleet_slices.push_back({telemetry::SessionId{i + 1}, donor_log});
    }
    std::printf("\nfleet axis (--fleet): coordinator/worker shard group, %zu sessions, "
                "%zu-byte donor log\n",
                fleet_sessions, donor_log.size());
    std::string reference;
    for (int32_t workers : fleet_axis) {
      std::string rendered;
      FleetLevelResult result = RunFleetLevel(workers, fleet_slices, &rendered);
      if (workers == fleet_axis.front()) {
        reference = rendered;
      }
      result.report_identical = rendered == reference;
      std::printf("workers=%-2d  %8.3f s  %10.1f sessions/s  %12.0f frames/s  "
                  "%zu aborted  report %s  rss %.1f MB\n",
                  result.workers, result.seconds, result.sessions_per_sec,
                  result.frames_per_sec, result.aborted,
                  result.report_identical ? "identical" : "DIVERGED", result.rss_mb);
      fleet_levels.push_back(result);
    }
  }

  std::FILE* json = std::fopen("BENCH_service.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_service.json\n");
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"service\",\n");
  std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(json, "  \"donor_records\": %zu,\n", recorder.records().size());
  std::fprintf(json, "  \"threads\": %u,\n", threads);
  std::fprintf(json, "  \"shards\": %d,\n", shards);
  std::fprintf(json, "  \"levels\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const LevelResult& r = results[i];
    std::fprintf(json,
                 "    {\"concurrent_sessions\": %zu, \"seconds\": %.3f, "
                 "\"sessions_per_sec\": %.2f, \"records_per_sec\": %.0f, "
                 "\"live_rss_mb\": %.1f, \"closed_rss_mb\": %.1f}%s\n",
                 r.concurrent, r.seconds, r.sessions_per_sec, r.records_per_sec,
                 r.live_rss_mb, r.closed_rss_mb, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"threads_axis\": [");
  for (size_t i = 0; i < threads_axis.size(); ++i) {
    std::fprintf(json, "%d%s", threads_axis[i], i + 1 < threads_axis.size() ? ", " : "");
  }
  std::fprintf(json, "],\n");
  std::fprintf(json, "  \"threads_sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepResult& r = sweep[i];
    std::fprintf(json,
                 "    {\"threads\": %d, \"shards\": %d, \"sessions\": %zu, "
                 "\"seconds\": %.3f, \"sessions_per_sec\": %.2f, "
                 "\"records_per_sec\": %.0f, \"speedup\": %.3f}%s\n",
                 r.threads, r.shards, r.sessions, r.seconds, r.sessions_per_sec,
                 r.records_per_sec, r.speedup, i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"kb_axis\": {\n");
  std::fprintf(json, "    \"sessions\": %zu,\n", kb_sessions);
  std::fprintf(json, "    \"donor_records\": %zu,\n", kb_records.size());
  std::fprintf(json, "    \"epoch_sessions\": %lld,\n",
               static_cast<long long>(kb_epoch_sessions));
  std::fprintf(json,
               "    \"off\": {\"seconds\": %.3f, \"sessions_per_sec\": %.2f, "
               "\"diagnoser_runs\": %lld, \"rss_mb\": %.1f},\n",
               kb_off.seconds, kb_off.sessions_per_sec,
               static_cast<long long>(kb_off.memo_misses), kb_off.rss_mb);
  std::fprintf(json,
               "    \"on\": {\"seconds\": %.3f, \"sessions_per_sec\": %.2f, "
               "\"diagnoser_runs\": %lld, \"rss_mb\": %.1f},\n",
               kb_on.seconds, kb_on.sessions_per_sec,
               static_cast<long long>(kb_on.memo_misses), kb_on.rss_mb);
  std::fprintf(json, "    \"memo_hits\": %lld,\n", static_cast<long long>(kb_on.memo_hits));
  std::fprintf(json, "    \"hit_rate\": %.4f,\n", kb_on.hit_rate);
  std::fprintf(json, "    \"speedup\": %.3f\n", kb_speedup);
  std::fprintf(json, "  },\n");
  if (net) {
    std::fprintf(json, "  \"net_axis\": [\n");
    for (size_t i = 0; i < net_levels.size(); ++i) {
      const NetLevelResult& r = net_levels[i];
      std::fprintf(json,
                   "    {\"connections\": %d, \"sessions\": %zu, \"seconds\": %.3f, "
                   "\"sessions_per_sec\": %.2f, \"sessions_closed\": %lld, "
                   "\"busy\": %lld, \"errors\": %lld, \"rss_mb\": %.1f}%s\n",
                   r.connections, r.sessions, r.seconds, r.sessions_per_sec,
                   static_cast<long long>(r.sessions_closed),
                   static_cast<long long>(r.busy), static_cast<long long>(r.errors),
                   r.rss_mb, i + 1 < net_levels.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
  }
  if (fleet) {
    std::fprintf(json, "  \"fleet_axis\": [\n");
    for (size_t i = 0; i < fleet_levels.size(); ++i) {
      const FleetLevelResult& r = fleet_levels[i];
      std::fprintf(json,
                   "    {\"workers\": %d, \"sessions\": %zu, \"frames_routed\": %lld, "
                   "\"seconds\": %.3f, \"sessions_per_sec\": %.2f, "
                   "\"frames_per_sec\": %.0f, \"aborted\": %zu, "
                   "\"report_identical\": %s, \"rss_mb\": %.1f}%s\n",
                   r.workers, r.sessions, static_cast<long long>(r.frames_routed),
                   r.seconds, r.sessions_per_sec, r.frames_per_sec, r.aborted,
                   r.report_identical ? "true" : "false", r.rss_mb,
                   i + 1 < fleet_levels.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
  }
  std::fprintf(json, "  \"max_concurrent_sessions\": %zu,\n", top.concurrent);
  std::fprintf(json, "  \"sessions_per_thread\": %.1f,\n", sessions_per_thread);
  std::fprintf(json, "  \"peak_rss_mb\": %.1f\n", PeakRssMb());
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("wrote BENCH_service.json\n");
  return 0;
}
