// Reproduces Table 4 of the paper: sensitivity of the correlation analysis to the training
// set. The analysis is re-run on random 75% and 50% subsets of the training samples; the
// paper's claim is that the top-5 events (context-switches, task-clock, cpu-clock,
// page-faults, minor-faults) keep their ranking positions while coefficients may grow on
// smaller sets (fewer points are easier to separate).
#include <algorithm>
#include <array>
#include <cstdio>
#include <set>
#include <vector>

#include "src/simkit/rng.h"
#include "src/simkit/thread_pool.h"
#include "src/workload/fleet.h"
#include "src/workload/training.h"

namespace {

std::vector<hangdoctor::LabeledSample> Subsample(
    const std::vector<hangdoctor::LabeledSample>& samples, double fraction, simkit::Rng* rng) {
  std::vector<hangdoctor::LabeledSample> subset;
  for (const hangdoctor::LabeledSample& sample : samples) {
    if (rng->Bernoulli(fraction)) {
      subset.push_back(sample);
    }
  }
  return subset;
}

void PrintTopTen(const char* title, const std::vector<hangdoctor::RankedEvent>& ranking) {
  std::printf("%s\n  %-26s %s\n", title, "Performance Event", "Corr. Coeff.");
  for (size_t i = 0; i < 10 && i < ranking.size(); ++i) {
    std::printf("  %-26s %.3f\n", telemetry::PerfEventName(ranking[i].event).c_str(),
                ranking[i].correlation);
  }
  std::printf("\n");
}

std::set<telemetry::PerfEventType> TopFive(const std::vector<hangdoctor::RankedEvent>& ranking) {
  std::set<telemetry::PerfEventType> top;
  for (size_t i = 0; i < 5 && i < ranking.size(); ++i) {
    top.insert(ranking[i].event);
  }
  return top;
}

}  // namespace

int main(int argc, char** argv) {
  workload::Catalog catalog;
  workload::TrainingConfig config;
  workload::TrainingData data = workload::CollectTrainingSamples(catalog, config);
  simkit::Rng rng(2024, 4);

  // The subsampling stays sequential (both subsets draw from one rng stream), then the
  // three independent rankings fan out across the fleet pool.
  std::vector<hangdoctor::LabeledSample> subset75 = Subsample(data.diff_samples, 0.75, &rng);
  std::vector<hangdoctor::LabeledSample> subset50 = Subsample(data.diff_samples, 0.50, &rng);
  const std::array<const std::vector<hangdoctor::LabeledSample>*, 3> sets = {
      &data.diff_samples, &subset75, &subset50};
  std::array<std::vector<hangdoctor::RankedEvent>, 3> rankings;
  simkit::ThreadPool pool(workload::ResolveJobs(argc, argv));
  pool.ParallelFor(3, [&](int64_t i) { rankings[i] = hangdoctor::RankEvents(*sets[i]); });
  std::vector<hangdoctor::RankedEvent>& full = rankings[0];
  std::vector<hangdoctor::RankedEvent>& r75 = rankings[1];
  std::vector<hangdoctor::RankedEvent>& r50 = rankings[2];

  std::printf("=== Table 4: sensitivity of the correlation analysis to the training set ===\n");
  std::printf("full set: %zu samples; 75%% set: %zu; 50%% set: %zu\n\n",
              data.diff_samples.size(), subset75.size(), subset50.size());
  PrintTopTen("(full) training set", full);
  PrintTopTen("(a) 75% training set", r75);
  PrintTopTen("(b) 50% training set", r50);

  std::set<telemetry::PerfEventType> top_full = TopFive(full);
  std::set<telemetry::PerfEventType> top75 = TopFive(r75);
  std::set<telemetry::PerfEventType> top50 = TopFive(r50);
  size_t stable75 = 0;
  size_t stable50 = 0;
  for (telemetry::PerfEventType event : top_full) {
    stable75 += top75.count(event);
    stable50 += top50.count(event);
  }
  std::printf("top-5 overlap with the full set: 75%% set -> %zu/5, 50%% set -> %zu/5 "
              "(paper: 5/5 for both)\n",
              stable75, stable50);
  return 0;
}
