// Reproduces Figure 8 of the paper: detection performance and overhead of Hang Doctor (HD)
// against the runtime baselines — Timeout-based (TI, 100 ms), Utilization-based with low/high
// thresholds (UTL/UTH), and their combinations (UTL+TI / UTH+TI) — all observing the SAME user
// trace per app. True/false positives are normalized to TI, which traces every soft hang and
// therefore has no false negatives.
//
// Paper reference shapes:
//  (a) HD traces ~80% of the bug hangs TI traces; UTH misses ~62% of them.
//  (b) HD traces <10% of TI's false positives; UTL traces 8-22x MORE than TI; UTH ~0.
//  (c) Overheads: UTL ~25%, UTH ~10%, TI ~2.26%, UTL+TI ~ a few %, UTH+TI ~0.58%, HD ~0.83%.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/smoke.h"
#include "src/baselines/combined_detector.h"
#include "src/baselines/timeout_detector.h"
#include "src/baselines/utilization_detector.h"
#include "src/hosts/hang_doctor.h"
#include "src/workload/experiment.h"

namespace {

const simkit::SimDuration kSessionLength =
    bench::SmokeScaled(simkit::Seconds(600), simkit::Seconds(60));
const char* kApps[] = {"AndStatus", "CycleStreets", "K9-Mail", "Omni-Notes", "UOITDC Booking"};

}  // namespace

int main() {
  workload::Catalog catalog;
  std::printf("=== Figure 8: detection performance and overhead, normalized to TI ===\n\n");

  std::vector<std::string> names = {"HD", "TI", "UTL", "UTH", "UTL+TI", "UTH+TI"};
  std::map<std::string, workload::DetectionStats> aggregate;

  for (const char* app_name : kApps) {
    const droidsim::AppSpec* spec = catalog.FindApp(app_name);
    // Calibrate the utilization thresholds from bug hangs observed without any detector, as
    // the paper derives UTL (minimum observed) and UTH (90% of peak) per app.
    workload::CalibratedThresholds thresholds =
        workload::CalibrateUtilization(droidsim::LgV10(), spec, /*seed=*/555, kSessionLength);

    workload::SingleAppHarness harness(droidsim::LgV10(), spec, /*seed=*/777);
    hangdoctor::HangDoctor doctor(&harness.phone(), &harness.app(),
                                  hangdoctor::HangDoctorConfig{});
    baselines::TimeoutDetectorConfig ti_config;
    baselines::TimeoutDetector ti(&harness.phone(), &harness.app(), ti_config);
    baselines::UtilizationDetectorConfig utl_config;
    utl_config.thresholds = thresholds.low;
    utl_config.label = "UTL";
    baselines::UtilizationDetector utl(&harness.phone(), &harness.app(), utl_config);
    baselines::UtilizationDetectorConfig uth_config;
    uth_config.thresholds = thresholds.high;
    uth_config.label = "UTH";
    baselines::UtilizationDetector uth(&harness.phone(), &harness.app(), uth_config);
    baselines::CombinedDetectorConfig utl_ti_config;
    utl_ti_config.thresholds = thresholds.low;
    utl_ti_config.label = "UTL+TI";
    baselines::CombinedDetector utl_ti(&harness.phone(), &harness.app(), utl_ti_config);
    baselines::CombinedDetectorConfig uth_ti_config;
    uth_ti_config.thresholds = thresholds.high;
    uth_ti_config.label = "UTH+TI";
    baselines::CombinedDetector uth_ti(&harness.phone(), &harness.app(), uth_ti_config);

    harness.RunUserSession(kSessionLength);
    workload::TraceUsage usage = harness.Usage();

    auto score_baseline = [&](const baselines::Detector& detector) {
      workload::DetectionStats stats = workload::ScoreDetector(
          harness.truth(), detector.outcomes(), detector.spurious_detections());
      stats.overhead_pct = detector.overhead().OverheadPercent(usage.cpu, usage.bytes);
      return stats;
    };
    workload::DetectionStats hd_stats = workload::ScoreHangDoctor(harness.truth(), doctor.log());
    hd_stats.overhead_pct = doctor.overhead().OverheadPercent(usage.cpu, usage.bytes);
    std::map<std::string, workload::DetectionStats> per_detector;
    per_detector["HD"] = hd_stats;
    per_detector["TI"] = score_baseline(ti);
    per_detector["UTL"] = score_baseline(utl);
    per_detector["UTH"] = score_baseline(uth);
    per_detector["UTL+TI"] = score_baseline(utl_ti);
    per_detector["UTH+TI"] = score_baseline(uth_ti);

    const workload::DetectionStats& ti_stats = per_detector["TI"];
    std::printf("%s (bug hangs: %ld, UI hangs: %ld; TI traced %ld TP / %ld FP)\n", app_name,
                static_cast<long>(ti_stats.bug_hangs), static_cast<long>(ti_stats.ui_hangs),
                static_cast<long>(ti_stats.true_positives),
                static_cast<long>(ti_stats.false_positives));
    std::printf("  %-8s %14s %14s %10s\n", "detector", "TP (norm. TI)", "FP (norm. TI)",
                "overhead");
    for (const std::string& name : names) {
      const workload::DetectionStats& stats = per_detector[name];
      double tp_norm = ti_stats.true_positives > 0
                           ? static_cast<double>(stats.true_positives) /
                                 static_cast<double>(ti_stats.true_positives)
                           : 0.0;
      double fp_norm = ti_stats.false_positives > 0
                           ? static_cast<double>(stats.false_positives) /
                                 static_cast<double>(ti_stats.false_positives)
                           : 0.0;
      std::printf("  %-8s %14.2f %14.2f %9.2f%%\n", name.c_str(), tp_norm, fp_norm,
                  stats.overhead_pct);
      aggregate[name] += stats;
    }
    std::printf("\n");
  }

  std::printf("Average across apps (TP/FP normalized to TI's totals, overhead averaged):\n");
  std::printf("  %-8s %14s %14s %10s   %s\n", "detector", "TP (norm. TI)", "FP (norm. TI)",
              "overhead", "paper (TP, FP, overhead)");
  const workload::DetectionStats& ti_total = aggregate["TI"];
  const std::map<std::string, std::string> paper = {
      {"HD", "0.80, <0.10, 0.83%"},  {"TI", "1.00, 1.00, 2.26%"}, {"UTL", "1.00, 8-22x, ~25%"},
      {"UTH", "0.38, ~0, ~10%"},     {"UTL+TI", "<UTL, <UTL, -"}, {"UTH+TI", "0.34, ~0, 0.58%"},
  };
  for (const std::string& name : names) {
    const workload::DetectionStats& stats = aggregate[name];
    double tp_norm = ti_total.true_positives > 0
                         ? static_cast<double>(stats.true_positives) /
                               static_cast<double>(ti_total.true_positives)
                         : 0.0;
    double fp_norm = ti_total.false_positives > 0
                         ? static_cast<double>(stats.false_positives) /
                               static_cast<double>(ti_total.false_positives)
                         : 0.0;
    std::printf("  %-8s %14.2f %14.2f %9.2f%%   %s\n", name.c_str(), tp_norm, fp_norm,
                stats.overhead_pct / 5.0, paper.at(name).c_str());
  }
  return 0;
}
