// Reproduces Figure 6 of the paper: the end-to-end K9-mail walkthrough. The user opens heavy
// HTML emails; (a) S-Checker observes a >100 ms input event and a positive context-switch
// difference at action end, marking Open-Email Suspicious; (b) at a later soft hang the
// Diagnoser collects stack traces, finds `clean(HtmlSanitizer.java:25)` with a ~96% occurrence
// factor, and confirms the soft hang bug (paper's hang: 1.3 s, 62 traces).
#include <cstdio>
#include <map>

#include "src/hosts/hang_doctor.h"
#include "src/workload/catalog.h"
#include "src/workload/user_model.h"

int main() {
  workload::Catalog catalog;
  const droidsim::AppSpec* spec = catalog.FindApp("K9-Mail");
  droidsim::Phone phone(droidsim::LgV10(), /*seed=*/21);
  droidsim::App* app = phone.InstallApp(spec);
  hangdoctor::HangDoctorConfig config;
  config.keep_traces = true;
  hangdoctor::HangDoctor doctor(&phone, app, config);

  int32_t open_email = -1;
  for (int32_t i = 0; i < app->num_actions(); ++i) {
    if (app->action(i).name == "OpenEmail") {
      open_email = i;
    }
  }
  // The user keeps opening emails until the bug is diagnosed.
  workload::UserSessionConfig user_config;
  user_config.mean_think = simkit::Seconds(2);
  user_config.min_think = simkit::Seconds(2);
  workload::UserSession user(&phone, app, std::vector<int32_t>(30, open_email), user_config);
  phone.RunFor(simkit::Seconds(90));

  std::printf("=== Figure 6: runtime detection walkthrough on K9-Mail ===\n\n");
  std::printf("(a) per-execution trail of the Open-Email action:\n");
  const hangdoctor::ExecutionRecord* diagnosed = nullptr;
  for (const hangdoctor::ExecutionRecord& record : doctor.log()) {
    if (record.action_uid != open_email) {
      continue;
    }
    std::printf("  exec %2ld: response %6.0f ms, state=%-13s -> %-17s ctx-diff=%+.0f\n",
                static_cast<long>(record.execution_id),
                simkit::ToMilliseconds(record.response),
                hangdoctor::ActionStateName(record.state_before),
                hangdoctor::VerdictName(record.verdict),
                record.schecker_diffs[static_cast<size_t>(
                    telemetry::PerfEventType::kContextSwitches)]);
    if (record.verdict == hangdoctor::Verdict::kDiagnosedBug && diagnosed == nullptr) {
      diagnosed = &record;
    }
  }
  if (diagnosed == nullptr) {
    std::printf("  !! the bug was never diagnosed (unexpected)\n");
    return 1;
  }

  std::printf("\n(b) stack traces collected during the diagnosing soft hang "
              "(%zu traces, response %.0f ms):\n",
              diagnosed->traces.size(), simkit::ToMilliseconds(diagnosed->response));
  size_t shown = 0;
  for (size_t i = 0; i < diagnosed->traces.size(); ++i) {
    if (i > 2 && i + 3 < diagnosed->traces.size()) {
      if (shown == 3) {
        std::printf("  ....\n");
        ++shown;
      }
      continue;
    }
    const telemetry::StackTrace& trace = diagnosed->traces[i];
    std::printf("  [ST %2zu] ", i + 1);
    for (size_t f = trace.frames.size(); f > 0; --f) {
      std::printf("%s%s",
                  telemetry::FormatFrame(app->symbols().Frame(trace.frames[f - 1])).c_str(),
                  f > 1 ? " -> " : "");
    }
    std::printf("\n");
    ++shown;
  }
  std::printf("\nDiagnosis: culprit %s.%s (%s:%d), occurrence factor %.0f%%%s\n",
              diagnosed->diagnosis.culprit.clazz.c_str(),
              diagnosed->diagnosis.culprit.function.c_str(),
              diagnosed->diagnosis.culprit.file.c_str(), diagnosed->diagnosis.culprit.line,
              100.0 * diagnosed->diagnosis.occurrence_factor,
              diagnosed->diagnosis.is_ui ? " [UI]" : " [soft hang bug]");
  std::printf("paper: clean(HtmlSanitizer.java:25), occurrence factor 96%%, hang 1.3 s\n");
  return 0;
}
