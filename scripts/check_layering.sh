#!/usr/bin/env bash
# Layering check for the substrate-agnostic detector core (DESIGN.md section 3.3).
#
# src/hangdoctor/ is the Hang Doctor core: it may depend only on the Telemetry Host SPI
# vocabulary (src/telemetry/) and simkit time/ids/rng. Substrate knowledge — the droidsim
# Android model, the perfsim counter model, the kernelsim scheduler — lives in the hosts
# (src/hosts/, src/baselines adapters). An include of a substrate header from the core is a
# layering violation: it would break the record/replay guarantee that a session log is a
# complete description of everything the detector observed.
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
core_dir="$repo_root/src/hangdoctor"

if [ ! -d "$core_dir" ]; then
  echo "layering check: $core_dir not found" >&2
  exit 2
fi

# faultsim is also forbidden: fault *injection* is a host-side concern — the core only ever
# sees the faulty telemetry (and CounterFault records), never the plan that produced it.
violations=$(grep -rnE '#include "src/(droidsim|perfsim|kernelsim|hosts|baselines|workload|faultsim)/' \
  "$core_dir" || true)

if [ -n "$violations" ]; then
  echo "layering violation: src/hangdoctor must not include substrate or host headers:" >&2
  echo "$violations" >&2
  exit 1
fi

# The PR-3 compatibility shims (src/perfsim/events.h, src/droidsim/stack.h) re-exported the
# telemetry vocabulary into substrate namespaces; they are deleted and must not come back —
# neither the headers, nor alias-qualified uses of the telemetry names they exported.
shim_includes=$(grep -rnE '#include "src/(perfsim/events|droidsim/stack)\.h"' \
  "$repo_root/src" "$repo_root/tests" "$repo_root/bench" "$repo_root/examples" \
  "$repo_root/tools" 2>/dev/null || true)
alias_uses=$(grep -rnE \
  'perfsim::(PerfEventType|kNumPerfEvents|IsSoftwareEvent|PerfEventName|PerfEventFromName|AllPerfEvents|CounterArray)|droidsim::(FrameId|StackFrame|StackTrace|FormatFrame)\b' \
  --include='*.h' --include='*.cc' --include='*.cpp' \
  "$repo_root/src" "$repo_root/tests" "$repo_root/bench" "$repo_root/examples" \
  "$repo_root/tools" 2>/dev/null || true)

if [ -n "$shim_includes$alias_uses" ]; then
  echo "layering violation: the telemetry vocabulary must be used via telemetry::, not the" >&2
  echo "deleted perfsim/droidsim alias shims:" >&2
  [ -n "$shim_includes" ] && echo "$shim_includes" >&2
  [ -n "$alias_uses" ] && echo "$alias_uses" >&2
  exit 1
fi

# The async-execution substrate (DESIGN.md section 3.8) lives entirely in droidsim; only the
# telemetry:: causal vocabulary (CausalEdgeId, ThreadId, the Async* SPI records) crosses the
# SPI. A droidsim async type or hook name appearing in the core would tie waiting-chain
# diagnosis to one substrate's threading model and break session-log replay.
async_uses=$(grep -rnE \
  'droidsim::(AsyncOp|AsyncTask|App|AppObserver)\b|MakeAsyncSubmit|MakeFutureWait|PostAsync|AsyncReady|BeginAsyncWait|EndAsyncWait' \
  --include='*.h' --include='*.cc' "$core_dir" 2>/dev/null || true)

if [ -n "$async_uses" ]; then
  echo "layering violation: src/hangdoctor must not name droidsim async substrate types;" >&2
  echo "only the telemetry:: causal vocabulary crosses the SPI:" >&2
  echo "$async_uses" >&2
  exit 1
fi

echo "layering ok: src/hangdoctor depends only on src/telemetry and src/simkit"
echo "layering ok: no perfsim/droidsim alias-shim usage"
echo "layering ok: no droidsim async substrate types in the core"
