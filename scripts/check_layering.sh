#!/usr/bin/env bash
# Layering check for the substrate-agnostic detector core (DESIGN.md section 3.3).
#
# src/hangdoctor/ is the Hang Doctor core: it may depend only on the Telemetry Host SPI
# vocabulary (src/telemetry/) and simkit time/ids/rng. Substrate knowledge — the droidsim
# Android model, the perfsim counter model, the kernelsim scheduler — lives in the hosts
# (src/hosts/, src/baselines adapters). An include of a substrate header from the core is a
# layering violation: it would break the record/replay guarantee that a session log is a
# complete description of everything the detector observed.
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
core_dir="$repo_root/src/hangdoctor"

if [ ! -d "$core_dir" ]; then
  echo "layering check: $core_dir not found" >&2
  exit 2
fi

# faultsim is also forbidden: fault *injection* is a host-side concern — the core only ever
# sees the faulty telemetry (and CounterFault records), never the plan that produced it.
violations=$(grep -rnE '#include "src/(droidsim|perfsim|kernelsim|hosts|baselines|workload|faultsim)/' \
  "$core_dir" || true)

if [ -n "$violations" ]; then
  echo "layering violation: src/hangdoctor must not include substrate or host headers:" >&2
  echo "$violations" >&2
  exit 1
fi

echo "layering ok: src/hangdoctor depends only on src/telemetry and src/simkit"
