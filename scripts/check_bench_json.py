#!/usr/bin/env python3
"""Schema and sanity gate for BENCH_service.json (CI perf-smoke leg).

The bench uploads its JSON as a per-PR perf data point; this gate makes sure a silently
broken bench cannot upload garbage that later reads as a regression — or hides one. Checks:

  - required top-level fields and types, bench == "service";
  - capacity levels: non-empty, strictly increasing concurrent_sessions, positive rates;
  - threads axis: present, sorted, unique, aligned one-to-one with threads_sweep;
  - every sweep entry: positive seconds/sessions, rates positive and non-absurd, speedup in
    a generous-but-finite band (hard scaling claims are the release bench's job; this gate
    only rejects numbers no real machine produces);
  - kb axis: off/on arms internally consistent (runs + hits == total diagnoses, hit_rate in
    [0, 1], the on arm never runs the diagnoser more often than the off arm);
  - net axis (required under --net, validated whenever present): strictly increasing
    connection counts, every session closed, zero admission refusals and protocol errors —
    the wire sweep ran clean at every concurrency level;
  - fleet axis (required under --fleet, validated whenever present): strictly increasing
    worker counts, a constant session count, zero aborted sessions, and report_identical
    true at every point — the distributed shard group folded the same merged report at
    every width, which is the determinism contract the fleet is built on.

Usage: check_bench_json.py BENCH_service.json [--net] [--fleet]

Exits non-zero with a one-line reason on the first violation.
"""

import json
import sys


def fail(reason: str) -> None:
    print(f"check_bench_json: FAIL: {reason}", file=sys.stderr)
    sys.exit(1)


def require(condition: bool, reason: str) -> None:
    if not condition:
        fail(reason)


def is_num(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def main() -> None:
    arguments = sys.argv[1:]
    expect_net = "--net" in arguments
    expect_fleet = "--fleet" in arguments
    positional = [a for a in arguments if a not in ("--net", "--fleet")]
    if len(positional) != 1:
        fail("usage: check_bench_json.py BENCH_service.json [--net] [--fleet]")
    path = positional[0]
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot parse {path}: {error}")

    require(data.get("bench") == "service", f'bench != "service": {data.get("bench")!r}')
    require(isinstance(data.get("smoke"), bool), "smoke missing or not a bool")
    require(is_num(data.get("donor_records")) and data["donor_records"] > 0,
            "donor_records missing or not positive")
    require(is_num(data.get("peak_rss_mb")) and data["peak_rss_mb"] > 0,
            "peak_rss_mb missing or not positive")

    levels = data.get("levels")
    require(isinstance(levels, list) and levels, "levels missing or empty")
    previous_sessions = 0
    for i, level in enumerate(levels):
        require(isinstance(level, dict), f"levels[{i}] is not an object")
        sessions = level.get("concurrent_sessions")
        require(is_num(sessions) and sessions > previous_sessions,
                f"levels[{i}].concurrent_sessions not strictly increasing")
        previous_sessions = sessions
        for field in ("sessions_per_sec", "records_per_sec"):
            rate = level.get(field)
            require(is_num(rate) and 0 < rate < 1e9,
                    f"levels[{i}].{field} missing, non-positive, or absurd: {rate!r}")
        require(is_num(level.get("seconds")) and level["seconds"] >= 0,
                f"levels[{i}].seconds missing or negative")

    axis = data.get("threads_axis")
    require(isinstance(axis, list) and axis, "threads_axis missing or empty")
    require(all(isinstance(t, int) and t >= 1 for t in axis),
            f"threads_axis entries must be ints >= 1: {axis!r}")
    require(axis == sorted(set(axis)), f"threads_axis must be sorted and unique: {axis!r}")

    sweep = data.get("threads_sweep")
    require(isinstance(sweep, list) and sweep, "threads_sweep missing or empty")
    require(len(sweep) == len(axis),
            f"threads_sweep has {len(sweep)} entries for a {len(axis)}-point threads_axis")
    for i, entry in enumerate(sweep):
        require(isinstance(entry, dict), f"threads_sweep[{i}] is not an object")
        require(entry.get("threads") == axis[i],
                f"threads_sweep[{i}].threads = {entry.get('threads')!r}, axis says {axis[i]}")
        require(is_num(entry.get("shards")) and entry["shards"] >= 1,
                f"threads_sweep[{i}].shards missing or < 1")
        require(is_num(entry.get("sessions")) and entry["sessions"] > 0,
                f"threads_sweep[{i}].sessions missing or not positive")
        require(is_num(entry.get("seconds")) and entry["seconds"] > 0,
                f"threads_sweep[{i}].seconds missing or not positive")
        for field in ("sessions_per_sec", "records_per_sec"):
            rate = entry.get(field)
            require(is_num(rate) and 0 < rate < 1e9,
                    f"threads_sweep[{i}].{field} missing, non-positive, or absurd: {rate!r}")
        require(entry["records_per_sec"] >= entry["sessions_per_sec"],
                f"threads_sweep[{i}]: records_per_sec < sessions_per_sec "
                "(every session carries at least one record)")
        speedup = entry.get("speedup")
        require(is_num(speedup) and 0.02 < speedup < 1000,
                f"threads_sweep[{i}].speedup missing or absurd: {speedup!r}")
    require(abs(sweep[0]["speedup"] - 1.0) < 1e-9,
            f"threads_sweep[0].speedup must be 1.0 (its own baseline): {sweep[0]['speedup']!r}")

    kb = data.get("kb_axis")
    require(isinstance(kb, dict), "kb_axis missing or not an object")
    for field in ("sessions", "donor_records", "epoch_sessions"):
        require(is_num(kb.get(field)) and kb[field] > 0,
                f"kb_axis.{field} missing or not positive")
    for arm in ("off", "on"):
        entry = kb.get(arm)
        require(isinstance(entry, dict), f"kb_axis.{arm} missing or not an object")
        require(is_num(entry.get("seconds")) and entry["seconds"] > 0,
                f"kb_axis.{arm}.seconds missing or not positive")
        rate = entry.get("sessions_per_sec")
        require(is_num(rate) and 0 < rate < 1e9,
                f"kb_axis.{arm}.sessions_per_sec missing, non-positive, or absurd: {rate!r}")
        require(is_num(entry.get("diagnoser_runs")) and entry["diagnoser_runs"] >= 0,
                f"kb_axis.{arm}.diagnoser_runs missing or negative")
        require(is_num(entry.get("rss_mb")) and entry["rss_mb"] > 0,
                f"kb_axis.{arm}.rss_mb missing or not positive")
    require(is_num(kb.get("memo_hits")) and kb["memo_hits"] >= 0,
            "kb_axis.memo_hits missing or negative")
    require(is_num(kb.get("hit_rate")) and 0 <= kb["hit_rate"] <= 1,
            f"kb_axis.hit_rate not in [0, 1]: {kb.get('hit_rate')!r}")
    # Both arms replay the same donor into the same session count, so total diagnoses agree:
    # every diagnosis the on arm did not run came from a memo.
    require(kb["on"]["diagnoser_runs"] + kb["memo_hits"] == kb["off"]["diagnoser_runs"],
            "kb_axis: on.diagnoser_runs + memo_hits != off.diagnoser_runs")
    require(kb["on"]["diagnoser_runs"] <= kb["off"]["diagnoser_runs"],
            "kb_axis: the KB arm ran the diagnoser more often than the baseline")
    speedup = kb.get("speedup")
    require(is_num(speedup) and 0.02 < speedup < 1000,
            f"kb_axis.speedup missing or absurd: {speedup!r}")

    net = data.get("net_axis")
    if expect_net:
        require(net is not None, "net_axis missing (bench_service must run with --net)")
    net_note = ""
    if net is not None:
        require(isinstance(net, list) and net, "net_axis present but not a non-empty list")
        previous_connections = 0
        for i, entry in enumerate(net):
            require(isinstance(entry, dict), f"net_axis[{i}] is not an object")
            connections = entry.get("connections")
            require(is_num(connections) and connections > previous_connections,
                    f"net_axis[{i}].connections not strictly increasing: {connections!r}")
            previous_connections = connections
            sessions = entry.get("sessions")
            require(is_num(sessions) and sessions > 0,
                    f"net_axis[{i}].sessions missing or not positive")
            require(is_num(entry.get("seconds")) and entry["seconds"] > 0,
                    f"net_axis[{i}].seconds missing or not positive")
            rate = entry.get("sessions_per_sec")
            require(is_num(rate) and 0 < rate < 1e9,
                    f"net_axis[{i}].sessions_per_sec missing, non-positive, or absurd: "
                    f"{rate!r}")
            require(entry.get("sessions_closed") == sessions,
                    f"net_axis[{i}]: {entry.get('sessions_closed')!r} of {sessions} "
                    "sessions closed — the wire sweep lost sessions")
            require(entry.get("busy") == 0,
                    f"net_axis[{i}].busy != 0: the sweep hit admission refusals")
            require(entry.get("errors") == 0,
                    f"net_axis[{i}].errors != 0: the sweep hit protocol errors")
            require(is_num(entry.get("rss_mb")) and entry["rss_mb"] > 0,
                    f"net_axis[{i}].rss_mb missing or not positive")
        net_note = (f", net axis {[e['connections'] for e in net]} connections "
                    f"(top rss {net[-1]['rss_mb']:.0f} MB)")

    fleet = data.get("fleet_axis")
    if expect_fleet:
        require(fleet is not None,
                "fleet_axis missing (bench_service must run with --fleet)")
    fleet_note = ""
    if fleet is not None:
        require(isinstance(fleet, list) and fleet,
                "fleet_axis present but not a non-empty list")
        previous_workers = 0
        fleet_sessions = None
        for i, entry in enumerate(fleet):
            require(isinstance(entry, dict), f"fleet_axis[{i}] is not an object")
            workers = entry.get("workers")
            require(isinstance(workers, int) and workers > previous_workers,
                    f"fleet_axis[{i}].workers not strictly increasing: {workers!r}")
            previous_workers = workers
            sessions = entry.get("sessions")
            require(is_num(sessions) and sessions > 0,
                    f"fleet_axis[{i}].sessions missing or not positive")
            if fleet_sessions is None:
                fleet_sessions = sessions
            require(sessions == fleet_sessions,
                    f"fleet_axis[{i}].sessions = {sessions!r} but the sweep started with "
                    f"{fleet_sessions} — every width must fold the same session set")
            require(is_num(entry.get("frames_routed")) and entry["frames_routed"] > 0,
                    f"fleet_axis[{i}].frames_routed missing or not positive")
            require(is_num(entry.get("seconds")) and entry["seconds"] > 0,
                    f"fleet_axis[{i}].seconds missing or not positive")
            for field in ("sessions_per_sec", "frames_per_sec"):
                rate = entry.get(field)
                require(is_num(rate) and 0 < rate < 1e9,
                        f"fleet_axis[{i}].{field} missing, non-positive, or absurd: "
                        f"{rate!r}")
            require(entry.get("aborted") == 0,
                    f"fleet_axis[{i}].aborted != 0: the shard group lost sessions")
            require(entry.get("report_identical") is True,
                    f"fleet_axis[{i}].report_identical != true: the merged report "
                    "diverged from the workers=1 reference")
            require(is_num(entry.get("rss_mb")) and entry["rss_mb"] > 0,
                    f"fleet_axis[{i}].rss_mb missing or not positive")
        fleet_note = (f", fleet axis {[e['workers'] for e in fleet]} workers "
                      f"(reports identical)")

    print(f"check_bench_json: OK ({path}: {len(levels)} levels, "
          f"threads axis {axis}, speedups "
          f"{[round(e['speedup'], 2) for e in sweep]}, "
          f"kb hit rate {kb['hit_rate']:.1%} speedup {kb['speedup']:.2f}x"
          f"{net_note}{fleet_note})")


if __name__ == "__main__":
    main()
