#!/usr/bin/env bash
# End-to-end hangdoctord smoke: boots the daemon on an ephemeral loopback port, records a
# small fleet of HDSL session logs, replays them through the loadgen over concurrent
# connections, then SIGTERMs the daemon and asserts a clean graceful drain — every session
# closed, none aborted. Run from the repo root against a configured build tree:
#
#   scripts/netd_smoke.sh [build-dir]     (default: build)
#
# The build tree must already contain bench/table5_app_study (records the logs),
# src/hosts/hangdoctord, and tools/loadgen.
set -euo pipefail

build=${1:-build}
for binary in bench/table5_app_study src/netd/hangdoctord tools/loadgen; do
  if [ ! -x "$build/$binary" ]; then
    echo "netd_smoke: missing $build/$binary (build the 'table5_app_study'," \
         "'hangdoctord', and 'loadgen' targets first)" >&2
    exit 2
  fi
done

work=$(mktemp -d)
daemon_pid=""
cleanup() {
  if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
    kill -KILL "$daemon_pid" 2>/dev/null || true
  fi
  rm -rf "$work"
}
trap cleanup EXIT

# 1. Record donor logs: the smoke-budget app study with --record taps every fleet job's
#    telemetry into $work/logs/job_<i>.hdsl.
mkdir -p "$work/logs"
HANGDOCTOR_SMOKE=1 "$build/bench/table5_app_study" --jobs=2 --record="$work/logs" \
  > "$work/record.log" 2>&1
log_count=$(ls "$work/logs"/*.hdsl | wc -l)
echo "netd_smoke: recorded $log_count session logs"

# 2. Boot the daemon on an ephemeral port; the banner line names the port.
"$build/src/netd/hangdoctord" --port=0 --workers=2 > "$work/daemon.log" 2>&1 &
daemon_pid=$!
port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's/^hangdoctord listening on port \([0-9]*\).*/\1/p' "$work/daemon.log")
  [ -n "$port" ] && break
  kill -0 "$daemon_pid" 2>/dev/null || { cat "$work/daemon.log" >&2; exit 1; }
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "netd_smoke: daemon never printed its port" >&2
  cat "$work/daemon.log" >&2
  exit 1
fi
echo "netd_smoke: daemon up on port $port (pid $daemon_pid)"

# 3. Bounded loadgen run: the recorded logs repeated to 24 sessions over 4 connections.
"$build/tools/loadgen" --port="$port" --dir="$work/logs" --sessions=24 --connections=4 \
  | tee "$work/loadgen.log"
grep -q "24 closed, 0 busy, 0 errors" "$work/loadgen.log" || {
  echo "netd_smoke: loadgen summary is not a clean 24-session run" >&2
  exit 1
}

# 4. Graceful drain: SIGTERM, wait, assert the daemon exited 0 with a clean-drain line
#    accounting for every session.
kill -TERM "$daemon_pid"
status=0
wait "$daemon_pid" || status=$?
daemon_pid=""
if [ "$status" -ne 0 ]; then
  echo "netd_smoke: daemon exited $status" >&2
  cat "$work/daemon.log" >&2
  exit 1
fi
grep -q "drained clean: 24 sessions, 0 aborted" "$work/daemon.log" || {
  echo "netd_smoke: daemon did not drain clean" >&2
  cat "$work/daemon.log" >&2
  exit 1
}
echo "netd_smoke: OK (24 sessions ingested and drained clean)"
