#!/usr/bin/env bash
# Verifies the committed fuzz corpus against its hash manifest. The fuzz harness
# (tests/hdsl_fuzz_test.cc) derives every mutant deterministically from these bytes, so a
# silently-changed corpus would silently change what CI fuzzes; regenerate with
# tools/make_corpus and refresh MANIFEST.sha256 together, never one without the other.
set -euo pipefail
cd "$(dirname "$0")/../tests/corpus"
sha256sum --check --strict MANIFEST.sha256
