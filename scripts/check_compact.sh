#!/usr/bin/env bash
# Round-trip smoke for the HDSC compaction tool: compact the committed corpus into one
# archive, extract it back, and byte-compare every log against the original. The archive
# format's whole contract is "extract reproduces the inputs bit-for-bit" — this gate keeps
# that true for real logs, not just the unit tests' synthetic ones. Also checks that the
# rollup CSVs derived from the archive carry header + data rows, so a schema change that
# silently empties the fleet rollups fails here instead of in a dashboard.
#
# usage: check_compact.sh <hdsl_compact-binary> <log-dir>
set -euo pipefail

if [[ $# -ne 2 ]]; then
  echo "usage: check_compact.sh <hdsl_compact-binary> <log-dir>" >&2
  exit 2
fi
compact_bin=$1
log_dir=$2

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

"$compact_bin" compact "$log_dir" "$work/corpus.hdsc"
"$compact_bin" extract "$work/corpus.hdsc" "$work/extracted"

count=0
for log in "$log_dir"/*.hdsl; do
  name=$(basename "$log")
  cmp -- "$log" "$work/extracted/$name" || {
    echo "check_compact: FAIL: $name differs after compact+extract" >&2
    exit 1
  }
  count=$((count + 1))
done
if [[ $count -eq 0 ]]; then
  echo "check_compact: FAIL: no .hdsl logs in $log_dir" >&2
  exit 1
fi

"$compact_bin" rollup "$work/corpus.hdsc" "$work/rollup"
for csv in apps.csv apis.csv; do
  lines=$(wc -l < "$work/rollup/$csv")
  if [[ $lines -lt 2 ]]; then
    echo "check_compact: FAIL: $csv has $lines line(s) (want header + data)" >&2
    exit 1
  fi
done

echo "check_compact: OK ($count logs round-tripped byte-identical, rollups non-empty)"
