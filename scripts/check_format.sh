#!/usr/bin/env bash
# clang-format check over *changed* C/C++ files (against .clang-format at the repo root).
#
# Usage: scripts/check_format.sh [base-ref]
#   base-ref defaults to origin/main; changed files are computed against the merge-base so
#   a stale base branch never flags unrelated files. When the base ref does not exist
#   (shallow clone, fresh repo) every tracked source file is checked instead.
#
# Only changed files are checked, so adopting the format never requires a repo-wide
# reformat commit. Exits 0 with a notice when clang-format is not installed (it is not part
# of the pinned build toolchain; CI installs it for the lint leg).
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo_root"

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not installed; skipping"
  exit 0
fi

base=${1:-origin/main}
if git rev-parse --verify --quiet "$base" >/dev/null; then
  range_base=$(git merge-base "$base" HEAD)
  mapfile -t files < <(git diff --name-only --diff-filter=ACMR "$range_base" HEAD -- \
    '*.cc' '*.h' '*.cpp')
else
  echo "check_format: base ref '$base' not found; checking all tracked sources"
  mapfile -t files < <(git ls-files '*.cc' '*.h' '*.cpp')
fi

if [ "${#files[@]}" -eq 0 ]; then
  echo "check_format: no changed C/C++ files"
  exit 0
fi

clang-format --dry-run --Werror "${files[@]}"
echo "check_format: ${#files[@]} file(s) clean"
