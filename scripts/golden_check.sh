#!/usr/bin/env bash
# Golden-output regression check: runs a bench binary (the caller sets HANGDOCTOR_SMOKE=1)
# and diffs its stdout against the pinned file in tests/golden/. Wall-clock timings are the
# only non-deterministic output, so lines like "... in 1.23 s" are normalized before the
# diff. Regenerate a golden intentionally with:
#   HANGDOCTOR_SMOKE=1 <binary> [args] | sed 's/in [0-9.]* s/in X s/' > tests/golden/<name>.txt
set -euo pipefail

if [ "$#" -lt 2 ]; then
  echo "usage: $0 <bench-binary> <golden-file> [bench args...]" >&2
  exit 2
fi

binary=$1
golden=$2
shift 2

# Command substitution trims trailing newlines; run the golden through the same
# substitution so a trailing blank line in the capture can never cause a spurious diff.
actual=$("$binary" "$@" 2>&1 | sed 's/in [0-9.]* s/in X s/')
expected=$(cat "$golden")

if ! diff -u --label "$golden" <(printf '%s\n' "$expected") --label actual <(printf '%s\n' "$actual"); then
  echo "golden mismatch for $binary (expected $golden)" >&2
  exit 1
fi
echo "golden match: $golden"
