#!/usr/bin/env bash
# End-to-end distributed-fleet smoke: boots two hangdoctord shard-group workers plus the
# fleetd coordinator, replays a recorded session fleet through the loadgen against the
# coordinator port, SIGKILLs one worker mid-run, and asserts that (a) every session still
# closes clean (failover replays the dead worker's sessions on the survivor), (b) fleetd
# drains clean on SIGTERM, and (c) the merged report is byte-identical to a single-worker
# baseline run of the same sessions. Run from the repo root against a configured build tree:
#
#   scripts/fleetd_smoke.sh [build-dir]     (default: build)
#
# The build tree must already contain bench/table5_app_study (records the logs),
# src/netd/hangdoctord, src/fleetd/fleetd, and tools/loadgen.
set -euo pipefail

build=${1:-build}
for binary in bench/table5_app_study src/netd/hangdoctord src/fleetd/fleetd tools/loadgen; do
  if [ ! -x "$build/$binary" ]; then
    echo "fleetd_smoke: missing $build/$binary (build the 'table5_app_study'," \
         "'hangdoctord', 'fleetd_bin', and 'loadgen' targets first)" >&2
    exit 2
  fi
done

work=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]}"; do
    kill -KILL "$pid" 2>/dev/null || true
  done
  rm -rf "$work"
}
trap cleanup EXIT

# Boots a worker-mode hangdoctord. Sets boot_port/boot_pid (no subshell: the pid must land
# in the parent's pids array for cleanup).
boot_worker() {
  local log=$1
  "$build/src/netd/hangdoctord" --port=0 --workers=2 --worker > "$log" 2>&1 &
  boot_pid=$!
  pids+=("$boot_pid")
  disown "$boot_pid"  # workers are killed, never waited on: silence the job-control notice
  boot_port=""
  for _ in $(seq 1 100); do
    boot_port=$(sed -n 's/^hangdoctord listening on port \([0-9]*\).*/\1/p' "$log")
    [ -n "$boot_port" ] && break
    kill -0 "$boot_pid" 2>/dev/null || { cat "$log" >&2; return 1; }
    sleep 0.1
  done
  [ -n "$boot_port" ] || { echo "fleetd_smoke: worker never printed its port" >&2; return 1; }
}

# Boots fleetd over the given worker ports. Sets boot_port/boot_pid, as above.
boot_fleetd() {
  local log=$1
  shift
  local args=()
  for wport in "$@"; do
    args+=("--worker-port=$wport")
  done
  "$build/src/fleetd/fleetd" "${args[@]}" --port=0 --max-sessions=24 > "$log" 2>&1 &
  boot_pid=$!
  pids+=("$boot_pid")
  boot_port=""
  for _ in $(seq 1 100); do
    boot_port=$(sed -n 's/^fleetd listening on port \([0-9]*\).*/\1/p' "$log")
    [ -n "$boot_port" ] && break
    kill -0 "$boot_pid" 2>/dev/null || { cat "$log" >&2; return 1; }
    sleep 0.1
  done
  [ -n "$boot_port" ] || { echo "fleetd_smoke: fleetd never printed its port" >&2; return 1; }
}

# The merged fleet report, without the run-specific banner/fleet-stats/drain lines.
extract_report() {
  awk '/^fleetd: signal/{on=1;next} /^drained clean/{on=0} on && !/^fleet: /' "$1"
}

# 1. Record donor logs: the smoke-budget app study with --record taps every fleet job's
#    telemetry into $work/logs/job_<i>.hdsl.
mkdir -p "$work/logs"
HANGDOCTOR_SMOKE=1 "$build/bench/table5_app_study" --jobs=2 --record="$work/logs" \
  > "$work/record.log" 2>&1
log_count=$(ls "$work/logs"/*.hdsl | wc -l)
echo "fleetd_smoke: recorded $log_count session logs"

# 2. Baseline: one worker behind the coordinator, full-speed loadgen, graceful drain. This
#    run's merged report is the oracle the failover run must reproduce byte-for-byte.
boot_worker "$work/base_worker.log"
base_worker_port=$boot_port
boot_fleetd "$work/base_fleetd.log" "$base_worker_port"
base_port=$boot_port
base_fleetd_pid=$boot_pid
echo "fleetd_smoke: baseline up (worker :$base_worker_port, fleetd :$base_port)"
"$build/tools/loadgen" --port="$base_port" --dir="$work/logs" --sessions=24 \
  --connections=4 > "$work/base_loadgen.log" 2>&1
grep -q "24 closed, 0 busy, 0 errors" "$work/base_loadgen.log" || {
  echo "fleetd_smoke: baseline loadgen is not a clean 24-session run" >&2
  cat "$work/base_loadgen.log" >&2
  exit 1
}
kill -TERM "$base_fleetd_pid"
status=0
wait "$base_fleetd_pid" || status=$?
if [ "$status" -ne 0 ]; then
  echo "fleetd_smoke: baseline fleetd exited $status" >&2
  cat "$work/base_fleetd.log" >&2
  exit 1
fi
grep -q "drained clean: 24 sessions, 0 aborted" "$work/base_fleetd.log" || {
  echo "fleetd_smoke: baseline fleetd did not drain clean" >&2
  cat "$work/base_fleetd.log" >&2
  exit 1
}
extract_report "$work/base_fleetd.log" > "$work/base_report.txt"
echo "fleetd_smoke: baseline report captured ($(wc -l < "$work/base_report.txt") lines)"

# 3. Failover run: two workers split sessions 1..12 / 13..24 (--max-sessions=24); the
#    loadgen is rate-limited so the run is still in flight when worker B is SIGKILLed.
boot_worker "$work/worker_a.log"
worker_a_port=$boot_port
boot_worker "$work/worker_b.log"
worker_b_port=$boot_port
worker_b_pid=$boot_pid
boot_fleetd "$work/fleetd.log" "$worker_a_port" "$worker_b_port"
fleet_port=$boot_port
fleetd_pid=$boot_pid
echo "fleetd_smoke: shard group up (workers :$worker_a_port :$worker_b_port," \
     "fleetd :$fleet_port)"

"$build/tools/loadgen" --port="$fleet_port" --dir="$work/logs" --sessions=24 \
  --connections=4 --rate=150 > "$work/loadgen.log" 2>&1 &
loadgen_pid=$!
pids+=("$loadgen_pid")
sleep 2
kill -KILL "$worker_b_pid"
echo "fleetd_smoke: killed worker B (pid $worker_b_pid) mid-run"

status=0
wait "$loadgen_pid" || status=$?
if [ "$status" -ne 0 ]; then
  echo "fleetd_smoke: loadgen exited $status after worker kill" >&2
  cat "$work/loadgen.log" >&2
  exit 1
fi
grep -q "24 closed, 0 busy, 0 errors" "$work/loadgen.log" || {
  echo "fleetd_smoke: loadgen summary is not a clean 24-session run after failover" >&2
  cat "$work/loadgen.log" >&2
  exit 1
}

# 4. Graceful drain: SIGTERM fleetd, assert exit 0, a clean drain accounting for every
#    session, at least one recorded failover, and a merged report byte-identical to the
#    single-worker baseline.
kill -TERM "$fleetd_pid"
status=0
wait "$fleetd_pid" || status=$?
if [ "$status" -ne 0 ]; then
  echo "fleetd_smoke: fleetd exited $status" >&2
  cat "$work/fleetd.log" >&2
  exit 1
fi
grep -q "drained clean: 24 sessions, 0 aborted" "$work/fleetd.log" || {
  echo "fleetd_smoke: fleetd did not drain clean" >&2
  cat "$work/fleetd.log" >&2
  exit 1
}
grep -q "fleet: .* failovers" "$work/fleetd.log" || {
  echo "fleetd_smoke: no failover recorded — the worker kill never reached fleetd" >&2
  cat "$work/fleetd.log" >&2
  exit 1
}
extract_report "$work/fleetd.log" > "$work/report.txt"
if ! cmp -s "$work/base_report.txt" "$work/report.txt"; then
  echo "fleetd_smoke: failover report diverges from the single-worker baseline" >&2
  diff -u "$work/base_report.txt" "$work/report.txt" >&2 || true
  exit 1
fi
echo "fleetd_smoke: OK (24 sessions, worker killed mid-run, report identical to baseline)"
