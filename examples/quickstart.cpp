// Quickstart: build a small app with one blocking operation hidden on its main thread, attach
// Hang Doctor, simulate a user, and print the Hang Bug Report.
//
//   Phone      — a simulated handset (kernel, PMU, peripherals, background load)
//   AppSpec    — your app: actions -> input events -> operation call trees
//   HangDoctor — the two-phase detector, attached to the app like the paper's App Injector
//
// Expected output: the UI-heavy action is filtered by S-Checker (no stack traces paid), while
// the JSON-serialization action is diagnosed as a soft hang bug with its call site.
#include <cstdio>

#include "src/droidsim/phone.h"
#include "src/hosts/hang_doctor.h"
#include "src/workload/api_catalog.h"
#include "src/workload/user_model.h"

int main() {
  // A device to run on (the paper's primary phone) and a registry of API cost models.
  droidsim::DeviceProfile device = droidsim::LgV10();
  droidsim::ApiRegistry registry;
  workload::StandardApis apis = workload::BuildStandardApis(&registry);

  // The app under test: "SaveNotes" serializes a large object on the main thread (a soft hang
  // bug: Gson.toJson is not in the known-blocking database); "OpenList" is heavy but pure UI.
  droidsim::AppSpec spec;
  spec.name = "NotesExample";
  spec.package = "com.example.notes";
  {
    droidsim::ActionSpec save;
    save.name = "SaveNotes";
    save.weight = 1.0;
    droidsim::InputEventSpec event;
    event.handler = "onClick";
    event.handler_file = "NotesActivity.java";
    event.handler_line = 42;
    droidsim::OpNode bug = droidsim::MakeOp(apis.gson_tojson, "NoteStore.java", 77);
    bug.manifest_probability = 0.6;  // only large note sets hang
    event.ops.push_back(droidsim::MakeOp(apis.ui_set_text, "NotesActivity.java", 48));
    event.ops.push_back(std::move(bug));
    save.events.push_back(std::move(event));
    spec.actions.push_back(std::move(save));
  }
  {
    droidsim::ActionSpec open;
    open.name = "OpenList";
    open.weight = 2.0;
    droidsim::InputEventSpec event;
    event.handler = "onResume";
    event.handler_file = "NotesActivity.java";
    event.handler_line = 21;
    event.ops.push_back(droidsim::MakeOp(apis.ui_inflate, "NotesActivity.java", 25));
    event.ops.push_back(droidsim::MakeOp(apis.ui_list_layout, "NotesActivity.java", 31));
    open.events.push_back(std::move(event));
    spec.actions.push_back(std::move(open));
  }

  droidsim::Phone phone(device, /*seed=*/7);
  droidsim::App* app = phone.InstallApp(&spec);
  hangdoctor::HangDoctor doctor(&phone, app, hangdoctor::HangDoctorConfig{});

  // Simulate two minutes of a user poking at the app.
  workload::UserSession user(&phone, app, phone.ForkRng(1));
  phone.RunFor(simkit::Seconds(120));

  std::printf("=== Quickstart: Hang Doctor on %s (device: %s) ===\n\n", spec.name.c_str(),
              device.model.c_str());
  std::printf("Executions observed: %zu\n", doctor.log().size());
  for (int32_t uid = 0; uid < app->num_actions(); ++uid) {
    const hangdoctor::ActionInfo* info = doctor.actions().Find(uid);
    std::printf("  action %-10s state=%-13s executions=%ld hangs=%ld traced=%ld\n",
                app->action(uid).name.c_str(), hangdoctor::ActionStateName(info->state),
                static_cast<long>(info->executions), static_cast<long>(info->hangs_observed),
                static_cast<long>(info->times_traced));
  }
  std::printf("\nState transitions:\n");
  for (const hangdoctor::StateTransition& t : doctor.actions().transitions()) {
    std::printf("  t=%6.1fs %-10s %s -> %s (%s)\n", simkit::ToSeconds(t.time),
                app->action(t.action_uid).name.c_str(), hangdoctor::ActionStateName(t.from),
                hangdoctor::ActionStateName(t.to), t.reason.c_str());
  }
  std::printf("\n%s\n", doctor.local_report().Render(/*total_devices=*/1).c_str());
  std::printf("Newly discovered blocking APIs (added to the offline database):\n");
  for (const std::string& api : doctor.database().discovered()) {
    std::printf("  %s\n", api.c_str());
  }
  return 0;
}
