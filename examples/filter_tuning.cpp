// Filter adaptation: the paper's Section 3.3.1 "automatic adaptation" extension. Collect
// labeled soft hang samples on the target device, rank all 24 performance events by Pearson
// correlation, train a fresh filter (threshold fitting until every training bug is covered),
// and compare it against the shipped production filter — both on the training set and on the
// previously unknown validation bugs.
#include <cstdio>

#include "src/hangdoctor/correlation.h"
#include "src/workload/training.h"

namespace {

void Report(const char* name, const hangdoctor::SoftHangFilter& filter,
            const std::vector<hangdoctor::LabeledSample>& samples) {
  hangdoctor::FilterQuality quality = hangdoctor::EvaluateFilter(filter, samples);
  std::printf("  %-10s bugs kept %3ld/%3ld, UI pruned %3.0f%%, accuracy %3.0f%%   [%s]\n", name,
              static_cast<long>(quality.true_positives),
              static_cast<long>(quality.true_positives + quality.false_negatives),
              100.0 * quality.FalsePositivePruneRate(), 100.0 * quality.Accuracy(),
              filter.ToString().c_str());
}

}  // namespace

int main() {
  workload::Catalog catalog;

  std::printf("Collecting training samples (10 known bugs + 11 UI-APIs) on the LG V10...\n");
  workload::TrainingConfig config;
  workload::TrainingData training = workload::CollectTrainingSamples(catalog, config);
  std::printf("  %zu labeled soft hangs collected\n\n", training.diff_samples.size());

  std::vector<hangdoctor::RankedEvent> ranking = hangdoctor::RankEvents(training.diff_samples);
  std::printf("Top-5 events by correlation with soft hang bugs:\n");
  for (size_t i = 0; i < 5; ++i) {
    std::printf("  %zu. %-24s r = %.3f\n", i + 1,
                telemetry::PerfEventName(ranking[i].event).c_str(), ranking[i].correlation);
  }

  hangdoctor::SoftHangFilter trained = hangdoctor::TrainFilter(training.diff_samples, ranking);
  hangdoctor::SoftHangFilter production = hangdoctor::SoftHangFilter::Default();

  std::printf("\nOn the training set:\n");
  Report("trained", trained, training.diff_samples);
  Report("shipped", production, training.diff_samples);

  std::printf("\nCollecting validation samples (the 23 previously unknown study bugs)...\n");
  workload::TrainingConfig validation_config;
  validation_config.executions_per_op = 8;
  workload::TrainingData validation =
      workload::CollectValidationSamples(catalog, validation_config);
  std::printf("  %zu bug hangs collected\n\nOn the validation set (bugs only; 'pruned' is "
              "vacuous):\n",
              validation.diff_samples.size());
  Report("trained", trained, validation.diff_samples);
  Report("shipped", production, validation.diff_samples);

  std::printf("\nA device vendor could run exactly this loop on-device (light adaptation) or "
              "server-side (heavy adaptation) and ship the new thresholds as an update.\n");
  return 0;
}
