// Fleet monitoring: the paper's deployment story. A developer ships an app with Hang Doctor
// embedded; many users run it on their own devices; each device's anonymized bug reports
// merge into one fleet-wide Hang Bug Report, ordered by the percentage of devices affected
// (Figure 2(b)), and every newly learned blocking API feeds the shared offline database.
//
// The devices are simulated through workload::RunFleet, so they execute in parallel across
// a work-stealing pool (--jobs=N or HANGDOCTOR_JOBS picks the worker count) while the merged
// report stays bit-identical at any parallelism level — only the anonymized per-device
// results ever leave a job, which is also the paper's privacy argument.
#include <cstdio>
#include <vector>

#include "src/hosts/hang_doctor.h"
#include "src/workload/catalog.h"
#include "src/workload/experiment.h"
#include "src/workload/fleet.h"

namespace {
constexpr int32_t kDevices = 6;
}  // namespace

int main(int argc, char** argv) {
  workload::Catalog catalog;
  const droidsim::AppSpec* spec = catalog.FindApp("AndStatus");
  hangdoctor::BlockingApiDatabase database = catalog.MakeKnownDatabase();

  // Every device gets its own phone, its own user behaviour, its own Hang Doctor, and its
  // own copy of the blocking-API database; discoveries merge after the fleet drains.
  std::vector<workload::FleetJob> jobs;
  for (int32_t device = 0; device < kDevices; ++device) {
    workload::FleetJob job;
    job.spec = spec;
    job.profile = device % 3 == 0 ? droidsim::Nexus5() : droidsim::LgV10();
    job.seed = 7000 + static_cast<uint64_t>(device) * 131;
    job.session = simkit::Seconds(240);
    job.device_id = device;
    job.known_db = &database;
    jobs.push_back(job);
  }

  workload::FleetOptions options;
  options.jobs = workload::ResolveJobs(argc, argv);
  std::printf("Deploying %s with Hang Doctor to %d simulated user devices (%d worker(s))...\n\n",
              spec->name.c_str(), kDevices, options.jobs);
  workload::FleetSummary summary = workload::RunFleet(jobs, options);

  for (int32_t device = 0; device < kDevices; ++device) {
    const workload::FleetJobResult& result = summary.jobs[static_cast<size_t>(device)];
    if (!result.ok) {
      std::printf("  device %d FAILED: %s\n", device, result.error.c_str());
      continue;
    }
    std::printf("  device %d (%s): %zu bugs diagnosed locally, %.2f%% overhead\n", device,
                jobs[static_cast<size_t>(device)].profile.model.c_str(),
                result.report.NumBugs(), result.overhead_pct);
  }

  std::printf("\n=== Fleet-wide report the developer sees ===\n%s\n",
              summary.merged_report.Render(kDevices).c_str());
  std::printf("Blocking APIs discovered by the fleet (added to the offline database):\n");
  for (const std::string& api : summary.discovered) {
    std::printf("  %s\n", api.c_str());
  }
  return 0;
}
