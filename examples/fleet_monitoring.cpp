// Fleet monitoring: the paper's deployment story. A developer ships an app with Hang Doctor
// embedded; many users run it on their own devices; each device's anonymized bug reports
// merge into one fleet-wide Hang Bug Report, ordered by the percentage of devices affected
// (Figure 2(b)), and every newly learned blocking API feeds the shared offline database.
#include <cstdio>

#include "src/hangdoctor/hang_doctor.h"
#include "src/workload/catalog.h"
#include "src/workload/experiment.h"
#include "src/workload/user_model.h"

namespace {
constexpr int kDevices = 6;
}  // namespace

int main() {
  workload::Catalog catalog;
  const droidsim::AppSpec* spec = catalog.FindApp("AndStatus");
  hangdoctor::HangBugReport fleet_report;
  hangdoctor::BlockingApiDatabase database = catalog.MakeKnownDatabase();

  std::printf("Deploying %s with Hang Doctor to %d simulated user devices...\n\n",
              spec->name.c_str(), kDevices);
  for (int device = 0; device < kDevices; ++device) {
    // Every device gets its own phone, its own user behaviour, its own Hang Doctor; only the
    // anonymized bug reports leave the device (the paper's privacy argument).
    droidsim::DeviceProfile profile =
        device % 3 == 0 ? droidsim::Nexus5() : droidsim::LgV10();
    droidsim::Phone phone(profile, /*seed=*/7000 + device * 131);
    droidsim::App* app = phone.InstallApp(spec);
    hangdoctor::HangDoctor doctor(&phone, app, hangdoctor::HangDoctorConfig{}, &database,
                                  &fleet_report, device);
    workload::UserSession user(&phone, app, phone.ForkRng(3));
    phone.RunFor(simkit::Seconds(240));
    workload::TraceUsage usage = workload::AppUsage(phone, *app);
    std::printf("  device %d (%s): %zu bugs diagnosed locally, %.2f%% overhead\n", device,
                profile.model.c_str(), doctor.local_report().NumBugs(),
                doctor.overhead().OverheadPercent(usage.cpu, usage.bytes));
  }

  std::printf("\n=== Fleet-wide report the developer sees ===\n%s\n",
              fleet_report.Render(kDevices).c_str());
  std::printf("Blocking APIs discovered by the fleet (added to the offline database):\n");
  for (const std::string& api : database.discovered()) {
    std::printf("  %s\n", api.c_str());
  }
  return 0;
}
