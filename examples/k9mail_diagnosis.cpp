// Walkthrough of a single diagnosis, mirroring the paper's Section 4.3 narrative: a user
// opens heavy HTML emails in K9-mail; Hang Doctor first filters the UI actions, marks
// Open-Email Suspicious, then collects stack traces during the next hang and pins the blame
// on HtmlCleaner.clean — an API nobody knew was blocking.
#include <cstdio>

#include "src/hosts/hang_doctor.h"
#include "src/workload/catalog.h"
#include "src/workload/user_model.h"

int main() {
  workload::Catalog catalog;
  const droidsim::AppSpec* k9 = catalog.FindApp("K9-Mail");
  droidsim::Phone phone(droidsim::LgV10(), /*seed=*/2026);
  droidsim::App* app = phone.InstallApp(k9);

  hangdoctor::HangDoctorConfig config;
  config.keep_traces = true;
  hangdoctor::BlockingApiDatabase database = catalog.MakeKnownDatabase();
  hangdoctor::HangDoctor doctor(&phone, app, config, &database);

  std::printf("Simulating 3 minutes of a K9-mail user on a %s...\n\n",
              phone.profile().model.c_str());
  workload::UserSession user(&phone, app, phone.ForkRng(9));
  phone.RunFor(simkit::Seconds(180));

  std::printf("Action states after the session:\n");
  for (int32_t uid = 0; uid < app->num_actions(); ++uid) {
    const hangdoctor::ActionInfo* info = doctor.actions().Find(uid);
    std::printf("  %-10s %-13s (%ld executions, %ld hangs, traced %ld times)\n",
                app->action(uid).name.c_str(), hangdoctor::ActionStateName(info->state),
                static_cast<long>(info->executions), static_cast<long>(info->hangs_observed),
                static_cast<long>(info->times_traced));
  }

  std::printf("\nDiagnosed soft hang bugs:\n%s\n",
              doctor.local_report().Render(/*total_devices=*/1).c_str());
  std::printf("APIs newly learned as blocking (now visible to offline detectors):\n");
  for (const std::string& api : database.discovered()) {
    std::printf("  %s\n", api.c_str());
  }

  // Show one captured stack trace for the star of the show.
  for (const hangdoctor::ExecutionRecord& record : doctor.log()) {
    if (record.verdict != hangdoctor::Verdict::kDiagnosedBug || record.traces.empty()) {
      continue;
    }
    if (record.diagnosis.culprit.function != "clean") {
      continue;
    }
    std::printf("\nA stack trace from the diagnosing hang (%zu collected, occurrence %.0f%%):\n",
                record.traces.size(), 100.0 * record.diagnosis.occurrence_factor);
    const telemetry::StackTrace& trace = record.traces[record.traces.size() / 2];
    for (size_t i = trace.frames.size(); i > 0; --i) {
      const telemetry::StackFrame& frame = app->symbols().Frame(trace.frames[i - 1]);
      std::printf("    at %s %s\n", frame.clazz.c_str(), telemetry::FormatFrame(frame).c_str());
    }
    break;
  }
  return 0;
}
