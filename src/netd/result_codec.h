// Wire serialization for a harvested hangdoctor::SessionResult — the payload of the
// kSessionResult reply a worker-role daemon sends its fleetd coordinator at session close.
//
// The codec carries everything the coordinator needs to fold worker results into the fleet
// output bit-identically to the in-process oracle: identity (id, app, device), stream
// health, the full Hang Bug Report (entries with device sets and hang durations — Absorb()
// rebuilds the keyed map exactly), degradation counters, overhead, discovered blocking
// APIs, and knowledge-base stats. It deliberately does NOT carry the session's execution
// log: the log is the heavyweight per-session artifact, the coordinator already holds the
// authoritative HDSL byte stream it routed (its migration tap), and no fleet-level fold
// reads the log — shipping it would make every close O(session length) on the wire.
//
// Encoding: the HDSL primitive vocabulary (wire.h varints and length-prefixed strings),
// with zigzag for the int64 duration/counter fields so the codec never depends on a field
// staying non-negative. Decode is total: any truncation or trailing garbage fails with a
// one-line reason and no partial mutation of the output.
#ifndef SRC_NETD_RESULT_CODEC_H_
#define SRC_NETD_RESULT_CODEC_H_

#include <string>

#include "src/hangdoctor/detector_service.h"

namespace netd {

std::string EncodeSessionResult(const hangdoctor::SessionResult& result);
bool DecodeSessionResult(const std::string& bytes, hangdoctor::SessionResult* result,
                         std::string* error);

}  // namespace netd

#endif  // SRC_NETD_RESULT_CODEC_H_
