#include "src/netd/record_codec.h"

#include <utility>

#include "src/netd/wire.h"

namespace netd {

namespace hd = hangdoctor;

bool MuxStreamDecoder::Fail(const std::string& message) {
  if (ok_) {
    ok_ = false;
    error_ = message;
  }
  return false;
}

bool MuxStreamDecoder::Decode(const std::string& payload, DecodedFrame* out) {
  if (!ok_) {
    return false;
  }
  if (saw_bye_) {
    return Fail("frame after container end");
  }
  if (payload.empty()) {
    return Fail("empty container frame");
  }
  *out = DecodedFrame{};
  auto tag = static_cast<hd::MuxFrameTag>(static_cast<uint8_t>(payload[0]));
  size_t pos = 1;
  uint64_t id = 0;
  switch (tag) {
    case hd::MuxFrameTag::kOpenSession: {
      uint64_t size = 0;
      if (!GetVarint(payload, &pos, &id) || !GetVarint(payload, &pos, &size)) {
        return Fail("malformed open frame");
      }
      if (size != payload.size() - pos) {
        return Fail("open frame size mismatch");
      }
      if (live_.count(id) != 0) {
        return Fail("duplicate open for session " + std::to_string(id));
      }
      auto log = std::make_shared<hd::SessionLog>();
      std::string error;
      if (!hd::ParseSessionLogPrefix(payload.substr(pos), log.get(), &error)) {
        return Fail("session " + std::to_string(id) + ": " + error);
      }
      live_[id] = log;
      out->kind = DecodedFrame::Kind::kOpen;
      out->id = telemetry::SessionId{id};
      out->open_bytes = payload.size();
      out->log = log;
      out->record.session = out->id;
      out->record.record.kind = hd::SpiPayload::Kind::kSessionOpen;
      out->record.record.info = log->info;
      out->record.record.config = log->config;
      return true;
    }
    case hd::MuxFrameTag::kRecord: {
      uint64_t size = 0;
      if (!GetVarint(payload, &pos, &id) || !GetVarint(payload, &pos, &size)) {
        return Fail("malformed record frame");
      }
      if (size != payload.size() - pos) {
        return Fail("record frame size mismatch");
      }
      auto it = live_.find(id);
      if (it == live_.end()) {
        return Fail("record for unopened session " + std::to_string(id));
      }
      hd::SessionRecord record;
      std::string error;
      if (!hd::ParseSessionRecordBytes(payload.substr(pos), *it->second->symbols, &record,
                                       &error)) {
        return Fail("session " + std::to_string(id) + ": " + error);
      }
      out->kind = DecodedFrame::Kind::kRecord;
      out->id = telemetry::SessionId{id};
      out->log = it->second;
      out->record.session = out->id;
      hd::SpiPayload& payload_out = out->record.record;
      switch (record.tag) {
        case hd::SessionRecordTag::kDispatchStart:
          payload_out.kind = hd::SpiPayload::Kind::kDispatchStart;
          payload_out.start = record.start;
          break;
        case hd::SessionRecordTag::kDispatchEnd:
          payload_out.kind = hd::SpiPayload::Kind::kDispatchEnd;
          payload_out.end = record.end;
          payload_out.samples = std::move(record.samples);
          break;
        case hd::SessionRecordTag::kActionQuiesce:
          payload_out.kind = hd::SpiPayload::Kind::kActionQuiesce;
          payload_out.quiesce = record.quiesce;
          break;
        case hd::SessionRecordTag::kCounterFault:
          payload_out.kind = hd::SpiPayload::Kind::kCounterFault;
          payload_out.fault = record.fault;
          break;
        case hd::SessionRecordTag::kAsyncPost:
          payload_out.kind = hd::SpiPayload::Kind::kAsyncPost;
          payload_out.async_post = record.async_post;
          break;
        case hd::SessionRecordTag::kAsyncRun:
          payload_out.kind = hd::SpiPayload::Kind::kAsyncRun;
          payload_out.async_run = record.async_run;
          break;
        case hd::SessionRecordTag::kAsyncWaitStart:
          payload_out.kind = hd::SpiPayload::Kind::kAsyncWaitStart;
          payload_out.wait_start = record.wait_start;
          break;
        case hd::SessionRecordTag::kAsyncWaitEnd:
          payload_out.kind = hd::SpiPayload::Kind::kAsyncWaitEnd;
          payload_out.wait_end = record.wait_end;
          break;
        case hd::SessionRecordTag::kTraceUsage:
          // Overhead footer: structurally a record, but no SPI traffic to apply.
          out->skip = true;
          break;
        default:
          return Fail("unexpected record tag in frame");
      }
      return true;
    }
    case hd::MuxFrameTag::kCloseSession: {
      if (!GetVarint(payload, &pos, &id) || pos != payload.size()) {
        return Fail("malformed close frame");
      }
      auto it = live_.find(id);
      if (it == live_.end()) {
        return Fail("close for unopened session " + std::to_string(id));
      }
      out->kind = DecodedFrame::Kind::kClose;
      out->id = telemetry::SessionId{id};
      out->log = it->second;
      out->record.session = out->id;
      out->record.record.kind = hd::SpiPayload::Kind::kSessionClose;
      live_.erase(it);
      return true;
    }
    case hd::MuxFrameTag::kEpochPublish: {
      uint64_t seq = 0;
      if (!GetVarint(payload, &pos, &seq) || pos != payload.size()) {
        return Fail("malformed epoch-publish frame");
      }
      out->kind = DecodedFrame::Kind::kEpochPublish;
      return true;
    }
    case hd::MuxFrameTag::kEnd: {
      if (pos != payload.size()) {
        return Fail("trailing bytes in end frame");
      }
      if (!live_.empty()) {
        return Fail("container end with " + std::to_string(live_.size()) +
                    " session(s) still open");
      }
      saw_bye_ = true;
      out->kind = DecodedFrame::Kind::kBye;
      return true;
    }
    default:
      return Fail("unknown container frame tag " +
                  std::to_string(static_cast<int>(payload[0])));
  }
}

bool ContainerToWireFrames(const std::string& container, std::vector<std::string>* frames,
                           std::string* error) {
  hd::SessionLogLayout layout;
  if (!hd::ScanMuxLog(container, &layout, error)) {
    return false;
  }
  frames->clear();
  frames->reserve(layout.record_offsets.size());
  for (size_t i = 0; i < layout.record_offsets.size(); ++i) {
    size_t begin = layout.record_offsets[i];
    size_t end =
        i + 1 < layout.record_offsets.size() ? layout.record_offsets[i + 1] : container.size();
    frames->push_back(container.substr(begin, end - begin));
  }
  return true;
}

}  // namespace netd
