// The per-connection HDSL stream decoder: turns wire frame payloads (each exactly one HDSL
// v3 mux-container frame, src/hosts/mux_log.h grammar) into the ServiceRecords a
// DetectorService consumes — sans-IO, so the protocol battery and the fuzzer drive it
// without sockets and the epoll worker drives it from its read loop.
//
// The decoder enforces the container's session-framing contract exactly as
// ReplayMultiplexedLog does offline: open-before-record, no double open, close exactly once,
// kEnd only with every session closed and nothing after it. Violations are sticky — the
// connection is beyond repair once its stream is, which is what makes a torn or corrupted
// frame unable to corrupt a neighboring session.
//
// Ownership: an open frame's payload is a complete v4 log prefix; the decoder parses it into
// a shared SessionLog that owns the session's symbol table. Every decoded record of that
// session carries the shared_ptr, so symbols outlive the record wherever the server's apply
// pipeline takes it — the same lifetime rule mux replay satisfies by keeping parsed logs on
// the stack.
#ifndef SRC_NETD_RECORD_CODEC_H_
#define SRC_NETD_RECORD_CODEC_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/hangdoctor/session_stream.h"
#include "src/hosts/mux_log.h"
#include "src/hosts/session_log.h"
#include "src/telemetry/session.h"

namespace netd {

// One decoded container frame.
struct DecodedFrame {
  enum class Kind : uint8_t {
    kOpen,          // session open: log + record (kSessionOpen) are set
    kRecord,        // one SPI record: record is set (skip == true for usage footers)
    kClose,         // session close: record (kSessionClose) is set
    kEpochPublish,  // recorded knowledge-base epoch boundary (no session)
    kBye,           // container kEnd: the client is done
  };
  Kind kind = Kind::kBye;
  telemetry::SessionId id{0};
  // kOpen: bytes of the open payload — the admission estimate's variable part.
  size_t open_bytes = 0;
  // kOpen / kRecord / kClose: the session's parsed prefix (owns the symbol table).
  std::shared_ptr<hangdoctor::SessionLog> log;
  hangdoctor::ServiceRecord record;
  // kRecord of a kTraceUsage footer: structurally valid, but carries no SPI traffic.
  bool skip = false;
};

class MuxStreamDecoder {
 public:
  // Decodes one wire frame payload (= one container frame). Returns false and goes sticky
  // on any grammar or framing violation; `out` is meaningful only on success.
  bool Decode(const std::string& payload, DecodedFrame* out);

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  bool saw_bye() const { return saw_bye_; }
  size_t open_sessions() const { return live_.size(); }

 private:
  bool Fail(const std::string& message);

  std::unordered_map<uint64_t, std::shared_ptr<hangdoctor::SessionLog>> live_;
  bool saw_bye_ = false;
  bool ok_ = true;
  std::string error_;
};

// Client-side inverse: splits a v3 container (magic + version + frames) into the per-frame
// wire payloads, in stream order, the final kEnd frame included. `frames[i]` starts at the
// frame's tag byte — exactly what a conforming client sends as wire frame i+1.
bool ContainerToWireFrames(const std::string& container, std::vector<std::string>* frames,
                           std::string* error);

}  // namespace netd

#endif  // SRC_NETD_RECORD_CODEC_H_
