#include "src/netd/loadgen.h"

#include <chrono>
#include <thread>
#include <utility>

#include "src/netd/client.h"
#include "src/netd/record_codec.h"
#include "src/simkit/rng.h"

namespace netd {

namespace {

void CountReplies(const std::vector<Reply>& replies, ConnectionOutcome* outcome,
                  int64_t* closed, int64_t* busy, int64_t* errors) {
  for (const Reply& reply : replies) {
    switch (reply.tag) {
      case ReplyTag::kSessionClosed:
        ++*closed;
        break;
      case ReplyTag::kBusy:
        ++*busy;
        break;
      case ReplyTag::kError:
        ++*errors;
        break;
      default:
        break;
    }
    outcome->replies.push_back(reply);
  }
}

void RunConnection(uint16_t port, const std::vector<hangdoctor::SessionLogSlice>& sessions,
                   const LoadGenOptions& options, uint64_t index, ConnectionOutcome* outcome,
                   int64_t* closed, int64_t* busy, int64_t* errors) {
  // The chaos plan for connection c is a pure function of (seed, c): same topology, same
  // faults, regardless of thread scheduling.
  simkit::Rng rng(options.seed, /*stream=*/index + 1);
  size_t cut_frame = 0;
  bool torn = false;
  if (options.chaos && rng.Bernoulli(options.chaos_disconnect)) {
    outcome->chaos_disconnect = true;
    torn = rng.Bernoulli(options.chaos_torn);
  }

  std::string container;
  std::string error;
  if (!hangdoctor::MuxSessionLogs(sessions, {}, &container, &error)) {
    outcome->error = "mux: " + error;
    return;
  }
  std::vector<std::string> frames;
  if (!ContainerToWireFrames(container, &frames, &error)) {
    outcome->error = "split: " + error;
    return;
  }
  if (outcome->chaos_disconnect) {
    // Drop somewhere strictly inside the stream: after HELLO, before the container end.
    cut_frame = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(frames.size()) - 1));
    outcome->chaos_torn = torn;
  }

  NetClient client;
  if (!client.Connect(port)) {
    outcome->error = client.error();
    return;
  }
  if (!client.SendHello(options.wire_version)) {
    outcome->error = client.error();
    return;
  }
  Reply hello;
  if (!client.ReadReply(&hello) || hello.tag != ReplyTag::kHelloOk) {
    outcome->error = "hello rejected: " + client.error();
    return;
  }

  auto frame_interval =
      options.rate > 0.0
          ? std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::duration<double>(1.0 / options.rate))
          : std::chrono::nanoseconds(0);
  std::vector<Reply> drained;
  for (size_t i = 0; i < frames.size(); ++i) {
    if (outcome->chaos_disconnect && i == cut_frame) {
      if (torn && !frames[i].empty()) {
        client.SendTornFrame(frames[i], frames[i].size() / 2);
      } else {
        client.Close();
      }
      return;  // replies die with the socket; the daemon aborts our live sessions
    }
    if (!client.SendFrame(frames[i], options.chunk)) {
      outcome->error = client.error();
      return;
    }
    ++outcome->frames_sent;
    if (frame_interval.count() > 0) {
      std::this_thread::sleep_for(frame_interval);
    }
    if ((i & 63u) == 63u) {
      // Keep the reply stream drained so neither side's socket buffer becomes the bottleneck.
      drained.clear();
      client.DrainReplies(&drained);
      CountReplies(drained, outcome, closed, busy, errors);
    }
  }

  // BYE went out with the last container frame; wait for the daemon's kBye.
  while (true) {
    Reply reply;
    if (!client.ReadReply(&reply)) {
      outcome->error = client.error();
      return;
    }
    CountReplies({reply}, outcome, closed, busy, errors);
    if (reply.tag == ReplyTag::kBye) {
      outcome->completed = true;
      return;
    }
    if (reply.tag == ReplyTag::kError) {
      return;  // sticky reject: the daemon will close on us
    }
  }
}

}  // namespace

LoadGenResult RunLoadGen(uint16_t port, std::span<const hangdoctor::SessionLogSlice> sessions,
                         const LoadGenOptions& options) {
  int32_t connections = options.connections < 1 ? 1 : options.connections;
  LoadGenResult result;
  result.connections.resize(static_cast<size_t>(connections));

  // Round-robin assignment: session i rides connection i % connections.
  std::vector<std::vector<hangdoctor::SessionLogSlice>> per_conn(
      static_cast<size_t>(connections));
  for (size_t i = 0; i < sessions.size(); ++i) {
    size_t c = i % static_cast<size_t>(connections);
    per_conn[c].push_back(sessions[i]);
    result.connections[c].sessions.push_back(sessions[i].id.value);
  }

  std::vector<int64_t> closed(per_conn.size(), 0), busy(per_conn.size(), 0),
      errors(per_conn.size(), 0);
  std::vector<std::thread> threads;
  threads.reserve(per_conn.size());
  for (size_t c = 0; c < per_conn.size(); ++c) {
    threads.emplace_back([&, c] {
      RunConnection(port, per_conn[c], options, c, &result.connections[c], &closed[c],
                    &busy[c], &errors[c]);
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (size_t c = 0; c < per_conn.size(); ++c) {
    result.sessions_closed += closed[c];
    result.busy += busy[c];
    result.errors += errors[c];
  }
  return result;
}

}  // namespace netd
