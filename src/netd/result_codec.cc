#include "src/netd/result_codec.h"

#include <cstdint>
#include <vector>

#include "src/netd/wire.h"

namespace netd {

namespace {

// One guard byte so a decoder pointed at non-result bytes (or a future incompatible
// encoding) fails on byte 0 instead of mis-parsing fields.
constexpr uint8_t kResultCodecVersion = 1;

void PutZig(std::string* out, int64_t value) {
  PutVarint(out, (static_cast<uint64_t>(value) << 1) ^
                     static_cast<uint64_t>(value >> 63));
}

bool GetZig(const std::string& data, size_t* pos, int64_t* value) {
  uint64_t raw = 0;
  if (!GetVarint(data, pos, &raw)) {
    return false;
  }
  *value = static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
  return true;
}

void PutBool(std::string* out, bool value) { out->push_back(value ? '\1' : '\0'); }

bool GetBool(const std::string& data, size_t* pos, bool* value) {
  if (*pos >= data.size()) {
    return false;
  }
  *value = data[(*pos)++] != '\0';
  return true;
}

}  // namespace

std::string EncodeSessionResult(const hangdoctor::SessionResult& result) {
  std::string out;
  out.push_back(static_cast<char>(kResultCodecVersion));
  PutVarint(&out, result.id.value);
  PutString(&out, result.app_package);
  PutZig(&out, result.device_id);
  PutBool(&out, result.stream_ok);
  PutString(&out, result.stream_error);
  PutZig(&out, result.stack_samples);

  PutVarint(&out, result.discovered.size());
  for (const std::string& api : result.discovered) {
    PutString(&out, api);
  }

  const hangdoctor::DegradationStats& d = result.degradation;
  PutZig(&out, d.counter_open_failures);
  PutZig(&out, d.counter_retries);
  PutZig(&out, d.invalid_counter_windows);
  PutZig(&out, d.degraded_checks);
  PutZig(&out, d.empty_trace_windows);
  PutZig(&out, d.dropped_records);
  PutBool(&out, d.counters_unavailable);

  PutZig(&out, result.overhead.cpu());
  PutZig(&out, result.overhead.memory_bytes());
  PutZig(&out, result.overhead.counter_retries());
  PutZig(&out, result.overhead.async_records());

  PutZig(&out, result.kb.memo_hits);
  PutZig(&out, result.kb.memo_misses);
  PutZig(&out, result.kb.known_hits);

  std::vector<hangdoctor::BugReportEntry> entries = result.report.Entries();
  PutVarint(&out, entries.size());
  for (const hangdoctor::BugReportEntry& entry : entries) {
    PutString(&out, entry.app_package);
    PutString(&out, entry.api);
    PutString(&out, entry.file);
    PutZig(&out, entry.line);
    PutBool(&out, entry.self_developed);
    PutBool(&out, entry.degraded);
    PutString(&out, entry.wait_site);
    PutZig(&out, entry.occurrences);
    PutVarint(&out, entry.devices.size());
    for (int32_t device : entry.devices) {
      PutZig(&out, device);
    }
    PutZig(&out, entry.total_hang);
    PutZig(&out, entry.max_hang);
  }
  return out;
}

bool DecodeSessionResult(const std::string& bytes, hangdoctor::SessionResult* result,
                         std::string* error) {
  hangdoctor::SessionResult out;
  if (bytes.empty() || static_cast<uint8_t>(bytes[0]) != kResultCodecVersion) {
    *error = "result: bad codec version byte";
    return false;
  }
  size_t pos = 1;
  uint64_t id = 0;
  int64_t device_id = 0;
  int64_t stack_samples = 0;
  if (!GetVarint(bytes, &pos, &id) || !GetString(bytes, &pos, &out.app_package) ||
      !GetZig(bytes, &pos, &device_id) || !GetBool(bytes, &pos, &out.stream_ok) ||
      !GetString(bytes, &pos, &out.stream_error) || !GetZig(bytes, &pos, &stack_samples)) {
    *error = "result: malformed header";
    return false;
  }
  out.id = telemetry::SessionId{id};
  out.device_id = static_cast<int32_t>(device_id);
  out.stack_samples = stack_samples;

  uint64_t discovered = 0;
  if (!GetVarint(bytes, &pos, &discovered) || discovered > bytes.size() - pos) {
    *error = "result: malformed discovered list";
    return false;
  }
  out.discovered.reserve(static_cast<size_t>(discovered));
  for (uint64_t i = 0; i < discovered; ++i) {
    std::string api;
    if (!GetString(bytes, &pos, &api)) {
      *error = "result: truncated discovered list";
      return false;
    }
    out.discovered.push_back(std::move(api));
  }

  hangdoctor::DegradationStats& d = out.degradation;
  if (!GetZig(bytes, &pos, &d.counter_open_failures) ||
      !GetZig(bytes, &pos, &d.counter_retries) ||
      !GetZig(bytes, &pos, &d.invalid_counter_windows) ||
      !GetZig(bytes, &pos, &d.degraded_checks) ||
      !GetZig(bytes, &pos, &d.empty_trace_windows) ||
      !GetZig(bytes, &pos, &d.dropped_records) ||
      !GetBool(bytes, &pos, &d.counters_unavailable)) {
    *error = "result: malformed degradation stats";
    return false;
  }

  int64_t cpu = 0, memory = 0, retries = 0, async_records = 0;
  if (!GetZig(bytes, &pos, &cpu) || !GetZig(bytes, &pos, &memory) ||
      !GetZig(bytes, &pos, &retries) || !GetZig(bytes, &pos, &async_records)) {
    *error = "result: malformed overhead";
    return false;
  }
  out.overhead.AddCpu(cpu);
  out.overhead.AddMemory(memory);
  for (int64_t i = 0; i < retries; ++i) {
    out.overhead.CountCounterRetry();
  }
  for (int64_t i = 0; i < async_records; ++i) {
    out.overhead.CountAsyncRecord();
  }

  if (!GetZig(bytes, &pos, &out.kb.memo_hits) || !GetZig(bytes, &pos, &out.kb.memo_misses) ||
      !GetZig(bytes, &pos, &out.kb.known_hits)) {
    *error = "result: malformed kb stats";
    return false;
  }

  uint64_t entries = 0;
  if (!GetVarint(bytes, &pos, &entries) || entries > bytes.size() - pos) {
    *error = "result: malformed report entry count";
    return false;
  }
  for (uint64_t i = 0; i < entries; ++i) {
    hangdoctor::BugReportEntry entry;
    int64_t line = 0;
    uint64_t devices = 0;
    if (!GetString(bytes, &pos, &entry.app_package) || !GetString(bytes, &pos, &entry.api) ||
        !GetString(bytes, &pos, &entry.file) || !GetZig(bytes, &pos, &line) ||
        !GetBool(bytes, &pos, &entry.self_developed) ||
        !GetBool(bytes, &pos, &entry.degraded) ||
        !GetString(bytes, &pos, &entry.wait_site) ||
        !GetZig(bytes, &pos, &entry.occurrences) ||
        !GetVarint(bytes, &pos, &devices) || devices > bytes.size() - pos) {
      *error = "result: malformed report entry";
      return false;
    }
    entry.line = static_cast<int32_t>(line);
    for (uint64_t j = 0; j < devices; ++j) {
      int64_t device = 0;
      if (!GetZig(bytes, &pos, &device)) {
        *error = "result: truncated device set";
        return false;
      }
      entry.devices.insert(static_cast<int32_t>(device));
    }
    if (!GetZig(bytes, &pos, &entry.total_hang) || !GetZig(bytes, &pos, &entry.max_hang)) {
      *error = "result: truncated entry durations";
      return false;
    }
    out.report.Absorb(entry);
  }
  if (pos != bytes.size()) {
    *error = "result: trailing bytes";
    return false;
  }
  *result = std::move(out);
  return true;
}

}  // namespace netd
