// Blocking client for the hangdoctord wire protocol: connect (or wrap an fd), HELLO, send
// container frames, collect replies. The chaos knobs exist for the loadgen and the
// determinism/fuzz batteries — a client that tears a frame mid-payload, writes one byte at a
// time, or drops the connection mid-session, so the daemon's sticky-reject and
// abort-without-collateral paths are exercised from a real socket.
#ifndef SRC_NETD_CLIENT_H_
#define SRC_NETD_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/netd/wire.h"

namespace netd {

class NetClient {
 public:
  NetClient() = default;
  ~NetClient();
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;
  NetClient(NetClient&& other) noexcept;
  NetClient& operator=(NetClient&& other) noexcept;

  // Connects to 127.0.0.1:port. Returns false (with error()) on failure.
  bool Connect(uint16_t port);
  // Wraps an already-connected fd (socketpair tests). Takes ownership.
  void Adopt(int fd);

  bool connected() const { return fd_ >= 0; }
  const std::string& error() const { return error_; }
  int fd() const { return fd_; }

  // Sends the HELLO frame for `version`. The worker role is the fleetd coordinator link
  // (control frames + per-close kSessionResult replies); plain ingest keeps the default.
  bool SendHello(uint32_t version, HelloRole role = HelloRole::kClient);

  // Frames `payload` and writes it. chunk > 0 writes at most `chunk` bytes per syscall (the
  // 1-byte drip shape is chunk = 1).
  bool SendFrame(const std::string& payload, size_t chunk = 0);

  // Torn frame: writes the frame's length prefix plus only `keep_bytes` of the payload,
  // then hard-closes. The stream ends mid-frame, by construction.
  bool SendTornFrame(const std::string& payload, size_t keep_bytes);

  // Writes raw bytes with no framing (protocol-violation tests).
  bool SendRaw(const std::string& bytes, size_t chunk = 0);

  // Blocks until one complete reply frame arrives and decodes it. False on EOF/parse error.
  bool ReadReply(Reply* reply);

  // Non-blocking sweep: decodes every reply currently queued in the socket.
  bool DrainReplies(std::vector<Reply>* replies);

  // Half-close the write side (the daemon sees EOF after the buffered bytes).
  void ShutdownWrite();
  void Close();

 private:
  bool WriteAll(const char* data, size_t size, size_t chunk);
  bool FillBuffer(bool blocking);

  int fd_ = -1;
  std::string error_;
  FrameSplitter splitter_;
};

}  // namespace netd

#endif  // SRC_NETD_CLIENT_H_
