// Fleet load generator: replays recorded HDSL session logs against a hangdoctord endpoint
// over N concurrent connections — the client half of the wire determinism contract, and the
// chaos driver for the disconnect/slow-write/torn-frame fault families.
//
// Sessions are assigned to connections round-robin by index; each connection multiplexes its
// sessions into one v3 container (src/hosts/mux_log.h round-robin schedule, the same
// interleaving a live device pool produces) and streams it frame by frame. The chaos plan is
// a pure function of (seed, connection index) via simkit::Rng forking, so a failing topology
// reproduces exactly.
#ifndef SRC_NETD_LOADGEN_H_
#define SRC_NETD_LOADGEN_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/hosts/mux_log.h"
#include "src/netd/wire.h"

namespace netd {

struct LoadGenOptions {
  int32_t connections = 1;
  uint32_t wire_version = 4;
  // Frames per second per connection; 0 = as fast as the socket accepts.
  double rate = 0.0;
  // Bytes per write syscall (slow-write shape); 0 = whole frames.
  size_t chunk = 0;
  // Chaos: with probability `chaos_disconnect`, a connection drops mid-stream at a
  // plan-chosen frame — torn mid-frame (probability `chaos_torn` of those) or cleanly
  // between frames. Chaos never touches connections the plan spares, which is what lets the
  // determinism battery demand bit-identity for every session on a calm connection.
  bool chaos = false;
  double chaos_disconnect = 0.5;
  double chaos_torn = 0.5;
  uint64_t seed = 1;
};

struct ConnectionOutcome {
  std::vector<uint64_t> sessions;  // session ids assigned to this connection
  bool chaos_disconnect = false;   // the plan dropped this connection mid-stream
  bool chaos_torn = false;         // ... tearing a frame in half on the way out
  size_t frames_sent = 0;
  bool completed = false;  // sent BYE and saw kBye
  std::vector<Reply> replies;
  std::string error;
};

struct LoadGenResult {
  std::vector<ConnectionOutcome> connections;
  int64_t sessions_closed = 0;  // kSessionClosed replies observed fleet-wide
  int64_t busy = 0;             // kBusy replies (admission refusals)
  int64_t errors = 0;           // kError replies (sticky protocol rejections)
};

// Runs the full replay against 127.0.0.1:port; blocks until every connection finished (or
// chaos-dropped). One thread per connection.
LoadGenResult RunLoadGen(uint16_t port, std::span<const hangdoctor::SessionLogSlice> sessions,
                         const LoadGenOptions& options);

}  // namespace netd

#endif  // SRC_NETD_LOADGEN_H_
