// hangdoctord's network core: an epoll server that ingests HDSL wire streams from thousands
// of connections into one shared DetectorService.
//
// Thread split (DESIGN.md section 3.9):
//   acceptor          one thread on the listen socket; hands accepted fds to workers
//                     round-robin (closed with a kBusy frame when max_connections is hit).
//   epoll workers     `workers` threads, each owning an epoll set of whole connections:
//                     level-triggered non-blocking reads into a FrameSplitter, HELLO
//                     negotiation, MuxStreamDecoder, and the write side of every reply.
//                     A connection lives on exactly one worker for its whole life.
//   appliers          `rings` threads, each draining one bounded simkit::MpmcRing of
//                     decoded records and applying them synchronously to the shared
//                     DetectorService (disjoint sessions — the documented safe shape).
//                     Records route by ShardOf(session, rings), so every session's records
//                     traverse exactly one ring (pushed by its one worker, in stream order,
//                     per-producer FIFO) and are applied by exactly one applier — the
//                     end-to-end ordering that makes wire ingest bit-identical to the
//                     per-job oracle at any {connections, workers, rings, shards}.
//
// Flow control: when a ring rejects a push, the worker parks the record, deletes EPOLLIN
// for that connection (TCP backpressure — the peer's sends stall against its socket
// buffer), and registers for a ring-space wakeup; nothing is dropped and read-side memory
// stays bounded by one frame per connection.
//
// Admission: live open-header bytes are budgeted. An open that would exceed
// `session_budget_bytes` is refused with a structured kBusy reply; the session is never
// created and its subsequent records are dropped silently until its close frame.
//
// Drain: BeginDrain() stops accepting and reading, force-closes every in-flight session
// through the rings (harvesting their results — "flush in-flight sessions"), flushes
// replies, and closes. SIGTERM in hangdoctord maps to exactly this.
#ifndef SRC_NETD_SERVER_H_
#define SRC_NETD_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/hangdoctor/detector_service.h"
#include "src/telemetry/session.h"

namespace netd {

struct ServerOptions {
  // Shared detector backend. `service.threads` must stay 0: the appliers are the ingest
  // threads, driving the synchronous push API; a nonzero value throws.
  hangdoctor::ServiceOptions service;
  // Epoll worker threads (>= 1).
  int32_t workers = 1;
  // Applier threads / rings (>= 1); 0 resolves to `workers`.
  int32_t rings = 0;
  // Per-ring capacity in records (rounded up to a power of two by the ring).
  int32_t ring_capacity = 1024;
  // TCP listener. port 0 binds an ephemeral port (read it back via port()); listen = false
  // skips the listener entirely — connections arrive only via AdoptConnection (the
  // socketpair test shape).
  bool listen = true;
  uint16_t port = 0;
  // Connection-level admission: accepts beyond this are answered kBusy(session 0) + close.
  int32_t max_connections = 4096;
  // Session-level admission: refuse opens once live open-header bytes (+ overhead each)
  // would exceed this.
  int64_t session_budget_bytes = 256ll << 20;
  int64_t session_overhead_bytes = 4096;
  // Per-frame size cap (wire.h FrameSplitter).
  size_t max_frame_bytes = 8u << 20;
  // Best-effort affinity: pin worker w to core w and applier a to core workers + a.
  bool pin_workers = false;
  // Accept worker-role HELLOs (fleetd coordinator links): control frames and per-close
  // kSessionResult replies. Off by default so a plain daemon rejects a stray coordinator at
  // HELLO time instead of half-speaking the fleet protocol.
  bool allow_worker_role = false;
  // Self-watchdog (LCI hang_detector idiom): a thread that flags any applier stuck longer
  // than this on a single record, surfaces it in heartbeat health, and force-fails the
  // lease so the coordinator migrates this worker's sessions. 0 = no watchdog thread.
  int64_t watchdog_timeout_ms = 0;
  // Watchdog sampling period.
  int64_t watchdog_poll_ms = 20;
  // Test hook: invoked on the applier thread with the session id immediately before each
  // apply. Lets tests wedge an applier deterministically (watchdog + bounded-Stop
  // coverage) without sleeping on real hangs. Must be set before construction.
  std::function<void(uint64_t)> before_apply;
};

// What one session left behind after traveling the wire.
struct NetSessionOutcome {
  telemetry::SessionId id{0};
  // True when the session never reached a clean close: its connection disconnected or went
  // into sticky protocol error mid-session, or the daemon drained first. The session was
  // discarded, never merged — a torn neighbor cannot perturb anyone else's report.
  bool aborted = false;
  std::string stream_error;  // why, when aborted
  hangdoctor::SessionResult result;  // harvested result; meaningful only when !aborted
};

struct ServerStats {
  std::atomic<int64_t> connections_accepted{0};
  std::atomic<int64_t> connections_rejected{0};
  std::atomic<int64_t> frames_in{0};
  std::atomic<int64_t> bytes_in{0};
  std::atomic<int64_t> sessions_refused{0};
  std::atomic<int64_t> sessions_aborted{0};
  std::atomic<int64_t> sessions_closed{0};
  std::atomic<int64_t> backpressure_pauses{0};
  std::atomic<int64_t> protocol_errors{0};
  std::atomic<int64_t> records_applied{0};
  std::atomic<int64_t> heartbeats{0};
  std::atomic<int64_t> stale_epochs{0};
  std::atomic<int64_t> sessions_migrated{0};  // handoff-discarded (replayed elsewhere)
  std::atomic<int64_t> watchdog_trips{0};
};

class NetServer {
 public:
  explicit NetServer(const ServerOptions& options);
  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // The bound port (listen = true only; valid after the constructor returns).
  uint16_t port() const { return port_; }

  // Hands an already-connected fd (e.g. one end of a socketpair) to a worker. The server
  // owns the fd from here on.
  void AdoptConnection(int fd);

  // Stops accepting and reading, force-closes in-flight sessions, flushes replies and
  // closes every connection. Idempotent; does not join threads.
  void BeginDrain();

  // BeginDrain + join everything. Idempotent; the destructor calls it. The drain wait is
  // generous (10 s) but the joins are unconditional — a wedged applier makes this block;
  // use the deadline overload when shutdown must be bounded.
  void Stop();

  // Deadline-bounded stop: BeginDrain, then wait up to `drain_timeout_ms` for quiescence.
  // On success joins everything (like Stop()) and returns empty. On timeout it returns the
  // session ids still live in the service — the undrained sessions a coordinator must
  // recover by HDSL replay elsewhere — WITHOUT joining, leaving the machinery intact: the
  // server stays drainable, and a later Stop()/destructor finishes shutdown once the wedge
  // clears (a stuck applier cannot be force-killed; it can only be disowned).
  std::vector<uint64_t> Stop(int64_t drain_timeout_ms);

  // Outcomes of every session that closed (or aborted) so far. Barrier-free snapshot;
  // callers quiesce first (WaitIdle or Stop).
  std::vector<NetSessionOutcome> TakeResults();

  // Blocks until no connection is live and every routed record has been applied, or
  // `timeout_ms` elapses. Returns true on quiescence.
  bool WaitIdle(int64_t timeout_ms);

  size_t live_sessions() const { return service_->live_sessions(); }
  int64_t live_connections() const { return live_connections_.load(); }
  int64_t live_session_bytes() const { return live_session_bytes_.load(); }
  const ServerStats& stats() const { return stats_; }
  hangdoctor::DetectorService& service() { return *service_; }

  // Self-watchdog health (heartbeat fields). applier_stuck tracks the current wedge and
  // clears when the applier makes progress again; lease_failed is sticky — once a wedge
  // crossed the timeout, this worker's lease is forfeit and its sessions migrate.
  bool applier_stuck() const;
  bool lease_failed() const;
  // Newest coordinator fencing epoch seen on any control frame.
  uint64_t lease_epoch() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::unique_ptr<hangdoctor::DetectorService> service_;
  std::atomic<int64_t> live_connections_{0};
  std::atomic<int64_t> live_session_bytes_{0};
  ServerStats stats_;
  uint16_t port_ = 0;
};

}  // namespace netd

#endif  // SRC_NETD_SERVER_H_
