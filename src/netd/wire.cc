#include "src/netd/wire.h"

#include <cstring>

namespace netd {

namespace {
constexpr char kMagic[4] = {'H', 'D', 'S', 'L'};
}  // namespace

void PutVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>(static_cast<uint8_t>(value) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(static_cast<uint8_t>(value)));
}

bool GetVarint(const std::string& data, size_t* pos, uint64_t* value) {
  *value = 0;
  int shift = 0;
  while (*pos < data.size()) {
    auto byte = static_cast<uint8_t>(data[(*pos)++]);
    *value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return true;
    }
    shift += 7;
    if (shift >= 64) {
      return false;
    }
  }
  return false;
}

void PutString(std::string* out, const std::string& value) {
  PutVarint(out, value.size());
  out->append(value);
}

bool GetString(const std::string& data, size_t* pos, std::string* value) {
  uint64_t size = 0;
  if (!GetVarint(data, pos, &size)) {
    return false;
  }
  if (size > data.size() - *pos) {
    return false;
  }
  value->assign(data, *pos, size);
  *pos += size;
  return true;
}

void AppendFrame(std::string* out, const std::string& payload) {
  PutVarint(out, payload.size());
  out->append(payload);
}

std::string BuildHello(uint32_t version) {
  std::string payload(kMagic, sizeof(kMagic));
  PutVarint(&payload, version);
  return payload;
}

bool ParseHello(const std::string& payload, uint32_t* version, std::string* error) {
  if (payload.size() < sizeof(kMagic) ||
      std::memcmp(payload.data(), kMagic, sizeof(kMagic)) != 0) {
    *error = "hello: bad magic";
    return false;
  }
  size_t pos = sizeof(kMagic);
  uint64_t value = 0;
  if (!GetVarint(payload, &pos, &value) || pos != payload.size()) {
    *error = "hello: malformed version";
    return false;
  }
  *version = static_cast<uint32_t>(value);
  return true;
}

std::string BuildHelloOk(uint32_t version) {
  std::string payload(1, static_cast<char>(ReplyTag::kHelloOk));
  PutVarint(&payload, version);
  return payload;
}

std::string BuildBusy(uint64_t session_id, uint64_t live_bytes, uint64_t budget_bytes) {
  std::string payload(1, static_cast<char>(ReplyTag::kBusy));
  PutVarint(&payload, session_id);
  PutVarint(&payload, live_bytes);
  PutVarint(&payload, budget_bytes);
  return payload;
}

std::string BuildSessionClosed(uint64_t session_id, bool stream_ok, uint64_t report_entries,
                               const std::string& stream_error) {
  std::string payload(1, static_cast<char>(ReplyTag::kSessionClosed));
  PutVarint(&payload, session_id);
  payload.push_back(stream_ok ? '\1' : '\0');
  PutVarint(&payload, report_entries);
  PutString(&payload, stream_error);
  return payload;
}

std::string BuildError(const std::string& message) {
  std::string payload(1, static_cast<char>(ReplyTag::kError));
  PutString(&payload, message);
  return payload;
}

std::string BuildBye(uint64_t sessions_closed) {
  std::string payload(1, static_cast<char>(ReplyTag::kBye));
  PutVarint(&payload, sessions_closed);
  return payload;
}

bool ParseReply(const std::string& payload, Reply* reply, std::string* error) {
  if (payload.empty()) {
    *error = "reply: empty payload";
    return false;
  }
  *reply = Reply{};
  reply->tag = static_cast<ReplyTag>(static_cast<uint8_t>(payload[0]));
  size_t pos = 1;
  uint64_t value = 0;
  bool ok = true;
  switch (reply->tag) {
    case ReplyTag::kHelloOk:
      ok = GetVarint(payload, &pos, &value);
      reply->version = static_cast<uint32_t>(value);
      break;
    case ReplyTag::kBusy:
      ok = GetVarint(payload, &pos, &reply->session_id) &&
           GetVarint(payload, &pos, &reply->live_bytes) &&
           GetVarint(payload, &pos, &reply->budget_bytes);
      break;
    case ReplyTag::kSessionClosed:
      ok = GetVarint(payload, &pos, &reply->session_id);
      if (ok && pos < payload.size()) {
        reply->stream_ok = payload[pos++] != '\0';
      } else {
        ok = false;
      }
      ok = ok && GetVarint(payload, &pos, &reply->report_entries) &&
           GetString(payload, &pos, &reply->message);
      break;
    case ReplyTag::kError:
      ok = GetString(payload, &pos, &reply->message);
      break;
    case ReplyTag::kBye:
      ok = GetVarint(payload, &pos, &reply->sessions_closed);
      break;
    default:
      *error = "reply: unknown tag " + std::to_string(static_cast<int>(reply->tag));
      return false;
  }
  if (!ok || pos != payload.size()) {
    *error = "reply: malformed payload";
    return false;
  }
  return true;
}

bool FrameSplitter::Fail(const std::string& message) {
  if (ok_) {
    ok_ = false;
    error_ = message;
  }
  return false;
}

bool FrameSplitter::Feed(const char* data, size_t size) {
  if (!ok_) {
    return false;
  }
  // Reclaim the consumed prefix before it grows without bound (steady state keeps the
  // buffer under one frame + one read chunk).
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > (64u << 10)) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
  return true;
}

bool FrameSplitter::Next(std::string* payload) {
  if (!ok_) {
    return false;
  }
  size_t pos = consumed_;
  uint64_t length = 0;
  // Decode the length varint by hand so an incomplete prefix is "wait for more bytes" but a
  // runaway varint or oversized length is a hard (sticky) error.
  int shift = 0;
  bool complete = false;
  while (pos < buffer_.size()) {
    auto byte = static_cast<uint8_t>(buffer_[pos++]);
    length |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      complete = true;
      break;
    }
    shift += 7;
    if (shift >= 64) {
      return Fail("frame length varint overflow");
    }
  }
  if (!complete) {
    return false;  // length prefix still arriving
  }
  if (length == 0) {
    return Fail("zero-length frame");
  }
  if (length > max_frame_bytes_) {
    return Fail("frame length " + std::to_string(length) + " exceeds cap " +
                std::to_string(max_frame_bytes_));
  }
  if (length > buffer_.size() - pos) {
    return false;  // payload still arriving
  }
  payload->assign(buffer_, pos, length);
  consumed_ = pos + static_cast<size_t>(length);
  return true;
}

}  // namespace netd
