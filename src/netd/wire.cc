#include "src/netd/wire.h"

#include <cstring>

namespace netd {

namespace {
constexpr char kMagic[4] = {'H', 'D', 'S', 'L'};
}  // namespace

void PutVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>(static_cast<uint8_t>(value) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(static_cast<uint8_t>(value)));
}

bool GetVarint(const std::string& data, size_t* pos, uint64_t* value) {
  *value = 0;
  int shift = 0;
  while (*pos < data.size()) {
    auto byte = static_cast<uint8_t>(data[(*pos)++]);
    *value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return true;
    }
    shift += 7;
    if (shift >= 64) {
      return false;
    }
  }
  return false;
}

void PutString(std::string* out, const std::string& value) {
  PutVarint(out, value.size());
  out->append(value);
}

bool GetString(const std::string& data, size_t* pos, std::string* value) {
  uint64_t size = 0;
  if (!GetVarint(data, pos, &size)) {
    return false;
  }
  if (size > data.size() - *pos) {
    return false;
  }
  value->assign(data, *pos, size);
  *pos += size;
  return true;
}

void AppendFrame(std::string* out, const std::string& payload) {
  PutVarint(out, payload.size());
  out->append(payload);
}

std::string BuildHello(uint32_t version, HelloRole role) {
  std::string payload(kMagic, sizeof(kMagic));
  PutVarint(&payload, version);
  if (role != HelloRole::kClient) {
    PutVarint(&payload, static_cast<uint64_t>(role));
  }
  return payload;
}

bool ParseHello(const std::string& payload, uint32_t* version, HelloRole* role,
                std::string* error) {
  if (payload.size() < sizeof(kMagic) ||
      std::memcmp(payload.data(), kMagic, sizeof(kMagic)) != 0) {
    *error = "hello: bad magic";
    return false;
  }
  size_t pos = sizeof(kMagic);
  uint64_t value = 0;
  if (!GetVarint(payload, &pos, &value)) {
    *error = "hello: malformed version";
    return false;
  }
  *version = static_cast<uint32_t>(value);
  *role = HelloRole::kClient;
  if (pos < payload.size()) {
    uint64_t raw_role = 0;
    if (!GetVarint(payload, &pos, &raw_role) || pos != payload.size()) {
      *error = "hello: malformed role";
      return false;
    }
    if (raw_role > static_cast<uint64_t>(HelloRole::kWorker)) {
      *error = "hello: unknown role " + std::to_string(raw_role);
      return false;
    }
    *role = static_cast<HelloRole>(raw_role);
  }
  return true;
}

std::string BuildHeartbeat(uint64_t epoch) {
  std::string payload(1, static_cast<char>(kCtrlHeartbeat));
  PutVarint(&payload, epoch);
  return payload;
}

bool ParseHeartbeat(const std::string& payload, uint64_t* epoch, std::string* error) {
  if (payload.empty() || static_cast<uint8_t>(payload[0]) != kCtrlHeartbeat) {
    *error = "heartbeat: bad tag";
    return false;
  }
  size_t pos = 1;
  if (!GetVarint(payload, &pos, epoch) || pos != payload.size()) {
    *error = "heartbeat: malformed payload";
    return false;
  }
  return true;
}

std::string BuildHandoff(uint64_t epoch, const std::vector<uint64_t>& sessions) {
  std::string payload(1, static_cast<char>(kCtrlHandoff));
  PutVarint(&payload, epoch);
  PutVarint(&payload, sessions.size());
  for (uint64_t id : sessions) {
    PutVarint(&payload, id);
  }
  return payload;
}

bool ParseHandoff(const std::string& payload, uint64_t* epoch,
                  std::vector<uint64_t>* sessions, std::string* error) {
  if (payload.empty() || static_cast<uint8_t>(payload[0]) != kCtrlHandoff) {
    *error = "handoff: bad tag";
    return false;
  }
  size_t pos = 1;
  uint64_t count = 0;
  if (!GetVarint(payload, &pos, epoch) || !GetVarint(payload, &pos, &count)) {
    *error = "handoff: malformed payload";
    return false;
  }
  // Each id costs at least one byte, so `count` is bounded by the remaining payload — a
  // hostile count cannot reserve unbounded memory.
  if (count > payload.size() - pos) {
    *error = "handoff: session count exceeds payload";
    return false;
  }
  sessions->clear();
  sessions->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    if (!GetVarint(payload, &pos, &id)) {
      *error = "handoff: truncated session list";
      return false;
    }
    sessions->push_back(id);
  }
  if (pos != payload.size()) {
    *error = "handoff: trailing bytes";
    return false;
  }
  return true;
}

std::string BuildHelloOk(uint32_t version) {
  std::string payload(1, static_cast<char>(ReplyTag::kHelloOk));
  PutVarint(&payload, version);
  return payload;
}

std::string BuildBusy(uint64_t session_id, uint64_t live_bytes, uint64_t budget_bytes) {
  std::string payload(1, static_cast<char>(ReplyTag::kBusy));
  PutVarint(&payload, session_id);
  PutVarint(&payload, live_bytes);
  PutVarint(&payload, budget_bytes);
  return payload;
}

std::string BuildSessionClosed(uint64_t session_id, bool stream_ok, uint64_t report_entries,
                               const std::string& stream_error) {
  std::string payload(1, static_cast<char>(ReplyTag::kSessionClosed));
  PutVarint(&payload, session_id);
  payload.push_back(stream_ok ? '\1' : '\0');
  PutVarint(&payload, report_entries);
  PutString(&payload, stream_error);
  return payload;
}

std::string BuildError(const std::string& message) {
  std::string payload(1, static_cast<char>(ReplyTag::kError));
  PutString(&payload, message);
  return payload;
}

std::string BuildBye(uint64_t sessions_closed) {
  std::string payload(1, static_cast<char>(ReplyTag::kBye));
  PutVarint(&payload, sessions_closed);
  return payload;
}

std::string BuildHeartbeatAck(uint64_t epoch, uint64_t live_sessions,
                              uint64_t records_applied, bool applier_stuck,
                              bool lease_failed) {
  std::string payload(1, static_cast<char>(ReplyTag::kHeartbeatAck));
  PutVarint(&payload, epoch);
  PutVarint(&payload, live_sessions);
  PutVarint(&payload, records_applied);
  payload.push_back(applier_stuck ? '\1' : '\0');
  payload.push_back(lease_failed ? '\1' : '\0');
  return payload;
}

std::string BuildStaleEpoch(uint64_t lease_epoch) {
  std::string payload(1, static_cast<char>(ReplyTag::kStaleEpoch));
  PutVarint(&payload, lease_epoch);
  return payload;
}

std::string BuildHandoffAck(uint64_t epoch, uint64_t discarded) {
  std::string payload(1, static_cast<char>(ReplyTag::kHandoffAck));
  PutVarint(&payload, epoch);
  PutVarint(&payload, discarded);
  return payload;
}

std::string BuildSessionResult(uint64_t session_id, const std::string& result_bytes) {
  std::string payload(1, static_cast<char>(ReplyTag::kSessionResult));
  PutVarint(&payload, session_id);
  PutString(&payload, result_bytes);
  return payload;
}

bool ParseReply(const std::string& payload, Reply* reply, std::string* error) {
  if (payload.empty()) {
    *error = "reply: empty payload";
    return false;
  }
  *reply = Reply{};
  reply->tag = static_cast<ReplyTag>(static_cast<uint8_t>(payload[0]));
  size_t pos = 1;
  uint64_t value = 0;
  bool ok = true;
  switch (reply->tag) {
    case ReplyTag::kHelloOk:
      ok = GetVarint(payload, &pos, &value);
      reply->version = static_cast<uint32_t>(value);
      break;
    case ReplyTag::kBusy:
      ok = GetVarint(payload, &pos, &reply->session_id) &&
           GetVarint(payload, &pos, &reply->live_bytes) &&
           GetVarint(payload, &pos, &reply->budget_bytes);
      break;
    case ReplyTag::kSessionClosed:
      ok = GetVarint(payload, &pos, &reply->session_id);
      if (ok && pos < payload.size()) {
        reply->stream_ok = payload[pos++] != '\0';
      } else {
        ok = false;
      }
      ok = ok && GetVarint(payload, &pos, &reply->report_entries) &&
           GetString(payload, &pos, &reply->message);
      break;
    case ReplyTag::kError:
      ok = GetString(payload, &pos, &reply->message);
      break;
    case ReplyTag::kBye:
      ok = GetVarint(payload, &pos, &reply->sessions_closed);
      break;
    case ReplyTag::kHeartbeatAck:
      ok = GetVarint(payload, &pos, &reply->epoch) &&
           GetVarint(payload, &pos, &reply->live_sessions) &&
           GetVarint(payload, &pos, &reply->records_applied) &&
           payload.size() - pos == 2;
      if (ok) {
        reply->applier_stuck = payload[pos++] != '\0';
        reply->lease_failed = payload[pos++] != '\0';
      }
      break;
    case ReplyTag::kStaleEpoch:
      ok = GetVarint(payload, &pos, &reply->epoch);
      break;
    case ReplyTag::kHandoffAck:
      ok = GetVarint(payload, &pos, &reply->epoch) &&
           GetVarint(payload, &pos, &reply->discarded);
      break;
    case ReplyTag::kSessionResult:
      ok = GetVarint(payload, &pos, &reply->session_id) &&
           GetString(payload, &pos, &reply->result);
      break;
    default:
      *error = "reply: unknown tag " + std::to_string(static_cast<int>(reply->tag));
      return false;
  }
  if (!ok || pos != payload.size()) {
    *error = "reply: malformed payload";
    return false;
  }
  return true;
}

bool FrameSplitter::Fail(const std::string& message) {
  if (ok_) {
    ok_ = false;
    error_ = message;
  }
  return false;
}

bool FrameSplitter::Feed(const char* data, size_t size) {
  if (!ok_) {
    return false;
  }
  // Reclaim the consumed prefix before it grows without bound (steady state keeps the
  // buffer under one frame + one read chunk).
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > (64u << 10)) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
  return true;
}

bool FrameSplitter::Next(std::string* payload) {
  if (!ok_) {
    return false;
  }
  size_t pos = consumed_;
  uint64_t length = 0;
  // Decode the length varint by hand so an incomplete prefix is "wait for more bytes" but a
  // runaway varint or oversized length is a hard (sticky) error.
  int shift = 0;
  bool complete = false;
  while (pos < buffer_.size()) {
    auto byte = static_cast<uint8_t>(buffer_[pos++]);
    length |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      complete = true;
      break;
    }
    shift += 7;
    if (shift >= 64) {
      return Fail("frame length varint overflow");
    }
  }
  if (!complete) {
    return false;  // length prefix still arriving
  }
  if (length == 0) {
    return Fail("zero-length frame");
  }
  if (length > max_frame_bytes_) {
    return Fail("frame length " + std::to_string(length) + " exceeds cap " +
                std::to_string(max_frame_bytes_));
  }
  if (length > buffer_.size() - pos) {
    return false;  // payload still arriving
  }
  payload->assign(buffer_, pos, length);
  consumed_ = pos + static_cast<size_t>(length);
  return true;
}

}  // namespace netd
