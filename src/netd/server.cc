#include "src/netd/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <mutex>
#include <semaphore>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/netd/record_codec.h"
#include "src/netd/result_codec.h"
#include "src/netd/wire.h"
#include "src/simkit/affinity.h"
#include "src/simkit/mpmc_ring.h"
#include "src/simkit/spinlock.h"
#include "src/telemetry/session.h"

namespace netd {

namespace hd = hangdoctor;

namespace {

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

void SignalEventFd(int fd) {
  uint64_t one = 1;
  ssize_t rc = write(fd, &one, sizeof(one));
  (void)rc;  // a full eventfd counter still wakes the reader
}

}  // namespace

// One unit of work traveling a ring: a decoded frame bound to its connection.
struct Apply;
struct Connection;

// One in-flight HANDOFF order: `remaining` discards still traveling the rings; the last
// one to land acks the coordinator with the tally.
struct HandoffState {
  uint64_t epoch = 0;
  std::atomic<int64_t> remaining{0};
  std::atomic<uint64_t> discarded{0};
};

struct Apply {
  // kHandoffDiscard is a migrate-away order: like kAbort it frees the session without
  // harvesting, but records no outcome — the session is not torn, it is being replayed on
  // its new owner from the coordinator's HDSL tap.
  enum class Kind : uint8_t { kOpen, kRecord, kClose, kAbort, kHandoffDiscard };
  Kind kind = Kind::kRecord;
  telemetry::SessionId id{0};
  int64_t estimate = 0;  // kOpen/kClose/kAbort/kHandoffDiscard: the session's budget charge
  std::shared_ptr<hd::SessionLog> log;  // keeps the session's symbol table alive
  hd::ServiceRecord record;
  std::shared_ptr<Connection> conn;
  std::shared_ptr<HandoffState> handoff;  // kHandoffDiscard
  std::string reason;  // kAbort
};

struct Connection {
  int fd = -1;
  int worker = 0;
  FrameSplitter splitter;
  MuxStreamDecoder decoder;
  bool hello_done = false;
  // Set at HELLO, before any apply is routed from this connection; the routing ring's
  // push/pop pair publishes it to the appliers.
  HelloRole role = HelloRole::kClient;

  // Worker-thread-only state.
  std::unordered_map<uint64_t, int64_t> live;  // admitted sessions → budget charge
  std::unordered_set<uint64_t> refused;        // kBusy'd sessions: records dropped
  std::string out;                             // write buffer (worker-owned)
  bool reading = true;
  bool want_write = false;
  bool want_bye = false;
  bool bye_sent = false;
  bool dead = false;       // sticky protocol error: no further reads/decodes
  bool peer_gone = false;  // EOF/reset: no further writes either
  bool closing = false;    // close once out is flushed and applies have landed
  bool has_parked = false;
  Apply parked;

  // Cross-thread state (appliers touch these).
  std::mutex reply_mu;
  std::string replies;  // applier-encoded reply frames, drained into `out` by the worker
  std::string applier_error_msg;  // guarded by reply_mu
  std::atomic<bool> applier_error{false};
  std::atomic<int64_t> pending{0};  // applies routed but not yet landed
  std::atomic<uint64_t> closed_count{0};
  std::atomic<bool> closed{false};  // fd gone: appliers stop enqueueing replies

  explicit Connection(size_t max_frame) : splitter(max_frame) {}
};

struct WorkerState {
  int epfd = -1;
  int wake_fd = -1;
  std::thread thread;
  std::mutex inbox_mu;
  std::vector<int> inbox;
  std::unordered_map<int, std::shared_ptr<Connection>> conns;  // worker-thread only
  bool drain_started = false;
};

struct RingSlot {
  std::unique_ptr<simkit::MpmcRing<Apply>> ring;
  std::counting_semaphore<> items{0};
  std::thread thread;
  // Watchdog progress signal (LCI hang_detector idiom): the applier bumps `progress` as it
  // takes each item and holds `busy` across the apply. busy == true with `progress` frozen
  // past the timeout is the stuck verdict.
  std::atomic<uint64_t> progress{0};
  std::atomic<bool> busy{false};
};

struct NetServer::Impl {
  ServerOptions opt;
  NetServer* self = nullptr;

  std::vector<std::unique_ptr<WorkerState>> workers;
  std::vector<std::unique_ptr<RingSlot>> rings;

  // Backpressure wakeups: workers with a parked record register their wake fd; appliers
  // signal the set after freeing ring space.
  std::mutex waiter_mu;
  std::vector<int> waiter_fds;
  std::atomic<int> waiters{0};

  std::mutex results_mu;
  std::vector<NetSessionOutcome> results;

  std::atomic<int64_t> inflight{0};  // records routed but not yet applied
  std::atomic<bool> draining{false};
  std::atomic<bool> stopping{false};
  std::atomic<bool> applier_stop{false};
  std::atomic<uint32_t> next_worker{0};
  bool stopped = false;

  // Lease / fencing state (worker-role control frames). lease_epoch is the newest epoch any
  // control frame carried; an older epoch marks its sender as a fenced, superseded
  // coordinator. applier_stuck / lease_failed are the watchdog's verdicts.
  std::atomic<uint64_t> lease_epoch{0};
  std::atomic<bool> applier_stuck{false};
  std::atomic<bool> lease_failed{false};
  std::atomic<bool> watchdog_stop{false};
  std::thread watchdog;

  int listen_fd = -1;
  int accept_stop_fd = -1;
  std::thread acceptor;

  // ---- routing ----

  size_t RingOf(telemetry::SessionId id) const {
    return telemetry::ShardOf(id, rings.size());
  }

  void WakeWaiters() {
    if (waiters.load(std::memory_order_acquire) == 0) {
      return;
    }
    std::lock_guard<std::mutex> lock(waiter_mu);
    for (int fd : waiter_fds) {
      SignalEventFd(fd);
    }
    waiter_fds.clear();
    waiters.store(0, std::memory_order_release);
  }

  void RegisterWaiter(int wake_fd) {
    std::lock_guard<std::mutex> lock(waiter_mu);
    waiter_fds.push_back(wake_fd);
    waiters.store(static_cast<int>(waiter_fds.size()), std::memory_order_release);
  }

  void RouteBlocking(Apply&& apply) {
    size_t r = RingOf(apply.id);
    apply.conn->pending.fetch_add(1, std::memory_order_relaxed);
    inflight.fetch_add(1, std::memory_order_relaxed);
    rings[r]->ring->Push(std::move(apply));
    rings[r]->items.release();
  }

  // Returns false when the ring was full: the apply is parked on the connection and EPOLLIN
  // must stay off until ring space frees up.
  bool Route(std::shared_ptr<Connection>& conn, Apply&& apply) {
    size_t r = RingOf(apply.id);
    apply.conn = conn;
    conn->pending.fetch_add(1, std::memory_order_relaxed);
    inflight.fetch_add(1, std::memory_order_relaxed);
    if (rings[r]->ring->TryPush(apply)) {
      rings[r]->items.release();
      return true;
    }
    self->stats_.backpressure_pauses.fetch_add(1, std::memory_order_relaxed);
    RegisterWaiter(workers[conn->worker]->wake_fd);
    // Re-try once after registering, closing the race where the applier freed space and
    // signaled waiters between our failed push and the registration.
    if (rings[r]->ring->TryPush(apply)) {
      rings[r]->items.release();
      return true;
    }
    conn->parked = std::move(apply);
    conn->has_parked = true;
    return false;
  }

  // ---- worker side ----

  void UpdateEvents(WorkerState& wk, const std::shared_ptr<Connection>& conn) {
    epoll_event ev{};
    ev.data.fd = conn->fd;
    ev.events = 0;
    if (conn->reading && !conn->dead && !conn->has_parked && !conn->closing) {
      ev.events |= EPOLLIN;
    }
    if (conn->want_write) {
      ev.events |= EPOLLOUT;
    }
    epoll_ctl(wk.epfd, EPOLL_CTL_MOD, conn->fd, &ev);
  }

  void CloseConn(WorkerState& wk, const std::shared_ptr<Connection>& conn) {
    if (conn->closed.exchange(true)) {
      return;
    }
    epoll_ctl(wk.epfd, EPOLL_CTL_DEL, conn->fd, nullptr);
    close(conn->fd);
    wk.conns.erase(conn->fd);
    self->live_connections_.fetch_sub(1, std::memory_order_relaxed);
  }

  void FlushWrites(WorkerState& wk, const std::shared_ptr<Connection>& conn) {
    if (conn->closed.load() || conn->peer_gone) {
      conn->out.clear();
      return;
    }
    size_t off = 0;
    while (off < conn->out.size()) {
      // MSG_NOSIGNAL: a peer that reset mid-reply must surface as EPIPE, not kill the
      // daemon with SIGPIPE.
      ssize_t n = send(conn->fd, conn->out.data() + off, conn->out.size() - off,
                       MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      // Peer reset under us: replies are undeliverable, stop producing them.
      conn->peer_gone = true;
      conn->out.clear();
      return;
    }
    conn->out.erase(0, off);
    bool want = !conn->out.empty();
    if (want != conn->want_write) {
      conn->want_write = want;
      UpdateEvents(wk, conn);
    }
  }

  void SendReply(WorkerState& wk, const std::shared_ptr<Connection>& conn,
                 const std::string& payload) {
    AppendFrame(&conn->out, payload);
    FlushWrites(wk, conn);
  }

  void AbortLiveSessions(const std::shared_ptr<Connection>& conn, const std::string& reason) {
    for (const auto& [id, est] : conn->live) {
      Apply apply;
      apply.kind = Apply::Kind::kAbort;
      apply.id = telemetry::SessionId{id};
      apply.estimate = est;
      apply.reason = reason;
      apply.conn = conn;
      RouteBlocking(std::move(apply));
    }
    conn->live.clear();
    conn->refused.clear();
  }

  void ProtocolError(WorkerState& wk, const std::shared_ptr<Connection>& conn,
                     const std::string& message) {
    if (conn->dead) {
      return;
    }
    self->stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    conn->dead = true;
    conn->reading = false;
    SendReply(wk, conn, BuildError(message));
    AbortLiveSessions(conn, "protocol error: " + message);
    conn->closing = true;
    UpdateEvents(wk, conn);
    MaybeFinish(wk, conn);
  }

  void PeerGone(WorkerState& wk, const std::shared_ptr<Connection>& conn) {
    conn->peer_gone = true;
    conn->reading = false;
    conn->out.clear();
    if (!conn->live.empty()) {
      AbortLiveSessions(conn, "connection closed mid-session");
    }
    conn->closing = true;
    MaybeFinish(wk, conn);
  }

  void MaybeFinish(WorkerState& wk, const std::shared_ptr<Connection>& conn) {
    if (conn->closed.load()) {
      return;
    }
    bool idle = conn->pending.load(std::memory_order_acquire) == 0 && !conn->has_parked;
    if (!idle) {
      return;
    }
    // pending == 0 guarantees every applier reply for this connection has been enqueued
    // (appliers enqueue before decrementing). Drain them into the write buffer NOW — the
    // bye/close decision below must never outrun a kSessionClosed still parked in
    // `replies`, or the peer loses replies that were already earned.
    {
      std::lock_guard<std::mutex> lock(conn->reply_mu);
      if (!conn->replies.empty()) {
        conn->out.append(conn->replies);
        conn->replies.clear();
      }
    }
    if (conn->want_bye && !conn->bye_sent && !conn->peer_gone && !conn->dead) {
      conn->bye_sent = true;
      SendReply(wk, conn, BuildBye(conn->closed_count.load()));
      conn->closing = true;
    }
    if (!conn->out.empty()) {
      FlushWrites(wk, conn);
    }
    if (conn->closing && (conn->out.empty() || conn->peer_gone)) {
      CloseConn(wk, conn);
    }
  }

  void HandleFrame(WorkerState& wk, std::shared_ptr<Connection>& conn, DecodedFrame&& dec) {
    switch (dec.kind) {
      case DecodedFrame::Kind::kOpen: {
        int64_t est = static_cast<int64_t>(dec.open_bytes) + opt.session_overhead_bytes;
        int64_t live_now = self->live_session_bytes_.load(std::memory_order_relaxed);
        if (live_now + est > opt.session_budget_bytes) {
          self->stats_.sessions_refused.fetch_add(1, std::memory_order_relaxed);
          conn->refused.insert(dec.id.value);
          SendReply(wk, conn,
                    BuildBusy(dec.id.value, static_cast<uint64_t>(live_now),
                              static_cast<uint64_t>(opt.session_budget_bytes)));
          return;
        }
        self->live_session_bytes_.fetch_add(est, std::memory_order_relaxed);
        conn->live[dec.id.value] = est;
        Apply apply;
        apply.kind = Apply::Kind::kOpen;
        apply.id = dec.id;
        apply.estimate = est;
        apply.log = std::move(dec.log);
        apply.record = std::move(dec.record);
        Route(conn, std::move(apply));
        return;
      }
      case DecodedFrame::Kind::kRecord: {
        if (dec.skip || conn->refused.count(dec.id.value) != 0) {
          return;
        }
        Apply apply;
        apply.kind = Apply::Kind::kRecord;
        apply.id = dec.id;
        apply.log = std::move(dec.log);
        apply.record = std::move(dec.record);
        Route(conn, std::move(apply));
        return;
      }
      case DecodedFrame::Kind::kClose: {
        if (conn->refused.erase(dec.id.value) != 0) {
          return;  // the open was kBusy'd; nothing to close
        }
        auto it = conn->live.find(dec.id.value);
        int64_t est = it != conn->live.end() ? it->second : 0;
        if (it != conn->live.end()) {
          conn->live.erase(it);
        }
        Apply apply;
        apply.kind = Apply::Kind::kClose;
        apply.id = dec.id;
        apply.estimate = est;
        apply.log = std::move(dec.log);
        apply.record = std::move(dec.record);
        Route(conn, std::move(apply));
        return;
      }
      case DecodedFrame::Kind::kEpochPublish:
        // Recorded KB epoch boundary. The daemon runs without an attached knowledge base,
        // so the schedule is acknowledged but carries no work.
        return;
      case DecodedFrame::Kind::kBye:
        conn->want_bye = true;
        conn->reading = false;
        UpdateEvents(wk, conn);
        MaybeFinish(wk, conn);
        return;
    }
  }

  // Fencing gate shared by every control frame: a frame carrying an epoch older than the
  // newest seen marks its sender as a superseded coordinator — answer kStaleEpoch, do not
  // act. Newer epochs are adopted (monotonic max).
  bool AdmitEpoch(WorkerState& wk, const std::shared_ptr<Connection>& conn, uint64_t epoch) {
    uint64_t seen = lease_epoch.load(std::memory_order_relaxed);
    while (epoch > seen &&
           !lease_epoch.compare_exchange_weak(seen, epoch, std::memory_order_relaxed)) {
    }
    if (epoch < lease_epoch.load(std::memory_order_relaxed)) {
      self->stats_.stale_epochs.fetch_add(1, std::memory_order_relaxed);
      SendReply(wk, conn, BuildStaleEpoch(lease_epoch.load(std::memory_order_relaxed)));
      return false;
    }
    return true;
  }

  void HandleControl(WorkerState& wk, const std::shared_ptr<Connection>& conn,
                     const std::string& payload) {
    uint8_t tag = static_cast<uint8_t>(payload[0]);
    std::string error;
    if (tag == kCtrlHeartbeat) {
      uint64_t epoch = 0;
      if (!ParseHeartbeat(payload, &epoch, &error)) {
        ProtocolError(wk, conn, error);
        return;
      }
      if (!AdmitEpoch(wk, conn, epoch)) {
        return;
      }
      self->stats_.heartbeats.fetch_add(1, std::memory_order_relaxed);
      SendReply(wk, conn,
                BuildHeartbeatAck(
                    lease_epoch.load(std::memory_order_relaxed),
                    self->service_->live_sessions(),
                    static_cast<uint64_t>(
                        self->stats_.records_applied.load(std::memory_order_relaxed)),
                    applier_stuck.load(std::memory_order_relaxed),
                    lease_failed.load(std::memory_order_relaxed)));
      return;
    }
    if (tag == kCtrlHandoff) {
      uint64_t epoch = 0;
      std::vector<uint64_t> sessions;
      if (!ParseHandoff(payload, &epoch, &sessions, &error)) {
        ProtocolError(wk, conn, error);
        return;
      }
      if (!AdmitEpoch(wk, conn, epoch)) {
        return;
      }
      auto handoff = std::make_shared<HandoffState>();
      handoff->epoch = epoch;
      // Route the discards through the session rings like records, so each lands strictly
      // after everything this connection already routed for that session. Sessions the
      // connection does not hold live (already closed, refused, never opened here) have
      // nothing to discard and do not travel.
      std::vector<Apply> orders;
      for (uint64_t id : sessions) {
        conn->refused.erase(id);
        auto it = conn->live.find(id);
        if (it == conn->live.end()) {
          continue;
        }
        Apply apply;
        apply.kind = Apply::Kind::kHandoffDiscard;
        apply.id = telemetry::SessionId{id};
        apply.estimate = it->second;
        apply.handoff = handoff;
        apply.conn = conn;
        orders.push_back(std::move(apply));
        conn->live.erase(it);
      }
      if (orders.empty()) {
        SendReply(wk, conn, BuildHandoffAck(epoch, 0));
        return;
      }
      // `remaining` must cover every order before the first lands, or an early discard
      // could see remaining == 0 and ack a half-applied handoff.
      handoff->remaining.store(static_cast<int64_t>(orders.size()),
                               std::memory_order_release);
      for (Apply& apply : orders) {
        RouteBlocking(std::move(apply));
      }
      return;
    }
    ProtocolError(wk, conn, "unknown control frame tag " + std::to_string(tag));
  }

  // Decodes every complete buffered frame, stopping early on a parked record or a dead
  // connection.
  void ProcessFrames(WorkerState& wk, std::shared_ptr<Connection>& conn) {
    while (!conn->has_parked && !conn->dead && !conn->closing && conn->reading) {
      std::string payload;
      if (!conn->splitter.Next(&payload)) {
        if (!conn->splitter.ok()) {
          ProtocolError(wk, conn, conn->splitter.error());
        }
        return;
      }
      self->stats_.frames_in.fetch_add(1, std::memory_order_relaxed);
      if (!conn->hello_done) {
        uint32_t version = 0;
        HelloRole role = HelloRole::kClient;
        std::string error;
        if (!ParseHello(payload, &version, &role, &error)) {
          ProtocolError(wk, conn, error);
          return;
        }
        if (version < kWireVersionMin || version > kWireVersionMax) {
          ProtocolError(wk, conn, "unsupported wire version " + std::to_string(version));
          return;
        }
        if (role == HelloRole::kWorker && !opt.allow_worker_role) {
          ProtocolError(wk, conn, "worker role not allowed on this daemon");
          return;
        }
        conn->hello_done = true;
        conn->role = role;
        SendReply(wk, conn, BuildHelloOk(version));
        continue;
      }
      if (conn->role == HelloRole::kWorker && !payload.empty() &&
          static_cast<uint8_t>(payload[0]) >= kCtrlBase) {
        HandleControl(wk, conn, payload);
        continue;
      }
      DecodedFrame dec;
      if (!conn->decoder.Decode(payload, &dec)) {
        ProtocolError(wk, conn, conn->decoder.error());
        return;
      }
      HandleFrame(wk, conn, std::move(dec));
    }
    if (conn->has_parked) {
      UpdateEvents(wk, conn);  // EPOLLIN off until the ring drains
    }
  }

  void HandleReadable(WorkerState& wk, std::shared_ptr<Connection>& conn) {
    if (conn->dead || conn->closing || !conn->reading || conn->has_parked) {
      return;
    }
    char buf[64 * 1024];
    ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      self->stats_.bytes_in.fetch_add(n, std::memory_order_relaxed);
      conn->splitter.Feed(buf, static_cast<size_t>(n));
      ProcessFrames(wk, conn);
      return;  // level-triggered epoll re-fires if more bytes are queued
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      return;
    }
    // EOF or reset. A clean BYE already paused reading, so reaching here with live
    // sessions means the peer died mid-stream.
    PeerGone(wk, conn);
  }

  void RetryParked(WorkerState& wk, std::shared_ptr<Connection>& conn) {
    if (!conn->has_parked) {
      return;
    }
    size_t r = RingOf(conn->parked.id);
    if (!rings[r]->ring->TryPush(conn->parked)) {
      RegisterWaiter(wk.wake_fd);
      if (!rings[r]->ring->TryPush(conn->parked)) {
        return;  // still full; stay paused
      }
    }
    rings[r]->items.release();
    conn->has_parked = false;
    conn->parked = Apply{};
    if (!conn->dead && !conn->closing) {
      conn->reading = true;
    }
    UpdateEvents(wk, conn);
    ProcessFrames(wk, conn);  // keep decoding what was already buffered
  }

  void AdoptIntoWorker(WorkerState& wk, int fd) {
    SetNonBlocking(fd);
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));  // no-op for socketpairs
    auto conn = std::make_shared<Connection>(opt.max_frame_bytes);
    conn->fd = fd;
    for (size_t i = 0; i < workers.size(); ++i) {
      if (workers[i].get() == &wk) {
        conn->worker = static_cast<int>(i);
        break;
      }
    }
    wk.conns[fd] = conn;
    epoll_event ev{};
    ev.data.fd = fd;
    ev.events = EPOLLIN;
    epoll_ctl(wk.epfd, EPOLL_CTL_ADD, fd, &ev);
    if (draining.load()) {
      StartDrain(wk, conn);
    }
  }

  void StartDrain(WorkerState& wk, const std::shared_ptr<Connection>& conn) {
    if (conn->closed.load() || conn->closing) {
      return;
    }
    conn->reading = false;
    if (conn->has_parked) {
      // Order: the parked record precedes the forced closes of its session.
      Apply parked = std::move(conn->parked);
      conn->has_parked = false;
      size_t r = RingOf(parked.id);
      rings[r]->ring->Push(std::move(parked));
      rings[r]->items.release();
    }
    // Flush in-flight sessions: force a close through the rings so their results are
    // harvested and reported before the connection goes away.
    for (const auto& [id, est] : conn->live) {
      Apply apply;
      apply.kind = Apply::Kind::kClose;
      apply.id = telemetry::SessionId{id};
      apply.estimate = est;
      apply.record.session = apply.id;
      apply.record.record.kind = hd::SpiPayload::Kind::kSessionClose;
      apply.conn = conn;
      RouteBlocking(std::move(apply));
    }
    conn->live.clear();
    conn->refused.clear();
    conn->want_bye = true;
    UpdateEvents(wk, conn);
    MaybeFinish(wk, conn);
  }

  void HandleWake(WorkerState& wk) {
    uint64_t counter = 0;
    ssize_t rc = read(wk.wake_fd, &counter, sizeof(counter));
    (void)rc;
    std::vector<int> adopted;
    {
      std::lock_guard<std::mutex> lock(wk.inbox_mu);
      adopted.swap(wk.inbox);
    }
    for (int fd : adopted) {
      AdoptIntoWorker(wk, fd);
    }
    if (draining.load() && !wk.drain_started) {
      wk.drain_started = true;
      auto conns = wk.conns;  // StartDrain may close (erase) connections
      for (auto& [fd, conn] : conns) {
        StartDrain(wk, conn);
      }
    }
    // Service every connection: applier replies, applier errors, parked retries, pending
    // byes. O(connections per worker) per wake, which is the event the wake batches anyway.
    auto conns = wk.conns;
    for (auto& [fd, conn] : conns) {
      auto c = conn;
      if (c->applier_error.load(std::memory_order_acquire) && !c->dead) {
        std::string message;
        {
          std::lock_guard<std::mutex> lock(c->reply_mu);
          message = c->applier_error_msg;
        }
        ProtocolError(wk, c, message);
      }
      {
        std::lock_guard<std::mutex> lock(c->reply_mu);
        if (!c->replies.empty()) {
          c->out.append(c->replies);
          c->replies.clear();
        }
      }
      RetryParked(wk, c);
      FlushWrites(wk, c);
      MaybeFinish(wk, c);
    }
  }

  void WorkerLoop(size_t index) {
    if (opt.pin_workers) {
      simkit::PinCurrentThreadToCore(static_cast<int>(index));
    }
    WorkerState& wk = *workers[index];
    epoll_event events[64];
    while (true) {
      int n = epoll_wait(wk.epfd, events, 64, 100);
      for (int i = 0; i < n; ++i) {
        int fd = events[i].data.fd;
        if (fd == wk.wake_fd) {
          HandleWake(wk);
          continue;
        }
        auto it = wk.conns.find(fd);
        if (it == wk.conns.end()) {
          continue;
        }
        auto conn = it->second;
        uint32_t mask = events[i].events;
        if ((mask & (EPOLLHUP | EPOLLERR)) != 0 && (mask & EPOLLIN) == 0) {
          PeerGone(wk, conn);
          continue;
        }
        if ((mask & EPOLLOUT) != 0) {
          FlushWrites(wk, conn);
          MaybeFinish(wk, conn);
        }
        if ((mask & EPOLLIN) != 0) {
          HandleReadable(wk, conn);
          MaybeFinish(wk, conn);
        }
      }
      if (stopping.load()) {
        // Hard stop: abort what remains and leave.
        auto conns = wk.conns;
        for (auto& [fd, conn] : conns) {
          if (!conn->live.empty()) {
            AbortLiveSessions(conn, "server stopped");
          }
          CloseConn(wk, conn);
        }
        if (wk.conns.empty()) {
          break;
        }
      }
    }
  }

  // ---- applier side ----

  void SignalConnWorker(const std::shared_ptr<Connection>& conn) {
    SignalEventFd(workers[conn->worker]->wake_fd);
  }

  void EnqueueReply(const std::shared_ptr<Connection>& conn, const std::string& payload) {
    if (conn->closed.load(std::memory_order_acquire)) {
      return;
    }
    std::lock_guard<std::mutex> lock(conn->reply_mu);
    AppendFrame(&conn->replies, payload);
  }

  void MarkApplierError(const std::shared_ptr<Connection>& conn, const std::string& message) {
    {
      std::lock_guard<std::mutex> lock(conn->reply_mu);
      if (conn->applier_error_msg.empty()) {
        conn->applier_error_msg = message;
      }
    }
    conn->applier_error.store(true, std::memory_order_release);
  }

  // `owner` maps session id -> the connection that successfully opened it on this applier
  // (ids shard to appliers, so the map is authoritative and race-free). It exists for the
  // cross-connection duplicate-open case: the loser's open threw, but the id is still in
  // the loser's worker-side bookkeeping, so its later close/abort/records MUST NOT touch —
  // discard, harvest, or feed — the winner's live session.
  void ApplyItem(Apply& item,
                 std::unordered_map<uint64_t, std::shared_ptr<hd::SessionLog>>& retained,
                 std::unordered_map<uint64_t, const Connection*>& owner) {
    auto& service = *self->service_;
    auto conn = item.conn;
    try {
      switch (item.kind) {
        case Apply::Kind::kOpen:
          service.Open(item.id, item.log->info, item.log->config);
          retained[item.id.value] = item.log;
          owner[item.id.value] = conn.get();
          break;
        case Apply::Kind::kRecord: {
          auto ow = owner.find(item.id.value);
          if (ow == owner.end() || ow->second != conn.get()) {
            throw std::invalid_argument("record for session not owned by this connection");
          }
          hd::SpiPayload& payload = item.record.record;
          switch (payload.kind) {
            case hd::SpiPayload::Kind::kDispatchStart:
              service.OnDispatchStart(item.id, payload.start);
              break;
            case hd::SpiPayload::Kind::kDispatchEnd:
              payload.end.samples = payload.samples;
              service.OnDispatchEnd(item.id, payload.end);
              break;
            case hd::SpiPayload::Kind::kActionQuiesce:
              service.OnActionQuiesced(item.id, payload.quiesce);
              break;
            case hd::SpiPayload::Kind::kCounterFault:
              service.OnCounterFault(item.id, payload.fault);
              break;
            case hd::SpiPayload::Kind::kAsyncPost:
              service.OnAsyncPost(item.id, payload.async_post);
              break;
            case hd::SpiPayload::Kind::kAsyncRun:
              service.OnAsyncRun(item.id, payload.async_run);
              break;
            case hd::SpiPayload::Kind::kAsyncWaitStart:
              service.OnAsyncWaitStart(item.id, payload.wait_start);
              break;
            case hd::SpiPayload::Kind::kAsyncWaitEnd:
              service.OnAsyncWaitEnd(item.id, payload.wait_end);
              break;
            default:
              throw std::invalid_argument("unexpected payload kind");
          }
          break;
        }
        case Apply::Kind::kClose: {
          auto ow = owner.find(item.id.value);
          if (ow == owner.end() || ow->second != conn.get()) {
            // This connection's charge was already released when its open failed.
            item.estimate = 0;
            throw std::invalid_argument("close for session not owned by this connection");
          }
          owner.erase(ow);
          hd::SessionResult result = service.Close(item.id);
          self->live_session_bytes_.fetch_sub(item.estimate, std::memory_order_relaxed);
          self->stats_.sessions_closed.fetch_add(1, std::memory_order_relaxed);
          retained.erase(item.id.value);
          EnqueueReply(conn, BuildSessionClosed(item.id.value, result.stream_ok,
                                                result.report.NumBugs(),
                                                result.stream_error));
          if (conn->role == HelloRole::kWorker) {
            // The coordinator folds full worker results into the fleet report; the compact
            // kSessionClosed above stays for symmetry with plain clients.
            EnqueueReply(conn,
                         BuildSessionResult(item.id.value, EncodeSessionResult(result)));
          }
          conn->closed_count.fetch_add(1, std::memory_order_relaxed);
          NetSessionOutcome outcome;
          outcome.id = item.id;
          outcome.result = std::move(result);
          std::lock_guard<std::mutex> lock(results_mu);
          results.push_back(std::move(outcome));
          break;
        }
        case Apply::Kind::kAbort: {
          auto ow = owner.find(item.id.value);
          if (ow == owner.end() || ow->second != conn.get()) {
            break;  // the open failed on this connection; nothing to discard or release
          }
          owner.erase(ow);
          service.Discard(item.id);
          self->live_session_bytes_.fetch_sub(item.estimate, std::memory_order_relaxed);
          self->stats_.sessions_aborted.fetch_add(1, std::memory_order_relaxed);
          retained.erase(item.id.value);
          NetSessionOutcome outcome;
          outcome.id = item.id;
          outcome.aborted = true;
          outcome.stream_error = item.reason;
          std::lock_guard<std::mutex> lock(results_mu);
          results.push_back(std::move(outcome));
          break;
        }
        case Apply::Kind::kHandoffDiscard: {
          // Migrate-away: free the arena without harvesting and record NO outcome — the
          // session is not torn, its complete stream replays on the new owner, which is
          // where its one result will come from.
          auto ow = owner.find(item.id.value);
          if (ow != owner.end() && ow->second == conn.get()) {
            owner.erase(ow);
            service.Discard(item.id);
            retained.erase(item.id.value);
            item.handoff->discarded.fetch_add(1, std::memory_order_relaxed);
            self->stats_.sessions_migrated.fetch_add(1, std::memory_order_relaxed);
          }
          self->live_session_bytes_.fetch_sub(item.estimate, std::memory_order_relaxed);
          if (item.handoff->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            EnqueueReply(conn, BuildHandoffAck(
                                   item.handoff->epoch,
                                   item.handoff->discarded.load(std::memory_order_relaxed)));
          }
          break;
        }
      }
    } catch (const std::exception& e) {
      // Open of a duplicate id (cross-connection), a record the service cannot route, or a
      // discard of a session whose open already failed. The session is beyond saving; the
      // connection learns via the sticky error path.
      if (item.kind != Apply::Kind::kRecord) {
        self->live_session_bytes_.fetch_sub(item.estimate, std::memory_order_relaxed);
      }
      if (item.kind == Apply::Kind::kHandoffDiscard) {
        // The discard failed (nothing live to drop) but the handoff must still be acked —
        // an unacked handoff would wedge the coordinator's migration.
        if (item.handoff->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          EnqueueReply(conn, BuildHandoffAck(
                                 item.handoff->epoch,
                                 item.handoff->discarded.load(std::memory_order_relaxed)));
        }
      } else if (item.kind != Apply::Kind::kAbort) {
        MarkApplierError(conn, std::string("session ") + std::to_string(item.id.value) +
                                   ": " + e.what());
        if (item.kind == Apply::Kind::kOpen) {
          self->stats_.sessions_aborted.fetch_add(1, std::memory_order_relaxed);
          NetSessionOutcome outcome;
          outcome.id = item.id;
          outcome.aborted = true;
          outcome.stream_error = e.what();
          std::lock_guard<std::mutex> lock(results_mu);
          results.push_back(std::move(outcome));
        }
      }
    }
    item.conn.reset();
    conn->pending.fetch_sub(1, std::memory_order_release);
    inflight.fetch_sub(1, std::memory_order_release);
    SignalConnWorker(conn);
    WakeWaiters();
  }

  void ApplierLoop(size_t index) {
    if (opt.pin_workers) {
      simkit::PinCurrentThreadToCore(static_cast<int>(workers.size() + index));
    }
    RingSlot& slot = *rings[index];
    // Each session's open keeps its parsed log (symbol-table owner) alive here until the
    // session closes — every record of a session lands on this one applier.
    std::unordered_map<uint64_t, std::shared_ptr<hd::SessionLog>> retained;
    std::unordered_map<uint64_t, const Connection*> owner;
    auto run = [&](Apply& item) {
      slot.progress.fetch_add(1, std::memory_order_relaxed);
      slot.busy.store(true, std::memory_order_relaxed);
      if (opt.before_apply) {
        opt.before_apply(item.id.value);
      }
      ApplyItem(item, retained, owner);
      self->stats_.records_applied.fetch_add(1, std::memory_order_relaxed);
      slot.busy.store(false, std::memory_order_relaxed);
    };
    while (true) {
      slot.items.acquire();
      Apply item;
      bool popped = false;
      int spins = 0;
      // Outside shutdown, an acquired permit proves a published item exists: producers
      // release only after their TryPush returns. TryPop can still fail here when a
      // *different* producer holds a claimed-but-unpublished ticket at the head (between
      // its tail CAS and its seq store) — the ring pops in ticket order, so the published
      // item behind it is momentarily unreachable. Burning the permit on that transient
      // would strand the item (and its reply) until the next push, or forever on a quiet
      // ring, so spin the pop out instead; the claimant's publish is a few stores away.
      while (!(popped = slot.ring->TryPop(item))) {
        if (applier_stop.load()) {
          break;
        }
        if (++spins < 64) {
          simkit::CpuRelax();
        } else {
          std::this_thread::yield();
          spins = 0;
        }
      }
      if (popped) {
        run(item);
        continue;
      }
      // applier_stop with nothing poppable: workers are joined, every claim is published.
      // Late releases can outnumber items at shutdown; drain whatever remains.
      while (slot.ring->TryPop(item)) {
        run(item);
      }
      break;
    }
  }

  // ---- acceptor ----

  void AcceptorLoop() {
    pollfd fds[2];
    fds[0] = {listen_fd, POLLIN, 0};
    fds[1] = {accept_stop_fd, POLLIN, 0};
    while (true) {
      int rc = poll(fds, 2, -1);
      if (rc < 0 && errno == EINTR) {
        continue;
      }
      if ((fds[1].revents & POLLIN) != 0) {
        return;
      }
      if ((fds[0].revents & POLLIN) == 0) {
        continue;
      }
      while (true) {
        int fd = accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
          break;
        }
        if (draining.load() ||
            self->live_connections_.load() >= opt.max_connections) {
          self->stats_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
          std::string frame;
          AppendFrame(&frame, BuildBusy(0, static_cast<uint64_t>(self->live_connections_.load()),
                                        static_cast<uint64_t>(opt.max_connections)));
          ssize_t wrc = write(fd, frame.data(), frame.size());  // best-effort
          (void)wrc;
          close(fd);
          continue;
        }
        self->stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
        self->AdoptConnection(fd);
      }
    }
  }

  // ---- self-watchdog ----

  // The LCI hang_detector idiom turned on the detector fleet itself: sample each applier's
  // progress counter; busy with the counter frozen past the timeout means one record has
  // wedged the applier. The verdict is surfaced as heartbeat health, and the lease is
  // force-failed (sticky) so the coordinator migrates this worker's sessions. The stuck
  // flag itself clears if the applier ever resumes — health reports the present, the lease
  // remembers the past.
  void WatchdogLoop() {
    std::vector<uint64_t> last(rings.size(), 0);
    std::vector<std::chrono::steady_clock::time_point> since(rings.size(),
                                                             std::chrono::steady_clock::now());
    while (!watchdog_stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(opt.watchdog_poll_ms));
      auto now = std::chrono::steady_clock::now();
      bool any_stuck = false;
      for (size_t r = 0; r < rings.size(); ++r) {
        uint64_t progress = rings[r]->progress.load(std::memory_order_relaxed);
        if (!rings[r]->busy.load(std::memory_order_relaxed) || progress != last[r]) {
          last[r] = progress;
          since[r] = now;
          continue;
        }
        auto stalled =
            std::chrono::duration_cast<std::chrono::milliseconds>(now - since[r]).count();
        if (stalled >= opt.watchdog_timeout_ms) {
          any_stuck = true;
        }
      }
      if (any_stuck) {
        if (!applier_stuck.exchange(true, std::memory_order_relaxed)) {
          self->stats_.watchdog_trips.fetch_add(1, std::memory_order_relaxed);
        }
        lease_failed.store(true, std::memory_order_relaxed);
      } else {
        applier_stuck.store(false, std::memory_order_relaxed);
      }
    }
  }

  // The join half of shutdown (shared by Stop() and the deadline overload once the drain
  // has quiesced). Must not be entered with a wedged applier: the joins are unconditional.
  void FinishStop() {
    if (stopped) {
      return;
    }
    stopped = true;
    watchdog_stop.store(true);
    if (watchdog.joinable()) {
      watchdog.join();
    }
    stopping.store(true);
    for (auto& wk : workers) {
      SignalEventFd(wk->wake_fd);
    }
    for (auto& wk : workers) {
      if (wk->thread.joinable()) {
        wk->thread.join();
      }
    }
    // Workers are gone: no further pushes. Let the appliers finish what is routed, then
    // stop.
    applier_stop.store(true);
    for (auto& slot : rings) {
      slot->items.release();
    }
    for (auto& slot : rings) {
      if (slot->thread.joinable()) {
        slot->thread.join();
      }
    }
    for (auto& wk : workers) {
      close(wk->epfd);
      close(wk->wake_fd);
    }
  }
};

NetServer::NetServer(const ServerOptions& options) : impl_(new Impl) {
  ServerOptions opt = options;
  if (opt.workers < 1) {
    throw std::invalid_argument("NetServer: workers must be >= 1");
  }
  if (opt.service.threads != 0) {
    throw std::invalid_argument("NetServer: service.threads must be 0 (appliers ingest)");
  }
  if (opt.rings == 0) {
    opt.rings = opt.workers;
  }
  if (opt.rings < 1 || opt.ring_capacity < 1) {
    throw std::invalid_argument("NetServer: rings and ring_capacity must be >= 1");
  }
  if (opt.watchdog_timeout_ms > 0 && opt.watchdog_poll_ms < 1) {
    throw std::invalid_argument("NetServer: watchdog_poll_ms must be >= 1");
  }
  impl_->opt = opt;
  impl_->self = this;
  service_ = std::make_unique<hd::DetectorService>(opt.service);

  for (int32_t w = 0; w < opt.workers; ++w) {
    auto wk = std::make_unique<WorkerState>();
    wk->epfd = epoll_create1(EPOLL_CLOEXEC);
    wk->wake_fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wk->epfd < 0 || wk->wake_fd < 0) {
      throw std::runtime_error("NetServer: epoll/eventfd creation failed");
    }
    epoll_event ev{};
    ev.data.fd = wk->wake_fd;
    ev.events = EPOLLIN;
    epoll_ctl(wk->epfd, EPOLL_CTL_ADD, wk->wake_fd, &ev);
    impl_->workers.push_back(std::move(wk));
  }
  for (int32_t r = 0; r < opt.rings; ++r) {
    auto slot = std::make_unique<RingSlot>();
    slot->ring =
        std::make_unique<simkit::MpmcRing<Apply>>(static_cast<size_t>(opt.ring_capacity));
    impl_->rings.push_back(std::move(slot));
  }

  if (opt.listen) {
    impl_->listen_fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
    if (impl_->listen_fd < 0) {
      throw std::runtime_error("NetServer: socket() failed");
    }
    int one = 1;
    setsockopt(impl_->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opt.port);
    if (bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(impl_->listen_fd, 1024) != 0) {
      close(impl_->listen_fd);
      throw std::runtime_error("NetServer: bind/listen failed: " +
                               std::string(std::strerror(errno)));
    }
    socklen_t len = sizeof(addr);
    getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    impl_->accept_stop_fd = eventfd(0, EFD_CLOEXEC);
  }

  for (size_t w = 0; w < impl_->workers.size(); ++w) {
    impl_->workers[w]->thread = std::thread([this, w] { impl_->WorkerLoop(w); });
  }
  for (size_t r = 0; r < impl_->rings.size(); ++r) {
    impl_->rings[r]->thread = std::thread([this, r] { impl_->ApplierLoop(r); });
  }
  if (opt.listen) {
    impl_->acceptor = std::thread([this] { impl_->AcceptorLoop(); });
  }
  if (opt.watchdog_timeout_ms > 0) {
    impl_->watchdog = std::thread([this] { impl_->WatchdogLoop(); });
  }
}

NetServer::~NetServer() { Stop(); }

void NetServer::AdoptConnection(int fd) {
  live_connections_.fetch_add(1, std::memory_order_relaxed);
  size_t w = impl_->next_worker.fetch_add(1) % impl_->workers.size();
  {
    std::lock_guard<std::mutex> lock(impl_->workers[w]->inbox_mu);
    impl_->workers[w]->inbox.push_back(fd);
  }
  SignalEventFd(impl_->workers[w]->wake_fd);
}

void NetServer::BeginDrain() {
  bool was = impl_->draining.exchange(true);
  if (!was && impl_->acceptor.joinable()) {
    SignalEventFd(impl_->accept_stop_fd);
    impl_->acceptor.join();
    close(impl_->listen_fd);
    close(impl_->accept_stop_fd);
    impl_->listen_fd = -1;
  }
  for (auto& wk : impl_->workers) {
    SignalEventFd(wk->wake_fd);
  }
}

bool NetServer::WaitIdle(int64_t timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (live_connections_.load() > 0 || impl_->inflight.load() > 0) {
    if (std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

void NetServer::Stop() {
  if (impl_->stopped) {
    return;
  }
  BeginDrain();
  WaitIdle(10000);
  impl_->FinishStop();
}

std::vector<uint64_t> NetServer::Stop(int64_t drain_timeout_ms) {
  if (impl_->stopped) {
    return {};
  }
  BeginDrain();
  if (!WaitIdle(drain_timeout_ms)) {
    // The drain did not quiesce in time (classically: an applier wedged on one record —
    // exactly what the self-watchdog flags). Joining now could block forever, so report
    // what is still held instead: these sessions' complete streams live in the
    // coordinator's tap, and HDSL replay on another worker recovers every one of them.
    // Everything stays running; a later Stop()/destructor completes shutdown once the
    // wedge clears.
    std::vector<uint64_t> undrained;
    for (telemetry::SessionId id : service_->LiveSessionIds()) {
      undrained.push_back(id.value);
    }
    return undrained;
  }
  impl_->FinishStop();
  return {};
}

bool NetServer::applier_stuck() const {
  return impl_->applier_stuck.load(std::memory_order_relaxed);
}

bool NetServer::lease_failed() const {
  return impl_->lease_failed.load(std::memory_order_relaxed);
}

uint64_t NetServer::lease_epoch() const {
  return impl_->lease_epoch.load(std::memory_order_relaxed);
}

std::vector<NetSessionOutcome> NetServer::TakeResults() {
  std::lock_guard<std::mutex> lock(impl_->results_mu);
  std::vector<NetSessionOutcome> out;
  out.swap(impl_->results);
  return out;
}

}  // namespace netd
