#include "src/netd/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace netd {

NetClient::~NetClient() { Close(); }

NetClient::NetClient(NetClient&& other) noexcept
    : fd_(other.fd_), error_(std::move(other.error_)), splitter_(std::move(other.splitter_)) {
  other.fd_ = -1;
}

NetClient& NetClient::operator=(NetClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    error_ = std::move(other.error_);
    splitter_ = std::move(other.splitter_);
    other.fd_ = -1;
  }
  return *this;
}

bool NetClient::Connect(uint16_t port) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    error_ = "socket: " + std::string(std::strerror(errno));
    return false;
  }
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    error_ = "connect: " + std::string(std::strerror(errno));
    Close();
    return false;
  }
  return true;
}

void NetClient::Adopt(int fd) {
  Close();
  fd_ = fd;
}

bool NetClient::WriteAll(const char* data, size_t size, size_t chunk) {
  size_t off = 0;
  while (off < size) {
    size_t want = size - off;
    if (chunk > 0 && want > chunk) {
      want = chunk;
    }
    // MSG_NOSIGNAL: the server closing first (sticky reject, admission) must read as an
    // EPIPE error, not a SIGPIPE to the whole process.
    ssize_t n = send(fd_, data + off, want, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      error_ = "write: " + std::string(std::strerror(errno));
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool NetClient::SendHello(uint32_t version, HelloRole role) {
  std::string frame;
  AppendFrame(&frame, BuildHello(version, role));
  return WriteAll(frame.data(), frame.size(), 0);
}

bool NetClient::SendFrame(const std::string& payload, size_t chunk) {
  std::string frame;
  AppendFrame(&frame, payload);
  return WriteAll(frame.data(), frame.size(), chunk);
}

bool NetClient::SendTornFrame(const std::string& payload, size_t keep_bytes) {
  std::string frame;
  AppendFrame(&frame, payload);
  size_t prefix = frame.size() - payload.size();
  size_t keep = prefix + (keep_bytes < payload.size() ? keep_bytes : payload.size());
  if (!WriteAll(frame.data(), keep, 0)) {
    return false;
  }
  Close();
  return true;
}

bool NetClient::SendRaw(const std::string& bytes, size_t chunk) {
  return WriteAll(bytes.data(), bytes.size(), chunk);
}

bool NetClient::FillBuffer(bool blocking) {
  char buf[16 * 1024];
  ssize_t n = recv(fd_, buf, sizeof(buf), blocking ? 0 : MSG_DONTWAIT);
  if (n > 0) {
    splitter_.Feed(buf, static_cast<size_t>(n));
    return true;
  }
  if (n == 0) {
    error_ = "connection closed";
    return false;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK) {
    return !blocking ? false : FillBuffer(true);
  }
  error_ = "recv: " + std::string(std::strerror(errno));
  return false;
}

bool NetClient::ReadReply(Reply* reply) {
  std::string payload;
  while (!splitter_.Next(&payload)) {
    if (!splitter_.ok()) {
      error_ = "reply stream: " + splitter_.error();
      return false;
    }
    if (fd_ < 0 || !FillBuffer(true)) {
      return false;
    }
  }
  return ParseReply(payload, reply, &error_);
}

bool NetClient::DrainReplies(std::vector<Reply>* replies) {
  if (fd_ >= 0) {
    while (true) {
      char buf[16 * 1024];
      ssize_t n = recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
      if (n <= 0) {
        break;
      }
      splitter_.Feed(buf, static_cast<size_t>(n));
    }
  }
  std::string payload;
  while (splitter_.Next(&payload)) {
    Reply reply;
    if (!ParseReply(payload, &reply, &error_)) {
      return false;
    }
    replies->push_back(reply);
  }
  return splitter_.ok();
}

void NetClient::ShutdownWrite() {
  if (fd_ >= 0) {
    shutdown(fd_, SHUT_WR);
  }
}

void NetClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

}  // namespace netd
