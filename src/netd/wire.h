// The hangdoctord wire protocol: length-prefixed HDSL framing over a byte stream.
//
// Every frame, both directions, is `varint length` followed by exactly `length` payload
// bytes. A zero length is invalid, and a length above the negotiated cap is rejected before
// any payload is buffered — a 4-terabyte length varint must not allocate 4 terabytes.
//
// Client → server:
//   frame 0        HELLO: the HDSL magic "HDSL" + varint wire version. The daemon accepts
//                  versions 3 and 4 (the v3 container grammar is identical; 4 announces the
//                  async-capable v4 record vocabulary) and echoes the version in kHelloOk.
//   frames 1..N    each payload is exactly one HDSL v3 mux-container frame (tag byte +
//                  fields, src/hosts/mux_log.h grammar): kOpenSession / kRecord /
//                  kCloseSession / kEpochPublish, and finally kEnd — the BYE. Invariant:
//                  "HDSL" + varint version + the concatenated payloads of frames 1..N is a
//                  byte-valid v3 container, which is what makes wire ingest replayable by
//                  the same grammar the on-disk container uses.
//
// Server → client: one reply frame per event, payload = tag byte + fields:
//   kHelloOk       varint version — HELLO accepted.
//   kBusy          varint session_id (0 = the connection itself was refused), varint
//                  live_arena_bytes, varint budget_bytes — admission control rejected the
//                  open; the session does not exist, its later records are dropped.
//   kSessionClosed varint session_id, byte stream_ok, varint report_entries, string
//                  stream_error — the session's close was applied and its result harvested.
//   kError         string message — sticky protocol error; the daemon stops reading,
//                  discards the connection's live sessions as aborted, flushes, and closes.
//   kBye           varint sessions_closed — every apply for this connection has landed
//                  (sent in response to the container kEnd frame, or at drain).
#ifndef SRC_NETD_WIRE_H_
#define SRC_NETD_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace netd {

inline constexpr uint32_t kWireVersionMin = 3;
inline constexpr uint32_t kWireVersionMax = 4;
inline constexpr size_t kDefaultMaxFrameBytes = 8u << 20;

enum class ReplyTag : uint8_t {
  kHelloOk = 1,
  kBusy = 2,
  kSessionClosed = 3,
  kError = 4,
  kBye = 5,
};

// Low-level encoders, shared by both ends (LEB128, length-prefixed strings — the HDSL
// encoding, so a wire frame is bytes the container grammar already speaks).
void PutVarint(std::string* out, uint64_t value);
bool GetVarint(const std::string& data, size_t* pos, uint64_t* value);
void PutString(std::string* out, const std::string& value);
bool GetString(const std::string& data, size_t* pos, std::string* value);

// Appends `varint payload.size()` + payload to `out`.
void AppendFrame(std::string* out, const std::string& payload);

// HELLO payload ("HDSL" + varint version).
std::string BuildHello(uint32_t version);
bool ParseHello(const std::string& payload, uint32_t* version, std::string* error);

// Server reply payloads.
std::string BuildHelloOk(uint32_t version);
std::string BuildBusy(uint64_t session_id, uint64_t live_bytes, uint64_t budget_bytes);
std::string BuildSessionClosed(uint64_t session_id, bool stream_ok, uint64_t report_entries,
                               const std::string& stream_error);
std::string BuildError(const std::string& message);
std::string BuildBye(uint64_t sessions_closed);

// One decoded server reply (client side).
struct Reply {
  ReplyTag tag = ReplyTag::kError;
  uint64_t session_id = 0;      // kBusy, kSessionClosed
  uint32_t version = 0;         // kHelloOk
  uint64_t live_bytes = 0;      // kBusy
  uint64_t budget_bytes = 0;    // kBusy
  bool stream_ok = true;        // kSessionClosed
  uint64_t report_entries = 0;  // kSessionClosed
  uint64_t sessions_closed = 0; // kBye
  std::string message;          // kError / kSessionClosed.stream_error
};
bool ParseReply(const std::string& payload, Reply* reply, std::string* error);

// Incremental frame reassembly: feed arbitrary byte chunks, pop complete payloads. The
// error state is sticky — after an oversized or malformed length, every further Feed/Next
// fails, which is the per-connection "sticky reject" the protocol battery pins.
class FrameSplitter {
 public:
  explicit FrameSplitter(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  // Appends raw bytes from the stream. Returns false once the splitter is in error.
  bool Feed(const char* data, size_t size);

  // Pops the next complete frame payload into `payload`. Returns false when no complete
  // frame is buffered (or the splitter is in error — check ok() to distinguish).
  bool Next(std::string* payload);

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  // Bytes buffered but not yet returned (bounded by max_frame_bytes + the length prefix).
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  bool Fail(const std::string& message);

  size_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already returned
  bool ok_ = true;
  std::string error_;
};

}  // namespace netd

#endif  // SRC_NETD_WIRE_H_
