// The hangdoctord wire protocol: length-prefixed HDSL framing over a byte stream.
//
// Every frame, both directions, is `varint length` followed by exactly `length` payload
// bytes. A zero length is invalid, and a length above the negotiated cap is rejected before
// any payload is buffered — a 4-terabyte length varint must not allocate 4 terabytes.
//
// Client → server:
//   frame 0        HELLO: the HDSL magic "HDSL" + varint wire version. The daemon accepts
//                  versions 3 and 4 (the v3 container grammar is identical; 4 announces the
//                  async-capable v4 record vocabulary) and echoes the version in kHelloOk.
//                  An optional trailing varint names the connection role: 0 (or absent) is a
//                  plain ingest client; 1 declares a fleetd coordinator link ("worker role"),
//                  which unlocks the control frames and per-close kSessionResult replies
//                  below. Servers that do not allow the worker role reject role != 0 at
//                  HELLO time (kError), so a stray coordinator cannot half-speak the
//                  protocol against a plain daemon.
//   frames 1..N    each payload is exactly one HDSL v3 mux-container frame (tag byte +
//                  fields, src/hosts/mux_log.h grammar): kOpenSession / kRecord /
//                  kCloseSession / kEpochPublish, and finally kEnd — the BYE. Invariant:
//                  "HDSL" + varint version + the concatenated payloads of frames 1..N is a
//                  byte-valid v3 container, which is what makes wire ingest replayable by
//                  the same grammar the on-disk container uses.
//
//   Worker-role connections may interleave control frames with container frames. A control
//   frame's first payload byte is >= kCtrlBase (0x40) — disjoint from every mux-container
//   tag, so the dispatch is a one-byte peek:
//   kCtrlHeartbeat varint epoch — coordinator liveness probe carrying its current fencing
//                  epoch. Answered with kHeartbeatAck (health) or kStaleEpoch (the frame's
//                  epoch is older than one this worker has already seen — a fenced,
//                  superseded coordinator).
//   kCtrlHandoff   varint epoch, varint count, count x varint session_id — migrate-away
//                  order: the worker quietly discards each named live session (no outcome is
//                  recorded; the coordinator replays the session's HDSL prefix on its new
//                  owner). The discards route through the session rings like records, so a
//                  handoff lands strictly after every record routed before it. Answered with
//                  kHandoffAck once every named session is gone, or kStaleEpoch.
//
// Server → client: one reply frame per event, payload = tag byte + fields:
//   kHelloOk       varint version — HELLO accepted.
//   kBusy          varint session_id (0 = the connection itself was refused), varint
//                  live_arena_bytes, varint budget_bytes — admission control rejected the
//                  open; the session does not exist, its later records are dropped.
//   kSessionClosed varint session_id, byte stream_ok, varint report_entries, string
//                  stream_error — the session's close was applied and its result harvested.
//   kError         string message — sticky protocol error; the daemon stops reading,
//                  discards the connection's live sessions as aborted, flushes, and closes.
//   kBye           varint sessions_closed — every apply for this connection has landed
//                  (sent in response to the container kEnd frame, or at drain).
//
// Server → worker-role client only:
//   kHeartbeatAck  varint epoch, varint live_sessions, varint records_applied, byte
//                  applier_stuck, byte lease_failed — structured health. applier_stuck is
//                  the self-watchdog verdict (an applier wedged > timeout on one record);
//                  lease_failed is sticky and tells the coordinator to migrate everything
//                  this worker holds.
//   kStaleEpoch    varint lease_epoch — the control frame carried an epoch older than the
//                  newest this worker has seen; the sender is fenced and must stand down.
//   kHandoffAck    varint epoch, varint discarded — every session named by the handoff has
//                  been discarded (count actually found live and dropped).
//   kSessionResult varint session_id, string result — the full serialized SessionResult
//                  (src/netd/result_codec.h) for a cleanly closed session, emitted alongside
//                  kSessionClosed so the coordinator can fold worker results into the fleet
//                  report bit-identically to the in-process oracle.
#ifndef SRC_NETD_WIRE_H_
#define SRC_NETD_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace netd {

inline constexpr uint32_t kWireVersionMin = 3;
inline constexpr uint32_t kWireVersionMax = 4;
inline constexpr size_t kDefaultMaxFrameBytes = 8u << 20;

enum class ReplyTag : uint8_t {
  kHelloOk = 1,
  kBusy = 2,
  kSessionClosed = 3,
  kError = 4,
  kBye = 5,
  kHeartbeatAck = 6,
  kStaleEpoch = 7,
  kHandoffAck = 8,
  kSessionResult = 9,
};

// HELLO connection roles (trailing varint; absent == kClient).
enum class HelloRole : uint8_t {
  kClient = 0,
  kWorker = 1,  // a fleetd coordinator link into a worker daemon
};

// Control-frame lead bytes. Disjoint from the mux-container tag space (hosts/mux_log.h tags
// stay small), so a worker-role server can dispatch on payload[0] without a decoder.
inline constexpr uint8_t kCtrlBase = 0x40;
inline constexpr uint8_t kCtrlHeartbeat = 0x40;
inline constexpr uint8_t kCtrlHandoff = 0x41;

// Low-level encoders, shared by both ends (LEB128, length-prefixed strings — the HDSL
// encoding, so a wire frame is bytes the container grammar already speaks).
void PutVarint(std::string* out, uint64_t value);
bool GetVarint(const std::string& data, size_t* pos, uint64_t* value);
void PutString(std::string* out, const std::string& value);
bool GetString(const std::string& data, size_t* pos, std::string* value);

// Appends `varint payload.size()` + payload to `out`.
void AppendFrame(std::string* out, const std::string& payload);

// HELLO payload ("HDSL" + varint version [+ varint role]). A kClient role is encoded as the
// historical two-field payload, so a new client speaking to an old daemon is byte-identical
// to PR 9's HELLO.
std::string BuildHello(uint32_t version, HelloRole role = HelloRole::kClient);
bool ParseHello(const std::string& payload, uint32_t* version, HelloRole* role,
                std::string* error);

// Control frame payloads (worker-role connections).
std::string BuildHeartbeat(uint64_t epoch);
bool ParseHeartbeat(const std::string& payload, uint64_t* epoch, std::string* error);
std::string BuildHandoff(uint64_t epoch, const std::vector<uint64_t>& sessions);
bool ParseHandoff(const std::string& payload, uint64_t* epoch,
                  std::vector<uint64_t>* sessions, std::string* error);

// Server reply payloads.
std::string BuildHelloOk(uint32_t version);
std::string BuildBusy(uint64_t session_id, uint64_t live_bytes, uint64_t budget_bytes);
std::string BuildSessionClosed(uint64_t session_id, bool stream_ok, uint64_t report_entries,
                               const std::string& stream_error);
std::string BuildError(const std::string& message);
std::string BuildBye(uint64_t sessions_closed);

// Worker-role reply payloads.
std::string BuildHeartbeatAck(uint64_t epoch, uint64_t live_sessions,
                              uint64_t records_applied, bool applier_stuck,
                              bool lease_failed);
std::string BuildStaleEpoch(uint64_t lease_epoch);
std::string BuildHandoffAck(uint64_t epoch, uint64_t discarded);
std::string BuildSessionResult(uint64_t session_id, const std::string& result_bytes);

// One decoded server reply (client side).
struct Reply {
  ReplyTag tag = ReplyTag::kError;
  uint64_t session_id = 0;      // kBusy, kSessionClosed, kSessionResult
  uint32_t version = 0;         // kHelloOk
  uint64_t live_bytes = 0;      // kBusy
  uint64_t budget_bytes = 0;    // kBusy
  bool stream_ok = true;        // kSessionClosed
  uint64_t report_entries = 0;  // kSessionClosed
  uint64_t sessions_closed = 0; // kBye
  uint64_t epoch = 0;           // kHeartbeatAck, kStaleEpoch, kHandoffAck
  uint64_t live_sessions = 0;   // kHeartbeatAck
  uint64_t records_applied = 0; // kHeartbeatAck
  bool applier_stuck = false;   // kHeartbeatAck
  bool lease_failed = false;    // kHeartbeatAck
  uint64_t discarded = 0;       // kHandoffAck
  std::string result;           // kSessionResult (serialized SessionResult bytes)
  std::string message;          // kError / kSessionClosed.stream_error
};
bool ParseReply(const std::string& payload, Reply* reply, std::string* error);

// Incremental frame reassembly: feed arbitrary byte chunks, pop complete payloads. The
// error state is sticky — after an oversized or malformed length, every further Feed/Next
// fails, which is the per-connection "sticky reject" the protocol battery pins.
class FrameSplitter {
 public:
  explicit FrameSplitter(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  // Appends raw bytes from the stream. Returns false once the splitter is in error.
  bool Feed(const char* data, size_t size);

  // Pops the next complete frame payload into `payload`. Returns false when no complete
  // frame is buffered (or the splitter is in error — check ok() to distinguish).
  bool Next(std::string* payload);

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  // Bytes buffered but not yet returned (bounded by max_frame_bytes + the length prefix).
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  bool Fail(const std::string& message);

  size_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already returned
  bool ok_ = true;
  std::string error_;
};

}  // namespace netd

#endif  // SRC_NETD_WIRE_H_
