// Background system load: a handful of threads (system_server, media, GC, other apps'
// services) alternating CPU bursts and sleeps. On a real phone these are what preempt a
// CPU-hogging main thread and give compute-heavy soft hang bugs their involuntary
// context-switch signature; without them a hog would simply own a core forever.
#ifndef SRC_KERNELSIM_BACKGROUND_LOAD_H_
#define SRC_KERNELSIM_BACKGROUND_LOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "src/kernelsim/kernel.h"
#include "src/kernelsim/segment.h"
#include "src/simkit/rng.h"

namespace kernelsim {

struct BackgroundLoadSpec {
  int32_t num_threads = 4;
  // Mean CPU burst and mean sleep between bursts.
  simkit::SimDuration mean_burst = simkit::Milliseconds(3);
  simkit::SimDuration mean_sleep = simkit::Milliseconds(8);
  double syscalls_per_ms = 1.0;
};

class BackgroundLoad {
 public:
  BackgroundLoad(Kernel* kernel, BackgroundLoadSpec spec, simkit::Rng rng);
  ~BackgroundLoad();
  BackgroundLoad(const BackgroundLoad&) = delete;
  BackgroundLoad& operator=(const BackgroundLoad&) = delete;

  const std::vector<ThreadId>& thread_ids() const { return tids_; }

 private:
  class LoadSource;

  std::vector<std::unique_ptr<LoadSource>> sources_;
  std::vector<ThreadId> tids_;
};

}  // namespace kernelsim

#endif  // SRC_KERNELSIM_BACKGROUND_LOAD_H_
