// Thread work model. A simulated thread executes a stream of segments pulled on demand from
// its WorkSource:
//
//  - CpuSegment:   compute for `duration` ns with a given micro-architectural profile and
//                  memory behaviour (fresh allocations fault on first touch; re-touches of an
//                  existing working set mostly hit). `syscalls_per_ms` models futex/alloc/binder
//                  micro-yields, each of which shows up as a voluntary context switch.
//  - IoSegment:    issue a blocking request to a device; the thread sleeps until completion.
//                  `rounds` models request/response round trips (each is a block + wakeup).
//  - SleepSegment: timed sleep.
//  - BlockSegment: block until Kernel::Wake() (e.g. a Looper waiting on its message queue).
//  - ExitSegment:  terminate the thread.
//
// This pull model lets the Android layer express an arbitrary interleaving of computation and
// blocking without coroutines, while the scheduler keeps full control of timing, preemption and
// counter accounting.
#ifndef SRC_KERNELSIM_SEGMENT_H_
#define SRC_KERNELSIM_SEGMENT_H_

#include <cstdint>
#include <variant>

#include "src/kernelsim/types.h"
#include "src/kernelsim/uarch.h"
#include "src/simkit/time.h"

namespace kernelsim {

struct CpuSegment {
  simkit::SimDuration duration = 0;
  MicroArchProfile uarch;
  // Bytes newly allocated and touched during this segment (every page minor-faults once).
  int64_t alloc_bytes = 0;
  // Bytes of existing working set re-touched (faults only on residency misses).
  int64_t touch_bytes = 0;
  // Voluntary micro-yields (futexes, mallocs hitting the kernel, binder calls) per ms of CPU.
  double syscalls_per_ms = 0.5;
};

struct IoSegment {
  DeviceId device = 0;
  int64_t bytes = 0;
  // Number of request/response round trips (each adds device base latency and one block/wake).
  int32_t rounds = 1;
  // Probability that the requested data is already in the page cache (read satisfied without
  // major faults and with minimal latency).
  double cache_hit_probability = 0.0;
};

struct SleepSegment {
  simkit::SimDuration duration = 0;
};

struct BlockSegment {};

struct ExitSegment {};

using Segment = std::variant<CpuSegment, IoSegment, SleepSegment, BlockSegment, ExitSegment>;

class WorkSource {
 public:
  virtual ~WorkSource() = default;

  // Returns the next segment for the thread to execute. Called by the scheduler whenever the
  // previous segment finishes (or after a Wake() following a BlockSegment).
  virtual Segment NextSegment() = 0;
};

}  // namespace kernelsim

#endif  // SRC_KERNELSIM_SEGMENT_H_
