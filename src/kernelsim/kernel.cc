#include "src/kernelsim/kernel.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/simkit/logging.h"

namespace kernelsim {

Kernel::Kernel(simkit::Simulation* sim, KernelSpec spec, uint64_t seed)
    : sim_(sim),
      spec_(spec),
      rng_(seed, /*stream=*/0x6b65726eULL),
      memory_(spec.memory, rng_.Fork(1)) {
  cpus_.resize(static_cast<size_t>(std::max(spec_.num_cpus, 1)));
  for (size_t i = 0; i < cpus_.size(); ++i) {
    cpus_[i].id = static_cast<CpuId>(i);
  }
}

ProcessId Kernel::CreateProcess(const std::string& name) {
  auto pid = static_cast<ProcessId>(process_names_.size());
  process_names_.push_back(name);
  memory_.CreateAddressSpace(pid);
  return pid;
}

ThreadId Kernel::SpawnThread(ProcessId pid, const std::string& name, WorkSource* source) {
  auto thread = std::make_unique<Thread>();
  thread->tid = static_cast<ThreadId>(threads_.size());
  thread->pid = pid;
  thread->name = name;
  thread->source = source;
  thread->state = ThreadState::kRunnable;
  Thread& ref = *thread;
  threads_.push_back(std::move(thread));
  // Defer the first dispatch to the event loop so callers can finish wiring up state.
  sim_->ScheduleAfter(0, [this, tid = ref.tid]() {
    Thread& t = MutableThread(tid);
    if (t.state == ThreadState::kRunnable) {
      EnqueueRunnable(t);
    }
  });
  return ref.tid;
}

DeviceId Kernel::AddDevice(const IoDeviceSpec& device_spec) {
  auto id = static_cast<DeviceId>(devices_.size());
  devices_.push_back(std::make_unique<IoDevice>(sim_, id, device_spec,
                                                rng_.Fork(0x1000 + static_cast<uint64_t>(id))));
  return id;
}

void Kernel::Wake(ThreadId tid) {
  Thread& thread = MutableThread(tid);
  if (thread.state == ThreadState::kBlocked) {
    thread.state = ThreadState::kRunnable;
    EnqueueRunnable(thread);
  } else if (thread.state != ThreadState::kExited) {
    thread.wake_pending = true;
  }
}

const Thread& Kernel::GetThread(ThreadId tid) const {
  return *threads_.at(static_cast<size_t>(tid));
}

void Kernel::AddSink(KernelEventSink* sink) { sinks_.push_back(sink); }

void Kernel::RemoveSink(KernelEventSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

void Kernel::EnqueueRunnable(Thread& thread) {
  assert(thread.state == ThreadState::kRunnable);
  // Prefer the CPU the thread last ran on (warm caches), then any idle CPU.
  if (thread.last_cpu != kInvalidCpu) {
    Cpu& last = cpus_[static_cast<size_t>(thread.last_cpu)];
    if (last.running == kInvalidThread) {
      Dispatch(last, thread);
      return;
    }
  }
  for (Cpu& cpu : cpus_) {
    if (cpu.running == kInvalidThread) {
      if (thread.last_cpu != kInvalidCpu && thread.last_cpu != cpu.id) {
        ++thread.stats.cpu_migrations;
        for (KernelEventSink* sink : sinks_) {
          sink->OnCpuMigration(thread);
        }
      }
      Dispatch(cpu, thread);
      return;
    }
  }
  // All CPUs busy: queue on the shortest run queue (ties go to the last CPU, then lowest id).
  Cpu* best = &cpus_[0];
  for (Cpu& cpu : cpus_) {
    if (cpu.runqueue.size() < best->runqueue.size() ||
        (cpu.runqueue.size() == best->runqueue.size() && cpu.id == thread.last_cpu)) {
      best = &cpu;
    }
  }
  best->runqueue.push_back(thread.tid);
}

void Kernel::ScheduleCpu(Cpu& cpu) {
  if (cpu.running != kInvalidThread) {
    return;
  }
  if (cpu.runqueue.empty()) {
    // Work stealing: take the head of the longest queue elsewhere.
    Cpu* donor = nullptr;
    for (Cpu& other : cpus_) {
      if (other.id == cpu.id || other.runqueue.empty()) {
        continue;
      }
      if (donor == nullptr || other.runqueue.size() > donor->runqueue.size()) {
        donor = &other;
      }
    }
    if (donor == nullptr) {
      return;
    }
    ThreadId stolen = donor->runqueue.front();
    donor->runqueue.pop_front();
    Thread& thread = MutableThread(stolen);
    ++thread.stats.cpu_migrations;
    for (KernelEventSink* sink : sinks_) {
      sink->OnCpuMigration(thread);
    }
    Dispatch(cpu, thread);
    return;
  }
  ThreadId next = cpu.runqueue.front();
  cpu.runqueue.pop_front();
  Dispatch(cpu, MutableThread(next));
}

void Kernel::Dispatch(Cpu& cpu, Thread& thread) {
  assert(cpu.running == kInvalidThread);
  cpu.running = thread.tid;
  thread.state = ThreadState::kRunning;
  thread.last_cpu = cpu.id;
  ++cpu.slice_generation;
  if (thread.has_segment) {
    BeginSlice(cpu, thread);
  } else {
    PullAndRun(cpu, thread);
  }
}

void Kernel::BeginSlice(Cpu& cpu, Thread& thread) {
  assert(thread.has_segment);
  simkit::SimDuration run = std::min(thread.segment_remaining, spec_.timeslice);
  uint64_t generation = cpu.slice_generation;
  sim_->ScheduleAfter(run, [this, cpu_id = cpu.id, generation]() {
    OnSliceEnd(cpu_id, generation);
  });
}

void Kernel::OnSliceEnd(CpuId cpu_id, uint64_t generation) {
  Cpu& cpu = cpus_[static_cast<size_t>(cpu_id)];
  if (cpu.slice_generation != generation || cpu.running == kInvalidThread) {
    return;  // stale slice event
  }
  Thread& thread = MutableThread(cpu.running);
  simkit::SimDuration run = std::min(thread.segment_remaining, spec_.timeslice);
  ChargeRun(thread, run);
  thread.segment_remaining -= run;
  if (thread.segment_remaining > 0) {
    if (!cpu.runqueue.empty()) {
      // Slice expired with competition: involuntary switch, requeue at the back.
      SwitchOff(cpu, thread, /*voluntary=*/false);
      thread.state = ThreadState::kRunnable;
      cpu.runqueue.push_back(thread.tid);
      ScheduleCpu(cpu);
    } else {
      ++cpu.slice_generation;
      BeginSlice(cpu, thread);
    }
    return;
  }
  thread.has_segment = false;
  ++cpu.slice_generation;
  PullAndRun(cpu, thread);
}

void Kernel::PullAndRun(Cpu& cpu, Thread& thread) {
  // Pull until a CPU segment occupies this core or the thread leaves the CPU. The loop bound
  // guards against WorkSources that emit empty segments forever.
  for (int guard = 0; guard < 1024; ++guard) {
    if (thread.source == nullptr) {
      SwitchOff(cpu, thread, /*voluntary=*/true);
      thread.state = ThreadState::kExited;
      ScheduleCpu(cpu);
      return;
    }
    Segment segment = thread.source->NextSegment();
    if (auto* cpu_seg = std::get_if<CpuSegment>(&segment)) {
      if (cpu_seg->duration <= 0) {
        // Zero-length compute: apply memory effects instantly and keep pulling.
        StartCpuSegment(cpu, thread, *cpu_seg);
        thread.has_segment = false;
        continue;
      }
      StartCpuSegment(cpu, thread, *cpu_seg);
      BeginSlice(cpu, thread);
      return;
    }
    if (auto* io_seg = std::get_if<IoSegment>(&segment)) {
      StartIoSegment(cpu, thread, *io_seg);
      ScheduleCpu(cpu);
      return;
    }
    if (auto* sleep_seg = std::get_if<SleepSegment>(&segment)) {
      SwitchOff(cpu, thread, /*voluntary=*/true);
      thread.state = ThreadState::kSleeping;
      sim_->ScheduleAfter(std::max<simkit::SimDuration>(sleep_seg->duration, 0),
                          [this, tid = thread.tid]() {
                            Thread& t = MutableThread(tid);
                            if (t.state == ThreadState::kSleeping) {
                              t.state = ThreadState::kRunnable;
                              EnqueueRunnable(t);
                            }
                          });
      ScheduleCpu(cpu);
      return;
    }
    if (std::holds_alternative<BlockSegment>(segment)) {
      if (thread.wake_pending) {
        thread.wake_pending = false;
        continue;  // a wake raced ahead of the block; re-pull immediately
      }
      SwitchOff(cpu, thread, /*voluntary=*/true);
      thread.state = ThreadState::kBlocked;
      ScheduleCpu(cpu);
      return;
    }
    // ExitSegment.
    SwitchOff(cpu, thread, /*voluntary=*/true);
    thread.state = ThreadState::kExited;
    thread.source = nullptr;
    ScheduleCpu(cpu);
    return;
  }
  SIMKIT_LOG(simkit::LogLevel::kError)
      << "thread " << thread.name << " emitted 1024 empty segments; forcing exit";
  SwitchOff(cpu, thread, /*voluntary=*/true);
  thread.state = ThreadState::kExited;
  thread.source = nullptr;
  ScheduleCpu(cpu);
}

void Kernel::StartCpuSegment(Cpu& cpu, Thread& thread, const CpuSegment& segment) {
  (void)cpu;
  thread.segment = segment;
  thread.segment_remaining = std::max<simkit::SimDuration>(segment.duration, 0);
  thread.has_segment = thread.segment_remaining > 0;
  thread.stats.allocated_bytes += segment.alloc_bytes;
  int64_t faults = memory_.Alloc(thread.pid, segment.alloc_bytes, Now()) +
                   memory_.Touch(thread.pid, segment.touch_bytes, Now());
  if (thread.segment_remaining > 0) {
    thread.fault_rate_per_ns =
        static_cast<double>(faults) / static_cast<double>(thread.segment_remaining);
    thread.fault_carry = 0.0;
    thread.syscall_carry = 0.0;
  } else if (faults > 0) {
    thread.stats.minor_faults += faults;
    for (KernelEventSink* sink : sinks_) {
      sink->OnPageFault(thread, /*major=*/false, faults);
    }
  }
}

void Kernel::StartIoSegment(Cpu& cpu, Thread& thread, const IoSegment& segment) {
  SwitchOff(cpu, thread, /*voluntary=*/true);
  thread.state = ThreadState::kBlocked;
  IoRequest request;
  request.tid = thread.tid;
  request.bytes = segment.bytes;
  request.rounds = std::max<int32_t>(segment.rounds, 1);
  request.cached = rng_.Bernoulli(segment.cache_hit_probability);
  device(segment.device).Submit(request, [this, tid = thread.tid](const IoCompletion& done) {
    Thread& t = MutableThread(tid);
    if (t.state == ThreadState::kExited) {
      return;
    }
    t.stats.io_bytes += done.request.bytes;
    if (done.major_faults > 0) {
      t.stats.major_faults += done.major_faults;
      for (KernelEventSink* sink : sinks_) {
        sink->OnPageFault(t, /*major=*/true, done.major_faults);
      }
    }
    // Each additional round trip blocked and woke the thread once more; wakeups that land
    // while the last CPU is occupied migrate the thread.
    int64_t extra_switches = done.request.rounds - 1;
    if (extra_switches > 0) {
      t.stats.voluntary_switches += extra_switches;
      EmitContextSwitch(t, /*voluntary=*/true, extra_switches);
      int64_t busy = 0;
      for (const Cpu& c : cpus_) {
        if (c.running != kInvalidThread) {
          ++busy;
        }
      }
      double busy_fraction =
          0.6 * static_cast<double>(busy) / static_cast<double>(cpus_.size());
      for (int64_t i = 0; i < extra_switches; ++i) {
        if (rng_.Bernoulli(busy_fraction)) {
          ++t.stats.cpu_migrations;
          for (KernelEventSink* sink : sinks_) {
            sink->OnCpuMigration(t);
          }
        }
      }
    }
    if (t.state == ThreadState::kBlocked) {
      t.state = ThreadState::kRunnable;
      EnqueueRunnable(t);
    }
  });
}

void Kernel::ChargeRun(Thread& thread, simkit::SimDuration run) {
  if (run <= 0) {
    return;
  }
  thread.stats.cpu_time += run;
  // Prorated page faults.
  double faults = thread.fault_rate_per_ns * static_cast<double>(run) + thread.fault_carry;
  auto whole_faults = static_cast<int64_t>(faults);
  thread.fault_carry = faults - static_cast<double>(whole_faults);
  if (whole_faults > 0) {
    thread.stats.minor_faults += whole_faults;
    for (KernelEventSink* sink : sinks_) {
      sink->OnPageFault(thread, /*major=*/false, whole_faults);
    }
  }
  // Micro-syscall yields (futex/malloc/binder): voluntary context switches without leaving
  // the CPU for long enough to matter for timing.
  double yields = thread.segment.syscalls_per_ms * simkit::ToMilliseconds(run) +
                  thread.syscall_carry;
  auto whole_yields = static_cast<int64_t>(yields);
  thread.syscall_carry = yields - static_cast<double>(whole_yields);
  if (whole_yields > 0) {
    thread.stats.voluntary_switches += whole_yields;
    EmitContextSwitch(thread, /*voluntary=*/true, whole_yields);
  }
  for (KernelEventSink* sink : sinks_) {
    sink->OnCpuCharge(thread, run, thread.segment.uarch);
  }
}

void Kernel::SwitchOff(Cpu& cpu, Thread& thread, bool voluntary) {
  assert(cpu.running == thread.tid);
  cpu.running = kInvalidThread;
  ++cpu.slice_generation;
  if (voluntary) {
    ++thread.stats.voluntary_switches;
  } else {
    ++thread.stats.involuntary_switches;
  }
  EmitContextSwitch(thread, voluntary, 1);
}

void Kernel::EmitContextSwitch(const Thread& thread, bool voluntary, int64_t count) {
  total_context_switches_ += count;
  for (KernelEventSink* sink : sinks_) {
    sink->OnContextSwitch(thread, voluntary, count);
  }
}

}  // namespace kernelsim
