#include "src/kernelsim/background_load.h"

#include <utility>

namespace kernelsim {

class BackgroundLoad::LoadSource : public WorkSource {
 public:
  LoadSource(BackgroundLoadSpec spec, simkit::Rng rng) : spec_(spec), rng_(rng) {}

  Segment NextSegment() override {
    next_is_burst_ = !next_is_burst_;
    if (next_is_burst_) {
      CpuSegment segment;
      segment.duration = static_cast<simkit::SimDuration>(
          rng_.Exponential(static_cast<double>(spec_.mean_burst)));
      segment.syscalls_per_ms = spec_.syscalls_per_ms;
      // System services churn small allocations.
      segment.alloc_bytes = rng_.UniformInt(0, 16 * 1024);
      return segment;
    }
    SleepSegment sleep;
    sleep.duration = static_cast<simkit::SimDuration>(
        rng_.Exponential(static_cast<double>(spec_.mean_sleep)));
    return sleep;
  }

 private:
  BackgroundLoadSpec spec_;
  simkit::Rng rng_;
  bool next_is_burst_ = false;
};

BackgroundLoad::BackgroundLoad(Kernel* kernel, BackgroundLoadSpec spec, simkit::Rng rng) {
  ProcessId pid = kernel->CreateProcess("system_background");
  for (int32_t i = 0; i < spec.num_threads; ++i) {
    auto source = std::make_unique<LoadSource>(spec, rng.Fork(static_cast<uint64_t>(i)));
    tids_.push_back(kernel->SpawnThread(pid, "bg-" + std::to_string(i), source.get()));
    sources_.push_back(std::move(source));
  }
}

BackgroundLoad::~BackgroundLoad() = default;

}  // namespace kernelsim
