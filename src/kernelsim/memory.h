// Demand-paging model. Each process has an address space tracking its resident set; the
// machine has a global page budget. Fresh allocations minor-fault on first touch; re-touches
// of an existing working set fault only when residency was lost (global memory pressure evicts
// least-recently-active address spaces). This gives allocation-heavy operations (bitmap decode,
// HTML parsing, JSON serialization) their characteristic page-fault signature while steady-state
// UI rendering, which reuses warm buffers, faults rarely — exactly the contrast S-Checker's
// page-fault condition exploits (Figure 4(c) of the paper).
#ifndef SRC_KERNELSIM_MEMORY_H_
#define SRC_KERNELSIM_MEMORY_H_

#include <cstdint>
#include <map>

#include "src/kernelsim/types.h"
#include "src/simkit/rng.h"
#include "src/simkit/time.h"

namespace kernelsim {

struct MemorySpec {
  // Total pages available to apps before the model starts evicting (2 GiB default).
  int64_t total_pages = 2LL * 1024 * 1024 * 1024 / kPageSize;
  // Fraction of a process's resident set dropped when it is selected for reclaim.
  double reclaim_fraction = 0.25;
};

class MemoryManager {
 public:
  MemoryManager(MemorySpec spec, simkit::Rng rng);

  void CreateAddressSpace(ProcessId pid);
  void DestroyAddressSpace(ProcessId pid);

  // Allocates and first-touches `bytes`; returns the number of minor faults taken (one per
  // fresh page, plus any pressure-induced refaults).
  int64_t Alloc(ProcessId pid, int64_t bytes, simkit::SimTime now);

  // Re-touches `bytes` of existing working set; returns minor faults from lost residency.
  int64_t Touch(ProcessId pid, int64_t bytes, simkit::SimTime now);

  int64_t ResidentPages(ProcessId pid) const;
  int64_t TotalResidentPages() const { return total_resident_; }

 private:
  struct AddressSpace {
    int64_t resident_pages = 0;
    // Fraction of the nominal working set currently resident (decays under reclaim).
    double residency = 1.0;
    simkit::SimTime last_active = 0;
  };

  void ReclaimIfNeeded(simkit::SimTime now);

  MemorySpec spec_;
  simkit::Rng rng_;
  std::map<ProcessId, AddressSpace> spaces_;
  int64_t total_resident_ = 0;
};

}  // namespace kernelsim

#endif  // SRC_KERNELSIM_MEMORY_H_
