// Thread control block and the /proc-style statistics the kernel keeps for every thread.
// These stats are what the Utilization-based baseline detectors read (the paper's UT baselines
// sample CPU time and memory traffic from /proc/PID); the perf subsystem keeps its own richer
// counters fed by KernelEventSink callbacks.
#ifndef SRC_KERNELSIM_THREAD_H_
#define SRC_KERNELSIM_THREAD_H_

#include <string>

#include "src/kernelsim/segment.h"
#include "src/kernelsim/types.h"
#include "src/simkit/time.h"

namespace kernelsim {

enum class ThreadState {
  kRunnable,
  kRunning,
  kBlocked,   // waiting on I/O or an explicit Wake()
  kSleeping,  // timed sleep
  kExited,
};

// Cheap always-on accounting, analogous to /proc/<pid>/task/<tid>/{stat,io}.
struct ThreadStats {
  simkit::SimDuration cpu_time = 0;
  int64_t voluntary_switches = 0;
  int64_t involuntary_switches = 0;
  int64_t minor_faults = 0;
  int64_t major_faults = 0;
  int64_t cpu_migrations = 0;
  int64_t io_bytes = 0;
  int64_t allocated_bytes = 0;
};

struct Thread {
  ThreadId tid = kInvalidThread;
  ProcessId pid = 0;
  std::string name;
  ThreadState state = ThreadState::kRunnable;
  WorkSource* source = nullptr;  // not owned; outlives the thread

  // Scheduling state.
  CpuId last_cpu = kInvalidCpu;
  bool has_segment = false;
  CpuSegment segment;                         // current CPU segment
  simkit::SimDuration segment_remaining = 0;  // of segment.duration
  // Page faults and micro-syscalls are prorated over the segment; the carries keep the
  // fractional remainders between slices so totals stay exact.
  double fault_rate_per_ns = 0.0;
  double fault_carry = 0.0;
  double syscall_carry = 0.0;
  // A Wake() arrived while the thread was not blocked; the next BlockSegment completes at once.
  bool wake_pending = false;

  ThreadStats stats;
};

}  // namespace kernelsim

#endif  // SRC_KERNELSIM_THREAD_H_
