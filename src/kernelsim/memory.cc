#include "src/kernelsim/memory.h"

#include <algorithm>

namespace kernelsim {

MemoryManager::MemoryManager(MemorySpec spec, simkit::Rng rng) : spec_(spec), rng_(rng) {}

void MemoryManager::CreateAddressSpace(ProcessId pid) { spaces_.try_emplace(pid); }

void MemoryManager::DestroyAddressSpace(ProcessId pid) {
  auto it = spaces_.find(pid);
  if (it != spaces_.end()) {
    total_resident_ -= it->second.resident_pages;
    spaces_.erase(it);
  }
}

int64_t MemoryManager::Alloc(ProcessId pid, int64_t bytes, simkit::SimTime now) {
  if (bytes <= 0) {
    return 0;
  }
  auto [it, unused] = spaces_.try_emplace(pid);
  AddressSpace& space = it->second;
  space.last_active = now;
  int64_t pages = (bytes + kPageSize - 1) / kPageSize;
  space.resident_pages += pages;
  total_resident_ += pages;
  ReclaimIfNeeded(now);
  return pages;
}

int64_t MemoryManager::Touch(ProcessId pid, int64_t bytes, simkit::SimTime now) {
  if (bytes <= 0) {
    return 0;
  }
  auto [it, unused] = spaces_.try_emplace(pid);
  AddressSpace& space = it->second;
  space.last_active = now;
  int64_t pages = (bytes + kPageSize - 1) / kPageSize;
  double miss_fraction = 1.0 - space.residency;
  auto faults = static_cast<int64_t>(static_cast<double>(pages) * miss_fraction);
  if (faults > 0) {
    // The refaulted pages become resident again.
    space.residency = std::min(1.0, space.residency + miss_fraction * 0.9);
    space.resident_pages += faults;
    total_resident_ += faults;
    ReclaimIfNeeded(now);
  }
  return faults;
}

int64_t MemoryManager::ResidentPages(ProcessId pid) const {
  auto it = spaces_.find(pid);
  return it == spaces_.end() ? 0 : it->second.resident_pages;
}

void MemoryManager::ReclaimIfNeeded(simkit::SimTime now) {
  while (total_resident_ > spec_.total_pages) {
    // Evict from the least recently active address space (an LRU approximation of kswapd).
    AddressSpace* victim = nullptr;
    for (auto& [pid, space] : spaces_) {
      if (space.resident_pages == 0) {
        continue;
      }
      if (victim == nullptr || space.last_active < victim->last_active) {
        victim = &space;
      }
    }
    if (victim == nullptr) {
      return;
    }
    auto dropped = std::max<int64_t>(
        1, static_cast<int64_t>(static_cast<double>(victim->resident_pages) *
                                spec_.reclaim_fraction));
    dropped = std::min(dropped, victim->resident_pages);
    victim->resident_pages -= dropped;
    victim->residency = std::max(0.0, victim->residency - spec_.reclaim_fraction);
    // Avoid re-selecting the same victim forever if it never runs again.
    victim->last_active = now;
    total_resident_ -= dropped;
  }
}

}  // namespace kernelsim
