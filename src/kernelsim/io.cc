#include "src/kernelsim/io.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/simkit/logging.h"

namespace kernelsim {

IoDevice::IoDevice(simkit::Simulation* sim, DeviceId id, IoDeviceSpec spec, simkit::Rng rng)
    : sim_(sim), id_(id), spec_(std::move(spec)), rng_(rng) {}

simkit::SimDuration IoDevice::ComputeServiceTime(const IoRequest& request) {
  if (request.cached) {
    // Page-cache hit: copy at memory speed, roughly 1 us per 64 KiB plus a fixed syscall cost.
    return simkit::Microseconds(5) + request.bytes / (16 * 1024);
  }
  double total = 0.0;
  int32_t rounds = std::max<int32_t>(request.rounds, 1);
  for (int32_t i = 0; i < rounds; ++i) {
    double jitter = rng_.LogNormal(0.0, spec_.jitter_sigma);
    total += static_cast<double>(spec_.base_latency) * jitter;
  }
  if (spec_.bandwidth_bytes_per_sec > 0.0 && request.bytes > 0) {
    total += static_cast<double>(request.bytes) / spec_.bandwidth_bytes_per_sec * 1e9;
  }
  return static_cast<simkit::SimDuration>(total);
}

void IoDevice::Submit(IoRequest request, std::function<void(const IoCompletion&)> on_complete) {
  queue_.push_back(Pending{request, std::move(on_complete)});
  StartNext();
}

void IoDevice::StartNext() {
  while (in_flight_ < spec_.channels && !queue_.empty()) {
    Pending pending = std::move(queue_.front());
    queue_.erase(queue_.begin());
    ++in_flight_;
    simkit::SimDuration service = ComputeServiceTime(pending.request);
    IoCompletion completion;
    completion.request = pending.request;
    completion.service_time = service;
    completion.major_faults =
        pending.request.cached ? 0 : (pending.request.bytes + kPageSize - 1) / kPageSize;
    auto callback = std::move(pending.on_complete);
    sim_->ScheduleAfter(service, [this, completion, callback = std::move(callback)]() {
      --in_flight_;
      ++completed_;
      callback(completion);
      StartNext();
    });
  }
}

}  // namespace kernelsim
