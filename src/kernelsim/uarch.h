// Micro-architectural cost profile of a code region. The kernel charges CPU time in slices;
// the perf subsystem converts each charged slice into hardware event counts (instructions,
// cache references/misses, branches, ...) using the profile of whatever code the thread is
// executing. Profiles are per-API in the app layer: e.g. an HTML parser has a high allocation
// rate and poor cache locality, UI inflation is branchy, a video decoder is load/store heavy.
#ifndef SRC_KERNELSIM_UARCH_H_
#define SRC_KERNELSIM_UARCH_H_

namespace kernelsim {

struct MicroArchProfile {
  // Retired instructions per nanosecond of CPU time (IPC * frequency). ~2.0 on a big core.
  double instructions_per_ns = 2.0;
  // Last-level cache references per 1000 instructions.
  double cache_refs_per_kinstr = 30.0;
  // Fraction of cache references that miss.
  double cache_miss_ratio = 0.05;
  // L1 data cache loads / stores per 1000 instructions.
  double l1d_loads_per_kinstr = 300.0;
  double l1d_stores_per_kinstr = 120.0;
  // Fraction of L1D accesses that refill (miss into L2).
  double l1d_refill_ratio = 0.02;
  // L1 instruction cache refills per 1000 instructions (code footprint).
  double l1i_refill_per_kinstr = 0.8;
  // Branches per 1000 instructions and their misprediction ratio.
  double branches_per_kinstr = 180.0;
  double branch_miss_ratio = 0.02;
  // TLB refills per 1000 instructions (working-set spread).
  double dtlb_refill_per_kinstr = 0.5;
  double itlb_refill_per_kinstr = 0.1;
  // Cycles per nanosecond with stalls folded in (clock frequency in GHz).
  double cycles_per_ns = 2.3;
  // Fraction of cycles stalled at front/back end.
  double stalled_frontend_ratio = 0.10;
  double stalled_backend_ratio = 0.20;
};

}  // namespace kernelsim

#endif  // SRC_KERNELSIM_UARCH_H_
