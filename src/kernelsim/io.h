// Blocking I/O devices. Each device has a base per-round-trip latency, a bandwidth, and
// log-normal jitter; requests queue FIFO per device channel. Devices are how blocking APIs
// (camera open, database reads, flash I/O) spend wall-clock time without CPU time — the
// behaviour that makes the main thread rack up voluntary context switches during a soft hang.
#ifndef SRC_KERNELSIM_IO_H_
#define SRC_KERNELSIM_IO_H_

#include <functional>
#include <string>
#include <vector>

#include "src/kernelsim/types.h"
#include "src/simkit/rng.h"
#include "src/simkit/simulation.h"
#include "src/simkit/time.h"

namespace kernelsim {

struct IoDeviceSpec {
  std::string name;
  // Latency of one request/response round trip.
  simkit::SimDuration base_latency = simkit::Microseconds(100);
  // Sustained bandwidth in bytes per second (0 = latency-only device, e.g. camera handshake).
  double bandwidth_bytes_per_sec = 200.0 * 1024 * 1024;
  // Sigma of the log-normal multiplier applied to the base latency (tail behaviour).
  double jitter_sigma = 0.25;
  // Number of requests the device can service concurrently.
  int32_t channels = 1;
};

struct IoRequest {
  ThreadId tid = kInvalidThread;
  int64_t bytes = 0;
  int32_t rounds = 1;
  bool cached = false;  // page-cache hit: served at memory speed, no major faults
};

struct IoCompletion {
  IoRequest request;
  simkit::SimDuration service_time = 0;
  int64_t major_faults = 0;
};

class IoDevice {
 public:
  IoDevice(simkit::Simulation* sim, DeviceId id, IoDeviceSpec spec, simkit::Rng rng);

  // Enqueues a blocking request; `on_complete` fires when the device finishes it.
  void Submit(IoRequest request, std::function<void(const IoCompletion&)> on_complete);

  const IoDeviceSpec& spec() const { return spec_; }
  DeviceId id() const { return id_; }
  int64_t completed_requests() const { return completed_; }

 private:
  struct Pending {
    IoRequest request;
    std::function<void(const IoCompletion&)> on_complete;
  };

  simkit::SimDuration ComputeServiceTime(const IoRequest& request);
  void StartNext();

  simkit::Simulation* sim_;
  DeviceId id_;
  IoDeviceSpec spec_;
  simkit::Rng rng_;
  std::vector<Pending> queue_;
  int32_t in_flight_ = 0;
  int64_t completed_ = 0;
};

}  // namespace kernelsim

#endif  // SRC_KERNELSIM_IO_H_
