// The simulated kernel: multicore scheduler, thread lifecycle, blocking I/O dispatch and
// demand paging. This is the substrate on which the Android-like runtime (src/droidsim) and
// the performance-counter subsystem (src/perfsim) are built.
//
// Scheduling model (a deliberately small CFS stand-in):
//  - per-CPU FIFO run queues with a fixed timeslice (default 4 ms);
//  - a thread runs until its current CPU segment ends or its slice expires with competitors
//    queued (involuntary context switch);
//  - waking threads prefer their last CPU, then any idle CPU (counted as a migration when it
//    differs), then the shortest queue; idle CPUs steal from the longest queue.
//
// Everything the paper's detectors observe — context switches, task clock, page faults,
// migrations — is emitted from these mechanics through KernelEventSink, never hand-assigned.
#ifndef SRC_KERNELSIM_KERNEL_H_
#define SRC_KERNELSIM_KERNEL_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/kernelsim/event_sink.h"
#include "src/kernelsim/io.h"
#include "src/kernelsim/memory.h"
#include "src/kernelsim/segment.h"
#include "src/kernelsim/thread.h"
#include "src/kernelsim/types.h"
#include "src/simkit/rng.h"
#include "src/simkit/simulation.h"

namespace kernelsim {

struct KernelSpec {
  int32_t num_cpus = 4;
  simkit::SimDuration timeslice = simkit::Milliseconds(4);
  MemorySpec memory;
};

class Kernel {
 public:
  Kernel(simkit::Simulation* sim, KernelSpec spec, uint64_t seed);
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  simkit::Simulation* sim() { return sim_; }
  simkit::SimTime Now() const { return sim_->Now(); }
  const KernelSpec& spec() const { return spec_; }

  ProcessId CreateProcess(const std::string& name);

  // Spawns a thread executing segments pulled from `source` (not owned, must outlive it).
  ThreadId SpawnThread(ProcessId pid, const std::string& name, WorkSource* source);

  DeviceId AddDevice(const IoDeviceSpec& device_spec);
  IoDevice& device(DeviceId id) { return *devices_.at(static_cast<size_t>(id)); }

  // Unblocks a thread waiting on a BlockSegment. Safe to call in any state; a wake delivered
  // while the thread is not blocked is remembered and consumes the next BlockSegment.
  void Wake(ThreadId tid);

  const Thread& GetThread(ThreadId tid) const;
  ThreadStats ThreadStatsSnapshot(ThreadId tid) const { return GetThread(tid).stats; }

  void AddSink(KernelEventSink* sink);
  void RemoveSink(KernelEventSink* sink);

  MemoryManager& memory() { return memory_; }

  // Total context switches observed machine-wide (for tests and sanity checks).
  int64_t total_context_switches() const { return total_context_switches_; }

 private:
  struct Cpu {
    CpuId id = kInvalidCpu;
    ThreadId running = kInvalidThread;
    std::deque<ThreadId> runqueue;
    uint64_t slice_generation = 0;
  };

  Thread& MutableThread(ThreadId tid) { return *threads_.at(static_cast<size_t>(tid)); }

  // Places a runnable thread on a CPU or queue; dispatches immediately if a CPU is idle.
  void EnqueueRunnable(Thread& thread);
  // If `cpu` is idle, picks the next thread (stealing if its own queue is empty) and runs it.
  void ScheduleCpu(Cpu& cpu);
  void Dispatch(Cpu& cpu, Thread& thread);
  void BeginSlice(Cpu& cpu, Thread& thread);
  void OnSliceEnd(CpuId cpu_id, uint64_t generation);
  // Pulls segments from the thread's WorkSource until one occupies the CPU or the thread
  // leaves the runnable state. The CPU must currently be running `thread`.
  void PullAndRun(Cpu& cpu, Thread& thread);
  // Accounts `run` ns of CPU to `thread` (task clock, prorated faults, micro-yields, sinks).
  void ChargeRun(Thread& thread, simkit::SimDuration run);
  // Removes `thread` from `cpu` and notifies sinks of the context switch.
  void SwitchOff(Cpu& cpu, Thread& thread, bool voluntary);
  void EmitContextSwitch(const Thread& thread, bool voluntary, int64_t count);
  void StartCpuSegment(Cpu& cpu, Thread& thread, const CpuSegment& segment);
  void StartIoSegment(Cpu& cpu, Thread& thread, const IoSegment& segment);

  simkit::Simulation* sim_;
  KernelSpec spec_;
  simkit::Rng rng_;
  MemoryManager memory_;
  std::vector<Cpu> cpus_;
  std::vector<std::unique_ptr<Thread>> threads_;
  std::vector<std::unique_ptr<IoDevice>> devices_;
  std::vector<std::string> process_names_;
  std::vector<KernelEventSink*> sinks_;
  int64_t total_context_switches_ = 0;
};

}  // namespace kernelsim

#endif  // SRC_KERNELSIM_KERNEL_H_
