// Hook interface through which the kernel publishes scheduling and memory events. The perf
// subsystem registers a sink to turn these into performance-event counts; tests register sinks
// to assert on kernel behaviour. The kernel never depends on perfsim — only the reverse.
#ifndef SRC_KERNELSIM_EVENT_SINK_H_
#define SRC_KERNELSIM_EVENT_SINK_H_

#include <cstdint>

#include "src/kernelsim/thread.h"
#include "src/kernelsim/uarch.h"
#include "src/simkit/time.h"

namespace kernelsim {

class KernelEventSink {
 public:
  virtual ~KernelEventSink() = default;

  // `run` nanoseconds of CPU time were charged to `thread` while executing code with `uarch`.
  virtual void OnCpuCharge(const Thread& thread, simkit::SimDuration run,
                           const MicroArchProfile& uarch) = 0;

  // `thread` was switched off a CPU `count` times (micro-syscall yields arrive batched).
  virtual void OnContextSwitch(const Thread& thread, bool voluntary, int64_t count) = 0;

  // `count` page faults were taken by `thread`.
  virtual void OnPageFault(const Thread& thread, bool major, int64_t count) = 0;

  // `thread` woke up on a different CPU than it last ran on.
  virtual void OnCpuMigration(const Thread& thread) = 0;
};

}  // namespace kernelsim

#endif  // SRC_KERNELSIM_EVENT_SINK_H_
