// Shared identifier types for the simulated kernel.
#ifndef SRC_KERNELSIM_TYPES_H_
#define SRC_KERNELSIM_TYPES_H_

#include <cstdint>

namespace kernelsim {

using ThreadId = int32_t;
using ProcessId = int32_t;
using CpuId = int32_t;
using DeviceId = int32_t;

inline constexpr ThreadId kInvalidThread = -1;
inline constexpr CpuId kInvalidCpu = -1;

inline constexpr int64_t kPageSize = 4096;

}  // namespace kernelsim

#endif  // SRC_KERNELSIM_TYPES_H_
