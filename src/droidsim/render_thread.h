// The render thread (Android >= 5.0): consumes frame jobs posted by UI operations on the main
// thread, burning CPU with a rasterizer-like profile and blocking briefly on fences between
// frames. Its activity is the other half of S-Checker's main−render difference: when the main
// thread does real UI work the render thread is busy (negative differences); when the main
// thread is stuck in a blocking operation the render thread sits idle (positive differences).
#ifndef SRC_DROIDSIM_RENDER_THREAD_H_
#define SRC_DROIDSIM_RENDER_THREAD_H_

#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/kernelsim/kernel.h"
#include "src/simkit/rng.h"

namespace droidsim {

class RenderThread : public kernelsim::WorkSource {
 public:
  // Fired when the last outstanding frame of `execution_id` completes.
  using IdleCallback = std::function<void(int64_t execution_id)>;

  RenderThread(kernelsim::Kernel* kernel, kernelsim::ProcessId pid, simkit::Rng rng);

  kernelsim::ThreadId tid() const { return tid_; }

  void EnqueueFrames(int64_t execution_id, int32_t count, simkit::SimDuration frame_cpu_mean);

  void SetIdleCallback(IdleCallback idle) { idle_ = std::move(idle); }

  bool Idle() const { return queue_.empty() && !in_flight_.has_value(); }
  int64_t OutstandingFrames(int64_t execution_id) const;
  int64_t rendered_frames() const { return rendered_; }

  // kernelsim::WorkSource:
  kernelsim::Segment NextSegment() override;

 private:
  struct FrameJob {
    int64_t execution_id = 0;
    simkit::SimDuration cpu = 0;
  };

  void FinalizeFrame(const FrameJob& job);

  kernelsim::Kernel* kernel_;
  kernelsim::ThreadId tid_;
  simkit::Rng rng_;
  std::deque<FrameJob> queue_;
  std::optional<FrameJob> in_flight_;
  bool gap_pending_ = false;
  std::unordered_map<int64_t, int64_t> outstanding_;
  IdleCallback idle_;
  int64_t rendered_ = 0;
};

}  // namespace droidsim

#endif  // SRC_DROIDSIM_RENDER_THREAD_H_
