// Periodic main-thread stack sampler, the data source of the paper's Trace Collector. While a
// collection is active it copies the Looper's live stack (interned frame ids) every
// `interval` (20 ms by default, which matches the ~60 traces the paper collects over a 1.3 s
// hang in Figure 6(b)).
//
// The sample buffer is reused between collections: StartCollection rewinds a cursor instead
// of clearing, and each sample slot keeps its frame vector's capacity, so a steady-state
// TakeSample is two integer stores plus a memcpy of u32 ids — no heap allocation.
// StopCollection therefore returns a view; it is valid until the next StartCollection, and
// callers that keep traces across collections must copy.
#ifndef SRC_DROIDSIM_STACK_SAMPLER_H_
#define SRC_DROIDSIM_STACK_SAMPLER_H_

#include <span>
#include <vector>

#include "src/droidsim/looper.h"
#include "src/telemetry/stack.h"
#include "src/simkit/simulation.h"

namespace droidsim {

class StackSampler {
 public:
  // `thread` tags every sample with the telemetry thread id of the sampled looper
  // (causal.h); the default 0 keeps main-thread samplers unchanged.
  StackSampler(simkit::Simulation* sim, const Looper* looper,
               simkit::SimDuration interval = simkit::Milliseconds(20),
               telemetry::ThreadId thread = telemetry::kMainThread);
  ~StackSampler();
  StackSampler(const StackSampler&) = delete;
  StackSampler& operator=(const StackSampler&) = delete;

  // Begins a collection; the first sample is taken one interval from now.
  void StartCollection();

  // Ends the collection and returns everything sampled since StartCollection(), as a view
  // into the reused buffer — invalidated by the next StartCollection().
  std::span<const telemetry::StackTrace> StopCollection();

  bool active() const { return active_; }
  // Lifetime samples taken, for overhead accounting.
  int64_t total_samples() const { return total_samples_; }

 private:
  void ScheduleNext();
  void TakeSample();

  simkit::Simulation* sim_;
  const Looper* looper_;
  simkit::SimDuration interval_;
  telemetry::ThreadId thread_ = telemetry::kMainThread;
  bool active_ = false;
  simkit::EventId pending_event_ = 0;
  std::vector<telemetry::StackTrace> samples_;  // pooled slots; only the first `used_` are live
  size_t used_ = 0;
  int64_t total_samples_ = 0;
};

}  // namespace droidsim

#endif  // SRC_DROIDSIM_STACK_SAMPLER_H_
