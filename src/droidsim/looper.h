// Android-style Looper: a kernel thread draining a message queue. Each message is either an
// input event (a tree of operations) or a worker subtree posted from another thread. The
// dispatch begin/end notifications mirror Android's Looper.setMessageLogging(), which is
// exactly the hook the paper's Response Time Monitor uses (Section 3.5): response time is the
// interval between the two invocations.
#ifndef SRC_DROIDSIM_LOOPER_H_
#define SRC_DROIDSIM_LOOPER_H_

#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/droidsim/op_executor.h"
#include "src/droidsim/operation.h"
#include "src/kernelsim/kernel.h"

namespace droidsim {

struct Message {
  int64_t id = 0;
  // Exactly one payload: an input event of an action, a worker subtree, or an async task
  // (a kSubmit node whose children run under its frame, completing causal edge async_edge).
  const InputEventSpec* event = nullptr;
  const OpNode* subtree = nullptr;
  const OpNode* async_task = nullptr;
  uint64_t async_edge = 0;
  int32_t action_uid = -1;
  int32_t event_index = 0;
  int64_t execution_id = 0;
};

class Looper : public kernelsim::WorkSource {
 public:
  // (begin?, message). Begin fires when the message is dequeued for execution, end when its
  // execution finishes — Android's ">>>>> Dispatching" / "<<<<< Finished" pair.
  using MessageLogger = std::function<void(bool begin, const Message& message)>;
  // Fired at message end with the per-op contributions recorded during its execution.
  using DoneCallback =
      std::function<void(const Message& message, std::vector<OpContribution> contributions)>;

  Looper(kernelsim::Kernel* kernel, kernelsim::ProcessId pid, const std::string& thread_name,
         simkit::Rng rng, OpExecutorHooks* hooks, const int32_t* device_ids,
         const SymbolTable* symbols);

  kernelsim::ThreadId tid() const { return tid_; }

  void Post(Message message);

  void AddMessageLogger(MessageLogger logger) { loggers_.push_back(std::move(logger)); }
  void SetDoneCallback(DoneCallback done) { done_ = std::move(done); }

  const std::vector<telemetry::FrameId>& CurrentStack() const { return executor_.CurrentStack(); }
  std::optional<int64_t> CurrentMessageId() const;
  bool Idle() const { return !current_.has_value() && queue_.empty(); }
  size_t QueueDepth() const { return queue_.size(); }
  int64_t dispatched_messages() const { return dispatched_; }

  // kernelsim::WorkSource:
  kernelsim::Segment NextSegment() override;

 private:
  void BeginMessage(Message message);
  void FinishCurrentMessage();

  kernelsim::Kernel* kernel_;
  const SymbolTable* symbols_;
  kernelsim::ThreadId tid_;
  std::deque<Message> queue_;
  OpExecutor executor_;
  std::optional<Message> current_;
  std::vector<MessageLogger> loggers_;
  DoneCallback done_;
  int64_t next_message_id_ = 1;
  int64_t dispatched_ = 0;
};

}  // namespace droidsim

#endif  // SRC_DROIDSIM_LOOPER_H_
