#include "src/droidsim/phone.h"

namespace droidsim {

Phone::Phone(const DeviceProfile& profile, uint64_t seed)
    : profile_(profile), rng_(seed, /*stream=*/0x70686f6eULL) {
  kernel_ = std::make_unique<kernelsim::Kernel>(&sim_, profile_.kernel, rng_.Fork(1).NextU64());
  hub_ = std::make_unique<perfsim::CounterHub>(kernel_.get(), rng_.Fork(2).NextU64());
  for (size_t i = 0; i < device_ids_.size(); ++i) {
    device_ids_[i] = kernel_->AddDevice(profile_.devices[i]);
  }
  background_ = std::make_unique<kernelsim::BackgroundLoad>(kernel_.get(), profile_.background,
                                                            rng_.Fork(3));
}

App* Phone::InstallApp(const AppSpec* spec) {
  apps_.push_back(std::make_unique<App>(kernel_.get(), spec, device_ids_.data(),
                                        rng_.Fork(0x100 + apps_.size())));
  return apps_.back().get();
}

}  // namespace droidsim
