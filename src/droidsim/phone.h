// Phone: one simulated handset. Wires together the simulation clock, the kernel, the
// peripherals, the perf counter hub, the background system load, and any number of installed
// apps. This is the five-line setup examples and experiments build on.
#ifndef SRC_DROIDSIM_PHONE_H_
#define SRC_DROIDSIM_PHONE_H_

#include <array>
#include <memory>
#include <vector>

#include "src/droidsim/app.h"
#include "src/droidsim/device.h"
#include "src/kernelsim/background_load.h"
#include "src/kernelsim/kernel.h"
#include "src/perfsim/counter_hub.h"
#include "src/simkit/simulation.h"

namespace droidsim {

class Phone {
 public:
  explicit Phone(const DeviceProfile& profile, uint64_t seed = 42);
  Phone(const Phone&) = delete;
  Phone& operator=(const Phone&) = delete;

  // The spec must outlive the phone (the catalog owns it).
  App* InstallApp(const AppSpec* spec);

  simkit::Simulation& sim() { return sim_; }
  kernelsim::Kernel& kernel() { return *kernel_; }
  perfsim::CounterHub& counter_hub() { return *hub_; }
  const DeviceProfile& profile() const { return profile_; }
  const int32_t* device_ids() const { return device_ids_.data(); }

  simkit::SimTime Now() const { return sim_.Now(); }
  void RunFor(simkit::SimDuration duration) { sim_.RunUntil(sim_.Now() + duration); }

  // Derives a deterministic RNG stream for a phone-level consumer (user models, monitors).
  simkit::Rng ForkRng(uint64_t tag) { return rng_.Fork(tag); }

 private:
  DeviceProfile profile_;
  simkit::Rng rng_;
  simkit::Simulation sim_;
  std::unique_ptr<kernelsim::Kernel> kernel_;
  std::unique_ptr<perfsim::CounterHub> hub_;
  std::array<int32_t, static_cast<size_t>(DeviceKind::kNumDevices)> device_ids_{};
  std::unique_ptr<kernelsim::BackgroundLoad> background_;
  std::vector<std::unique_ptr<App>> apps_;
};

}  // namespace droidsim

#endif  // SRC_DROIDSIM_PHONE_H_
