// Operation call trees. Each input event of an action executes a tree of OpNodes on the main
// thread, depth-first: a node pushes its stack frame, runs its children, then its own I/O and
// CPU cost, posts any render work, and pops. The tree is how the catalog expresses the
// paper's bug shapes: a single heavy API (high occurrence factor in stack traces), a
// self-developed loop over many light APIs (only the caller has a high occurrence factor), or
// a known-blocking API nested inside a closed-source library frame.
#ifndef SRC_DROIDSIM_OPERATION_H_
#define SRC_DROIDSIM_OPERATION_H_

#include <string>
#include <vector>

#include "src/droidsim/api.h"

namespace droidsim {

struct OpNode {
  const ApiSpec* api = nullptr;  // interned in an ApiRegistry outliving the app
  // Call-site attribution shown in stack traces (file/line of the *call* in app or library
  // code). For library-internal frames this is the library source file.
  std::string file;
  int32_t line = 0;
  // The frame sits inside a closed-source third-party library: offline scanners cannot see
  // this call even if the API itself is known-blocking (the SageMath `cupboard.get` case).
  bool in_closed_library = false;
  // Probability that the node's heavy cost manifests in a given execution; when dormant the
  // cost is scaled by `dormant_scale` (e.g. camera.open is fast when the HAL is warm).
  double manifest_probability = 1.0;
  double dormant_scale = 0.05;
  // Execute this subtree on a worker thread instead (the "fixed" variant of an app: the
  // AsyncTask rewrite of Figure 1). The main thread only pays a cheap post.
  bool on_worker = false;

  std::vector<OpNode> children;
};

// Convenience builders used by the workload catalog.
inline OpNode MakeOp(const ApiSpec* api, std::string file, int32_t line) {
  OpNode node;
  node.api = api;
  node.file = std::move(file);
  node.line = line;
  return node;
}

inline OpNode MakeLibraryOp(const ApiSpec* api, std::string file, int32_t line) {
  OpNode node = MakeOp(api, std::move(file), line);
  node.in_closed_library = true;
  return node;
}

// One message posted to the main Looper. `handler` names the entry frame (onClick, onScroll,
// onResume, ...) that roots every stack trace of this event.
struct InputEventSpec {
  std::string handler = "onClick";
  std::string handler_file = "MainActivity.java";
  int32_t handler_line = 1;
  std::vector<OpNode> ops;
};

struct ActionSpec {
  std::string name;
  std::vector<InputEventSpec> events;
  // Relative selection weight in the user model.
  double weight = 1.0;
};

}  // namespace droidsim

#endif  // SRC_DROIDSIM_OPERATION_H_
