// Operation call trees. Each input event of an action executes a tree of OpNodes on the main
// thread, depth-first: a node pushes its stack frame, runs its children, then its own I/O and
// CPU cost, posts any render work, and pops. The tree is how the catalog expresses the
// paper's bug shapes: a single heavy API (high occurrence factor in stack traces), a
// self-developed loop over many light APIs (only the caller has a high occurrence factor), or
// a known-blocking API nested inside a closed-source library frame.
#ifndef SRC_DROIDSIM_OPERATION_H_
#define SRC_DROIDSIM_OPERATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/droidsim/api.h"
#include "src/simkit/simulation.h"

namespace droidsim {

// How a node relates to the app's async substrate (DESIGN.md section 3.8).
//  - kNone:   the node runs inline on the posting thread (everything before PR 8).
//  - kSubmit: the node's children are posted to one of the app's async threads; the posting
//             thread pays only a cheap submit cost while the node's own frame marks the post
//             site. The resulting causal edge is stored in `future_slot`.
//  - kWait:   a Future.get-style blocking wait: the node's frame stays on the stack while the
//             thread blocks until the edge stored in `future_slot` completes.
enum class AsyncOp : uint8_t { kNone = 0, kSubmit, kWait };

struct OpNode {
  const ApiSpec* api = nullptr;  // interned in an ApiRegistry outliving the app
  // Call-site attribution shown in stack traces (file/line of the *call* in app or library
  // code). For library-internal frames this is the library source file.
  std::string file;
  int32_t line = 0;
  // The frame sits inside a closed-source third-party library: offline scanners cannot see
  // this call even if the API itself is known-blocking (the SageMath `cupboard.get` case).
  bool in_closed_library = false;
  // Probability that the node's heavy cost manifests in a given execution; when dormant the
  // cost is scaled by `dormant_scale` (e.g. camera.open is fast when the HAL is warm).
  double manifest_probability = 1.0;
  double dormant_scale = 0.05;
  // Execute this subtree on a worker thread instead (the "fixed" variant of an app: the
  // AsyncTask rewrite of Figure 1). The main thread only pays a cheap post.
  bool on_worker = false;
  // Async substrate. `future_slot` names the future a kSubmit fulfils / a kWait resolves,
  // scoped to one action execution. `async_target` picks a HandlerThread by index, or -1 for
  // the bounded executor pool (round-robin). `post_delay` makes a kSubmit a PostDelayed.
  AsyncOp async = AsyncOp::kNone;
  int32_t future_slot = -1;
  int32_t async_target = -1;
  simkit::SimDuration post_delay = 0;

  std::vector<OpNode> children;
};

// Convenience builders used by the workload catalog.
inline OpNode MakeOp(const ApiSpec* api, std::string file, int32_t line) {
  OpNode node;
  node.api = api;
  node.file = std::move(file);
  node.line = line;
  return node;
}

inline OpNode MakeLibraryOp(const ApiSpec* api, std::string file, int32_t line) {
  OpNode node = MakeOp(api, std::move(file), line);
  node.in_closed_library = true;
  return node;
}

// Submit `task`s (the node's children) to an async thread; `api` names the post site
// (e.g. ExecutorService.submit). target -1 = executor pool; >= 0 = that HandlerThread.
inline OpNode MakeAsyncSubmit(const ApiSpec* api, std::string file, int32_t line, int32_t slot,
                              std::vector<OpNode> task, int32_t target = -1,
                              simkit::SimDuration delay = 0) {
  OpNode node = MakeOp(api, std::move(file), line);
  node.async = AsyncOp::kSubmit;
  node.future_slot = slot;
  node.async_target = target;
  node.post_delay = delay;
  node.children = std::move(task);
  return node;
}

// Block in `api`'s frame (e.g. Future.get) until slot `slot`'s submit completes.
inline OpNode MakeFutureWait(const ApiSpec* api, std::string file, int32_t line, int32_t slot) {
  OpNode node = MakeOp(api, std::move(file), line);
  node.async = AsyncOp::kWait;
  node.future_slot = slot;
  return node;
}

// One message posted to the main Looper. `handler` names the entry frame (onClick, onScroll,
// onResume, ...) that roots every stack trace of this event.
struct InputEventSpec {
  std::string handler = "onClick";
  std::string handler_file = "MainActivity.java";
  int32_t handler_line = 1;
  std::vector<OpNode> ops;
};

struct ActionSpec {
  std::string name;
  std::vector<InputEventSpec> events;
  // Relative selection weight in the user model.
  double weight = 1.0;
};

}  // namespace droidsim

#endif  // SRC_DROIDSIM_OPERATION_H_
