#include "src/droidsim/device.h"

namespace droidsim {

namespace {

kernelsim::IoDeviceSpec FlashSpec(simkit::SimDuration base, double mb_per_sec) {
  kernelsim::IoDeviceSpec spec;
  spec.name = "flash";
  spec.base_latency = base;
  spec.bandwidth_bytes_per_sec = mb_per_sec * 1024 * 1024;
  spec.jitter_sigma = 0.30;
  spec.channels = 2;
  return spec;
}

kernelsim::IoDeviceSpec DatabaseSpec(simkit::SimDuration base) {
  kernelsim::IoDeviceSpec spec;
  spec.name = "sqlite";
  spec.base_latency = base;
  spec.bandwidth_bytes_per_sec = 80.0 * 1024 * 1024;
  spec.jitter_sigma = 0.50;
  spec.channels = 1;
  return spec;
}

kernelsim::IoDeviceSpec CameraSpec(simkit::SimDuration base) {
  kernelsim::IoDeviceSpec spec;
  spec.name = "camera-hal";
  spec.base_latency = base;
  spec.bandwidth_bytes_per_sec = 0.0;
  spec.jitter_sigma = 0.22;
  spec.channels = 1;
  return spec;
}

kernelsim::IoDeviceSpec NetworkSpec() {
  kernelsim::IoDeviceSpec spec;
  spec.name = "network";
  spec.base_latency = simkit::Milliseconds(30);
  spec.bandwidth_bytes_per_sec = 2.0 * 1024 * 1024;
  spec.jitter_sigma = 0.80;
  spec.channels = 4;
  return spec;
}

kernelsim::IoDeviceSpec BluetoothSpec() {
  kernelsim::IoDeviceSpec spec;
  spec.name = "bluetooth";
  spec.base_latency = simkit::Milliseconds(40);
  spec.bandwidth_bytes_per_sec = 0.2 * 1024 * 1024;
  spec.jitter_sigma = 0.50;
  spec.channels = 1;
  return spec;
}

}  // namespace

DeviceProfile LgV10() {
  DeviceProfile profile;
  profile.model = "LG V10";
  profile.kernel.num_cpus = 4;
  profile.kernel.timeslice = simkit::Milliseconds(4);
  profile.pmu.hardware_registers = 6;
  profile.background.num_threads = 4;
  profile.has_render_thread = true;
  profile.devices[static_cast<size_t>(DeviceKind::kFlash)] =
      FlashSpec(simkit::Milliseconds(3), 35.0);
  profile.devices[static_cast<size_t>(DeviceKind::kDatabase)] =
      DatabaseSpec(simkit::Milliseconds(9));
  profile.devices[static_cast<size_t>(DeviceKind::kCamera)] =
      CameraSpec(simkit::Milliseconds(25));
  profile.devices[static_cast<size_t>(DeviceKind::kNetwork)] = NetworkSpec();
  profile.devices[static_cast<size_t>(DeviceKind::kBluetooth)] = BluetoothSpec();
  return profile;
}

DeviceProfile Nexus5() {
  DeviceProfile profile = LgV10();
  profile.model = "Nexus 5";
  profile.pmu.hardware_registers = 4;
  profile.devices[static_cast<size_t>(DeviceKind::kFlash)] =
      FlashSpec(simkit::Milliseconds(4), 25.0);
  profile.devices[static_cast<size_t>(DeviceKind::kCamera)] =
      CameraSpec(simkit::Milliseconds(32));
  return profile;
}

DeviceProfile GalaxyS3() {
  DeviceProfile profile = LgV10();
  profile.model = "Galaxy S3";
  profile.pmu.hardware_registers = 6;
  profile.has_render_thread = false;
  profile.kernel.timeslice = simkit::Milliseconds(6);
  profile.devices[static_cast<size_t>(DeviceKind::kFlash)] =
      FlashSpec(simkit::Milliseconds(6), 15.0);
  profile.devices[static_cast<size_t>(DeviceKind::kDatabase)] =
      DatabaseSpec(simkit::Milliseconds(12));
  profile.devices[static_cast<size_t>(DeviceKind::kCamera)] =
      CameraSpec(simkit::Milliseconds(45));
  return profile;
}

}  // namespace droidsim
