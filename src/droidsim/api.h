// API model. Every operation an app can execute — UI inflation, bitmap decode, database
// query, camera open, a self-developed loop — is described by an ApiSpec: its identity (class
// + method, which is what stack traces show and what the UI classifier keys on), whether the
// broader ecosystem already knows it blocks (what offline detectors key on), and a cost model
// from which the kernel realizes actual CPU/I/O/memory behaviour at each execution.
#ifndef SRC_DROIDSIM_API_H_
#define SRC_DROIDSIM_API_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/kernelsim/uarch.h"
#include "src/simkit/rng.h"
#include "src/simkit/string_hash.h"
#include "src/simkit/time.h"

namespace droidsim {

enum class ApiKind {
  kUi,        // must run on the main thread (View/Widget manipulation)
  kCompute,   // pure CPU work (parsers, serializers, self-developed loops)
  kFileIo,    // flash reads/writes
  kDatabase,  // SQLite-style queries
  kCamera,    // camera HAL round trips
  kNetwork,   // sockets (rarely on the main thread: NetworkOnMainThreadException)
  kBluetooth,
  kMedia,     // codec/prepare work
};

// The simulated phone's peripherals; Phone maps these to kernel device ids.
enum class DeviceKind : int32_t {
  kFlash = 0,
  kDatabase,
  kCamera,
  kNetwork,
  kBluetooth,
  kNumDevices,
};

struct ApiCostModel {
  // CPU burst: log-normally distributed around `cpu_mean` with multiplier sigma `cpu_sigma`.
  simkit::SimDuration cpu_mean = 0;
  double cpu_sigma = 0.2;
  kernelsim::MicroArchProfile uarch;
  // Memory behaviour of the CPU burst.
  int64_t alloc_bytes_mean = 0;
  int64_t touch_bytes = 64 * 1024;
  double syscalls_per_ms = 0.3;
  // Blocking I/O issued before the CPU burst (none when io_rounds == 0).
  DeviceKind device = DeviceKind::kFlash;
  int32_t io_rounds = 0;
  int64_t io_bytes_mean = 0;
  double io_cache_hit = 0.0;
  // Render work handed to the render thread when the op completes (UI ops only).
  int32_t frames = 0;
  simkit::SimDuration frame_cpu_mean = simkit::Milliseconds(5);
};

struct ApiSpec {
  std::string name;   // method name, e.g. "decodeFile"
  std::string clazz;  // fully qualified class, e.g. "android.graphics.BitmapFactory"
  ApiKind kind = ApiKind::kCompute;
  // Listed in the community's known-blocking-API database (what PerfChecker-style offline
  // scanners search for). APIs that block but are *not* known are the paper's main quarry.
  bool known_blocking = false;
  // The app's own function rather than a platform/library API. Provenance, not behaviour:
  // self-developed lengthy operations are reported to the developer only, never fed to the
  // blocking-API database (Section 3.4.1 case 4).
  bool self_developed = false;
  ApiCostModel cost;
  // "clazz.name", cached by ApiRegistry::Register so hot consumers (offline scans, database
  // probes) never re-concatenate. Empty on specs that were never registered.
  std::string full_name;

  std::string FullName() const { return clazz + "." + name; }
};

// True when `clazz` belongs to the UI class groups (View/Widget and friends) that Trace
// Analyzer uses to recognize UI-APIs (Section 3.4.1: "they are grouped in a few classes").
bool IsUiClass(std::string_view clazz);

// Interns ApiSpecs so OpNodes can hold stable pointers.
class ApiRegistry {
 public:
  // Registers (or replaces) a spec; returns a pointer stable for the registry's lifetime.
  const ApiSpec* Register(ApiSpec spec);
  // Heterogeneous lookup: accepts string_view / const char* without building a std::string.
  const ApiSpec* Find(std::string_view full_name) const;
  size_t size() const { return by_name_.size(); }
  // All registered specs, in registration order.
  std::vector<const ApiSpec*> AllSpecs() const;

 private:
  std::vector<std::unique_ptr<ApiSpec>> specs_;
  std::unordered_map<std::string, ApiSpec*, simkit::StringHash, std::equal_to<>> by_name_;
};

// Micro-architectural presets used by the app catalog.
kernelsim::MicroArchProfile UiUarch();        // branchy, warm caches
kernelsim::MicroArchProfile RenderUarch();    // streaming stores, good locality
kernelsim::MicroArchProfile ParserUarch();    // allocation-heavy, poor locality
kernelsim::MicroArchProfile DecoderUarch();   // load/store heavy SIMD-ish
kernelsim::MicroArchProfile DatabaseUarch();  // pointer chasing, TLB pressure
kernelsim::MicroArchProfile DefaultUarch();

}  // namespace droidsim

#endif  // SRC_DROIDSIM_API_H_
