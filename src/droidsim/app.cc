#include "src/droidsim/app.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/simkit/logging.h"

namespace droidsim {

App::App(kernelsim::Kernel* kernel, const AppSpec* spec, const int32_t* device_ids,
         simkit::Rng rng)
    : kernel_(kernel), spec_(spec) {
  // Canonical symbol walk: assigns every frame the app can produce a deterministic FrameId.
  for (const ActionSpec& action : spec_->actions) {
    symbols_.IndexAction(action);
  }
  pid_ = kernel_->CreateProcess(spec_->package);
  main_looper_ = std::make_unique<Looper>(kernel_, pid_, spec_->name + ":main", rng.Fork(1),
                                          this, device_ids, &symbols_);
  render_thread_ = std::make_unique<RenderThread>(kernel_, pid_, rng.Fork(2));
  worker_looper_ = std::make_unique<Looper>(kernel_, pid_, spec_->name + ":worker", rng.Fork(3),
                                            this, device_ids, &symbols_);
  // Async threads come after the fixed trio so apps without them keep their exact thread
  // set and RNG fork order (determinism of every pre-async golden depends on this).
  const int32_t handlers = std::max<int32_t>(spec_->handler_threads, 0);
  const int32_t pool = std::max<int32_t>(spec_->executor_threads, 0);
  for (int32_t i = 0; i < handlers + pool; ++i) {
    std::string name = i < handlers ? spec_->name + ":handler" + std::to_string(i)
                                    : spec_->name + ":exec" + std::to_string(i - handlers);
    async_loopers_.push_back(std::make_unique<Looper>(
        kernel_, pid_, name, rng.Fork(4 + static_cast<uint64_t>(i)), this, device_ids,
        &symbols_));
    async_loopers_.back()->AddMessageLogger(
        [this, index = static_cast<size_t>(i)](bool begin, const Message& message) {
          OnAsyncLog(index, begin, message);
        });
  }
  main_looper_->AddMessageLogger(
      [this](bool begin, const Message& message) { OnMainLog(begin, message); });
  main_looper_->SetDoneCallback(
      [this](const Message& message, std::vector<OpContribution> contributions) {
        OnMainDone(message, std::move(contributions));
      });
  render_thread_->SetIdleCallback([this](int64_t execution_id) { OnRenderIdle(execution_id); });
}

App::~App() = default;

void App::RemoveObserver(AppObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

int64_t App::PerformAction(int32_t uid) {
  const ActionSpec& spec = action(uid);
  int64_t execution_id = next_execution_id_++;
  ActionExecution execution;
  execution.execution_id = execution_id;
  execution.action_uid = uid;
  execution.started = kernel_->Now();
  execution.events_total = spec.events.size();
  execution.events.resize(spec.events.size());
  executions_.emplace(execution_id, std::move(execution));
  if (spec.events.empty()) {
    kernel_->sim()->ScheduleAfter(0, [this, execution_id]() {
      auto it = executions_.find(execution_id);
      if (it != executions_.end()) {
        Quiesce(it->second);
      }
    });
    return execution_id;
  }
  for (size_t i = 0; i < spec.events.size(); ++i) {
    Message message;
    message.event = &spec.events[i];
    message.action_uid = uid;
    message.event_index = static_cast<int32_t>(i);
    message.execution_id = execution_id;
    main_looper_->Post(message);
  }
  return execution_id;
}

void App::PostFrames(int32_t frames, simkit::SimDuration frame_cpu_mean) {
  render_thread_->EnqueueFrames(current_dispatch_execution_, frames, frame_cpu_mean);
}

void App::PostToWorker(const OpNode* node) {
  Message message;
  message.subtree = node;
  message.execution_id = current_dispatch_execution_;
  worker_looper_->Post(message);
}

uint64_t App::PostAsync(const OpNode* node) {
  if (async_loopers_.empty()) {
    return 0;  // the spec declared no async threads; the task is dropped
  }
  const auto handlers = static_cast<size_t>(std::max<int32_t>(spec_->handler_threads, 0));
  size_t thread_index;
  if (node->async_target >= 0 && static_cast<size_t>(node->async_target) < handlers) {
    thread_index = static_cast<size_t>(node->async_target);
  } else if (async_loopers_.size() > handlers) {
    // Bounded executor pool: deterministic round-robin over the pool threads.
    thread_index = handlers + executor_rr_++ % (async_loopers_.size() - handlers);
  } else {
    thread_index = executor_rr_++ % async_loopers_.size();
  }
  const uint64_t edge = next_async_edge_++;
  const int64_t execution_id = current_dispatch_execution_;
  async_tasks_[edge] = AsyncTask{thread_index, execution_id, false};
  if (node->future_slot >= 0) {
    future_slots_[execution_id][node->future_slot] = edge;
  }
  for (AppObserver* observer : observers_) {
    observer->OnAsyncPost(*this, execution_id, edge,
                          static_cast<telemetry::ThreadId>(thread_index + 1),
                          symbols_.IdFor(node), node->post_delay);
  }
  Message message;
  message.async_task = node;
  message.async_edge = edge;
  message.execution_id = execution_id;
  Looper* target = async_loopers_[thread_index].get();
  if (node->post_delay > 0) {
    kernel_->sim()->ScheduleAfter(node->post_delay, [target, message]() { target->Post(message); });
  } else {
    target->Post(message);
  }
  return edge;
}

uint64_t App::BeginAsyncWait(int32_t slot, telemetry::FrameId wait_frame) {
  // Wait nodes only make sense on the main thread (the one dispatching input events); the
  // current dispatch execution scopes the future slot.
  const int64_t execution_id = current_dispatch_execution_;
  auto exec_it = future_slots_.find(execution_id);
  if (exec_it == future_slots_.end()) {
    return 0;
  }
  auto slot_it = exec_it->second.find(slot);
  if (slot_it == exec_it->second.end()) {
    return 0;
  }
  const uint64_t edge = slot_it->second;
  auto task_it = async_tasks_.find(edge);
  if (task_it == async_tasks_.end() || task_it->second.completed) {
    return 0;  // get() on a finished future returns immediately; no wait telemetry
  }
  blocked_edge_ = edge;
  wait_started_ = kernel_->Now();
  for (AppObserver* observer : observers_) {
    observer->OnAsyncWaitStart(*this, execution_id, edge, wait_frame);
  }
  return edge;
}

bool App::AsyncReady(uint64_t edge) {
  auto it = async_tasks_.find(edge);
  return it == async_tasks_.end() || it->second.completed;
}

void App::EndAsyncWait(uint64_t edge) {
  blocked_edge_ = 0;
  for (AppObserver* observer : observers_) {
    observer->OnAsyncWaitEnd(*this, current_dispatch_execution_, edge,
                             kernel_->Now() - wait_started_);
  }
}

void App::OnAsyncLog(size_t thread_index, bool begin, const Message& message) {
  if (message.async_edge == 0) {
    return;
  }
  auto it = async_tasks_.find(message.async_edge);
  if (it == async_tasks_.end()) {
    return;
  }
  const int64_t execution_id = it->second.execution_id;
  for (AppObserver* observer : observers_) {
    observer->OnAsyncRun(*this, execution_id, message.async_edge,
                         static_cast<telemetry::ThreadId>(thread_index + 1), begin);
  }
  if (!begin) {
    it->second.completed = true;
    async_tasks_.erase(it);
    if (blocked_edge_ == message.async_edge) {
      kernel_->Wake(main_looper_->tid());  // the future's waiter can resume
    }
  }
}

void App::OnMainLog(bool begin, const Message& message) {
  if (message.event == nullptr) {
    return;  // worker-style message on the main looper; not an input event
  }
  auto it = executions_.find(message.execution_id);
  if (it == executions_.end()) {
    return;
  }
  ActionExecution& execution = it->second;
  auto index = static_cast<size_t>(message.event_index);
  if (begin) {
    current_dispatch_execution_ = message.execution_id;
    execution.events[index].start = kernel_->Now();
    for (AppObserver* observer : observers_) {
      observer->OnInputEventStart(*this, execution, message.event_index);
    }
    return;
  }
  execution.events[index].end = kernel_->Now();
  execution.max_response = std::max(
      execution.max_response, execution.events[index].end - execution.events[index].start);
  ++execution.events_done;
  for (AppObserver* observer : observers_) {
    observer->OnInputEventEnd(*this, execution, message.event_index);
  }
  if (execution.events_done == execution.events_total &&
      render_thread_->OutstandingFrames(message.execution_id) == 0) {
    Quiesce(execution);
  }
}

void App::OnMainDone(const Message& message, std::vector<OpContribution> contributions) {
  auto it = executions_.find(message.execution_id);
  if (it == executions_.end()) {
    return;
  }
  ActionExecution& execution = it->second;
  for (OpContribution& contribution : contributions) {
    execution.contributions.push_back(std::move(contribution));
  }
}

void App::OnRenderIdle(int64_t execution_id) {
  auto it = executions_.find(execution_id);
  if (it == executions_.end()) {
    return;
  }
  ActionExecution& execution = it->second;
  if (execution.events_done == execution.events_total) {
    Quiesce(execution);
  }
}

void App::Quiesce(ActionExecution& execution) {
  if (execution.quiesced) {
    return;
  }
  execution.quiesced = true;
  int64_t execution_id = execution.execution_id;
  for (AppObserver* observer : observers_) {
    observer->OnActionQuiesced(*this, execution);
  }
  future_slots_.erase(execution_id);
  executions_.erase(execution_id);
}

}  // namespace droidsim
