#include "src/droidsim/app.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/simkit/logging.h"

namespace droidsim {

App::App(kernelsim::Kernel* kernel, const AppSpec* spec, const int32_t* device_ids,
         simkit::Rng rng)
    : kernel_(kernel), spec_(spec) {
  // Canonical symbol walk: assigns every frame the app can produce a deterministic FrameId.
  for (const ActionSpec& action : spec_->actions) {
    symbols_.IndexAction(action);
  }
  pid_ = kernel_->CreateProcess(spec_->package);
  main_looper_ = std::make_unique<Looper>(kernel_, pid_, spec_->name + ":main", rng.Fork(1),
                                          this, device_ids, &symbols_);
  render_thread_ = std::make_unique<RenderThread>(kernel_, pid_, rng.Fork(2));
  worker_looper_ = std::make_unique<Looper>(kernel_, pid_, spec_->name + ":worker", rng.Fork(3),
                                            this, device_ids, &symbols_);
  main_looper_->AddMessageLogger(
      [this](bool begin, const Message& message) { OnMainLog(begin, message); });
  main_looper_->SetDoneCallback(
      [this](const Message& message, std::vector<OpContribution> contributions) {
        OnMainDone(message, std::move(contributions));
      });
  render_thread_->SetIdleCallback([this](int64_t execution_id) { OnRenderIdle(execution_id); });
}

App::~App() = default;

void App::RemoveObserver(AppObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

int64_t App::PerformAction(int32_t uid) {
  const ActionSpec& spec = action(uid);
  int64_t execution_id = next_execution_id_++;
  ActionExecution execution;
  execution.execution_id = execution_id;
  execution.action_uid = uid;
  execution.started = kernel_->Now();
  execution.events_total = spec.events.size();
  execution.events.resize(spec.events.size());
  executions_.emplace(execution_id, std::move(execution));
  if (spec.events.empty()) {
    kernel_->sim()->ScheduleAfter(0, [this, execution_id]() {
      auto it = executions_.find(execution_id);
      if (it != executions_.end()) {
        Quiesce(it->second);
      }
    });
    return execution_id;
  }
  for (size_t i = 0; i < spec.events.size(); ++i) {
    Message message;
    message.event = &spec.events[i];
    message.action_uid = uid;
    message.event_index = static_cast<int32_t>(i);
    message.execution_id = execution_id;
    main_looper_->Post(message);
  }
  return execution_id;
}

void App::PostFrames(int32_t frames, simkit::SimDuration frame_cpu_mean) {
  render_thread_->EnqueueFrames(current_dispatch_execution_, frames, frame_cpu_mean);
}

void App::PostToWorker(const OpNode* node) {
  Message message;
  message.subtree = node;
  message.execution_id = current_dispatch_execution_;
  worker_looper_->Post(message);
}

void App::OnMainLog(bool begin, const Message& message) {
  if (message.event == nullptr) {
    return;  // worker-style message on the main looper; not an input event
  }
  auto it = executions_.find(message.execution_id);
  if (it == executions_.end()) {
    return;
  }
  ActionExecution& execution = it->second;
  auto index = static_cast<size_t>(message.event_index);
  if (begin) {
    current_dispatch_execution_ = message.execution_id;
    execution.events[index].start = kernel_->Now();
    for (AppObserver* observer : observers_) {
      observer->OnInputEventStart(*this, execution, message.event_index);
    }
    return;
  }
  execution.events[index].end = kernel_->Now();
  execution.max_response = std::max(
      execution.max_response, execution.events[index].end - execution.events[index].start);
  ++execution.events_done;
  for (AppObserver* observer : observers_) {
    observer->OnInputEventEnd(*this, execution, message.event_index);
  }
  if (execution.events_done == execution.events_total &&
      render_thread_->OutstandingFrames(message.execution_id) == 0) {
    Quiesce(execution);
  }
}

void App::OnMainDone(const Message& message, std::vector<OpContribution> contributions) {
  auto it = executions_.find(message.execution_id);
  if (it == executions_.end()) {
    return;
  }
  ActionExecution& execution = it->second;
  for (OpContribution& contribution : contributions) {
    execution.contributions.push_back(std::move(contribution));
  }
}

void App::OnRenderIdle(int64_t execution_id) {
  auto it = executions_.find(execution_id);
  if (it == executions_.end()) {
    return;
  }
  ActionExecution& execution = it->second;
  if (execution.events_done == execution.events_total) {
    Quiesce(execution);
  }
}

void App::Quiesce(ActionExecution& execution) {
  if (execution.quiesced) {
    return;
  }
  execution.quiesced = true;
  int64_t execution_id = execution.execution_id;
  for (AppObserver* observer : observers_) {
    observer->OnActionQuiesced(*this, execution);
  }
  executions_.erase(execution_id);
}

}  // namespace droidsim
