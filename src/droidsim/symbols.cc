#include "src/droidsim/symbols.h"

#include <utility>

#include "src/droidsim/api.h"

namespace droidsim {

namespace {

// Dedup key over the census identity (function, clazz, file, line). '\0' separators keep
// distinct tuples from colliding.
std::string FrameKey(const StackFrame& frame) {
  std::string key;
  key.reserve(frame.function.size() + frame.clazz.size() + frame.file.size() + 14);
  key.append(frame.function);
  key.push_back('\0');
  key.append(frame.clazz);
  key.push_back('\0');
  key.append(frame.file);
  key.push_back('\0');
  key.append(std::to_string(frame.line));
  return key;
}

}  // namespace

FrameId SymbolTable::Intern(StackFrame frame) {
  std::string key = FrameKey(frame);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    return it->second;
  }
  auto id = static_cast<FrameId>(frames_.size());
  is_ui_.push_back(IsUiClass(frame.clazz) ? 1 : 0);
  frames_.push_back(std::move(frame));
  by_key_.emplace(std::move(key), id);
  return id;
}

void SymbolTable::IndexOp(const OpNode& node) {
  StackFrame frame;
  frame.function = node.api->name;
  frame.clazz = node.api->clazz;
  frame.file = node.file;
  frame.line = node.line;
  frame.in_closed_library = node.in_closed_library;
  by_ptr_[&node] = Intern(std::move(frame));
  for (const OpNode& child : node.children) {
    IndexOp(child);
  }
}

void SymbolTable::IndexAction(const ActionSpec& action) {
  for (const InputEventSpec& event : action.events) {
    StackFrame handler;
    handler.function = event.handler;
    handler.file = event.handler_file;
    handler.line = event.handler_line;
    by_ptr_[&event] = Intern(std::move(handler));
    for (const OpNode& node : event.ops) {
      IndexOp(node);
    }
  }
}

}  // namespace droidsim
