#include "src/droidsim/symbols.h"

#include <utility>

#include "src/droidsim/api.h"

namespace droidsim {

telemetry::FrameId SymbolTable::Intern(telemetry::StackFrame frame, bool self_developed) {
  bool is_ui = IsUiClass(frame.clazz);
  return telemetry::SymbolTable::Intern(std::move(frame), is_ui, self_developed);
}

void SymbolTable::IndexOp(const OpNode& node) {
  telemetry::StackFrame frame;
  frame.function = node.api->name;
  frame.clazz = node.api->clazz;
  frame.file = node.file;
  frame.line = node.line;
  frame.in_closed_library = node.in_closed_library;
  by_ptr_[&node] = Intern(std::move(frame), node.api->self_developed);
  for (const OpNode& child : node.children) {
    IndexOp(child);
  }
}

void SymbolTable::IndexAction(const ActionSpec& action) {
  for (const InputEventSpec& event : action.events) {
    telemetry::StackFrame handler;
    handler.function = event.handler;
    handler.file = event.handler_file;
    handler.line = event.handler_line;
    by_ptr_[&event] = Intern(std::move(handler));
    for (const OpNode& node : event.ops) {
      IndexOp(node);
    }
  }
}

}  // namespace droidsim
