#include "src/droidsim/render_thread.h"

#include "src/droidsim/api.h"

namespace droidsim {

namespace {
// Fence/buffer-swap wait between consecutive frames.
constexpr simkit::SimDuration kInterFrameGap = simkit::Microseconds(300);
}  // namespace

RenderThread::RenderThread(kernelsim::Kernel* kernel, kernelsim::ProcessId pid, simkit::Rng rng)
    : kernel_(kernel), rng_(rng) {
  tid_ = kernel_->SpawnThread(pid, "RenderThread", this);
}

void RenderThread::EnqueueFrames(int64_t execution_id, int32_t count,
                                 simkit::SimDuration frame_cpu_mean) {
  for (int32_t i = 0; i < count; ++i) {
    FrameJob job;
    job.execution_id = execution_id;
    job.cpu = static_cast<simkit::SimDuration>(static_cast<double>(frame_cpu_mean) *
                                               rng_.LogNormal(0.0, 0.25));
    queue_.push_back(job);
  }
  outstanding_[execution_id] += count;
  kernel_->Wake(tid_);
}

int64_t RenderThread::OutstandingFrames(int64_t execution_id) const {
  auto it = outstanding_.find(execution_id);
  return it == outstanding_.end() ? 0 : it->second;
}

void RenderThread::FinalizeFrame(const FrameJob& job) {
  ++rendered_;
  auto it = outstanding_.find(job.execution_id);
  if (it != outstanding_.end() && --it->second <= 0) {
    outstanding_.erase(it);
    if (idle_) {
      idle_(job.execution_id);
    }
  }
}

kernelsim::Segment RenderThread::NextSegment() {
  if (in_flight_.has_value()) {
    FrameJob done = *in_flight_;
    in_flight_.reset();
    FinalizeFrame(done);
    if (!queue_.empty()) {
      gap_pending_ = true;
      kernelsim::SleepSegment gap;
      gap.duration = kInterFrameGap;
      return gap;
    }
  }
  gap_pending_ = false;
  if (!queue_.empty()) {
    FrameJob job = queue_.front();
    queue_.pop_front();
    in_flight_ = job;
    kernelsim::CpuSegment cpu;
    cpu.duration = job.cpu;
    cpu.uarch = RenderUarch();
    cpu.touch_bytes = 512 * 1024;
    cpu.alloc_bytes = 32 * 1024;
    cpu.syscalls_per_ms = 0.5;
    return cpu;
  }
  return kernelsim::BlockSegment{};
}

}  // namespace droidsim
