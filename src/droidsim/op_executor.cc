#include "src/droidsim/op_executor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace droidsim {

OpExecutor::OpExecutor(simkit::Simulation* sim, simkit::Rng rng, OpExecutorHooks* hooks,
                       const int32_t* device_ids, const SymbolTable* symbols)
    : sim_(sim), rng_(rng), hooks_(hooks), device_ids_(device_ids), symbols_(symbols) {}

void OpExecutor::Begin(telemetry::FrameId handler_frame, std::span<const OpNode> ops) {
  assert(stack_.empty());
  PushRoot(handler_frame, ops);
}

void OpExecutor::BeginSubtree(const OpNode* node) {
  assert(stack_.empty());
  PushNode(*node);
}

void OpExecutor::PushRoot(telemetry::FrameId frame, std::span<const OpNode> ops) {
  NodeState state;
  state.children = ops;
  state.phase = 0;
  state.entry_time = sim_->Now();
  state.has_frame = true;
  stack_.push_back(state);
  visible_stack_.push_back(frame);
}

OpExecutor::Realization OpExecutor::Realize(const OpNode& node) {
  const ApiCostModel& cost = node.api->cost;
  Realization real;
  real.manifested = rng_.Bernoulli(node.manifest_probability);
  double scale = real.manifested ? 1.0 : node.dormant_scale;
  if (cost.cpu_mean > 0) {
    double multiplier = rng_.LogNormal(0.0, cost.cpu_sigma);
    real.cpu = static_cast<simkit::SimDuration>(static_cast<double>(cost.cpu_mean) * multiplier *
                                                scale);
  }
  real.alloc_bytes = static_cast<int64_t>(static_cast<double>(cost.alloc_bytes_mean) *
                                          rng_.LogNormal(0.0, 0.60) * scale);
  real.touch_bytes = cost.touch_bytes;
  real.syscalls_per_ms = cost.syscalls_per_ms;
  real.uarch = cost.uarch;
  // Content-dependent micro-architectural jitter: the same API behaves differently on every
  // input (photo sizes, HTML depth, row counts), which decouples hardware-event counts from
  // pure CPU time across executions.
  real.uarch.instructions_per_ns *= rng_.LogNormal(0.0, 0.30);
  real.uarch.cache_refs_per_kinstr *= rng_.LogNormal(0.0, 0.35);
  real.uarch.cache_miss_ratio *= rng_.LogNormal(0.0, 0.35);
  real.uarch.l1d_loads_per_kinstr *= rng_.LogNormal(0.0, 0.30);
  real.uarch.l1d_stores_per_kinstr *= rng_.LogNormal(0.0, 0.30);
  real.uarch.l1d_refill_ratio *= rng_.LogNormal(0.0, 0.35);
  real.uarch.l1i_refill_per_kinstr *= rng_.LogNormal(0.0, 0.35);
  real.uarch.branches_per_kinstr *= rng_.LogNormal(0.0, 0.30);
  real.uarch.branch_miss_ratio *= rng_.LogNormal(0.0, 0.35);
  real.uarch.dtlb_refill_per_kinstr *= rng_.LogNormal(0.0, 0.40);
  real.uarch.itlb_refill_per_kinstr *= rng_.LogNormal(0.0, 0.40);
  real.uarch.stalled_frontend_ratio *= rng_.LogNormal(0.0, 0.30);
  real.uarch.stalled_backend_ratio *= rng_.LogNormal(0.0, 0.30);
  if (cost.io_rounds > 0) {
    real.io_rounds = real.manifested
                         ? cost.io_rounds
                         : std::max<int32_t>(1, static_cast<int32_t>(cost.io_rounds * scale));
    real.io_bytes = static_cast<int64_t>(static_cast<double>(cost.io_bytes_mean) *
                                         rng_.LogNormal(0.0, 0.2) * scale);
    real.io_cache_hit = cost.io_cache_hit;
    real.device = cost.device;
  }
  real.frames = cost.frames;
  real.frame_cpu_mean = cost.frame_cpu_mean;
  return real;
}

void OpExecutor::PushNode(const OpNode& node) {
  assert(node.api != nullptr);
  if (node.async == AsyncOp::kSubmit) {
    // The posting thread pays only the submit cost; the children run on the async thread.
    // The submit frame is visible (briefly) so post sites can show up in sampled stacks.
    hooks_->PostAsync(&node);
    NodeState state;
    state.node = &node;
    state.phase = 2;  // no children here, no I/O
    state.entry_time = sim_->Now();
    state.real.cpu = simkit::Microseconds(40);
    state.real.uarch = DefaultUarch();
    state.real.syscalls_per_ms = 2.0;
    state.has_frame = true;
    stack_.push_back(state);
    visible_stack_.push_back(symbols_->IdFor(&node));
    return;
  }
  if (node.async == AsyncOp::kWait) {
    // Future.get: block in this frame until the edge completes, then burn a small resume
    // cost. No Realize() — the wait consumes no RNG, keeping pre-async draws unchanged.
    NodeState state;
    state.node = &node;
    state.phase = 4;
    state.entry_time = sim_->Now();
    state.real.cpu = simkit::Microseconds(20);
    state.real.uarch = DefaultUarch();
    state.real.syscalls_per_ms = 2.0;
    state.has_frame = true;
    stack_.push_back(state);
    visible_stack_.push_back(symbols_->IdFor(&node));
    return;
  }
  if (node.on_worker) {
    // The main thread only pays the Handler.post() cost; the subtree runs elsewhere.
    hooks_->PostToWorker(&node);
    NodeState state;
    state.node = &node;
    state.phase = 2;  // skip children and I/O
    state.entry_time = sim_->Now();
    state.real.cpu = simkit::Microseconds(30);
    state.real.uarch = DefaultUarch();
    state.real.syscalls_per_ms = 2.0;
    state.has_frame = false;
    stack_.push_back(state);
    return;
  }
  NodeState state;
  state.node = &node;
  state.children = node.children;
  state.phase = 0;
  state.entry_time = sim_->Now();
  state.real = Realize(node);
  state.has_frame = true;
  stack_.push_back(state);
  visible_stack_.push_back(symbols_->IdFor(&node));
}

void OpExecutor::PopNode() {
  NodeState& state = stack_.back();
  simkit::SimDuration wall = sim_->Now() - state.entry_time;
  if (state.node != nullptr) {
    if (state.real.frames > 0) {
      hooks_->PostFrames(state.real.frames, state.real.frame_cpu_mean);
    }
    OpContribution contribution;
    contribution.start = state.entry_time;
    contribution.api = state.node->api;
    contribution.file = state.node->file;
    contribution.line = state.node->line;
    contribution.in_closed_library = state.node->in_closed_library;
    contribution.duration = wall;
    contribution.self_duration = std::max<simkit::SimDuration>(wall - state.child_time, 0);
    contribution.manifested = state.real.manifested;
    if (stack_.size() >= 2) {
      const NodeState& parent = stack_[stack_.size() - 2];
      contribution.caller = parent.node != nullptr
                                ? parent.node->api->FullName()
                                : symbols_->Frame(visible_stack_.front()).function;
    }
    contributions_.push_back(std::move(contribution));
  }
  if (state.has_frame) {
    visible_stack_.pop_back();
  }
  stack_.pop_back();
  if (!stack_.empty()) {
    stack_.back().child_time += wall;
  }
}

std::optional<kernelsim::Segment> OpExecutor::Next() {
  while (!stack_.empty()) {
    NodeState& top = stack_.back();
    switch (top.phase) {
      case 0: {
        if (top.next_child < top.children.size()) {
          PushNode(top.children[top.next_child++]);
          continue;
        }
        top.phase = 1;
        continue;
      }
      case 1: {
        top.phase = 2;
        if (top.real.io_rounds > 0) {
          kernelsim::IoSegment io;
          io.device = device_ids_[static_cast<size_t>(top.real.device)];
          io.bytes = top.real.io_bytes;
          io.rounds = top.real.io_rounds;
          io.cache_hit_probability = top.real.io_cache_hit;
          return kernelsim::Segment{io};
        }
        continue;
      }
      case 2: {
        top.phase = 3;
        if (top.real.cpu > 0) {
          kernelsim::CpuSegment cpu;
          cpu.duration = top.real.cpu;
          cpu.uarch = top.real.uarch;
          cpu.alloc_bytes = top.real.alloc_bytes;
          cpu.touch_bytes = top.real.touch_bytes;
          cpu.syscalls_per_ms = top.real.syscalls_per_ms;
          return kernelsim::Segment{cpu};
        }
        continue;
      }
      case 4: {
        if (!top.wait_entered) {
          top.wait_entered = true;
          top.wait_edge = hooks_->BeginAsyncWait(top.node->future_slot, visible_stack_.back());
        }
        if (top.wait_edge != 0 && !hooks_->AsyncReady(top.wait_edge)) {
          return kernelsim::Segment{kernelsim::BlockSegment{}};
        }
        if (top.wait_edge != 0) {
          hooks_->EndAsyncWait(top.wait_edge);
          top.wait_edge = 0;
        }
        top.phase = 2;  // the get() returned: small resume cost, then finish
        continue;
      }
      default: {
        PopNode();
        continue;
      }
    }
  }
  return std::nullopt;
}

std::vector<OpContribution> OpExecutor::TakeContributions() {
  std::vector<OpContribution> out;
  out.swap(contributions_);
  return out;
}

}  // namespace droidsim
