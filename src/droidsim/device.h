// Device profiles: the handsets the paper evaluates on (LG V10 as the primary, Nexus 5 and
// Galaxy S3 for the generality checks in Section 3.3.1). A profile bundles core count and
// timeslice, the PMU register budget, the background load level, and the latency/bandwidth
// characteristics of each peripheral.
#ifndef SRC_DROIDSIM_DEVICE_H_
#define SRC_DROIDSIM_DEVICE_H_

#include <array>
#include <string>

#include "src/droidsim/api.h"
#include "src/kernelsim/background_load.h"
#include "src/kernelsim/io.h"
#include "src/kernelsim/kernel.h"
#include "src/perfsim/perf_session.h"

namespace droidsim {

struct DeviceProfile {
  std::string model;
  kernelsim::KernelSpec kernel;
  perfsim::PmuSpec pmu;
  kernelsim::BackgroundLoadSpec background;
  // Android < 5.0 devices have no render thread; S-Checker then runs in main-only mode.
  bool has_render_thread = true;
  std::array<kernelsim::IoDeviceSpec, static_cast<size_t>(DeviceKind::kNumDevices)> devices;
};

DeviceProfile LgV10();      // 6 PMU registers, the paper's primary device
DeviceProfile Nexus5();     // 4 PMU registers
DeviceProfile GalaxyS3();   // older, slower flash, Android 4.x (no render thread)

}  // namespace droidsim

#endif  // SRC_DROIDSIM_DEVICE_H_
