// Walks one input event's operation tree on a thread, producing kernel segments in
// depth-first order while keeping the thread's live stack trace current. This is the bridge
// between the declarative app model and the kernel's execution model, and it is what gives
// Diagnoser's stack sampler something truthful to sample: a frame is on the stack exactly
// while its I/O or CPU segments occupy the thread.
#ifndef SRC_DROIDSIM_OP_EXECUTOR_H_
#define SRC_DROIDSIM_OP_EXECUTOR_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/droidsim/api.h"
#include "src/droidsim/operation.h"
#include "src/telemetry/stack.h"
#include "src/droidsim/symbols.h"
#include "src/kernelsim/segment.h"
#include "src/kernelsim/types.h"
#include "src/simkit/rng.h"
#include "src/simkit/simulation.h"

namespace droidsim {

// Everything one node execution contributed to the event, for ground-truth labelling.
struct OpContribution {
  const ApiSpec* api = nullptr;
  std::string file;
  int32_t line = 0;
  bool in_closed_library = false;
  std::string caller;  // enclosing frame (handler name for top-level ops)
  simkit::SimTime start = 0;         // when the node began executing
  simkit::SimDuration duration = 0;  // wall time the node (incl. children) held the thread
  simkit::SimDuration self_duration = 0;  // realized own CPU + I/O intent, excl. children
  bool manifested = true;
};

// Side effects the executor cannot perform itself.
class OpExecutorHooks {
 public:
  virtual ~OpExecutorHooks() = default;
  // A UI op finished and handed `frames` frame jobs to the render thread.
  virtual void PostFrames(int32_t frames, simkit::SimDuration frame_cpu_mean) = 0;
  // An on_worker subtree must be posted to the app's worker thread.
  virtual void PostToWorker(const OpNode* node) = 0;

  // -- Async substrate (defaults are no-ops so pre-async hook implementations stay valid) --
  // A kSubmit node posts its children to an async thread; returns the causal edge id, or 0
  // when the host has no async threads and the task is dropped.
  virtual uint64_t PostAsync(const OpNode* node) {
    (void)node;
    return 0;
  }
  // A kWait node is about to block on `slot`'s future (its own frame is `wait_frame`).
  // Returns the edge to wait for, or 0 when the future already completed — a Future.get on a
  // finished task returns immediately and emits no wait telemetry.
  virtual uint64_t BeginAsyncWait(int32_t slot, telemetry::FrameId wait_frame) {
    (void)slot;
    (void)wait_frame;
    return 0;
  }
  // Polled each time the blocked thread wakes: has `edge`'s task completed?
  virtual bool AsyncReady(uint64_t edge) {
    (void)edge;
    return true;
  }
  // The blocked wait for `edge` resolved and the thread resumes.
  virtual void EndAsyncWait(uint64_t edge) { (void)edge; }
};

class OpExecutor {
 public:
  // `symbols` is the app's table; every OpNode and handler reaching this executor must have
  // been indexed in it, so pushing a frame is one pointer-keyed lookup.
  OpExecutor(simkit::Simulation* sim, simkit::Rng rng, OpExecutorHooks* hooks,
             const int32_t* device_ids /* indexed by DeviceKind, size kNumDevices */,
             const SymbolTable* symbols);

  // Starts executing `ops` under a synthetic root frame (the event handler).
  void Begin(telemetry::FrameId handler_frame, std::span<const OpNode> ops);

  // Starts executing a single subtree (worker-thread path); the root frame is the node's own.
  void BeginSubtree(const OpNode* node);

  bool Active() const { return !stack_.empty(); }

  // Next kernel segment, or nullopt when the event is finished.
  std::optional<kernelsim::Segment> Next();

  // Live stack as interned frame ids, outermost first. Valid between Begin() and the nullopt
  // from Next().
  const std::vector<telemetry::FrameId>& CurrentStack() const { return visible_stack_; }

  // Contributions recorded since the last call (cleared on return).
  std::vector<OpContribution> TakeContributions();

 private:
  struct Realization {
    simkit::SimDuration cpu = 0;
    int64_t alloc_bytes = 0;
    int64_t touch_bytes = 0;
    double syscalls_per_ms = 0.3;
    kernelsim::MicroArchProfile uarch;
    int32_t io_rounds = 0;
    int64_t io_bytes = 0;
    double io_cache_hit = 0.0;
    DeviceKind device = DeviceKind::kFlash;
    int32_t frames = 0;
    simkit::SimDuration frame_cpu_mean = 0;
    bool manifested = true;
  };

  struct NodeState {
    const OpNode* node = nullptr;  // null for the synthetic root
    std::span<const OpNode> children;
    size_t next_child = 0;
    int phase = 0;  // 0 = children, 1 = I/O, 2 = CPU, 3 = finish, 4 = blocked future wait
    Realization real;
    simkit::SimTime entry_time = 0;
    simkit::SimDuration child_time = 0;  // accumulated wall time of finished children
    bool has_frame = false;
    // kWait bookkeeping: the edge being waited for (0 = none) and whether the wait was
    // already announced to the hooks (spurious wakeups must not re-announce it).
    uint64_t wait_edge = 0;
    bool wait_entered = false;
  };

  void PushRoot(telemetry::FrameId frame, std::span<const OpNode> ops);
  void PushNode(const OpNode& node);
  void PopNode();
  Realization Realize(const OpNode& node);

  simkit::Simulation* sim_;
  simkit::Rng rng_;
  OpExecutorHooks* hooks_;
  const int32_t* device_ids_;
  const SymbolTable* symbols_;
  std::vector<NodeState> stack_;
  std::vector<telemetry::FrameId> visible_stack_;
  std::vector<OpContribution> contributions_;
};

}  // namespace droidsim

#endif  // SRC_DROIDSIM_OP_EXECUTOR_H_
