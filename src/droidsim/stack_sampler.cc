#include "src/droidsim/stack_sampler.h"

#include <utility>

namespace droidsim {

StackSampler::StackSampler(simkit::Simulation* sim, const Looper* looper,
                           simkit::SimDuration interval)
    : sim_(sim), looper_(looper), interval_(interval) {}

StackSampler::~StackSampler() {
  if (pending_event_ != 0) {
    sim_->Cancel(pending_event_);
  }
}

void StackSampler::StartCollection() {
  if (active_) {
    return;
  }
  active_ = true;
  samples_.clear();
  // Sample immediately so even hangs barely past the timeout yield at least one trace.
  TakeSample();
  ScheduleNext();
}

std::vector<StackTrace> StackSampler::StopCollection() {
  active_ = false;
  if (pending_event_ != 0) {
    sim_->Cancel(pending_event_);
    pending_event_ = 0;
  }
  std::vector<StackTrace> out;
  out.swap(samples_);
  return out;
}

void StackSampler::ScheduleNext() {
  pending_event_ = sim_->ScheduleAfter(interval_, [this]() {
    pending_event_ = 0;
    if (!active_) {
      return;
    }
    TakeSample();
    ScheduleNext();
  });
}

void StackSampler::TakeSample() {
  StackTrace trace;
  trace.timestamp_ns = sim_->Now();
  trace.frames = looper_->CurrentStack();
  ++total_samples_;
  samples_.push_back(std::move(trace));
}

}  // namespace droidsim
