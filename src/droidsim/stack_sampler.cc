#include "src/droidsim/stack_sampler.h"

namespace droidsim {

StackSampler::StackSampler(simkit::Simulation* sim, const Looper* looper,
                           simkit::SimDuration interval, telemetry::ThreadId thread)
    : sim_(sim), looper_(looper), interval_(interval), thread_(thread) {}

StackSampler::~StackSampler() {
  if (pending_event_ != 0) {
    sim_->Cancel(pending_event_);
  }
}

void StackSampler::StartCollection() {
  if (active_) {
    return;
  }
  active_ = true;
  used_ = 0;  // rewind into the pooled slots; capacities survive
  // Sample immediately so even hangs barely past the timeout yield at least one trace.
  TakeSample();
  ScheduleNext();
}

std::span<const telemetry::StackTrace> StackSampler::StopCollection() {
  active_ = false;
  if (pending_event_ != 0) {
    sim_->Cancel(pending_event_);
    pending_event_ = 0;
  }
  return {samples_.data(), used_};
}

void StackSampler::ScheduleNext() {
  pending_event_ = sim_->ScheduleAfter(interval_, [this]() {
    pending_event_ = 0;
    if (!active_) {
      return;
    }
    TakeSample();
    ScheduleNext();
  });
}

void StackSampler::TakeSample() {
  if (used_ == samples_.size()) {
    samples_.emplace_back();
  }
  telemetry::StackTrace& trace = samples_[used_++];
  trace.timestamp_ns = sim_->Now();
  trace.thread = thread_;
  const std::vector<telemetry::FrameId>& stack = looper_->CurrentStack();
  trace.frames.assign(stack.begin(), stack.end());
  ++total_samples_;
}

}  // namespace droidsim
