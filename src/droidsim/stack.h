// Stack traces as Hang Doctor's Diagnoser sees them: one frame per active call, innermost
// last, each naming the API, its class, and the file/line of the call site. Frames inside
// closed-source third-party libraries carry a flag so the offline-scanner baseline can be made
// realistically blind to them while the runtime trace collector still sees the symbols (on a
// real phone they come from the unwinder; symbol names survive even without source access).
#ifndef SRC_DROIDSIM_STACK_H_
#define SRC_DROIDSIM_STACK_H_

#include <string>
#include <vector>

namespace droidsim {

struct StackFrame {
  std::string function;  // e.g. "clean"
  std::string clazz;     // e.g. "org.htmlcleaner.HtmlCleaner"
  std::string file;      // e.g. "HtmlSanitizer.java"
  int32_t line = 0;
  bool in_closed_library = false;

  bool operator==(const StackFrame& other) const {
    return function == other.function && clazz == other.clazz && file == other.file &&
           line == other.line;
  }
};

struct StackTrace {
  int64_t timestamp_ns = 0;
  std::vector<StackFrame> frames;  // outermost first

  bool Contains(const std::string& clazz, const std::string& function) const {
    for (const StackFrame& frame : frames) {
      if (frame.clazz == clazz && frame.function == function) {
        return true;
      }
    }
    return false;
  }
};

// Renders "function(File.java:123)" like an Android stack dump line.
inline std::string FormatFrame(const StackFrame& frame) {
  return frame.function + "(" + frame.file + ":" + std::to_string(frame.line) + ")";
}

}  // namespace droidsim

#endif  // SRC_DROIDSIM_STACK_H_
