// Stack traces as Hang Doctor's Diagnoser sees them: one frame per active call, innermost
// last. On the hot sampling path a frame is a 32-bit FrameId interned in the app's
// SymbolTable (symbols.h); the symbolic StackFrame — API name, class, call-site file/line —
// is materialized only at report-render time. Frames inside closed-source third-party
// libraries carry a flag so the offline-scanner baseline can be made realistically blind to
// them while the runtime trace collector still sees the symbols (on a real phone they come
// from the unwinder; symbol names survive even without source access).
#ifndef SRC_DROIDSIM_STACK_H_
#define SRC_DROIDSIM_STACK_H_

#include <cstdint>
#include <string>
#include <vector>

namespace droidsim {

// Index into a SymbolTable. Ids are assigned in spec-walk order at App construction, so the
// same app spec yields the same ids in every run and under any fleet sharding.
using FrameId = uint32_t;

// A materialized (symbolic) frame: what reports and diagnoses show.
struct StackFrame {
  std::string function;  // e.g. "clean"
  std::string clazz;     // e.g. "org.htmlcleaner.HtmlCleaner"
  std::string file;      // e.g. "HtmlSanitizer.java"
  int32_t line = 0;
  bool in_closed_library = false;

  bool operator==(const StackFrame& other) const {
    return function == other.function && clazz == other.clazz && file == other.file &&
           line == other.line;
  }
};

// A sampled stack: interned frame ids, outermost first. Resolving an id back to its
// StackFrame requires the app's SymbolTable (see SymbolTable::Frame).
struct StackTrace {
  int64_t timestamp_ns = 0;
  std::vector<FrameId> frames;  // outermost first

  bool Contains(FrameId id) const {
    for (FrameId frame : frames) {
      if (frame == id) {
        return true;
      }
    }
    return false;
  }
};

// Renders "function(File.java:123)" like an Android stack dump line.
inline std::string FormatFrame(const StackFrame& frame) {
  return frame.function + "(" + frame.file + ":" + std::to_string(frame.line) + ")";
}

}  // namespace droidsim

#endif  // SRC_DROIDSIM_STACK_H_
