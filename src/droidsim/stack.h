// Compatibility shim: the interned stack-trace representation moved to src/telemetry/stack.h
// so the detector core (src/hangdoctor) can consume traces without depending on this
// simulated substrate. droidsim code and its existing users keep referring to the types
// through the aliases below.
#ifndef SRC_DROIDSIM_STACK_H_
#define SRC_DROIDSIM_STACK_H_

#include "src/telemetry/stack.h"

namespace droidsim {

using telemetry::FrameId;
using telemetry::StackFrame;
using telemetry::StackTrace;
using telemetry::FormatFrame;

}  // namespace droidsim

#endif  // SRC_DROIDSIM_STACK_H_
