// The app runtime: one process with a main-thread Looper, a render thread and a worker
// Looper, executing the actions declared by an AppSpec. Observers (Hang Doctor, the baseline
// detectors, the ground-truth recorder) watch input-event dispatch and action quiescence —
// the moment "none of the two threads execute" at which S-Checker reads its counters.
#ifndef SRC_DROIDSIM_APP_H_
#define SRC_DROIDSIM_APP_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/droidsim/looper.h"
#include "src/droidsim/operation.h"
#include "src/droidsim/render_thread.h"
#include "src/droidsim/symbols.h"
#include "src/kernelsim/kernel.h"

namespace droidsim {

struct AppSpec {
  std::string name;
  std::string package;
  std::string category;
  std::string commit;
  int64_t downloads = 0;
  std::vector<ActionSpec> actions;
};

struct EventTiming {
  simkit::SimTime start = -1;
  simkit::SimTime end = -1;
};

// One execution of a user action (the unit the paper's state machine reasons about).
struct ActionExecution {
  int64_t execution_id = 0;
  int32_t action_uid = -1;
  simkit::SimTime started = 0;
  size_t events_total = 0;
  size_t events_done = 0;
  std::vector<EventTiming> events;
  // The paper defines an action's response time as the maximum over its input events.
  simkit::SimDuration max_response = 0;
  std::vector<OpContribution> contributions;
  bool quiesced = false;
};

class App;

class AppObserver {
 public:
  virtual ~AppObserver() = default;
  virtual void OnInputEventStart(App& app, const ActionExecution& execution,
                                 int32_t event_index) {
    (void)app;
    (void)execution;
    (void)event_index;
  }
  virtual void OnInputEventEnd(App& app, const ActionExecution& execution, int32_t event_index) {
    (void)app;
    (void)execution;
    (void)event_index;
  }
  // Main thread finished all the action's input events and the render thread drained.
  virtual void OnActionQuiesced(App& app, const ActionExecution& execution) {
    (void)app;
    (void)execution;
  }
};

class App : public OpExecutorHooks {
 public:
  // `device_ids` maps DeviceKind to kernel device ids and must outlive the app (Phone owns it).
  App(kernelsim::Kernel* kernel, const AppSpec* spec, const int32_t* device_ids,
      simkit::Rng rng);
  ~App() override;
  App(const App&) = delete;
  App& operator=(const App&) = delete;

  const AppSpec& spec() const { return *spec_; }
  const ActionSpec& action(int32_t uid) const {
    return spec_->actions.at(static_cast<size_t>(uid));
  }
  int32_t num_actions() const { return static_cast<int32_t>(spec_->actions.size()); }

  kernelsim::ProcessId process_id() const { return pid_; }
  Looper& main_looper() { return *main_looper_; }
  RenderThread& render_thread() { return *render_thread_; }
  Looper& worker_looper() { return *worker_looper_; }
  kernelsim::ThreadId main_tid() const { return main_looper_->tid(); }
  kernelsim::ThreadId render_tid() const { return render_thread_->tid(); }

  void AddObserver(AppObserver* observer) { observers_.push_back(observer); }
  void RemoveObserver(AppObserver* observer);

  // Executes action `uid` (posts all of its input events); returns the execution id.
  int64_t PerformAction(int32_t uid);

  // Live main-thread stack as interned frame ids, as a stack sampler would see it.
  const std::vector<telemetry::FrameId>& MainStack() const { return main_looper_->CurrentStack(); }

  // The app's symbol table: every frame id in this app's stacks/traces resolves here.
  const SymbolTable& symbols() const { return symbols_; }

  // OpExecutorHooks (for the main looper's executor):
  void PostFrames(int32_t frames, simkit::SimDuration frame_cpu_mean) override;
  void PostToWorker(const OpNode* node) override;

 private:
  void OnMainLog(bool begin, const Message& message);
  void OnMainDone(const Message& message, std::vector<OpContribution> contributions);
  void OnRenderIdle(int64_t execution_id);
  void Quiesce(ActionExecution& execution);

  kernelsim::Kernel* kernel_;
  const AppSpec* spec_;
  SymbolTable symbols_;  // built before the loopers, which hold pointers into it
  kernelsim::ProcessId pid_;
  std::unique_ptr<Looper> main_looper_;
  std::unique_ptr<RenderThread> render_thread_;
  std::unique_ptr<Looper> worker_looper_;
  std::vector<AppObserver*> observers_;
  std::unordered_map<int64_t, ActionExecution> executions_;
  int64_t next_execution_id_ = 1;
  int64_t current_dispatch_execution_ = 0;
};

}  // namespace droidsim

#endif  // SRC_DROIDSIM_APP_H_
