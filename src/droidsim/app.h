// The app runtime: one process with a main-thread Looper, a render thread and a worker
// Looper, executing the actions declared by an AppSpec. Observers (Hang Doctor, the baseline
// detectors, the ground-truth recorder) watch input-event dispatch and action quiescence —
// the moment "none of the two threads execute" at which S-Checker reads its counters.
#ifndef SRC_DROIDSIM_APP_H_
#define SRC_DROIDSIM_APP_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/droidsim/looper.h"
#include "src/droidsim/operation.h"
#include "src/droidsim/render_thread.h"
#include "src/droidsim/symbols.h"
#include "src/kernelsim/kernel.h"

namespace droidsim {

struct AppSpec {
  std::string name;
  std::string package;
  std::string category;
  std::string commit;
  int64_t downloads = 0;
  // Async substrate: named HandlerThreads plus a bounded executor pool, created only when
  // nonzero so pre-async apps keep their exact thread set (and RNG fork order). Async
  // threads carry telemetry thread ids 1..N in this order: handlers first, then the pool.
  int32_t handler_threads = 0;
  int32_t executor_threads = 0;
  std::vector<ActionSpec> actions;
};

struct EventTiming {
  simkit::SimTime start = -1;
  simkit::SimTime end = -1;
};

// One execution of a user action (the unit the paper's state machine reasons about).
struct ActionExecution {
  int64_t execution_id = 0;
  int32_t action_uid = -1;
  simkit::SimTime started = 0;
  size_t events_total = 0;
  size_t events_done = 0;
  std::vector<EventTiming> events;
  // The paper defines an action's response time as the maximum over its input events.
  simkit::SimDuration max_response = 0;
  std::vector<OpContribution> contributions;
  bool quiesced = false;
};

class App;

class AppObserver {
 public:
  virtual ~AppObserver() = default;
  virtual void OnInputEventStart(App& app, const ActionExecution& execution,
                                 int32_t event_index) {
    (void)app;
    (void)execution;
    (void)event_index;
  }
  virtual void OnInputEventEnd(App& app, const ActionExecution& execution, int32_t event_index) {
    (void)app;
    (void)execution;
    (void)event_index;
  }
  // Main thread finished all the action's input events and the render thread drained.
  virtual void OnActionQuiesced(App& app, const ActionExecution& execution) {
    (void)app;
    (void)execution;
  }

  // -- Cross-thread causal events (async substrate; vocabulary in telemetry/causal.h) --
  // `thread` is the async thread's telemetry id (1-based; 0 is main). A post announces a
  // new causal edge; run begin/end bracket the task on its thread; wait start/end bracket
  // the main thread blocking on the edge's future (wait events fire only when the task was
  // still incomplete at get() time).
  virtual void OnAsyncPost(App& app, int64_t execution_id, uint64_t edge,
                           telemetry::ThreadId thread, telemetry::FrameId post_frame,
                           simkit::SimDuration delay) {
    (void)app, (void)execution_id, (void)edge, (void)thread, (void)post_frame, (void)delay;
  }
  virtual void OnAsyncRun(App& app, int64_t execution_id, uint64_t edge,
                          telemetry::ThreadId thread, bool begin) {
    (void)app, (void)execution_id, (void)edge, (void)thread, (void)begin;
  }
  virtual void OnAsyncWaitStart(App& app, int64_t execution_id, uint64_t edge,
                                telemetry::FrameId wait_frame) {
    (void)app, (void)execution_id, (void)edge, (void)wait_frame;
  }
  virtual void OnAsyncWaitEnd(App& app, int64_t execution_id, uint64_t edge,
                              simkit::SimDuration waited) {
    (void)app, (void)execution_id, (void)edge, (void)waited;
  }
};

class App : public OpExecutorHooks {
 public:
  // `device_ids` maps DeviceKind to kernel device ids and must outlive the app (Phone owns it).
  App(kernelsim::Kernel* kernel, const AppSpec* spec, const int32_t* device_ids,
      simkit::Rng rng);
  ~App() override;
  App(const App&) = delete;
  App& operator=(const App&) = delete;

  const AppSpec& spec() const { return *spec_; }
  const ActionSpec& action(int32_t uid) const {
    return spec_->actions.at(static_cast<size_t>(uid));
  }
  int32_t num_actions() const { return static_cast<int32_t>(spec_->actions.size()); }

  kernelsim::ProcessId process_id() const { return pid_; }
  Looper& main_looper() { return *main_looper_; }
  RenderThread& render_thread() { return *render_thread_; }
  Looper& worker_looper() { return *worker_looper_; }
  kernelsim::ThreadId main_tid() const { return main_looper_->tid(); }
  kernelsim::ThreadId render_tid() const { return render_thread_->tid(); }
  // Async threads (handlers then executor pool); telemetry thread id = index + 1.
  size_t num_async_threads() const { return async_loopers_.size(); }
  const Looper& async_looper(size_t index) const { return *async_loopers_[index]; }

  void AddObserver(AppObserver* observer) { observers_.push_back(observer); }
  void RemoveObserver(AppObserver* observer);

  // Executes action `uid` (posts all of its input events); returns the execution id.
  int64_t PerformAction(int32_t uid);

  // Live main-thread stack as interned frame ids, as a stack sampler would see it.
  const std::vector<telemetry::FrameId>& MainStack() const { return main_looper_->CurrentStack(); }

  // The app's symbol table: every frame id in this app's stacks/traces resolves here.
  const SymbolTable& symbols() const { return symbols_; }

  // OpExecutorHooks (for the main looper's executor):
  void PostFrames(int32_t frames, simkit::SimDuration frame_cpu_mean) override;
  void PostToWorker(const OpNode* node) override;
  uint64_t PostAsync(const OpNode* node) override;
  uint64_t BeginAsyncWait(int32_t slot, telemetry::FrameId wait_frame) override;
  bool AsyncReady(uint64_t edge) override;
  void EndAsyncWait(uint64_t edge) override;

 private:
  // One posted-but-not-yet-completed async task, keyed by its causal edge id.
  struct AsyncTask {
    size_t thread_index = 0;  // into async_loopers_
    int64_t execution_id = 0;
    bool completed = false;
  };

  void OnMainLog(bool begin, const Message& message);
  void OnMainDone(const Message& message, std::vector<OpContribution> contributions);
  void OnAsyncLog(size_t thread_index, bool begin, const Message& message);
  void OnRenderIdle(int64_t execution_id);
  void Quiesce(ActionExecution& execution);

  kernelsim::Kernel* kernel_;
  const AppSpec* spec_;
  SymbolTable symbols_;  // built before the loopers, which hold pointers into it
  kernelsim::ProcessId pid_;
  std::unique_ptr<Looper> main_looper_;
  std::unique_ptr<RenderThread> render_thread_;
  std::unique_ptr<Looper> worker_looper_;
  std::vector<AppObserver*> observers_;
  std::vector<std::unique_ptr<Looper>> async_loopers_;
  std::unordered_map<int64_t, ActionExecution> executions_;
  // Async bookkeeping. Edge ids come from a per-app counter, so the same seed yields the
  // same edges in every run. future_slots_ maps (execution, slot) -> edge and is pruned at
  // quiesce; async_tasks_ entries are erased when their task completes.
  std::unordered_map<uint64_t, AsyncTask> async_tasks_;
  std::unordered_map<int64_t, std::unordered_map<int32_t, uint64_t>> future_slots_;
  uint64_t next_async_edge_ = 1;
  uint64_t blocked_edge_ = 0;  // edge the main thread is blocked on (0 = none)
  simkit::SimTime wait_started_ = 0;
  size_t executor_rr_ = 0;  // round-robin cursor over the executor pool
  int64_t next_execution_id_ = 1;
  int64_t current_dispatch_execution_ = 0;
};

}  // namespace droidsim

#endif  // SRC_DROIDSIM_APP_H_
