#include "src/droidsim/api.h"

#include <array>
#include <utility>

namespace droidsim {

bool IsUiClass(std::string_view clazz) {
  static constexpr std::array<std::string_view, 6> kUiPrefixes = {
      "android.view", "android.widget", "android.webkit",
      "android.animation", "android.transition", "androidx.recyclerview",
  };
  for (std::string_view prefix : kUiPrefixes) {
    if (clazz.substr(0, prefix.size()) == prefix) {
      return true;
    }
  }
  return false;
}

const ApiSpec* ApiRegistry::Register(ApiSpec spec) {
  std::string key = spec.FullName();
  spec.full_name = key;
  auto it = by_name_.find(key);
  if (it != by_name_.end()) {
    *it->second = std::move(spec);
    return it->second;
  }
  specs_.push_back(std::make_unique<ApiSpec>(std::move(spec)));
  ApiSpec* ptr = specs_.back().get();
  by_name_.emplace(std::move(key), ptr);
  return ptr;
}

std::vector<const ApiSpec*> ApiRegistry::AllSpecs() const {
  std::vector<const ApiSpec*> all;
  all.reserve(specs_.size());
  for (const auto& spec : specs_) {
    all.push_back(spec.get());
  }
  return all;
}

const ApiSpec* ApiRegistry::Find(std::string_view full_name) const {
  auto it = by_name_.find(full_name);
  return it == by_name_.end() ? nullptr : it->second;
}

kernelsim::MicroArchProfile UiUarch() {
  kernelsim::MicroArchProfile uarch;
  uarch.instructions_per_ns = 1.8;
  uarch.branches_per_kinstr = 240.0;
  uarch.branch_miss_ratio = 0.03;
  uarch.cache_refs_per_kinstr = 25.0;
  uarch.cache_miss_ratio = 0.03;
  return uarch;
}

kernelsim::MicroArchProfile RenderUarch() {
  kernelsim::MicroArchProfile uarch;
  uarch.instructions_per_ns = 2.4;
  uarch.l1d_stores_per_kinstr = 200.0;
  uarch.cache_refs_per_kinstr = 28.0;
  uarch.cache_miss_ratio = 0.02;
  uarch.branches_per_kinstr = 90.0;
  return uarch;
}

kernelsim::MicroArchProfile ParserUarch() {
  kernelsim::MicroArchProfile uarch;
  uarch.instructions_per_ns = 1.4;
  uarch.cache_refs_per_kinstr = 42.0;
  uarch.cache_miss_ratio = 0.12;
  uarch.dtlb_refill_per_kinstr = 2.0;
  uarch.branches_per_kinstr = 210.0;
  uarch.branch_miss_ratio = 0.05;
  return uarch;
}

kernelsim::MicroArchProfile DecoderUarch() {
  kernelsim::MicroArchProfile uarch;
  uarch.instructions_per_ns = 2.8;
  uarch.l1d_loads_per_kinstr = 420.0;
  uarch.l1d_stores_per_kinstr = 240.0;
  uarch.cache_refs_per_kinstr = 48.0;
  uarch.cache_miss_ratio = 0.08;
  uarch.branches_per_kinstr = 60.0;
  return uarch;
}

kernelsim::MicroArchProfile DatabaseUarch() {
  kernelsim::MicroArchProfile uarch;
  uarch.instructions_per_ns = 1.2;
  uarch.cache_refs_per_kinstr = 38.0;
  uarch.cache_miss_ratio = 0.15;
  uarch.dtlb_refill_per_kinstr = 3.0;
  uarch.branches_per_kinstr = 160.0;
  uarch.branch_miss_ratio = 0.04;
  return uarch;
}

kernelsim::MicroArchProfile DefaultUarch() { return kernelsim::MicroArchProfile{}; }

}  // namespace droidsim
