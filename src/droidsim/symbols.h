// Per-app symbol interning. Every frame an app can ever put on a stack — event handlers and
// op call sites — is interned once, at App construction, into a SymbolTable that maps it to a
// dense u32 FrameId. The hot paths (executor stack push, 20 ms stack sampling, occurrence
// counting in the Trace Analyzer) then move integers around; strings are materialized only
// when a diagnosis or report is rendered.
//
// Determinism: ids are assigned by a canonical walk of the AppSpec — actions in declaration
// order, each action's input events in order, each event's handler frame first and then its
// op tree depth-first. The walk depends only on the spec, so the same app gets identical ids
// in every run and in every fleet shard regardless of --jobs.
//
// The executor never interns at runtime: spec nodes are keyed by pointer during the walk
// (OpNode* / InputEventSpec*), so pushing a frame is one pointer-hash lookup, no allocation.
#ifndef SRC_DROIDSIM_SYMBOLS_H_
#define SRC_DROIDSIM_SYMBOLS_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/droidsim/operation.h"
#include "src/droidsim/stack.h"

namespace droidsim {

class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  // Interns `frame`, deduplicating on (function, clazz, file, line) — the same identity the
  // Trace Analyzer's census keys on. Returns the existing id for a known frame.
  FrameId Intern(StackFrame frame);

  // Canonical spec walk (see file comment): interns the handler frame of every input event
  // and every op node of `action`, keying the spec objects by pointer for IdFor().
  void IndexAction(const ActionSpec& action);

  // Id of a spec object registered by IndexAction. The spec must have been indexed.
  FrameId IdFor(const void* spec_node) const { return by_ptr_.at(spec_node); }

  const StackFrame& Frame(FrameId id) const { return frames_[id]; }
  // Precomputed IsUiClass(frame.clazz) bit, so classification never touches strings.
  bool IsUi(FrameId id) const { return is_ui_[id] != 0; }
  size_t size() const { return frames_.size(); }

  // True when any frame of `trace` matches (clazz, function) — the symbolic containment
  // query tests and walkthroughs use.
  bool TraceContains(const StackTrace& trace, std::string_view clazz,
                     std::string_view function) const {
    for (FrameId id : trace.frames) {
      const StackFrame& frame = frames_[id];
      if (frame.clazz == clazz && frame.function == function) {
        return true;
      }
    }
    return false;
  }

 private:
  void IndexOp(const OpNode& node);

  std::vector<StackFrame> frames_;           // indexed by FrameId
  std::vector<uint8_t> is_ui_;               // indexed by FrameId
  std::unordered_map<std::string, FrameId> by_key_;  // content dedup
  std::unordered_map<const void*, FrameId> by_ptr_;  // spec object -> id
};

}  // namespace droidsim

#endif  // SRC_DROIDSIM_SYMBOLS_H_
