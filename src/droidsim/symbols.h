// The droidsim host's symbol interning: a telemetry::SymbolTable plus the canonical AppSpec
// walk that fills it. Every frame an app can ever put on a stack — event handlers and op call
// sites — is interned once, at App construction, into a table mapping it to a dense u32
// telemetry::FrameId. The hot paths (executor stack push, 20 ms stack sampling, occurrence counting in
// the Trace Analyzer) then move integers around; strings are materialized only when a
// diagnosis or report is rendered.
//
// Determinism: ids are assigned by a canonical walk of the AppSpec — actions in declaration
// order, each action's input events in order, each event's handler frame first and then its
// op tree depth-first. The walk depends only on the spec, so the same app gets identical ids
// in every run and in every fleet shard regardless of --jobs.
//
// The executor never interns at runtime: spec nodes are keyed by pointer during the walk
// (OpNode* / InputEventSpec*), so pushing a frame is one pointer-hash lookup, no allocation.
//
// UI-class classification (IsUiClass, an Android-framework judgement) happens here, at intern
// time: the substrate-neutral base table just stores the bit the core's classifier reads.
#ifndef SRC_DROIDSIM_SYMBOLS_H_
#define SRC_DROIDSIM_SYMBOLS_H_

#include <unordered_map>

#include "src/droidsim/operation.h"
#include "src/telemetry/stack.h"
#include "src/telemetry/symbols.h"

namespace droidsim {

class SymbolTable : public telemetry::SymbolTable {
 public:
  SymbolTable() = default;

  // Interns `frame`, classifying frame.clazz against the Android UI-class list.
  // `self_developed` carries the ApiSpec's provenance bit through to the core's table.
  telemetry::FrameId Intern(telemetry::StackFrame frame, bool self_developed = false);

  // Canonical spec walk (see file comment): interns the handler frame of every input event
  // and every op node of `action`, keying the spec objects by pointer for IdFor().
  void IndexAction(const ActionSpec& action);

  // Id of a spec object registered by IndexAction. The spec must have been indexed.
  telemetry::FrameId IdFor(const void* spec_node) const { return by_ptr_.at(spec_node); }

 private:
  void IndexOp(const OpNode& node);

  std::unordered_map<const void*, telemetry::FrameId> by_ptr_;  // spec object -> id
};

}  // namespace droidsim

#endif  // SRC_DROIDSIM_SYMBOLS_H_
