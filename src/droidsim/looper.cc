#include "src/droidsim/looper.h"

#include <cassert>
#include <utility>

namespace droidsim {

Looper::Looper(kernelsim::Kernel* kernel, kernelsim::ProcessId pid,
               const std::string& thread_name, simkit::Rng rng, OpExecutorHooks* hooks,
               const int32_t* device_ids, const SymbolTable* symbols)
    : kernel_(kernel),
      symbols_(symbols),
      executor_(kernel->sim(), rng, hooks, device_ids, symbols) {
  tid_ = kernel_->SpawnThread(pid, thread_name, this);
}

void Looper::Post(Message message) {
  if (message.id == 0) {
    message.id = next_message_id_++;
  }
  queue_.push_back(message);
  kernel_->Wake(tid_);
}

std::optional<int64_t> Looper::CurrentMessageId() const {
  if (!current_.has_value()) {
    return std::nullopt;
  }
  return current_->id;
}

kernelsim::Segment Looper::NextSegment() {
  for (;;) {
    if (executor_.Active()) {
      if (std::optional<kernelsim::Segment> segment = executor_.Next()) {
        return *segment;
      }
      FinishCurrentMessage();
      continue;
    }
    if (current_.has_value()) {
      // The executor produced nothing (empty op list); still close the message out.
      FinishCurrentMessage();
      continue;
    }
    if (!queue_.empty()) {
      Message message = queue_.front();
      queue_.pop_front();
      BeginMessage(message);
      continue;
    }
    return kernelsim::BlockSegment{};
  }
}

void Looper::BeginMessage(Message message) {
  current_ = message;
  ++dispatched_;
  for (const MessageLogger& logger : loggers_) {
    logger(/*begin=*/true, *current_);
  }
  if (message.event != nullptr) {
    executor_.Begin(symbols_->IdFor(message.event), message.event->ops);
  } else if (message.subtree != nullptr) {
    executor_.BeginSubtree(message.subtree);
  } else if (message.async_task != nullptr) {
    // The task body runs under the submit node's frame (the Runnable/Callable entry), so
    // async-thread samples root at the task and descend into its real work.
    executor_.Begin(symbols_->IdFor(message.async_task), message.async_task->children);
  }
}

void Looper::FinishCurrentMessage() {
  assert(current_.has_value());
  Message message = *current_;
  std::vector<OpContribution> contributions = executor_.TakeContributions();
  if (done_) {
    done_(message, std::move(contributions));
  }
  for (const MessageLogger& logger : loggers_) {
    logger(/*begin=*/false, message);
  }
  current_.reset();
}

}  // namespace droidsim
