// Fleet topology: who owns which sessions, which workers hold a live lease, and what the
// coordinator must do when a lease dies. Pure bookkeeping — no sockets, no threads, no
// clocks of its own (every time is a caller-supplied now_ms) — so the lease/fencing battery
// drives it with a fake clock and the coordinator wraps it under one mutex.
//
// Ownership model: AssignRange() partitions a contiguous session-id interval into one
// contiguous sub-range per worker (fleetd's shard-group shape). Ownership then moves in two
// ways, both of which bump the fencing epoch:
//   MoveRanges(from, to)  drain-migration: every range and pin owned by `from` transfers to
//                         `to`; `from` stays alive and can receive work again later.
//   Fence(victim)         failover: `victim` is permanently out (crash, lease expiry, failed
//                         self-watchdog lease). Its ranges and pins transfer to the lowest-
//                         indexed live worker and OnHeartbeatAck() refuses to resurrect it.
//
// Epochs are the fencing primitive end to end: every control frame the coordinator sends
// carries the current epoch, workers remember the highest epoch they have seen, and a frame
// carrying an older epoch is answered kStaleEpoch and ignored — a superseded coordinator (or
// a delayed frame addressed to a pre-failover world) cannot mutate a worker's sessions.
#ifndef SRC_FLEETD_TOPOLOGY_H_
#define SRC_FLEETD_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace fleetd {

// A contiguous inclusive session-id interval. lo > hi encodes the empty range (a fleet with
// more workers than sessions leaves the tail workers empty).
struct SessionRange {
  uint64_t lo = 1;
  uint64_t hi = 0;
  bool empty() const { return lo > hi; }
  bool Contains(uint64_t id) const { return id >= lo && id <= hi; }
  uint64_t size() const { return empty() ? 0 : hi - lo + 1; }
};

// Splits [first, last] into `workers` contiguous ranges, sizes differing by at most one
// (the remainder goes to the front). Deterministic: a pure function of its arguments.
std::vector<SessionRange> PartitionSessions(uint64_t first, uint64_t last, int32_t workers);

struct TopologyOptions {
  // A lease is live for this long after its last applied heartbeat ack; Tick() fences any
  // worker whose lease has expired.
  int64_t lease_timeout_ms = 2000;
};

// The health a worker reported on its last heartbeat ack (wire.h kHeartbeatAck fields).
struct WorkerHealth {
  uint64_t live_sessions = 0;
  uint64_t records_applied = 0;
  bool applier_stuck = false;  // current self-watchdog wedge (clears on progress)
  bool lease_failed = false;   // sticky: the worker itself forfeited its lease
};

// One failover Tick() decided on: `victim` is fenced (at `epoch`), its sessions belong to
// `target` now. target < 0 means no live worker remains — total outage.
struct FailoverDecision {
  int32_t victim = -1;
  int32_t target = -1;
  uint64_t epoch = 0;
  std::string reason;
};

class Topology {
 public:
  explicit Topology(int32_t workers, const TopologyOptions& options = {});

  int32_t workers() const { return static_cast<int32_t>(slots_.size()); }
  uint64_t epoch() const { return epoch_; }

  // Partitions [first, last] across all workers (fenced workers' shares land on their
  // failover targets immediately). Callable more than once; later ranges stack.
  void AssignRange(uint64_t first, uint64_t last);

  // Current owner of `id`: the pin if one exists, else the worker whose range contains it.
  // -1 when nobody owns it (outside every assigned range, or total outage).
  int32_t OwnerOf(uint64_t id) const;

  // Re-pins one session (post-replay ownership after a migration or failover).
  void PinSession(uint64_t id, int32_t worker);

  // Lease protocol. Register starts the lease clock; an ack renews it (and records health)
  // unless the worker is fenced — a fenced worker's acks return false and change nothing.
  void Register(int32_t worker, int64_t now_ms);
  bool OnHeartbeatAck(int32_t worker, int64_t now_ms, const WorkerHealth& health);

  // Fences every registered worker whose lease expired or whose last health said
  // lease_failed. Returns the decisions in worker order; each fence bumps the epoch.
  std::vector<FailoverDecision> Tick(int64_t now_ms);

  // Permanently fences `worker` (idempotent: refenced workers return -1 with no epoch
  // bump). Transfers its ranges and pins to the lowest-indexed live worker and returns that
  // target, or -1 on total outage.
  int32_t Fence(int32_t worker, const std::string& reason);

  // Drain-migration: moves every range and pin owned by `from` to `to`, bumps the epoch,
  // and returns it. Throws std::invalid_argument when either end is fenced or out of range.
  uint64_t MoveRanges(int32_t from, int32_t to);

  bool fenced(int32_t worker) const;
  const std::string& fence_reason(int32_t worker) const;
  const WorkerHealth& health(int32_t worker) const;
  int64_t lease_expires_ms(int32_t worker) const;
  int32_t live_workers() const;

 private:
  struct Slot {
    bool registered = false;
    bool fenced = false;
    int64_t lease_expires_ms = 0;
    WorkerHealth health;
    std::string fence_reason;
  };
  struct Assignment {
    SessionRange range;
    int32_t owner = -1;
  };

  void CheckWorker(int32_t worker) const;
  int32_t LowestLive() const;

  TopologyOptions options_;
  std::vector<Slot> slots_;
  std::vector<Assignment> assignments_;
  std::unordered_map<uint64_t, int32_t> pins_;
  uint64_t epoch_ = 1;
};

}  // namespace fleetd

#endif  // SRC_FLEETD_TOPOLOGY_H_
