#include "src/fleetd/coordinator.h"

#include <sys/socket.h>

#include <chrono>
#include <stdexcept>
#include <utility>

#include "src/hosts/mux_log.h"
#include "src/netd/result_codec.h"
#include "src/netd/wire.h"

namespace fleetd {

namespace {

int32_t CheckedWorkerCount(const CoordinatorOptions& options) {
  if (options.workers.empty()) {
    throw std::invalid_argument("Coordinator: at least one worker endpoint required");
  }
  return static_cast<int32_t>(options.workers.size());
}

// The container kEnd frame — the BYE a worker link sends once the fleet run is folded.
std::string ByeFrame() {
  return std::string(1, static_cast<char>(hangdoctor::MuxFrameTag::kEnd));
}

}  // namespace

Coordinator::Coordinator(const CoordinatorOptions& options)
    : options_(options),
      topology_(CheckedWorkerCount(options),
                TopologyOptions{.lease_timeout_ms = options.lease_timeout_ms}) {
  links_.reserve(options_.workers.size());
  for (size_t w = 0; w < options_.workers.size(); ++w) {
    const WorkerEndpoint& endpoint = options_.workers[w];
    auto link = std::make_unique<Link>();
    if (endpoint.fd >= 0) {
      link->client.Adopt(endpoint.fd);
    } else if (!link->client.Connect(endpoint.port)) {
      throw std::runtime_error("fleetd: worker " + std::to_string(w) +
                               " connect failed: " + link->client.error());
    }
    if (!link->client.SendHello(options_.wire_version, netd::HelloRole::kWorker)) {
      throw std::runtime_error("fleetd: worker " + std::to_string(w) +
                               " hello send failed: " + link->client.error());
    }
    netd::Reply hello;
    if (!link->client.ReadReply(&hello) || hello.tag != netd::ReplyTag::kHelloOk) {
      throw std::runtime_error("fleetd: worker " + std::to_string(w) +
                               " rejected the worker-role hello" +
                               (hello.message.empty() ? "" : ": " + hello.message));
    }
    link->alive = true;
    topology_.Register(static_cast<int32_t>(w), /*now_ms=*/0);
    links_.push_back(std::move(link));
  }
  for (size_t w = 0; w < links_.size(); ++w) {
    links_[w]->reader = std::thread(&Coordinator::ReaderLoop, this, static_cast<int32_t>(w));
  }
}

Coordinator::~Coordinator() {
  bool need_finish = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    need_finish = !finished_;
  }
  if (need_finish) {
    Finish();
  }
  for (auto& link : links_) {
    if (link->reader.joinable()) {
      link->reader.join();
    }
  }
}

void Coordinator::AssignRange(uint64_t first, uint64_t last) {
  std::lock_guard<std::mutex> lock(mu_);
  topology_.AssignRange(first, last);
}

bool Coordinator::RouteFrame(uint64_t session, const std::string& frame, std::string* error) {
  std::unique_lock<std::mutex> lock(mu_);
  if (frame.empty()) {
    if (error) *error = "route: empty frame";
    return false;
  }
  auto tag = static_cast<hangdoctor::MuxFrameTag>(static_cast<uint8_t>(frame[0]));
  if (tag != hangdoctor::MuxFrameTag::kOpenSession &&
      tag != hangdoctor::MuxFrameTag::kRecord &&
      tag != hangdoctor::MuxFrameTag::kCloseSession) {
    if (error) *error = "route: frame is not a session frame";
    return false;
  }
  uint64_t framed_id = 0;
  size_t pos = 1;
  if (!netd::GetVarint(frame, &pos, &framed_id) || framed_id != session) {
    if (error) *error = "route: frame session id mismatch";
    return false;
  }

  SessionState& state = sessions_[session];
  state.outcome.id = telemetry::SessionId{session};
  state.tap.push_back(frame);
  if (tag == hangdoctor::MuxFrameTag::kCloseSession) {
    state.close_routed = true;
  }

  while (true) {
    int32_t owner = topology_.OwnerOf(session);
    if (owner < 0) {
      if (error) *error = "route: no live owner for session " + std::to_string(session);
      return false;
    }
    Link& link = *links_[static_cast<size_t>(owner)];
    if (link.alive) {
      state.last_owner = owner;
      if (link.client.SendFrame(frame)) {
        return true;
      }
    }
    // The owner's link is gone. Fencing it replays every unfinished session it held — the
    // tap already contains this frame, so the replay delivers it to the new owner.
    CascadeFenceLocked(owner, link.alive ? "send failed: " + link.client.error()
                                         : "link down");
    if (total_outage_) {
      if (error) *error = "route: total outage — no live worker remains";
      return false;
    }
    if (sessions_[session].done) {
      return true;  // replay landed it (or aborted it); either way it is final
    }
    if (sessions_[session].last_owner >= 0 &&
        !topology_.fenced(sessions_[session].last_owner)) {
      return true;  // delivered via replay onto the failover target
    }
  }
}

bool Coordinator::MigrateWorker(int32_t from, int32_t to, std::string* error) {
  std::unique_lock<std::mutex> lock(mu_);
  if (from < 0 || to < 0 || from >= topology_.workers() || to >= topology_.workers() ||
      from == to) {
    if (error) *error = "migrate: invalid worker pair";
    return false;
  }
  if (topology_.fenced(from) || topology_.fenced(to)) {
    if (error) *error = "migrate: fenced worker";
    return false;
  }
  if (!links_[static_cast<size_t>(from)]->alive || !links_[static_cast<size_t>(to)]->alive) {
    if (error) *error = "migrate: dead link";
    return false;
  }

  std::vector<uint64_t> ids;
  for (auto& [id, state] : sessions_) {
    if (!state.done && state.last_owner == from) {
      ids.push_back(id);
    }
  }
  uint64_t epoch = topology_.MoveRanges(from, to);  // routing to `from` stops here
  if (ids.empty()) {
    return true;  // ranges moved; nothing live to hand off
  }

  Link& old_owner = *links_[static_cast<size_t>(from)];
  if (!old_owner.client.SendFrame(netd::BuildHandoff(epoch, ids))) {
    CascadeFenceLocked(from, "handoff send failed");
    return true;  // recovered by replay instead of drained
  }
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options_.handoff_timeout_ms);
  bool acked = cv_.wait_until(lock, deadline, [&] {
    return old_owner.handoff_ack_epoch >= epoch || !old_owner.alive || total_outage_;
  });
  if (total_outage_) {
    return true;
  }
  if (!acked || !old_owner.alive) {
    if (old_owner.alive) {
      CascadeFenceLocked(from, "handoff timed out");
    }
    return true;  // the reader's failover already replayed the sessions
  }

  // The old owner discarded every named session strictly after its last routed record.
  // Replay each retained prefix on the new owner and resume routing there.
  for (uint64_t id : ids) {
    SessionState& state = sessions_[id];
    if (state.done) {
      continue;  // its result landed before the ranges moved
    }
    state.last_owner = to;
  }
  stats_.migrated += static_cast<int64_t>(ids.size());
  for (uint64_t id : ids) {
    SessionState& state = sessions_[id];
    if (state.done || state.last_owner != to) {
      continue;
    }
    if (!ReplayTapLocked(to, state)) {
      CascadeFenceLocked(to, "migration replay failed");
      break;
    }
  }
  return true;
}

void Coordinator::CrashWorker(int32_t worker) {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker < 0 || worker >= topology_.workers()) {
    return;
  }
  Link& link = *links_[static_cast<size_t>(worker)];
  if (link.client.connected()) {
    ::shutdown(link.client.fd(), SHUT_RDWR);
  }
  link.alive = false;
  CascadeFenceLocked(worker, "crash injected");
}

void Coordinator::Pulse(int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  for (int32_t w = 0; w < topology_.workers(); ++w) {
    Link& link = *links_[static_cast<size_t>(w)];
    if (topology_.fenced(w)) {
      link.ack_pending = false;
      continue;
    }
    if (link.heartbeat_lost) {
      link.ack_pending = false;  // a lost network loses the acks too
      continue;
    }
    if (link.ack_pending) {
      topology_.OnHeartbeatAck(w, now_ms, link.ack_health);
      link.ack_pending = false;
    }
  }
  for (const FailoverDecision& decision : topology_.Tick(now_ms)) {
    ++stats_.failovers;
    FailoverLocked(decision.victim, decision.target, decision.reason);
  }
  for (int32_t w = 0; w < topology_.workers(); ++w) {
    Link& link = *links_[static_cast<size_t>(w)];
    if (topology_.fenced(w) || !link.alive || link.heartbeat_lost) {
      continue;
    }
    if (!link.client.SendFrame(netd::BuildHeartbeat(topology_.epoch()))) {
      CascadeFenceLocked(w, "heartbeat send failed");
    }
  }
}

void Coordinator::SetHeartbeatLoss(int32_t worker, bool lost) {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker < 0 || worker >= topology_.workers()) {
    return;
  }
  links_[static_cast<size_t>(worker)]->heartbeat_lost = lost;
}

bool Coordinator::WaitForResults(int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  return cv_.wait_until(lock, deadline, [&] {
    for (const auto& [id, state] : sessions_) {
      if (state.close_routed && !state.done) {
        return false;
      }
    }
    return true;
  });
}

FleetReport Coordinator::Finish() {
  FleetReport report;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (finished_) {
      return report;
    }
    finished_ = true;
    for (auto& [id, state] : sessions_) {
      if (!state.done) {
        state.outcome.aborted = true;
        state.outcome.stream_error = "no result before Finish";
        FinishSessionLocked(id, &state);
      }
      report.outcomes.push_back(state.outcome);
    }
    std::vector<hangdoctor::SessionResult> clean;
    for (const netd::NetSessionOutcome& outcome : report.outcomes) {
      if (!outcome.aborted) {
        clean.push_back(outcome.result);
      }
    }
    report.merged = hangdoctor::MergeSessionReports(clean);
    report.stats = stats_;
    for (int32_t w = 0; w < topology_.workers(); ++w) {
      Link& link = *links_[static_cast<size_t>(w)];
      if (link.alive && !topology_.fenced(w)) {
        link.client.SendFrame(ByeFrame());
      }
      if (link.client.connected()) {
        ::shutdown(link.client.fd(), SHUT_RDWR);  // wake the reader
      }
      link.alive = false;
    }
  }
  for (auto& link : links_) {
    if (link->reader.joinable()) {
      link->reader.join();
    }
    link->client.Close();
  }
  return report;
}

int32_t Coordinator::OwnerOf(uint64_t session) {
  std::lock_guard<std::mutex> lock(mu_);
  return topology_.OwnerOf(session);
}

uint64_t Coordinator::epoch() {
  std::lock_guard<std::mutex> lock(mu_);
  return topology_.epoch();
}

bool Coordinator::fenced(int32_t worker) {
  std::lock_guard<std::mutex> lock(mu_);
  return topology_.fenced(worker);
}

WorkerHealth Coordinator::LastHealth(int32_t worker) {
  std::lock_guard<std::mutex> lock(mu_);
  return topology_.health(worker);
}

CoordinatorStats Coordinator::stats() {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Coordinator::ReaderLoop(int32_t worker) {
  Link& link = *links_[static_cast<size_t>(worker)];
  netd::Reply reply;
  while (link.client.ReadReply(&reply)) {
    std::lock_guard<std::mutex> lock(mu_);
    if (finished_) {
      return;
    }
    OnReplyLocked(worker, reply);
  }
  std::lock_guard<std::mutex> lock(mu_);
  link.alive = false;
  if (!finished_) {
    LinkDownLocked(worker, "link closed");
  }
}

void Coordinator::OnReplyLocked(int32_t worker, const netd::Reply& reply) {
  Link& link = *links_[static_cast<size_t>(worker)];
  switch (reply.tag) {
    case netd::ReplyTag::kSessionResult: {
      auto it = sessions_.find(reply.session_id);
      if (it == sessions_.end() || it->second.done) {
        return;
      }
      // Owner gate: only the session's current owner may conclude it. A result from a
      // worker the session migrated away from (or a fenced worker) is a stale duplicate —
      // the live owner replays the same prefix and produces the identical result.
      if (topology_.fenced(worker) || topology_.OwnerOf(reply.session_id) != worker) {
        return;
      }
      hangdoctor::SessionResult result;
      std::string decode_error;
      if (!netd::DecodeSessionResult(reply.result, &result, &decode_error)) {
        it->second.outcome.aborted = true;
        it->second.outcome.stream_error = "result decode failed: " + decode_error;
      } else {
        it->second.outcome.aborted = false;
        it->second.outcome.result = std::move(result);
        ++stats_.results;
      }
      FinishSessionLocked(it->first, &it->second);
      return;
    }
    case netd::ReplyTag::kBusy: {
      auto it = sessions_.find(reply.session_id);
      if (it == sessions_.end() || it->second.done) {
        return;
      }
      if (topology_.OwnerOf(reply.session_id) != worker) {
        return;
      }
      it->second.outcome.aborted = true;
      it->second.outcome.stream_error = "refused: worker admission (busy)";
      FinishSessionLocked(it->first, &it->second);
      return;
    }
    case netd::ReplyTag::kHeartbeatAck:
      link.ack_pending = true;
      link.ack_health.live_sessions = reply.live_sessions;
      link.ack_health.records_applied = reply.records_applied;
      link.ack_health.applier_stuck = reply.applier_stuck;
      link.ack_health.lease_failed = reply.lease_failed;
      return;
    case netd::ReplyTag::kStaleEpoch:
      ++stats_.stale_epochs;
      return;
    case netd::ReplyTag::kHandoffAck:
      link.handoff_ack_epoch = reply.epoch;
      link.handoff_discarded = reply.discarded;
      cv_.notify_all();
      return;
    case netd::ReplyTag::kSessionClosed:
    case netd::ReplyTag::kBye:
    case netd::ReplyTag::kHelloOk:
      return;  // kSessionResult carries everything the fold needs
    case netd::ReplyTag::kError:
      // Sticky protocol error: the worker closes next, and the reader's EOF path fences it.
      return;
  }
}

void Coordinator::LinkDownLocked(int32_t worker, const std::string& reason) {
  CascadeFenceLocked(worker, reason);
}

void Coordinator::CascadeFenceLocked(int32_t worker, const std::string& reason) {
  Link& link = *links_[static_cast<size_t>(worker)];
  if (link.client.connected()) {
    ::shutdown(link.client.fd(), SHUT_RDWR);
  }
  link.alive = false;
  if (topology_.fenced(worker)) {
    return;
  }
  int32_t target = topology_.Fence(worker, reason);
  ++stats_.failovers;
  FailoverLocked(worker, target, reason);
}

void Coordinator::FailoverLocked(int32_t victim, int32_t target, const std::string& reason) {
  Link& victim_link = *links_[static_cast<size_t>(victim)];
  if (victim_link.client.connected()) {
    ::shutdown(victim_link.client.fd(), SHUT_RDWR);
  }
  victim_link.alive = false;
  if (target < 0) {
    total_outage_ = true;
    AbortUnfinishedLocked("total outage: " + reason);
    cv_.notify_all();
    return;
  }
  // Retarget every unfinished session the victim held *before* replaying any, so a cascade
  // (the target dying mid-replay) re-collects all of them under the next target.
  std::vector<uint64_t> ids;
  for (auto& [id, state] : sessions_) {
    if (!state.done && state.last_owner == victim) {
      state.last_owner = target;
      ids.push_back(id);
    }
  }
  stats_.recovered += static_cast<int64_t>(ids.size());
  for (uint64_t id : ids) {
    SessionState& state = sessions_[id];
    if (state.done || state.last_owner != target) {
      continue;
    }
    if (!ReplayTapLocked(target, state)) {
      CascadeFenceLocked(target, "failover replay failed");
      return;
    }
  }
}

bool Coordinator::ReplayTapLocked(int32_t target, const SessionState& state) {
  Link& link = *links_[static_cast<size_t>(target)];
  if (!link.alive) {
    return false;
  }
  for (const std::string& frame : state.tap) {
    if (!link.client.SendFrame(frame)) {
      return false;
    }
  }
  return true;
}

void Coordinator::FinishSessionLocked(uint64_t id, SessionState* state) {
  state->done = true;
  state->tap.clear();
  state->tap.shrink_to_fit();
  if (options_.on_session_done) {
    options_.on_session_done(id, state->outcome.aborted);
  }
  cv_.notify_all();
}

void Coordinator::AbortUnfinishedLocked(const std::string& reason) {
  for (auto& [id, state] : sessions_) {
    if (!state.done) {
      state.outcome.aborted = true;
      state.outcome.stream_error = reason;
      FinishSessionLocked(id, &state);
    }
  }
}

}  // namespace fleetd
