#include "src/fleetd/topology.h"

#include <stdexcept>

namespace fleetd {

std::vector<SessionRange> PartitionSessions(uint64_t first, uint64_t last, int32_t workers) {
  if (workers < 1) {
    throw std::invalid_argument("PartitionSessions: workers must be >= 1");
  }
  std::vector<SessionRange> ranges(static_cast<size_t>(workers));
  if (first > last) {
    return ranges;  // all empty
  }
  uint64_t total = last - first + 1;
  uint64_t base = total / static_cast<uint64_t>(workers);
  uint64_t extra = total % static_cast<uint64_t>(workers);
  uint64_t lo = first;
  for (size_t w = 0; w < ranges.size(); ++w) {
    uint64_t size = base + (static_cast<uint64_t>(w) < extra ? 1 : 0);
    if (size == 0) {
      ranges[w] = SessionRange{1, 0};
      continue;
    }
    ranges[w] = SessionRange{lo, lo + size - 1};
    lo += size;
  }
  return ranges;
}

Topology::Topology(int32_t workers, const TopologyOptions& options) : options_(options) {
  if (workers < 1) {
    throw std::invalid_argument("Topology: workers must be >= 1");
  }
  if (options_.lease_timeout_ms < 1) {
    throw std::invalid_argument("Topology: lease_timeout_ms must be >= 1");
  }
  slots_.resize(static_cast<size_t>(workers));
}

void Topology::CheckWorker(int32_t worker) const {
  if (worker < 0 || worker >= workers()) {
    throw std::invalid_argument("Topology: worker index out of range");
  }
}

int32_t Topology::LowestLive() const {
  for (int32_t w = 0; w < workers(); ++w) {
    if (!slots_[static_cast<size_t>(w)].fenced) {
      return w;
    }
  }
  return -1;
}

void Topology::AssignRange(uint64_t first, uint64_t last) {
  std::vector<SessionRange> ranges = PartitionSessions(first, last, workers());
  for (size_t w = 0; w < ranges.size(); ++w) {
    if (ranges[w].empty()) {
      continue;
    }
    int32_t owner = static_cast<int32_t>(w);
    if (slots_[w].fenced) {
      owner = LowestLive();  // a dead worker's share lands on the failover target
    }
    if (owner < 0) {
      continue;  // total outage: the range stays unowned
    }
    assignments_.push_back(Assignment{ranges[w], owner});
  }
}

int32_t Topology::OwnerOf(uint64_t id) const {
  // A fenced owner is no owner: on total outage the last Fence() has no live target to
  // retarget assignments to, so they keep naming their dead worker.
  auto live_or_none = [this](int32_t owner) {
    return owner >= 0 && !slots_[static_cast<size_t>(owner)].fenced ? owner : -1;
  };
  auto pin = pins_.find(id);
  if (pin != pins_.end()) {
    return live_or_none(pin->second);
  }
  for (const Assignment& a : assignments_) {
    if (a.range.Contains(id)) {
      return live_or_none(a.owner);
    }
  }
  return -1;
}

void Topology::PinSession(uint64_t id, int32_t worker) {
  CheckWorker(worker);
  pins_[id] = worker;
}

void Topology::Register(int32_t worker, int64_t now_ms) {
  CheckWorker(worker);
  Slot& slot = slots_[static_cast<size_t>(worker)];
  slot.registered = true;
  slot.lease_expires_ms = now_ms + options_.lease_timeout_ms;
}

bool Topology::OnHeartbeatAck(int32_t worker, int64_t now_ms, const WorkerHealth& health) {
  CheckWorker(worker);
  Slot& slot = slots_[static_cast<size_t>(worker)];
  if (slot.fenced || !slot.registered) {
    return false;
  }
  slot.health = health;
  slot.lease_expires_ms = now_ms + options_.lease_timeout_ms;
  return true;
}

std::vector<FailoverDecision> Topology::Tick(int64_t now_ms) {
  std::vector<FailoverDecision> decisions;
  for (int32_t w = 0; w < workers(); ++w) {
    const Slot& slot = slots_[static_cast<size_t>(w)];
    if (!slot.registered || slot.fenced) {
      continue;
    }
    std::string reason;
    if (slot.health.lease_failed) {
      reason = "lease forfeited by self-watchdog";
    } else if (now_ms >= slot.lease_expires_ms) {
      reason = "lease expired";
    } else {
      continue;
    }
    FailoverDecision decision;
    decision.victim = w;
    decision.reason = reason;
    decision.target = Fence(w, reason);
    decision.epoch = epoch_;
    decisions.push_back(std::move(decision));
  }
  return decisions;
}

int32_t Topology::Fence(int32_t worker, const std::string& reason) {
  CheckWorker(worker);
  Slot& slot = slots_[static_cast<size_t>(worker)];
  if (slot.fenced) {
    return -1;
  }
  slot.fenced = true;
  slot.fence_reason = reason;
  ++epoch_;
  int32_t target = LowestLive();
  if (target < 0) {
    return -1;
  }
  for (Assignment& a : assignments_) {
    if (a.owner == worker) {
      a.owner = target;
    }
  }
  for (auto& [id, owner] : pins_) {
    if (owner == worker) {
      owner = target;
    }
  }
  return target;
}

uint64_t Topology::MoveRanges(int32_t from, int32_t to) {
  CheckWorker(from);
  CheckWorker(to);
  if (from == to) {
    throw std::invalid_argument("Topology::MoveRanges: from == to");
  }
  if (slots_[static_cast<size_t>(from)].fenced || slots_[static_cast<size_t>(to)].fenced) {
    throw std::invalid_argument("Topology::MoveRanges: fenced worker");
  }
  ++epoch_;
  for (Assignment& a : assignments_) {
    if (a.owner == from) {
      a.owner = to;
    }
  }
  for (auto& [id, owner] : pins_) {
    if (owner == from) {
      owner = to;
    }
  }
  return epoch_;
}

bool Topology::fenced(int32_t worker) const {
  CheckWorker(worker);
  return slots_[static_cast<size_t>(worker)].fenced;
}

const std::string& Topology::fence_reason(int32_t worker) const {
  CheckWorker(worker);
  return slots_[static_cast<size_t>(worker)].fence_reason;
}

const WorkerHealth& Topology::health(int32_t worker) const {
  CheckWorker(worker);
  return slots_[static_cast<size_t>(worker)].health;
}

int64_t Topology::lease_expires_ms(int32_t worker) const {
  CheckWorker(worker);
  return slots_[static_cast<size_t>(worker)].lease_expires_ms;
}

int32_t Topology::live_workers() const {
  int32_t live = 0;
  for (const Slot& slot : slots_) {
    live += slot.fenced ? 0 : 1;
  }
  return live;
}

}  // namespace fleetd
