// The fleetd coordinator: owns worker-role links into N hangdoctord workers, routes each
// session's mux-container frames to the session's current owner, and folds the workers'
// serialized SessionResults into one fleet report that is bit-identical to the in-process
// RunFleet oracle at any worker count.
//
// The migration primitive is HDSL record/replay. The coordinator is the tap: every frame it
// routes for a live session is retained as that session's replay prefix (and freed the
// moment the session's result lands). Moving a session is then
//   drain     MoveRanges (epoch bump) -> kCtrlHandoff to the old owner -> await kHandoffAck
//             (the discard rides the worker's session rings, so it lands strictly after
//             every routed record) -> replay each prefix on the new owner -> resume routing.
//   failover  Fence the dead worker (epoch bump), replay the prefixes of its unfinished
//             sessions on the lowest live worker. Nothing is drained — the worker is gone —
//             so replay reconstructs its sessions from the tap alone.
//
// Why the fold stays bit-identical: detection is per-session pure (a session's result is a
// function of its own record stream only — detector_service.h's contract), and the tap holds
// exactly the stream routed so far. A replayed session therefore produces the same
// SessionResult its first owner would have, byte for byte. Results are accepted only from a
// session's *current* owner (epoch-fenced on the worker side, owner-gated here), so each
// session contributes exactly one result no matter how many times it moved, and the final
// ascending-session-id fold is independent of worker count, migrations, and crashes.
//
// Threading: one reader thread per link decodes replies; all state lives under one mutex.
// Liveness time is injected through Pulse(now_ms) — heartbeat acks renew leases only when
// the next Pulse applies them — so the lease battery and the driver run on a virtual clock.
#ifndef SRC_FLEETD_COORDINATOR_H_
#define SRC_FLEETD_COORDINATOR_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/fleetd/topology.h"
#include "src/hangdoctor/detector_service.h"
#include "src/netd/client.h"
#include "src/netd/server.h"

namespace fleetd {

// One worker daemon to link to: a TCP port (fleetd binary) or an already-connected fd
// (socketpair drivers — the coordinator owns the fd from construction on).
struct WorkerEndpoint {
  uint16_t port = 0;
  int fd = -1;
};

struct CoordinatorOptions {
  std::vector<WorkerEndpoint> workers;
  uint32_t wire_version = netd::kWireVersionMax;
  int64_t lease_timeout_ms = 2000;
  // How long MigrateWorker waits for the old owner's kHandoffAck before treating the worker
  // as dead and recovering by replay instead.
  int64_t handoff_timeout_ms = 10000;
  // Invoked (under the coordinator lock — keep it cheap, no coordinator re-entry) whenever a
  // session reaches its final state. The fleetd front end uses this to answer the client
  // connection that carried the session.
  std::function<void(uint64_t id, bool aborted)> on_session_done;
};

struct CoordinatorStats {
  int64_t migrated = 0;      // sessions moved by drain-handoff
  int64_t recovered = 0;     // session replays after a worker loss (cascades recount)
  int64_t failovers = 0;     // workers fenced
  int64_t stale_epochs = 0;  // kStaleEpoch replies observed (fenced frames bounced)
  int64_t results = 0;       // accepted session results
};

// The folded output of one fleet run.
struct FleetReport {
  // Every routed session, ascending id. A session whose close never produced a result
  // (total outage, timeout) comes back aborted with a stream_error naming why.
  std::vector<netd::NetSessionOutcome> outcomes;
  // MergeSessionReports over the clean outcomes — the bit-identity surface.
  hangdoctor::HangBugReport merged;
  CoordinatorStats stats;
};

class Coordinator {
 public:
  // Connects (or adopts) every endpoint, performs the worker-role HELLO, and starts the
  // reader threads. Throws std::runtime_error when any link fails to come up.
  explicit Coordinator(const CoordinatorOptions& options);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  // Partitions [first, last] across the workers (contiguous ranges, topology.h).
  void AssignRange(uint64_t first, uint64_t last);

  // Routes one mux-container frame (kOpenSession/kRecord/kCloseSession payload bytes) for
  // `session` to its current owner, retaining it in the session's replay tap. A dead owner
  // triggers failover inline: the frame still reaches a live worker (via tap replay), so a
  // false return means total outage — no live worker remains.
  bool RouteFrame(uint64_t session, const std::string& frame, std::string* error);

  // Drain-migrates every unfinished session owned by `from` onto `to` (handoff + replay).
  // Waits for the handoff ack up to handoff_timeout_ms; a worker that dies or times out
  // mid-handoff is fenced and recovered instead — the sessions end up on a live worker
  // either way. False only on invalid arguments (bad index, fenced end, from == to).
  bool MigrateWorker(int32_t from, int32_t to, std::string* error);

  // Severs the link to `worker` now (test/driver crash injection) and runs failover. The
  // worker process itself is not touched — the caller kills or stops it.
  void CrashWorker(int32_t worker);

  // One liveness beat at injected time `now_ms`: applies heartbeat acks received since the
  // last pulse (renewing leases), sends a fresh heartbeat on every live link, then fences
  // every worker whose lease expired or failed and recovers its sessions.
  void Pulse(int64_t now_ms);

  // Drops (or restores) worker `w`'s heartbeats: Pulse neither sends to it nor applies its
  // acks — the heartbeat-loss fault family. Its lease then expires on schedule.
  void SetHeartbeatLoss(int32_t worker, bool lost);

  // Blocks until every session whose close frame was routed has its final state (or
  // `timeout_ms` passes). True on completion.
  bool WaitForResults(int64_t timeout_ms);

  // Folds the fleet report (ascending session id) and gracefully closes the links. Call
  // once, after routing is finished (WaitForResults first for a clean run).
  FleetReport Finish();

  int32_t OwnerOf(uint64_t session);
  uint64_t epoch();
  bool fenced(int32_t worker);
  WorkerHealth LastHealth(int32_t worker);
  CoordinatorStats stats();

 private:
  struct Link {
    netd::NetClient client;
    std::thread reader;
    bool alive = false;
    bool ack_pending = false;      // a kHeartbeatAck arrived since the last Pulse
    WorkerHealth ack_health;
    bool heartbeat_lost = false;   // fault injection: drop this worker's heartbeats
    uint64_t handoff_ack_epoch = 0;
    uint64_t handoff_discarded = 0;
  };
  struct SessionState {
    std::vector<std::string> tap;  // routed frames — the session's replay prefix
    int32_t last_owner = -1;
    bool close_routed = false;
    bool done = false;
    netd::NetSessionOutcome outcome;
  };

  void ReaderLoop(int32_t worker);
  void OnReplyLocked(int32_t worker, const netd::Reply& reply);
  void LinkDownLocked(int32_t worker, const std::string& reason);
  // Fences `worker` (unless already fenced) and replays its unfinished sessions on the
  // failover target; a failed replay cascades onto the next target.
  void CascadeFenceLocked(int32_t worker, const std::string& reason);
  void FailoverLocked(int32_t victim, int32_t target, const std::string& reason);
  bool ReplayTapLocked(int32_t target, const SessionState& state);
  void FinishSessionLocked(uint64_t id, SessionState* state);
  void AbortUnfinishedLocked(const std::string& reason);

  CoordinatorOptions options_;
  std::mutex mu_;
  std::condition_variable cv_;
  Topology topology_;
  std::vector<std::unique_ptr<Link>> links_;
  std::map<uint64_t, SessionState> sessions_;  // ordered: deterministic replay + fold order
  CoordinatorStats stats_;
  bool total_outage_ = false;
  bool finished_ = false;
};

}  // namespace fleetd

#endif  // SRC_FLEETD_COORDINATOR_H_
