#include "src/hosts/hang_doctor.h"

#include <limits>
#include <span>
#include <utility>

namespace hangdoctor {

namespace {

SessionInfo MakeSessionInfo(const droidsim::App& app, int32_t device_id) {
  SessionInfo info;
  info.app_package = app.spec().package;
  info.num_actions = app.num_actions();
  info.device_id = device_id;
  info.symbols = &app.symbols();
  return info;
}

}  // namespace

HangDoctor::HangDoctor(droidsim::Phone* phone, droidsim::App* app, HangDoctorConfig config,
                       BlockingApiDatabase* database, HangBugReport* fleet_report,
                       int32_t device_id, TelemetrySink* sink, faultsim::FaultPlan plan)
    : phone_(phone),
      app_(app),
      rng_(phone->ForkRng(0x4844 + static_cast<uint64_t>(device_id)).NextU64(),
           /*stream=*/0x4841ULL),
      sink_(sink),
      config_(std::move(config)),
      core_(std::make_unique<DetectorCore>(MakeSessionInfo(*app, device_id), config_, database,
                                           fleet_report)),
      sampler_(&phone->sim(), &app->main_looper(), config_.sample_interval) {
  backend_ = core_.get();
  FinishSetup(std::move(plan), core_->session());
}

HangDoctor::HangDoctor(droidsim::Phone* phone, droidsim::App* app, const HangDoctorConfig& config,
                       DetectorService* service, telemetry::SessionId id, int32_t device_id,
                       TelemetrySink* sink, faultsim::FaultPlan plan)
    : phone_(phone),
      app_(app),
      rng_(phone->ForkRng(0x4844 + static_cast<uint64_t>(device_id)).NextU64(),
           /*stream=*/0x4841ULL),
      sink_(sink),
      config_(config),
      sampler_(&phone->sim(), &app->main_looper(), config_.sample_interval) {
  SessionInfo info = MakeSessionInfo(*app, device_id);
  service->Open(id, info, config_);
  handle_ = std::make_unique<DetectorService::SessionHandle>(service->Handle(id));
  backend_ = handle_.get();
  FinishSetup(std::move(plan), info);
}

void HangDoctor::FinishSetup(faultsim::FaultPlan plan, const SessionInfo& info) {
  if (plan.enabled()) {
    injector_ = std::make_unique<faultsim::FaultInjector>(std::move(plan), backend_, sink_);
  }
  // One sampler per async thread, tagged with its telemetry thread id; they stay parked
  // until a future wait overlaps an active main-thread collection.
  async_samplers_.reserve(app_->num_async_threads());
  for (size_t i = 0; i < app_->num_async_threads(); ++i) {
    async_samplers_.push_back(std::make_unique<droidsim::StackSampler>(
        &phone_->sim(), &app_->async_looper(i), config_.sample_interval,
        static_cast<telemetry::ThreadId>(i + 1)));
  }
  if (sink_ != nullptr) {
    sink_->OnSessionStart(info);
  }
  app_->AddObserver(this);
}

HangDoctor::~HangDoctor() { app_->RemoveObserver(this); }

MonitorDirectives HangDoctor::PushStart(const DispatchStart& start) {
  if (injector_ != nullptr) {
    return injector_->PushStart(start);
  }
  if (sink_ != nullptr) {
    sink_->OnDispatchStart(start);
  }
  return backend_->OnDispatchStart(start);
}

void HangDoctor::PushEnd(const DispatchEnd& end) {
  if (injector_ != nullptr) {
    injector_->PushEnd(end);
    return;
  }
  if (sink_ != nullptr) {
    sink_->OnDispatchEnd(end);
  }
  backend_->OnDispatchEnd(end);
}

void HangDoctor::PushQuiesce(const ActionQuiesce& quiesce) {
  if (injector_ != nullptr) {
    injector_->PushQuiesce(quiesce);
    return;
  }
  if (sink_ != nullptr) {
    sink_->OnActionQuiesce(quiesce);
  }
  backend_->OnActionQuiesced(quiesce);
}

void HangDoctor::PushCounterFault(const CounterFault& fault) {
  if (injector_ != nullptr) {
    injector_->PushCounterFault(fault);
    return;
  }
  if (sink_ != nullptr) {
    sink_->OnCounterFault(fault);
  }
  backend_->OnCounterFault(fault);
}

void HangDoctor::PushAsyncPost(const AsyncPost& post) {
  if (injector_ != nullptr) {
    injector_->PushAsyncPost(post);
    return;
  }
  if (sink_ != nullptr) {
    sink_->OnAsyncPost(post);
  }
  backend_->OnAsyncPost(post);
}

void HangDoctor::PushAsyncRun(const AsyncRun& run) {
  if (injector_ != nullptr) {
    injector_->PushAsyncRun(run);
    return;
  }
  if (sink_ != nullptr) {
    sink_->OnAsyncRun(run);
  }
  backend_->OnAsyncRun(run);
}

void HangDoctor::PushAsyncWaitStart(const AsyncWaitStart& wait) {
  if (injector_ != nullptr) {
    injector_->PushAsyncWaitStart(wait);
    return;
  }
  if (sink_ != nullptr) {
    sink_->OnAsyncWaitStart(wait);
  }
  backend_->OnAsyncWaitStart(wait);
}

void HangDoctor::PushAsyncWaitEnd(const AsyncWaitEnd& wait) {
  if (injector_ != nullptr) {
    injector_->PushAsyncWaitEnd(wait);
    return;
  }
  if (sink_ != nullptr) {
    sink_->OnAsyncWaitEnd(wait);
  }
  backend_->OnAsyncWaitEnd(wait);
}

HangDoctor::HostExecution& HangDoctor::Live(const droidsim::ActionExecution& execution) {
  auto [it, inserted] = live_.try_emplace(execution.execution_id);
  if (inserted) {
    it->second.event_open.resize(execution.events_total, false);
  }
  return it->second;
}

void HangDoctor::ArmHangCheck(int64_t execution_id, int32_t event_index) {
  phone_->sim().ScheduleAfter(config_.hang_timeout, [this, execution_id, event_index]() {
    auto it = live_.find(execution_id);
    if (it == live_.end()) {
      return;
    }
    HostExecution& live = it->second;
    auto idx = static_cast<size_t>(event_index);
    if (idx >= live.event_open.size() || !live.event_open[idx]) {
      return;  // the event finished below the timeout: no soft hang this time
    }
    if (!sampler_.active()) {
      sampler_.StartCollection();
    }
    // If the main thread is already blocked in a future wait, the hang is (at least partly)
    // the awaited thread's work: sample it too, so the Diagnoser can walk the chain.
    if (active_wait_edge_ != 0 && active_wait_execution_ == execution_id) {
      StartWaitSampler(active_wait_thread_);
    }
  });
}

void HangDoctor::StartWaitSampler(telemetry::ThreadId thread) {
  if (thread == 0 || static_cast<size_t>(thread) > async_samplers_.size()) {
    return;
  }
  droidsim::StackSampler& sampler = *async_samplers_[thread - 1];
  if (!sampler.active()) {
    sampler.StartCollection();
  }
}

void HangDoctor::StartCounters(HostExecution& live) {
  live.session = std::make_unique<perfsim::PerfSession>(
      &phone_->counter_hub(), phone_->profile().pmu, rng_.Fork(0x5350).NextU64());
  live.session->AddThread(app_->main_tid());
  if (!config_.main_only) {
    live.session->AddThread(app_->render_tid());
  }
  for (telemetry::PerfEventType event : config_.filter.Events()) {
    live.session->AddEvent(event);
  }
  live.session->Start();
}

void HangDoctor::OnInputEventStart(droidsim::App& app,
                                   const droidsim::ActionExecution& execution,
                                   int32_t event_index) {
  (void)app;
  HostExecution& live = Live(execution);
  live.event_open[static_cast<size_t>(event_index)] = true;

  DispatchStart start;
  start.now = phone_->Now();
  start.execution_id = execution.execution_id;
  start.action_uid = execution.action_uid;
  start.event_index = event_index;
  start.events_total = static_cast<int32_t>(execution.events_total);
  MonitorDirectives directives = PushStart(start);
  if (directives.start_counters && live.session == nullptr) {
    faultsim::FaultPlan::CounterOpen fate = injector_ != nullptr
                                                ? injector_->NextCounterOpen()
                                                : faultsim::FaultPlan::CounterOpen::kOk;
    if (fate == faultsim::FaultPlan::CounterOpen::kOk) {
      StartCounters(live);
    } else {
      // The open failed: report it as telemetry so the core can retry or degrade (and so
      // the recorded session replays the same decision).
      CounterFault fault;
      fault.now = start.now;
      fault.execution_id = execution.execution_id;
      fault.permanent = fate == faultsim::FaultPlan::CounterOpen::kPermanentFailure;
      PushCounterFault(fault);
    }
  }
  if (directives.arm_hang_check) {
    ArmHangCheck(execution.execution_id, event_index);
  }
}

void HangDoctor::OnInputEventEnd(droidsim::App& app, const droidsim::ActionExecution& execution,
                                 int32_t event_index) {
  (void)app;
  DispatchEnd end;
  end.now = phone_->Now();
  end.execution_id = execution.execution_id;
  end.event_index = event_index;

  // Owned storage for a merged or fault-filtered window; must outlive the push below.
  std::vector<telemetry::StackTrace> filtered;
  std::vector<telemetry::StackTrace> merged;
  auto it = live_.find(execution.execution_id);
  if (it != live_.end()) {
    auto idx = static_cast<size_t>(event_index);
    HostExecution& live = it->second;
    if (idx < live.event_open.size()) {
      live.event_open[idx] = false;
    }
    const droidsim::EventTiming& timing = execution.events[idx];
    end.response = timing.end - timing.start;
    if (sampler_.active()) {
      end.trace_stopped = true;
      end.samples = sampler_.StopCollection();
      if (!live.async_samples.empty()) {
        // Append the waits' worker-thread stacks behind the main window. Owned storage only
        // in the async case — pre-async sessions keep the sampler's zero-copy span.
        merged.assign(end.samples.begin(), end.samples.end());
        merged.insert(merged.end(), live.async_samples.begin(), live.async_samples.end());
        live.async_samples.clear();
        end.samples = merged;
      }
      if (injector_ != nullptr) {
        filtered = injector_->FilterSamples(end.samples);
        end.samples = filtered;
      }
    }
  }
  PushEnd(end);
}

void HangDoctor::OnActionQuiesced(droidsim::App& app,
                                  const droidsim::ActionExecution& execution) {
  (void)app;
  ActionQuiesce quiesce;
  quiesce.now = phone_->Now();
  quiesce.execution_id = execution.execution_id;
  quiesce.action_uid = execution.action_uid;
  quiesce.max_response = execution.max_response;

  auto it = live_.find(execution.execution_id);
  if (it != live_.end() && it->second.session != nullptr) {
    perfsim::PerfSession& session = *it->second.session;
    session.Stop();
    if (execution.max_response > config_.hang_timeout) {
      // S-Checker will run: read the main−render differences, in filter-event order.
      quiesce.counters_valid = true;
      for (telemetry::PerfEventType event : config_.filter.Events()) {
        double value = config_.main_only
                           ? session.Read(app_->main_tid(), event)
                           : session.ReadDifference(app_->main_tid(), app_->render_tid(), event);
        quiesce.counter_diffs[static_cast<size_t>(event)] = value;
      }
      if (injector_ != nullptr && injector_->NextCounterReadInvalid()) {
        // The read returned garbage: poison the first filter event with NaN. The core's
        // FiniteDiffs guard must treat the window as unusable (and the NaN round-trips
        // through the session log, so replay sees the identical poison).
        const std::vector<telemetry::PerfEventType> events = config_.filter.Events();
        if (!events.empty()) {
          quiesce.counter_diffs[static_cast<size_t>(events.front())] =
              std::numeric_limits<double>::quiet_NaN();
        }
      }
    }
  }
  PushQuiesce(quiesce);
  if (it != live_.end()) {
    live_.erase(it);
  }
}

void HangDoctor::OnAsyncPost(droidsim::App& app, int64_t execution_id, uint64_t edge,
                             telemetry::ThreadId thread, telemetry::FrameId post_frame,
                             simkit::SimDuration delay) {
  (void)app;
  edge_thread_[edge] = thread;
  AsyncPost post;
  post.now = phone_->Now();
  post.execution_id = execution_id;
  post.edge = telemetry::CausalEdgeId{edge};
  post.target = thread;
  post.post_frame = post_frame;
  post.delay = delay;
  PushAsyncPost(post);
}

void HangDoctor::OnAsyncRun(droidsim::App& app, int64_t execution_id, uint64_t edge,
                            telemetry::ThreadId thread, bool begin) {
  (void)app;
  AsyncRun run;
  run.now = phone_->Now();
  run.execution_id = execution_id;
  run.edge = telemetry::CausalEdgeId{edge};
  run.thread = thread;
  run.begin = begin;
  PushAsyncRun(run);
  if (!begin) {
    edge_thread_.erase(edge);  // the task is done; its edge can never be waited on again
  }
}

void HangDoctor::OnAsyncWaitStart(droidsim::App& app, int64_t execution_id, uint64_t edge,
                                  telemetry::FrameId wait_frame) {
  (void)app;
  AsyncWaitStart wait;
  wait.now = phone_->Now();
  wait.execution_id = execution_id;
  wait.edge = telemetry::CausalEdgeId{edge};
  wait.wait_frame = wait_frame;
  PushAsyncWaitStart(wait);
  active_wait_edge_ = edge;
  active_wait_execution_ = execution_id;
  auto thread_it = edge_thread_.find(edge);
  active_wait_thread_ = thread_it != edge_thread_.end() ? thread_it->second : 0;
  // Already hung and sampling? Then the awaited thread's stacks are the interesting ones —
  // start its sampler now. (If the hang check fires later, it starts the sampler itself.)
  if (sampler_.active()) {
    StartWaitSampler(active_wait_thread_);
  }
}

void HangDoctor::OnAsyncWaitEnd(droidsim::App& app, int64_t execution_id, uint64_t edge,
                                simkit::SimDuration waited) {
  (void)app;
  AsyncWaitEnd wait;
  wait.now = phone_->Now();
  wait.execution_id = execution_id;
  wait.edge = telemetry::CausalEdgeId{edge};
  wait.waited = waited;
  PushAsyncWaitEnd(wait);
  if (active_wait_edge_ != edge) {
    return;
  }
  if (active_wait_thread_ != 0 &&
      static_cast<size_t>(active_wait_thread_) <= async_samplers_.size()) {
    droidsim::StackSampler& sampler = *async_samplers_[active_wait_thread_ - 1];
    if (sampler.active()) {
      // Buffer the wait's worker stacks; they ride the DispatchEnd of the event that blocked.
      std::span<const telemetry::StackTrace> taken = sampler.StopCollection();
      auto it = live_.find(execution_id);
      if (it != live_.end()) {
        it->second.async_samples.insert(it->second.async_samples.end(), taken.begin(),
                                        taken.end());
      }
    }
  }
  active_wait_edge_ = 0;
  active_wait_execution_ = 0;
  active_wait_thread_ = 0;
}

}  // namespace hangdoctor
