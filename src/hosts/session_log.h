// Session record/replay: a compact binary log ("HDSL") of everything that ever crosses the
// Telemetry Host SPI into a DetectorCore, sufficient to re-run the core offline with
// bit-identical results.
//
// A log holds, in order:
//   header  — magic "HDSL", format version, the SessionInfo (app package, action count,
//             device id), the full HangDoctorConfig, and the session's symbol table (every
//             frame with its is_ui / self-developed classification), so the reader can rebuild FrameId
//             resolution exactly;
//   records — the SPI stream: one record per DispatchStart / DispatchEnd / ActionQuiesce /
//             CounterFault, in push order, including stack samples (as interned FrameIds)
//             and the main−render counter differences S-Checker read;
//   footer  — optionally, the monitored trace's own resource usage (CPU + bytes), so the
//             Section 4.5 overhead percentage is reproducible offline.
//
// Encoding: unsigned LEB128 varints, zigzag for signed integers, raw little-endian IEEE-754
// for doubles, length-prefixed UTF-8 for strings. The byte-level layout is specified in
// DESIGN.md ("Session log format").
//
// Version history: v1 had no CounterFault records and no retry-policy config fields; v2
// adds both, so a session recorded under injected telemetry faults replays the same
// degradation decisions bit-identically; v4 (current) adds the cross-thread causal stream —
// AsyncPost / AsyncRun / AsyncWaitStart / AsyncWaitEnd records, a per-sample ThreadId on
// every stack trace, and the async_record cost in the header — so a session of an app with
// HandlerThreads and executors replays its waiting-chain diagnoses bit-identically. (v3 is
// the multiplexed container version, mux_log.h; single-session logs skip it.)
//
// SessionLogWriter is a TelemetrySink: hand it to the droidsim host (or any host) and it
// records the exact stream the core consumes, without influencing detection. SessionLog is
// the in-memory parse; replay_host.h re-feeds it to a fresh core.
#ifndef SRC_HOSTS_SESSION_LOG_H_
#define SRC_HOSTS_SESSION_LOG_H_

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/hangdoctor/detector_core.h"
#include "src/hangdoctor/host_spi.h"

namespace hangdoctor {

inline constexpr char kSessionLogMagic[4] = {'H', 'D', 'S', 'L'};
inline constexpr uint32_t kSessionLogVersion = 4;

// Record tags (one byte each, in-stream).
enum class SessionRecordTag : uint8_t {
  kDispatchStart = 1,
  kDispatchEnd = 2,
  kActionQuiesce = 3,
  kTraceUsage = 4,
  kEnd = 5,
  kCounterFault = 6,
  kAsyncPost = 7,
  kAsyncRun = 8,
  kAsyncWaitStart = 9,
  kAsyncWaitEnd = 10,
};

class SessionLogWriter : public TelemetrySink {
 public:
  // Opens `path` for writing; the header is emitted on OnSessionStart (the config is needed
  // for the header, so it is captured here).
  SessionLogWriter(const std::string& path, const HangDoctorConfig& config);
  ~SessionLogWriter() override;

  // Sticky: goes false on the first failed or short write (file unopenable, stream error, or
  // an injected torn write) and never recovers; once false no further bytes are emitted, so
  // a failed log is a clean prefix, not interleaved garbage. Callers must check this after
  // Finish() — a silently truncated log would replay as a different session.
  bool ok() const { return ok_; }
  // Total bytes successfully written so far.
  int64_t bytes_written() const { return written_; }

  // Fault hook (src/faultsim's torn-log profile): every byte past `bytes` fails to land,
  // simulating a full disk or a crash mid-write. Negative disables (default).
  void SetFailAfter(int64_t bytes) { fail_after_ = bytes; }

  // TelemetrySink:
  void OnSessionStart(const SessionInfo& info) override;
  void OnDispatchStart(const DispatchStart& start) override;
  void OnDispatchEnd(const DispatchEnd& end) override;
  void OnActionQuiesce(const ActionQuiesce& quiesce) override;
  void OnCounterFault(const CounterFault& fault) override;
  void OnAsyncPost(const AsyncPost& post) override;
  void OnAsyncRun(const AsyncRun& run) override;
  void OnAsyncWaitStart(const AsyncWaitStart& wait) override;
  void OnAsyncWaitEnd(const AsyncWaitEnd& wait) override;

  // Optional footer: the monitored trace's own resource usage (overhead denominator).
  void WriteTraceUsage(int64_t cpu, int64_t bytes);

  // Writes the end marker and closes the file. Called by the destructor if not already done.
  void Finish();

 private:
  void WriteBytes(const char* data, size_t size);
  void PutByte(uint8_t byte);
  void PutVarint(uint64_t value);
  void PutSigned(int64_t value);
  void PutDouble(double value);
  void PutString(const std::string& value);

  std::ofstream out_;
  HangDoctorConfig config_;
  bool finished_ = false;
  bool ok_ = true;
  int64_t written_ = 0;
  int64_t fail_after_ = -1;
};

// One parsed SPI record. `end.samples` is not set directly (spans would dangle as the vector
// grows); replay points it at `samples` when pushing.
struct SessionRecord {
  SessionRecordTag tag = SessionRecordTag::kEnd;
  DispatchStart start;
  DispatchEnd end;
  std::vector<telemetry::StackTrace> samples;
  ActionQuiesce quiesce;
  CounterFault fault;
  AsyncPost async_post;
  AsyncRun async_run;
  AsyncWaitStart wait_start;
  AsyncWaitEnd wait_end;
  int64_t usage_cpu = 0;    // kTraceUsage only
  int64_t usage_bytes = 0;  // kTraceUsage only
};

// A fully parsed session log.
struct SessionLog {
  SessionInfo info;  // info.symbols points at *symbols below
  HangDoctorConfig config;
  std::unique_ptr<telemetry::SymbolTable> symbols;
  std::vector<SessionRecord> records;
  bool has_usage = false;
  int64_t usage_cpu = 0;
  int64_t usage_bytes = 0;
};

// Byte-level structure of a well-formed log, for structure-aware mutation (src/faultsim's
// HDSL mutator works on record boundaries, not blind byte soup). Plain data so faultsim can
// consume it without depending on the parser.
struct SessionLogLayout {
  // Offset one past the header (= offset of the first record's tag byte).
  size_t header_end = 0;
  // Offset of the symbol table's count varint inside the header; the table's encoding runs
  // [symtab_begin, header_end). Lets the compactor (src/hosts/compact_log.h) swap the symbol
  // section for pool references while copying every other header byte verbatim.
  size_t symtab_begin = 0;
  // Offset of every record's tag byte, in stream order, including kTraceUsage and the
  // trailing kEnd marker.
  std::vector<size_t> record_offsets;
};

// Parses `path`; on failure returns false and sets `error`. `log` is valid only on success.
bool LoadSessionLog(const std::string& path, SessionLog* log, std::string* error);

// Same, from an in-memory byte string (the fuzz harness parses mutated logs without disk).
bool LoadSessionLogBytes(const std::string& bytes, SessionLog* log, std::string* error);

// Parses only as far as needed to map record boundaries. Returns false (with `error`) when
// `bytes` is not a well-formed log; `layout` is valid only on success.
bool ScanSessionLog(const std::string& bytes, SessionLogLayout* layout, std::string* error);

// Incremental entry points for streaming consumers (the netd wire decoder): a connection
// delivers a session's complete prefix first — the mux open-frame payload — and then one
// record at a time, so the monolithic parse is also exposed piecewise. Both share the
// byte-level grammar (and every bounds check) with LoadSessionLogBytes.
//
// Parses a complete log prefix: magic, version, SessionInfo, config, symbol table — no
// records, no trailing bytes. On success `log` holds info/config/symbols with `records`
// empty; `log->info.symbols` points at `log->symbols`, which must outlive every record
// later parsed against it.
bool ParseSessionLogPrefix(const std::string& bytes, SessionLog* log, std::string* error);

// Parses exactly one record (tag byte + body; trailing bytes rejected) against `symbols`,
// with the same FrameId range checks as the full parse. kTraceUsage parses into
// `record->usage_cpu` / `usage_bytes`; a bare end marker is rejected — mux/wire framing
// regenerates end markers, they never travel as records.
bool ParseSessionRecordBytes(const std::string& bytes, const telemetry::SymbolTable& symbols,
                             SessionRecord* record, std::string* error);

}  // namespace hangdoctor

#endif  // SRC_HOSTS_SESSION_LOG_H_
