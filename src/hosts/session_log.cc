#include "src/hosts/session_log.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace hangdoctor {

namespace {

// Sessions with more declared actions than this are refused at parse: a fuzzed header must
// not be able to make the replayed core allocate an unbounded action table.
constexpr int64_t kMaxActionsInLog = 1 << 20;

uint64_t ZigzagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^ static_cast<uint64_t>(value >> 63);
}

int64_t ZigzagDecode(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

// Sequential reader over a loaded log; all Get* methods fail sticky.
class Parser {
 public:
  Parser(const std::string& data, std::string* error) : data_(data), error_(error) {}

  bool ok() const { return ok_; }
  size_t pos() const { return pos_; }

  bool Fail(const std::string& message) {
    if (ok_) {
      ok_ = false;
      *error_ = message + " (at byte " + std::to_string(pos_) + ")";
    }
    return false;
  }

  uint8_t GetByte() {
    if (!ok_ || pos_ >= data_.size()) {
      Fail("unexpected end of log");
      return 0;
    }
    return static_cast<uint8_t>(data_[pos_++]);
  }

  uint64_t GetVarint() {
    uint64_t value = 0;
    int shift = 0;
    while (ok_) {
      uint8_t byte = GetByte();
      value |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        break;
      }
      shift += 7;
      if (shift >= 64) {
        Fail("varint too long");
        break;
      }
    }
    return value;
  }

  int64_t GetSigned() { return ZigzagDecode(GetVarint()); }

  double GetDouble() {
    if (!ok_ || data_.size() - pos_ < 8) {
      Fail("unexpected end of log");
      return 0.0;
    }
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + static_cast<size_t>(i)]))
              << (8 * i);
    }
    pos_ += 8;
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

  std::string GetString() {
    uint64_t length = GetVarint();
    // Compare against the remaining bytes, never `pos_ + length` — a fuzzed length near
    // 2^64 would wrap that sum and pass the check.
    if (!ok_ || length > data_.size() - pos_) {
      Fail("unexpected end of log");
      return "";
    }
    std::string value = data_.substr(pos_, length);
    pos_ += length;
    return value;
  }

  bool AtEnd() const { return pos_ >= data_.size(); }

 private:
  const std::string& data_;
  std::string* error_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Shared prefix grammar — magic, version, SessionInfo, config, symbol table — leaving the
// parser positioned at the first record's tag byte.
bool ParsePrefix(Parser& parser, const std::string& data, SessionLog* log,
                 SessionLogLayout* layout, std::string* error) {
  if (data.size() < sizeof(kSessionLogMagic) ||
      std::memcmp(data.data(), kSessionLogMagic, sizeof(kSessionLogMagic)) != 0) {
    *error = "not a session log (bad magic)";
    return false;
  }
  for (size_t i = 0; i < sizeof(kSessionLogMagic); ++i) {
    parser.GetByte();
  }
  uint64_t version = parser.GetVarint();
  if (parser.ok() && version != kSessionLogVersion) {
    *error = "unsupported session log version " + std::to_string(version);
    return false;
  }

  log->info.app_package = parser.GetString();
  int64_t num_actions = parser.GetSigned();
  if (parser.ok() && (num_actions <= 0 || num_actions > kMaxActionsInLog)) {
    return parser.Fail("action count out of range: " + std::to_string(num_actions));
  }
  log->info.num_actions = static_cast<int32_t>(num_actions);
  log->info.device_id = static_cast<int32_t>(parser.GetSigned());

  uint64_t num_conditions = parser.GetVarint();
  std::vector<FilterCondition> conditions;
  for (uint64_t i = 0; parser.ok() && i < num_conditions; ++i) {
    FilterCondition condition;
    uint64_t event = parser.GetVarint();
    if (parser.ok() && event >= telemetry::kNumPerfEvents) {
      return parser.Fail("filter event out of range: " + std::to_string(event));
    }
    condition.event = static_cast<telemetry::PerfEventType>(event);
    condition.threshold = parser.GetDouble();
    conditions.push_back(condition);
  }
  log->config.filter = SoftHangFilter(std::move(conditions));
  log->config.main_only = parser.GetByte() != 0;
  log->config.hang_timeout = parser.GetSigned();
  log->config.sample_interval = parser.GetSigned();
  log->config.reset_after_normal = static_cast<int32_t>(parser.GetSigned());
  log->config.max_counter_retries = static_cast<int32_t>(parser.GetSigned());
  log->config.counter_retry_backoff = static_cast<int32_t>(parser.GetSigned());
  log->config.analyzer.api_occurrence_threshold = parser.GetDouble();
  log->config.analyzer.caller_occurrence_threshold = parser.GetDouble();
  log->config.analyzer.ui_majority = parser.GetDouble();
  log->config.costs.perf_start = parser.GetSigned();
  log->config.costs.perf_stop = parser.GetSigned();
  log->config.costs.perf_read_per_event = parser.GetSigned();
  log->config.costs.perf_session_bytes = parser.GetSigned();
  log->config.costs.state_lookup = parser.GetSigned();
  log->config.costs.trace_start = parser.GetSigned();
  log->config.costs.trace_start_bytes = parser.GetSigned();
  log->config.costs.stack_sample = parser.GetSigned();
  log->config.costs.stack_sample_bytes = parser.GetSigned();
  log->config.costs.utilization_sample = parser.GetSigned();
  log->config.costs.utilization_sample_bytes = parser.GetSigned();
  log->config.costs.response_probe = parser.GetSigned();
  log->config.costs.async_record = parser.GetSigned();
  log->config.second_phase_only = parser.GetByte() != 0;
  log->config.keep_traces = parser.GetByte() != 0;

  log->symbols = std::make_unique<telemetry::SymbolTable>();
  if (layout != nullptr) {
    layout->symtab_begin = parser.pos();
  }
  uint64_t num_frames = parser.GetVarint();
  for (uint64_t i = 0; parser.ok() && i < num_frames; ++i) {
    telemetry::StackFrame frame;
    frame.function = parser.GetString();
    frame.clazz = parser.GetString();
    frame.file = parser.GetString();
    frame.line = static_cast<int32_t>(parser.GetSigned());
    uint8_t flags = parser.GetByte();
    frame.in_closed_library = (flags & 1) != 0;
    if (!parser.ok()) {
      break;
    }
    telemetry::FrameId id =
        log->symbols->Intern(std::move(frame), (flags & 2) != 0, (flags & 4) != 0);
    if (id != i) {
      return parser.Fail("symbol table not in id order");
    }
  }
  log->info.symbols = log->symbols.get();
  if (layout != nullptr) {
    layout->header_end = parser.pos();
  }
  return parser.ok();
}

// Shared record grammar: one tag byte + body into `record`. kEnd is tag-only; kTraceUsage
// lands in the record's usage fields. Every FrameId is range-checked against `symbols`,
// exactly as the monolithic parse checks against the log's own table.
bool ParseRecordBody(Parser& parser, const telemetry::SymbolTable& symbols,
                     SessionRecord* record) {
  auto tag = static_cast<SessionRecordTag>(parser.GetByte());
  if (!parser.ok()) {
    return false;
  }
  record->tag = tag;
  switch (tag) {
    case SessionRecordTag::kDispatchStart: {
      record->start.now = parser.GetSigned();
      record->start.execution_id = parser.GetSigned();
      record->start.action_uid = static_cast<int32_t>(parser.GetSigned());
      record->start.event_index = static_cast<int32_t>(parser.GetSigned());
      record->start.events_total = static_cast<int32_t>(parser.GetSigned());
      break;
    }
    case SessionRecordTag::kDispatchEnd: {
      record->end.now = parser.GetSigned();
      record->end.execution_id = parser.GetSigned();
      record->end.event_index = static_cast<int32_t>(parser.GetSigned());
      record->end.response = parser.GetSigned();
      record->end.trace_stopped = parser.GetByte() != 0;
      if (record->end.trace_stopped) {
        uint64_t num_samples = parser.GetVarint();
        for (uint64_t s = 0; parser.ok() && s < num_samples; ++s) {
          telemetry::StackTrace sample;
          sample.timestamp_ns = parser.GetSigned();
          sample.thread = static_cast<telemetry::ThreadId>(parser.GetVarint());
          uint64_t depth = parser.GetVarint();
          for (uint64_t f = 0; parser.ok() && f < depth; ++f) {
            uint64_t frame_id = parser.GetVarint();
            // Unknown FrameIds must die here: the replayed core indexes the symbol table
            // by id, and the analyzer's census arrays are sized to it.
            if (parser.ok() && frame_id >= symbols.size()) {
              return parser.Fail("frame id out of range: " + std::to_string(frame_id));
            }
            sample.frames.push_back(static_cast<telemetry::FrameId>(frame_id));
          }
          record->samples.push_back(std::move(sample));
        }
      }
      break;
    }
    case SessionRecordTag::kActionQuiesce: {
      record->quiesce.now = parser.GetSigned();
      record->quiesce.execution_id = parser.GetSigned();
      record->quiesce.action_uid = static_cast<int32_t>(parser.GetSigned());
      record->quiesce.max_response = parser.GetSigned();
      record->quiesce.counters_valid = parser.GetByte() != 0;
      uint64_t num_pairs = parser.GetVarint();
      for (uint64_t p = 0; parser.ok() && p < num_pairs; ++p) {
        uint64_t index = parser.GetVarint();
        double value = parser.GetDouble();
        if (index >= record->quiesce.counter_diffs.size()) {
          return parser.Fail("counter index out of range");
        }
        record->quiesce.counter_diffs[index] = value;
      }
      break;
    }
    case SessionRecordTag::kCounterFault: {
      record->fault.now = parser.GetSigned();
      record->fault.execution_id = parser.GetSigned();
      record->fault.permanent = parser.GetByte() != 0;
      break;
    }
    case SessionRecordTag::kAsyncPost: {
      record->async_post.now = parser.GetSigned();
      record->async_post.execution_id = parser.GetSigned();
      record->async_post.edge.value = parser.GetVarint();
      record->async_post.target = static_cast<telemetry::ThreadId>(parser.GetVarint());
      uint64_t post_frame = parser.GetVarint();
      if (parser.ok() && post_frame >= symbols.size()) {
        return parser.Fail("post frame id out of range: " + std::to_string(post_frame));
      }
      record->async_post.post_frame = static_cast<telemetry::FrameId>(post_frame);
      record->async_post.delay = parser.GetSigned();
      break;
    }
    case SessionRecordTag::kAsyncRun: {
      record->async_run.now = parser.GetSigned();
      record->async_run.execution_id = parser.GetSigned();
      record->async_run.edge.value = parser.GetVarint();
      record->async_run.thread = static_cast<telemetry::ThreadId>(parser.GetVarint());
      record->async_run.begin = parser.GetByte() != 0;
      break;
    }
    case SessionRecordTag::kAsyncWaitStart: {
      record->wait_start.now = parser.GetSigned();
      record->wait_start.execution_id = parser.GetSigned();
      record->wait_start.edge.value = parser.GetVarint();
      uint64_t wait_frame = parser.GetVarint();
      if (parser.ok() && wait_frame >= symbols.size()) {
        return parser.Fail("wait frame id out of range: " + std::to_string(wait_frame));
      }
      record->wait_start.wait_frame = static_cast<telemetry::FrameId>(wait_frame);
      break;
    }
    case SessionRecordTag::kAsyncWaitEnd: {
      record->wait_end.now = parser.GetSigned();
      record->wait_end.execution_id = parser.GetSigned();
      record->wait_end.edge.value = parser.GetVarint();
      record->wait_end.waited = parser.GetSigned();
      break;
    }
    case SessionRecordTag::kTraceUsage: {
      record->usage_cpu = parser.GetSigned();
      record->usage_bytes = parser.GetSigned();
      break;
    }
    case SessionRecordTag::kEnd:
      break;
    default:
      return parser.Fail("unknown record tag " + std::to_string(static_cast<int>(tag)));
  }
  return parser.ok();
}

bool ParseSessionLog(const std::string& data, SessionLog* log, SessionLogLayout* layout,
                     std::string* error) {
  Parser parser(data, error);
  if (!ParsePrefix(parser, data, log, layout, error)) {
    return false;
  }

  bool saw_end = false;
  while (parser.ok() && !saw_end) {
    size_t record_offset = parser.pos();
    SessionRecord record;
    if (!ParseRecordBody(parser, *log->symbols, &record)) {
      break;
    }
    if (layout != nullptr) {
      layout->record_offsets.push_back(record_offset);
    }
    switch (record.tag) {
      case SessionRecordTag::kTraceUsage:
        log->has_usage = true;
        log->usage_cpu = record.usage_cpu;
        log->usage_bytes = record.usage_bytes;
        break;
      case SessionRecordTag::kEnd:
        saw_end = true;
        break;
      default:
        log->records.push_back(std::move(record));
        break;
    }
  }
  if (parser.ok() && !saw_end) {
    return parser.Fail("missing end marker (truncated log)");
  }
  return parser.ok();
}

}  // namespace

SessionLogWriter::SessionLogWriter(const std::string& path, const HangDoctorConfig& config)
    : out_(path, std::ios::binary | std::ios::trunc), config_(config) {
  if (!out_.good()) {
    ok_ = false;
  }
}

SessionLogWriter::~SessionLogWriter() { Finish(); }

void SessionLogWriter::WriteBytes(const char* data, size_t size) {
  if (!ok_ || size == 0) {
    return;
  }
  auto want = static_cast<int64_t>(size);
  if (fail_after_ >= 0 && written_ + want > fail_after_) {
    // Injected torn write: the prefix that fits lands, the rest is lost, and the writer
    // fails sticky — exactly the shape of a crash mid-write or a disk running full.
    int64_t fits = std::max<int64_t>(0, fail_after_ - written_);
    if (fits > 0) {
      out_.write(data, static_cast<std::streamsize>(fits));
      written_ += fits;
    }
    ok_ = false;
    return;
  }
  out_.write(data, static_cast<std::streamsize>(size));
  if (!out_.good()) {
    ok_ = false;
    return;
  }
  written_ += want;
}

void SessionLogWriter::PutByte(uint8_t byte) {
  char c = static_cast<char>(byte);
  WriteBytes(&c, 1);
}

void SessionLogWriter::PutVarint(uint64_t value) {
  while (value >= 0x80) {
    PutByte(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  PutByte(static_cast<uint8_t>(value));
}

void SessionLogWriter::PutSigned(int64_t value) { PutVarint(ZigzagEncode(value)); }

void SessionLogWriter::PutDouble(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    PutByte(static_cast<uint8_t>(bits >> (8 * i)));
  }
}

void SessionLogWriter::PutString(const std::string& value) {
  PutVarint(value.size());
  WriteBytes(value.data(), value.size());
}

void SessionLogWriter::OnSessionStart(const SessionInfo& info) {
  WriteBytes(kSessionLogMagic, sizeof(kSessionLogMagic));
  PutVarint(kSessionLogVersion);
  PutString(info.app_package);
  PutSigned(info.num_actions);
  PutSigned(info.device_id);

  // Full config, so replay reconstructs the exact detector.
  PutVarint(config_.filter.conditions().size());
  for (const FilterCondition& condition : config_.filter.conditions()) {
    PutVarint(static_cast<uint64_t>(condition.event));
    PutDouble(condition.threshold);
  }
  PutByte(config_.main_only ? 1 : 0);
  PutSigned(config_.hang_timeout);
  PutSigned(config_.sample_interval);
  PutSigned(config_.reset_after_normal);
  PutSigned(config_.max_counter_retries);
  PutSigned(config_.counter_retry_backoff);
  PutDouble(config_.analyzer.api_occurrence_threshold);
  PutDouble(config_.analyzer.caller_occurrence_threshold);
  PutDouble(config_.analyzer.ui_majority);
  PutSigned(config_.costs.perf_start);
  PutSigned(config_.costs.perf_stop);
  PutSigned(config_.costs.perf_read_per_event);
  PutSigned(config_.costs.perf_session_bytes);
  PutSigned(config_.costs.state_lookup);
  PutSigned(config_.costs.trace_start);
  PutSigned(config_.costs.trace_start_bytes);
  PutSigned(config_.costs.stack_sample);
  PutSigned(config_.costs.stack_sample_bytes);
  PutSigned(config_.costs.utilization_sample);
  PutSigned(config_.costs.utilization_sample_bytes);
  PutSigned(config_.costs.response_probe);
  PutSigned(config_.costs.async_record);
  PutByte(config_.second_phase_only ? 1 : 0);
  PutByte(config_.keep_traces ? 1 : 0);

  // Symbol table: every frame in id order, with its host-side UI classification, so the
  // replayed core resolves FrameIds exactly as the live one did.
  const telemetry::SymbolTable& symbols = *info.symbols;
  PutVarint(symbols.size());
  for (telemetry::FrameId id = 0; id < symbols.size(); ++id) {
    const telemetry::StackFrame& frame = symbols.Frame(id);
    PutString(frame.function);
    PutString(frame.clazz);
    PutString(frame.file);
    PutSigned(frame.line);
    uint8_t flags = 0;
    if (frame.in_closed_library) {
      flags |= 1;
    }
    if (symbols.IsUi(id)) {
      flags |= 2;
    }
    if (symbols.IsSelfDeveloped(id)) {
      flags |= 4;
    }
    PutByte(flags);
  }
}

void SessionLogWriter::OnDispatchStart(const DispatchStart& start) {
  PutByte(static_cast<uint8_t>(SessionRecordTag::kDispatchStart));
  PutSigned(start.now);
  PutSigned(start.execution_id);
  PutSigned(start.action_uid);
  PutSigned(start.event_index);
  PutSigned(start.events_total);
}

void SessionLogWriter::OnDispatchEnd(const DispatchEnd& end) {
  PutByte(static_cast<uint8_t>(SessionRecordTag::kDispatchEnd));
  PutSigned(end.now);
  PutSigned(end.execution_id);
  PutSigned(end.event_index);
  PutSigned(end.response);
  PutByte(end.trace_stopped ? 1 : 0);
  if (end.trace_stopped) {
    PutVarint(end.samples.size());
    for (const telemetry::StackTrace& sample : end.samples) {
      PutSigned(sample.timestamp_ns);
      PutVarint(sample.thread);
      PutVarint(sample.frames.size());
      for (telemetry::FrameId frame : sample.frames) {
        PutVarint(frame);
      }
    }
  }
}

void SessionLogWriter::OnActionQuiesce(const ActionQuiesce& quiesce) {
  PutByte(static_cast<uint8_t>(SessionRecordTag::kActionQuiesce));
  PutSigned(quiesce.now);
  PutSigned(quiesce.execution_id);
  PutSigned(quiesce.action_uid);
  PutSigned(quiesce.max_response);
  PutByte(quiesce.counters_valid ? 1 : 0);
  // Sparse nonzero entries; zeros reconstruct implicitly.
  uint64_t nonzero = 0;
  for (double value : quiesce.counter_diffs) {
    if (value != 0.0) {
      ++nonzero;
    }
  }
  PutVarint(nonzero);
  for (size_t index = 0; index < quiesce.counter_diffs.size(); ++index) {
    if (quiesce.counter_diffs[index] != 0.0) {
      PutVarint(index);
      PutDouble(quiesce.counter_diffs[index]);
    }
  }
}

void SessionLogWriter::OnCounterFault(const CounterFault& fault) {
  PutByte(static_cast<uint8_t>(SessionRecordTag::kCounterFault));
  PutSigned(fault.now);
  PutSigned(fault.execution_id);
  PutByte(fault.permanent ? 1 : 0);
}

void SessionLogWriter::OnAsyncPost(const AsyncPost& post) {
  PutByte(static_cast<uint8_t>(SessionRecordTag::kAsyncPost));
  PutSigned(post.now);
  PutSigned(post.execution_id);
  PutVarint(post.edge.value);
  PutVarint(post.target);
  PutVarint(post.post_frame);
  PutSigned(post.delay);
}

void SessionLogWriter::OnAsyncRun(const AsyncRun& run) {
  PutByte(static_cast<uint8_t>(SessionRecordTag::kAsyncRun));
  PutSigned(run.now);
  PutSigned(run.execution_id);
  PutVarint(run.edge.value);
  PutVarint(run.thread);
  PutByte(run.begin ? 1 : 0);
}

void SessionLogWriter::OnAsyncWaitStart(const AsyncWaitStart& wait) {
  PutByte(static_cast<uint8_t>(SessionRecordTag::kAsyncWaitStart));
  PutSigned(wait.now);
  PutSigned(wait.execution_id);
  PutVarint(wait.edge.value);
  PutVarint(wait.wait_frame);
}

void SessionLogWriter::OnAsyncWaitEnd(const AsyncWaitEnd& wait) {
  PutByte(static_cast<uint8_t>(SessionRecordTag::kAsyncWaitEnd));
  PutSigned(wait.now);
  PutSigned(wait.execution_id);
  PutVarint(wait.edge.value);
  PutSigned(wait.waited);
}

void SessionLogWriter::WriteTraceUsage(int64_t cpu, int64_t bytes) {
  PutByte(static_cast<uint8_t>(SessionRecordTag::kTraceUsage));
  PutSigned(cpu);
  PutSigned(bytes);
}

void SessionLogWriter::Finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  if (out_.is_open()) {
    PutByte(static_cast<uint8_t>(SessionRecordTag::kEnd));
    out_.close();
    if (!out_.good()) {
      ok_ = false;
    }
  }
}

bool LoadSessionLog(const std::string& path, SessionLog* log, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return ParseSessionLog(data, log, nullptr, error);
}

bool LoadSessionLogBytes(const std::string& bytes, SessionLog* log, std::string* error) {
  return ParseSessionLog(bytes, log, nullptr, error);
}

bool ScanSessionLog(const std::string& bytes, SessionLogLayout* layout, std::string* error) {
  SessionLog scratch;
  layout->header_end = 0;
  layout->symtab_begin = 0;
  layout->record_offsets.clear();
  return ParseSessionLog(bytes, &scratch, layout, error);
}

bool ParseSessionLogPrefix(const std::string& bytes, SessionLog* log, std::string* error) {
  Parser parser(bytes, error);
  if (!ParsePrefix(parser, bytes, log, nullptr, error)) {
    return false;
  }
  if (!parser.AtEnd()) {
    return parser.Fail("trailing bytes after session log prefix");
  }
  return parser.ok();
}

bool ParseSessionRecordBytes(const std::string& bytes, const telemetry::SymbolTable& symbols,
                             SessionRecord* record, std::string* error) {
  Parser parser(bytes, error);
  if (!ParseRecordBody(parser, symbols, record)) {
    return false;
  }
  if (record->tag == SessionRecordTag::kEnd) {
    return parser.Fail("unexpected end marker record");
  }
  if (!parser.AtEnd()) {
    return parser.Fail("trailing bytes after record");
  }
  return parser.ok();
}

}  // namespace hangdoctor
