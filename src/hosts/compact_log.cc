#include "src/hosts/compact_log.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace hangdoctor {

namespace {

uint64_t ZigzagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^ static_cast<uint64_t>(value >> 63);
}

void PutVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>(static_cast<uint8_t>(value) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(static_cast<uint8_t>(value)));
}

void PutString(std::string* out, const std::string& value) {
  PutVarint(out, value.size());
  out->append(value);
}

bool GetVarint(const std::string& data, size_t* pos, uint64_t* value) {
  *value = 0;
  int shift = 0;
  while (*pos < data.size()) {
    auto byte = static_cast<uint8_t>(data[(*pos)++]);
    *value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return true;
    }
    shift += 7;
    if (shift >= 64) {
      return false;
    }
  }
  return false;
}

bool GetString(const std::string& data, size_t* pos, std::string* value, std::string* error) {
  uint64_t length = 0;
  if (!GetVarint(data, pos, &length)) {
    *error = "truncated string length";
    return false;
  }
  // Compare against the remaining bytes, never `pos + length`: a corrupt length near 2^64
  // would wrap that sum and pass the check.
  if (length > data.size() - *pos) {
    *error = "string overruns the archive";
    return false;
  }
  value->assign(data, *pos, static_cast<size_t>(length));
  *pos += static_cast<size_t>(length);
  return true;
}

// Insertion-ordered string interner: ids are emission order, so the pool — and therefore the
// whole archive — is a pure function of the input logs in input order.
class StringPool {
 public:
  uint64_t Intern(const std::string& value) {
    auto [it, inserted] = ids_.try_emplace(value, strings_.size());
    if (inserted) {
      strings_.push_back(value);
    }
    return it->second;
  }

  const std::vector<std::string>& strings() const { return strings_; }

 private:
  std::unordered_map<std::string, uint64_t> ids_;
  std::vector<std::string> strings_;
};

// Re-encodes one symbol table exactly as SessionLogWriter's header emitter does: count, then
// per frame function/clazz/file/zigzag(line)/flags. Byte identity of the reconstruction
// rests on matching that encoding field for field.
void EncodeSymbols(const telemetry::SymbolTable& symbols, std::string* out) {
  PutVarint(out, symbols.size());
  for (telemetry::FrameId id = 0; id < symbols.size(); ++id) {
    const telemetry::StackFrame& frame = symbols.Frame(id);
    PutString(out, frame.function);
    PutString(out, frame.clazz);
    PutString(out, frame.file);
    PutVarint(out, ZigzagEncode(frame.line));
    uint8_t flags = 0;
    if (frame.in_closed_library) {
      flags |= 1;
    }
    if (symbols.IsUi(id)) {
      flags |= 2;
    }
    if (symbols.IsSelfDeveloped(id)) {
      flags |= 4;
    }
    out->push_back(static_cast<char>(flags));
  }
}

}  // namespace

bool CompactSessionLogs(std::span<const CompactInput> logs, std::string* out,
                        CompactStats* stats, std::string* error) {
  struct Parsed {
    SessionLog log;
    SessionLogLayout layout;
  };
  std::vector<Parsed> parsed(logs.size());
  std::unordered_set<std::string> names;
  size_t input_bytes = 0;
  for (size_t i = 0; i < logs.size(); ++i) {
    if (!names.insert(logs[i].name).second) {
      *error = "duplicate log name " + logs[i].name;
      return false;
    }
    if (!ScanSessionLog(logs[i].bytes, &parsed[i].layout, error) ||
        !LoadSessionLogBytes(logs[i].bytes, &parsed[i].log, error)) {
      *error = logs[i].name + ": " + *error;
      return false;
    }
    input_bytes += logs[i].bytes.size();
  }

  StringPool pool;
  std::vector<std::string> bodies(logs.size());
  for (size_t i = 0; i < logs.size(); ++i) {
    const CompactInput& input = logs[i];
    const SessionLogLayout& layout = parsed[i].layout;
    const telemetry::SymbolTable& symbols = *parsed[i].log.symbols;
    std::string* body = &bodies[i];
    PutString(body, input.name);
    PutVarint(body, layout.symtab_begin);
    body->append(input.bytes, 0, layout.symtab_begin);
    PutVarint(body, symbols.size());
    for (telemetry::FrameId id = 0; id < symbols.size(); ++id) {
      const telemetry::StackFrame& frame = symbols.Frame(id);
      PutVarint(body, pool.Intern(frame.function));
      PutVarint(body, pool.Intern(frame.clazz));
      PutVarint(body, pool.Intern(frame.file));
      PutVarint(body, ZigzagEncode(frame.line));
      uint8_t flags = 0;
      if (frame.in_closed_library) {
        flags |= 1;
      }
      if (symbols.IsUi(id)) {
        flags |= 2;
      }
      if (symbols.IsSelfDeveloped(id)) {
        flags |= 4;
      }
      body->push_back(static_cast<char>(flags));
    }
    size_t suffix = input.bytes.size() - layout.header_end;
    PutVarint(body, suffix);
    body->append(input.bytes, layout.header_end, suffix);

    // Round-trip guard: the archive must be able to reproduce this log byte for byte, or we
    // refuse to archive it (an inline encoding this writer does not know about, say).
    std::string rebuilt;
    rebuilt.append(input.bytes, 0, layout.symtab_begin);
    EncodeSymbols(symbols, &rebuilt);
    rebuilt.append(input.bytes, layout.header_end, suffix);
    if (rebuilt != input.bytes) {
      *error = input.name + ": symbol table does not re-encode byte-identically";
      return false;
    }
  }

  out->clear();
  out->append(kCompactLogMagic, sizeof(kCompactLogMagic));
  PutVarint(out, kCompactLogVersion);
  size_t pool_bytes = 0;
  PutVarint(out, pool.strings().size());
  for (const std::string& value : pool.strings()) {
    PutString(out, value);
    pool_bytes += value.size();
  }
  PutVarint(out, logs.size());
  for (const std::string& body : bodies) {
    out->append(body);
  }
  if (stats != nullptr) {
    stats->logs = logs.size();
    stats->input_bytes = input_bytes;
    stats->output_bytes = out->size();
    stats->pool_strings = pool.strings().size();
    stats->pool_bytes = pool_bytes;
  }
  return true;
}

bool ExtractCompactLog(const std::string& bytes, std::vector<CompactInput>* logs,
                       std::string* error) {
  logs->clear();
  if (bytes.size() < sizeof(kCompactLogMagic) ||
      std::memcmp(bytes.data(), kCompactLogMagic, sizeof(kCompactLogMagic)) != 0) {
    *error = "not a compact log archive (bad magic)";
    return false;
  }
  size_t pos = sizeof(kCompactLogMagic);
  uint64_t version = 0;
  if (!GetVarint(bytes, &pos, &version)) {
    *error = "truncated archive version";
    return false;
  }
  if (version != kCompactLogVersion) {
    *error = "unsupported compact log version " + std::to_string(version);
    return false;
  }
  uint64_t pool_count = 0;
  if (!GetVarint(bytes, &pos, &pool_count)) {
    *error = "truncated pool count";
    return false;
  }
  if (pool_count > bytes.size()) {  // every pool string costs at least its length byte
    *error = "pool count overruns the archive";
    return false;
  }
  std::vector<std::string> pool(static_cast<size_t>(pool_count));
  for (std::string& value : pool) {
    if (!GetString(bytes, &pos, &value, error)) {
      return false;
    }
  }
  uint64_t log_count = 0;
  if (!GetVarint(bytes, &pos, &log_count)) {
    *error = "truncated log count";
    return false;
  }
  if (log_count > bytes.size()) {
    *error = "log count overruns the archive";
    return false;
  }
  auto pool_ref = [&](uint64_t* id) {
    if (!GetVarint(bytes, &pos, id)) {
      *error = "truncated pool reference";
      return false;
    }
    if (*id >= pool.size()) {
      *error = "pool reference " + std::to_string(*id) + " out of range";
      return false;
    }
    return true;
  };
  for (uint64_t i = 0; i < log_count; ++i) {
    CompactInput log;
    if (!GetString(bytes, &pos, &log.name, error)) {
      return false;
    }
    std::string prefix;
    if (!GetString(bytes, &pos, &prefix, error)) {
      return false;
    }
    log.bytes = std::move(prefix);
    uint64_t num_frames = 0;
    if (!GetVarint(bytes, &pos, &num_frames)) {
      *error = "truncated frame count";
      return false;
    }
    if (num_frames > bytes.size()) {  // every frame costs at least 5 encoded bytes
      *error = "frame count overruns the archive";
      return false;
    }
    PutVarint(&log.bytes, num_frames);
    for (uint64_t f = 0; f < num_frames; ++f) {
      uint64_t function = 0;
      uint64_t clazz = 0;
      uint64_t file = 0;
      uint64_t line = 0;
      if (!pool_ref(&function) || !pool_ref(&clazz) || !pool_ref(&file)) {
        return false;
      }
      if (!GetVarint(bytes, &pos, &line)) {
        *error = "truncated frame line";
        return false;
      }
      if (pos >= bytes.size()) {
        *error = "truncated frame flags";
        return false;
      }
      char flags = bytes[pos++];
      PutString(&log.bytes, pool[static_cast<size_t>(function)]);
      PutString(&log.bytes, pool[static_cast<size_t>(clazz)]);
      PutString(&log.bytes, pool[static_cast<size_t>(file)]);
      PutVarint(&log.bytes, line);
      log.bytes.push_back(flags);
    }
    std::string suffix;
    if (!GetString(bytes, &pos, &suffix, error)) {
      return false;
    }
    log.bytes.append(suffix);
    logs->push_back(std::move(log));
  }
  if (pos != bytes.size()) {
    *error = "trailing bytes after archive";
    return false;
  }
  return true;
}

bool RollupCompactLog(const std::string& bytes, std::vector<AppRollupRow>* apps,
                      std::vector<ApiRollupRow>* apis, std::string* error) {
  std::vector<CompactInput> logs;
  if (!ExtractCompactLog(bytes, &logs, error)) {
    return false;
  }
  // std::map keys both rollups so iteration — and therefore row order — is sorted without a
  // second pass.
  std::map<std::string, AppRollupRow> by_app;
  struct ApiCount {
    int64_t samples = 0;
    std::unordered_set<const CompactInput*> logs;
  };
  std::map<std::string, ApiCount> by_api;
  for (const CompactInput& input : logs) {
    SessionLog log;
    if (!LoadSessionLogBytes(input.bytes, &log, error)) {
      *error = input.name + ": " + *error;
      return false;
    }
    AppRollupRow& app = by_app[log.info.app_package];
    app.app_package = log.info.app_package;
    ++app.logs;
    app.records += static_cast<int64_t>(log.records.size());
    for (const SessionRecord& record : log.records) {
      switch (record.tag) {
        case SessionRecordTag::kDispatchStart:
          ++app.dispatches;
          break;
        case SessionRecordTag::kActionQuiesce:
          ++app.quiesces;
          break;
        case SessionRecordTag::kDispatchEnd:
          app.samples += static_cast<int64_t>(record.samples.size());
          for (const telemetry::StackTrace& sample : record.samples) {
            if (sample.frames.empty()) {
              continue;
            }
            // Frames are outermost-first (telemetry/stack.h): the innermost frame — the API
            // actually blocking — is the last one, the same frame the Trace Analyzer's
            // occurrence census counts.
            const telemetry::StackFrame& frame = log.symbols->Frame(sample.frames.back());
            ApiCount& api = by_api[frame.clazz + "." + frame.function];
            ++api.samples;
            api.logs.insert(&input);
          }
          break;
        default:
          break;
      }
    }
  }
  apps->clear();
  for (auto& [package, row] : by_app) {
    apps->push_back(std::move(row));
  }
  apis->clear();
  for (auto& [api, count] : by_api) {
    apis->push_back({api, count.samples, static_cast<int64_t>(count.logs.size())});
  }
  std::sort(apis->begin(), apis->end(), [](const ApiRollupRow& a, const ApiRollupRow& b) {
    if (a.samples != b.samples) {
      return a.samples > b.samples;
    }
    return a.api < b.api;
  });
  return true;
}

std::string RenderAppRollupCsv(std::span<const AppRollupRow> rows) {
  std::string out = "app,logs,records,dispatches,quiesces,stack_samples\n";
  for (const AppRollupRow& row : rows) {
    out += row.app_package + "," + std::to_string(row.logs) + "," +
           std::to_string(row.records) + "," + std::to_string(row.dispatches) + "," +
           std::to_string(row.quiesces) + "," + std::to_string(row.samples) + "\n";
  }
  return out;
}

std::string RenderApiRollupCsv(std::span<const ApiRollupRow> rows) {
  std::string out = "api,stack_samples,logs\n";
  for (const ApiRollupRow& row : rows) {
    out += row.api + "," + std::to_string(row.samples) + "," + std::to_string(row.logs) + "\n";
  }
  return out;
}

}  // namespace hangdoctor
