#include "src/hosts/replay_host.h"

#include <utility>

namespace hangdoctor {

ReplaySession::ReplaySession(SessionLog log, BlockingApiDatabase* database,
                             HangBugReport* fleet_report)
    : log_(std::move(log)),
      core_(log_.info, log_.config, database, fleet_report) {}

void ReplaySession::Run() {
  for (SessionRecord& record : log_.records) {
    switch (record.tag) {
      case SessionRecordTag::kDispatchStart:
        // The directives drove the *live* host's mechanisms; their effects are already
        // baked into the recorded stream, so replay discards them.
        (void)core_.OnDispatchStart(record.start);
        break;
      case SessionRecordTag::kDispatchEnd:
        record.end.samples = record.samples;
        core_.OnDispatchEnd(record.end);
        break;
      case SessionRecordTag::kActionQuiesce:
        core_.OnActionQuiesced(record.quiesce);
        break;
      case SessionRecordTag::kCounterFault:
        core_.OnCounterFault(record.fault);
        break;
      case SessionRecordTag::kAsyncPost:
        core_.OnAsyncPost(record.async_post);
        break;
      case SessionRecordTag::kAsyncRun:
        core_.OnAsyncRun(record.async_run);
        break;
      case SessionRecordTag::kAsyncWaitStart:
        core_.OnAsyncWaitStart(record.wait_start);
        break;
      case SessionRecordTag::kAsyncWaitEnd:
        core_.OnAsyncWaitEnd(record.wait_end);
        break;
      default:
        break;
    }
  }
}

double ReplaySession::OverheadPercent() const {
  if (!log_.has_usage) {
    return 0.0;
  }
  return core_.overhead().OverheadPercent(log_.usage_cpu, log_.usage_bytes);
}

std::unique_ptr<ReplaySession> ReplaySessionLog(const std::string& path, std::string* error,
                                                BlockingApiDatabase* database,
                                                HangBugReport* fleet_report) {
  SessionLog log;
  if (!LoadSessionLog(path, &log, error)) {
    return nullptr;
  }
  auto session = std::make_unique<ReplaySession>(std::move(log), database, fleet_report);
  session->Run();
  return session;
}

}  // namespace hangdoctor
