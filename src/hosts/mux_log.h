// HDSL v3: the multiplexed session log. One byte stream carrying many v2 session logs
// (session_log.h) arbitrarily interleaved — the on-disk shape of what a DetectorService
// ingests live. The container adds framing only; every payload byte is a byte of some v2
// log, so mux → demux reproduces each input log byte-identically.
//
// Framing (after the shared magic "HDSL" and varint version = 3), one frame per step:
//   kOpenSession  = 1 : varint session_id, varint size, payload = the session's complete v2
//                       prefix (magic "HDSL", varint version = 2, and the whole header —
//                       SessionInfo, config, symbol table).
//   kRecord       = 2 : varint session_id, varint size, payload = exactly one v2 record
//                       (tag byte + body), in that session's recorded order.
//   kCloseSession = 3 : varint session_id. Demux appends the v2 end marker (kEnd = 5) here,
//                       which is why mux refuses a log whose end marker is not its final
//                       byte — the reconstruction must be able to regenerate it exactly.
//   kEnd          = 4 : last byte of the stream; every opened session must be closed.
//   kEpochPublish = 5 : varint seq (1-based publish ordinal). Not tied to any session: it
//                       records that the ingesting service published a knowledge-base epoch
//                       here (ServiceOptions.knowledge_base), so replay reproduces the exact
//                       snapshot schedule the live run saw. Demux ignores these frames (the
//                       per-session v2 bytes are unchanged); replay turns each one into a
//                       SpiPayload::Kind::kKbPublish service record.
//
// A session's frames appear in its v2 order; frames of different sessions interleave freely.
// ReplayMultiplexedLog turns the frame sequence into the equivalent interleaved SPI stream
// (session_stream.h) and drives a DetectorService over it, so a recorded multiplexed run —
// faults included, since faults are ordinary telemetry by the time they reach disk — replays
// bit-identically at any shard count.
#ifndef SRC_HOSTS_MUX_LOG_H_
#define SRC_HOSTS_MUX_LOG_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/hangdoctor/detector_service.h"
#include "src/hosts/session_log.h"
#include "src/telemetry/session.h"

namespace hangdoctor {

inline constexpr uint32_t kMuxLogVersion = 3;

enum class MuxFrameTag : uint8_t {
  kOpenSession = 1,
  kRecord = 2,
  kCloseSession = 3,
  kEnd = 4,
  kEpochPublish = 5,
};

// Schedule sentinel for MuxSessionLogs: an entry equal to this emits a kEpochPublish frame
// (sequence numbers assigned 1, 2, ... in schedule order) instead of a session frame.
inline constexpr size_t kMuxEpochPublish = static_cast<size_t>(-1);

// One v2 session log traveling under a stream id.
struct SessionLogSlice {
  telemetry::SessionId id;
  std::string bytes;
};

// Frames a well-formed v2 log contributes to a v3 stream: open + one per record (kTraceUsage
// included, the trailing v2 end marker excluded) + close. Returns false (with `error`) when
// `bytes` is not a well-formed v2 log.
bool MuxFrameCount(const std::string& bytes, size_t* count, std::string* error);

// Multiplexes v2 logs into one v3 stream. `schedule` dictates the interleaving: its k-th
// entry is an index into `sessions`, and that session emits its next pending frame (open
// first, then records in order, then close); each index must appear exactly its
// MuxFrameCount times. An empty schedule means round-robin. Fails on a malformed input log,
// a duplicate session id, trailing bytes after a log's end marker, or a schedule that does
// not exhaust every session.
bool MuxSessionLogs(std::span<const SessionLogSlice> sessions, std::span<const size_t> schedule,
                    std::string* out, std::string* error);

// Demultiplexes a v3 stream back into the per-session v2 logs, byte-identical to what was
// muxed, ordered by each session's open frame. Epoch-publish frames are ignored (they carry
// no session bytes). Each reconstructed log is re-validated, so a corrupt container fails
// here rather than downstream.
bool DemuxSessionLog(const std::string& bytes, std::vector<SessionLogSlice>* sessions,
                     std::string* error);

// Structural scan of a v3 stream, the mux analogue of ScanSessionLog: `header_end` is the
// offset just past the version varint, `record_offsets` holds the byte offset of every
// frame's tag byte (the final kEnd frame included). Lets offset-based tooling — notably the
// fuzzer's record-level mutations — treat v3 containers like v2 logs.
bool ScanMuxLog(const std::string& bytes, SessionLogLayout* layout, std::string* error);

// Replays a v3 stream through a DetectorService: each open frame opens a session, each
// record frame pushes the decoded SPI record (usage footers carry no SPI traffic and are
// skipped), each close frame harvests. `results` comes back in ascending-SessionId order and
// is bit-identical to replaying each demuxed v2 log alone — at any options.shards.
bool ReplayMultiplexedLog(const std::string& bytes, const ServiceOptions& options,
                          std::vector<SessionResult>* results, std::string* error);

}  // namespace hangdoctor

#endif  // SRC_HOSTS_MUX_LOG_H_
