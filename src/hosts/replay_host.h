// The replay Telemetry Host: re-feeds a recorded session log (session_log.h) to a fresh
// DetectorCore, offline, with no simulator. Because the core is a pure function of
// (SessionInfo, config, telemetry stream), the replayed core's execution log, action-table
// transitions, bug reports, and overhead accounting are bit-identical to the live run that
// produced the log — the property the round-trip tests pin down.
//
// Replay is detection-only: the simulator's ground truth is not in the log, so precision /
// recall scoring is unavailable offline (a replayed FleetJobResult carries zeroed stats).
// Report `discovered` markers depend on the BlockingApiDatabase the caller supplies — pass a
// database seeded the same way as the live run to reproduce them.
#ifndef SRC_HOSTS_REPLAY_HOST_H_
#define SRC_HOSTS_REPLAY_HOST_H_

#include <memory>
#include <string>

#include "src/hangdoctor/detector_core.h"
#include "src/hosts/session_log.h"

namespace hangdoctor {

class ReplaySession {
 public:
  // Takes ownership of the parsed log (the core references its symbol table). `database` and
  // `fleet_report` behave as in the live host: optional, shared across sessions when given.
  explicit ReplaySession(SessionLog log, BlockingApiDatabase* database = nullptr,
                         HangBugReport* fleet_report = nullptr);
  ReplaySession(const ReplaySession&) = delete;
  ReplaySession& operator=(const ReplaySession&) = delete;

  // Pushes every recorded SPI record into the core, in recorded order.
  void Run();

  const DetectorCore& core() const { return core_; }
  const SessionLog& log() const { return log_; }

  // Overhead percentage per the recorded usage footer; 0 when the log has no footer.
  double OverheadPercent() const;

 private:
  SessionLog log_;
  DetectorCore core_;
};

// Convenience: load `path`, replay it, and return the session (null + `error` on parse
// failure).
std::unique_ptr<ReplaySession> ReplaySessionLog(const std::string& path,
                                                std::string* error,
                                                BlockingApiDatabase* database = nullptr,
                                                HangBugReport* fleet_report = nullptr);

}  // namespace hangdoctor

#endif  // SRC_HOSTS_REPLAY_HOST_H_
