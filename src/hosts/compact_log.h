// HDSL compaction ("HDSC"): an archive of many v2 session logs with their symbol tables
// deduplicated into one shared string pool. Fleets record one log per session, and every
// session of the same app carries a byte-identical symbol table — by far the largest part of
// a short session's log — so a directory of fleet logs compresses dramatically by interning
// each (function, clazz, file) string once and re-encoding symbol tables as pool references.
//
// Archive layout (same primitive codec as HDSL: LEB128 varints, zigzag signed, length-
// prefixed strings):
//   magic "HDSC", varint version = 1
//   pool   — varint count, then each string length-prefixed; ids are emission order
//   logs   — varint count, then per log:
//              name            (length-prefixed string; the source file name)
//              prefix          (varint size + bytes: the log's bytes [0, symtab_begin) —
//                               magic, version, SessionInfo, config — copied verbatim)
//              symbol table    (varint frame count, then per frame: varint function/clazz/
//                               file pool ids, zigzag line, flags byte — the same field
//                               order and flag bits as the v2 inline encoding)
//              suffix          (varint size + bytes: the log's bytes [header_end, end) —
//                               every record — copied verbatim)
//
// Extraction rebuilds each v2 log byte-identically: prefix + re-encoded symbol table +
// suffix. Byte identity holds because the v2 symbol encoding is canonical (pure LEB128 /
// zigzag, no padding); CompactSessionLogs still verifies the round trip for every log at
// compact time and refuses rather than archive anything it cannot reproduce exactly.
//
// Rollups answer the fleet-scale questions ("which app hangs, on which API?") straight from
// an archive: a per-app activity census and a per-API innermost-frame census over every
// recorded stack sample, both as deterministic CSV (stable row order, no timestamps).
#ifndef SRC_HOSTS_COMPACT_LOG_H_
#define SRC_HOSTS_COMPACT_LOG_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/hosts/session_log.h"

namespace hangdoctor {

inline constexpr char kCompactLogMagic[4] = {'H', 'D', 'S', 'C'};
inline constexpr uint32_t kCompactLogVersion = 1;

// One v2 session log travelling under a name (its source file name, for extraction).
struct CompactInput {
  std::string name;
  std::string bytes;
};

struct CompactStats {
  size_t logs = 0;
  size_t input_bytes = 0;   // sum of the v2 logs
  size_t output_bytes = 0;  // the archive
  size_t pool_strings = 0;
  size_t pool_bytes = 0;  // payload bytes of the shared pool
};

// Compacts v2 logs into one HDSC archive. Fails (false + `error`) on a malformed input log,
// a duplicate name, or a log whose reconstruction is not byte-identical to its input (each
// log is round-trip-verified before the archive is returned). `stats` may be null.
bool CompactSessionLogs(std::span<const CompactInput> logs, std::string* out,
                        CompactStats* stats, std::string* error);

// Expands an HDSC archive back into the original (name, bytes) logs, in archive order,
// byte-identical to what was compacted.
bool ExtractCompactLog(const std::string& bytes, std::vector<CompactInput>* logs,
                       std::string* error);

// Per-app activity over one archive, one row per distinct app package.
struct AppRollupRow {
  std::string app_package;
  int64_t logs = 0;
  int64_t records = 0;     // SPI records across the app's logs
  int64_t dispatches = 0;  // DispatchStart records
  int64_t quiesces = 0;    // ActionQuiesce records
  int64_t samples = 0;     // stack samples captured in DispatchEnd records
};

// Innermost-frame census over every recorded stack sample, one row per API.
struct ApiRollupRow {
  std::string api;  // "clazz.function" of the sample's innermost frame
  int64_t samples = 0;
  int64_t logs = 0;  // distinct logs the API appeared in
};

// Parses every log in an archive and aggregates. Rows come back sorted — apps by package,
// APIs by descending sample count then name — so the output is deterministic.
bool RollupCompactLog(const std::string& bytes, std::vector<AppRollupRow>* apps,
                      std::vector<ApiRollupRow>* apis, std::string* error);

// The rollups as CSV ("app,logs,records,dispatches,quiesces,stack_samples" /
// "api,stack_samples,logs"), header line included.
std::string RenderAppRollupCsv(std::span<const AppRollupRow> rows);
std::string RenderApiRollupCsv(std::span<const ApiRollupRow> rows);

}  // namespace hangdoctor

#endif  // SRC_HOSTS_COMPACT_LOG_H_
