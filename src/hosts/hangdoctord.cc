// hangdoctord: the standalone HDSL collector daemon. Binds a loopback TCP port, accepts
// hangdoctor wire-protocol connections (src/netd/), streams their telemetry into one shared
// DetectorService, and on SIGTERM/SIGINT drains gracefully — stop accepting, flush every
// in-flight session, print the merged fleet Hang Bug Report, exit 0.
//
// Usage:
//   hangdoctord [--port=N] [--workers=N] [--rings=N] [--shards=N] [--budget-mb=N]
//               [--max-connections=N] [--pin] [--worker] [--watchdog-ms=N] [--drain-ms=N]
//
// --port=0 (default) binds an ephemeral port; the banner line "listening on port N" names
// it, which is how scripts/netd_smoke.sh and the loadgen find the daemon.
//
// --worker runs the daemon as a fleetd shard-group member: worker-role HELLOs are accepted
// (coordinator control frames + per-close kSessionResult replies) and the self-watchdog is
// armed (default 2000 ms; tune with --watchdog-ms) so a wedged applier forfeits the lease
// and the coordinator migrates this worker's sessions. --drain-ms bounds the shutdown
// drain: a drain that cannot finish inside the deadline reports the undrained session ids
// (the coordinator recovers them by HDSL replay) instead of hanging the exit.
#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/hangdoctor/detector_service.h"
#include "src/netd/server.h"

namespace {

int64_t FlagValue(int argc, char** argv, const char* prefix, int64_t fallback) {
  size_t len = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, len) == 0) {
      return std::strtoll(argv[i] + len, nullptr, 10);
    }
  }
  return fallback;
}

bool HasBareFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  netd::ServerOptions options;
  options.port = static_cast<uint16_t>(FlagValue(argc, argv, "--port=", 0));
  options.workers = static_cast<int32_t>(FlagValue(argc, argv, "--workers=", 2));
  options.rings = static_cast<int32_t>(FlagValue(argc, argv, "--rings=", 0));
  options.service.shards =
      static_cast<int32_t>(FlagValue(argc, argv, "--shards=", options.workers));
  options.session_budget_bytes = FlagValue(argc, argv, "--budget-mb=", 256) << 20;
  options.max_connections =
      static_cast<int32_t>(FlagValue(argc, argv, "--max-connections=", 4096));
  options.pin_workers = HasBareFlag(argc, argv, "--pin");
  options.allow_worker_role = HasBareFlag(argc, argv, "--worker");
  options.watchdog_timeout_ms =
      FlagValue(argc, argv, "--watchdog-ms=", options.allow_worker_role ? 2000 : 0);
  int64_t drain_ms = FlagValue(argc, argv, "--drain-ms=", 0);

  // Block the shutdown signals before any server thread exists, so every thread inherits
  // the mask and sigwait below is the one consumer.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGINT);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  try {
    netd::NetServer server(options);
    std::printf("hangdoctord listening on port %u (%d workers, %d rings, %d shards%s)\n",
                server.port(), options.workers,
                options.rings == 0 ? options.workers : options.rings,
                options.service.shards,
                options.allow_worker_role ? ", worker mode" : "");
    std::fflush(stdout);

    int sig = 0;
    sigwait(&mask, &sig);
    std::printf("hangdoctord: signal %d, draining\n", sig);
    std::fflush(stdout);

    if (drain_ms > 0) {
      std::vector<uint64_t> undrained = server.Stop(drain_ms);
      if (!undrained.empty()) {
        std::printf("drain timed out: %zu sessions undrained:", undrained.size());
        for (uint64_t id : undrained) {
          std::printf(" %llu", static_cast<unsigned long long>(id));
        }
        std::printf("\n");
        std::fflush(stdout);
        // A wedged applier cannot be joined; the coordinator replays the undrained
        // sessions elsewhere. Exit without running the blocking destructor.
        std::_Exit(2);
      }
    } else {
      server.Stop();
    }
    std::vector<netd::NetSessionOutcome> outcomes = server.TakeResults();
    std::vector<hangdoctor::SessionResult> closed;
    size_t aborted = 0;
    for (auto& outcome : outcomes) {
      if (outcome.aborted) {
        ++aborted;
      } else {
        closed.push_back(std::move(outcome.result));
      }
    }
    // The bit-identity contract merges in ascending-SessionId order.
    std::sort(closed.begin(), closed.end(),
              [](const auto& a, const auto& b) { return a.id.value < b.id.value; });
    hangdoctor::HangBugReport merged = hangdoctor::MergeSessionReports(closed);
    int32_t devices = static_cast<int32_t>(closed.size());
    std::printf("%s", merged.Render(devices > 0 ? devices : 1).c_str());
    std::printf("drained clean: %zu sessions, %zu aborted\n", closed.size(), aborted);
    std::fflush(stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hangdoctord: %s\n", e.what());
    return 1;
  }
  return 0;
}
