// fleetd: the distributed-fleet coordinator daemon. Links to N hangdoctord workers
// (started with --worker), accepts plain hangdoctor wire-protocol clients on its own port,
// and routes every client session's frames to the worker owning that session-id range —
// the clients speak to fleetd exactly as they would to a single hangdoctord, while the
// shard group behind it migrates, fences, and fails over (src/fleetd/coordinator.h).
//
// Usage:
//   fleetd --worker-port=N [--worker-port=N ...] [--port=N] [--max-sessions=N]
//          [--lease-ms=N] [--heartbeat-ms=N]
//
// --port=0 (default) binds an ephemeral port; the banner "fleetd listening on port N" names
// it (scripts/fleetd_smoke.sh parses this). Session ids 1..max-sessions are partitioned
// into contiguous per-worker ranges up front. On SIGTERM/SIGINT fleetd folds the fleet
// report — bit-identical to a single hangdoctord ingesting the same sessions — prints it,
// and exits 0 with the same "drained clean: N sessions, M aborted" line hangdoctord emits.
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/fleetd/coordinator.h"
#include "src/hosts/mux_log.h"
#include "src/netd/wire.h"

namespace {

int64_t FlagValue(int argc, char** argv, const char* prefix, int64_t fallback) {
  size_t len = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, len) == 0) {
      return std::strtoll(argv[i] + len, nullptr, 10);
    }
  }
  return fallback;
}

std::vector<uint16_t> WorkerPorts(int argc, char** argv) {
  std::vector<uint16_t> ports;
  const char* prefix = "--worker-port=";
  size_t len = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, len) == 0) {
      ports.push_back(static_cast<uint16_t>(std::strtoll(argv[i] + len, nullptr, 10)));
    }
  }
  return ports;
}

// One client connection: reads frames on its own thread, routes them, and answers with the
// per-session kSessionClosed replies (pushed by the coordinator's done callback) plus the
// final kBye. Writes are serialized by `write_mu` — the done callback lands on coordinator
// threads while the conn thread answers HELLO/BYE.
struct ClientConn {
  int fd = -1;
  std::mutex write_mu;
  std::mutex mu;
  std::condition_variable cv;
  std::unordered_set<uint64_t> pending;  // sessions opened here, not yet concluded
  uint64_t closed = 0;                   // sessions concluded clean

  bool Send(const std::string& payload) {
    std::string frame;
    netd::AppendFrame(&frame, payload);
    std::lock_guard<std::mutex> lock(write_mu);
    size_t off = 0;
    while (off < frame.size()) {
      ssize_t n = send(fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }
};

struct FrontEnd {
  fleetd::Coordinator* coordinator = nullptr;
  std::mutex mu;
  std::unordered_map<uint64_t, std::shared_ptr<ClientConn>> session_conns;

  void OnSessionDone(uint64_t id, bool aborted) {
    std::shared_ptr<ClientConn> conn;
    {
      std::lock_guard<std::mutex> lock(mu);
      auto it = session_conns.find(id);
      if (it == session_conns.end()) {
        return;
      }
      conn = it->second;
      session_conns.erase(it);
    }
    if (!aborted) {
      conn->Send(netd::BuildSessionClosed(id, /*stream_ok=*/true, 0, ""));
    }
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->pending.erase(id);
    if (!aborted) {
      ++conn->closed;
    }
    conn->cv.notify_all();
  }

  // True when `conn` may open `id` (no other live connection holds it).
  bool ClaimSession(uint64_t id, const std::shared_ptr<ClientConn>& conn) {
    std::lock_guard<std::mutex> lock(mu);
    auto [it, inserted] = session_conns.emplace(id, conn);
    return inserted || it->second == conn;
  }
};

void ServeClient(FrontEnd* front, std::shared_ptr<ClientConn> conn) {
  netd::FrameSplitter splitter;
  bool hello_done = false;
  bool bye = false;
  std::string payload;
  char buf[16 * 1024];
  while (!bye) {
    while (!bye && splitter.Next(&payload)) {
      if (!hello_done) {
        uint32_t version = 0;
        netd::HelloRole role = netd::HelloRole::kClient;
        std::string error;
        if (!netd::ParseHello(payload, &version, &role, &error) ||
            version < netd::kWireVersionMin || version > netd::kWireVersionMax ||
            role != netd::HelloRole::kClient) {
          conn->Send(netd::BuildError("hello rejected"));
          goto done;
        }
        conn->Send(netd::BuildHelloOk(version));
        hello_done = true;
        continue;
      }
      auto tag = static_cast<hangdoctor::MuxFrameTag>(static_cast<uint8_t>(payload[0]));
      if (tag == hangdoctor::MuxFrameTag::kEnd) {
        bye = true;
        break;
      }
      if (tag == hangdoctor::MuxFrameTag::kEpochPublish) {
        continue;  // no session bytes; the workers replay their own publish schedules
      }
      uint64_t id = 0;
      size_t pos = 1;
      if (!netd::GetVarint(payload, &pos, &id)) {
        conn->Send(netd::BuildError("malformed session frame"));
        goto done;
      }
      if (tag == hangdoctor::MuxFrameTag::kOpenSession) {
        if (!front->ClaimSession(id, conn)) {
          conn->Send(netd::BuildError("session id already owned by another connection"));
          goto done;
        }
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->pending.insert(id);
      }
      std::string error;
      if (!front->coordinator->RouteFrame(id, payload, &error)) {
        conn->Send(netd::BuildError("route: " + error));
        goto done;
      }
    }
    if (bye || !splitter.ok()) {
      break;
    }
    ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      goto done;
    }
    splitter.Feed(buf, static_cast<size_t>(n));
  }
  if (bye) {
    // Every routed close produces a done callback (result or abort); wait, then BYE.
    std::unique_lock<std::mutex> lock(conn->mu);
    conn->cv.wait_for(lock, std::chrono::minutes(5), [&] { return conn->pending.empty(); });
    uint64_t closed = conn->closed;
    lock.unlock();
    conn->Send(netd::BuildBye(closed));
  }
done:
  close(conn->fd);
  conn->fd = -1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<uint16_t> worker_ports = WorkerPorts(argc, argv);
  if (worker_ports.empty()) {
    std::fprintf(stderr, "fleetd: at least one --worker-port=N required\n");
    return 1;
  }
  auto listen_port = static_cast<uint16_t>(FlagValue(argc, argv, "--port=", 0));
  uint64_t max_sessions = static_cast<uint64_t>(FlagValue(argc, argv, "--max-sessions=", 1 << 20));
  int64_t lease_ms = FlagValue(argc, argv, "--lease-ms=", 2000);
  int64_t heartbeat_ms = FlagValue(argc, argv, "--heartbeat-ms=", 200);

  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGINT);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  try {
    FrontEnd front;
    fleetd::CoordinatorOptions options;
    for (uint16_t port : worker_ports) {
      options.workers.push_back(fleetd::WorkerEndpoint{.port = port, .fd = -1});
    }
    options.lease_timeout_ms = lease_ms;
    options.on_session_done = [&front](uint64_t id, bool aborted) {
      // Runs under the coordinator lock: hand the socket work to the front end, which never
      // re-enters the coordinator from here.
      front.OnSessionDone(id, aborted);
    };
    fleetd::Coordinator coordinator(options);
    front.coordinator = &coordinator;
    coordinator.AssignRange(1, max_sessions);

    // Liveness beats on real time (the in-process drivers inject a virtual clock instead).
    std::atomic<bool> stop{false};
    std::thread heartbeat([&] {
      auto start = std::chrono::steady_clock::now();
      while (!stop.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(heartbeat_ms));
        auto now = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
        coordinator.Pulse(now);
      }
    });

    int listen_fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    int one = 1;
    setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(listen_port);
    if (bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        listen(listen_fd, 128) != 0) {
      std::fprintf(stderr, "fleetd: bind/listen failed: %s\n", std::strerror(errno));
      return 1;
    }
    socklen_t addr_len = sizeof(addr);
    getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
    std::printf("fleetd listening on port %u (%zu workers, sessions 1..%llu)\n",
                ntohs(addr.sin_port), worker_ports.size(),
                static_cast<unsigned long long>(max_sessions));
    std::fflush(stdout);

    std::vector<std::thread> client_threads;
    std::thread acceptor([&] {
      while (true) {
        int fd = accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd < 0) {
          if (errno == EINTR) {
            continue;
          }
          return;  // listener closed: shutting down
        }
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        auto conn = std::make_shared<ClientConn>();
        conn->fd = fd;
        client_threads.emplace_back(ServeClient, &front, conn);
      }
    });

    int sig = 0;
    sigwait(&mask, &sig);
    std::printf("fleetd: signal %d, draining\n", sig);
    std::fflush(stdout);

    // close() alone does not wake a thread blocked in accept4 on Linux; shutdown() does
    // (the accept returns EINVAL and the acceptor exits).
    shutdown(listen_fd, SHUT_RDWR);
    close(listen_fd);
    acceptor.join();
    for (auto& thread : client_threads) {
      thread.join();
    }
    coordinator.WaitForResults(10000);
    fleetd::FleetReport report = coordinator.Finish();
    stop.store(true);
    heartbeat.join();

    size_t aborted = 0;
    std::vector<hangdoctor::SessionResult> clean;
    for (auto& outcome : report.outcomes) {
      if (outcome.aborted) {
        ++aborted;
      } else {
        clean.push_back(std::move(outcome.result));
      }
    }
    int32_t devices = static_cast<int32_t>(clean.size());
    std::printf("%s", report.merged.Render(devices > 0 ? devices : 1).c_str());
    if (report.stats.failovers > 0 || report.stats.migrated > 0) {
      std::printf("fleet: %lld migrated, %lld recovered, %lld failovers, epoch %llu\n",
                  static_cast<long long>(report.stats.migrated),
                  static_cast<long long>(report.stats.recovered),
                  static_cast<long long>(report.stats.failovers),
                  static_cast<unsigned long long>(coordinator.epoch()));
    }
    std::printf("drained clean: %zu sessions, %zu aborted\n", clean.size(), aborted);
    std::fflush(stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleetd: %s\n", e.what());
    return 1;
  }
  return 0;
}
