#include "src/hosts/mux_log.h"

#include <cstring>
#include <unordered_map>
#include <utility>

namespace hangdoctor {

namespace {

void PutVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>(static_cast<uint8_t>(value) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(static_cast<uint8_t>(value)));
}

bool GetVarint(const std::string& data, size_t* pos, uint64_t* value) {
  *value = 0;
  int shift = 0;
  while (*pos < data.size()) {
    auto byte = static_cast<uint8_t>(data[(*pos)++]);
    *value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return true;
    }
    shift += 7;
    if (shift >= 64) {
      return false;
    }
  }
  return false;
}

// Validates one v2 log for muxing: well-formed, and its end marker is the final byte (the
// demuxer regenerates the marker at the close frame, so trailing bytes would be lost).
bool ScanForMux(const std::string& bytes, SessionLogLayout* layout, std::string* error) {
  if (!ScanSessionLog(bytes, layout, error)) {
    return false;
  }
  // ScanSessionLog guarantees at least the end-marker offset.
  if (layout->record_offsets.back() + 1 != bytes.size()) {
    *error = "trailing bytes after session log end marker";
    return false;
  }
  return true;
}

struct Frame {
  MuxFrameTag tag = MuxFrameTag::kEnd;
  telemetry::SessionId id{0};  // publish ordinal for kEpochPublish frames
  size_t frame_offset = 0;     // offset of the tag byte in the stream
  size_t payload_offset = 0;
  size_t payload_size = 0;
};

bool ParseMuxFrames(const std::string& data, std::vector<Frame>* frames, std::string* error) {
  if (data.size() < sizeof(kSessionLogMagic) ||
      std::memcmp(data.data(), kSessionLogMagic, sizeof(kSessionLogMagic)) != 0) {
    *error = "not a multiplexed log (bad magic)";
    return false;
  }
  size_t pos = sizeof(kSessionLogMagic);
  uint64_t version = 0;
  if (!GetVarint(data, &pos, &version)) {
    *error = "truncated multiplexed log version";
    return false;
  }
  if (version != kMuxLogVersion) {
    *error = "unsupported multiplexed log version " + std::to_string(version);
    return false;
  }
  while (pos < data.size()) {
    Frame frame;
    frame.frame_offset = pos;
    frame.tag = static_cast<MuxFrameTag>(static_cast<uint8_t>(data[pos++]));
    if (frame.tag == MuxFrameTag::kEnd) {
      if (pos != data.size()) {
        *error = "trailing bytes after multiplexed log end marker";
        return false;
      }
      frames->push_back(frame);
      return true;
    }
    uint64_t id = 0;
    if (!GetVarint(data, &pos, &id)) {
      *error = "truncated frame session id";
      return false;
    }
    frame.id = telemetry::SessionId{id};
    switch (frame.tag) {
      case MuxFrameTag::kOpenSession:
      case MuxFrameTag::kRecord: {
        uint64_t size = 0;
        if (!GetVarint(data, &pos, &size)) {
          *error = "truncated frame size";
          return false;
        }
        // Compare against the remaining bytes, never `pos + size`: a fuzzed size near 2^64
        // would wrap that sum and pass the check.
        if (size > data.size() - pos) {
          *error = "frame payload overruns the stream";
          return false;
        }
        frame.payload_offset = pos;
        frame.payload_size = static_cast<size_t>(size);
        pos += frame.payload_size;
        break;
      }
      case MuxFrameTag::kCloseSession:
      case MuxFrameTag::kEpochPublish:  // the varint read above is the publish ordinal
        break;
      default:
        *error = "unknown frame tag " + std::to_string(static_cast<int>(frame.tag));
        return false;
    }
    frames->push_back(frame);
  }
  *error = "missing multiplexed log end marker";
  return false;
}

// Rebuilds per-session v2 byte strings from a parsed frame sequence, enforcing the
// open-before-record / close-exactly-once protocol. Output order = open-frame order.
bool AssembleSessions(const std::string& data, const std::vector<Frame>& frames,
                      std::vector<SessionLogSlice>* sessions, std::string* error) {
  struct State {
    size_t index = 0;
    bool closed = false;
  };
  std::unordered_map<uint64_t, State> states;
  for (const Frame& frame : frames) {
    switch (frame.tag) {
      case MuxFrameTag::kOpenSession: {
        auto [it, inserted] = states.try_emplace(frame.id.value);
        if (!inserted) {
          *error = "session " + std::to_string(frame.id.value) + " opened twice";
          return false;
        }
        it->second.index = sessions->size();
        sessions->push_back(
            {frame.id, data.substr(frame.payload_offset, frame.payload_size)});
        break;
      }
      case MuxFrameTag::kRecord: {
        auto it = states.find(frame.id.value);
        if (it == states.end() || it->second.closed) {
          *error = "record for session " + std::to_string(frame.id.value) +
                   " outside its open/close window";
          return false;
        }
        (*sessions)[it->second.index].bytes.append(data, frame.payload_offset,
                                                   frame.payload_size);
        break;
      }
      case MuxFrameTag::kCloseSession: {
        auto it = states.find(frame.id.value);
        if (it == states.end() || it->second.closed) {
          *error = "close for session " + std::to_string(frame.id.value) +
                   " outside its open/close window";
          return false;
        }
        it->second.closed = true;
        // Regenerate the v2 end marker the mux stripped.
        (*sessions)[it->second.index].bytes.push_back(
            static_cast<char>(SessionRecordTag::kEnd));
        break;
      }
      case MuxFrameTag::kEpochPublish:
        break;  // no session bytes: a knowledge-base epoch boundary, replay-only
      case MuxFrameTag::kEnd:
        for (const auto& [id, state] : states) {
          if (!state.closed) {
            *error = "session " + std::to_string(id) + " never closed";
            return false;
          }
        }
        return true;
    }
  }
  *error = "missing multiplexed log end marker";
  return false;
}

}  // namespace

bool MuxFrameCount(const std::string& bytes, size_t* count, std::string* error) {
  SessionLogLayout layout;
  if (!ScanForMux(bytes, &layout, error)) {
    return false;
  }
  // open + one frame per record (the trailing v2 end marker is not a frame) + close.
  *count = layout.record_offsets.size() + 1;
  return true;
}

bool MuxSessionLogs(std::span<const SessionLogSlice> sessions, std::span<const size_t> schedule,
                    std::string* out, std::string* error) {
  std::vector<SessionLogLayout> layouts(sessions.size());
  std::vector<size_t> total_frames(sessions.size());
  std::unordered_map<uint64_t, size_t> seen_ids;
  for (size_t i = 0; i < sessions.size(); ++i) {
    if (!seen_ids.try_emplace(sessions[i].id.value, i).second) {
      *error = "duplicate session id " + std::to_string(sessions[i].id.value);
      return false;
    }
    if (!ScanForMux(sessions[i].bytes, &layouts[i], error)) {
      *error = "session " + std::to_string(sessions[i].id.value) + ": " + *error;
      return false;
    }
    total_frames[i] = layouts[i].record_offsets.size() + 1;
  }

  std::vector<size_t> order;
  if (schedule.empty()) {
    // Round-robin: one frame from each still-pending session, in index order, until done.
    std::vector<size_t> left = total_frames;
    size_t pending = 0;
    for (size_t frames : total_frames) {
      pending += frames;
    }
    while (pending > 0) {
      for (size_t i = 0; i < sessions.size(); ++i) {
        if (left[i] > 0) {
          order.push_back(i);
          --left[i];
          --pending;
        }
      }
    }
    schedule = order;
  }

  std::vector<size_t> cursor(sessions.size(), 0);
  out->clear();
  out->append(kSessionLogMagic, sizeof(kSessionLogMagic));
  PutVarint(out, kMuxLogVersion);
  uint64_t publish_seq = 0;
  for (size_t index : schedule) {
    if (index == kMuxEpochPublish) {
      out->push_back(static_cast<char>(MuxFrameTag::kEpochPublish));
      PutVarint(out, ++publish_seq);
      continue;
    }
    if (index >= sessions.size()) {
      *error = "schedule entry " + std::to_string(index) + " out of range";
      return false;
    }
    const SessionLogSlice& session = sessions[index];
    const SessionLogLayout& layout = layouts[index];
    size_t frame = cursor[index]++;
    if (frame >= total_frames[index]) {
      *error = "schedule overruns session " + std::to_string(session.id.value);
      return false;
    }
    if (frame == 0) {
      out->push_back(static_cast<char>(MuxFrameTag::kOpenSession));
      PutVarint(out, session.id.value);
      PutVarint(out, layout.header_end);
      out->append(session.bytes, 0, layout.header_end);
    } else if (frame + 1 == total_frames[index]) {
      out->push_back(static_cast<char>(MuxFrameTag::kCloseSession));
      PutVarint(out, session.id.value);
    } else {
      size_t offset = layout.record_offsets[frame - 1];
      size_t size = layout.record_offsets[frame] - offset;
      out->push_back(static_cast<char>(MuxFrameTag::kRecord));
      PutVarint(out, session.id.value);
      PutVarint(out, size);
      out->append(session.bytes, offset, size);
    }
  }
  for (size_t i = 0; i < sessions.size(); ++i) {
    if (cursor[i] != total_frames[i]) {
      *error = "schedule does not exhaust session " + std::to_string(sessions[i].id.value);
      return false;
    }
  }
  out->push_back(static_cast<char>(MuxFrameTag::kEnd));
  return true;
}

bool ScanMuxLog(const std::string& bytes, SessionLogLayout* layout, std::string* error) {
  std::vector<Frame> frames;
  if (!ParseMuxFrames(bytes, &frames, error)) {
    return false;
  }
  *layout = SessionLogLayout{};
  // ParseMuxFrames guarantees at least the kEnd frame, so record_offsets is never empty and
  // — matching ScanSessionLog's contract — its back() is the end marker's offset.
  layout->header_end = frames.front().frame_offset;
  layout->symtab_begin = layout->header_end;
  layout->record_offsets.reserve(frames.size());
  for (const Frame& frame : frames) {
    layout->record_offsets.push_back(frame.frame_offset);
  }
  return true;
}

bool DemuxSessionLog(const std::string& bytes, std::vector<SessionLogSlice>* sessions,
                     std::string* error) {
  std::vector<Frame> frames;
  if (!ParseMuxFrames(bytes, &frames, error)) {
    return false;
  }
  sessions->clear();
  if (!AssembleSessions(bytes, frames, sessions, error)) {
    return false;
  }
  // A corrupt container must fail here, not downstream: every reconstructed log re-parses.
  for (const SessionLogSlice& session : *sessions) {
    SessionLogLayout layout;
    if (!ScanForMux(session.bytes, &layout, error)) {
      *error = "demuxed session " + std::to_string(session.id.value) + " invalid: " + *error;
      return false;
    }
  }
  return true;
}

bool ReplayMultiplexedLog(const std::string& bytes, const ServiceOptions& options,
                          std::vector<SessionResult>* results, std::string* error) {
  std::vector<Frame> frames;
  if (!ParseMuxFrames(bytes, &frames, error)) {
    return false;
  }
  std::vector<SessionLogSlice> sessions;
  if (!AssembleSessions(bytes, frames, &sessions, error)) {
    return false;
  }

  // Parse each reconstructed log; the parsed logs own the symbol tables every ServiceRecord
  // of their session references, so they must outlive Consume below.
  std::vector<SessionLog> logs(sessions.size());
  std::unordered_map<uint64_t, size_t> index_of;
  for (size_t i = 0; i < sessions.size(); ++i) {
    if (!LoadSessionLogBytes(sessions[i].bytes, &logs[i], error)) {
      *error = "session " + std::to_string(sessions[i].id.value) + ": " + *error;
      return false;
    }
    index_of[sessions[i].id.value] = i;
  }

  // Re-express the frame sequence as the interleaved SPI stream the service consumes live.
  std::vector<ServiceRecord> stream;
  stream.reserve(frames.size());
  std::vector<size_t> next_record(sessions.size(), 0);
  for (const Frame& frame : frames) {
    if (frame.tag == MuxFrameTag::kEnd) {
      break;
    }
    if (frame.tag == MuxFrameTag::kEpochPublish) {
      // Recorded epoch boundary: replay it as the service-wide publish record so the
      // replayed run sees the exact snapshot schedule the live run did.
      ServiceRecord publish;
      publish.session = telemetry::SessionId{0};
      publish.record.kind = SpiPayload::Kind::kKbPublish;
      stream.push_back(std::move(publish));
      continue;
    }
    size_t index = index_of.at(frame.id.value);
    ServiceRecord out;
    out.session = frame.id;
    switch (frame.tag) {
      case MuxFrameTag::kOpenSession:
        out.record.kind = SpiPayload::Kind::kSessionOpen;
        out.record.info = logs[index].info;
        out.record.config = logs[index].config;
        break;
      case MuxFrameTag::kCloseSession:
        out.record.kind = SpiPayload::Kind::kSessionClose;
        break;
      case MuxFrameTag::kRecord: {
        auto tag = static_cast<SessionRecordTag>(
            static_cast<uint8_t>(bytes[frame.payload_offset]));
        if (tag == SessionRecordTag::kTraceUsage) {
          continue;  // overhead footer: no SPI traffic to replay
        }
        const SessionRecord& record = logs[index].records[next_record[index]++];
        switch (record.tag) {
          case SessionRecordTag::kDispatchStart:
            out.record.kind = SpiPayload::Kind::kDispatchStart;
            out.record.start = record.start;
            break;
          case SessionRecordTag::kDispatchEnd:
            out.record.kind = SpiPayload::Kind::kDispatchEnd;
            out.record.end = record.end;
            out.record.samples = record.samples;
            break;
          case SessionRecordTag::kActionQuiesce:
            out.record.kind = SpiPayload::Kind::kActionQuiesce;
            out.record.quiesce = record.quiesce;
            break;
          case SessionRecordTag::kCounterFault:
            out.record.kind = SpiPayload::Kind::kCounterFault;
            out.record.fault = record.fault;
            break;
          case SessionRecordTag::kAsyncPost:
            out.record.kind = SpiPayload::Kind::kAsyncPost;
            out.record.async_post = record.async_post;
            break;
          case SessionRecordTag::kAsyncRun:
            out.record.kind = SpiPayload::Kind::kAsyncRun;
            out.record.async_run = record.async_run;
            break;
          case SessionRecordTag::kAsyncWaitStart:
            out.record.kind = SpiPayload::Kind::kAsyncWaitStart;
            out.record.wait_start = record.wait_start;
            break;
          case SessionRecordTag::kAsyncWaitEnd:
            out.record.kind = SpiPayload::Kind::kAsyncWaitEnd;
            out.record.wait_end = record.wait_end;
            break;
          default:
            *error = "unexpected record tag in frame stream";
            return false;
        }
        break;
      }
      case MuxFrameTag::kEnd:
      case MuxFrameTag::kEpochPublish:  // both handled before the switch
        break;
    }
    stream.push_back(std::move(out));
  }

  DetectorService service(options);
  *results = service.Consume(stream);
  return true;
}

}  // namespace hangdoctor
