// The droidsim Telemetry Host: attaches a substrate-agnostic DetectorCore
// (src/hangdoctor/detector_core.h) to one app on one simulated phone. This class owns every
// substrate mechanism the paper's runtime needs —
//  - Looper dispatch notifications (AppObserver) become DispatchStart/End/ActionQuiesce
//    telemetry,
//  - the core's start_counters directive opens a perfsim::PerfSession over the main and
//    render threads counting exactly the filter's events,
//  - the core's arm_hang_check directive schedules the one-timeout-later check that starts
//    the StackSampler if the event is still dispatching (Trace Collector),
//  - async posts / task runs / future waits (AppObserver's causal callbacks) become
//    AsyncPost/AsyncRun/AsyncWaitStart/AsyncWaitEnd telemetry, and while the main thread is
//    both sampled and blocked in a wait, a per-async-thread StackSampler collects the target
//    thread's stacks so the Diagnoser can walk the waiting chain,
//  - at quiesce, the main−render counter differences are read back (only when the core was
//    counting and the action hung) and pushed in with the quiesce event —
// while every detection decision stays in the core. An optional TelemetrySink observes the
// exact stream the core consumes, which is how session recording works (session_log.h).
//
// This is the drop-in successor of the old monolithic hangdoctor::HangDoctor; constructor and
// accessors are unchanged, so existing experiments only swap the include path.
//
// The host drives either a private DetectorCore (owned-core mode — every accessor below
// works) or a DetectorService session it opened (service mode — detection state lives in the
// service; the caller harvests it with DetectorService::Close after the run). Both modes
// route SPI records through the same SpiBackend pointer, so the fault injector and the sink
// tap sit in identical positions and recorded sessions replay bit-identically either way.
#ifndef SRC_HOSTS_HANG_DOCTOR_H_
#define SRC_HOSTS_HANG_DOCTOR_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/droidsim/app.h"
#include "src/droidsim/phone.h"
#include "src/droidsim/stack_sampler.h"
#include "src/faultsim/fault_injector.h"
#include "src/faultsim/fault_plan.h"
#include "src/hangdoctor/detector_core.h"
#include "src/hangdoctor/detector_service.h"
#include "src/perfsim/perf_session.h"
#include "src/telemetry/session.h"

namespace hangdoctor {

class HangDoctor : public droidsim::AppObserver {
 public:
  // Owned-core mode. `database` and `fleet_report` may be null (a private one is used); when
  // given they must outlive this object and collect discoveries across devices. `sink`, when
  // given, receives the full telemetry stream fed to the core (see host_spi.h) and must
  // outlive this object. `plan`, when enabled, injects telemetry faults between this host's
  // mechanisms and the core (src/faultsim); the sink observes the post-injection stream, so
  // faulty sessions record and replay bit-identically.
  HangDoctor(droidsim::Phone* phone, droidsim::App* app, HangDoctorConfig config,
             BlockingApiDatabase* database = nullptr, HangBugReport* fleet_report = nullptr,
             int32_t device_id = 0, TelemetrySink* sink = nullptr,
             faultsim::FaultPlan plan = {});
  // Service mode: opens session `id` on `service` (throws std::invalid_argument if the id is
  // already open) and streams this app's telemetry into it. The session's seed catalog and
  // knowledge base come from the service (ServiceOptions.seed_db / knowledge_base — one
  // source of truth, not a per-session pointer). The service must outlive this object; the
  // caller owns the session's lifecycle end — harvest with service->Close(id) (or Discard)
  // after the run. The core-state accessors below must not be used in this mode.
  HangDoctor(droidsim::Phone* phone, droidsim::App* app, const HangDoctorConfig& config,
             DetectorService* service, telemetry::SessionId id, int32_t device_id = 0,
             TelemetrySink* sink = nullptr, faultsim::FaultPlan plan = {});
  ~HangDoctor() override;
  HangDoctor(const HangDoctor&) = delete;
  HangDoctor& operator=(const HangDoctor&) = delete;

  // droidsim::AppObserver:
  void OnInputEventStart(droidsim::App& app, const droidsim::ActionExecution& execution,
                         int32_t event_index) override;
  void OnInputEventEnd(droidsim::App& app, const droidsim::ActionExecution& execution,
                       int32_t event_index) override;
  void OnActionQuiesced(droidsim::App& app, const droidsim::ActionExecution& execution) override;
  void OnAsyncPost(droidsim::App& app, int64_t execution_id, uint64_t edge,
                   telemetry::ThreadId thread, telemetry::FrameId post_frame,
                   simkit::SimDuration delay) override;
  void OnAsyncRun(droidsim::App& app, int64_t execution_id, uint64_t edge,
                  telemetry::ThreadId thread, bool begin) override;
  void OnAsyncWaitStart(droidsim::App& app, int64_t execution_id, uint64_t edge,
                        telemetry::FrameId wait_frame) override;
  void OnAsyncWaitEnd(droidsim::App& app, int64_t execution_id, uint64_t edge,
                      simkit::SimDuration waited) override;

  // Owned-core accessors; undefined in service mode (state lives in the service — harvest
  // it via DetectorService::Close). config() works in both modes.
  const DetectorCore& core() const { return *core_; }
  const std::vector<ExecutionRecord>& log() const { return core_->log(); }
  const ActionTable& actions() const { return core_->actions(); }
  const OverheadMeter& overhead() const { return core_->overhead(); }
  const HangBugReport& local_report() const { return core_->local_report(); }
  const BlockingApiDatabase& database() const { return core_->database(); }
  const HangDoctorConfig& config() const { return config_; }
  int64_t stack_samples_taken() const { return core_->stack_samples_taken(); }
  bool service_mode() const { return core_ == nullptr; }

 private:
  // Substrate state for one in-flight action execution; detection state lives in the core.
  struct HostExecution {
    std::unique_ptr<perfsim::PerfSession> session;
    std::vector<bool> event_open;
    // Worker-thread stacks collected during this execution's future waits (copied out of the
    // per-thread samplers at wait end), merged behind the main-thread window at DispatchEnd.
    std::vector<telemetry::StackTrace> async_samples;
  };

  HostExecution& Live(const droidsim::ActionExecution& execution);
  void ArmHangCheck(int64_t execution_id, int32_t event_index);
  void StartCounters(HostExecution& live);
  void StartWaitSampler(telemetry::ThreadId thread);

  // SPI routing: through the fault injector when a plan is enabled, else straight to
  // (sink, core) — sink first, so recording sees exactly what the core consumes.
  MonitorDirectives PushStart(const DispatchStart& start);
  void PushEnd(const DispatchEnd& end);
  void PushQuiesce(const ActionQuiesce& quiesce);
  void PushCounterFault(const CounterFault& fault);
  void PushAsyncPost(const AsyncPost& post);
  void PushAsyncRun(const AsyncRun& run);
  void PushAsyncWaitStart(const AsyncWaitStart& wait);
  void PushAsyncWaitEnd(const AsyncWaitEnd& wait);

  void FinishSetup(faultsim::FaultPlan plan, const SessionInfo& info);

  droidsim::Phone* phone_;
  droidsim::App* app_;
  simkit::Rng rng_;
  TelemetrySink* sink_;
  HangDoctorConfig config_;
  std::unique_ptr<DetectorCore> core_;                       // owned-core mode only
  std::unique_ptr<DetectorService::SessionHandle> handle_;   // service mode only
  SpiBackend* backend_ = nullptr;  // the core or the handle; faults/sink sit in front of it
  droidsim::StackSampler sampler_;
  // One sampler per app async thread (handlers then executor pool; telemetry id = index+1).
  // A wait sampler runs only while the main thread is blocked on that thread's work AND the
  // main sampler is (or becomes) active — apps without async threads allocate nothing here.
  std::vector<std::unique_ptr<droidsim::StackSampler>> async_samplers_;
  // Which async thread each live causal edge's task runs on (from AsyncPost, pruned when the
  // task finishes) — resolves a wait's edge to the sampler to start.
  std::unordered_map<uint64_t, telemetry::ThreadId> edge_thread_;
  // The in-progress future wait (at most one: the main thread is blocked inside it).
  uint64_t active_wait_edge_ = 0;
  int64_t active_wait_execution_ = 0;
  telemetry::ThreadId active_wait_thread_ = 0;
  std::unique_ptr<faultsim::FaultInjector> injector_;
  std::unordered_map<int64_t, HostExecution> live_;
};

}  // namespace hangdoctor

#endif  // SRC_HOSTS_HANG_DOCTOR_H_
