// Trace Analyzer (Section 3.4.1): given the stack traces collected during a soft hang, find
// the root-cause operation via occurrence factors and classify it as a UI operation or a soft
// hang bug.
//
// Decision procedure:
//  1. Discard empty (idle) samples.
//  2. If the majority of samples execute a UI-class API innermost, the hang is UI work.
//  3. Otherwise, if one API dominates the innermost frames (occurrence factor >= the
//     threshold), it is the culprit — a single heavy blocking API (the camera.open /
//     HtmlCleaner.clean shape).
//  4. Otherwise many light APIs share the time: the culprit is the deepest *caller* common to
//     most samples — a self-developed lengthy operation (the heavy-loop shape). Moving any
//     single callee would not fix the hang, so the whole caller is reported.
//
// Traces carry interned FrameIds, so the occurrence census is integer counting over dense
// id-indexed arrays; the culprit's symbolic frame is materialized from the SymbolTable only
// once the diagnosis is final.
#ifndef SRC_HANGDOCTOR_TRACE_ANALYZER_H_
#define SRC_HANGDOCTOR_TRACE_ANALYZER_H_

#include <span>
#include <string>
#include <vector>

#include "src/hangdoctor/thresholds.h"
#include "src/telemetry/stack.h"
#include "src/telemetry/symbols.h"

namespace hangdoctor {

struct Diagnosis {
  bool valid = false;  // false when no usable samples were collected
  telemetry::StackFrame culprit;
  double occurrence_factor = 0.0;
  bool is_ui = false;
  bool is_self_developed = false;
  size_t samples_used = 0;
  // Waiting-chain provenance (DESIGN.md section 3.8): set when the main-thread culprit was a
  // blocking wait and the hang was re-attributed to the async thread's stack. `culprit` is
  // then the async culprit; `wait_frame` keeps the main-thread wait site for the report.
  bool via_async_wait = false;
  telemetry::StackFrame wait_frame;
};

struct TraceAnalyzerConfig {
  // Minimum innermost-frame occurrence for a single API to be declared the culprit.
  double api_occurrence_threshold = kApiOccurrenceThreshold;
  // Minimum occurrence for a caller frame to be declared a self-developed culprit.
  double caller_occurrence_threshold = kCallerOccurrenceThreshold;
  // Fraction of innermost UI frames above which the hang is classified as UI work.
  double ui_majority = kUiMajorityThreshold;
};

class TraceAnalyzer {
 public:
  explicit TraceAnalyzer(TraceAnalyzerConfig config = {}) : config_(config) {}

  // `symbols` must be the table the traces' frame ids were interned in (the app's).
  // `app_package` is accepted for interface stability but unused: self-developed culprits
  // are recognized structurally (case 4) or by the host's provenance bit on the frame.
  Diagnosis Analyze(std::span<const telemetry::StackTrace> traces,
                    const telemetry::SymbolTable& symbols,
                    const std::string& app_package = "") const;

  // The waiting-chain walk. With no wait frames this is exactly Analyze() — bit-identical
  // for every pre-async session. Otherwise: analyze the main-thread samples as usual; when
  // the culprit turns out to be one of `wait_frames` (the execution's Future.get sites) and
  // async-thread samples exist, re-run the analysis over the async samples and attribute the
  // hang to the thread doing the work, keeping the wait site as provenance. When the async
  // samples are unusable (idle thread, no samples) the wait-frame diagnosis stands.
  Diagnosis AnalyzeCausal(std::span<const telemetry::StackTrace> traces,
                          const telemetry::SymbolTable& symbols, const std::string& app_package,
                          std::span<const telemetry::FrameId> wait_frames) const;

  const TraceAnalyzerConfig& config() const { return config_; }

 private:
  TraceAnalyzerConfig config_;
};

}  // namespace hangdoctor

#endif  // SRC_HANGDOCTOR_TRACE_ANALYZER_H_
