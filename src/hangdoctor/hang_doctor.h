// Hang Doctor runtime (Figure 2(a)): the two-phase detector attached to one app on one device.
//
// Components and their paper counterparts:
//  - App Injector        -> the constructor: seeds the action table with one UID per action
//                           and hooks the app's Looper dispatch notifications.
//  - Response Time Mon.  -> OnInputEventStart/End (backed by Looper message logging, the
//                           setMessageLogging technique of Section 3.5).
//  - Perf Event Monitor  -> a perfsim::PerfSession over the main and render threads counting
//                           exactly the filter's events (three software events by default).
//  - S-Checker           -> first phase, runs for Uncategorized actions: on a >100 ms action,
//                           reads the main−render counter differences and applies the
//                           SoftHangFilter.
//  - Diagnoser           -> second phase, runs for Suspicious/HangBug actions: once an input
//                           event exceeds the timeout again, collects stack traces until the
//                           hang ends (Trace Collector) and attributes the hang (Trace
//                           Analyzer), transitioning the action per Figure 3.
//  - Hang Bug Report     -> diagnosed bugs are recorded locally and into a shared fleet report.
//  - Blocking-API DB     -> newly diagnosed non-UI, non-self-developed APIs are added so
//                           offline detectors learn them.
//
// Every monitoring act is charged to an OverheadMeter per the Section 4.5 methodology.
#ifndef SRC_HANGDOCTOR_HANG_DOCTOR_H_
#define SRC_HANGDOCTOR_HANG_DOCTOR_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/droidsim/app.h"
#include "src/droidsim/phone.h"
#include "src/droidsim/stack_sampler.h"
#include "src/hangdoctor/action_state.h"
#include "src/hangdoctor/blocking_api_db.h"
#include "src/hangdoctor/correlation.h"
#include "src/hangdoctor/filter.h"
#include "src/hangdoctor/overhead.h"
#include "src/hangdoctor/report.h"
#include "src/hangdoctor/trace_analyzer.h"
#include "src/perfsim/perf_session.h"

namespace hangdoctor {

enum class Verdict {
  kNotChecked,        // Normal-state action: no monitoring beyond the state lookup
  kNoHang,            // response never exceeded the timeout
  kFilteredUi,        // S-Checker: no symptoms -> Normal
  kMarkedSuspicious,  // S-Checker: symptoms -> Suspicious
  kAwaitingHang,      // Diagnoser armed but the action did not hang this time
  kDiagnosedUi,       // Diagnoser: culprit is a UI operation -> Normal (path B)
  kDiagnosedBug,      // Diagnoser: soft hang bug confirmed -> Hang Bug (path C)
};

const char* VerdictName(Verdict verdict);

struct ExecutionRecord {
  int32_t action_uid = -1;
  int64_t execution_id = 0;
  simkit::SimDuration response = 0;
  bool hang = false;
  ActionState state_before = ActionState::kUncategorized;
  bool schecker_ran = false;
  bool diagnoser_ran = false;
  bool traced = false;
  Verdict verdict = Verdict::kNotChecked;
  Diagnosis diagnosis;
  // Counter differences S-Checker read (filter events only; zeros elsewhere).
  perfsim::CounterArray schecker_diffs{};
  // Stack traces the Diagnoser collected (kept only when config.keep_traces is set).
  std::vector<droidsim::StackTrace> traces;
};

struct HangDoctorConfig {
  SoftHangFilter filter = SoftHangFilter::Default();
  // Monitor only the main thread (pre-5.0 devices, Table 3(b) mode).
  bool main_only = false;
  simkit::SimDuration hang_timeout = simkit::kPerceivableDelay;
  simkit::SimDuration sample_interval = simkit::Milliseconds(20);
  int32_t reset_after_normal = 20;
  TraceAnalyzerConfig analyzer;
  MonitorCosts costs;
  // Test-bed mode (Section 4.6): skip phase 1 and trace every soft hang.
  bool second_phase_only = false;
  // Retain collected stack traces in the execution log (debugging / report rendering).
  bool keep_traces = false;
};

class HangDoctor : public droidsim::AppObserver {
 public:
  // `database` and `fleet_report` may be null (a private one is used); when given they must
  // outlive this object and collect discoveries across devices.
  HangDoctor(droidsim::Phone* phone, droidsim::App* app, HangDoctorConfig config,
             BlockingApiDatabase* database = nullptr, HangBugReport* fleet_report = nullptr,
             int32_t device_id = 0);
  ~HangDoctor() override;
  HangDoctor(const HangDoctor&) = delete;
  HangDoctor& operator=(const HangDoctor&) = delete;

  // droidsim::AppObserver:
  void OnInputEventStart(droidsim::App& app, const droidsim::ActionExecution& execution,
                         int32_t event_index) override;
  void OnInputEventEnd(droidsim::App& app, const droidsim::ActionExecution& execution,
                       int32_t event_index) override;
  void OnActionQuiesced(droidsim::App& app, const droidsim::ActionExecution& execution) override;

  const std::vector<ExecutionRecord>& log() const { return log_; }
  const ActionTable& actions() const { return table_; }
  const OverheadMeter& overhead() const { return overhead_; }
  const HangBugReport& local_report() const { return local_report_; }
  const BlockingApiDatabase& database() const { return *database_; }
  const HangDoctorConfig& config() const { return config_; }
  int64_t stack_samples_taken() const { return samples_taken_; }

 private:
  struct LiveExecution {
    ActionState state_before = ActionState::kUncategorized;
    std::unique_ptr<perfsim::PerfSession> session;
    std::vector<droidsim::StackTrace> traces;
    std::vector<bool> event_open;
    bool diagnoser_armed = false;
    simkit::SimDuration longest_hang = 0;
  };

  LiveExecution& Live(const droidsim::ActionExecution& execution);
  void ArmHangCheck(int64_t execution_id, int32_t event_index);
  void RunSChecker(const droidsim::ActionExecution& execution, LiveExecution& live,
                   ExecutionRecord& record);
  void RunDiagnoser(const droidsim::ActionExecution& execution, LiveExecution& live,
                    ExecutionRecord& record);

  droidsim::Phone* phone_;
  droidsim::App* app_;
  HangDoctorConfig config_;
  ActionTable table_;
  TraceAnalyzer analyzer_;
  BlockingApiDatabase own_database_;
  BlockingApiDatabase* database_;
  HangBugReport local_report_;
  HangBugReport* fleet_report_;
  int32_t device_id_;
  simkit::Rng rng_;
  OverheadMeter overhead_;
  droidsim::StackSampler sampler_;
  std::unordered_map<int64_t, LiveExecution> live_;
  std::vector<ExecutionRecord> log_;
  int64_t samples_taken_ = 0;
};

}  // namespace hangdoctor

#endif  // SRC_HANGDOCTOR_HANG_DOCTOR_H_
