// The substrate-agnostic Hang Doctor core (Figure 2(a)): the two-phase detector as a pure
// function of a telemetry stream. Components and their paper counterparts:
//  - App Injector        -> the constructor: seeds the action table with one UID per action.
//  - Response Time Mon.  -> DispatchStart/DispatchEnd telemetry (on a device this is Looper
//                           message logging, the setMessageLogging technique of Section 3.5;
//                           in simulation the droidsim host's dispatch notifications).
//  - Perf Event Monitor  -> the host's counter session, engaged on the core's
//                           start_counters directive and read back as ActionQuiesce deltas.
//  - S-Checker           -> first phase, runs for Uncategorized actions: on a >100 ms action,
//                           applies the SoftHangFilter to the main−render counter deltas.
//  - Diagnoser           -> second phase, runs for Suspicious/HangBug actions: arms the
//                           host's hang check, consumes the stack samples delivered at
//                           DispatchEnd, and attributes the hang (Trace Analyzer),
//                           transitioning the action per Figure 3.
//  - Hang Bug Report     -> diagnosed bugs are recorded locally and into a shared fleet report.
//  - Blocking-API DB     -> newly diagnosed non-UI, non-self-developed APIs are added so
//                           offline detectors learn them.
//
// The core depends only on the Telemetry Host SPI (host_spi.h), simkit time/ids, and the
// telemetry vocabulary — never on a substrate. Feeding two cores the same SessionInfo,
// config, and telemetry stream produces bit-identical logs, state transitions, reports, and
// overhead accounting; that property is what the session record/replay hosts build on.
//
// Every monitoring act is charged to an OverheadMeter per the Section 4.5 methodology.
#ifndef SRC_HANGDOCTOR_DETECTOR_CORE_H_
#define SRC_HANGDOCTOR_DETECTOR_CORE_H_

#include <limits>
#include <unordered_map>
#include <vector>

#include "src/hangdoctor/action_state.h"
#include "src/hangdoctor/blocking_api_db.h"
#include "src/hangdoctor/filter.h"
#include "src/hangdoctor/host_spi.h"
#include "src/hangdoctor/knowledge_base.h"
#include "src/hangdoctor/overhead.h"
#include "src/hangdoctor/report.h"
#include "src/hangdoctor/stream_guard.h"
#include "src/hangdoctor/thresholds.h"
#include "src/hangdoctor/trace_analyzer.h"

namespace hangdoctor {

enum class Verdict {
  kNotChecked,        // Normal-state action: no monitoring beyond the state lookup
  kNoHang,            // response never exceeded the timeout
  kFilteredUi,        // S-Checker: no symptoms -> Normal
  kMarkedSuspicious,  // S-Checker: symptoms -> Suspicious
  kAwaitingHang,      // Diagnoser armed but the action did not hang this time
  kDiagnosedUi,       // Diagnoser: culprit is a UI operation -> Normal (path B)
  kDiagnosedBug,      // Diagnoser: soft hang bug confirmed -> Hang Bug (path C)
  kCounterFailure,    // S-Checker: hang but no usable counters yet -> stays Uncategorized
};

const char* VerdictName(Verdict verdict);

struct ExecutionRecord {
  int32_t action_uid = -1;
  int64_t execution_id = 0;
  simkit::SimDuration response = 0;
  bool hang = false;
  ActionState state_before = ActionState::kUncategorized;
  bool schecker_ran = false;
  bool diagnoser_ran = false;
  bool traced = false;
  // The check ran without usable counters (invalid read, or counters permanently gone and
  // S-Checker fell back to the timeout-only predicate).
  bool degraded = false;
  Verdict verdict = Verdict::kNotChecked;
  Diagnosis diagnosis;
  // Counter differences S-Checker read (filter events only; zeros elsewhere).
  telemetry::CounterArray schecker_diffs{};
  // Stack traces the Diagnoser collected (kept only when config.keep_traces is set).
  std::vector<telemetry::StackTrace> traces;
};

struct HangDoctorConfig {
  SoftHangFilter filter = SoftHangFilter::Default();
  // Monitor only the main thread (pre-5.0 devices, Table 3(b) mode).
  bool main_only = false;
  simkit::SimDuration hang_timeout = kHangTimeout;
  simkit::SimDuration sample_interval = kDefaultSampleInterval;
  int32_t reset_after_normal = kDefaultResetAfterNormal;
  TraceAnalyzerConfig analyzer;
  MonitorCosts costs;
  // Test-bed mode (Section 4.6): skip phase 1 and trace every soft hang.
  bool second_phase_only = false;
  // Retain collected stack traces in the execution log (debugging / report rendering).
  bool keep_traces = false;
  // Graceful-degradation policy for transient counter-session failures (DESIGN.md 3.4):
  // bounded per-execution retries, each waiting counter_retry_backoff << (k-1) dispatch
  // events before re-issuing start_counters.
  int32_t max_counter_retries = kMaxCounterOpenRetries;
  int32_t counter_retry_backoff = kCounterRetryBackoffDispatches;
};

class DetectorCore : public SpiBackend {
 public:
  // `database` and `fleet_report` may be null (a private one is used); when given they must
  // outlive this object and collect discoveries across devices. `info.symbols` must outlive
  // this object. Throws std::invalid_argument when `info` is malformed (null symbol table or
  // a non-positive action count) — a session that cannot be monitored is refused up front
  // rather than left to fault on the first telemetry push.
  //
  // `kb` is an optional knowledge-base snapshot (knowledge_base.h): when valid, the
  // Diagnoser consults the shared diagnosis memo before running the trace analyzer — a hit
  // returns the identical Diagnosis with the Analyze work skipped — and diagnoses computed
  // locally queue in TakeKbMemos() for publication at session close. Verdicts, logs, and
  // reports are bit-identical with any snapshot (including none): the memo caches a pure
  // function and the database is write-only on the detection path.
  DetectorCore(const SessionInfo& info, HangDoctorConfig config,
               BlockingApiDatabase* database = nullptr, HangBugReport* fleet_report = nullptr,
               KnowledgeBase::Snapshot kb = {});
  DetectorCore(const DetectorCore&) = delete;
  DetectorCore& operator=(const DetectorCore&) = delete;

  // Telemetry Host SPI entry points (see host_spi.h for the contract).
  MonitorDirectives OnDispatchStart(const DispatchStart& start) override;
  void OnDispatchEnd(const DispatchEnd& end) override;
  void OnActionQuiesced(const ActionQuiesce& quiesce) override;
  void OnCounterFault(const CounterFault& fault) override;
  void OnAsyncPost(const AsyncPost& post) override;
  void OnAsyncRun(const AsyncRun& run) override;
  void OnAsyncWaitStart(const AsyncWaitStart& wait) override;
  void OnAsyncWaitEnd(const AsyncWaitEnd& wait) override;

  const std::vector<ExecutionRecord>& log() const { return log_; }
  // Moves the execution log out (the DetectorService harvests it when a session closes and
  // the core is about to be destroyed); the core is not usable for detection afterwards.
  std::vector<ExecutionRecord> TakeLog() { return std::move(log_); }
  const ActionTable& actions() const { return table_; }
  const OverheadMeter& overhead() const { return overhead_; }
  const HangBugReport& local_report() const { return local_report_; }
  const BlockingApiDatabase& database() const { return *database_; }
  const HangDoctorConfig& config() const { return config_; }
  const SessionInfo& session() const { return info_; }
  int64_t stack_samples_taken() const { return samples_taken_; }
  const DegradationStats& degradation() const { return degradation_; }
  // What the knowledge base saved this session (zeros when no snapshot was supplied).
  const KbSessionStats& kb_stats() const { return kb_stats_; }
  // Moves out the diagnoses this session computed itself (memo misses), for publication into
  // the shared memo. Harvested once at session close, like TakeLog().
  std::vector<DiagnosisMemoEntry> TakeKbMemos() { return std::move(kb_memos_); }
  // SPI-stream validator; stream().ok() goes false (sticky) on an impossible stream.
  const StreamGuard& stream() const { return guard_; }

 private:
  struct LiveExecution {
    ActionState state_before = ActionState::kUncategorized;
    std::vector<telemetry::StackTrace> traces;
    // Wait frames (Future.get sites) this execution blocked in, from AsyncWaitStart records;
    // the Diagnoser's waiting-chain walk re-attributes a hang whose culprit is one of these.
    std::vector<telemetry::FrameId> wait_frames;
    int32_t action_uid = -1;
    // event_index of the input event currently dispatching; -1 between events. A second
    // start while an event is open is an impossible stream (sticky StreamError).
    int32_t open_event = -1;
    bool counters_started = false;
    bool diagnoser_armed = false;
    simkit::SimDuration longest_hang = 0;
  };

  LiveExecution& Live(const DispatchStart& start);
  void RunSChecker(const ActionQuiesce& quiesce, LiveExecution& live, ExecutionRecord& record);
  void RunDiagnoser(const ActionQuiesce& quiesce, LiveExecution& live, ExecutionRecord& record);

  SessionInfo info_;
  HangDoctorConfig config_;
  ActionTable table_;
  TraceAnalyzer analyzer_;
  BlockingApiDatabase own_database_;
  BlockingApiDatabase* database_;
  HangBugReport local_report_;
  HangBugReport* fleet_report_;
  OverheadMeter overhead_;
  StreamGuard guard_;
  DegradationStats degradation_;
  KnowledgeBase::Snapshot kb_;
  KbSessionStats kb_stats_;
  std::vector<DiagnosisMemoEntry> kb_memos_;
  // Reused buffer for FillDiagnosisMemoKey: repeat diagnoses build their probe key with
  // zero allocations.
  DiagnosisMemoKey kb_key_scratch_;
  std::unordered_map<int64_t, LiveExecution> live_;
  std::vector<ExecutionRecord> log_;
  int64_t samples_taken_ = 0;
  // Highest execution_id ever quiesced: a DispatchStart at or below it (and not live) is a
  // stale re-delivery and is dropped, not restarted.
  int64_t completed_watermark_ = std::numeric_limits<int64_t>::min();
  // Counter-open retry state, session-wide (executions are usually single-dispatch, so the
  // backoff clock must span executions): `counter_failure_streak_` counts consecutive
  // transient open failures and resets when an opened session survives to quiesce;
  // `dispatch_events_` is the backoff clock; a retry is issued once it reaches
  // `counter_retry_at_`. A streak past config.max_counter_retries escalates to
  // counters_unavailable.
  int64_t dispatch_events_ = 0;
  int32_t counter_failure_streak_ = 0;
  int64_t counter_retry_at_ = 0;
};

}  // namespace hangdoctor

#endif  // SRC_HANGDOCTOR_DETECTOR_CORE_H_
