#include "src/hangdoctor/trace_analyzer.h"

#include <algorithm>
#include <cstdint>

namespace hangdoctor {

namespace {

// The census identity string the analyzer historically keyed on. Only materialized to break
// exact count ties, so the common path never touches symbols.
std::string FrameKey(const telemetry::StackFrame& frame) {
  return frame.clazz + "." + frame.function + "@" + frame.file + ":" +
         std::to_string(frame.line);
}

// Tie order: lexicographically smallest census key wins (the order the analyzer's old
// string-keyed map iterated in), keeping diagnoses byte-identical across the id refactor.
bool KeyLess(const telemetry::SymbolTable& symbols, telemetry::FrameId a, telemetry::FrameId b) {
  return FrameKey(symbols.Frame(a)) < FrameKey(symbols.Frame(b));
}

constexpr telemetry::FrameId kNoFrame = UINT32_MAX;

}  // namespace

Diagnosis TraceAnalyzer::Analyze(std::span<const telemetry::StackTrace> traces,
                                 const telemetry::SymbolTable& symbols,
                                 const std::string& app_package) const {
  // A dominant single API is reported as a (possibly new) blocking API even when its class
  // lives in the app's own package — runtime behaviour, not provenance, is what matters
  // (Section 2.2: blocking status comes from expert diagnosis of runtime data). The package
  // only disambiguates case 4, where the culprit is a caller *function* rather than an API.
  (void)app_package;
  Diagnosis diagnosis;
  std::vector<const telemetry::StackTrace*> usable;
  for (const telemetry::StackTrace& trace : traces) {
    if (trace.frames.empty()) {
      continue;
    }
    // A frame id outside the session's symbol table marks a corrupted sample (a fuzzed or
    // torn log); such traces are excluded from the census rather than indexed blindly.
    bool in_range = true;
    for (telemetry::FrameId id : trace.frames) {
      if (id >= symbols.size()) {
        in_range = false;
        break;
      }
    }
    if (in_range) {
      usable.push_back(&trace);
    }
  }
  if (usable.empty()) {
    return diagnosis;
  }
  diagnosis.valid = true;
  diagnosis.samples_used = usable.size();
  double total = static_cast<double>(usable.size());

  // Innermost-frame census: dense integer counting over frame ids.
  std::vector<int64_t> innermost(symbols.size(), 0);
  int64_t ui_innermost = 0;
  for (const telemetry::StackTrace* trace : usable) {
    telemetry::FrameId leaf = trace->frames.back();
    ++innermost[leaf];
    if (symbols.IsUi(leaf)) {
      ++ui_innermost;
    }
  }
  telemetry::FrameId top = kNoFrame;
  for (telemetry::FrameId id = 0; id < innermost.size(); ++id) {
    if (innermost[id] == 0) {
      continue;
    }
    if (top == kNoFrame || innermost[id] > innermost[top] ||
        (innermost[id] == innermost[top] && KeyLess(symbols, id, top))) {
      top = id;
    }
  }

  // Case 2: the samples are dominated by UI-class work.
  if (static_cast<double>(ui_innermost) / total >= config_.ui_majority) {
    // Report the most frequent innermost UI frame as the (benign) cause.
    telemetry::FrameId top_ui = kNoFrame;
    for (telemetry::FrameId id = 0; id < innermost.size(); ++id) {
      if (innermost[id] == 0 || !symbols.IsUi(id)) {
        continue;
      }
      if (top_ui == kNoFrame || innermost[id] > innermost[top_ui] ||
          (innermost[id] == innermost[top_ui] && KeyLess(symbols, id, top_ui))) {
        top_ui = id;
      }
    }
    telemetry::FrameId chosen = top_ui != kNoFrame ? top_ui : top;
    diagnosis.culprit = symbols.Frame(chosen);
    diagnosis.occurrence_factor = static_cast<double>(innermost[chosen]) / total;
    diagnosis.is_ui = true;
    return diagnosis;
  }

  // Case 3: one API dominates.
  double top_occurrence = static_cast<double>(innermost[top]) / total;
  if (top_occurrence >= config_.api_occurrence_threshold) {
    diagnosis.culprit = symbols.Frame(top);
    diagnosis.occurrence_factor = top_occurrence;
    diagnosis.is_ui = symbols.IsUi(top);
    return diagnosis;
  }

  // Case 4: many light callees — find the deepest caller frame common to most samples.
  // Count occurrence (at any depth) per non-leaf frame, remembering its maximum depth.
  std::vector<int64_t> callers(symbols.size(), 0);
  std::vector<size_t> caller_depth(symbols.size(), 0);
  for (const telemetry::StackTrace* trace : usable) {
    for (size_t depth = 0; depth + 1 < trace->frames.size(); ++depth) {
      telemetry::FrameId id = trace->frames[depth];
      ++callers[id];
      caller_depth[id] = std::max(caller_depth[id], depth);
    }
  }
  telemetry::FrameId best = kNoFrame;
  for (telemetry::FrameId id = 0; id < callers.size(); ++id) {
    if (callers[id] == 0) {
      continue;
    }
    double occurrence = static_cast<double>(callers[id]) / total;
    if (occurrence < config_.caller_occurrence_threshold) {
      continue;
    }
    if (best == kNoFrame || caller_depth[id] > caller_depth[best] ||
        (caller_depth[id] == caller_depth[best] &&
         (callers[id] > callers[best] ||
          (callers[id] == callers[best] && KeyLess(symbols, id, best))))) {
      best = id;
    }
  }
  if (best != kNoFrame) {
    diagnosis.culprit = symbols.Frame(best);
    diagnosis.occurrence_factor = static_cast<double>(callers[best]) / total;
    diagnosis.is_ui = symbols.IsUi(best);
    diagnosis.is_self_developed = true;
    return diagnosis;
  }

  // Fall back to the most frequent innermost frame even below threshold.
  diagnosis.culprit = symbols.Frame(top);
  diagnosis.occurrence_factor = top_occurrence;
  diagnosis.is_ui = symbols.IsUi(top);
  return diagnosis;
}

Diagnosis TraceAnalyzer::AnalyzeCausal(std::span<const telemetry::StackTrace> traces,
                                       const telemetry::SymbolTable& symbols,
                                       const std::string& app_package,
                                       std::span<const telemetry::FrameId> wait_frames) const {
  if (wait_frames.empty()) {
    return Analyze(traces, symbols, app_package);
  }
  // Partition by thread: the main thread's samples carry the symptom (the wait frame); any
  // async thread's samples carry the cause. Diagnosis runs once per hang, so the copies here
  // never touch the sampling hot path.
  std::vector<telemetry::StackTrace> main_traces;
  std::vector<telemetry::StackTrace> async_traces;
  for (const telemetry::StackTrace& trace : traces) {
    (trace.thread == telemetry::kMainThread ? main_traces : async_traces).push_back(trace);
  }
  Diagnosis main_diag = Analyze(main_traces, symbols, app_package);
  if (!main_diag.valid) {
    return main_diag;
  }
  bool culprit_is_wait = false;
  for (telemetry::FrameId id : wait_frames) {
    if (id < symbols.size() && symbols.Frame(id) == main_diag.culprit) {
      culprit_is_wait = true;
      break;
    }
  }
  if (!culprit_is_wait || async_traces.empty()) {
    return main_diag;
  }
  Diagnosis async_diag = Analyze(async_traces, symbols, app_package);
  if (!async_diag.valid) {
    return main_diag;  // async thread was idle/unsampled; the wait-site diagnosis stands
  }
  async_diag.via_async_wait = true;
  async_diag.wait_frame = main_diag.culprit;
  // Worker stacks are rooted at the submit site, so the caller census (case 4) that marks
  // self-developed work on the main thread cannot fire here — the async culprit is a
  // dominant leaf either way. The host's provenance bit on the culprit frame substitutes,
  // keeping self-developed operations out of the blocking-API database on this path too.
  if (!async_diag.is_self_developed) {
    for (telemetry::FrameId id = 0; id < symbols.size(); ++id) {
      if (symbols.IsSelfDeveloped(id) && symbols.Frame(id) == async_diag.culprit) {
        async_diag.is_self_developed = true;
        break;
      }
    }
  }
  return async_diag;
}

}  // namespace hangdoctor
