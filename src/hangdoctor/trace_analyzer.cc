#include "src/hangdoctor/trace_analyzer.h"

#include <algorithm>
#include <map>

#include "src/droidsim/api.h"

namespace hangdoctor {

namespace {

std::string FrameKey(const droidsim::StackFrame& frame) {
  return frame.clazz + "." + frame.function + "@" + frame.file + ":" +
         std::to_string(frame.line);
}

}  // namespace

Diagnosis TraceAnalyzer::Analyze(const std::vector<droidsim::StackTrace>& traces,
                                const std::string& app_package) const {
  // A dominant single API is reported as a (possibly new) blocking API even when its class
  // lives in the app's own package — runtime behaviour, not provenance, is what matters
  // (Section 2.2: blocking status comes from expert diagnosis of runtime data). The package
  // only disambiguates case 4, where the culprit is a caller *function* rather than an API.
  (void)app_package;
  Diagnosis diagnosis;
  std::vector<const droidsim::StackTrace*> usable;
  for (const droidsim::StackTrace& trace : traces) {
    if (!trace.frames.empty()) {
      usable.push_back(&trace);
    }
  }
  if (usable.empty()) {
    return diagnosis;
  }
  diagnosis.valid = true;
  diagnosis.samples_used = usable.size();
  double total = static_cast<double>(usable.size());

  // Innermost-frame census.
  std::map<std::string, std::pair<droidsim::StackFrame, int64_t>> innermost;
  int64_t ui_innermost = 0;
  for (const droidsim::StackTrace* trace : usable) {
    const droidsim::StackFrame& leaf = trace->frames.back();
    auto [it, inserted] = innermost.try_emplace(FrameKey(leaf), leaf, 0);
    ++it->second.second;
    if (droidsim::IsUiClass(leaf.clazz)) {
      ++ui_innermost;
    }
  }
  const std::pair<droidsim::StackFrame, int64_t>* top = nullptr;
  for (const auto& [key, entry] : innermost) {
    if (top == nullptr || entry.second > top->second) {
      top = &entry;
    }
  }

  // Case 2: the samples are dominated by UI-class work.
  if (static_cast<double>(ui_innermost) / total >= config_.ui_majority) {
    // Report the most frequent innermost UI frame as the (benign) cause.
    const std::pair<droidsim::StackFrame, int64_t>* top_ui = nullptr;
    for (const auto& [key, entry] : innermost) {
      if (!droidsim::IsUiClass(entry.first.clazz)) {
        continue;
      }
      if (top_ui == nullptr || entry.second > top_ui->second) {
        top_ui = &entry;
      }
    }
    const auto& chosen = top_ui != nullptr ? *top_ui : *top;
    diagnosis.culprit = chosen.first;
    diagnosis.occurrence_factor = static_cast<double>(chosen.second) / total;
    diagnosis.is_ui = true;
    return diagnosis;
  }

  // Case 3: one API dominates.
  double top_occurrence = static_cast<double>(top->second) / total;
  if (top_occurrence >= config_.api_occurrence_threshold) {
    diagnosis.culprit = top->first;
    diagnosis.occurrence_factor = top_occurrence;
    diagnosis.is_ui = droidsim::IsUiClass(top->first.clazz);
    return diagnosis;
  }

  // Case 4: many light callees — find the deepest caller frame common to most samples.
  // Count occurrence (at any depth) per non-leaf frame, remembering its maximum depth.
  std::map<std::string, std::pair<droidsim::StackFrame, int64_t>> callers;
  std::map<std::string, size_t> caller_depth;
  for (const droidsim::StackTrace* trace : usable) {
    for (size_t depth = 0; depth + 1 < trace->frames.size(); ++depth) {
      const droidsim::StackFrame& frame = trace->frames[depth];
      std::string key = FrameKey(frame);
      auto [it, inserted] = callers.try_emplace(key, frame, 0);
      ++it->second.second;
      caller_depth[key] = std::max(caller_depth[key], depth);
    }
  }
  const std::pair<droidsim::StackFrame, int64_t>* best = nullptr;
  size_t best_depth = 0;
  for (const auto& [key, entry] : callers) {
    double occurrence = static_cast<double>(entry.second) / total;
    if (occurrence < config_.caller_occurrence_threshold) {
      continue;
    }
    size_t depth = caller_depth[key];
    if (best == nullptr || depth > best_depth ||
        (depth == best_depth && entry.second > best->second)) {
      best = &entry;
      best_depth = depth;
    }
  }
  if (best != nullptr) {
    diagnosis.culprit = best->first;
    diagnosis.occurrence_factor = static_cast<double>(best->second) / total;
    diagnosis.is_ui = droidsim::IsUiClass(best->first.clazz);
    diagnosis.is_self_developed = true;
    return diagnosis;
  }

  // Fall back to the most frequent innermost frame even below threshold.
  diagnosis.culprit = top->first;
  diagnosis.occurrence_factor = top_occurrence;
  diagnosis.is_ui = droidsim::IsUiClass(top->first.clazz);
  return diagnosis;
}

}  // namespace hangdoctor
