// Shared SPI-stream validation and degradation accounting for every detector core (Hang
// Doctor's DetectorCore and the baseline cores in src/baselines/detector_cores.h — the same
// contract on both sides keeps Table 2/5 comparisons fair when faults are injected).
//
// On a real device the telemetry stream is not perfect: perf sessions fail to open, samplers
// drop windows, and an adapter bug (or an injected fault — src/faultsim) can deliver
// duplicate, delayed, or out-of-order records. A core must never silently misbehave on such
// input. The policy, mirrored by the HDSL reader's sticky-fail:
//
//  - *Impossible* streams fail sticky. Time running backwards, or a DispatchStart arriving
//    while the execution's previous event never ended (an unmatched start/end pair), cannot
//    be explained by any benign host; the guard enters a StreamError state and the core
//    ignores everything that follows — a refused stream, never a garbage report.
//  - *Duplicate-shaped* anomalies degrade gracefully. A DispatchEnd or ActionQuiesce for an
//    unknown execution, a re-delivered quiesce after completion, or a stale DispatchStart
//    for an already-completed execution is indistinguishable from a benignly re-sent or
//    delayed record: it is dropped and counted, and detection continues.
//
// DegradationStats is the session-level account of every such event plus the counter-failure
// degradation path (see DetectorCore); the fleet runner surfaces it per job and
// bench/table5_app_study prints it under --faults=PROFILE.
#ifndef SRC_HANGDOCTOR_STREAM_GUARD_H_
#define SRC_HANGDOCTOR_STREAM_GUARD_H_

#include <cstdint>
#include <limits>
#include <string>
#include <utility>

#include "src/simkit/time.h"

namespace hangdoctor {

// Session-level account of telemetry faults observed and degradations applied.
struct DegradationStats {
  // Counter-session failures the host reported (CounterFault records).
  int64_t counter_open_failures = 0;
  // start_counters directives re-issued after a transient failure (also counted in the
  // OverheadMeter: retries are monitoring work).
  int64_t counter_retries = 0;
  // Hangs where S-Checker had no usable counters and the retry budget was not yet exhausted:
  // the action stays Uncategorized and is re-examined on its next execution.
  int64_t invalid_counter_windows = 0;
  // Hangs classified by the degraded timeout-only predicate (counters permanently gone).
  int64_t degraded_checks = 0;
  // Armed trace collections that delivered zero samples: the diagnosis aborts and the action
  // stays Suspicious/HangBug so the next hang retries it.
  int64_t empty_trace_windows = 0;
  // Duplicate-shaped SPI records dropped by the StreamGuard policy above.
  int64_t dropped_records = 0;
  // Sticky: the host's counters are permanently unavailable; S-Checker runs timeout-only.
  bool counters_unavailable = false;

  // True when any degradation left a mark a report consumer should know about.
  bool Degraded() const {
    return counters_unavailable || degraded_checks > 0 || invalid_counter_windows > 0 ||
           counter_open_failures > 0;
  }
};

// Sticky stream validator: admits monotone timestamps until the first impossible record,
// after which every event is refused (mirrors the HDSL reader's sticky-fail).
class StreamGuard {
 public:
  // Admits an event timestamp. Returns false — sticky — once the stream is in error; a
  // regression (now earlier than the previous admitted event) trips the error.
  bool AdmitTime(simkit::SimTime now) {
    if (!ok_) {
      return false;
    }
    if (now < last_now_) {
      SetError("time regression: " + std::to_string(now) + " after " +
               std::to_string(last_now_));
      return false;
    }
    last_now_ = now;
    return true;
  }

  // Enters the sticky StreamError state (first error wins).
  void SetError(std::string message) {
    if (ok_) {
      ok_ = false;
      error_ = std::move(message);
    }
  }

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

 private:
  bool ok_ = true;
  simkit::SimTime last_now_ = std::numeric_limits<simkit::SimTime>::min();
  std::string error_;
};

}  // namespace hangdoctor

#endif  // SRC_HANGDOCTOR_STREAM_GUARD_H_
