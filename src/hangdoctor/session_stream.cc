#include "src/hangdoctor/session_stream.h"

namespace hangdoctor {

void SpiStreamRecorder::OnSessionStart(const SessionInfo& info) { info_ = info; }

void SpiStreamRecorder::OnDispatchStart(const DispatchStart& start) {
  SpiPayload payload;
  payload.kind = SpiPayload::Kind::kDispatchStart;
  payload.start = start;
  records_.push_back(std::move(payload));
}

void SpiStreamRecorder::OnDispatchEnd(const DispatchEnd& end) {
  SpiPayload payload;
  payload.kind = SpiPayload::Kind::kDispatchEnd;
  payload.end = end;
  // The span in `end` points at the host's sample buffer, which is reused; own a copy and
  // repoint at push time (Consume/ApplyRecord re-derive end.samples from payload.samples).
  payload.samples.assign(end.samples.begin(), end.samples.end());
  records_.push_back(std::move(payload));
}

void SpiStreamRecorder::OnActionQuiesce(const ActionQuiesce& quiesce) {
  SpiPayload payload;
  payload.kind = SpiPayload::Kind::kActionQuiesce;
  payload.quiesce = quiesce;
  records_.push_back(std::move(payload));
}

void SpiStreamRecorder::OnCounterFault(const CounterFault& fault) {
  SpiPayload payload;
  payload.kind = SpiPayload::Kind::kCounterFault;
  payload.fault = fault;
  records_.push_back(std::move(payload));
}

void SpiStreamRecorder::OnAsyncPost(const AsyncPost& post) {
  SpiPayload payload;
  payload.kind = SpiPayload::Kind::kAsyncPost;
  payload.async_post = post;
  records_.push_back(std::move(payload));
}

void SpiStreamRecorder::OnAsyncRun(const AsyncRun& run) {
  SpiPayload payload;
  payload.kind = SpiPayload::Kind::kAsyncRun;
  payload.async_run = run;
  records_.push_back(std::move(payload));
}

void SpiStreamRecorder::OnAsyncWaitStart(const AsyncWaitStart& wait) {
  SpiPayload payload;
  payload.kind = SpiPayload::Kind::kAsyncWaitStart;
  payload.wait_start = wait;
  records_.push_back(std::move(payload));
}

void SpiStreamRecorder::OnAsyncWaitEnd(const AsyncWaitEnd& wait) {
  SpiPayload payload;
  payload.kind = SpiPayload::Kind::kAsyncWaitEnd;
  payload.wait_end = wait;
  records_.push_back(std::move(payload));
}

void TeeSink::OnSessionStart(const SessionInfo& info) {
  if (first_ != nullptr) first_->OnSessionStart(info);
  if (second_ != nullptr) second_->OnSessionStart(info);
}

void TeeSink::OnDispatchStart(const DispatchStart& start) {
  if (first_ != nullptr) first_->OnDispatchStart(start);
  if (second_ != nullptr) second_->OnDispatchStart(start);
}

void TeeSink::OnDispatchEnd(const DispatchEnd& end) {
  if (first_ != nullptr) first_->OnDispatchEnd(end);
  if (second_ != nullptr) second_->OnDispatchEnd(end);
}

void TeeSink::OnActionQuiesce(const ActionQuiesce& quiesce) {
  if (first_ != nullptr) first_->OnActionQuiesce(quiesce);
  if (second_ != nullptr) second_->OnActionQuiesce(quiesce);
}

void TeeSink::OnCounterFault(const CounterFault& fault) {
  if (first_ != nullptr) first_->OnCounterFault(fault);
  if (second_ != nullptr) second_->OnCounterFault(fault);
}

void TeeSink::OnAsyncPost(const AsyncPost& post) {
  if (first_ != nullptr) first_->OnAsyncPost(post);
  if (second_ != nullptr) second_->OnAsyncPost(post);
}

void TeeSink::OnAsyncRun(const AsyncRun& run) {
  if (first_ != nullptr) first_->OnAsyncRun(run);
  if (second_ != nullptr) second_->OnAsyncRun(run);
}

void TeeSink::OnAsyncWaitStart(const AsyncWaitStart& wait) {
  if (first_ != nullptr) first_->OnAsyncWaitStart(wait);
  if (second_ != nullptr) second_->OnAsyncWaitStart(wait);
}

void TeeSink::OnAsyncWaitEnd(const AsyncWaitEnd& wait) {
  if (first_ != nullptr) first_->OnAsyncWaitEnd(wait);
  if (second_ != nullptr) second_->OnAsyncWaitEnd(wait);
}

}  // namespace hangdoctor
