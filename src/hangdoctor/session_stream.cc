#include "src/hangdoctor/session_stream.h"

namespace hangdoctor {

void SpiStreamRecorder::OnSessionStart(const SessionInfo& info) { info_ = info; }

void SpiStreamRecorder::OnDispatchStart(const DispatchStart& start) {
  SpiPayload payload;
  payload.kind = SpiPayload::Kind::kDispatchStart;
  payload.start = start;
  records_.push_back(std::move(payload));
}

void SpiStreamRecorder::OnDispatchEnd(const DispatchEnd& end) {
  SpiPayload payload;
  payload.kind = SpiPayload::Kind::kDispatchEnd;
  payload.end = end;
  // The span in `end` points at the host's sample buffer, which is reused; own a copy and
  // repoint at push time (Consume/ApplyRecord re-derive end.samples from payload.samples).
  payload.samples.assign(end.samples.begin(), end.samples.end());
  records_.push_back(std::move(payload));
}

void SpiStreamRecorder::OnActionQuiesce(const ActionQuiesce& quiesce) {
  SpiPayload payload;
  payload.kind = SpiPayload::Kind::kActionQuiesce;
  payload.quiesce = quiesce;
  records_.push_back(std::move(payload));
}

void SpiStreamRecorder::OnCounterFault(const CounterFault& fault) {
  SpiPayload payload;
  payload.kind = SpiPayload::Kind::kCounterFault;
  payload.fault = fault;
  records_.push_back(std::move(payload));
}

void TeeSink::OnSessionStart(const SessionInfo& info) {
  if (first_ != nullptr) first_->OnSessionStart(info);
  if (second_ != nullptr) second_->OnSessionStart(info);
}

void TeeSink::OnDispatchStart(const DispatchStart& start) {
  if (first_ != nullptr) first_->OnDispatchStart(start);
  if (second_ != nullptr) second_->OnDispatchStart(start);
}

void TeeSink::OnDispatchEnd(const DispatchEnd& end) {
  if (first_ != nullptr) first_->OnDispatchEnd(end);
  if (second_ != nullptr) second_->OnDispatchEnd(end);
}

void TeeSink::OnActionQuiesce(const ActionQuiesce& quiesce) {
  if (first_ != nullptr) first_->OnActionQuiesce(quiesce);
  if (second_ != nullptr) second_->OnActionQuiesce(quiesce);
}

void TeeSink::OnCounterFault(const CounterFault& fault) {
  if (first_ != nullptr) first_->OnCounterFault(fault);
  if (second_ != nullptr) second_->OnCounterFault(fault);
}

}  // namespace hangdoctor
