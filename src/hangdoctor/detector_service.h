// The session-multiplexed detector service: one process, thousands of concurrent sessions.
//
// The paper's deployment is fleet-scale — many users' devices each streaming S-Checker /
// Diagnoser telemetry that merges into one Hang Bug Report. A DetectorService is the backend
// end of that pipe: it owns many live DetectorCores keyed by telemetry::SessionId, consumes a
// single interleaved record stream (every SPI record carries a session tag — see
// session_stream.h), and routes each record to the per-session core via deterministic shard
// assignment (shard = ShardOf(session_id, shards) = hash(id) % shards).
//
// Concurrency and determinism contract:
//  - Each session's records must be pushed in session order (one producer per session — the
//    natural shape: a device's telemetry arrives in order). Different sessions may be pushed
//    from different threads concurrently; a shard-level mutex serializes only the sessions
//    that hash to the same shard.
//  - Detection is per-session pure: a session's result depends only on its own (info, config,
//    stream), never on shard placement, worker interleaving, or which other sessions are
//    live. Merged outputs are folded in ascending-SessionId order (MergeSessionReports), so
//    merged DetectionStats / HangBugReport are bit-identical at any shard or worker count.
//  - Memory is bounded by *live* sessions, not total sessions: Close() harvests a compact
//    SessionResult and destroys the per-session arena (core, action table, private
//    blocking-API database) immediately. The fleet bench (bench/bench_service.cc) pins this:
//    10k sequentially-windowed sessions peak at the working set of the window, not the total.
//
// Hosts attach through a SessionHandle, which implements SpiBackend — so the droidsim
// adapter and the fault injector drive a service session with exactly the code that drives a
// private core; faults are injected per-session, upstream of the mux, and recorded sessions
// still replay bit-identically.
#ifndef SRC_HANGDOCTOR_DETECTOR_SERVICE_H_
#define SRC_HANGDOCTOR_DETECTOR_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/hangdoctor/blocking_api_db.h"
#include "src/hangdoctor/detector_core.h"
#include "src/hangdoctor/host_spi.h"
#include "src/hangdoctor/report.h"
#include "src/hangdoctor/session_stream.h"
#include "src/hangdoctor/stream_guard.h"
#include "src/telemetry/session.h"

namespace hangdoctor {

struct ServiceOptions {
  // Shard count; <= 0 resolves to 1. More shards reduce lock contention when many producer
  // threads feed disjoint sessions; results are bit-identical at any value.
  int32_t shards = 1;
};

// Everything a closed session leaves behind. Compact: the heavy live state (core, action
// table, symbol-table references) is gone by the time the caller holds this.
struct SessionResult {
  telemetry::SessionId id;
  std::string app_package;
  int32_t device_id = 0;
  std::vector<ExecutionRecord> log;  // the core's execution log (moved out, not copied)
  HangBugReport report;              // the session's local Hang Bug Report
  OverheadMeter overhead;
  DegradationStats degradation;
  bool stream_ok = true;
  std::string stream_error;
  int64_t stack_samples = 0;
  std::vector<std::string> discovered;  // blocking APIs this session newly learned
};

class DetectorService {
 public:
  explicit DetectorService(const ServiceOptions& options = {});
  DetectorService(const DetectorService&) = delete;
  DetectorService& operator=(const DetectorService&) = delete;

  // One session's view of the service, as an SpiBackend: hosts and fault injectors push
  // through this exactly as they would into a private DetectorCore.
  class SessionHandle final : public SpiBackend {
   public:
    SessionHandle(DetectorService* service, telemetry::SessionId id)
        : service_(service), id_(id) {}
    MonitorDirectives OnDispatchStart(const DispatchStart& start) override {
      return service_->OnDispatchStart(id_, start);
    }
    void OnDispatchEnd(const DispatchEnd& end) override { service_->OnDispatchEnd(id_, end); }
    void OnActionQuiesced(const ActionQuiesce& quiesce) override {
      service_->OnActionQuiesced(id_, quiesce);
    }
    void OnCounterFault(const CounterFault& fault) override {
      service_->OnCounterFault(id_, fault);
    }
    telemetry::SessionId id() const { return id_; }

   private:
    DetectorService* service_;
    telemetry::SessionId id_;
  };

  // Opens a session: allocates its arena (private database copy seeded from `known_db` when
  // given, plus the DetectorCore) on the shard the id hashes to. `info.symbols` must outlive
  // the session. Throws std::invalid_argument on a duplicate id or malformed info (the core
  // constructor's validation).
  void Open(telemetry::SessionId id, const SessionInfo& info, const HangDoctorConfig& config,
            const BlockingApiDatabase* known_db = nullptr);

  // Per-record entry points; route to the owning shard. Throw std::invalid_argument for a
  // session that was never opened (or already closed) — an unroutable record is a client
  // bug, not telemetry the service can degrade on.
  MonitorDirectives OnDispatchStart(telemetry::SessionId id, const DispatchStart& start);
  void OnDispatchEnd(telemetry::SessionId id, const DispatchEnd& end);
  void OnActionQuiesced(telemetry::SessionId id, const ActionQuiesce& quiesce);
  void OnCounterFault(telemetry::SessionId id, const CounterFault& fault);

  // Finalizes the session: harvests its result and frees its arena. The returned log is
  // moved, not copied, so closing is O(result), independent of how many sessions ever ran.
  SessionResult Close(telemetry::SessionId id);

  // Drops a session without harvesting (client error path: the producer died mid-stream).
  void Discard(telemetry::SessionId id);

  SessionHandle Handle(telemetry::SessionId id) { return SessionHandle(this, id); }

  // Batch entry: consumes one interleaved stream in order — open/record/close framing per
  // session_stream.h — and returns the results of every session closed by the stream, in
  // ascending-SessionId order. `known_db` seeds each opened session's private database.
  std::vector<SessionResult> Consume(std::span<const ServiceRecord> stream,
                                     const BlockingApiDatabase* known_db = nullptr);

  size_t live_sessions() const;
  int64_t sessions_opened() const { return opened_.load(std::memory_order_relaxed); }
  int32_t shards() const { return static_cast<int32_t>(shards_.size()); }

 private:
  // One session's arena: everything that exists only while the session is live.
  struct SessionSlot {
    BlockingApiDatabase database;
    std::unique_ptr<DetectorCore> core;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<telemetry::SessionId, std::unique_ptr<SessionSlot>,
                       telemetry::SessionIdHasher>
        live;
  };

  Shard& ShardFor(telemetry::SessionId id) {
    return *shards_[telemetry::ShardOf(id, shards_.size())];
  }
  // Locks the owning shard and returns the slot; throws if the session is not live.
  SessionSlot& Slot(Shard& shard, telemetry::SessionId id);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> opened_{0};
  std::atomic<int64_t> live_{0};
};

// Folds session-local Hang Bug Reports into one fleet report in ascending-SessionId order —
// the deterministic merge the service's bit-identity contract names.
HangBugReport MergeSessionReports(std::span<const SessionResult> results);

}  // namespace hangdoctor

#endif  // SRC_HANGDOCTOR_DETECTOR_SERVICE_H_
