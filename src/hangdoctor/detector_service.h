// The session-multiplexed detector service: one process, thousands of concurrent sessions,
// ingesting from as many threads as the machine has cores.
//
// The paper's deployment is fleet-scale — many users' devices each streaming S-Checker /
// Diagnoser telemetry that merges into one Hang Bug Report. A DetectorService is the backend
// end of that pipe: it owns many live DetectorCores keyed by telemetry::SessionId, consumes
// interleaved record streams (every SPI record carries a session tag — see session_stream.h),
// and routes each record to the per-session core via deterministic shard assignment
// (shard = ShardOf(session_id, shards) = hash(id) % shards).
//
// Two ingestion surfaces share one shard table:
//
//  - Synchronous push (SessionHandle / the per-record entry points): a live host drives its
//    session record-by-record and receives MonitorDirectives back inline. Many producer
//    threads may push disjoint sessions concurrently; the only shared state is the shard's
//    session map, guarded by a spin lock held for the probe alone — the core call itself runs
//    lock-free, because a session has exactly one producer.
//
//  - Pipelined ingest (threads >= 1 in ServiceOptions): per-shard bounded MPMC ring buffers
//    feed dedicated shard-worker threads. Producers own a DetectorService::Ingestor each,
//    which batches record refs by shard (one ring push per batch, not per record — see
//    simkit::BatchRouter) and blocks on a full ring (bounded backpressure, never unbounded
//    queuing). Every shard is drained by exactly one worker, so the worker applies records —
//    including session open/close — to its shards' arenas with no per-session locking at all.
//    Directives cannot flow back through a ring, so the pipeline is for telemetry that is
//    already recorded or streamed (mux-log replay, the fleet runner's capture-then-ingest
//    mode, the capacity bench); a live co-simulated host keeps using synchronous push.
//
// Concurrency and determinism contract:
//  - Each session's records are pushed in session order by one producer (the natural shape:
//    a device's telemetry arrives in order). A session is driven either synchronously or
//    through the pipeline, never both.
//  - Detection is per-session pure: a session's result depends only on its own (info, config,
//    stream), never on shard placement, worker interleaving, ring batch boundaries, or which
//    other sessions are live. All records of a session land on one shard's ring in push
//    order (MPMC rings preserve per-producer FIFO) and are applied by that shard's single
//    worker in that order — so per-session results are bit-identical at any {threads, shards}
//    pair, and merged outputs folded in ascending-SessionId order (MergeSessionReports,
//    DrainClosed) are too.
//  - Memory is bounded by *live* sessions plus the bounded rings: Close() harvests a compact
//    SessionResult and destroys the per-session arena (core, action table, private
//    blocking-API database) immediately; rings reject/block when full instead of queuing
//    without bound.
//  - Destruction drains gracefully: in-flight batches are flushed (applied) deterministically
//    before the workers join; producers must be quiesced first (no Ingestor may outlive the
//    service).
//
// Hosts attach through a SessionHandle, which implements SpiBackend — so the droidsim
// adapter and the fault injector drive a service session with exactly the code that drives a
// private core; faults are injected per-session, upstream of the mux, and recorded sessions
// still replay bit-identically.
#ifndef SRC_HANGDOCTOR_DETECTOR_SERVICE_H_
#define SRC_HANGDOCTOR_DETECTOR_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/hangdoctor/blocking_api_db.h"
#include "src/hangdoctor/detector_core.h"
#include "src/hangdoctor/host_spi.h"
#include "src/hangdoctor/knowledge_base.h"
#include "src/hangdoctor/report.h"
#include "src/hangdoctor/session_stream.h"
#include "src/hangdoctor/stream_guard.h"
#include "src/simkit/batch_router.h"
#include "src/simkit/mpmc_ring.h"
#include "src/simkit/shard_map.h"
#include "src/simkit/spinlock.h"
#include "src/telemetry/session.h"

namespace hangdoctor {

struct ServiceOptions {
  // Shard count; must be >= 1 (std::invalid_argument otherwise). More shards reduce
  // contention when many producers feed disjoint sessions and set the pipeline's parallelism
  // ceiling; results are bit-identical at any value.
  int32_t shards = 1;
  // Dedicated shard-worker threads for pipelined ingest. 0 (the default) spawns none —
  // synchronous push only. >= 1 spawns workers (shard s is owned by worker s % threads) and
  // enables Ingestor/Ingest/DrainClosed. Negative throws std::invalid_argument.
  int32_t threads = 0;
  // Per-shard ring capacity in *batches* (rounded up to a power of two). With the default
  // batch size this bounds queued-but-unapplied telemetry per shard; producers block when a
  // ring is full.
  int32_t ring_capacity = 256;
  // Records per routed batch: the amortization factor for the hash + ring-dispatch cost.
  int32_t batch_size = 256;
  // Best-effort core affinity: pin worker w to core w. Off by default — pinning helps on
  // dedicated many-core hosts and hurts on small shared runners.
  bool pin_workers = false;
  // Seed blocking-API catalog shared by every session. Copied once at construction (no
  // caller-lifetime footgun); per-session databases overlay the copy instead of duplicating
  // the std::set per session — bit-equivalent, O(1) per open. Mutually exclusive with
  // `knowledge_base` (whose own seed wins). May be null: sessions start empty.
  const BlockingApiDatabase* seed_db = nullptr;
  // Fleet-shared knowledge base (knowledge_base.h). When set, every session opens with the
  // current published snapshot (one atomic load), overlays the KB's seed, and feeds its
  // confirmations/diagnosis memos back at close; WaitIngestIdle() publishes as an epoch
  // boundary. Must outlive the service. Verdicts and results stay bit-identical to running
  // without it.
  KnowledgeBase* knowledge_base = nullptr;
  // Automatic epoch length: publish the knowledge base every N closed sessions (0 = only at
  // barriers and explicit kKbPublish records). Ignored without `knowledge_base`.
  int64_t kb_epoch_sessions = 0;
};

// Everything a closed session leaves behind. Compact: the heavy live state (core, action
// table, symbol-table references) is gone by the time the caller holds this.
struct SessionResult {
  telemetry::SessionId id;
  std::string app_package;
  int32_t device_id = 0;
  std::vector<ExecutionRecord> log;  // the core's execution log (moved out, not copied)
  HangBugReport report;              // the session's local Hang Bug Report
  OverheadMeter overhead;
  DegradationStats degradation;
  bool stream_ok = true;
  std::string stream_error;
  int64_t stack_samples = 0;
  std::vector<std::string> discovered;  // blocking APIs this session newly learned
  KbSessionStats kb;                    // knowledge-base savings (zeros without a KB)
};

// A record the pipeline could not apply (open of a duplicate id, record for a session that
// was never opened, malformed info). The pipeline cannot throw into its producer, so errors
// are collected per shard and surfaced at the barrier.
struct IngestError {
  telemetry::SessionId session;
  std::string message;
};

class DetectorService {
 public:
  explicit DetectorService(const ServiceOptions& options = {});
  ~DetectorService();
  DetectorService(const DetectorService&) = delete;
  DetectorService& operator=(const DetectorService&) = delete;

  // One session's view of the service, as an SpiBackend: hosts and fault injectors push
  // through this exactly as they would into a private DetectorCore.
  class SessionHandle final : public SpiBackend {
   public:
    SessionHandle(DetectorService* service, telemetry::SessionId id)
        : service_(service), id_(id) {}
    MonitorDirectives OnDispatchStart(const DispatchStart& start) override {
      return service_->OnDispatchStart(id_, start);
    }
    void OnDispatchEnd(const DispatchEnd& end) override { service_->OnDispatchEnd(id_, end); }
    void OnActionQuiesced(const ActionQuiesce& quiesce) override {
      service_->OnActionQuiesced(id_, quiesce);
    }
    void OnCounterFault(const CounterFault& fault) override {
      service_->OnCounterFault(id_, fault);
    }
    void OnAsyncPost(const AsyncPost& post) override { service_->OnAsyncPost(id_, post); }
    void OnAsyncRun(const AsyncRun& run) override { service_->OnAsyncRun(id_, run); }
    void OnAsyncWaitStart(const AsyncWaitStart& wait) override {
      service_->OnAsyncWaitStart(id_, wait);
    }
    void OnAsyncWaitEnd(const AsyncWaitEnd& wait) override {
      service_->OnAsyncWaitEnd(id_, wait);
    }
    telemetry::SessionId id() const { return id_; }

   private:
    DetectorService* service_;
    telemetry::SessionId id_;
  };

  // One producer thread's batching front-end to the pipeline (threads >= 1 only; the
  // constructor throws std::logic_error on a service without workers). Push order per
  // session is preserved end-to-end. The payloads behind pushed refs must stay alive until
  // WaitIngestIdle()/DrainClosed() returns; an Ingestor must be flushed (or destroyed)
  // before the barrier and must not outlive the service.
  class Ingestor {
   public:
    explicit Ingestor(DetectorService* service);
    Ingestor(const Ingestor&) = delete;
    Ingestor& operator=(const Ingestor&) = delete;
    ~Ingestor() { router_.Flush(); }

    void Push(ServiceRecordRef ref) { router_.Push(ref); }
    void Push(const ServiceRecord& record) { router_.Push({record.session, &record.record}); }
    // Hands every partial batch to the rings (blocking on full rings).
    void Flush() { router_.Flush(); }

   private:
    simkit::BatchRouter<ServiceRecordRef> router_;
  };

  // Opens a session: allocates its arena (an overlay database over the service seed — or
  // the knowledge base's seed — plus the DetectorCore holding the current KB snapshot) on
  // the shard the id hashes to. `info.symbols` must outlive the session. Throws
  // std::invalid_argument on a duplicate id or malformed info (the core constructor's
  // validation).
  void Open(telemetry::SessionId id, const SessionInfo& info, const HangDoctorConfig& config);

  // Per-record entry points; route to the owning shard. Throw std::invalid_argument for a
  // session that was never opened (or already closed) — an unroutable record is a client
  // bug, not telemetry the service can degrade on.
  MonitorDirectives OnDispatchStart(telemetry::SessionId id, const DispatchStart& start);
  void OnDispatchEnd(telemetry::SessionId id, const DispatchEnd& end);
  void OnActionQuiesced(telemetry::SessionId id, const ActionQuiesce& quiesce);
  void OnCounterFault(telemetry::SessionId id, const CounterFault& fault);
  void OnAsyncPost(telemetry::SessionId id, const AsyncPost& post);
  void OnAsyncRun(telemetry::SessionId id, const AsyncRun& run);
  void OnAsyncWaitStart(telemetry::SessionId id, const AsyncWaitStart& wait);
  void OnAsyncWaitEnd(telemetry::SessionId id, const AsyncWaitEnd& wait);

  // Finalizes the session: harvests its result and frees its arena. The returned log is
  // moved, not copied, so closing is O(result), independent of how many sessions ever ran.
  SessionResult Close(telemetry::SessionId id);

  // Drops a session without harvesting (client error path: the producer died mid-stream).
  void Discard(telemetry::SessionId id);

  // Migration hooks (the fleetd coordinator's session export/import surface, riding the
  // record/replay path). Export is the pair {LiveSessionIds(), the caller's recorded HDSL
  // prefix}: a session log prefix is a complete description of everything the detector
  // observed, so no detector state needs to cross processes. Callers must quiesce their
  // producers first (the snapshot is not a barrier).
  std::vector<telemetry::SessionId> LiveSessionIds() const;

  // Import: re-creates a migrated session by replaying its recorded prefix — Open(id, info,
  // config) followed by each record through the synchronous entry points, in order. After
  // this returns, the session is live and continues from exactly the state the prefix
  // describes (per-session purity is what makes the migrated result bit-identical). The
  // prefix holds telemetry records only; a kSessionOpen/kSessionClose marker inside it
  // throws std::invalid_argument.
  void ImportSession(telemetry::SessionId id, const SessionInfo& info,
                     const HangDoctorConfig& config, std::span<const SpiPayload> prefix);

  SessionHandle Handle(telemetry::SessionId id) { return SessionHandle(this, id); }

  // Batch entry: consumes one interleaved stream in order — open/record/close framing per
  // session_stream.h — and returns the results of every session closed by the stream, in
  // ascending-SessionId order. Opened sessions seed from the service-wide seed_db /
  // knowledge base, like Open(). Without workers this applies records synchronously on the
  // calling thread; with workers it routes the stream through the pipeline and throws the
  // first IngestError (if any) after the barrier.
  std::vector<SessionResult> Consume(std::span<const ServiceRecord> stream);

  // Pipeline barrier: blocks until every batch routed so far has been applied by the shard
  // workers. Callers must have flushed (and stopped) their Ingestors first. No-op without
  // workers. When a knowledge base is attached, the barrier is an epoch boundary: pending
  // discoveries publish before it returns.
  void WaitIngestIdle();

  // Barrier + harvest: the results of every session closed through the pipeline since the
  // last drain, in ascending-SessionId order.
  std::vector<SessionResult> DrainClosed();

  // Barrier + the records the pipeline could not apply since the last take (stream order
  // within a shard; shards concatenated in index order).
  std::vector<IngestError> TakeIngestErrors();

  size_t live_sessions() const;
  int64_t sessions_opened() const { return opened_.load(std::memory_order_relaxed); }
  int32_t shards() const { return static_cast<int32_t>(shards_.size()); }
  int32_t ingest_threads() const { return static_cast<int32_t>(workers_.size()); }

 private:
  // One session's arena: everything that exists only while the session is live. `database`
  // overlays the service seed (seed_view_), so a slot holds only what this session learned.
  struct SessionSlot {
    BlockingApiDatabase database;
    std::unique_ptr<DetectorCore> core;
  };

  // One routed unit: up to batch_size record refs.
  struct IngestBatch {
    std::vector<ServiceRecordRef> refs;
  };

  struct Shard {
    // Guards `live` probes (and only the probes) on the synchronous path; a pipeline worker
    // takes it too, so synchronous sessions and pipelined sessions can share a shard.
    simkit::SpinLock lock;
    simkit::OpenHashMap<telemetry::SessionId, std::unique_ptr<SessionSlot>,
                        telemetry::SessionIdHasher>
        live;
    // Pipeline state. `enqueued` is bumped by producers as they push to the ring;
    // `processed` by the owning worker after applying a batch (release) — the barrier
    // acquires it, which also publishes `closed`/`errors` to the draining thread.
    std::unique_ptr<simkit::MpmcRing<IngestBatch>> ring;
    std::atomic<int64_t> enqueued{0};
    std::atomic<int64_t> processed{0};
    std::vector<SessionResult> closed;  // worker-written; read only after the barrier
    std::vector<IngestError> errors;    // worker-written; read only after the barrier
  };

  Shard& ShardFor(telemetry::SessionId id) {
    return *shards_[telemetry::ShardOf(id, shards_.size())];
  }

  // Arena lifecycle shared by both ingestion surfaces. Find/Remove throw
  // std::invalid_argument for a session that is not live; Insert throws on a duplicate.
  std::unique_ptr<SessionSlot> BuildSlot(const SessionInfo& info,
                                         const HangDoctorConfig& config);
  void InsertSlot(Shard& shard, telemetry::SessionId id, std::unique_ptr<SessionSlot> slot);
  SessionSlot* FindSlot(Shard& shard, telemetry::SessionId id);
  std::unique_ptr<SessionSlot> RemoveSlot(Shard& shard, telemetry::SessionId id);
  SessionResult Harvest(telemetry::SessionId id, std::unique_ptr<SessionSlot> slot);

  // Pipeline internals.
  void EnqueueBatch(size_t shard_index, IngestBatch&& batch);
  void ApplyRecord(Shard& shard, ServiceRecordRef ref);
  void WorkerLoop(size_t worker_index);
  void RequirePipeline(const char* what) const;
  // Session-close side of the KB protocol: absorb + count toward the automatic epoch.
  void AbsorbIntoKb(telemetry::SessionId id, SessionResult& result, DetectorCore& core);

  ServiceOptions options_;
  // The one seed every session overlays: the KB's seed, the copied options.seed_db, or null.
  BlockingApiDatabase own_seed_;
  const BlockingApiDatabase* seed_view_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> opened_{0};
  std::atomic<int64_t> live_{0};
  std::atomic<int64_t> kb_closed_{0};
};

// Folds session-local Hang Bug Reports into one fleet report in ascending-SessionId order —
// the deterministic merge the service's bit-identity contract names.
HangBugReport MergeSessionReports(std::span<const SessionResult> results);

}  // namespace hangdoctor

#endif  // SRC_HANGDOCTOR_DETECTOR_SERVICE_H_
