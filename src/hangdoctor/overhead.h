// Monitoring-overhead accounting, reproducing the paper's Section 4.5 methodology: overhead is
// the average of the percentage CPU increase and percentage memory increase a detector causes
// on a user trace. Detectors charge each monitoring act (a perf read, a /proc utilization
// sample, a stack unwind) to an OverheadMeter; the experiment harness divides the accumulated
// cost by the trace's own resource usage.
//
// The per-act costs below are calibrated to the paper's measured totals (UTL ≈ 25%, UTH ≈ 10%,
// TI ≈ 2.26%, UTH+TI ≈ 0.58%, HD ≈ 0.83%): the dominant terms are the 100 ms-period
// utilization sampling (reading and parsing /proc stat+smaps is milliseconds of CPU on a
// phone) and per-hang stack-trace collection; perf-counter sessions are comparatively cheap,
// which is the paper's core efficiency argument.
#ifndef SRC_HANGDOCTOR_OVERHEAD_H_
#define SRC_HANGDOCTOR_OVERHEAD_H_

#include <cstdint>

#include "src/simkit/time.h"

namespace hangdoctor {

struct MonitorCosts {
  // Perf-event session management (simpleperf start/stop + one read per event per thread).
  simkit::SimDuration perf_start = simkit::Microseconds(40);
  simkit::SimDuration perf_stop = simkit::Microseconds(30);
  simkit::SimDuration perf_read_per_event = simkit::Microseconds(5);
  int64_t perf_session_bytes = 256;
  // Action UID lookup in the state table.
  simkit::SimDuration state_lookup = simkit::Microseconds(1);
  // Arming one stack-trace collection (attaching the unwinder, priming symbol caches).
  simkit::SimDuration trace_start = simkit::Milliseconds(8);
  int64_t trace_start_bytes = 4096;
  // One main-thread stack unwind + symbolization + buffering.
  simkit::SimDuration stack_sample = simkit::Microseconds(2500);
  int64_t stack_sample_bytes = 8192;
  // One /proc utilization sample (stat + io + smaps walk) as the UT baselines take it.
  simkit::SimDuration utilization_sample = simkit::Microseconds(2200);
  int64_t utilization_sample_bytes = 1500;
  // Response-time probe at dispatch begin/end (all runtime detectors pay this).
  simkit::SimDuration response_probe = simkit::Microseconds(3);
  // Handling one cross-thread causal record (AsyncPost/AsyncRun/AsyncWaitStart/End): a map
  // update plus edge bookkeeping, comparable to the state lookup. Sessions of pre-async apps
  // never push such records, so they are charged nothing.
  simkit::SimDuration async_record = simkit::Microseconds(2);
};

class OverheadMeter {
 public:
  void AddCpu(simkit::SimDuration cpu) { cpu_ += cpu; }
  void AddMemory(int64_t bytes) { bytes_ += bytes; }
  // A re-issued start_counters directive after a transient counter-session failure. The
  // retry's perf_start cost is charged via AddCpu as usual; the count is kept separately so
  // the Section 4.5 accounting can attribute how much overhead degradation retries added.
  void CountCounterRetry() { ++counter_retries_; }
  // One cross-thread causal record handled (its async_record cost is charged via AddCpu);
  // counted separately so async sessions' overhead columns can attribute the causal traffic.
  void CountAsyncRecord() { ++async_records_; }

  simkit::SimDuration cpu() const { return cpu_; }
  int64_t memory_bytes() const { return bytes_; }
  int64_t counter_retries() const { return counter_retries_; }
  int64_t async_records() const { return async_records_; }

  // The paper's metric: mean of %CPU and %memory increase over the unmonitored trace.
  double OverheadPercent(simkit::SimDuration trace_cpu, int64_t trace_bytes) const {
    double cpu_pct =
        trace_cpu > 0 ? 100.0 * static_cast<double>(cpu_) / static_cast<double>(trace_cpu) : 0.0;
    double mem_pct = trace_bytes > 0
                         ? 100.0 * static_cast<double>(bytes_) / static_cast<double>(trace_bytes)
                         : 0.0;
    return (cpu_pct + mem_pct) / 2.0;
  }

  void Reset() {
    cpu_ = 0;
    bytes_ = 0;
    counter_retries_ = 0;
    async_records_ = 0;
  }

 private:
  simkit::SimDuration cpu_ = 0;
  int64_t bytes_ = 0;
  int64_t counter_retries_ = 0;
  int64_t async_records_ = 0;
};

}  // namespace hangdoctor

#endif  // SRC_HANGDOCTOR_OVERHEAD_H_
