// The Hang Bug Report (Figure 2(b)): the developer-facing table of diagnosed soft hang bugs,
// ordered by the percentage of user devices that observed each bug. Reports from many devices
// merge into one fleet-wide report, which is how the "in the wild" study of Section 4.2 is
// aggregated.
#ifndef SRC_HANGDOCTOR_REPORT_H_
#define SRC_HANGDOCTOR_REPORT_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/hangdoctor/trace_analyzer.h"
#include "src/simkit/time.h"

namespace hangdoctor {

struct BugReportEntry {
  std::string app_package;
  std::string api;    // "clazz.function" of the culprit
  std::string file;   // call site
  int32_t line = 0;
  bool self_developed = false;
  // At least one occurrence was diagnosed while S-Checker ran degraded (timeout-only, no
  // counter vetting); consumers should weigh such entries accordingly.
  bool degraded = false;
  // Waiting-chain provenance: when the bug was attributed across an async wait, the
  // main-thread wait site ("clazz.function@File:line") the diagnosis walked through. Empty
  // for main-thread bugs, so pre-async reports render unchanged.
  std::string wait_site;
  int64_t occurrences = 0;  // soft hangs diagnosed to this bug
  std::set<int32_t> devices;
  simkit::SimDuration total_hang = 0;
  simkit::SimDuration max_hang = 0;

  double MeanHangMs() const {
    return occurrences == 0 ? 0.0 : simkit::ToMilliseconds(total_hang / occurrences);
  }
};

class HangBugReport {
 public:
  // Records one diagnosed soft hang bug occurrence observed on `device_id`. `degraded` marks
  // an occurrence diagnosed without counter vetting (see BugReportEntry::degraded).
  void Record(const std::string& app_package, const Diagnosis& diagnosis,
              simkit::SimDuration hang_duration, int32_t device_id, bool degraded = false);

  // Folds another device's (or fleet's) report into this one.
  void Merge(const HangBugReport& other);

  // Folds one exported entry back in — the wire-transport half of Merge(). The entry's
  // identity key is reconstructed from its own fields (api is exactly "clazz.function", so
  // app|api|file:line is the same string Key() builds from a Diagnosis), which is what lets
  // a worker daemon ship its per-session reports to a fleetd coordinator and the folded
  // result stay bit-identical to an in-process Merge.
  void Absorb(const BugReportEntry& entry);

  // Every entry in identity-key order (deterministic; the wire serialization order).
  std::vector<BugReportEntry> Entries() const;

  // Entries sorted by device coverage (descending), then occurrences.
  std::vector<BugReportEntry> SortedEntries() const;

  size_t NumBugs() const { return entries_.size(); }

  // Renders the Figure 2(b)-style table. `total_devices` scales the device percentage.
  std::string Render(int32_t total_devices) const;

 private:
  static std::string Key(const std::string& app_package, const Diagnosis& diagnosis);

  std::map<std::string, BugReportEntry> entries_;
};

}  // namespace hangdoctor

#endif  // SRC_HANGDOCTOR_REPORT_H_
