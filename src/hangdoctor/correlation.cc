#include "src/hangdoctor/correlation.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/simkit/stats.h"

namespace hangdoctor {

std::vector<RankedEvent> RankEvents(std::span<const LabeledSample> samples) {
  std::vector<double> labels;
  labels.reserve(samples.size());
  for (const LabeledSample& sample : samples) {
    labels.push_back(sample.is_bug ? 1.0 : 0.0);
  }
  std::vector<RankedEvent> ranked;
  ranked.reserve(telemetry::kNumPerfEvents);
  std::vector<double> values(samples.size());
  for (telemetry::PerfEventType event : telemetry::AllPerfEvents()) {
    auto idx = static_cast<size_t>(event);
    for (size_t i = 0; i < samples.size(); ++i) {
      values[i] = samples[i].readings[idx];
    }
    ranked.push_back(RankedEvent{event, simkit::PearsonCorrelation(values, labels)});
  }
  std::sort(ranked.begin(), ranked.end(), [](const RankedEvent& a, const RankedEvent& b) {
    if (a.correlation != b.correlation) {
      return a.correlation > b.correlation;
    }
    return static_cast<int>(a.event) < static_cast<int>(b.event);
  });
  return ranked;
}

FilterQuality EvaluateFilter(const SoftHangFilter& filter,
                             std::span<const LabeledSample> samples) {
  FilterQuality quality;
  for (const LabeledSample& sample : samples) {
    bool flagged = filter.HasSymptoms(sample.readings);
    if (sample.is_bug) {
      (flagged ? quality.true_positives : quality.false_negatives) += 1;
    } else {
      (flagged ? quality.false_positives : quality.true_negatives) += 1;
    }
  }
  return quality;
}

namespace {

// Fits the threshold for a single event that minimizes miss_weight*FN + FP over `samples`,
// considering only the still-undetected bugs in `uncovered` as potential true positives.
// Returns the threshold and the resulting cost.
struct ThresholdFit {
  double threshold = 0.0;
  double cost = std::numeric_limits<double>::infinity();
  int64_t new_bugs_covered = 0;
};

ThresholdFit FitThreshold(std::span<const LabeledSample> samples,
                          const std::vector<char>& uncovered, telemetry::PerfEventType event,
                          double miss_weight) {
  auto idx = static_cast<size_t>(event);
  // Candidate thresholds: midpoints between adjacent distinct sample values, plus sentinels.
  std::vector<double> values;
  values.reserve(samples.size());
  for (const LabeledSample& sample : samples) {
    values.push_back(sample.readings[idx]);
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  std::vector<double> candidates;
  candidates.push_back(values.front() - 1.0);
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    candidates.push_back((values[i] + values[i + 1]) / 2.0);
  }
  ThresholdFit best;
  for (double threshold : candidates) {
    int64_t misses = 0;
    int64_t false_alarms = 0;
    int64_t covered = 0;
    for (size_t i = 0; i < samples.size(); ++i) {
      bool flagged = samples[i].readings[idx] > threshold;
      if (samples[i].is_bug) {
        if (uncovered[i]) {
          if (flagged) {
            ++covered;
          } else {
            ++misses;
          }
        }
      } else if (flagged) {
        ++false_alarms;
      }
    }
    double cost = miss_weight * static_cast<double>(misses) + static_cast<double>(false_alarms);
    if (cost < best.cost || (cost == best.cost && covered > best.new_bugs_covered)) {
      best.threshold = threshold;
      best.cost = cost;
      best.new_bugs_covered = covered;
    }
  }
  return best;
}

}  // namespace

SoftHangFilter TrainFilter(std::span<const LabeledSample> samples,
                           std::span<const RankedEvent> ranking, TrainOptions options) {
  std::vector<char> uncovered(samples.size(), 0);
  int64_t remaining_bugs = 0;
  for (size_t i = 0; i < samples.size(); ++i) {
    if (samples[i].is_bug) {
      uncovered[i] = 1;
      ++remaining_bugs;
    }
  }
  std::vector<FilterCondition> conditions;
  for (const RankedEvent& ranked : ranking) {
    if (remaining_bugs == 0 ||
        conditions.size() >= static_cast<size_t>(options.max_conditions)) {
      break;
    }
    ThresholdFit fit = FitThreshold(samples, uncovered, ranked.event, options.miss_weight);
    if (fit.new_bugs_covered == 0) {
      continue;  // this event cannot separate any remaining bug; try the next one
    }
    conditions.push_back(FilterCondition{ranked.event, fit.threshold});
    auto idx = static_cast<size_t>(ranked.event);
    for (size_t i = 0; i < samples.size(); ++i) {
      if (uncovered[i] && samples[i].readings[idx] > fit.threshold) {
        uncovered[i] = 0;
        --remaining_bugs;
      }
    }
  }
  // The paper's procedure ends only when every training bug is caught by at least one event.
  // Force-cover any stragglers greedily: each round adds the event covering the most of the
  // remaining bugs at the lowest false-positive cost.
  // This loop ignores the advisory max_conditions (each round covers at least one new bug, so
  // it terminates); a hard bound guards against pathological inputs.
  while (remaining_bugs > 0 && conditions.size() < 16) {
    ThresholdFit best_fit;
    best_fit.new_bugs_covered = 0;
    telemetry::PerfEventType best_event = ranking.front().event;
    for (const RankedEvent& ranked : ranking) {
      ThresholdFit fit = FitThreshold(samples, uncovered, ranked.event, /*miss_weight=*/1e12);
      if (fit.new_bugs_covered > best_fit.new_bugs_covered ||
          (fit.new_bugs_covered == best_fit.new_bugs_covered && fit.cost < best_fit.cost)) {
        best_fit = fit;
        best_event = ranked.event;
      }
    }
    if (best_fit.new_bugs_covered == 0) {
      break;  // two identical samples with opposite labels: no threshold can separate them
    }
    conditions.push_back(FilterCondition{best_event, best_fit.threshold});
    auto idx = static_cast<size_t>(best_event);
    for (size_t i = 0; i < samples.size(); ++i) {
      if (uncovered[i] && samples[i].readings[idx] > best_fit.threshold) {
        uncovered[i] = 0;
        --remaining_bugs;
      }
    }
  }
  return SoftHangFilter(std::move(conditions));
}

}  // namespace hangdoctor
