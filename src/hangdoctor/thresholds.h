// The paper's magic numbers, in one place. Every component that reasons about "is this a
// perceivable hang" or "does this counter difference look like a soft hang bug" references
// these named constants instead of re-stating the literals, so a retuning (or a sensitivity
// study like Table 4) starts here.
//
// Sources:
//  - 100 ms perceivable delay: Section 1, footnote 1 — the response-time bound every runtime
//    detector in the paper uses as its hang definition and timeout.
//  - context-switch / task-clock / page-fault thresholds: Section 3.3.1 — the production
//    S-Checker filter selected by the Table 3 correlation study ("context switch difference
//    larger than zero", "task clock difference larger than 1.7e8 ns", "page fault difference
//    larger than 500").
//  - occurrence factors: Section 3.4.1 — a single API is the culprit when it appears innermost
//    in at least half the traces; a caller is a self-developed culprit at 80%.
#ifndef SRC_HANGDOCTOR_THRESHOLDS_H_
#define SRC_HANGDOCTOR_THRESHOLDS_H_

#include "src/simkit/time.h"

namespace hangdoctor {

// Response-time bound: an input event slower than this is a soft hang (and the default
// Diagnoser arming timeout). Equal to simkit::kPerceivableDelay; restated here as the
// detector-side name.
inline constexpr simkit::SimDuration kHangTimeout = simkit::kPerceivableDelay;

// S-Checker production filter conditions (main−render counter differences).
inline constexpr double kContextSwitchDiffThreshold = 0.0;    // "> 0"
inline constexpr double kTaskClockDiffThresholdNs = 1.7e8;    // "> 1.7e8 ns"
inline constexpr double kPageFaultDiffThreshold = 500.0;      // "> 500"

// Trace Collector sampling period (~60 traces over the 1.3 s hang of Figure 6(b)).
inline constexpr simkit::SimDuration kDefaultSampleInterval = simkit::Milliseconds(20);

// Executions after which a Normal action is reset to Uncategorized (Figure 3's periodic
// re-examination of late-manifesting bugs).
inline constexpr int32_t kDefaultResetAfterNormal = 20;

// Trace Analyzer occurrence factors (Section 3.4.1).
inline constexpr double kApiOccurrenceThreshold = 0.5;
inline constexpr double kCallerOccurrenceThreshold = 0.8;
inline constexpr double kUiMajorityThreshold = 0.5;

// Graceful-degradation policy for counter-session failures (DESIGN.md section 3.4). A
// A transient perf_event_open failure is retried after a backoff; a streak of more than this
// many consecutive failures (without an open surviving to quiesce in between) escalates to
// counters-unavailable for the rest of the session.
inline constexpr int32_t kMaxCounterOpenRetries = 3;
// Dispatch-begin events (session-wide — executions are typically single-dispatch) to wait
// before the first retry; doubles after every further consecutive failure (retry k waits
// kCounterRetryBackoffDispatches << (k-1) events).
inline constexpr int32_t kCounterRetryBackoffDispatches = 2;
// Session-wide failure count after which the core stops retrying and treats the counters as
// permanently unavailable (S-Checker degrades to the timeout-only predicate).
inline constexpr int64_t kCounterFailureEscalation = 12;

}  // namespace hangdoctor

#endif  // SRC_HANGDOCTOR_THRESHOLDS_H_
