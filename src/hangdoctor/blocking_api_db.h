// The database of known blocking APIs. Offline detectors search app code for exactly these
// names; Hang Doctor's closing of the loop (Figure 2(a)) is adding every newly diagnosed
// blocking API here so future offline scans catch it. Seeded with the historically known set
// (camera.open, bitmap decode, database queries, media prepare, bluetooth accept, ...).
#ifndef SRC_HANGDOCTOR_BLOCKING_API_DB_H_
#define SRC_HANGDOCTOR_BLOCKING_API_DB_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace hangdoctor {

class BlockingApiDatabase {
 public:
  BlockingApiDatabase() = default;

  // Overlay mode: membership becomes base ∪ own while discoveries keep accumulating locally.
  // A fleet of sessions sharing one seed catalog overlays it instead of copying the whole
  // std::set per session — bit-equivalent to a private copy (a name is a discovery iff it is
  // in neither the base nor the prior local adds), at O(1) setup cost. `base` may be null
  // (plain mode) and must outlive this object; own entries stay disjoint from the base as
  // long as they arrive through AddDiscovered.
  void SetBase(const BlockingApiDatabase* base) { base_ = base; }
  const BlockingApiDatabase* base() const { return base_; }

  // Seeds the database with an API already known as blocking (catalog construction).
  void SeedKnown(std::string full_name) { known_.insert(std::move(full_name)); }

  // Heterogeneous probe (std::less<> set): a string_view never allocates a key copy, so the
  // offline scanner's per-node membership test stays allocation-free.
  bool IsKnown(std::string_view full_name) const {
    return known_.count(full_name) > 0 || (base_ != nullptr && base_->IsKnown(full_name));
  }

  // Records an API Hang Doctor diagnosed at runtime; returns true if it was previously
  // unknown (a new discovery for the offline database).
  bool AddDiscovered(const std::string& full_name) {
    if (base_ != nullptr && base_->IsKnown(full_name)) {
      return false;
    }
    bool inserted = known_.insert(full_name).second;
    if (inserted) {
      discovered_.push_back(full_name);
    }
    return inserted;
  }

  const std::vector<std::string>& discovered() const { return discovered_; }
  size_t size() const { return known_.size() + (base_ != nullptr ? base_->size() : 0); }

 private:
  const BlockingApiDatabase* base_ = nullptr;
  std::set<std::string, std::less<>> known_;
  std::vector<std::string> discovered_;
};

}  // namespace hangdoctor

#endif  // SRC_HANGDOCTOR_BLOCKING_API_DB_H_
