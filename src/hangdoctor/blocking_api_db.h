// The database of known blocking APIs. Offline detectors search app code for exactly these
// names; Hang Doctor's closing of the loop (Figure 2(a)) is adding every newly diagnosed
// blocking API here so future offline scans catch it. Seeded with the historically known set
// (camera.open, bitmap decode, database queries, media prepare, bluetooth accept, ...).
#ifndef SRC_HANGDOCTOR_BLOCKING_API_DB_H_
#define SRC_HANGDOCTOR_BLOCKING_API_DB_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace hangdoctor {

class BlockingApiDatabase {
 public:
  BlockingApiDatabase() = default;

  // Seeds the database with an API already known as blocking (catalog construction).
  void SeedKnown(std::string full_name) { known_.insert(std::move(full_name)); }

  // Heterogeneous probe (std::less<> set): a string_view never allocates a key copy, so the
  // offline scanner's per-node membership test stays allocation-free.
  bool IsKnown(std::string_view full_name) const { return known_.count(full_name) > 0; }

  // Records an API Hang Doctor diagnosed at runtime; returns true if it was previously
  // unknown (a new discovery for the offline database).
  bool AddDiscovered(const std::string& full_name) {
    bool inserted = known_.insert(full_name).second;
    if (inserted) {
      discovered_.push_back(full_name);
    }
    return inserted;
  }

  const std::vector<std::string>& discovered() const { return discovered_; }
  size_t size() const { return known_.size(); }

 private:
  std::set<std::string, std::less<>> known_;
  std::vector<std::string> discovered_;
};

}  // namespace hangdoctor

#endif  // SRC_HANGDOCTOR_BLOCKING_API_DB_H_
