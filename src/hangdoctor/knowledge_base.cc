#include "src/hangdoctor/knowledge_base.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace hangdoctor {

namespace {

// FNV-1a 64: fixed, platform-independent, and cheap. Not cryptographic — it does not need to
// be: the fingerprint only separates *accidentally* colliding symbol tables, and the memo
// map compares full keys on every probe anyway.
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t FnvBytes(uint64_t hash, const void* data, size_t size) {
  // Word-at-a-time variant of FNV-1a: one xor-multiply per 8-byte chunk instead of per byte.
  // Not the canonical FNV stream — which is fine: no stored artifact pins these values, they
  // only bucket memo probes and separate colliding inputs, and key construction sits on the
  // per-diagnosis hot path.
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  while (size >= 8) {
    uint64_t word;
    std::memcpy(&word, bytes, 8);
    hash = (hash ^ word) * kFnvPrime;
    bytes += 8;
    size -= 8;
  }
  for (size_t i = 0; i < size; ++i) {
    hash = (hash ^ bytes[i]) * kFnvPrime;
  }
  return hash;
}

uint64_t FnvString(uint64_t hash, std::string_view s) {
  // Length prefix keeps concatenated fields injective ("a","bc" vs "ab","c").
  uint64_t size = s.size();
  hash = FnvBytes(hash, &size, sizeof(size));
  return FnvBytes(hash, s.data(), s.size());
}

uint64_t FnvU64(uint64_t hash, uint64_t value) { return FnvBytes(hash, &value, sizeof(value)); }

uint64_t FnvDouble(uint64_t hash, double value) {
  // Hash the bit pattern: config doubles are copied around verbatim, never recomputed, so
  // bit equality is the right equivalence (and ==-compared keys use the same relation).
  return FnvU64(hash, std::bit_cast<uint64_t>(value));
}

}  // namespace

bool DiagnosisMemoKey::operator==(const DiagnosisMemoKey& other) const {
  return symbols_fingerprint == other.symbols_fingerprint && shape == other.shape &&
         app_package == other.app_package &&
         analyzer.api_occurrence_threshold == other.analyzer.api_occurrence_threshold &&
         analyzer.caller_occurrence_threshold == other.analyzer.caller_occurrence_threshold &&
         analyzer.ui_majority == other.analyzer.ui_majority;
}

uint64_t DiagnosisMemoKey::Hash() const {
  uint64_t hash = kFnvOffset;
  hash = FnvString(hash, app_package);
  hash = FnvU64(hash, symbols_fingerprint);
  hash = FnvDouble(hash, analyzer.api_occurrence_threshold);
  hash = FnvDouble(hash, analyzer.caller_occurrence_threshold);
  hash = FnvDouble(hash, analyzer.ui_majority);
  hash = FnvU64(hash, shape.size());
  hash = FnvBytes(hash, shape.data(), shape.size() * sizeof(uint32_t));
  return hash;
}

void FillDiagnosisMemoKey(std::span<const telemetry::StackTrace> traces,
                          const telemetry::SymbolTable& symbols,
                          const std::string& app_package,
                          const TraceAnalyzerConfig& analyzer, DiagnosisMemoKey* key,
                          std::span<const telemetry::FrameId> wait_frames) {
  key->app_package = app_package;
  key->analyzer = analyzer;
  key->shape.clear();
  size_t total = 1 + wait_frames.size();
  for (const telemetry::StackTrace& trace : traces) {
    total += 2 + trace.frames.size();
  }
  key->shape.reserve(total);
  for (const telemetry::StackTrace& trace : traces) {
    key->shape.push_back(static_cast<uint32_t>(trace.frames.size()));
    key->shape.push_back(trace.thread);
    key->shape.insert(key->shape.end(), trace.frames.begin(), trace.frames.end());
  }
  // AnalyzeCausal's extra input: the execution's wait-frame set (empty pre-async).
  key->shape.push_back(static_cast<uint32_t>(wait_frames.size()));
  key->shape.insert(key->shape.end(), wait_frames.begin(), wait_frames.end());
  // Whole-table fingerprint at O(1): the table size (which decides out-of-range-id
  // discards) folded with the content hash the SymbolTable maintains as frames intern.
  // Stronger than Analyze strictly needs — it pins frames the traces never name — so equal
  // keys still imply equal Analyze output, and the conservatism only costs an occasional
  // extra miss, never a wrong hit.
  uint64_t hash = kFnvOffset;
  hash = FnvU64(hash, symbols.size());
  hash = FnvU64(hash, symbols.content_hash());
  key->symbols_fingerprint = hash;
}

DiagnosisMemoKey MakeDiagnosisMemoKey(std::span<const telemetry::StackTrace> traces,
                                      const telemetry::SymbolTable& symbols,
                                      const std::string& app_package,
                                      const TraceAnalyzerConfig& analyzer,
                                      std::span<const telemetry::FrameId> wait_frames) {
  DiagnosisMemoKey key;
  FillDiagnosisMemoKey(traces, symbols, app_package, analyzer, &key, wait_frames);
  return key;
}

const Diagnosis* KnowledgeBase::Snapshot::FindMemo(const DiagnosisMemoKey& key) const {
  if (version_ == nullptr) {
    return nullptr;
  }
  auto it = version_->memos.find(key);
  return it != version_->memos.end() ? &it->second : nullptr;
}

KnowledgeBase::KnowledgeBase(BlockingApiDatabase seed, int32_t stripes)
    : seed_(std::move(seed)) {
  stripes_.reserve(stripes > 0 ? static_cast<size_t>(stripes) : 1);
  for (int32_t i = 0; i < std::max(stripes, 1); ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
  // Epoch 0: the seed alone. Published before any reader can exist, so a plain store is
  // enough — but release keeps the invariant "current_ is only ever release-stored" simple.
  auto initial = std::make_unique<Version>();
  initial->db.SetBase(&seed_);
  current_.store(initial.get(), std::memory_order_release);
  history_.push_back(std::move(initial));
}

void KnowledgeBase::AbsorbSession(telemetry::SessionId session,
                                  const std::vector<std::string>& discovered,
                                  std::vector<DiagnosisMemoEntry> memos,
                                  const KbSessionStats& stats) {
  memo_hits_.fetch_add(stats.memo_hits, std::memory_order_relaxed);
  memo_misses_.fetch_add(stats.memo_misses, std::memory_order_relaxed);
  known_hits_.fetch_add(stats.known_hits, std::memory_order_relaxed);
  sessions_absorbed_.fetch_add(1, std::memory_order_relaxed);
  if (discovered.empty() && memos.empty()) {
    return;
  }
  Stripe& stripe = *stripes_[session.value % stripes_.size()];
  std::lock_guard<simkit::SpinLock> lock(stripe.lock);
  for (size_t i = 0; i < discovered.size(); ++i) {
    stripe.discoveries.push_back({session.value, static_cast<uint32_t>(i), discovered[i]});
  }
  for (size_t i = 0; i < memos.size(); ++i) {
    stripe.memos.push_back({session.value, static_cast<uint32_t>(i), std::move(memos[i])});
  }
}

bool KnowledgeBase::Publish() {
  std::lock_guard<std::mutex> publish_lock(publish_mutex_);
  std::vector<PendingDiscovery> discoveries;
  std::vector<PendingMemo> memos;
  for (auto& stripe : stripes_) {
    std::lock_guard<simkit::SpinLock> lock(stripe->lock);
    std::move(stripe->discoveries.begin(), stripe->discoveries.end(),
              std::back_inserter(discoveries));
    std::move(stripe->memos.begin(), stripe->memos.end(), std::back_inserter(memos));
    stripe->discoveries.clear();
    stripe->memos.clear();
  }
  if (discoveries.empty() && memos.empty()) {
    return false;
  }
  // Deterministic merge order: (session id, discovery order) is unique per item, so the sort
  // is a total order and the folded result is independent of stripe count, arrival order,
  // and thread interleaving.
  auto by_session_then_order = [](const auto& a, const auto& b) {
    return a.session != b.session ? a.session < b.session : a.order < b.order;
  };
  std::sort(discoveries.begin(), discoveries.end(), by_session_then_order);
  std::sort(memos.begin(), memos.end(), by_session_then_order);

  const Version& prev = *history_.back();
  auto next = std::make_unique<Version>();
  next->epoch = prev.epoch + 1;
  next->db = prev.db;  // overlay copy: the seed stays a base pointer, never duplicated
  next->memos = prev.memos;
  for (const PendingDiscovery& discovery : discoveries) {
    next->db.AddDiscovered(discovery.api);
  }
  for (PendingMemo& memo : memos) {
    // First writer wins; any writer would do — Analyze is pure in the key, so every entry
    // for a key carries the same Diagnosis.
    next->memos.try_emplace(std::move(memo.entry.key), memo.entry.diagnosis);
  }
  current_.store(next.get(), std::memory_order_release);
  history_.push_back(std::move(next));
  publishes_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

KnowledgeBase::Stats KnowledgeBase::TotalStats() const {
  Stats stats;
  stats.memo_hits = memo_hits_.load(std::memory_order_relaxed);
  stats.memo_misses = memo_misses_.load(std::memory_order_relaxed);
  stats.known_hits = known_hits_.load(std::memory_order_relaxed);
  stats.sessions_absorbed = sessions_absorbed_.load(std::memory_order_relaxed);
  stats.publishes = publishes_.load(std::memory_order_relaxed);
  Snapshot snapshot = Acquire();
  stats.epoch = snapshot.epoch();
  stats.discovered = snapshot.discovered_size();
  stats.memo_entries = snapshot.memo_size();
  return stats;
}

}  // namespace hangdoctor
