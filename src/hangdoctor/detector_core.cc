#include "src/hangdoctor/detector_core.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace hangdoctor {

const char* VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kNotChecked:
      return "not-checked";
    case Verdict::kNoHang:
      return "no-hang";
    case Verdict::kFilteredUi:
      return "filtered-ui";
    case Verdict::kMarkedSuspicious:
      return "marked-suspicious";
    case Verdict::kAwaitingHang:
      return "awaiting-hang";
    case Verdict::kDiagnosedUi:
      return "diagnosed-ui";
    case Verdict::kDiagnosedBug:
      return "diagnosed-bug";
    case Verdict::kCounterFailure:
      return "counter-failure";
  }
  return "?";
}

DetectorCore::DetectorCore(const SessionInfo& info, HangDoctorConfig config,
                           BlockingApiDatabase* database, HangBugReport* fleet_report,
                           KnowledgeBase::Snapshot kb)
    : info_(info),
      config_(std::move(config)),
      table_(config_.reset_after_normal),
      analyzer_(config_.analyzer),
      database_(database != nullptr ? database : &own_database_),
      fleet_report_(fleet_report),
      kb_(kb) {
  if (info_.symbols == nullptr) {
    throw std::invalid_argument("DetectorCore: SessionInfo.symbols must be non-null");
  }
  if (info_.num_actions <= 0) {
    throw std::invalid_argument("DetectorCore: SessionInfo.num_actions must be positive, got " +
                                std::to_string(info_.num_actions));
  }
  // App Injector: assign a UID to every action up front.
  for (int32_t uid = 0; uid < info_.num_actions; ++uid) {
    table_.Lookup(uid);
  }
}

DetectorCore::LiveExecution& DetectorCore::Live(const DispatchStart& start) {
  auto [it, inserted] = live_.try_emplace(start.execution_id);
  if (inserted) {
    it->second.state_before = table_.Lookup(start.action_uid).state;
    it->second.action_uid = start.action_uid;
  }
  return it->second;
}

MonitorDirectives DetectorCore::OnDispatchStart(const DispatchStart& start) {
  if (!guard_.AdmitTime(start.now)) {
    return MonitorDirectives{};
  }
  if (start.action_uid < 0 || start.action_uid >= info_.num_actions) {
    // An action the session never declared: indistinguishable from a corrupted record;
    // dropping it keeps the action table well-formed.
    ++degradation_.dropped_records;
    return MonitorDirectives{};
  }
  auto existing = live_.find(start.execution_id);
  if (existing == live_.end() && start.execution_id <= completed_watermark_) {
    // Stale re-delivery of an execution that already quiesced.
    ++degradation_.dropped_records;
    return MonitorDirectives{};
  }
  if (existing != live_.end()) {
    if (existing->second.open_event >= 0) {
      guard_.SetError("DispatchStart for execution " + std::to_string(start.execution_id) +
                      " while event " + std::to_string(existing->second.open_event) +
                      " is still dispatching");
      return MonitorDirectives{};
    }
    if (existing->second.action_uid != start.action_uid) {
      guard_.SetError("execution " + std::to_string(start.execution_id) + " changed action " +
                      std::to_string(existing->second.action_uid) + " -> " +
                      std::to_string(start.action_uid));
      return MonitorDirectives{};
    }
  }
  overhead_.AddCpu(config_.costs.state_lookup + config_.costs.response_probe);
  LiveExecution& live = Live(start);
  live.open_event = start.event_index;
  ++dispatch_events_;
  if (config_.second_phase_only) {
    return MonitorDirectives{.arm_hang_check = true};
  }
  switch (live.state_before) {
    case ActionState::kUncategorized: {
      if (!live.counters_started && !degradation_.counters_unavailable) {
        bool first_attempt = counter_failure_streak_ == 0;
        // After a transient open failure, re-opening waits out a backoff measured in
        // dispatch events and doubled per consecutive failure; a streak past
        // max_counter_retries escalates to counters_unavailable (see OnCounterFault), so
        // reaching here with a nonzero streak means the budget still has room.
        bool retry_due = !first_attempt && dispatch_events_ >= counter_retry_at_;
        if (first_attempt || retry_due) {
          live.counters_started = true;
          overhead_.AddCpu(config_.costs.perf_start);
          overhead_.AddMemory(config_.costs.perf_session_bytes);
          if (!first_attempt) {
            overhead_.CountCounterRetry();
            ++degradation_.counter_retries;
          }
          return MonitorDirectives{.start_counters = true};
        }
      }
      break;
    }
    case ActionState::kSuspicious:
    case ActionState::kHangBug: {
      live.diagnoser_armed = true;
      return MonitorDirectives{.arm_hang_check = true};
    }
    case ActionState::kNormal:
      break;
  }
  return MonitorDirectives{};
}

void DetectorCore::OnDispatchEnd(const DispatchEnd& end) {
  if (!guard_.AdmitTime(end.now)) {
    return;
  }
  auto it = live_.find(end.execution_id);
  if (it == live_.end() || it->second.open_event != end.event_index) {
    // End for an unknown execution or a non-open event: a re-delivered or delayed record.
    ++degradation_.dropped_records;
    return;
  }
  LiveExecution& live = it->second;
  live.open_event = -1;
  overhead_.AddCpu(config_.costs.response_probe);
  if (end.response > config_.hang_timeout) {
    live.longest_hang = std::max(live.longest_hang, end.response);
  }
  if (end.trace_stopped) {
    auto count = static_cast<int64_t>(end.samples.size());
    overhead_.AddCpu(config_.costs.trace_start);
    overhead_.AddMemory(config_.costs.trace_start_bytes);
    samples_taken_ += count;
    overhead_.AddCpu(config_.costs.stack_sample * count);
    overhead_.AddMemory(config_.costs.stack_sample_bytes * count);
    if (count == 0) {
      // A lost or timed-out collection window; the diagnosis aborts and retries on the
      // action's next hang (the action keeps its state).
      ++degradation_.empty_trace_windows;
    }
    // The host's sample buffer is reused on the next collection; copy the id traces out.
    live.traces.insert(live.traces.end(), end.samples.begin(), end.samples.end());
  }
}

void DetectorCore::OnCounterFault(const CounterFault& fault) {
  if (!guard_.AdmitTime(fault.now)) {
    return;
  }
  ++degradation_.counter_open_failures;
  ++counter_failure_streak_;
  if (fault.permanent || counter_failure_streak_ > config_.max_counter_retries ||
      degradation_.counter_open_failures >= kCounterFailureEscalation) {
    // Counters are gone for the session: stop retrying, degrade S-Checker to the
    // timeout-only predicate, and mark everything it reports as degraded.
    degradation_.counters_unavailable = true;
  } else {
    int32_t doublings = std::min(counter_failure_streak_ - 1, 30);
    counter_retry_at_ = dispatch_events_ +
                        (static_cast<int64_t>(config_.counter_retry_backoff) << doublings);
  }
  auto it = live_.find(fault.execution_id);
  if (it != live_.end()) {
    it->second.counters_started = false;
  }
}

void DetectorCore::OnAsyncPost(const AsyncPost& post) {
  if (!guard_.AdmitTime(post.now)) {
    return;
  }
  if (post.post_frame >= info_.symbols->size()) {
    ++degradation_.dropped_records;
    return;
  }
  overhead_.AddCpu(config_.costs.async_record);
  overhead_.CountAsyncRecord();
}

void DetectorCore::OnAsyncRun(const AsyncRun& run) {
  if (!guard_.AdmitTime(run.now)) {
    return;
  }
  overhead_.AddCpu(config_.costs.async_record);
  overhead_.CountAsyncRecord();
}

void DetectorCore::OnAsyncWaitStart(const AsyncWaitStart& wait) {
  if (!guard_.AdmitTime(wait.now)) {
    return;
  }
  if (wait.wait_frame >= info_.symbols->size()) {
    ++degradation_.dropped_records;
    return;
  }
  overhead_.AddCpu(config_.costs.async_record);
  overhead_.CountAsyncRecord();
  auto it = live_.find(wait.execution_id);
  if (it == live_.end()) {
    // A wait for an execution the core never saw dispatch (re-delivery after quiesce, or a
    // truncated stream): nothing to attach the wait site to.
    ++degradation_.dropped_records;
    return;
  }
  it->second.wait_frames.push_back(wait.wait_frame);
}

void DetectorCore::OnAsyncWaitEnd(const AsyncWaitEnd& wait) {
  if (!guard_.AdmitTime(wait.now)) {
    return;
  }
  overhead_.AddCpu(config_.costs.async_record);
  overhead_.CountAsyncRecord();
}

void DetectorCore::RunSChecker(const ActionQuiesce& quiesce, LiveExecution& live,
                               ExecutionRecord& record) {
  (void)live;
  record.schecker_ran = true;
  record.schecker_diffs = quiesce.counter_diffs;
  if (!quiesce.counters_valid || !SoftHangFilter::FiniteDiffs(quiesce.counter_diffs)) {
    // No usable counter window for this hang. With counters permanently unavailable the
    // S-Checker degrades to the response-time predicate alone — the hang already exceeded
    // the timeout, so the action is marked Suspicious and the report flagged degraded
    // (false positives here are filtered by the Diagnoser, at extra tracing cost). While
    // retries are still possible the action simply stays Uncategorized and the next hang
    // re-examines it.
    record.degraded = true;
    if (degradation_.counters_unavailable) {
      ++degradation_.degraded_checks;
      table_.Transition(quiesce.now, quiesce.action_uid, ActionState::kSuspicious,
                        "S-Checker degraded: timeout-only suspicion");
      record.verdict = Verdict::kMarkedSuspicious;
    } else {
      ++degradation_.invalid_counter_windows;
      record.verdict = Verdict::kCounterFailure;
    }
    return;
  }
  std::vector<telemetry::PerfEventType> events = config_.filter.Events();
  overhead_.AddCpu(config_.costs.perf_read_per_event *
                   static_cast<int64_t>(events.size() * (config_.main_only ? 1 : 2)));
  if (config_.filter.HasSymptoms(quiesce.counter_diffs)) {
    table_.Transition(quiesce.now, quiesce.action_uid, ActionState::kSuspicious,
                      "S-Checker: soft hang bug symptoms");
    record.verdict = Verdict::kMarkedSuspicious;
  } else {
    table_.Transition(quiesce.now, quiesce.action_uid, ActionState::kNormal,
                      "S-Checker: UI operation");
    record.verdict = Verdict::kFilteredUi;
  }
}

void DetectorCore::RunDiagnoser(const ActionQuiesce& quiesce, LiveExecution& live,
                                ExecutionRecord& record) {
  record.diagnoser_ran = true;
  if (live.traces.empty()) {
    // The action did not hang this time; an occasional bug may still manifest later, so the
    // action stays where it is (Suspicious or Hang Bug).
    record.verdict = Verdict::kAwaitingHang;
    return;
  }
  record.traced = true;
  Diagnosis diagnosis;
  if (kb_.valid()) {
    // Knowledge-base fast path: AnalyzeCausal is pure in (traces incl. thread tags, wait
    // frames, symbols, thresholds), so an exact-key memo hit IS the diagnosis — same bytes,
    // none of the census work. Probe the published snapshot first, then this session's own
    // pending memos (so repeat hangs skip re-analysis even before any epoch publishes).
    FillDiagnosisMemoKey(live.traces, *info_.symbols, info_.app_package, config_.analyzer,
                         &kb_key_scratch_, live.wait_frames);
    const Diagnosis* memo = kb_.FindMemo(kb_key_scratch_);
    if (memo == nullptr) {
      for (const DiagnosisMemoEntry& pending : kb_memos_) {
        if (pending.key == kb_key_scratch_) {
          memo = &pending.diagnosis;
          break;
        }
      }
    }
    if (memo != nullptr) {
      ++kb_stats_.memo_hits;
      diagnosis = *memo;
    } else {
      ++kb_stats_.memo_misses;
      diagnosis = analyzer_.AnalyzeCausal(live.traces, *info_.symbols, info_.app_package,
                                          live.wait_frames);
      // Copied, not moved: the scratch key keeps its buffers warm for the next diagnosis.
      kb_memos_.push_back({kb_key_scratch_, diagnosis});
    }
  } else {
    // Counted with the KB off too, so a KB-off arm reports the diagnoser work a KB targets.
    ++kb_stats_.memo_misses;
    diagnosis = analyzer_.AnalyzeCausal(live.traces, *info_.symbols, info_.app_package,
                                        live.wait_frames);
  }
  record.diagnosis = diagnosis;
  if (config_.keep_traces) {
    record.traces = live.traces;
  }
  if (!diagnosis.valid) {
    record.verdict = Verdict::kAwaitingHang;
    return;
  }
  if (diagnosis.is_ui) {
    record.verdict = Verdict::kDiagnosedUi;
    if (live.state_before == ActionState::kSuspicious) {
      table_.Transition(quiesce.now, quiesce.action_uid, ActionState::kNormal,
                        "Diagnoser: UI operation (path B)");
    }
    return;
  }
  record.verdict = Verdict::kDiagnosedBug;
  // A diagnosis reached through the degraded timeout-only S-Checker is flagged so report
  // consumers know the symptom filter never vetted it.
  record.degraded = record.degraded || degradation_.counters_unavailable;
  table_.Transition(quiesce.now, quiesce.action_uid, ActionState::kHangBug,
                    "Diagnoser: soft hang bug (path C)");
  simkit::SimDuration hang = std::max(live.longest_hang, quiesce.max_response);
  local_report_.Record(info_.app_package, diagnosis, hang, info_.device_id, record.degraded);
  if (fleet_report_ != nullptr) {
    fleet_report_->Record(info_.app_package, diagnosis, hang, info_.device_id, record.degraded);
  }
  if (!diagnosis.is_self_developed) {
    // Self-developed lengthy operations are reported only to the developer; real APIs feed
    // the offline detectors' database.
    std::string api = diagnosis.culprit.clazz + "." + diagnosis.culprit.function;
    if (kb_.IsKnown(api)) {
      // The fleet already knew this API when the session opened: a re-confirmation the
      // shared knowledge base turns into zero new offline-scanner work.
      ++kb_stats_.known_hits;
    }
    database_->AddDiscovered(api);
  }
}

void DetectorCore::OnActionQuiesced(const ActionQuiesce& quiesce) {
  if (!guard_.AdmitTime(quiesce.now)) {
    return;
  }
  auto it = live_.find(quiesce.execution_id);
  if (it == live_.end() || it->second.action_uid != quiesce.action_uid) {
    // Quiesce for an unknown execution (a re-delivered record after completion) or one whose
    // recorded action disagrees: dropped, detection continues.
    ++degradation_.dropped_records;
    return;
  }
  LiveExecution& live = it->second;
  live.open_event = -1;
  completed_watermark_ = std::max(completed_watermark_, quiesce.execution_id);
  if (live.counters_started) {
    // The counter session opened for this execution survived to quiesce: the device's
    // counters work again, so the retry backoff streak resets.
    counter_failure_streak_ = 0;
  }
  ExecutionRecord record;
  record.action_uid = quiesce.action_uid;
  record.execution_id = quiesce.execution_id;
  record.response = quiesce.max_response;
  record.hang = quiesce.max_response > config_.hang_timeout;
  record.state_before = live.state_before;

  ActionInfo& info = table_.Lookup(quiesce.action_uid);
  ++info.executions;
  if (record.hang) {
    ++info.hangs_observed;
  }

  if (config_.second_phase_only) {
    if (record.hang || !live.traces.empty()) {
      RunDiagnoser(quiesce, live, record);
    } else {
      record.verdict = Verdict::kNoHang;
    }
    if (record.traced) {
      ++info.times_traced;
    }
    log_.push_back(std::move(record));
    live_.erase(it);
    return;
  }

  switch (live.state_before) {
    case ActionState::kUncategorized: {
      if (live.counters_started) {
        overhead_.AddCpu(config_.costs.perf_stop);
      }
      if (record.hang) {
        RunSChecker(quiesce, live, record);
      } else {
        record.verdict = Verdict::kNoHang;  // stays Uncategorized, monitored again next time
      }
      break;
    }
    case ActionState::kSuspicious:
    case ActionState::kHangBug: {
      RunDiagnoser(quiesce, live, record);
      break;
    }
    case ActionState::kNormal: {
      record.verdict = Verdict::kNotChecked;
      table_.CountNormalExecution(quiesce.now, quiesce.action_uid);
      break;
    }
  }
  if (record.traced) {
    ++info.times_traced;
  }
  log_.push_back(std::move(record));
  live_.erase(it);
}

}  // namespace hangdoctor
