#include "src/hangdoctor/detector_core.h"

#include <algorithm>
#include <utility>

namespace hangdoctor {

const char* VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kNotChecked:
      return "not-checked";
    case Verdict::kNoHang:
      return "no-hang";
    case Verdict::kFilteredUi:
      return "filtered-ui";
    case Verdict::kMarkedSuspicious:
      return "marked-suspicious";
    case Verdict::kAwaitingHang:
      return "awaiting-hang";
    case Verdict::kDiagnosedUi:
      return "diagnosed-ui";
    case Verdict::kDiagnosedBug:
      return "diagnosed-bug";
  }
  return "?";
}

DetectorCore::DetectorCore(const SessionInfo& info, HangDoctorConfig config,
                           BlockingApiDatabase* database, HangBugReport* fleet_report)
    : info_(info),
      config_(std::move(config)),
      table_(config_.reset_after_normal),
      analyzer_(config_.analyzer),
      database_(database != nullptr ? database : &own_database_),
      fleet_report_(fleet_report) {
  // App Injector: assign a UID to every action up front.
  for (int32_t uid = 0; uid < info_.num_actions; ++uid) {
    table_.Lookup(uid);
  }
}

DetectorCore::LiveExecution& DetectorCore::Live(const DispatchStart& start) {
  auto [it, inserted] = live_.try_emplace(start.execution_id);
  if (inserted) {
    it->second.state_before = table_.Lookup(start.action_uid).state;
  }
  return it->second;
}

MonitorDirectives DetectorCore::OnDispatchStart(const DispatchStart& start) {
  overhead_.AddCpu(config_.costs.state_lookup + config_.costs.response_probe);
  LiveExecution& live = Live(start);
  if (config_.second_phase_only) {
    return MonitorDirectives{.arm_hang_check = true};
  }
  switch (live.state_before) {
    case ActionState::kUncategorized: {
      if (!live.counters_started) {
        live.counters_started = true;
        overhead_.AddCpu(config_.costs.perf_start);
        overhead_.AddMemory(config_.costs.perf_session_bytes);
        return MonitorDirectives{.start_counters = true};
      }
      break;
    }
    case ActionState::kSuspicious:
    case ActionState::kHangBug: {
      live.diagnoser_armed = true;
      return MonitorDirectives{.arm_hang_check = true};
    }
    case ActionState::kNormal:
      break;
  }
  return MonitorDirectives{};
}

void DetectorCore::OnDispatchEnd(const DispatchEnd& end) {
  overhead_.AddCpu(config_.costs.response_probe);
  auto it = live_.find(end.execution_id);
  if (it == live_.end()) {
    return;
  }
  LiveExecution& live = it->second;
  if (end.response > config_.hang_timeout) {
    live.longest_hang = std::max(live.longest_hang, end.response);
  }
  if (end.trace_stopped) {
    auto count = static_cast<int64_t>(end.samples.size());
    overhead_.AddCpu(config_.costs.trace_start);
    overhead_.AddMemory(config_.costs.trace_start_bytes);
    samples_taken_ += count;
    overhead_.AddCpu(config_.costs.stack_sample * count);
    overhead_.AddMemory(config_.costs.stack_sample_bytes * count);
    // The host's sample buffer is reused on the next collection; copy the id traces out.
    live.traces.insert(live.traces.end(), end.samples.begin(), end.samples.end());
  }
}

void DetectorCore::RunSChecker(const ActionQuiesce& quiesce, LiveExecution& live,
                               ExecutionRecord& record) {
  (void)live;
  record.schecker_ran = true;
  std::vector<telemetry::PerfEventType> events = config_.filter.Events();
  overhead_.AddCpu(config_.costs.perf_read_per_event *
                   static_cast<int64_t>(events.size() * (config_.main_only ? 1 : 2)));
  record.schecker_diffs = quiesce.counter_diffs;
  if (config_.filter.HasSymptoms(quiesce.counter_diffs)) {
    table_.Transition(quiesce.now, quiesce.action_uid, ActionState::kSuspicious,
                      "S-Checker: soft hang bug symptoms");
    record.verdict = Verdict::kMarkedSuspicious;
  } else {
    table_.Transition(quiesce.now, quiesce.action_uid, ActionState::kNormal,
                      "S-Checker: UI operation");
    record.verdict = Verdict::kFilteredUi;
  }
}

void DetectorCore::RunDiagnoser(const ActionQuiesce& quiesce, LiveExecution& live,
                                ExecutionRecord& record) {
  record.diagnoser_ran = true;
  if (live.traces.empty()) {
    // The action did not hang this time; an occasional bug may still manifest later, so the
    // action stays where it is (Suspicious or Hang Bug).
    record.verdict = Verdict::kAwaitingHang;
    return;
  }
  record.traced = true;
  Diagnosis diagnosis = analyzer_.Analyze(live.traces, *info_.symbols, info_.app_package);
  record.diagnosis = diagnosis;
  if (config_.keep_traces) {
    record.traces = live.traces;
  }
  if (!diagnosis.valid) {
    record.verdict = Verdict::kAwaitingHang;
    return;
  }
  if (diagnosis.is_ui) {
    record.verdict = Verdict::kDiagnosedUi;
    if (live.state_before == ActionState::kSuspicious) {
      table_.Transition(quiesce.now, quiesce.action_uid, ActionState::kNormal,
                        "Diagnoser: UI operation (path B)");
    }
    return;
  }
  record.verdict = Verdict::kDiagnosedBug;
  table_.Transition(quiesce.now, quiesce.action_uid, ActionState::kHangBug,
                    "Diagnoser: soft hang bug (path C)");
  simkit::SimDuration hang = std::max(live.longest_hang, quiesce.max_response);
  local_report_.Record(info_.app_package, diagnosis, hang, info_.device_id);
  if (fleet_report_ != nullptr) {
    fleet_report_->Record(info_.app_package, diagnosis, hang, info_.device_id);
  }
  if (!diagnosis.is_self_developed) {
    // Self-developed lengthy operations are reported only to the developer; real APIs feed
    // the offline detectors' database.
    database_->AddDiscovered(diagnosis.culprit.clazz + "." + diagnosis.culprit.function);
  }
}

void DetectorCore::OnActionQuiesced(const ActionQuiesce& quiesce) {
  auto it = live_.find(quiesce.execution_id);
  if (it == live_.end()) {
    return;
  }
  LiveExecution& live = it->second;
  ExecutionRecord record;
  record.action_uid = quiesce.action_uid;
  record.execution_id = quiesce.execution_id;
  record.response = quiesce.max_response;
  record.hang = quiesce.max_response > config_.hang_timeout;
  record.state_before = live.state_before;

  ActionInfo& info = table_.Lookup(quiesce.action_uid);
  ++info.executions;
  if (record.hang) {
    ++info.hangs_observed;
  }

  if (config_.second_phase_only) {
    if (record.hang || !live.traces.empty()) {
      RunDiagnoser(quiesce, live, record);
    } else {
      record.verdict = Verdict::kNoHang;
    }
    if (record.traced) {
      ++info.times_traced;
    }
    log_.push_back(std::move(record));
    live_.erase(it);
    return;
  }

  switch (live.state_before) {
    case ActionState::kUncategorized: {
      if (live.counters_started) {
        overhead_.AddCpu(config_.costs.perf_stop);
      }
      if (record.hang) {
        RunSChecker(quiesce, live, record);
      } else {
        record.verdict = Verdict::kNoHang;  // stays Uncategorized, monitored again next time
      }
      break;
    }
    case ActionState::kSuspicious:
    case ActionState::kHangBug: {
      RunDiagnoser(quiesce, live, record);
      break;
    }
    case ActionState::kNormal: {
      record.verdict = Verdict::kNotChecked;
      table_.CountNormalExecution(quiesce.now, quiesce.action_uid);
      break;
    }
  }
  if (record.traced) {
    ++info.times_traced;
  }
  log_.push_back(std::move(record));
  live_.erase(it);
}

}  // namespace hangdoctor
