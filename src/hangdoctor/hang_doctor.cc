#include "src/hangdoctor/hang_doctor.h"

#include <algorithm>
#include <utility>

#include "src/simkit/logging.h"

namespace hangdoctor {

const char* VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kNotChecked:
      return "not-checked";
    case Verdict::kNoHang:
      return "no-hang";
    case Verdict::kFilteredUi:
      return "filtered-ui";
    case Verdict::kMarkedSuspicious:
      return "marked-suspicious";
    case Verdict::kAwaitingHang:
      return "awaiting-hang";
    case Verdict::kDiagnosedUi:
      return "diagnosed-ui";
    case Verdict::kDiagnosedBug:
      return "diagnosed-bug";
  }
  return "?";
}

HangDoctor::HangDoctor(droidsim::Phone* phone, droidsim::App* app, HangDoctorConfig config,
                       BlockingApiDatabase* database, HangBugReport* fleet_report,
                       int32_t device_id)
    : phone_(phone),
      app_(app),
      config_(std::move(config)),
      table_(config_.reset_after_normal),
      analyzer_(config_.analyzer),
      database_(database != nullptr ? database : &own_database_),
      fleet_report_(fleet_report),
      device_id_(device_id),
      rng_(phone->ForkRng(0x4844 + static_cast<uint64_t>(device_id)).NextU64(),
           /*stream=*/0x4841ULL),
      sampler_(&phone->sim(), &app->main_looper(), config_.sample_interval) {
  // App Injector: assign a UID to every action up front.
  for (int32_t uid = 0; uid < app_->num_actions(); ++uid) {
    table_.Lookup(uid);
  }
  app_->AddObserver(this);
}

HangDoctor::~HangDoctor() { app_->RemoveObserver(this); }

HangDoctor::LiveExecution& HangDoctor::Live(const droidsim::ActionExecution& execution) {
  auto [it, inserted] = live_.try_emplace(execution.execution_id);
  if (inserted) {
    it->second.state_before = table_.Lookup(execution.action_uid).state;
    it->second.event_open.resize(execution.events_total, false);
  }
  return it->second;
}

void HangDoctor::ArmHangCheck(int64_t execution_id, int32_t event_index) {
  phone_->sim().ScheduleAfter(config_.hang_timeout, [this, execution_id, event_index]() {
    auto it = live_.find(execution_id);
    if (it == live_.end()) {
      return;
    }
    LiveExecution& live = it->second;
    auto idx = static_cast<size_t>(event_index);
    if (idx >= live.event_open.size() || !live.event_open[idx]) {
      return;  // the event finished below the timeout: no soft hang this time
    }
    if (!sampler_.active()) {
      sampler_.StartCollection();
    }
  });
}

void HangDoctor::OnInputEventStart(droidsim::App& app,
                                   const droidsim::ActionExecution& execution,
                                   int32_t event_index) {
  (void)app;
  overhead_.AddCpu(config_.costs.state_lookup + config_.costs.response_probe);
  LiveExecution& live = Live(execution);
  live.event_open[static_cast<size_t>(event_index)] = true;
  if (config_.second_phase_only) {
    ArmHangCheck(execution.execution_id, event_index);
    return;
  }
  switch (live.state_before) {
    case ActionState::kUncategorized: {
      if (live.session == nullptr) {
        live.session = std::make_unique<perfsim::PerfSession>(
            &phone_->counter_hub(), phone_->profile().pmu, rng_.Fork(0x5350).NextU64());
        live.session->AddThread(app_->main_tid());
        if (!config_.main_only) {
          live.session->AddThread(app_->render_tid());
        }
        for (perfsim::PerfEventType event : config_.filter.Events()) {
          live.session->AddEvent(event);
        }
        live.session->Start();
        overhead_.AddCpu(config_.costs.perf_start);
        overhead_.AddMemory(config_.costs.perf_session_bytes);
      }
      break;
    }
    case ActionState::kSuspicious:
    case ActionState::kHangBug: {
      live.diagnoser_armed = true;
      ArmHangCheck(execution.execution_id, event_index);
      break;
    }
    case ActionState::kNormal:
      break;
  }
}

void HangDoctor::OnInputEventEnd(droidsim::App& app, const droidsim::ActionExecution& execution,
                                 int32_t event_index) {
  (void)app;
  overhead_.AddCpu(config_.costs.response_probe);
  auto it = live_.find(execution.execution_id);
  if (it == live_.end()) {
    return;
  }
  LiveExecution& live = it->second;
  auto idx = static_cast<size_t>(event_index);
  if (idx < live.event_open.size()) {
    live.event_open[idx] = false;
  }
  const droidsim::EventTiming& timing = execution.events[idx];
  simkit::SimDuration response = timing.end - timing.start;
  if (response > config_.hang_timeout) {
    live.longest_hang = std::max(live.longest_hang, response);
  }
  if (sampler_.active()) {
    std::span<const droidsim::StackTrace> collected = sampler_.StopCollection();
    auto count = static_cast<int64_t>(collected.size());
    overhead_.AddCpu(config_.costs.trace_start);
    overhead_.AddMemory(config_.costs.trace_start_bytes);
    samples_taken_ += count;
    overhead_.AddCpu(config_.costs.stack_sample * count);
    overhead_.AddMemory(config_.costs.stack_sample_bytes * count);
    // The sampler's buffer is reused on the next collection; copy the id traces out.
    live.traces.insert(live.traces.end(), collected.begin(), collected.end());
  }
}

void HangDoctor::RunSChecker(const droidsim::ActionExecution& execution, LiveExecution& live,
                             ExecutionRecord& record) {
  record.schecker_ran = true;
  perfsim::CounterArray diffs{};
  std::vector<perfsim::PerfEventType> events = config_.filter.Events();
  overhead_.AddCpu(config_.costs.perf_read_per_event *
                   static_cast<int64_t>(events.size() * (config_.main_only ? 1 : 2)));
  for (perfsim::PerfEventType event : events) {
    double value = config_.main_only
                       ? live.session->Read(app_->main_tid(), event)
                       : live.session->ReadDifference(app_->main_tid(), app_->render_tid(),
                                                      event);
    diffs[static_cast<size_t>(event)] = value;
  }
  record.schecker_diffs = diffs;
  if (config_.filter.HasSymptoms(diffs)) {
    table_.Transition(phone_->Now(), execution.action_uid, ActionState::kSuspicious,
                      "S-Checker: soft hang bug symptoms");
    record.verdict = Verdict::kMarkedSuspicious;
  } else {
    table_.Transition(phone_->Now(), execution.action_uid, ActionState::kNormal,
                      "S-Checker: UI operation");
    record.verdict = Verdict::kFilteredUi;
  }
}

void HangDoctor::RunDiagnoser(const droidsim::ActionExecution& execution, LiveExecution& live,
                              ExecutionRecord& record) {
  record.diagnoser_ran = true;
  if (live.traces.empty()) {
    // The action did not hang this time; an occasional bug may still manifest later, so the
    // action stays where it is (Suspicious or Hang Bug).
    record.verdict = Verdict::kAwaitingHang;
    return;
  }
  record.traced = true;
  Diagnosis diagnosis = analyzer_.Analyze(live.traces, app_->symbols(), app_->spec().package);
  record.diagnosis = diagnosis;
  if (config_.keep_traces) {
    record.traces = live.traces;
  }
  if (!diagnosis.valid) {
    record.verdict = Verdict::kAwaitingHang;
    return;
  }
  if (diagnosis.is_ui) {
    record.verdict = Verdict::kDiagnosedUi;
    if (live.state_before == ActionState::kSuspicious) {
      table_.Transition(phone_->Now(), execution.action_uid, ActionState::kNormal,
                        "Diagnoser: UI operation (path B)");
    }
    return;
  }
  record.verdict = Verdict::kDiagnosedBug;
  table_.Transition(phone_->Now(), execution.action_uid, ActionState::kHangBug,
                    "Diagnoser: soft hang bug (path C)");
  simkit::SimDuration hang = std::max(live.longest_hang, execution.max_response);
  local_report_.Record(app_->spec().package, diagnosis, hang, device_id_);
  if (fleet_report_ != nullptr) {
    fleet_report_->Record(app_->spec().package, diagnosis, hang, device_id_);
  }
  if (!diagnosis.is_self_developed) {
    // Self-developed lengthy operations are reported only to the developer; real APIs feed
    // the offline detectors' database.
    database_->AddDiscovered(diagnosis.culprit.clazz + "." + diagnosis.culprit.function);
  }
}

void HangDoctor::OnActionQuiesced(droidsim::App& app,
                                  const droidsim::ActionExecution& execution) {
  (void)app;
  auto it = live_.find(execution.execution_id);
  if (it == live_.end()) {
    return;
  }
  LiveExecution& live = it->second;
  ExecutionRecord record;
  record.action_uid = execution.action_uid;
  record.execution_id = execution.execution_id;
  record.response = execution.max_response;
  record.hang = execution.max_response > config_.hang_timeout;
  record.state_before = live.state_before;

  ActionInfo& info = table_.Lookup(execution.action_uid);
  ++info.executions;
  if (record.hang) {
    ++info.hangs_observed;
  }

  if (config_.second_phase_only) {
    if (record.hang || !live.traces.empty()) {
      RunDiagnoser(execution, live, record);
    } else {
      record.verdict = Verdict::kNoHang;
    }
    if (record.traced) {
      ++info.times_traced;
    }
    log_.push_back(std::move(record));
    live_.erase(it);
    return;
  }

  switch (live.state_before) {
    case ActionState::kUncategorized: {
      if (live.session != nullptr) {
        live.session->Stop();
        overhead_.AddCpu(config_.costs.perf_stop);
      }
      if (record.hang) {
        RunSChecker(execution, live, record);
      } else {
        record.verdict = Verdict::kNoHang;  // stays Uncategorized, monitored again next time
      }
      break;
    }
    case ActionState::kSuspicious:
    case ActionState::kHangBug: {
      RunDiagnoser(execution, live, record);
      break;
    }
    case ActionState::kNormal: {
      record.verdict = Verdict::kNotChecked;
      table_.CountNormalExecution(phone_->Now(), execution.action_uid);
      break;
    }
  }
  if (record.traced) {
    ++info.times_traced;
  }
  log_.push_back(std::move(record));
  live_.erase(it);
}

}  // namespace hangdoctor
