// The correlation analysis and filter-training procedure of Section 3.3.1.
//
// Training data: one LabeledSample per soft hang in the training set, holding the per-event
// counter readings (main−render difference, and the main-only variant for the Table 3(b)
// comparison) and the ground-truth label (soft hang bug vs UI operation).
//
// RankEvents computes the Pearson correlation between each event's reading and the label
// vector — Table 3. TrainFilter implements the paper's threshold-selection procedure: start
// from the most correlated event, fit the threshold that minimizes false negatives first and
// false positives second, and keep adding events (in correlation order) until every bug in
// the training set is caught by at least one condition.
#ifndef SRC_HANGDOCTOR_CORRELATION_H_
#define SRC_HANGDOCTOR_CORRELATION_H_

#include <span>
#include <string>
#include <vector>

#include "src/hangdoctor/filter.h"
#include "src/telemetry/counters.h"

namespace hangdoctor {

struct LabeledSample {
  telemetry::CounterArray readings{};  // per-event value for this soft hang
  bool is_bug = false;
  std::string source;  // "app/bug-id" or "app/ui-api", for reporting
};

struct RankedEvent {
  telemetry::PerfEventType event = telemetry::PerfEventType::kContextSwitches;
  double correlation = 0.0;
};

// Pearson correlation of each event's readings against the bug/UI label, sorted descending.
std::vector<RankedEvent> RankEvents(std::span<const LabeledSample> samples);

struct FilterQuality {
  int64_t true_positives = 0;
  int64_t false_positives = 0;
  int64_t true_negatives = 0;
  int64_t false_negatives = 0;

  double Accuracy() const {
    int64_t total = true_positives + false_positives + true_negatives + false_negatives;
    return total == 0 ? 0.0
                      : static_cast<double>(true_positives + true_negatives) /
                            static_cast<double>(total);
  }
  // Fraction of UI hangs correctly filtered out (the paper's "prunes 64% of false positives").
  double FalsePositivePruneRate() const {
    int64_t ui = false_positives + true_negatives;
    return ui == 0 ? 0.0 : static_cast<double>(true_negatives) / static_cast<double>(ui);
  }
};

FilterQuality EvaluateFilter(const SoftHangFilter& filter,
                             std::span<const LabeledSample> samples);

struct TrainOptions {
  // Hard cap on conditions; the paper lands on three.
  int32_t max_conditions = 8;
  // Weight of a false negative relative to a false positive during per-event threshold
  // fitting. The paper fits each event's threshold "minimizing false positives and false
  // negatives" and covers residual misses by adding further events, so the per-event fit
  // weighs them equally; coverage of every bug is enforced by the greedy loop, not here.
  double miss_weight = 1.0;
};

// Trains a filter per the paper's procedure; `ranking` comes from RankEvents.
SoftHangFilter TrainFilter(std::span<const LabeledSample> samples,
                           std::span<const RankedEvent> ranking, TrainOptions options = {});

}  // namespace hangdoctor

#endif  // SRC_HANGDOCTOR_CORRELATION_H_
