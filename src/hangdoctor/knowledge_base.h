// The fleet-shared blocking-API knowledge base: what turns N private per-session
// BlockingApiDatabase copies into one epoch-published structure (ROADMAP: "fleet-scale
// knowledge base and analytics"). The paper's overhead argument rests on reuse — once an API
// is Diagnoser-confirmed as blocking, later sessions should skip straight to the verdict
// instead of re-running the diagnosis — and at fleet scale that reuse has to happen *across*
// sessions without putting a lock on the telemetry hot path.
//
// Design (RCU-style epochs):
//  - Readers call Acquire(): one atomic acquire-load of the current Version pointer. The
//    returned Snapshot is an immutable view — membership probes and diagnosis-memo lookups
//    run lock-free and contention-free for the session's whole life. Every Version ever
//    published is kept alive in the history until the KnowledgeBase dies, so a Snapshot can
//    never dangle (no per-reader refcount needed, which keeps Acquire to a single load).
//  - Writers (sessions closing) call AbsorbSession(): confirmations and memo entries land in
//    a striped pending buffer under a nanosecond-scale spinlock — off the hot path, once per
//    session.
//  - Publish() folds everything pending into a copy of the current Version and atomically
//    installs it. The fold is deterministic: pending items are sorted by (session id,
//    discovery order) before merging, so the merged database is bit-identical at any
//    {threads, shards, stripe} configuration given the same set of closed sessions.
//
// Determinism contract (why a shared KB cannot perturb verdicts): the detector core never
// reads database contents to decide a verdict — the database is write-only on the detection
// path — and the diagnosis memo caches a pure function (TraceAnalyzer::Analyze depends only
// on the trace frame ids, the symbol table contents, and the analyzer thresholds, all of
// which are part of the memo key). A memo hit therefore returns byte-for-byte the Diagnosis
// that Analyze would have computed; only the work is skipped, never changed.
#ifndef SRC_HANGDOCTOR_KNOWLEDGE_BASE_H_
#define SRC_HANGDOCTOR_KNOWLEDGE_BASE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/hangdoctor/blocking_api_db.h"
#include "src/hangdoctor/trace_analyzer.h"
#include "src/simkit/spinlock.h"
#include "src/telemetry/session.h"
#include "src/telemetry/stack.h"
#include "src/telemetry/symbols.h"

namespace hangdoctor {

// The exact input signature of one TraceAnalyzer::Analyze call. Equal keys imply equal
// Diagnosis output (Analyze is pure in these inputs — timestamps are never read).
struct DiagnosisMemoKey {
  std::string app_package;
  // Symbol-table identity: the table size folded with its incremental content hash
  // (telemetry::SymbolTable::content_hash — every interned frame's strings, line,
  // closed-library and UI bits, maintained at Intern time). Equal fingerprints mean the
  // tables resolve every frame id identically, so together with `shape` the key fully
  // determines the Analyze output — at O(1) query cost, since the hash is prepaid by the
  // interning the session does anyway. Conservative on purpose: sessions whose tables
  // differ anywhere (even in frames the traces never name) miss the memo and just re-run
  // Analyze; they can never alias each other's cached diagnoses.
  uint64_t symbols_fingerprint = 0;
  TraceAnalyzerConfig analyzer;
  // Injective flattening of the diagnosis inputs: for each trace its depth, then its thread
  // tag, then its frame ids; after all traces, the wait-frame count and the wait frame ids
  // (AnalyzeCausal's extra input — empty for pre-async sessions). The per-trace length
  // prefix makes the encoding self-delimiting left-to-right, and the trailing wait section
  // is length-prefixed too, so distinct inputs can never flatten to the same sequence.
  std::vector<uint32_t> shape;

  bool operator==(const DiagnosisMemoKey& other) const;
  uint64_t Hash() const;
};

DiagnosisMemoKey MakeDiagnosisMemoKey(std::span<const telemetry::StackTrace> traces,
                                      const telemetry::SymbolTable& symbols,
                                      const std::string& app_package,
                                      const TraceAnalyzerConfig& analyzer,
                                      std::span<const telemetry::FrameId> wait_frames = {});

// In-place variant for the per-diagnosis hot path: refills `key` reusing its string/vector
// capacity, so a session's repeated diagnoses construct keys without allocating.
// Semantically identical to MakeDiagnosisMemoKey.
void FillDiagnosisMemoKey(std::span<const telemetry::StackTrace> traces,
                          const telemetry::SymbolTable& symbols,
                          const std::string& app_package,
                          const TraceAnalyzerConfig& analyzer, DiagnosisMemoKey* key,
                          std::span<const telemetry::FrameId> wait_frames = {});

// A diagnosis the core computed this session, pending publication into the shared memo.
struct DiagnosisMemoEntry {
  DiagnosisMemoKey key;
  Diagnosis diagnosis;
};

// Per-session counters of what the KB saved (or would have): filled by the core, folded into
// fleet totals at harvest. memo_misses counts Trace Analyzer executions (maintained with the
// KB off too, so a KB-off run reports the diagnoser work a KB would target); memo_hits
// counts executions skipped via a published memo; known_hits counts confirmed culprits the
// session's snapshot already knew fleet-wide.
struct KbSessionStats {
  int64_t memo_hits = 0;
  int64_t memo_misses = 0;
  int64_t known_hits = 0;
};

class KnowledgeBase {
 private:
  struct MemoKeyHash {
    size_t operator()(const DiagnosisMemoKey& key) const {
      return static_cast<size_t>(key.Hash());
    }
  };

  // One published epoch: immutable once installed (the atomic release-store in Publish is
  // the only synchronization readers need). `db` overlays the KnowledgeBase's seed, so a
  // Version holds only the fleet's discoveries, not a copy of the seed catalog.
  struct Version {
    uint64_t epoch = 0;
    BlockingApiDatabase db;
    std::unordered_map<DiagnosisMemoKey, Diagnosis, MemoKeyHash> memos;
  };

 public:
  explicit KnowledgeBase(BlockingApiDatabase seed = {}, int32_t stripes = kDefaultStripes);
  KnowledgeBase(const KnowledgeBase&) = delete;
  KnowledgeBase& operator=(const KnowledgeBase&) = delete;

  // An immutable view of one published epoch. Trivially copyable; valid for the life of the
  // KnowledgeBase it came from. A default-constructed Snapshot is the "no KB" mode: invalid,
  // every probe misses.
  class Snapshot {
   public:
    Snapshot() = default;

    bool valid() const { return version_ != nullptr; }
    uint64_t epoch() const { return version_ != nullptr ? version_->epoch : 0; }

    // Membership across seed ∪ published discoveries (invalid snapshots know nothing).
    bool IsKnown(std::string_view api) const {
      return version_ != nullptr && version_->db.IsKnown(api);
    }

    // Cached diagnosis for an exact Analyze input, or null. The pointer lives as long as the
    // KnowledgeBase (Versions are never destroyed before it).
    const Diagnosis* FindMemo(const DiagnosisMemoKey& key) const;

    size_t discovered_size() const {
      return version_ != nullptr ? version_->db.discovered().size() : 0;
    }
    size_t memo_size() const { return version_ != nullptr ? version_->memos.size() : 0; }

   private:
    friend class KnowledgeBase;
    explicit Snapshot(const Version* version) : version_(version) {}

    const Version* version_ = nullptr;
  };

  // The reader hot path: one atomic acquire-load, no locks, no refcounts.
  Snapshot Acquire() const {
    return Snapshot(current_.load(std::memory_order_acquire));
  }

  // The immutable seed catalog every Version overlays. Stable for the KB's life, so
  // per-session databases may overlay it directly.
  const BlockingApiDatabase& seed() const { return seed_; }

  // Feeds one closed session's confirmations and memo entries into the pending stripes
  // (callable from any thread; a session id must be absorbed at most once). `discovered`
  // must be the session's discoveries in their local discovery order — the order half of the
  // deterministic (session id, discovery order) merge key.
  void AbsorbSession(telemetry::SessionId session, const std::vector<std::string>& discovered,
                     std::vector<DiagnosisMemoEntry> memos, const KbSessionStats& stats);

  // Epoch boundary: folds everything pending into a new Version and atomically publishes
  // it. Deterministic merge order (ascending session id, then discovery order); serialized
  // internally; a no-op returning false when nothing is pending.
  bool Publish();

  struct Stats {
    int64_t memo_hits = 0;
    int64_t memo_misses = 0;
    int64_t known_hits = 0;
    int64_t sessions_absorbed = 0;
    int64_t publishes = 0;
    uint64_t epoch = 0;          // of the current snapshot
    size_t discovered = 0;       // published discoveries beyond the seed
    size_t memo_entries = 0;
  };
  Stats TotalStats() const;

  static constexpr int32_t kDefaultStripes = 16;

 private:
  struct PendingDiscovery {
    uint64_t session = 0;
    uint32_t order = 0;
    std::string api;
  };
  struct PendingMemo {
    uint64_t session = 0;
    uint32_t order = 0;
    DiagnosisMemoEntry entry;
  };
  // A pending stripe: contended only by sessions hashing to it, for the microseconds it
  // takes to append a close's worth of strings.
  struct Stripe {
    simkit::SpinLock lock;
    std::vector<PendingDiscovery> discoveries;
    std::vector<PendingMemo> memos;
  };

  const BlockingApiDatabase seed_;
  std::vector<std::unique_ptr<Stripe>> stripes_;

  // Publish-side state: every Version ever published, newest last; `current_` always points
  // into `history_`. The mutex serializes publishers only — readers never touch it.
  mutable std::mutex publish_mutex_;
  std::vector<std::unique_ptr<Version>> history_;
  std::atomic<const Version*> current_{nullptr};

  mutable std::atomic<int64_t> memo_hits_{0};
  mutable std::atomic<int64_t> memo_misses_{0};
  mutable std::atomic<int64_t> known_hits_{0};
  mutable std::atomic<int64_t> sessions_absorbed_{0};
  mutable std::atomic<int64_t> publishes_{0};
};

}  // namespace hangdoctor

#endif  // SRC_HANGDOCTOR_KNOWLEDGE_BASE_H_
