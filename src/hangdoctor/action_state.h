// The per-action state machine of Figure 3. Every user action starts Uncategorized; S-Checker
// moves it to Normal (no symptoms) or Suspicious (symptoms); Diagnoser moves Suspicious
// actions to Normal (path B, UI operation) or Hang Bug (path C). Normal actions are
// periodically reset to Uncategorized so late-manifesting bugs get re-examined.
#ifndef SRC_HANGDOCTOR_ACTION_STATE_H_
#define SRC_HANGDOCTOR_ACTION_STATE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/simkit/time.h"

namespace hangdoctor {

enum class ActionState {
  kUncategorized,
  kNormal,
  kSuspicious,
  kHangBug,
};

inline const char* ActionStateName(ActionState state) {
  switch (state) {
    case ActionState::kUncategorized:
      return "Uncategorized";
    case ActionState::kNormal:
      return "Normal";
    case ActionState::kSuspicious:
      return "Suspicious";
    case ActionState::kHangBug:
      return "HangBug";
  }
  return "?";
}

struct ActionInfo {
  ActionState state = ActionState::kUncategorized;
  int64_t executions = 0;
  // Executions observed since the action became Normal (drives the periodic reset).
  int64_t normal_streak = 0;
  int64_t hangs_observed = 0;
  int64_t times_traced = 0;
};

struct StateTransition {
  simkit::SimTime time = 0;
  int32_t action_uid = -1;
  ActionState from = ActionState::kUncategorized;
  ActionState to = ActionState::kUncategorized;
  std::string reason;
};

// The runtime look-up table the App Injector seeds with one entry per action UID.
class ActionTable {
 public:
  explicit ActionTable(int32_t reset_after_normal_executions = 20)
      : reset_after_(reset_after_normal_executions) {}

  ActionInfo& Lookup(int32_t uid) { return infos_.try_emplace(uid).first->second; }
  const ActionInfo* Find(int32_t uid) const {
    auto it = infos_.find(uid);
    return it == infos_.end() ? nullptr : &it->second;
  }

  void Transition(simkit::SimTime now, int32_t uid, ActionState to, const std::string& reason) {
    ActionInfo& info = Lookup(uid);
    if (info.state == to) {
      return;
    }
    transitions_.push_back(StateTransition{now, uid, info.state, to, reason});
    info.state = to;
    if (to == ActionState::kNormal) {
      info.normal_streak = 0;
    }
  }

  // Counts an execution of a Normal action; resets to Uncategorized after the streak limit.
  void CountNormalExecution(simkit::SimTime now, int32_t uid) {
    ActionInfo& info = Lookup(uid);
    if (info.state != ActionState::kNormal) {
      return;
    }
    if (++info.normal_streak >= reset_after_) {
      Transition(now, uid, ActionState::kUncategorized, "periodic reset");
    }
  }

  const std::vector<StateTransition>& transitions() const { return transitions_; }
  size_t size() const { return infos_.size(); }

 private:
  int32_t reset_after_;
  std::unordered_map<int32_t, ActionInfo> infos_;
  std::vector<StateTransition> transitions_;
};

}  // namespace hangdoctor

#endif  // SRC_HANGDOCTOR_ACTION_STATE_H_
