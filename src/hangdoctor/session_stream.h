// The interleaved multi-session SPI stream: every record a Telemetry Host can push into a
// DetectorCore, as one session-tagged value type. A DetectorService consumes a flat sequence
// of these — records of thousands of sessions arbitrarily interleaved, the shape a fleet
// ingestion backend actually sees — and routes each one to the per-session core that owns it.
//
// Ownership: a ServiceRecord owns its stack samples (DispatchEnd::samples is a span and would
// dangle inside a stored stream), but NOT the symbol table — `open.info.symbols` must outlive
// every record of that session, exactly as SessionInfo demands of a single core. The HDSL v3
// replayer (src/hosts/mux_log.h) keeps each session's parsed table alive until its close
// record has been consumed.
#ifndef SRC_HANGDOCTOR_SESSION_STREAM_H_
#define SRC_HANGDOCTOR_SESSION_STREAM_H_

#include <vector>

#include "src/hangdoctor/detector_core.h"
#include "src/hangdoctor/host_spi.h"
#include "src/telemetry/session.h"
#include "src/telemetry/stack.h"

namespace hangdoctor {

// The union of SPI traffic plus the open/close framing a multiplexed stream needs. `kind`
// selects which member is meaningful; the others stay default-constructed.
struct SpiPayload {
  enum class Kind : uint8_t {
    kSessionOpen = 0,    // info + config: create the per-session core
    kDispatchStart = 1,  // start
    kDispatchEnd = 2,    // end (+ owned samples when end.trace_stopped)
    kActionQuiesce = 3,  // quiesce
    kCounterFault = 4,   // fault
    kSessionClose = 5,   // finalize the session and harvest its result
  };

  Kind kind = Kind::kSessionClose;
  SessionInfo info;          // kSessionOpen; info.symbols is non-owning
  HangDoctorConfig config;   // kSessionOpen
  DispatchStart start;       // kDispatchStart
  DispatchEnd end;           // kDispatchEnd; end.samples is repointed at `samples` on push
  std::vector<telemetry::StackTrace> samples;  // owned storage for end.samples
  ActionQuiesce quiesce;     // kActionQuiesce
  CounterFault fault;        // kCounterFault
};

// One element of the interleaved stream: an SPI payload stamped with its session.
using ServiceRecord = telemetry::SessionStamped<SpiPayload>;

}  // namespace hangdoctor

#endif  // SRC_HANGDOCTOR_SESSION_STREAM_H_
