// The interleaved multi-session SPI stream: every record a Telemetry Host can push into a
// DetectorCore, as one session-tagged value type. A DetectorService consumes a flat sequence
// of these — records of thousands of sessions arbitrarily interleaved, the shape a fleet
// ingestion backend actually sees — and routes each one to the per-session core that owns it.
//
// Ownership: a ServiceRecord owns its stack samples (DispatchEnd::samples is a span and would
// dangle inside a stored stream), but NOT the symbol table — `open.info.symbols` must outlive
// every record of that session, exactly as SessionInfo demands of a single core. The HDSL v3
// replayer (src/hosts/mux_log.h) keeps each session's parsed table alive until its close
// record has been consumed.
#ifndef SRC_HANGDOCTOR_SESSION_STREAM_H_
#define SRC_HANGDOCTOR_SESSION_STREAM_H_

#include <vector>

#include "src/hangdoctor/detector_core.h"
#include "src/hangdoctor/host_spi.h"
#include "src/telemetry/session.h"
#include "src/telemetry/stack.h"

namespace hangdoctor {

// The union of SPI traffic plus the open/close framing a multiplexed stream needs. `kind`
// selects which member is meaningful; the others stay default-constructed.
struct SpiPayload {
  enum class Kind : uint8_t {
    kSessionOpen = 0,    // info + config: create the per-session core
    kDispatchStart = 1,  // start
    kDispatchEnd = 2,    // end (+ owned samples when end.trace_stopped)
    kActionQuiesce = 3,  // quiesce
    kCounterFault = 4,   // fault
    kSessionClose = 5,   // finalize the session and harvest its result
    // Knowledge-base epoch boundary: publish pending discoveries/memos (no-op without a KB).
    // Not tied to any session — carries no payload fields; the HDSL v3 replayer synthesizes
    // these from recorded kEpochPublish frames so replay reproduces the snapshot schedule.
    kKbPublish = 6,
    // Cross-thread causal telemetry (host_spi.h record kind (d)).
    kAsyncPost = 7,
    kAsyncRun = 8,
    kAsyncWaitStart = 9,
    kAsyncWaitEnd = 10,
  };

  Kind kind = Kind::kSessionClose;
  SessionInfo info;          // kSessionOpen; info.symbols is non-owning
  HangDoctorConfig config;   // kSessionOpen
  DispatchStart start;       // kDispatchStart
  DispatchEnd end;           // kDispatchEnd; end.samples is repointed at `samples` on push
  std::vector<telemetry::StackTrace> samples;  // owned storage for end.samples
  ActionQuiesce quiesce;     // kActionQuiesce
  CounterFault fault;        // kCounterFault
  AsyncPost async_post;      // kAsyncPost
  AsyncRun async_run;        // kAsyncRun
  AsyncWaitStart wait_start; // kAsyncWaitStart
  AsyncWaitEnd wait_end;     // kAsyncWaitEnd
};

// One element of the interleaved stream: an SPI payload stamped with its session.
using ServiceRecord = telemetry::SessionStamped<SpiPayload>;

// A non-owning view of one stream element — what actually travels through the ingest
// pipeline's rings. 16 bytes instead of a full SpiPayload copy, so N sessions replaying one
// shared donor stream (the bench shape) cost N×16B of refs, not N copies of the payloads.
// The referenced payload must stay alive until the record has been applied, i.e. until the
// service's ingest barrier (WaitIngestIdle / DrainClosed) has returned.
struct ServiceRecordRef {
  telemetry::SessionId session;
  const SpiPayload* record = nullptr;
};

// In-memory TelemetrySink: captures a session's post-injection SPI stream as owned
// SpiPayloads, ready to be stamped with a SessionId and fed to a DetectorService. Because a
// sink tap is passive and sits downstream of the fault injector, a core fed the captured
// stream behaves bit-identically to the core that ran live — faults included — which is what
// lets the fleet runner generate telemetry device-side and detect backend-side.
class SpiStreamRecorder final : public TelemetrySink {
 public:
  void OnSessionStart(const SessionInfo& info) override;
  void OnDispatchStart(const DispatchStart& start) override;
  void OnDispatchEnd(const DispatchEnd& end) override;
  void OnActionQuiesce(const ActionQuiesce& quiesce) override;
  void OnCounterFault(const CounterFault& fault) override;
  void OnAsyncPost(const AsyncPost& post) override;
  void OnAsyncRun(const AsyncRun& run) override;
  void OnAsyncWaitStart(const AsyncWaitStart& wait) override;
  void OnAsyncWaitEnd(const AsyncWaitEnd& wait) override;

  const SessionInfo& info() const { return info_; }
  const std::vector<SpiPayload>& records() const { return records_; }

 private:
  SessionInfo info_;
  std::vector<SpiPayload> records_;
};

// Fans one telemetry stream out to two sinks (first, then second) — e.g. an HDSL session-log
// writer and an SpiStreamRecorder tapping the same run. Either may be null.
class TeeSink final : public TelemetrySink {
 public:
  TeeSink(TelemetrySink* first, TelemetrySink* second) : first_(first), second_(second) {}
  void OnSessionStart(const SessionInfo& info) override;
  void OnDispatchStart(const DispatchStart& start) override;
  void OnDispatchEnd(const DispatchEnd& end) override;
  void OnActionQuiesce(const ActionQuiesce& quiesce) override;
  void OnCounterFault(const CounterFault& fault) override;
  void OnAsyncPost(const AsyncPost& post) override;
  void OnAsyncRun(const AsyncRun& run) override;
  void OnAsyncWaitStart(const AsyncWaitStart& wait) override;
  void OnAsyncWaitEnd(const AsyncWaitEnd& wait) override;

 private:
  TelemetrySink* first_;
  TelemetrySink* second_;
};

}  // namespace hangdoctor

#endif  // SRC_HANGDOCTOR_SESSION_STREAM_H_
