#include "src/hangdoctor/detector_service.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "src/simkit/affinity.h"

namespace hangdoctor {
namespace {

void ValidateOptions(const ServiceOptions& options) {
  if (options.shards < 1) {
    throw std::invalid_argument("ServiceOptions: shards must be >= 1, got " +
                                std::to_string(options.shards));
  }
  if (options.threads < 0) {
    throw std::invalid_argument("ServiceOptions: threads must be >= 0, got " +
                                std::to_string(options.threads));
  }
  if (options.ring_capacity < 1) {
    throw std::invalid_argument("ServiceOptions: ring_capacity must be >= 1, got " +
                                std::to_string(options.ring_capacity));
  }
  if (options.batch_size < 1) {
    throw std::invalid_argument("ServiceOptions: batch_size must be >= 1, got " +
                                std::to_string(options.batch_size));
  }
  if (options.kb_epoch_sessions < 0) {
    throw std::invalid_argument("ServiceOptions: kb_epoch_sessions must be >= 0, got " +
                                std::to_string(options.kb_epoch_sessions));
  }
  if (options.knowledge_base != nullptr && options.seed_db != nullptr) {
    throw std::invalid_argument(
        "ServiceOptions: seed_db and knowledge_base are mutually exclusive (the knowledge "
        "base carries its own seed)");
  }
}

void SortById(std::vector<SessionResult>& results) {
  std::sort(results.begin(), results.end(),
            [](const SessionResult& a, const SessionResult& b) { return a.id < b.id; });
}

}  // namespace

DetectorService::DetectorService(const ServiceOptions& options) : options_(options) {
  ValidateOptions(options);
  if (options.knowledge_base != nullptr) {
    seed_view_ = &options.knowledge_base->seed();
  } else if (options.seed_db != nullptr) {
    // Copy once: the service owns its seed, so the caller's catalog may die the moment the
    // constructor returns — no dangling-pointer lifetime to document away.
    own_seed_ = *options.seed_db;
    seed_view_ = &own_seed_;
  }
  shards_.reserve(static_cast<size_t>(options.shards));
  for (int32_t i = 0; i < options.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    if (options.threads > 0) {
      shard->ring = std::make_unique<simkit::MpmcRing<IngestBatch>>(
          static_cast<size_t>(options.ring_capacity));
    }
    shards_.push_back(std::move(shard));
  }
  if (options.threads > 0) {
    workers_.reserve(static_cast<size_t>(options.threads));
    for (int32_t w = 0; w < options.threads; ++w) {
      workers_.emplace_back([this, w] { WorkerLoop(static_cast<size_t>(w)); });
    }
  }
}

DetectorService::~DetectorService() {
  if (!workers_.empty()) {
    // Graceful drain: workers observe stop_ only after emptying their rings and catching
    // processed up to enqueued, so every batch routed before destruction is applied. Any
    // results or errors not drained by the caller die with the shards — harvesting them
    // here would hand them to nobody.
    stop_.store(true, std::memory_order_release);
    for (std::thread& worker : workers_) {
      worker.join();
    }
  }
}

// ---------------------------------------------------------------------------
// Arena lifecycle (shared by the synchronous path and the shard workers).

std::unique_ptr<DetectorService::SessionSlot> DetectorService::BuildSlot(
    const SessionInfo& info, const HangDoctorConfig& config) {
  auto slot = std::make_unique<SessionSlot>();
  slot->database.SetBase(seed_view_);
  KnowledgeBase::Snapshot snapshot;
  if (options_.knowledge_base != nullptr) {
    snapshot = options_.knowledge_base->Acquire();
  }
  slot->core = std::make_unique<DetectorCore>(info, config, &slot->database,
                                              /*fleet_report=*/nullptr, snapshot);
  return slot;
}

void DetectorService::InsertSlot(Shard& shard, telemetry::SessionId id,
                                 std::unique_ptr<SessionSlot> slot) {
  bool inserted = false;
  {
    std::lock_guard<simkit::SpinLock> lock(shard.lock);
    inserted = shard.live.Insert(id, std::move(slot)).second;
  }
  if (!inserted) {
    throw std::invalid_argument("DetectorService: session " + std::to_string(id.value) +
                                " is already open");
  }
  opened_.fetch_add(1, std::memory_order_relaxed);
  live_.fetch_add(1, std::memory_order_relaxed);
}

DetectorService::SessionSlot* DetectorService::FindSlot(Shard& shard, telemetry::SessionId id) {
  SessionSlot* slot = nullptr;
  {
    std::lock_guard<simkit::SpinLock> lock(shard.lock);
    // Copy the arena pointer out under the lock: the map slot itself may move on rehash, the
    // SessionSlot never does. Safe to use unlocked because a session has one producer — no
    // other thread can close it while its producer is still pushing.
    if (std::unique_ptr<SessionSlot>* found = shard.live.Find(id)) {
      slot = found->get();
    }
  }
  if (slot == nullptr) {
    throw std::invalid_argument("DetectorService: session " + std::to_string(id.value) +
                                " is not open");
  }
  return slot;
}

std::unique_ptr<DetectorService::SessionSlot> DetectorService::RemoveSlot(
    Shard& shard, telemetry::SessionId id) {
  std::unique_ptr<SessionSlot> slot;
  {
    std::lock_guard<simkit::SpinLock> lock(shard.lock);
    shard.live.Erase(id, &slot);
  }
  if (slot == nullptr) {
    throw std::invalid_argument("DetectorService: session " + std::to_string(id.value) +
                                " is not open");
  }
  live_.fetch_sub(1, std::memory_order_relaxed);
  return slot;
}

SessionResult DetectorService::Harvest(telemetry::SessionId id,
                                       std::unique_ptr<SessionSlot> slot) {
  DetectorCore& core = *slot->core;
  SessionResult result;
  result.id = id;
  result.app_package = core.session().app_package;
  result.device_id = core.session().device_id;
  result.report = core.local_report();
  result.overhead = core.overhead();
  result.degradation = core.degradation();
  result.stream_ok = core.stream().ok();
  result.stream_error = core.stream().error();
  result.stack_samples = core.stack_samples_taken();
  result.discovered = slot->database.discovered();
  result.kb = core.kb_stats();
  if (options_.knowledge_base != nullptr) {
    AbsorbIntoKb(id, result, core);
  }
  result.log = core.TakeLog();
  return result;  // `slot` dies here: the session's arena is gone, only the result remains
}

void DetectorService::AbsorbIntoKb(telemetry::SessionId id, SessionResult& result,
                                   DetectorCore& core) {
  // The session's overlay holds exactly its own confirmations (base-known APIs never enter
  // discovered()), in local discovery order — the (session id, order) merge key the KB's
  // deterministic publish sorts by. Confirmations and memos the *currently published*
  // snapshot already carries are dropped before they reach the pending stripes: the epoch
  // fold would deduplicate them anyway (AddDiscovered is idempotent, memo merge is
  // first-wins over a pure function), so the published state is bit-identical whichever
  // snapshot this races with — and the steady-state session, everything it saw already
  // fleet-known, absorbs nothing but its counters.
  KnowledgeBase::Snapshot snapshot = options_.knowledge_base->Acquire();
  const std::vector<std::string>* discovered = &result.discovered;
  std::vector<std::string> fresh;
  if (snapshot.discovered_size() > 0 &&
      std::any_of(result.discovered.begin(), result.discovered.end(),
                  [&](const std::string& api) { return snapshot.IsKnown(api); })) {
    for (const std::string& api : result.discovered) {
      if (!snapshot.IsKnown(api)) {
        fresh.push_back(api);
      }
    }
    discovered = &fresh;
  }
  std::vector<DiagnosisMemoEntry> memos = core.TakeKbMemos();
  if (snapshot.memo_size() > 0) {
    std::erase_if(memos, [&](const DiagnosisMemoEntry& entry) {
      return snapshot.FindMemo(entry.key) != nullptr;
    });
  }
  options_.knowledge_base->AbsorbSession(id, *discovered, std::move(memos), result.kb);
  if (options_.kb_epoch_sessions > 0) {
    int64_t closed = kb_closed_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (closed % options_.kb_epoch_sessions == 0) {
      options_.knowledge_base->Publish();
    }
  }
}

// ---------------------------------------------------------------------------
// Synchronous per-record path. The spin lock covers only the map probe; the core call runs
// unlocked (one producer per session), so producers on disjoint sessions never serialize on
// detection work — only on the few-nanosecond probe.

void DetectorService::Open(telemetry::SessionId id, const SessionInfo& info,
                           const HangDoctorConfig& config) {
  // Build the arena outside the shard lock: core construction validates info and grabs the
  // knowledge-base snapshot, and neither needs the shard.
  InsertSlot(ShardFor(id), id, BuildSlot(info, config));
}

MonitorDirectives DetectorService::OnDispatchStart(telemetry::SessionId id,
                                                   const DispatchStart& start) {
  return FindSlot(ShardFor(id), id)->core->OnDispatchStart(start);
}

void DetectorService::OnDispatchEnd(telemetry::SessionId id, const DispatchEnd& end) {
  FindSlot(ShardFor(id), id)->core->OnDispatchEnd(end);
}

void DetectorService::OnActionQuiesced(telemetry::SessionId id, const ActionQuiesce& quiesce) {
  FindSlot(ShardFor(id), id)->core->OnActionQuiesced(quiesce);
}

void DetectorService::OnCounterFault(telemetry::SessionId id, const CounterFault& fault) {
  FindSlot(ShardFor(id), id)->core->OnCounterFault(fault);
}

void DetectorService::OnAsyncPost(telemetry::SessionId id, const AsyncPost& post) {
  FindSlot(ShardFor(id), id)->core->OnAsyncPost(post);
}

void DetectorService::OnAsyncRun(telemetry::SessionId id, const AsyncRun& run) {
  FindSlot(ShardFor(id), id)->core->OnAsyncRun(run);
}

void DetectorService::OnAsyncWaitStart(telemetry::SessionId id, const AsyncWaitStart& wait) {
  FindSlot(ShardFor(id), id)->core->OnAsyncWaitStart(wait);
}

void DetectorService::OnAsyncWaitEnd(telemetry::SessionId id, const AsyncWaitEnd& wait) {
  FindSlot(ShardFor(id), id)->core->OnAsyncWaitEnd(wait);
}

SessionResult DetectorService::Close(telemetry::SessionId id) {
  Shard& shard = ShardFor(id);
  return Harvest(id, RemoveSlot(shard, id));
}

void DetectorService::Discard(telemetry::SessionId id) {
  Shard& shard = ShardFor(id);
  std::unique_ptr<SessionSlot> slot;
  {
    std::lock_guard<simkit::SpinLock> lock(shard.lock);
    shard.live.Erase(id, &slot);
  }
  if (slot != nullptr) {
    live_.fetch_sub(1, std::memory_order_relaxed);
  }
  // Absent is fine: discarding is idempotent.
}

// ---------------------------------------------------------------------------
// Pipelined ingest.

DetectorService::Ingestor::Ingestor(DetectorService* service)
    : router_(
          static_cast<size_t>(service->shards()),
          static_cast<size_t>(service->options_.batch_size),
          [shards = service->shards_.size()](const ServiceRecordRef& ref) {
            return telemetry::ShardOf(ref.session, shards);
          },
          [service](size_t shard_index, std::vector<ServiceRecordRef>&& refs) {
            service->EnqueueBatch(shard_index, IngestBatch{std::move(refs)});
          }) {
  service->RequirePipeline("Ingestor");
}

void DetectorService::RequirePipeline(const char* what) const {
  if (workers_.empty()) {
    throw std::logic_error(std::string("DetectorService::") + what +
                           " requires ServiceOptions.threads >= 1");
  }
}

void DetectorService::EnqueueBatch(size_t shard_index, IngestBatch&& batch) {
  Shard& shard = *shards_[shard_index];
  // Count before pushing: the barrier must never observe processed == enqueued while a
  // counted batch is still outside the ring, and a pushed-but-uncounted batch would let the
  // barrier pass with work in flight.
  shard.enqueued.fetch_add(1, std::memory_order_relaxed);
  shard.ring->Push(std::move(batch));  // blocks on a full ring: bounded backpressure
}

void DetectorService::ApplyRecord(Shard& shard, ServiceRecordRef ref) {
  try {
    const SpiPayload& payload = *ref.record;
    switch (payload.kind) {
      case SpiPayload::Kind::kSessionOpen:
        InsertSlot(shard, ref.session, BuildSlot(payload.info, payload.config));
        break;
      case SpiPayload::Kind::kDispatchStart:
        FindSlot(shard, ref.session)->core->OnDispatchStart(payload.start);
        break;
      case SpiPayload::Kind::kDispatchEnd: {
        // The stored record owns its samples; repoint the span for the push.
        DispatchEnd end = payload.end;
        end.samples = payload.samples;
        FindSlot(shard, ref.session)->core->OnDispatchEnd(end);
        break;
      }
      case SpiPayload::Kind::kActionQuiesce:
        FindSlot(shard, ref.session)->core->OnActionQuiesced(payload.quiesce);
        break;
      case SpiPayload::Kind::kCounterFault:
        FindSlot(shard, ref.session)->core->OnCounterFault(payload.fault);
        break;
      case SpiPayload::Kind::kAsyncPost:
        FindSlot(shard, ref.session)->core->OnAsyncPost(payload.async_post);
        break;
      case SpiPayload::Kind::kAsyncRun:
        FindSlot(shard, ref.session)->core->OnAsyncRun(payload.async_run);
        break;
      case SpiPayload::Kind::kAsyncWaitStart:
        FindSlot(shard, ref.session)->core->OnAsyncWaitStart(payload.wait_start);
        break;
      case SpiPayload::Kind::kAsyncWaitEnd:
        FindSlot(shard, ref.session)->core->OnAsyncWaitEnd(payload.wait_end);
        break;
      case SpiPayload::Kind::kSessionClose:
        shard.closed.push_back(Harvest(ref.session, RemoveSlot(shard, ref.session)));
        break;
      case SpiPayload::Kind::kKbPublish:
        // A replayed epoch boundary. Publish() is internally serialized, so concurrent
        // workers replaying interleaved schedules stay safe (the exact snapshot sequence is
        // reproduced when the stream is consumed synchronously, as the replayer documents).
        if (options_.knowledge_base != nullptr) {
          options_.knowledge_base->Publish();
        }
        break;
    }
  } catch (const std::exception& e) {
    // The pipeline cannot throw into its producer; collect and keep applying. One bad
    // session must not poison the other sessions sharing its shard.
    shard.errors.push_back(IngestError{ref.session, e.what()});
  }
}

void DetectorService::WorkerLoop(size_t worker_index) {
  if (options_.pin_workers) {
    simkit::PinCurrentThreadToCore(static_cast<int>(worker_index));
  }
  // options_.threads, not workers_.size(): the first workers start while the constructor is
  // still appending to workers_.
  const size_t stride = static_cast<size_t>(options_.threads);
  int idle_rounds = 0;
  for (;;) {
    bool did_work = false;
    // Shard s is owned by worker s % threads: every shard has exactly one consumer, so
    // per-shard session state needs no locking beyond the map-probe spin lock it already
    // shares with the synchronous path.
    for (size_t s = worker_index; s < shards_.size(); s += stride) {
      Shard& shard = *shards_[s];
      IngestBatch batch;
      while (shard.ring->TryPop(batch)) {
        did_work = true;
        for (const ServiceRecordRef& ref : batch.refs) {
          ApplyRecord(shard, ref);
        }
        // Release pairs with the barrier's acquire: it publishes `closed` and `errors`
        // along with the count.
        shard.processed.fetch_add(1, std::memory_order_release);
      }
    }
    if (did_work) {
      idle_rounds = 0;
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      // Drain before exiting: recheck the rings once stop is visible so batches enqueued
      // before the destructor's store are never stranded.
      bool drained = true;
      for (size_t s = worker_index; s < shards_.size(); s += stride) {
        Shard& shard = *shards_[s];
        if (shard.processed.load(std::memory_order_relaxed) <
            shard.enqueued.load(std::memory_order_acquire)) {
          drained = false;
          break;
        }
      }
      if (drained) {
        return;
      }
      continue;
    }
    // Idle backoff: spin briefly (a producer is probably mid-batch), then yield, then nap —
    // a parked pipeline must not burn a core.
    ++idle_rounds;
    if (idle_rounds < 64) {
      simkit::CpuRelax();
    } else if (idle_rounds < 256) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

void DetectorService::WaitIngestIdle() {
  if (workers_.empty()) {
    return;
  }
  for (const auto& shard : shards_) {
    // enqueued is monotone and the caller has quiesced all producers, so one converged read
    // per shard suffices. The acquire on processed publishes the worker's writes (closed,
    // errors, session arenas) to this thread.
    int64_t target = shard->enqueued.load(std::memory_order_relaxed);
    while (shard->processed.load(std::memory_order_acquire) < target) {
      std::this_thread::yield();
    }
  }
  // The barrier is an epoch boundary: everything absorbed by the drained sessions becomes
  // visible to sessions opened after it. A no-op when nothing is pending.
  if (options_.knowledge_base != nullptr) {
    options_.knowledge_base->Publish();
  }
}

std::vector<SessionResult> DetectorService::DrainClosed() {
  WaitIngestIdle();
  std::vector<SessionResult> results;
  for (const auto& shard : shards_) {
    for (SessionResult& result : shard->closed) {
      results.push_back(std::move(result));
    }
    shard->closed.clear();
  }
  SortById(results);
  return results;
}

std::vector<IngestError> DetectorService::TakeIngestErrors() {
  WaitIngestIdle();
  std::vector<IngestError> errors;
  for (const auto& shard : shards_) {
    for (IngestError& error : shard->errors) {
      errors.push_back(std::move(error));
    }
    shard->errors.clear();
  }
  return errors;
}

std::vector<SessionResult> DetectorService::Consume(std::span<const ServiceRecord> stream) {
  if (!workers_.empty()) {
    {
      Ingestor ingestor(this);
      for (const ServiceRecord& record : stream) {
        ingestor.Push(record);
      }
    }  // flushes
    std::vector<SessionResult> results = DrainClosed();
    std::vector<IngestError> errors = TakeIngestErrors();
    if (!errors.empty()) {
      throw std::invalid_argument(errors.front().message);
    }
    return results;
  }
  std::vector<SessionResult> results;
  for (const ServiceRecord& record : stream) {
    const SpiPayload& payload = record.record;
    switch (payload.kind) {
      case SpiPayload::Kind::kSessionOpen:
        Open(record.session, payload.info, payload.config);
        break;
      case SpiPayload::Kind::kDispatchStart:
        OnDispatchStart(record.session, payload.start);
        break;
      case SpiPayload::Kind::kDispatchEnd: {
        // The stored record owns its samples; repoint the span for the push.
        DispatchEnd end = payload.end;
        end.samples = payload.samples;
        OnDispatchEnd(record.session, end);
        break;
      }
      case SpiPayload::Kind::kActionQuiesce:
        OnActionQuiesced(record.session, payload.quiesce);
        break;
      case SpiPayload::Kind::kCounterFault:
        OnCounterFault(record.session, payload.fault);
        break;
      case SpiPayload::Kind::kAsyncPost:
        OnAsyncPost(record.session, payload.async_post);
        break;
      case SpiPayload::Kind::kAsyncRun:
        OnAsyncRun(record.session, payload.async_run);
        break;
      case SpiPayload::Kind::kAsyncWaitStart:
        OnAsyncWaitStart(record.session, payload.wait_start);
        break;
      case SpiPayload::Kind::kAsyncWaitEnd:
        OnAsyncWaitEnd(record.session, payload.wait_end);
        break;
      case SpiPayload::Kind::kSessionClose:
        results.push_back(Close(record.session));
        break;
      case SpiPayload::Kind::kKbPublish:
        // Synchronous consumption replays a recorded epoch schedule exactly: sessions opened
        // after this record see precisely the snapshots they saw when it was recorded.
        if (options_.knowledge_base != nullptr) {
          options_.knowledge_base->Publish();
        }
        break;
    }
  }
  SortById(results);
  return results;
}

size_t DetectorService::live_sessions() const {
  int64_t live = live_.load(std::memory_order_relaxed);
  return live < 0 ? 0 : static_cast<size_t>(live);
}

std::vector<telemetry::SessionId> DetectorService::LiveSessionIds() const {
  std::vector<telemetry::SessionId> ids;
  for (const auto& shard : shards_) {
    std::lock_guard<simkit::SpinLock> lock(shard->lock);
    shard->live.ForEach(
        [&ids](const telemetry::SessionId& id, const std::unique_ptr<SessionSlot>&) {
          ids.push_back(id);
        });
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

void DetectorService::ImportSession(telemetry::SessionId id, const SessionInfo& info,
                                    const HangDoctorConfig& config,
                                    std::span<const SpiPayload> prefix) {
  Open(id, info, config);
  for (const SpiPayload& payload : prefix) {
    switch (payload.kind) {
      case SpiPayload::Kind::kDispatchStart:
        OnDispatchStart(id, payload.start);
        break;
      case SpiPayload::Kind::kDispatchEnd: {
        DispatchEnd end = payload.end;
        end.samples = payload.samples;
        OnDispatchEnd(id, end);
        break;
      }
      case SpiPayload::Kind::kActionQuiesce:
        OnActionQuiesced(id, payload.quiesce);
        break;
      case SpiPayload::Kind::kCounterFault:
        OnCounterFault(id, payload.fault);
        break;
      case SpiPayload::Kind::kAsyncPost:
        OnAsyncPost(id, payload.async_post);
        break;
      case SpiPayload::Kind::kAsyncRun:
        OnAsyncRun(id, payload.async_run);
        break;
      case SpiPayload::Kind::kAsyncWaitStart:
        OnAsyncWaitStart(id, payload.wait_start);
        break;
      case SpiPayload::Kind::kAsyncWaitEnd:
        OnAsyncWaitEnd(id, payload.wait_end);
        break;
      default:
        throw std::invalid_argument(
            "ImportSession: prefix must hold telemetry records only");
    }
  }
}

HangBugReport MergeSessionReports(std::span<const SessionResult> results) {
  std::vector<const SessionResult*> ordered;
  ordered.reserve(results.size());
  for (const SessionResult& result : results) {
    ordered.push_back(&result);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const SessionResult* a, const SessionResult* b) { return a->id < b->id; });
  HangBugReport merged;
  for (const SessionResult* result : ordered) {
    merged.Merge(result->report);
  }
  return merged;
}

}  // namespace hangdoctor
