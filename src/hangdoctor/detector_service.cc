#include "src/hangdoctor/detector_service.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace hangdoctor {

DetectorService::DetectorService(const ServiceOptions& options) {
  int32_t shards = std::max<int32_t>(1, options.shards);
  shards_.reserve(static_cast<size_t>(shards));
  for (int32_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void DetectorService::Open(telemetry::SessionId id, const SessionInfo& info,
                           const HangDoctorConfig& config,
                           const BlockingApiDatabase* known_db) {
  // Build the arena outside the shard lock: core construction validates info and copies the
  // database, and neither needs the shard.
  auto slot = std::make_unique<SessionSlot>();
  if (known_db != nullptr) {
    slot->database = *known_db;
  }
  slot->core = std::make_unique<DetectorCore>(info, config, &slot->database,
                                              /*fleet_report=*/nullptr);
  Shard& shard = ShardFor(id);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.live.try_emplace(id, std::move(slot));
    if (!inserted) {
      throw std::invalid_argument("DetectorService: session " + std::to_string(id.value) +
                                  " is already open");
    }
  }
  opened_.fetch_add(1, std::memory_order_relaxed);
  live_.fetch_add(1, std::memory_order_relaxed);
}

DetectorService::SessionSlot& DetectorService::Slot(Shard& shard, telemetry::SessionId id) {
  auto it = shard.live.find(id);
  if (it == shard.live.end()) {
    throw std::invalid_argument("DetectorService: session " + std::to_string(id.value) +
                                " is not open");
  }
  return *it->second;
}

MonitorDirectives DetectorService::OnDispatchStart(telemetry::SessionId id,
                                                   const DispatchStart& start) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  return Slot(shard, id).core->OnDispatchStart(start);
}

void DetectorService::OnDispatchEnd(telemetry::SessionId id, const DispatchEnd& end) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  Slot(shard, id).core->OnDispatchEnd(end);
}

void DetectorService::OnActionQuiesced(telemetry::SessionId id, const ActionQuiesce& quiesce) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  Slot(shard, id).core->OnActionQuiesced(quiesce);
}

void DetectorService::OnCounterFault(telemetry::SessionId id, const CounterFault& fault) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  Slot(shard, id).core->OnCounterFault(fault);
}

SessionResult DetectorService::Close(telemetry::SessionId id) {
  Shard& shard = ShardFor(id);
  std::unique_ptr<SessionSlot> slot;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.live.find(id);
    if (it == shard.live.end()) {
      throw std::invalid_argument("DetectorService: session " + std::to_string(id.value) +
                                  " is not open");
    }
    slot = std::move(it->second);
    shard.live.erase(it);
  }
  live_.fetch_sub(1, std::memory_order_relaxed);

  // Harvest outside the lock; the slot is exclusively ours now.
  DetectorCore& core = *slot->core;
  SessionResult result;
  result.id = id;
  result.app_package = core.session().app_package;
  result.device_id = core.session().device_id;
  result.report = core.local_report();
  result.overhead = core.overhead();
  result.degradation = core.degradation();
  result.stream_ok = core.stream().ok();
  result.stream_error = core.stream().error();
  result.stack_samples = core.stack_samples_taken();
  result.discovered = slot->database.discovered();
  result.log = core.TakeLog();
  return result;  // `slot` dies here: the session's arena is gone, only the result remains
}

void DetectorService::Discard(telemetry::SessionId id) {
  Shard& shard = ShardFor(id);
  std::unique_ptr<SessionSlot> slot;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.live.find(id);
    if (it == shard.live.end()) {
      return;  // already closed or never opened: discarding is idempotent
    }
    slot = std::move(it->second);
    shard.live.erase(it);
  }
  live_.fetch_sub(1, std::memory_order_relaxed);
}

std::vector<SessionResult> DetectorService::Consume(std::span<const ServiceRecord> stream,
                                                    const BlockingApiDatabase* known_db) {
  std::vector<SessionResult> results;
  for (const ServiceRecord& record : stream) {
    const SpiPayload& payload = record.record;
    switch (payload.kind) {
      case SpiPayload::Kind::kSessionOpen:
        Open(record.session, payload.info, payload.config, known_db);
        break;
      case SpiPayload::Kind::kDispatchStart:
        OnDispatchStart(record.session, payload.start);
        break;
      case SpiPayload::Kind::kDispatchEnd: {
        // The stored record owns its samples; repoint the span for the push.
        DispatchEnd end = payload.end;
        end.samples = payload.samples;
        OnDispatchEnd(record.session, end);
        break;
      }
      case SpiPayload::Kind::kActionQuiesce:
        OnActionQuiesced(record.session, payload.quiesce);
        break;
      case SpiPayload::Kind::kCounterFault:
        OnCounterFault(record.session, payload.fault);
        break;
      case SpiPayload::Kind::kSessionClose:
        results.push_back(Close(record.session));
        break;
    }
  }
  std::sort(results.begin(), results.end(),
            [](const SessionResult& a, const SessionResult& b) { return a.id < b.id; });
  return results;
}

size_t DetectorService::live_sessions() const {
  int64_t live = live_.load(std::memory_order_relaxed);
  return live < 0 ? 0 : static_cast<size_t>(live);
}

HangBugReport MergeSessionReports(std::span<const SessionResult> results) {
  std::vector<const SessionResult*> ordered;
  ordered.reserve(results.size());
  for (const SessionResult& result : results) {
    ordered.push_back(&result);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const SessionResult* a, const SessionResult* b) { return a->id < b->id; });
  HangBugReport merged;
  for (const SessionResult* result : ordered) {
    merged.Merge(result->report);
  }
  return merged;
}

}  // namespace hangdoctor
