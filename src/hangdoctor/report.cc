#include "src/hangdoctor/report.h"

#include <algorithm>
#include <sstream>

namespace hangdoctor {

std::string HangBugReport::Key(const std::string& app_package, const Diagnosis& diagnosis) {
  return app_package + "|" + diagnosis.culprit.clazz + "." + diagnosis.culprit.function + "|" +
         diagnosis.culprit.file + ":" + std::to_string(diagnosis.culprit.line);
}

void HangBugReport::Record(const std::string& app_package, const Diagnosis& diagnosis,
                           simkit::SimDuration hang_duration, int32_t device_id, bool degraded) {
  BugReportEntry& entry = entries_[Key(app_package, diagnosis)];
  if (entry.occurrences == 0) {
    entry.app_package = app_package;
    entry.api = diagnosis.culprit.clazz + "." + diagnosis.culprit.function;
    entry.file = diagnosis.culprit.file;
    entry.line = diagnosis.culprit.line;
    entry.self_developed = diagnosis.is_self_developed;
    if (diagnosis.via_async_wait) {
      entry.wait_site = diagnosis.wait_frame.clazz + "." + diagnosis.wait_frame.function + "@" +
                        diagnosis.wait_frame.file + ":" +
                        std::to_string(diagnosis.wait_frame.line);
    }
  }
  entry.degraded = entry.degraded || degraded;
  ++entry.occurrences;
  entry.devices.insert(device_id);
  entry.total_hang += hang_duration;
  entry.max_hang = std::max(entry.max_hang, hang_duration);
}

void HangBugReport::Merge(const HangBugReport& other) {
  for (const auto& [key, entry] : other.entries_) {
    BugReportEntry& mine = entries_[key];
    if (mine.occurrences == 0) {
      mine = entry;
      continue;
    }
    mine.degraded = mine.degraded || entry.degraded;
    if (mine.wait_site.empty()) {
      mine.wait_site = entry.wait_site;
    }
    mine.occurrences += entry.occurrences;
    mine.devices.insert(entry.devices.begin(), entry.devices.end());
    mine.total_hang += entry.total_hang;
    mine.max_hang = std::max(mine.max_hang, entry.max_hang);
  }
}

void HangBugReport::Absorb(const BugReportEntry& entry) {
  std::string key =
      entry.app_package + "|" + entry.api + "|" + entry.file + ":" + std::to_string(entry.line);
  BugReportEntry& mine = entries_[key];
  if (mine.occurrences == 0) {
    mine = entry;
    return;
  }
  mine.degraded = mine.degraded || entry.degraded;
  if (mine.wait_site.empty()) {
    mine.wait_site = entry.wait_site;
  }
  mine.occurrences += entry.occurrences;
  mine.devices.insert(entry.devices.begin(), entry.devices.end());
  mine.total_hang += entry.total_hang;
  mine.max_hang = std::max(mine.max_hang, entry.max_hang);
}

std::vector<BugReportEntry> HangBugReport::Entries() const {
  std::vector<BugReportEntry> entries;
  entries.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    entries.push_back(entry);
  }
  return entries;
}

std::vector<BugReportEntry> HangBugReport::SortedEntries() const {
  std::vector<BugReportEntry> sorted;
  sorted.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    sorted.push_back(entry);
  }
  std::sort(sorted.begin(), sorted.end(), [](const BugReportEntry& a, const BugReportEntry& b) {
    if (a.devices.size() != b.devices.size()) {
      return a.devices.size() > b.devices.size();
    }
    if (a.occurrences != b.occurrences) {
      return a.occurrences > b.occurrences;
    }
    return a.api < b.api;
  });
  return sorted;
}

std::string HangBugReport::Render(int32_t total_devices) const {
  std::ostringstream out;
  out << "Hang Bug Report\n";
  out << "  app | blocking operation | call site | mean hang (ms) | occurrences | devices %\n";
  for (const BugReportEntry& entry : SortedEntries()) {
    double device_pct = total_devices > 0 ? 100.0 * static_cast<double>(entry.devices.size()) /
                                                static_cast<double>(total_devices)
                                          : 0.0;
    out << "  " << entry.app_package << " | " << entry.api
        << (entry.self_developed ? " [self-developed]" : "")
        << (entry.degraded ? " [degraded]" : "")
        << (entry.wait_site.empty() ? "" : " [via-wait " + entry.wait_site + "]") << " | "
        << entry.file << ":" << entry.line << " | "
        << static_cast<int64_t>(entry.MeanHangMs()) << " | " << entry.occurrences << " | "
        << static_cast<int64_t>(device_pct) << "%\n";
  }
  return out.str();
}

}  // namespace hangdoctor
