#include "src/hangdoctor/filter.h"

#include "src/hangdoctor/thresholds.h"
#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

namespace hangdoctor {

SoftHangFilter::SoftHangFilter(std::vector<FilterCondition> conditions)
    : conditions_(std::move(conditions)) {}

SoftHangFilter SoftHangFilter::Default() {
  return SoftHangFilter({
      {telemetry::PerfEventType::kContextSwitches, kContextSwitchDiffThreshold},
      {telemetry::PerfEventType::kTaskClock, kTaskClockDiffThresholdNs},
      {telemetry::PerfEventType::kPageFaults, kPageFaultDiffThreshold},
  });
}

bool SoftHangFilter::FiniteDiffs(const telemetry::CounterArray& diffs) {
  for (double diff : diffs) {
    if (!std::isfinite(diff)) {
      return false;
    }
  }
  return true;
}

bool SoftHangFilter::HasSymptoms(const telemetry::CounterArray& diffs) const {
  for (const FilterCondition& condition : conditions_) {
    if (diffs[static_cast<size_t>(condition.event)] > condition.threshold) {
      return true;
    }
  }
  return false;
}

std::vector<bool> SoftHangFilter::MatchVector(const telemetry::CounterArray& diffs) const {
  std::vector<bool> matches;
  matches.reserve(conditions_.size());
  for (const FilterCondition& condition : conditions_) {
    matches.push_back(diffs[static_cast<size_t>(condition.event)] > condition.threshold);
  }
  return matches;
}

std::vector<telemetry::PerfEventType> SoftHangFilter::Events() const {
  std::vector<telemetry::PerfEventType> events;
  for (const FilterCondition& condition : conditions_) {
    if (std::find(events.begin(), events.end(), condition.event) == events.end()) {
      events.push_back(condition.event);
    }
  }
  return events;
}

std::string SoftHangFilter::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < conditions_.size(); ++i) {
    if (i > 0) {
      out << " OR ";
    }
    out << telemetry::PerfEventName(conditions_[i].event) << " diff > "
        << conditions_[i].threshold;
  }
  return out.str();
}

}  // namespace hangdoctor
