#include "src/hangdoctor/filter.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace hangdoctor {

SoftHangFilter::SoftHangFilter(std::vector<FilterCondition> conditions)
    : conditions_(std::move(conditions)) {}

SoftHangFilter SoftHangFilter::Default() {
  return SoftHangFilter({
      {perfsim::PerfEventType::kContextSwitches, 0.0},
      {perfsim::PerfEventType::kTaskClock, 1.7e8},
      {perfsim::PerfEventType::kPageFaults, 500.0},
  });
}

bool SoftHangFilter::HasSymptoms(const perfsim::CounterArray& diffs) const {
  for (const FilterCondition& condition : conditions_) {
    if (diffs[static_cast<size_t>(condition.event)] > condition.threshold) {
      return true;
    }
  }
  return false;
}

std::vector<bool> SoftHangFilter::MatchVector(const perfsim::CounterArray& diffs) const {
  std::vector<bool> matches;
  matches.reserve(conditions_.size());
  for (const FilterCondition& condition : conditions_) {
    matches.push_back(diffs[static_cast<size_t>(condition.event)] > condition.threshold);
  }
  return matches;
}

std::vector<perfsim::PerfEventType> SoftHangFilter::Events() const {
  std::vector<perfsim::PerfEventType> events;
  for (const FilterCondition& condition : conditions_) {
    if (std::find(events.begin(), events.end(), condition.event) == events.end()) {
      events.push_back(condition.event);
    }
  }
  return events;
}

std::string SoftHangFilter::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < conditions_.size(); ++i) {
    if (i > 0) {
      out << " OR ";
    }
    out << perfsim::PerfEventName(conditions_[i].event) << " diff > "
        << conditions_[i].threshold;
  }
  return out.str();
}

}  // namespace hangdoctor
