// The Telemetry Host SPI: the narrow data contract between the substrate-agnostic detector
// core (detector_core.h) and whatever host feeds it — the droidsim adapter
// (src/hosts/hang_doctor.h), the session-log replayer (src/hosts/replay_host.h), or a future
// /proc-style on-device collector.
//
// The contract is deliberately value-shaped rather than virtual-call-shaped: the host pushes
// three kinds of telemetry into the core —
//   (a) action dispatch begin/end/quiesce events with response times,
//   (b) main−render counter deltas for the symptom events (read at quiesce, only when the
//       core previously directed the host to count and the action hung),
//   (c) interned stack samples collected during diagnosis —
// and the core answers dispatch-begin with MonitorDirectives telling the host which
// mechanisms to engage. Because every byte the core ever sees crosses this boundary as plain
// data, a session is trivially recordable (serialize the pushed structs) and replayable
// (push them again): the core is a pure function of (SessionInfo, config, telemetry stream),
// which is what makes the record/replay round-trip bit-identical.
//
// Symbol resolution stays id-based: traces carry telemetry::FrameIds interned in the session's
// SymbolTable (supplied once in SessionInfo); the core materializes strings only when a
// diagnosis or report is rendered.
#ifndef SRC_HANGDOCTOR_HOST_SPI_H_
#define SRC_HANGDOCTOR_HOST_SPI_H_

#include <cstdint>
#include <span>
#include <string>

#include "src/simkit/time.h"
#include "src/telemetry/causal.h"
#include "src/telemetry/counters.h"
#include "src/telemetry/stack.h"
#include "src/telemetry/symbols.h"

namespace hangdoctor {

// Per-session facts the host supplies once, before any telemetry. `symbols` must outlive the
// core and resolve every FrameId the host will ever push.
struct SessionInfo {
  std::string app_package;
  int32_t num_actions = 0;
  int32_t device_id = 0;
  const telemetry::SymbolTable* symbols = nullptr;
};

// (a) An input event of an action execution began dispatching on the main thread.
struct DispatchStart {
  simkit::SimTime now = 0;
  int64_t execution_id = 0;
  int32_t action_uid = -1;
  int32_t event_index = 0;
  int32_t events_total = 0;
};

// (a)+(c) An input event finished dispatching. When the host had an active trace collection
// (armed per MonitorDirectives::arm_hang_check), it stops the collection at this boundary and
// delivers the samples here; `trace_stopped` is set even when zero samples fit the window, so
// the core's overhead accounting matches a real collector's fixed start cost.
struct DispatchEnd {
  simkit::SimTime now = 0;
  int64_t execution_id = 0;
  int32_t event_index = 0;
  simkit::SimDuration response = 0;
  bool trace_stopped = false;
  std::span<const telemetry::StackTrace> samples;
};

// (a)+(b) The action quiesced (main thread finished all its input events and the render
// thread drained). When the core directed counting (start_counters) and the action hung
// (max_response exceeded the configured timeout), the host reads the per-event main−render
// deltas — in SoftHangFilter::Events() order — into `counter_diffs` and sets
// `counters_valid`; entries for events outside the filter stay zero. A host whose counter
// read failed (or that never managed to open the session) leaves `counters_valid` false even
// on a hang; the core then degrades per its policy instead of filtering on zeros.
struct ActionQuiesce {
  simkit::SimTime now = 0;
  int64_t execution_id = 0;
  int32_t action_uid = -1;
  simkit::SimDuration max_response = 0;
  bool counters_valid = false;
  telemetry::CounterArray counter_diffs{};
};

// (b) The host failed to honor a start_counters directive (perf_event_open refused, the
// counter file descriptor died, ...). `permanent` distinguishes a transient failure — the
// core may direct a bounded retry with backoff — from a permanent one (counters disabled on
// this device), after which the core degrades S-Checker to the timeout-only predicate for
// the rest of the session. Pushed like any other telemetry so faulty sessions record and
// replay bit-identically.
struct CounterFault {
  simkit::SimTime now = 0;
  int64_t execution_id = 0;
  bool permanent = false;
};

// (d) Cross-thread causal telemetry (DESIGN.md section 3.8). The host pushes these when the
// app posts work to an async thread, when that work runs, and when the main thread blocks on
// its future. Frame ids use the session symbol table like every trace; thread ids and edge
// ids use the telemetry::causal vocabulary, so no substrate type crosses the SPI. All four
// are pure data — they record and replay like any other telemetry.

// A task was posted to async thread `target`, creating causal edge `edge`. `post_frame` is
// the submit call's frame; `delay` is nonzero for PostDelayed-style posts.
struct AsyncPost {
  simkit::SimTime now = 0;
  int64_t execution_id = 0;
  telemetry::CausalEdgeId edge;
  telemetry::ThreadId target = telemetry::kMainThread;
  telemetry::FrameId post_frame = 0;
  simkit::SimDuration delay = 0;
};

// Edge `edge`'s task started (begin = true) or finished (begin = false) on `thread`.
struct AsyncRun {
  simkit::SimTime now = 0;
  int64_t execution_id = 0;
  telemetry::CausalEdgeId edge;
  telemetry::ThreadId thread = telemetry::kMainThread;
  bool begin = true;
};

// The main thread blocked on edge `edge`'s future inside `wait_frame` (Future.get). Only
// pushed when the task was still incomplete at get() time — a satisfied future emits nothing.
struct AsyncWaitStart {
  simkit::SimTime now = 0;
  int64_t execution_id = 0;
  telemetry::CausalEdgeId edge;
  telemetry::FrameId wait_frame = 0;
};

// The blocked wait resolved after `waited`.
struct AsyncWaitEnd {
  simkit::SimTime now = 0;
  int64_t execution_id = 0;
  telemetry::CausalEdgeId edge;
  simkit::SimDuration waited = 0;
};

// The core's answer to DispatchStart: which host mechanisms to engage for this execution.
struct MonitorDirectives {
  // Begin a per-execution counter session over the symptom events (first Uncategorized
  // dispatch only; idempotent for the host to ignore when already counting).
  bool start_counters = false;
  // Arm the hang check: if this event is still dispatching one hang-timeout from now, start
  // periodic stack-trace collection until the event ends.
  bool arm_hang_check = false;
};

// The consuming half of the SPI as an interface: something that eats one session's telemetry
// and answers DispatchStart with MonitorDirectives. DetectorCore implements it directly (the
// single-session case); a DetectorService session handle implements it by routing the record
// to the shard that owns the session. Hosts and the fault injector talk to a SpiBackend so
// the same adapter code drives either a private core or one session of a multiplexed service.
class SpiBackend {
 public:
  virtual ~SpiBackend() = default;
  virtual MonitorDirectives OnDispatchStart(const DispatchStart& start) = 0;
  virtual void OnDispatchEnd(const DispatchEnd& end) = 0;
  virtual void OnActionQuiesced(const ActionQuiesce& quiesce) = 0;
  virtual void OnCounterFault(const CounterFault& fault) = 0;
  virtual void OnAsyncPost(const AsyncPost& post) = 0;
  virtual void OnAsyncRun(const AsyncRun& run) = 0;
  virtual void OnAsyncWaitStart(const AsyncWaitStart& wait) = 0;
  virtual void OnAsyncWaitEnd(const AsyncWaitEnd& wait) = 0;
};

// Passive tap on the SPI: everything the host pushes into the core is offered to the sink
// first. SessionLogWriter implements this to produce a replayable session log; the tap never
// influences the core, so recording cannot perturb detection.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void OnSessionStart(const SessionInfo& info) = 0;
  virtual void OnDispatchStart(const DispatchStart& start) = 0;
  virtual void OnDispatchEnd(const DispatchEnd& end) = 0;
  virtual void OnActionQuiesce(const ActionQuiesce& quiesce) = 0;
  virtual void OnCounterFault(const CounterFault& fault) = 0;
  virtual void OnAsyncPost(const AsyncPost& post) = 0;
  virtual void OnAsyncRun(const AsyncRun& run) = 0;
  virtual void OnAsyncWaitStart(const AsyncWaitStart& wait) = 0;
  virtual void OnAsyncWaitEnd(const AsyncWaitEnd& wait) = 0;
};

}  // namespace hangdoctor

#endif  // SRC_HANGDOCTOR_HOST_SPI_H_
