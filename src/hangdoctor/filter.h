// The soft hang filter at the heart of S-Checker (Section 3.3.1). A filter is a small set of
// conditions of the form "main−render difference of event E exceeds threshold T"; an action
// execution shows soft-hang-bug *symptoms* when at least one condition holds. The production
// default is the paper's trio:
//   context-switch difference   > 0
//   task-clock difference       > 1.7e8 ns
//   page-fault difference       > 500
// Filters can also be retrained from labeled samples (see correlation.h), which is how the
// paper's "automatic adaptation" extension works.
#ifndef SRC_HANGDOCTOR_FILTER_H_
#define SRC_HANGDOCTOR_FILTER_H_

#include <string>
#include <vector>

#include "src/telemetry/counters.h"

namespace hangdoctor {

struct FilterCondition {
  telemetry::PerfEventType event = telemetry::PerfEventType::kContextSwitches;
  double threshold = 0.0;  // condition holds when diff > threshold
};

class SoftHangFilter {
 public:
  SoftHangFilter() = default;
  explicit SoftHangFilter(std::vector<FilterCondition> conditions);

  // The paper's production filter.
  static SoftHangFilter Default();

  // True when any condition holds for the given per-event differences.
  bool HasSymptoms(const telemetry::CounterArray& diffs) const;

  // True when every entry is a finite number. A faulty counter read (src/faultsim's
  // counter_read_invalid, or a corrupted session log) can deliver NaN/Inf deltas; the core
  // treats such a window like counters_valid == false rather than comparing garbage.
  static bool FiniteDiffs(const telemetry::CounterArray& diffs);

  // Which conditions hold (parallel to conditions()); used by the Table 6 bench.
  std::vector<bool> MatchVector(const telemetry::CounterArray& diffs) const;

  const std::vector<FilterCondition>& conditions() const { return conditions_; }

  // The distinct events the filter needs a PerfSession to count.
  std::vector<telemetry::PerfEventType> Events() const;

  std::string ToString() const;

 private:
  std::vector<FilterCondition> conditions_;
};

}  // namespace hangdoctor

#endif  // SRC_HANGDOCTOR_FILTER_H_
