#include "src/faultsim/hdsl_mutator.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace faultsim {

namespace {

// [begin, end) of record index `i` in the byte stream.
std::pair<size_t, size_t> RecordSpan(const std::string& bytes,
                                     std::span<const size_t> record_offsets, size_t i) {
  size_t begin = record_offsets[i];
  size_t end = i + 1 < record_offsets.size() ? record_offsets[i + 1] : bytes.size();
  return {begin, end};
}

}  // namespace

const char* HdslMutationName(HdslMutation mutation) {
  switch (mutation) {
    case HdslMutation::kBitFlip:
      return "bit-flip";
    case HdslMutation::kByteSet:
      return "byte-set";
    case HdslMutation::kTruncateAtRecord:
      return "truncate-at-record";
    case HdslMutation::kTruncateMidRecord:
      return "truncate-mid-record";
    case HdslMutation::kCorruptTag:
      return "corrupt-tag";
    case HdslMutation::kCorruptVarint:
      return "corrupt-varint";
    case HdslMutation::kDuplicateRecord:
      return "duplicate-record";
    case HdslMutation::kSwapRecords:
      return "swap-records";
    case HdslMutation::kDeleteRecord:
      return "delete-record";
    case HdslMutation::kRetagAsync:
      return "retag-async";
    case HdslMutation::kCorruptAsyncBody:
      return "corrupt-async-body";
  }
  return "?";
}

std::string MutateSessionLog(const std::string& bytes, size_t header_end,
                             std::span<const size_t> record_offsets, simkit::Rng& rng,
                             HdslMutation* applied) {
  auto mutation = static_cast<HdslMutation>(rng.UniformInt(0, kNumHdslMutations - 1));
  if (applied != nullptr) {
    *applied = mutation;
  }
  std::string out = bytes;
  if (out.empty()) {
    return out;
  }
  bool have_records = !record_offsets.empty();
  switch (mutation) {
    case HdslMutation::kBitFlip: {
      size_t pos = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(out.size()) - 1));
      out[pos] = static_cast<char>(static_cast<uint8_t>(out[pos]) ^
                                   (1u << static_cast<unsigned>(rng.UniformInt(0, 7))));
      break;
    }
    case HdslMutation::kByteSet: {
      size_t pos = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(out.size()) - 1));
      out[pos] = static_cast<char>(static_cast<uint8_t>(rng.UniformInt(0, 255)));
      break;
    }
    case HdslMutation::kTruncateAtRecord: {
      if (!have_records) {
        out.resize(out.size() / 2);
        break;
      }
      size_t index = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(record_offsets.size()) - 1));
      out.resize(record_offsets[index]);
      break;
    }
    case HdslMutation::kTruncateMidRecord: {
      // Anywhere in the file, header included — a torn write stops mid-field.
      size_t cut = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(out.size()) - 1));
      out.resize(cut);
      break;
    }
    case HdslMutation::kCorruptTag: {
      if (!have_records) {
        break;
      }
      size_t index = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(record_offsets.size()) - 1));
      out[record_offsets[index]] = static_cast<char>(static_cast<uint8_t>(rng.UniformInt(0, 255)));
      break;
    }
    case HdslMutation::kCorruptVarint: {
      // Set continuation bits on the bytes after a tag: the parser must bound varint length
      // rather than shift forever.
      size_t begin = have_records
                         ? record_offsets[static_cast<size_t>(rng.UniformInt(
                               0, static_cast<int64_t>(record_offsets.size()) - 1))] +
                               1
                         : std::min(header_end, out.size() - 1);
      for (size_t i = begin; i < out.size() && i < begin + 12; ++i) {
        out[i] = static_cast<char>(static_cast<uint8_t>(out[i]) | 0x80);
      }
      break;
    }
    case HdslMutation::kDuplicateRecord: {
      if (!have_records) {
        break;
      }
      size_t index = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(record_offsets.size()) - 1));
      auto [begin, end] = RecordSpan(bytes, record_offsets, index);
      out.insert(end, bytes.substr(begin, end - begin));
      break;
    }
    case HdslMutation::kSwapRecords: {
      if (record_offsets.size() < 2) {
        break;
      }
      size_t index = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(record_offsets.size()) - 2));
      auto [a_begin, a_end] = RecordSpan(bytes, record_offsets, index);
      auto [b_begin, b_end] = RecordSpan(bytes, record_offsets, index + 1);
      std::string swapped = bytes.substr(b_begin, b_end - b_begin) +
                            bytes.substr(a_begin, a_end - a_begin);
      out.replace(a_begin, b_end - a_begin, swapped);
      break;
    }
    case HdslMutation::kDeleteRecord: {
      if (!have_records) {
        break;
      }
      size_t index = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(record_offsets.size()) - 1));
      auto [begin, end] = RecordSpan(bytes, record_offsets, index);
      out.erase(begin, end - begin);
      break;
    }
    case HdslMutation::kRetagAsync: {
      // Forces the parser to reinterpret an arbitrary record body as an async record, so
      // its field bounds (edge ids, thread varints, the wait-frame range check) must hold
      // against garbage rather than only against writer-produced bytes.
      if (!have_records) {
        break;
      }
      size_t index = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(record_offsets.size()) - 1));
      out[record_offsets[index]] = static_cast<char>(
          static_cast<uint8_t>(rng.UniformInt(kFirstAsyncTag, kLastAsyncTag)));
      break;
    }
    case HdslMutation::kCorruptAsyncBody: {
      // Scrambles bytes inside an async record's body — edge ids that no longer pair up,
      // thread ids pointing at unsampled threads, out-of-range wait frames. Pre-async logs
      // have no such records; fall back to corrupting a random record body so the family
      // still exercises the parser on every corpus entry.
      if (!have_records) {
        break;
      }
      std::vector<size_t> async_records;
      for (size_t i = 0; i < record_offsets.size(); ++i) {
        auto tag = static_cast<uint8_t>(bytes[record_offsets[i]]);
        if (tag >= kFirstAsyncTag && tag <= kLastAsyncTag) {
          async_records.push_back(i);
        }
      }
      size_t index =
          async_records.empty()
              ? static_cast<size_t>(
                    rng.UniformInt(0, static_cast<int64_t>(record_offsets.size()) - 1))
              : async_records[static_cast<size_t>(rng.UniformInt(
                    0, static_cast<int64_t>(async_records.size()) - 1))];
      auto [begin, end] = RecordSpan(bytes, record_offsets, index);
      if (end - begin <= 1) {
        break;
      }
      int touches = static_cast<int>(rng.UniformInt(1, 4));
      for (int i = 0; i < touches; ++i) {
        size_t pos = begin + 1 +
                     static_cast<size_t>(rng.UniformInt(
                         0, static_cast<int64_t>(end - begin) - 2));
        out[pos] = static_cast<char>(static_cast<uint8_t>(rng.UniformInt(0, 255)));
      }
      break;
    }
  }
  return out;
}

const char* WireMutationName(WireMutation mutation) {
  switch (mutation) {
    case WireMutation::kTornFrame:
      return "torn-frame";
    case WireMutation::kBadLength:
      return "bad-length";
    case WireMutation::kMidFrameDisconnect:
      return "mid-frame-disconnect";
  }
  return "?";
}

std::string MutateWireStream(const std::string& bytes, std::span<const size_t> frame_offsets,
                             simkit::Rng& rng, WireMutation* applied) {
  auto mutation = static_cast<WireMutation>(rng.UniformInt(0, kNumWireMutations - 1));
  if (applied != nullptr) {
    *applied = mutation;
  }
  std::string out = bytes;
  if (out.empty()) {
    return out;
  }
  bool have_frames = !frame_offsets.empty();
  switch (mutation) {
    case WireMutation::kTornFrame: {
      // The peer promised a frame, delivered part of it, and vanished: the daemon must see
      // EOF mid-frame, abort that connection's sessions, and leak nothing.
      if (!have_frames) {
        out.resize(out.size() / 2);
        break;
      }
      size_t index = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(frame_offsets.size()) - 1));
      size_t begin = frame_offsets[index];
      size_t end = index + 1 < frame_offsets.size() ? frame_offsets[index + 1] : out.size();
      if (end - begin < 2) {
        out.resize(begin + 1);
        break;
      }
      size_t keep = static_cast<size_t>(
          rng.UniformInt(1, static_cast<int64_t>(end - begin) - 1));
      out.resize(begin + keep);
      break;
    }
    case WireMutation::kBadLength: {
      // A length varint claiming ~2^35 bytes: the splitter must reject on the prefix alone
      // (sticky error), never attempt the allocation.
      if (!have_frames) {
        break;
      }
      size_t index = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(frame_offsets.size()) - 1));
      size_t begin = frame_offsets[index];
      std::string huge;
      for (int i = 0; i < 5; ++i) {
        huge.push_back(static_cast<char>(0x80u | static_cast<uint8_t>(rng.UniformInt(1, 127))));
      }
      huge.push_back(static_cast<char>(rng.UniformInt(1, 127)));
      // Splice in place of whatever prefix bytes were there; the remaining stream becomes
      // the "payload", which the cap check never reads.
      out = bytes.substr(0, begin) + huge + bytes.substr(begin);
      break;
    }
    case WireMutation::kMidFrameDisconnect: {
      // A cut anywhere at all — inside a length varint, on a frame boundary, mid-payload.
      size_t cut = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(out.size()) - 1));
      out.resize(cut);
      break;
    }
  }
  return out;
}

}  // namespace faultsim
