// Fleet-level fault plans: the distributed-fleet analogue of fault_plan.h. Where a
// FaultPlan decides the fate of one session's telemetry, a fleet fault plan decides the
// fate of whole workers — which worker process crashes mid-run, which worker's heartbeats
// go dark (partition: the worker is healthy but the coordinator stops hearing from it) —
// and when, as a fraction of the run's routed frames.
//
// Determinism contract (same shape as everything else in this layer): a plan is a pure
// function of (FleetFaultProfile, seed, workers). Each fault family draws from its own
// forked Rng stream, so enabling heartbeat loss never perturbs which worker crashes. A plan
// never takes down every worker — at least one survivor always remains, because the
// coordinator's recovery contract (replay on a live worker) needs somewhere to replay to.
#ifndef SRC_FAULTSIM_FLEET_FAULTS_H_
#define SRC_FAULTSIM_FLEET_FAULTS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace faultsim {

struct FleetFaultProfile {
  std::string name = "none";
  // P(one worker is killed mid-run — its link severs with no drain).
  double worker_crash = 0.0;
  // P(one worker's heartbeats are lost mid-run — its lease expires and it is fenced while
  // its process keeps running).
  double heartbeat_loss = 0.0;

  bool enabled() const { return worker_crash > 0.0 || heartbeat_loss > 0.0; }

  // Named presets: "none", "worker-crash", "heartbeat-loss", "fleet-chaos". Throws
  // std::invalid_argument on an unknown name.
  static FleetFaultProfile Named(const std::string& name);
  static std::vector<std::string> KnownProfiles();
};

struct FleetFaultEvent {
  enum class Kind : uint8_t {
    kWorkerCrash,    // sever the worker's link now; the process is killed/ignored
    kHeartbeatLoss,  // stop exchanging heartbeats with the worker; lease expiry fences it
  };
  Kind kind = Kind::kWorkerCrash;
  int32_t worker = 0;
  // When the event fires, as a fraction of the run's total routed frames, in [0.1, 0.9] —
  // strictly inside the run, so recovery always has both a prefix to replay and a suffix to
  // route afterwards.
  double at = 0.5;
};

// Materializes the plan. Events come back sorted by `at` (ties broken by worker index), hit
// distinct workers, and leave at least one worker untouched.
std::vector<FleetFaultEvent> PlanFleetFaults(const FleetFaultProfile& profile, uint64_t seed,
                                             int32_t workers);

// One line naming an event ("worker 1 crash at 42% of frames") for run logs.
std::string DescribeFleetFault(const FleetFaultEvent& event);

}  // namespace faultsim

#endif  // SRC_FAULTSIM_FLEET_FAULTS_H_
