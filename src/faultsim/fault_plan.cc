#include "src/faultsim/fault_plan.h"

#include <stdexcept>

namespace faultsim {

bool FaultProfile::enabled() const {
  return counter_open_fail > 0.0 || counter_read_invalid > 0.0 || sample_drop > 0.0 ||
         trace_timeout > 0.0 || trace_lost > 0.0 || duplicate_record > 0.0 ||
         delay_record > 0.0 || hdsl_fail_after >= 0;
}

FaultProfile FaultProfile::Named(const std::string& name) {
  FaultProfile profile;
  profile.name = name;
  if (name == "none") {
    return profile;
  }
  if (name == "flaky-counters") {
    // Transient perf_event_open refusals: exercises retry-with-backoff.
    profile.counter_open_fail = 0.35;
    profile.counter_open_permanent = 0.0;
    profile.counter_read_invalid = 0.10;
    return profile;
  }
  if (name == "no-counters") {
    // Counters permanently unavailable from the first open: S-Checker must degrade to the
    // timeout-only predicate and flag everything it reports.
    profile.counter_open_fail = 1.0;
    profile.counter_open_permanent = 1.0;
    return profile;
  }
  if (name == "lossy-sampler") {
    // A sampler that drops samples, times out, or loses whole windows: exercises the
    // zero-sample diagnosis abort/retry path.
    profile.sample_drop = 0.25;
    profile.trace_timeout = 0.20;
    profile.trace_lost = 0.15;
    return profile;
  }
  if (name == "reorder") {
    // Duplicate and delayed End/Quiesce records: exercises the StreamGuard drop-and-count
    // policy and its sticky time-regression error.
    profile.duplicate_record = 0.10;
    profile.delay_record = 0.05;
    return profile;
  }
  if (name == "torn-log") {
    // The session log dies mid-write; detection is unaffected but the recorder must report
    // failure and the reader must reject the truncated file.
    profile.hdsl_fail_after = 1024;
    return profile;
  }
  if (name == "chaos") {
    // Everything at once, at lower rates.
    profile.counter_open_fail = 0.20;
    profile.counter_open_permanent = 0.10;
    profile.counter_read_invalid = 0.10;
    profile.sample_drop = 0.10;
    profile.trace_timeout = 0.10;
    profile.trace_lost = 0.05;
    profile.duplicate_record = 0.05;
    profile.delay_record = 0.02;
    return profile;
  }
  throw std::invalid_argument("unknown fault profile: " + name);
}

std::vector<std::string> FaultProfile::KnownProfiles() {
  return {"none",    "flaky-counters", "no-counters", "lossy-sampler",
          "reorder", "torn-log",       "chaos"};
}

FaultPlan::FaultPlan(const FaultProfile& profile, uint64_t seed)
    : profile_(profile),
      counter_rng_(simkit::Rng(seed, 0x666c7401).Fork(1)),
      read_rng_(simkit::Rng(seed, 0x666c7401).Fork(2)),
      sampler_rng_(simkit::Rng(seed, 0x666c7401).Fork(3)),
      record_rng_(simkit::Rng(seed, 0x666c7401).Fork(4)) {}

FaultPlan::CounterOpen FaultPlan::NextCounterOpen() {
  if (permanent_issued_) {
    return CounterOpen::kPermanentFailure;
  }
  if (!counter_rng_.Bernoulli(profile_.counter_open_fail)) {
    return CounterOpen::kOk;
  }
  if (counter_rng_.Bernoulli(profile_.counter_open_permanent)) {
    permanent_issued_ = true;
    return CounterOpen::kPermanentFailure;
  }
  return CounterOpen::kTransientFailure;
}

bool FaultPlan::NextCounterReadInvalid() {
  return read_rng_.Bernoulli(profile_.counter_read_invalid);
}

FaultPlan::WindowFate FaultPlan::NextWindowFate() {
  if (sampler_rng_.Bernoulli(profile_.trace_lost)) {
    return WindowFate::kLost;
  }
  if (sampler_rng_.Bernoulli(profile_.trace_timeout)) {
    return WindowFate::kTimeout;
  }
  return WindowFate::kIntact;
}

bool FaultPlan::NextSampleDrop() { return sampler_rng_.Bernoulli(profile_.sample_drop); }

FaultPlan::RecordFate FaultPlan::NextRecordFate() {
  if (record_rng_.Bernoulli(profile_.duplicate_record)) {
    return RecordFate::kDuplicate;
  }
  if (record_rng_.Bernoulli(profile_.delay_record)) {
    return RecordFate::kDelay;
  }
  return RecordFate::kDeliver;
}

}  // namespace faultsim
