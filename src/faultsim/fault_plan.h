// Seeded, deterministic telemetry fault plans. A FaultPlan is the single source of every
// fault decision a host makes while feeding a DetectorCore: whether a counter session opens,
// whether a counter read delivers garbage, whether the stack sampler drops a sample or loses
// a whole collection window, and whether an SPI record is duplicated or delayed in flight.
//
// Determinism contract (same as the fleet seeds in src/workload/fleet.h): a plan is a pure
// function of (FaultProfile, seed). Each decision family draws from its own forked Rng
// stream, so e.g. adding a sampler-fault query never perturbs the counter-fault sequence —
// the property that keeps a recorded faulty session byte-identical under replay and under
// any --jobs=N sharding.
//
// The layer sits strictly host-side: the core never sees the plan, only the faulty telemetry
// it produces (plus CounterFault records), exactly as a real device's flaky kernel would
// present itself.
#ifndef SRC_FAULTSIM_FAULT_PLAN_H_
#define SRC_FAULTSIM_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/simkit/rng.h"

namespace faultsim {

// The fault taxonomy, as per-decision probabilities. Probabilities are evaluated
// independently at each decision point (see FaultPlan methods). The named presets below
// cover the study's degradation scenarios; DESIGN.md 3.4 tabulates them.
struct FaultProfile {
  std::string name = "none";
  // P(a counter-session open fails) — evaluated per start_counters directive.
  double counter_open_fail = 0.0;
  // P(a failed open is permanent) — "counters disabled on this device".
  double counter_open_permanent = 0.0;
  // P(a hang's counter read delivers an unusable window: counters_valid false or NaN).
  double counter_read_invalid = 0.0;
  // P(an individual stack sample is dropped by the sampler).
  double sample_drop = 0.0;
  // P(a collection window times out: only a prefix of its samples is delivered).
  double trace_timeout = 0.0;
  // P(a collection window is lost entirely: trace_stopped with zero samples).
  double trace_lost = 0.0;
  // P(a DispatchEnd/ActionQuiesce record is delivered twice).
  double duplicate_record = 0.0;
  // P(a DispatchEnd/ActionQuiesce record is held back and delivered after its successor,
  // i.e. out of order — with its original timestamp, so the core sees time regress).
  double delay_record = 0.0;
  // Session-log writer byte budget: every byte past this fails to land (torn write / full
  // disk). Negative disables.
  int64_t hdsl_fail_after = -1;

  // True when any fault can fire.
  bool enabled() const;

  // Named presets: "none", "flaky-counters", "no-counters", "lossy-sampler", "reorder",
  // "torn-log", "chaos". Throws std::invalid_argument on an unknown name.
  static FaultProfile Named(const std::string& name);
  static std::vector<std::string> KnownProfiles();
};

// The stateful decision stream for one session. Copyable by value into a host.
class FaultPlan {
 public:
  // A disabled plan: every decision is "no fault", with zero Rng draws.
  FaultPlan() = default;
  FaultPlan(const FaultProfile& profile, uint64_t seed);

  bool enabled() const { return profile_.enabled(); }
  const FaultProfile& profile() const { return profile_; }

  enum class CounterOpen { kOk, kTransientFailure, kPermanentFailure };
  // Decides the fate of one counter-session open. Once a permanent failure has been issued
  // every later open fails permanently too (the device's counters do not come back).
  CounterOpen NextCounterOpen();

  // Decides whether a hang's counter read window is unusable.
  bool NextCounterReadInvalid();

  enum class WindowFate { kIntact, kTimeout, kLost };
  // Decides the fate of one trace-collection window (lost beats timeout).
  WindowFate NextWindowFate();

  // Decides whether one sample inside a surviving window is dropped.
  bool NextSampleDrop();

  enum class RecordFate { kDeliver, kDuplicate, kDelay };
  // Decides the in-flight fate of one DispatchEnd/ActionQuiesce record.
  RecordFate NextRecordFate();

 private:
  FaultProfile profile_;
  bool permanent_issued_ = false;
  // One independent stream per decision family (see file comment).
  simkit::Rng counter_rng_{0};
  simkit::Rng read_rng_{0};
  simkit::Rng sampler_rng_{0};
  simkit::Rng record_rng_{0};
};

}  // namespace faultsim

#endif  // SRC_FAULTSIM_FAULT_PLAN_H_
