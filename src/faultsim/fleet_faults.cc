#include "src/faultsim/fleet_faults.h"

#include <algorithm>
#include <stdexcept>

#include "src/simkit/rng.h"

namespace faultsim {

FleetFaultProfile FleetFaultProfile::Named(const std::string& name) {
  FleetFaultProfile profile;
  profile.name = name;
  if (name == "none") {
    return profile;
  }
  if (name == "worker-crash") {
    profile.worker_crash = 1.0;
    return profile;
  }
  if (name == "heartbeat-loss") {
    profile.heartbeat_loss = 1.0;
    return profile;
  }
  if (name == "fleet-chaos") {
    profile.worker_crash = 0.5;
    profile.heartbeat_loss = 0.5;
    return profile;
  }
  throw std::invalid_argument("unknown fleet fault profile: " + name);
}

std::vector<std::string> FleetFaultProfile::KnownProfiles() {
  return {"none", "worker-crash", "heartbeat-loss", "fleet-chaos"};
}

std::vector<FleetFaultEvent> PlanFleetFaults(const FleetFaultProfile& profile, uint64_t seed,
                                             int32_t workers) {
  std::vector<FleetFaultEvent> events;
  if (workers < 2 || !profile.enabled()) {
    return events;  // a single worker has no survivor to fail over to
  }
  simkit::Rng master(seed, /*stream=*/0x0f1ee7);
  simkit::Rng crash_rng = master.Fork(1);
  simkit::Rng loss_rng = master.Fork(2);

  // One victim per family, distinct workers, and never more victims than workers - 1.
  std::vector<int32_t> taken;
  auto pick_victim = [&](simkit::Rng* rng) -> int32_t {
    if (static_cast<int32_t>(taken.size()) >= workers - 1) {
      return -1;
    }
    while (true) {
      auto w = static_cast<int32_t>(rng->UniformInt(0, workers - 1));
      if (std::find(taken.begin(), taken.end(), w) == taken.end()) {
        taken.push_back(w);
        return w;
      }
    }
  };

  if (crash_rng.Bernoulli(profile.worker_crash)) {
    int32_t victim = pick_victim(&crash_rng);
    if (victim >= 0) {
      events.push_back(FleetFaultEvent{FleetFaultEvent::Kind::kWorkerCrash, victim,
                                       crash_rng.Uniform(0.1, 0.9)});
    }
  }
  if (loss_rng.Bernoulli(profile.heartbeat_loss)) {
    int32_t victim = pick_victim(&loss_rng);
    if (victim >= 0) {
      events.push_back(FleetFaultEvent{FleetFaultEvent::Kind::kHeartbeatLoss, victim,
                                       loss_rng.Uniform(0.1, 0.9)});
    }
  }
  std::sort(events.begin(), events.end(), [](const FleetFaultEvent& a, const FleetFaultEvent& b) {
    if (a.at != b.at) {
      return a.at < b.at;
    }
    return a.worker < b.worker;
  });
  return events;
}

std::string DescribeFleetFault(const FleetFaultEvent& event) {
  std::string kind = event.kind == FleetFaultEvent::Kind::kWorkerCrash ? "crash"
                                                                       : "heartbeat loss";
  return "worker " + std::to_string(event.worker) + " " + kind + " at " +
         std::to_string(static_cast<int>(event.at * 100.0)) + "% of frames";
}

}  // namespace faultsim
