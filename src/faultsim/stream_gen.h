// Random SPI-stream generation for the property-based half of the fuzz harness. Generates
// syntactically *valid* telemetry streams — monotone timestamps, matched start/end pairs,
// increasing execution ids, declared action uids — with randomized hangs, counter windows,
// trace samples, and (optionally) counter faults; the property test then asserts that a
// DetectorCore fed any such stream performs only legal Figure 3 action-state transitions and
// keeps its overhead accounting monotone.
//
// With `corrupt` set, one deliberate contract violation is spliced in (time regression,
// orphan record, unmatched start, out-of-range uid, ...) and reported in `corruption`; the
// test then asserts the core either drops the record (counted) or fails sticky — and never
// crashes.
//
// Everything is a pure function of (options, the Rng's state): a failing seed replays.
#ifndef SRC_FAULTSIM_STREAM_GEN_H_
#define SRC_FAULTSIM_STREAM_GEN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/hangdoctor/detector_core.h"
#include "src/hangdoctor/host_spi.h"
#include "src/simkit/rng.h"
#include "src/telemetry/symbols.h"

namespace faultsim {

// One SPI push, with sample storage owned (spans are re-pointed at push time).
struct StreamEvent {
  enum class Kind { kStart, kEnd, kQuiesce, kFault };
  Kind kind = Kind::kStart;
  hangdoctor::DispatchStart start;
  hangdoctor::DispatchEnd end;
  std::vector<telemetry::StackTrace> samples;
  hangdoctor::ActionQuiesce quiesce;
  hangdoctor::CounterFault fault;
};

struct StreamGenOptions {
  int32_t num_actions = 4;
  int32_t num_executions = 16;
  double hang_probability = 0.35;
  // P(a hanging event delivers a trace window) — windows may still hold zero samples.
  double trace_probability = 0.5;
  // P(a CounterFault record is emitted during an execution).
  double counter_fault_probability = 0.0;
  // Splice in one contract violation (see file comment).
  bool corrupt = false;
};

struct GeneratedStream {
  std::unique_ptr<telemetry::SymbolTable> symbols;
  hangdoctor::SessionInfo info;  // info.symbols points at *symbols
  std::vector<StreamEvent> events;
  // Which violation was spliced in; empty for a valid stream.
  std::string corruption;
};

GeneratedStream GenerateStream(const StreamGenOptions& options, simkit::Rng& rng);

// Pushes every event into `core` in order (re-pointing sample spans as it goes).
void PushStream(hangdoctor::DetectorCore& core, std::vector<StreamEvent>& events);

}  // namespace faultsim

#endif  // SRC_FAULTSIM_STREAM_GEN_H_
