// The fault-injection shim between a Telemetry Host and a DetectorCore. A host that would
// push SPI records straight into (sink, core) routes them through a FaultInjector instead;
// the injector consults its FaultPlan and delivers each record zero, one, or two times — and
// possibly out of order — to BOTH the sink and the core, in lockstep. Because the sink sees
// exactly the post-injection stream the core consumed, a recorded faulty session replays
// bit-identically: faults are ordinary telemetry by the time they reach disk.
//
// Injection points:
//   PushStart          — DispatchStart is never perturbed (losing the record that opens an
//                        execution models an adapter bug, not a telemetry fault; the
//                        fuzz/property harness covers that shape separately).
//   PushEnd/PushQuiesce— per-record fate: deliver, duplicate (delivered twice back to back),
//                        or delay (held until after the next pushed record, keeping its
//                        original timestamp — the core's StreamGuard sees time regress).
//   PushCounterFault   — passthrough; emitted by the host when NextCounterOpen() refuses.
//   PushAsync*         — passthrough: the causal stream (post / run / wait) mirrors scheduler
//                        state the host observed directly, so perturbing it would desynchronize
//                        the recorded session from the simulation rather than model a fault.
//   FilterSamples      — applies the sampler faults (lost window, timeout prefix, per-sample
//                        drops) to a collection window before the host attaches it to a
//                        DispatchEnd.
#ifndef SRC_FAULTSIM_FAULT_INJECTOR_H_
#define SRC_FAULTSIM_FAULT_INJECTOR_H_

#include <optional>
#include <span>
#include <vector>

#include "src/faultsim/fault_plan.h"
#include "src/hangdoctor/host_spi.h"
#include "src/telemetry/stack.h"

namespace faultsim {

class FaultInjector {
 public:
  // `core` is any SpiBackend — a private DetectorCore or a DetectorService session handle —
  // must be non-null and outlive the injector; `sink` may be null (no recording).
  FaultInjector(FaultPlan plan, hangdoctor::SpiBackend* core, hangdoctor::TelemetrySink* sink);

  hangdoctor::MonitorDirectives PushStart(const hangdoctor::DispatchStart& start);
  void PushEnd(const hangdoctor::DispatchEnd& end);
  void PushQuiesce(const hangdoctor::ActionQuiesce& quiesce);
  void PushCounterFault(const hangdoctor::CounterFault& fault);
  void PushAsyncPost(const hangdoctor::AsyncPost& post);
  void PushAsyncRun(const hangdoctor::AsyncRun& run);
  void PushAsyncWaitStart(const hangdoctor::AsyncWaitStart& wait);
  void PushAsyncWaitEnd(const hangdoctor::AsyncWaitEnd& wait);

  // Decision taps the host consults while honoring directives.
  FaultPlan::CounterOpen NextCounterOpen() { return plan_.NextCounterOpen(); }
  bool NextCounterReadInvalid() { return plan_.NextCounterReadInvalid(); }

  // Applies the sampler faults to one collection window; the returned vector is what the
  // host should deliver as DispatchEnd::samples.
  std::vector<telemetry::StackTrace> FilterSamples(
      std::span<const telemetry::StackTrace> samples);

  const FaultPlan& plan() const { return plan_; }

 private:
  // A record held back by a delay fault; samples are owned (the host's span dies with its
  // buffer).
  struct Held {
    bool is_end = false;
    hangdoctor::DispatchEnd end;
    std::vector<telemetry::StackTrace> samples;
    hangdoctor::ActionQuiesce quiesce;
  };

  void DeliverEnd(const hangdoctor::DispatchEnd& end);
  void DeliverQuiesce(const hangdoctor::ActionQuiesce& quiesce);
  void ReleaseHeld();

  FaultPlan plan_;
  hangdoctor::SpiBackend* core_;
  hangdoctor::TelemetrySink* sink_;
  std::optional<Held> held_;
};

}  // namespace faultsim

#endif  // SRC_FAULTSIM_FAULT_INJECTOR_H_
