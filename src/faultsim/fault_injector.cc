#include "src/faultsim/fault_injector.h"

#include <utility>

namespace faultsim {

FaultInjector::FaultInjector(FaultPlan plan, hangdoctor::SpiBackend* core,
                             hangdoctor::TelemetrySink* sink)
    : plan_(std::move(plan)), core_(core), sink_(sink) {}

hangdoctor::MonitorDirectives FaultInjector::PushStart(const hangdoctor::DispatchStart& start) {
  // A held record is released after the *next* record: the start is that next record, so it
  // goes first and the stale one follows with its older timestamp.
  if (sink_ != nullptr) {
    sink_->OnDispatchStart(start);
  }
  hangdoctor::MonitorDirectives directives = core_->OnDispatchStart(start);
  ReleaseHeld();
  return directives;
}

void FaultInjector::DeliverEnd(const hangdoctor::DispatchEnd& end) {
  if (sink_ != nullptr) {
    sink_->OnDispatchEnd(end);
  }
  core_->OnDispatchEnd(end);
}

void FaultInjector::DeliverQuiesce(const hangdoctor::ActionQuiesce& quiesce) {
  if (sink_ != nullptr) {
    sink_->OnActionQuiesce(quiesce);
  }
  core_->OnActionQuiesced(quiesce);
}

void FaultInjector::ReleaseHeld() {
  if (!held_.has_value()) {
    return;
  }
  Held held = std::move(*held_);
  held_.reset();
  if (held.is_end) {
    held.end.samples = held.samples;
    DeliverEnd(held.end);
  } else {
    DeliverQuiesce(held.quiesce);
  }
}

void FaultInjector::PushEnd(const hangdoctor::DispatchEnd& end) {
  FaultPlan::RecordFate fate = plan_.NextRecordFate();
  if (fate == FaultPlan::RecordFate::kDelay) {
    // Hold this record; whatever is pushed next goes first. An already-held record is
    // released now (at most one record rides the delay buffer).
    Held held;
    held.is_end = true;
    held.end = end;
    held.samples.assign(end.samples.begin(), end.samples.end());
    ReleaseHeld();
    held_ = std::move(held);
    return;
  }
  DeliverEnd(end);
  if (fate == FaultPlan::RecordFate::kDuplicate) {
    DeliverEnd(end);
  }
  ReleaseHeld();
}

void FaultInjector::PushQuiesce(const hangdoctor::ActionQuiesce& quiesce) {
  FaultPlan::RecordFate fate = plan_.NextRecordFate();
  if (fate == FaultPlan::RecordFate::kDelay) {
    Held held;
    held.is_end = false;
    held.quiesce = quiesce;
    ReleaseHeld();
    held_ = std::move(held);
    return;
  }
  DeliverQuiesce(quiesce);
  if (fate == FaultPlan::RecordFate::kDuplicate) {
    DeliverQuiesce(quiesce);
  }
  ReleaseHeld();
}

void FaultInjector::PushCounterFault(const hangdoctor::CounterFault& fault) {
  if (sink_ != nullptr) {
    sink_->OnCounterFault(fault);
  }
  core_->OnCounterFault(fault);
  ReleaseHeld();
}

void FaultInjector::PushAsyncPost(const hangdoctor::AsyncPost& post) {
  if (sink_ != nullptr) {
    sink_->OnAsyncPost(post);
  }
  core_->OnAsyncPost(post);
  ReleaseHeld();
}

void FaultInjector::PushAsyncRun(const hangdoctor::AsyncRun& run) {
  if (sink_ != nullptr) {
    sink_->OnAsyncRun(run);
  }
  core_->OnAsyncRun(run);
  ReleaseHeld();
}

void FaultInjector::PushAsyncWaitStart(const hangdoctor::AsyncWaitStart& wait) {
  if (sink_ != nullptr) {
    sink_->OnAsyncWaitStart(wait);
  }
  core_->OnAsyncWaitStart(wait);
  ReleaseHeld();
}

void FaultInjector::PushAsyncWaitEnd(const hangdoctor::AsyncWaitEnd& wait) {
  if (sink_ != nullptr) {
    sink_->OnAsyncWaitEnd(wait);
  }
  core_->OnAsyncWaitEnd(wait);
  ReleaseHeld();
}

std::vector<telemetry::StackTrace> FaultInjector::FilterSamples(
    std::span<const telemetry::StackTrace> samples) {
  std::vector<telemetry::StackTrace> kept;
  FaultPlan::WindowFate fate = plan_.NextWindowFate();
  if (fate == FaultPlan::WindowFate::kLost || samples.empty()) {
    return kept;
  }
  size_t limit = samples.size();
  if (fate == FaultPlan::WindowFate::kTimeout) {
    // The collector died partway through the window: only the first half of the samples was
    // ever taken.
    limit = samples.size() / 2;
  }
  kept.reserve(limit);
  for (size_t i = 0; i < limit; ++i) {
    if (plan_.NextSampleDrop()) {
      continue;
    }
    kept.push_back(samples[i]);
  }
  return kept;
}

}  // namespace faultsim
