#include "src/faultsim/stream_gen.h"

#include <algorithm>
#include <utility>

namespace faultsim {

namespace {

using simkit::Milliseconds;

std::unique_ptr<telemetry::SymbolTable> MakeSymbols() {
  auto symbols = std::make_unique<telemetry::SymbolTable>();
  auto add = [&symbols](const char* clazz, const char* function, const char* file, int32_t line,
                        bool closed, bool is_ui) {
    telemetry::StackFrame frame;
    frame.clazz = clazz;
    frame.function = function;
    frame.file = file;
    frame.line = line;
    frame.in_closed_library = closed;
    symbols->Intern(std::move(frame), is_ui);
  };
  // UI-class frames.
  add("android.view.View", "draw", "View.java", 101, false, true);
  add("android.view.Choreographer", "doFrame", "Choreographer.java", 202, false, true);
  add("android.widget.TextView", "onMeasure", "TextView.java", 303, false, true);
  // Blocking APIs.
  add("java.net.SocketInputStream", "read", "SocketInputStream.java", 44, false, false);
  add("android.database.sqlite.SQLiteDatabase", "query", "SQLiteDatabase.java", 55, false,
      false);
  add("java.io.FileInputStream", "read", "FileInputStream.java", 66, false, false);
  add("org.thirdparty.Codec", "decode", "Codec.java", 77, true, false);
  // App-package frames (callers).
  add("com.streamgen.app.MainActivity", "onTap", "MainActivity.java", 10, false, false);
  add("com.streamgen.app.Worker", "process", "Worker.java", 20, false, false);
  add("com.streamgen.app.Cache", "refresh", "Cache.java", 30, false, false);
  return symbols;
}

}  // namespace

GeneratedStream GenerateStream(const StreamGenOptions& options, simkit::Rng& rng) {
  GeneratedStream stream;
  stream.symbols = MakeSymbols();
  stream.info.app_package = "com.streamgen.app";
  stream.info.num_actions = options.num_actions;
  stream.info.device_id = 7;
  stream.info.symbols = stream.symbols.get();

  auto num_frames = static_cast<int64_t>(stream.symbols->size());
  simkit::SimTime clock = Milliseconds(1);
  for (int64_t execution = 1; execution <= options.num_executions; ++execution) {
    auto uid = static_cast<int32_t>(rng.UniformInt(0, options.num_actions - 1));
    auto events_total = static_cast<int32_t>(rng.UniformInt(1, 3));
    simkit::SimDuration max_response = 0;
    bool fault_pending = rng.Bernoulli(options.counter_fault_probability);
    for (int32_t index = 0; index < events_total; ++index) {
      bool hang = rng.Bernoulli(options.hang_probability);
      simkit::SimDuration response = hang ? Milliseconds(rng.UniformInt(150, 1500))
                                          : Milliseconds(rng.UniformInt(1, 80));
      max_response = std::max(max_response, response);

      StreamEvent start;
      start.kind = StreamEvent::Kind::kStart;
      start.start = {clock, execution, uid, index, events_total};
      stream.events.push_back(std::move(start));

      if (fault_pending) {
        // The host failed to honor the start_counters directive for this execution.
        fault_pending = false;
        StreamEvent fault;
        fault.kind = StreamEvent::Kind::kFault;
        fault.fault.now = clock + Milliseconds(1);
        fault.fault.execution_id = execution;
        fault.fault.permanent = rng.Bernoulli(0.2);
        stream.events.push_back(std::move(fault));
      }

      StreamEvent end;
      end.kind = StreamEvent::Kind::kEnd;
      end.end.now = clock + response;
      end.end.execution_id = execution;
      end.end.event_index = index;
      end.end.response = response;
      if (hang && rng.Bernoulli(options.trace_probability)) {
        end.end.trace_stopped = true;
        auto num_samples = rng.UniformInt(0, 8);
        for (int64_t s = 0; s < num_samples; ++s) {
          telemetry::StackTrace sample;
          sample.timestamp_ns = end.end.now - response + Milliseconds(20) * s;
          auto depth = rng.UniformInt(1, 4);
          for (int64_t d = 0; d < depth; ++d) {
            sample.frames.push_back(
                static_cast<telemetry::FrameId>(rng.UniformInt(0, num_frames - 1)));
          }
          end.samples.push_back(std::move(sample));
        }
      }
      stream.events.push_back(std::move(end));
      clock += response + Milliseconds(rng.UniformInt(1, 50));
    }

    StreamEvent quiesce;
    quiesce.kind = StreamEvent::Kind::kQuiesce;
    quiesce.quiesce.now = clock;
    quiesce.quiesce.execution_id = execution;
    quiesce.quiesce.action_uid = uid;
    quiesce.quiesce.max_response = max_response;
    if (max_response > simkit::kPerceivableDelay) {
      // The host read the counter window for a hang; randomize around the filter
      // thresholds so both S-Checker branches are exercised.
      quiesce.quiesce.counters_valid = true;
      auto& diffs = quiesce.quiesce.counter_diffs;
      diffs[static_cast<size_t>(telemetry::PerfEventType::kContextSwitches)] =
          static_cast<double>(rng.UniformInt(-2, 4));
      diffs[static_cast<size_t>(telemetry::PerfEventType::kTaskClock)] = rng.Uniform(0.0, 3e8);
      diffs[static_cast<size_t>(telemetry::PerfEventType::kPageFaults)] =
          static_cast<double>(rng.UniformInt(0, 1200));
    }
    stream.events.push_back(std::move(quiesce));
    clock += Milliseconds(rng.UniformInt(1, 100));
  }

  if (options.corrupt && !stream.events.empty()) {
    switch (rng.UniformInt(0, 4)) {
      case 0: {
        // Time regression: rewind one event's clock far into the past.
        auto index = static_cast<size_t>(
            rng.UniformInt(1, static_cast<int64_t>(stream.events.size()) - 1));
        StreamEvent& event = stream.events[index];
        simkit::SimTime bogus = -Milliseconds(rng.UniformInt(1, 1000));
        switch (event.kind) {
          case StreamEvent::Kind::kStart:
            event.start.now = bogus;
            break;
          case StreamEvent::Kind::kEnd:
            event.end.now = bogus;
            break;
          case StreamEvent::Kind::kQuiesce:
            event.quiesce.now = bogus;
            break;
          case StreamEvent::Kind::kFault:
            event.fault.now = bogus;
            break;
        }
        stream.corruption = "time-regression";
        break;
      }
      case 1: {
        // Orphan record: an end or quiesce for an execution that never started. Scan from a
        // random offset so any record can be hit, but always find one.
        size_t offset = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(stream.events.size()) - 1));
        for (size_t i = 0; i < stream.events.size(); ++i) {
          StreamEvent& event = stream.events[(offset + i) % stream.events.size()];
          if (event.kind == StreamEvent::Kind::kEnd) {
            event.end.execution_id += 1000000;
            stream.corruption = "orphan-end";
            break;
          }
          if (event.kind == StreamEvent::Kind::kQuiesce) {
            event.quiesce.execution_id += 1000000;
            stream.corruption = "orphan-quiesce";
            break;
          }
        }
        break;
      }
      case 2: {
        // Unmatched start: re-send a start while its event is still open.
        for (size_t index = 0; index < stream.events.size(); ++index) {
          if (stream.events[index].kind == StreamEvent::Kind::kStart) {
            StreamEvent duplicate = stream.events[index];
            stream.events.insert(stream.events.begin() + static_cast<ptrdiff_t>(index) + 1,
                                 std::move(duplicate));
            stream.corruption = "start-while-open";
            break;
          }
        }
        break;
      }
      case 3: {
        // Undeclared action uid on a start.
        for (StreamEvent& event : stream.events) {
          if (event.kind == StreamEvent::Kind::kStart) {
            event.start.action_uid = options.num_actions + 5;
            stream.corruption = "uid-out-of-range";
            break;
          }
        }
        break;
      }
      case 4: {
        // Quiesce whose action uid disagrees with its execution's starts.
        for (auto it = stream.events.rbegin(); it != stream.events.rend(); ++it) {
          if (it->kind == StreamEvent::Kind::kQuiesce) {
            // With a single declared action there is no other in-range uid to disagree
            // with; an out-of-range one still mismatches the execution's starts.
            it->quiesce.action_uid =
                options.num_actions > 1 ? (it->quiesce.action_uid + 1) % options.num_actions
                                        : options.num_actions;
            stream.corruption = "quiesce-uid-mismatch";
            break;
          }
        }
        break;
      }
    }
  }
  return stream;
}

void PushStream(hangdoctor::DetectorCore& core, std::vector<StreamEvent>& events) {
  for (StreamEvent& event : events) {
    switch (event.kind) {
      case StreamEvent::Kind::kStart:
        (void)core.OnDispatchStart(event.start);
        break;
      case StreamEvent::Kind::kEnd:
        event.end.samples = event.samples;
        core.OnDispatchEnd(event.end);
        break;
      case StreamEvent::Kind::kQuiesce:
        core.OnActionQuiesced(event.quiesce);
        break;
      case StreamEvent::Kind::kFault:
        core.OnCounterFault(event.fault);
        break;
    }
  }
}

}  // namespace faultsim
