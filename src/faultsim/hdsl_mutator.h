// Structure-aware HDSL mutation for the deterministic fuzz harness. Blind bit flipping
// mostly dies at the magic check; these mutations use the record-boundary map produced by
// hangdoctor::ScanSessionLog (passed in as plain offsets so this layer never depends on the
// hosts library) to land corruption where the parser actually has decisions to make: tag
// bytes, varint continuations, record boundaries, and record-level reordering.
//
// Every mutant is a pure function of (bytes, layout, the Rng's state), so a failing seed
// reproduces exactly.
#ifndef SRC_FAULTSIM_HDSL_MUTATOR_H_
#define SRC_FAULTSIM_HDSL_MUTATOR_H_

#include <cstddef>
#include <span>
#include <string>

#include "src/simkit/rng.h"

namespace faultsim {

// The mutation families, exposed so tests can assert coverage and bias selection.
enum class HdslMutation {
  kBitFlip,           // flip one bit anywhere in the file
  kByteSet,           // overwrite one byte with a random value
  kTruncateAtRecord,  // cut the file at a record boundary (clean truncation)
  kTruncateMidRecord, // cut the file inside a record (torn write)
  kCorruptTag,        // overwrite a record's tag byte
  kCorruptVarint,     // set continuation bits after a record tag (runaway varint)
  kDuplicateRecord,   // re-insert a whole record after itself
  kSwapRecords,       // exchange two adjacent records
  kDeleteRecord,      // remove a whole record
  kRetagAsync,        // overwrite a record's tag with a random HDSL v4 async tag
  kCorruptAsyncBody,  // scramble an async record's body (edge / thread / frame ids)
};
inline constexpr int kNumHdslMutations = 11;

// HDSL v4 async record tags (kAsyncPost..kAsyncWaitEnd). Plain integers mirrored from
// hosts/session_log.h so this layer stays hosts-free; the fuzz test pins the equivalence.
inline constexpr int kFirstAsyncTag = 7;
inline constexpr int kLastAsyncTag = 10;

const char* HdslMutationName(HdslMutation mutation);

// Applies one randomly chosen mutation (uniform over the families above) to `bytes`.
// `header_end` and `record_offsets` come from a ScanSessionLog of the *original* bytes; the
// trailing kEnd marker must be included in `record_offsets`. Returns the mutant and reports
// the family chosen via `applied` (may be null).
std::string MutateSessionLog(const std::string& bytes, size_t header_end,
                             std::span<const size_t> record_offsets, simkit::Rng& rng,
                             HdslMutation* applied = nullptr);

// Wire-level mutation families for the hangdoctord framing layer (src/netd/wire.h). These
// corrupt a *framed* stream — varint length prefix + payload per frame — where the session
// mutations above corrupt the payload grammar. Offsets index the first byte of each frame's
// length prefix; they come from the builder (the netd fuzz case records them while framing),
// so this layer stays netd-free.
enum class WireMutation {
  kTornFrame,          // keep a frame's prefix plus only part of its payload, drop the rest
  kBadLength,          // rewrite a frame's length varint to a value far beyond any cap
  kMidFrameDisconnect, // cut the stream at a uniformly random byte (even mid-varint)
};
inline constexpr int kNumWireMutations = 3;

const char* WireMutationName(WireMutation mutation);

// Applies one randomly chosen wire mutation (uniform over the families above) to `bytes`.
// `frame_offsets` must hold the offset of every frame's length prefix in the *original*
// bytes. Returns the mutant and reports the family via `applied` (may be null).
std::string MutateWireStream(const std::string& bytes, std::span<const size_t> frame_offsets,
                             simkit::Rng& rng, WireMutation* applied = nullptr);

}  // namespace faultsim

#endif  // SRC_FAULTSIM_HDSL_MUTATOR_H_
