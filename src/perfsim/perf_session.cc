#include "src/perfsim/perf_session.h"

#include <algorithm>
#include <cmath>

namespace perfsim {

PerfSession::PerfSession(const CounterHub* hub, PmuSpec pmu, uint64_t seed)
    : hub_(hub), pmu_(pmu), rng_(seed, /*stream=*/0x73657373ULL) {}

void PerfSession::AddThread(kernelsim::ThreadId tid) {
  if (std::find(threads_.begin(), threads_.end(), tid) == threads_.end()) {
    threads_.push_back(tid);
  }
}

void PerfSession::AddEvent(telemetry::PerfEventType event) {
  if (std::find(events_.begin(), events_.end(), event) == events_.end()) {
    events_.push_back(event);
  }
}

void PerfSession::AddAllEvents() {
  for (telemetry::PerfEventType event : telemetry::AllPerfEvents()) {
    AddEvent(event);
  }
}

void PerfSession::Start() {
  start_snapshot_.clear();
  stop_snapshot_.clear();
  for (kernelsim::ThreadId tid : threads_) {
    start_snapshot_[tid] = hub_->Snapshot(tid);
  }
  running_ = true;
  stopped_ = false;
}

void PerfSession::Stop() {
  if (!running_) {
    return;
  }
  for (kernelsim::ThreadId tid : threads_) {
    stop_snapshot_[tid] = hub_->Snapshot(tid);
  }
  running_ = false;
  stopped_ = true;
}

double PerfSession::EnabledFraction() const {
  int32_t hardware_events = 0;
  for (telemetry::PerfEventType event : events_) {
    if (!telemetry::IsSoftwareEvent(event)) {
      ++hardware_events;
    }
  }
  if (hardware_events <= pmu_.hardware_registers) {
    return 1.0;
  }
  return static_cast<double>(pmu_.hardware_registers) / static_cast<double>(hardware_events);
}

double PerfSession::Read(kernelsim::ThreadId tid, telemetry::PerfEventType event) const {
  auto start_it = start_snapshot_.find(tid);
  if (start_it == start_snapshot_.end()) {
    return 0.0;
  }
  telemetry::CounterArray now = stopped_ ? stop_snapshot_.at(tid) : hub_->Snapshot(tid);
  auto idx = static_cast<size_t>(event);
  double truth = now[idx] - start_it->second[idx];
  if (telemetry::IsSoftwareEvent(event)) {
    return truth;
  }
  double fraction = EnabledFraction();
  if (fraction >= 1.0) {
    return truth;
  }
  // The kernel saw truth*fraction of the events and extrapolates; the estimate's relative
  // error grows as the enabled window shrinks.
  double sigma = pmu_.multiplex_noise * (1.0 - fraction) / 0.5;
  double observed = truth * rng_.Normal(1.0, sigma);
  return std::max(observed, 0.0);
}

double PerfSession::ReadDifference(kernelsim::ThreadId a, kernelsim::ThreadId b,
                                   telemetry::PerfEventType event) const {
  return Read(a, event) - Read(b, event);
}

}  // namespace perfsim
