#include "src/perfsim/counter_hub.h"

namespace perfsim {

namespace {
double& At(CounterArray& counters, PerfEventType event) {
  return counters[static_cast<size_t>(event)];
}
}  // namespace

CounterHub::CounterHub(kernelsim::Kernel* kernel, uint64_t seed, double noise_sigma)
    : kernel_(kernel), rng_(seed, /*stream=*/0x70657266ULL), noise_sigma_(noise_sigma) {
  kernel_->AddSink(this);
}

CounterHub::~CounterHub() { kernel_->RemoveSink(this); }

CounterArray CounterHub::Snapshot(kernelsim::ThreadId tid) const {
  auto it = counters_.find(tid);
  if (it == counters_.end()) {
    return CounterArray{};
  }
  return it->second;
}

double CounterHub::Value(kernelsim::ThreadId tid, PerfEventType event) const {
  auto it = counters_.find(tid);
  if (it == counters_.end()) {
    return 0.0;
  }
  return it->second[static_cast<size_t>(event)];
}

CounterArray& CounterHub::Counters(kernelsim::ThreadId tid) {
  return counters_.try_emplace(tid).first->second;
}

double CounterHub::Noise() { return rng_.LogNormal(0.0, noise_sigma_); }

void CounterHub::OnCpuCharge(const kernelsim::Thread& thread, simkit::SimDuration run,
                             const kernelsim::MicroArchProfile& uarch) {
  CounterArray& c = Counters(thread.tid);
  double ns = static_cast<double>(run);
  At(c, PerfEventType::kTaskClock) += ns;
  // cpu-clock is measured by a hrtimer rather than scheduler accounting; on real kernels the
  // two drift apart by a sliver. (The paper omits cpu-clock "because it is similar".)
  At(c, PerfEventType::kCpuClock) += ns * rng_.Uniform(0.9995, 1.0005);

  double instructions = ns * uarch.instructions_per_ns * Noise();
  double kinstr = instructions / 1000.0;
  double cycles = ns * uarch.cycles_per_ns * Noise();
  At(c, PerfEventType::kInstructions) += instructions;
  At(c, PerfEventType::kCpuCycles) += cycles;
  At(c, PerfEventType::kBusCycles) += cycles * 0.38;
  At(c, PerfEventType::kStalledCyclesFrontend) += cycles * uarch.stalled_frontend_ratio * Noise();
  At(c, PerfEventType::kStalledCyclesBackend) += cycles * uarch.stalled_backend_ratio * Noise();

  double cache_refs = kinstr * uarch.cache_refs_per_kinstr * Noise();
  At(c, PerfEventType::kCacheReferences) += cache_refs;
  At(c, PerfEventType::kCacheMisses) += cache_refs * uarch.cache_miss_ratio * Noise();

  double l1d_loads = kinstr * uarch.l1d_loads_per_kinstr * Noise();
  double l1d_stores = kinstr * uarch.l1d_stores_per_kinstr * Noise();
  At(c, PerfEventType::kL1DcacheLoads) += l1d_loads;
  At(c, PerfEventType::kL1DcacheStores) += l1d_stores;
  At(c, PerfEventType::kRawL1DcacheRefill) +=
      (l1d_loads + l1d_stores) * uarch.l1d_refill_ratio * Noise();
  At(c, PerfEventType::kRawL1IcacheRefill) += kinstr * uarch.l1i_refill_per_kinstr * Noise();
  At(c, PerfEventType::kRawL1DtlbRefill) += kinstr * uarch.dtlb_refill_per_kinstr * Noise();
  At(c, PerfEventType::kRawL1ItlbRefill) += kinstr * uarch.itlb_refill_per_kinstr * Noise();

  double branches = kinstr * uarch.branches_per_kinstr * Noise();
  At(c, PerfEventType::kBranchLoads) += branches;
  At(c, PerfEventType::kBranchMisses) += branches * uarch.branch_miss_ratio * Noise();
}

void CounterHub::OnContextSwitch(const kernelsim::Thread& thread, bool voluntary, int64_t count) {
  (void)voluntary;
  At(Counters(thread.tid), PerfEventType::kContextSwitches) += static_cast<double>(count);
}

void CounterHub::OnPageFault(const kernelsim::Thread& thread, bool major, int64_t count) {
  CounterArray& c = Counters(thread.tid);
  At(c, PerfEventType::kPageFaults) += static_cast<double>(count);
  if (major) {
    At(c, PerfEventType::kMajorFaults) += static_cast<double>(count);
  } else {
    At(c, PerfEventType::kMinorFaults) += static_cast<double>(count);
  }
}

void CounterHub::OnCpuMigration(const kernelsim::Thread& thread) {
  At(Counters(thread.tid), PerfEventType::kCpuMigrations) += 1.0;
}

}  // namespace perfsim
