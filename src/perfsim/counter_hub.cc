#include "src/perfsim/counter_hub.h"

namespace perfsim {

namespace {

double& At(telemetry::CounterArray& counters, telemetry::PerfEventType event) {
  return counters[static_cast<size_t>(event)];
}

const telemetry::CounterArray kZeroCounters{};

}  // namespace

CounterHub::CounterHub(kernelsim::Kernel* kernel, uint64_t seed, double noise_sigma)
    : kernel_(kernel), seed_(seed), noise_sigma_(noise_sigma) {
  kernel_->AddSink(this);
}

CounterHub::~CounterHub() { kernel_->RemoveSink(this); }

const telemetry::CounterArray& CounterHub::Snapshot(kernelsim::ThreadId tid) const {
  auto index = static_cast<size_t>(tid);
  if (tid < 0 || index >= threads_.size() || threads_[index].noise_ring.empty()) {
    return kZeroCounters;
  }
  return threads_[index].counters;
}

double CounterHub::Value(kernelsim::ThreadId tid, telemetry::PerfEventType event) const {
  return Snapshot(tid)[static_cast<size_t>(event)];
}

CounterHub::ThreadState& CounterHub::State(kernelsim::ThreadId tid) {
  auto index = static_cast<size_t>(tid);
  if (index >= threads_.size()) {
    threads_.resize(index + 1);
  }
  ThreadState& state = threads_[index];
  if (state.noise_ring.empty()) {
    // First charge for this thread: fill its private rings from a stream derived only from
    // (hub seed, tid), so the multipliers are identical regardless of scheduling interleave.
    simkit::Rng rng(simkit::SplitMix64(seed_) ^ static_cast<uint64_t>(tid),
                    /*stream=*/0x70657266ULL + static_cast<uint64_t>(tid));
    state.noise_ring.resize(kNoiseRingSize);
    for (double& v : state.noise_ring) {
      v = rng.LogNormal(0.0, noise_sigma_);
    }
    state.jitter_ring.resize(kJitterRingSize);
    for (double& v : state.jitter_ring) {
      v = rng.Uniform(0.9995, 1.0005);
    }
  }
  return state;
}

void CounterHub::OnCpuCharge(const kernelsim::Thread& thread, simkit::SimDuration run,
                             const kernelsim::MicroArchProfile& uarch) {
  ThreadState& state = State(thread.tid);
  telemetry::CounterArray& c = state.counters;
  double ns = static_cast<double>(run);
  At(c, telemetry::PerfEventType::kTaskClock) += ns;
  // cpu-clock is measured by a hrtimer rather than scheduler accounting; on real kernels the
  // two drift apart by a sliver. (The paper omits cpu-clock "because it is similar".)
  At(c, telemetry::PerfEventType::kCpuClock) += ns * NextJitter(state);

  double instructions = ns * uarch.instructions_per_ns * NextNoise(state);
  double kinstr = instructions / 1000.0;
  double cycles = ns * uarch.cycles_per_ns * NextNoise(state);
  At(c, telemetry::PerfEventType::kInstructions) += instructions;
  At(c, telemetry::PerfEventType::kCpuCycles) += cycles;
  At(c, telemetry::PerfEventType::kBusCycles) += cycles * 0.38;
  At(c, telemetry::PerfEventType::kStalledCyclesFrontend) +=
      cycles * uarch.stalled_frontend_ratio * NextNoise(state);
  At(c, telemetry::PerfEventType::kStalledCyclesBackend) +=
      cycles * uarch.stalled_backend_ratio * NextNoise(state);

  double cache_refs = kinstr * uarch.cache_refs_per_kinstr * NextNoise(state);
  At(c, telemetry::PerfEventType::kCacheReferences) += cache_refs;
  At(c, telemetry::PerfEventType::kCacheMisses) += cache_refs * uarch.cache_miss_ratio * NextNoise(state);

  double l1d_loads = kinstr * uarch.l1d_loads_per_kinstr * NextNoise(state);
  double l1d_stores = kinstr * uarch.l1d_stores_per_kinstr * NextNoise(state);
  At(c, telemetry::PerfEventType::kL1DcacheLoads) += l1d_loads;
  At(c, telemetry::PerfEventType::kL1DcacheStores) += l1d_stores;
  At(c, telemetry::PerfEventType::kRawL1DcacheRefill) +=
      (l1d_loads + l1d_stores) * uarch.l1d_refill_ratio * NextNoise(state);
  At(c, telemetry::PerfEventType::kRawL1IcacheRefill) +=
      kinstr * uarch.l1i_refill_per_kinstr * NextNoise(state);
  At(c, telemetry::PerfEventType::kRawL1DtlbRefill) +=
      kinstr * uarch.dtlb_refill_per_kinstr * NextNoise(state);
  At(c, telemetry::PerfEventType::kRawL1ItlbRefill) +=
      kinstr * uarch.itlb_refill_per_kinstr * NextNoise(state);

  double branches = kinstr * uarch.branches_per_kinstr * NextNoise(state);
  At(c, telemetry::PerfEventType::kBranchLoads) += branches;
  At(c, telemetry::PerfEventType::kBranchMisses) += branches * uarch.branch_miss_ratio * NextNoise(state);
}

void CounterHub::OnContextSwitch(const kernelsim::Thread& thread, bool voluntary, int64_t count) {
  (void)voluntary;
  At(State(thread.tid).counters, telemetry::PerfEventType::kContextSwitches) +=
      static_cast<double>(count);
}

void CounterHub::OnPageFault(const kernelsim::Thread& thread, bool major, int64_t count) {
  telemetry::CounterArray& c = State(thread.tid).counters;
  At(c, telemetry::PerfEventType::kPageFaults) += static_cast<double>(count);
  if (major) {
    At(c, telemetry::PerfEventType::kMajorFaults) += static_cast<double>(count);
  } else {
    At(c, telemetry::PerfEventType::kMinorFaults) += static_cast<double>(count);
  }
}

void CounterHub::OnCpuMigration(const kernelsim::Thread& thread) {
  At(State(thread.tid).counters, telemetry::PerfEventType::kCpuMigrations) += 1.0;
}

}  // namespace perfsim
