// Simpleperf-like counting session. A session names the threads and events it wants, then
// Start()/Stop() bracket the measurement and Read() returns the observed per-thread counts.
//
// The PMU register model is where the paper's "counting accuracy may decrease" caveat lives:
// software events are always exact, but when a session asks for more *hardware* events than
// the device has PMU registers (6 on the LG V10 profile vs 15 modeled hardware events), the
// kernel time-multiplexes the registers. Each hardware event is then only enabled for a
// fraction of the run and its count is extrapolated, which adds relative error that grows as
// the enabled fraction shrinks. Hang Doctor's production filter needs only three *software*
// events, so it never pays this cost — but the offline correlation study that selects those
// events (Table 3) measures everything and does.
#ifndef SRC_PERFSIM_PERF_SESSION_H_
#define SRC_PERFSIM_PERF_SESSION_H_

#include <map>
#include <vector>

#include "src/perfsim/counter_hub.h"
#include "src/telemetry/counters.h"

namespace perfsim {

struct PmuSpec {
  // Number of programmable hardware counter registers (per thread context).
  int32_t hardware_registers = 6;
  // Relative noise of multiplexed extrapolation at 50% enabled time; scales with (1 - f).
  double multiplex_noise = 0.04;
};

class PerfSession {
 public:
  PerfSession(const CounterHub* hub, PmuSpec pmu, uint64_t seed);

  // Configuration; must happen before Start().
  void AddThread(kernelsim::ThreadId tid);
  void AddEvent(telemetry::PerfEventType event);
  void AddAllEvents();

  void Start();
  void Stop();
  bool running() const { return running_; }

  // Observed count of `event` on `tid` over the Start..Stop window (or Start..now while
  // running). Hardware events reflect multiplexing extrapolation error.
  double Read(kernelsim::ThreadId tid, telemetry::PerfEventType event) const;

  // Convenience for S-Checker: Read(a) - Read(b), the paper's main−render difference.
  double ReadDifference(kernelsim::ThreadId a, kernelsim::ThreadId b, telemetry::PerfEventType event) const;

  const std::vector<telemetry::PerfEventType>& events() const { return events_; }
  const std::vector<kernelsim::ThreadId>& threads() const { return threads_; }

  // Fraction of time each hardware event was actually enabled under this configuration.
  double EnabledFraction() const;

 private:
  const CounterHub* hub_;
  PmuSpec pmu_;
  mutable simkit::Rng rng_;
  std::vector<kernelsim::ThreadId> threads_;
  std::vector<telemetry::PerfEventType> events_;
  std::map<kernelsim::ThreadId, telemetry::CounterArray> start_snapshot_;
  std::map<kernelsim::ThreadId, telemetry::CounterArray> stop_snapshot_;
  bool running_ = false;
  bool stopped_ = false;
};

}  // namespace perfsim

#endif  // SRC_PERFSIM_PERF_SESSION_H_
