// Compatibility shim: the performance-event vocabulary moved to src/telemetry/counters.h so
// the detector core (src/hangdoctor) can name events without depending on this simulated
// counting substrate. perfsim code and its existing users keep referring to the types through
// the aliases below.
#ifndef SRC_PERFSIM_EVENTS_H_
#define SRC_PERFSIM_EVENTS_H_

#include "src/telemetry/counters.h"

namespace perfsim {

using telemetry::PerfEventType;
using telemetry::kNumPerfEvents;
using telemetry::IsSoftwareEvent;
using telemetry::PerfEventName;
using telemetry::PerfEventFromName;
using telemetry::AllPerfEvents;
using telemetry::CounterArray;

}  // namespace perfsim

#endif  // SRC_PERFSIM_EVENTS_H_
