// CounterHub subscribes to kernel execution events and maintains the ground-truth per-thread
// value of every performance event. Hardware-event counts are derived from each charged CPU
// slice and the micro-architectural profile of the code being executed, with multiplicative
// log-normal noise so repeated runs of identical code produce realistically scattered counts
// (the scatter visible in Figure 4 of the paper). PerfSessions snapshot the hub; the PMU
// register model then decides how accurately a session can observe the truth.
//
// Hot-path design:
//  - Storage is dense: a vector indexed by the kernel's (already dense) ThreadId, so
//    OnCpuCharge/OnContextSwitch never hash. Snapshot() returns a view into that storage.
//  - Noise multipliers come from a per-thread precomputed ring: each thread's ring is filled
//    once from its own SplitMix64-derived stream (seed ^ tid), then consumed cyclically, so a
//    charge costs loads and multiplies instead of a dozen Box-Muller + exp draws. This keeps
//    the noise distribution and makes a thread's noise independent of how other threads'
//    charges interleave — strictly stronger determinism than the old shared-stream draw
//    order. Software events (context switches, task clock, faults, migrations) are exact and
//    never consume noise, exactly as in the paper.
#ifndef SRC_PERFSIM_COUNTER_HUB_H_
#define SRC_PERFSIM_COUNTER_HUB_H_

#include <vector>

#include "src/kernelsim/event_sink.h"
#include "src/kernelsim/kernel.h"
#include "src/telemetry/counters.h"
#include "src/simkit/rng.h"

namespace perfsim {

class CounterHub : public kernelsim::KernelEventSink {
 public:
  // Registers itself as a sink on `kernel`; unregisters on destruction.
  CounterHub(kernelsim::Kernel* kernel, uint64_t seed, double noise_sigma = 0.09);
  ~CounterHub() override;
  CounterHub(const CounterHub&) = delete;
  CounterHub& operator=(const CounterHub&) = delete;

  // Ground-truth accumulated counts for a thread, as a view into the hub's dense storage
  // (a shared all-zeros array for never-seen threads). Valid until the hub is destroyed;
  // values keep accumulating behind the view while the simulation runs, so callers that
  // need a fixed point in time must copy.
  const telemetry::CounterArray& Snapshot(kernelsim::ThreadId tid) const;

  double Value(kernelsim::ThreadId tid, telemetry::PerfEventType event) const;

  // KernelEventSink:
  void OnCpuCharge(const kernelsim::Thread& thread, simkit::SimDuration run,
                   const kernelsim::MicroArchProfile& uarch) override;
  void OnContextSwitch(const kernelsim::Thread& thread, bool voluntary, int64_t count) override;
  void OnPageFault(const kernelsim::Thread& thread, bool major, int64_t count) override;
  void OnCpuMigration(const kernelsim::Thread& thread) override;

 private:
  // Ring sizes are powers of two so the cursor wraps with a mask. 1024 log-normal
  // multipliers serve ~85 charges before reuse; ample for aggregate statistics.
  static constexpr size_t kNoiseRingSize = 1024;
  static constexpr size_t kJitterRingSize = 256;

  struct ThreadState {
    telemetry::CounterArray counters{};
    // LogNormal(0, noise_sigma) multipliers for hardware-event derivation.
    std::vector<double> noise_ring;
    // Uniform(0.9995, 1.0005) factors modelling cpu-clock hrtimer drift.
    std::vector<double> jitter_ring;
    uint32_t noise_pos = 0;
    uint32_t jitter_pos = 0;
  };

  ThreadState& State(kernelsim::ThreadId tid);

  double NextNoise(ThreadState& state) {
    double v = state.noise_ring[state.noise_pos];
    state.noise_pos = (state.noise_pos + 1) & (kNoiseRingSize - 1);
    return v;
  }

  double NextJitter(ThreadState& state) {
    double v = state.jitter_ring[state.jitter_pos];
    state.jitter_pos = (state.jitter_pos + 1) & (kJitterRingSize - 1);
    return v;
  }

  kernelsim::Kernel* kernel_;
  uint64_t seed_;
  double noise_sigma_;
  std::vector<ThreadState> threads_;  // dense, indexed by ThreadId
};

}  // namespace perfsim

#endif  // SRC_PERFSIM_COUNTER_HUB_H_
