// CounterHub subscribes to kernel execution events and maintains the ground-truth per-thread
// value of every performance event. Hardware-event counts are derived from each charged CPU
// slice and the micro-architectural profile of the code being executed, with multiplicative
// log-normal noise so repeated runs of identical code produce realistically scattered counts
// (the scatter visible in Figure 4 of the paper). PerfSessions snapshot the hub; the PMU
// register model then decides how accurately a session can observe the truth.
#ifndef SRC_PERFSIM_COUNTER_HUB_H_
#define SRC_PERFSIM_COUNTER_HUB_H_

#include <unordered_map>

#include "src/kernelsim/event_sink.h"
#include "src/kernelsim/kernel.h"
#include "src/perfsim/events.h"
#include "src/simkit/rng.h"

namespace perfsim {

class CounterHub : public kernelsim::KernelEventSink {
 public:
  // Registers itself as a sink on `kernel`; unregisters on destruction.
  CounterHub(kernelsim::Kernel* kernel, uint64_t seed, double noise_sigma = 0.09);
  ~CounterHub() override;
  CounterHub(const CounterHub&) = delete;
  CounterHub& operator=(const CounterHub&) = delete;

  // Ground-truth accumulated counts for a thread (zeros for never-seen threads).
  CounterArray Snapshot(kernelsim::ThreadId tid) const;

  double Value(kernelsim::ThreadId tid, PerfEventType event) const;

  // KernelEventSink:
  void OnCpuCharge(const kernelsim::Thread& thread, simkit::SimDuration run,
                   const kernelsim::MicroArchProfile& uarch) override;
  void OnContextSwitch(const kernelsim::Thread& thread, bool voluntary, int64_t count) override;
  void OnPageFault(const kernelsim::Thread& thread, bool major, int64_t count) override;
  void OnCpuMigration(const kernelsim::Thread& thread) override;

 private:
  CounterArray& Counters(kernelsim::ThreadId tid);
  double Noise();

  kernelsim::Kernel* kernel_;
  simkit::Rng rng_;
  double noise_sigma_;
  std::unordered_map<kernelsim::ThreadId, CounterArray> counters_;
};

}  // namespace perfsim

#endif  // SRC_PERFSIM_COUNTER_HUB_H_
