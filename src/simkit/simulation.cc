#include "src/simkit/simulation.h"

#include <algorithm>
#include <utility>

namespace simkit {

EventId Simulation::ScheduleAfter(SimDuration delay, EventCallback cb) {
  return ScheduleAt(now_ + std::max<SimDuration>(delay, 0), std::move(cb));
}

EventId Simulation::ScheduleAt(SimTime when, EventCallback cb) {
  return queue_.ScheduleAt(std::max(when, now_), std::move(cb));
}

SimTime Simulation::RunUntil(SimTime deadline) {
  while (!queue_.Empty() && queue_.NextTime() <= deadline) {
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return now_;
}

SimTime Simulation::RunToCompletion() {
  while (Step()) {
  }
  return now_;
}

bool Simulation::Step() {
  SimTime when = 0;
  EventCallback cb;
  if (!queue_.PopNext(&when, &cb)) {
    return false;
  }
  // Advance the clock before the callback so handlers observe their own timestamp.
  now_ = when;
  cb();
  return true;
}

}  // namespace simkit
