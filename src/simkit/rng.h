// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic component draws from its own Rng stream, derived from a master seed with
// SplitMix64 so that adding a new consumer never perturbs the draws seen by existing ones.
// The core generator is PCG32 (O'Neill, 2014): small state, good statistical quality, and fully
// reproducible across platforms, which keeps every benchmark table bit-stable.
//
// All draw methods are defined inline: the counter hub draws a dozen log-normals per CPU
// charge and the kernel an exponential per micro-yield, so the generator is a genuine hot
// path and must not cost a cross-TU call per 32 bits of randomness. The arithmetic is
// exactly the pre-inline sequence, so every stream stays bit-identical.
#ifndef SRC_SIMKIT_RNG_H_
#define SRC_SIMKIT_RNG_H_

#include <cmath>
#include <cstdint>

namespace simkit {

// Mixes a 64-bit value into a well-distributed 64-bit value. Used for seed derivation.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class Rng {
 public:
  explicit Rng(uint64_t seed, uint64_t stream = 0) : seed_(seed), stream_(stream) {
    state_ = SplitMix64(seed ^ SplitMix64(stream));
    inc_ = (SplitMix64(stream ^ 0xda3e39cb94b95bdbULL) << 1u) | 1u;
    // Warm up per the PCG reference implementation.
    NextU32();
  }

  // Uniform 32-bit value.
  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  // Uniform 64-bit value.
  uint64_t NextU64() { return (static_cast<uint64_t>(NextU32()) << 32) | NextU32(); }

  // Uniform double in [0, 1).
  double NextDouble() {
    // 53 random bits into [0, 1).
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    if (lo >= hi) {
      return lo;
    }
    uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    // Rejection sampling to remove modulo bias.
    uint64_t limit = UINT64_MAX - UINT64_MAX % range;
    uint64_t v = NextU64();
    while (v >= limit) {
      v = NextU64();
    }
    return lo + static_cast<int64_t>(v % range);
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) {
      return false;
    }
    if (p >= 1.0) {
      return true;
    }
    return NextDouble() < p;
  }

  // Normal distribution via Box-Muller. Unclamped.
  double Normal(double mean, double stddev) {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return mean + stddev * cached_normal_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    while (u1 <= 1e-300) {
      u1 = NextDouble();
    }
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return mean + stddev * r * std::cos(theta);
  }

  // Log-normal: exp(Normal(mu, sigma)). Used for long-tailed I/O and API latencies.
  double LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

  // Exponential with the given mean (mean = 1/lambda). Used for think times and arrivals.
  double Exponential(double mean) {
    double u = NextDouble();
    while (u <= 1e-300) {
      u = NextDouble();
    }
    return -mean * std::log(u);
  }

  // Poisson-distributed count with the given mean. Used for event-count noise.
  // Uses inversion for small means and a normal approximation for large ones.
  int64_t Poisson(double mean);

  // Derives an independent child stream; deterministic in (this stream, tag).
  Rng Fork(uint64_t tag) {
    return Rng(SplitMix64(seed_ ^ SplitMix64(tag)),
               SplitMix64(stream_ + 0x632be59bd9b4e019ULL + tag));
  }

 private:
  uint64_t state_;
  uint64_t inc_;
  // Cached second value from Box-Muller.
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
  uint64_t seed_;    // retained for Fork()
  uint64_t stream_;  // retained for Fork()
};

}  // namespace simkit

#endif  // SRC_SIMKIT_RNG_H_
