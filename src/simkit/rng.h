// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic component draws from its own Rng stream, derived from a master seed with
// SplitMix64 so that adding a new consumer never perturbs the draws seen by existing ones.
// The core generator is PCG32 (O'Neill, 2014): small state, good statistical quality, and fully
// reproducible across platforms, which keeps every benchmark table bit-stable.
#ifndef SRC_SIMKIT_RNG_H_
#define SRC_SIMKIT_RNG_H_

#include <cstdint>

namespace simkit {

// Mixes a 64-bit value into a well-distributed 64-bit value. Used for seed derivation.
uint64_t SplitMix64(uint64_t x);

class Rng {
 public:
  explicit Rng(uint64_t seed, uint64_t stream = 0);

  // Uniform 32-bit value.
  uint32_t NextU32();

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Normal distribution via Box-Muller. Unclamped.
  double Normal(double mean, double stddev);

  // Log-normal: exp(Normal(mu, sigma)). Used for long-tailed I/O and API latencies.
  double LogNormal(double mu, double sigma);

  // Exponential with the given mean (mean = 1/lambda). Used for think times and arrivals.
  double Exponential(double mean);

  // Poisson-distributed count with the given mean. Used for event-count noise.
  // Uses inversion for small means and a normal approximation for large ones.
  int64_t Poisson(double mean);

  // Derives an independent child stream; deterministic in (this stream, tag).
  Rng Fork(uint64_t tag);

 private:
  uint64_t state_;
  uint64_t inc_;
  // Cached second value from Box-Muller.
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
  uint64_t seed_;    // retained for Fork()
  uint64_t stream_;  // retained for Fork()
};

}  // namespace simkit

#endif  // SRC_SIMKIT_RNG_H_
