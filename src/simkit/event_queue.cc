#include "src/simkit/event_queue.h"

#include <cassert>
#include <utility>

namespace simkit {

EventId EventQueue::ScheduleAt(SimTime when, EventCallback cb) {
  EventId id = next_id_++;
  heap_.push(Entry{when, next_seq_++, id, std::move(cb)});
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  if (id == 0 || id >= next_id_) {
    return false;
  }
  // We cannot remove from the middle of a binary heap; mark the id and skip it lazily.
  if (cancelled_.insert(id).second) {
    if (live_count_ == 0) {
      cancelled_.erase(id);
      return false;
    }
    --live_count_;
    return true;
  }
  return false;
}

void EventQueue::DropCancelledHead() const {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) {
      return;
    }
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool EventQueue::Empty() const {
  DropCancelledHead();
  return heap_.empty();
}

SimTime EventQueue::NextTime() const {
  DropCancelledHead();
  return heap_.empty() ? kSimTimeNever : heap_.top().when;
}

SimTime EventQueue::RunNext() {
  SimTime when = 0;
  EventCallback cb;
  bool ok = PopNext(&when, &cb);
  assert(ok);
  (void)ok;
  cb();
  return when;
}

bool EventQueue::PopNext(SimTime* when, EventCallback* cb) {
  DropCancelledHead();
  if (heap_.empty()) {
    return false;
  }
  *when = heap_.top().when;
  *cb = std::move(heap_.top().cb);
  heap_.pop();
  --live_count_;
  return true;
}

}  // namespace simkit
