#include "src/simkit/event_queue.h"

#include <cassert>

namespace simkit {

SimTime EventQueue::RunNext() {
  SimTime when = 0;
  EventCallback cb;
  bool ok = PopNext(&when, &cb);
  assert(ok);
  (void)ok;
  cb();
  return when;
}

}  // namespace simkit
