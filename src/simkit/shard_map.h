// An open-addressed hash map built for the sharded session-routing path: flat storage,
// linear probing, tombstone deletion, and no per-node allocation — a probe touches one
// contiguous array instead of chasing unordered_map buckets. The map itself is
// single-writer-at-a-time (it does NOT synchronize); concurrency comes from how it is used:
//
//  - sharded: each shard owns one OpenHashMap, so contention splits `shards` ways;
//  - fine-grained: a shard's map is guarded by a SpinLock held only for the probe
//    (find/insert/erase), never while the found value is being *used* — values with stable
//    pointees (e.g. std::unique_ptr<Arena>) let callers release the lock and keep working,
//    because rehashing moves the handle, not the pointee;
//  - single-owner: a shard drained by exactly one worker thread needs no lock at all.
//
// K and V must be default-constructible and move-assignable; erased V slots are reset to a
// default-constructed value (releasing whatever the old value owned).
#ifndef SRC_SIMKIT_SHARD_MAP_H_
#define SRC_SIMKIT_SHARD_MAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace simkit {

template <typename K, typename V, typename Hash>
class OpenHashMap {
 public:
  OpenHashMap() { Rehash(kInitialSlots); }
  OpenHashMap(const OpenHashMap&) = delete;
  OpenHashMap& operator=(const OpenHashMap&) = delete;
  OpenHashMap(OpenHashMap&&) = default;
  OpenHashMap& operator=(OpenHashMap&&) = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Pointer to the mapped value, or nullptr. Invalidated by any Insert/Erase (rehash or
  // tombstone reuse moves slots); copy what you need out before the next mutation.
  V* Find(const K& key) {
    size_t index = hash_(key) & mask_;
    for (;;) {
      switch (state_[index]) {
        case kEmpty:
          return nullptr;
        case kFull:
          if (slots_[index].key == key) {
            return &slots_[index].value;
          }
          break;
        case kTombstone:
          break;
      }
      index = (index + 1) & mask_;
    }
  }

  // Inserts (moving `value`) unless the key is already present. Returns {pointer to the
  // mapped value, inserted?} — on a duplicate, the pointer names the existing value and
  // `value` is left untouched.
  std::pair<V*, bool> Insert(const K& key, V&& value) {
    MaybeGrow();
    size_t index = hash_(key) & mask_;
    size_t target = kNoSlot;  // first tombstone seen: reuse it if the key is absent
    for (;;) {
      switch (state_[index]) {
        case kEmpty: {
          size_t slot = target != kNoSlot ? target : index;
          if (target == kNoSlot) {
            ++used_;  // consumed a genuinely empty slot (tombstone reuse keeps `used_`)
          }
          state_[slot] = kFull;
          slots_[slot].key = key;
          slots_[slot].value = std::move(value);
          ++size_;
          return {&slots_[slot].value, true};
        }
        case kFull:
          if (slots_[index].key == key) {
            return {&slots_[index].value, false};
          }
          break;
        case kTombstone:
          if (target == kNoSlot) {
            target = index;
          }
          break;
      }
      index = (index + 1) & mask_;
    }
  }

  // Removes the key, moving its value into `out` when given. False if absent.
  bool Erase(const K& key, V* out = nullptr) {
    size_t index = hash_(key) & mask_;
    for (;;) {
      switch (state_[index]) {
        case kEmpty:
          return false;
        case kFull:
          if (slots_[index].key == key) {
            if (out != nullptr) {
              *out = std::move(slots_[index].value);
            }
            slots_[index].value = V();  // release what the value owned
            state_[index] = kTombstone;
            --size_;
            return true;
          }
          break;
        case kTombstone:
          break;
      }
      index = (index + 1) & mask_;
    }
  }

  // Visits every (key, value) pair; fn(const K&, V&). Mutating the map during the walk is
  // undefined.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t i = 0; i <= mask_; ++i) {
      if (state_[i] == kFull) {
        fn(static_cast<const K&>(slots_[i].key), slots_[i].value);
      }
    }
  }

 private:
  enum State : uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };
  static constexpr size_t kInitialSlots = 16;
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  struct Slot {
    K key{};
    V value{};
  };

  // Grow when live + tombstoned slots pass 70%; rehashing drops tombstones, so a
  // churn-heavy shard (sessions opening and closing forever) stays bounded.
  void MaybeGrow() {
    if ((used_ + 1) * 10 >= (mask_ + 1) * 7) {
      Rehash(size_ * 10 >= (mask_ + 1) * 5 ? (mask_ + 1) * 2 : mask_ + 1);
    }
  }

  void Rehash(size_t new_slots) {
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<uint8_t> old_state = std::move(state_);
    slots_ = std::vector<Slot>(new_slots);  // not assign(): Slot is move-only when V is
    state_.assign(new_slots, kEmpty);
    mask_ = new_slots - 1;
    used_ = size_;
    for (size_t i = 0; i < old_state.size(); ++i) {
      if (old_state[i] != kFull) {
        continue;
      }
      size_t index = hash_(old_slots[i].key) & mask_;
      while (state_[index] == kFull) {
        index = (index + 1) & mask_;
      }
      state_[index] = kFull;
      slots_[index].key = std::move(old_slots[i].key);
      slots_[index].value = std::move(old_slots[i].value);
    }
  }

  std::vector<Slot> slots_;
  std::vector<uint8_t> state_;
  size_t mask_ = 0;
  size_t size_ = 0;  // live keys
  size_t used_ = 0;  // live + tombstoned slots (probe-chain length driver)
  Hash hash_;
};

}  // namespace simkit

#endif  // SRC_SIMKIT_SHARD_MAP_H_
