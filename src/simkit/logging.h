// Minimal leveled logger. Components log through this so examples and benches can raise or
// silence verbosity; tests keep it at kWarning to stay quiet.
#ifndef SRC_SIMKIT_LOGGING_H_
#define SRC_SIMKIT_LOGGING_H_

#include <sstream>
#include <string>

namespace simkit {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Global threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits to stderr with a level tag. Intended for use via the SIMKIT_LOG macro.
void LogMessage(LogLevel level, const std::string& message);

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace simkit

#define SIMKIT_LOG(level)                                  \
  if (static_cast<int>(level) < static_cast<int>(simkit::GetLogLevel())) { \
  } else                                                   \
    simkit::LogStream(level)

#endif  // SRC_SIMKIT_LOGGING_H_
