#include "src/simkit/affinity.h"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace simkit {

int OnlineCoreCount() {
  unsigned count = std::thread::hardware_concurrency();
  return count == 0 ? 1 : static_cast<int>(count);
}

bool PinCurrentThreadToCore(int core) {
#if defined(__linux__)
  if (core < 0) {
    return false;
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(core % OnlineCoreCount()), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

}  // namespace simkit
