// Simulation driver: owns the clock and the event queue and advances time by executing events
// in order. All substrates (kernel, devices, monitors) schedule against one Simulation.
// The stepping loop is defined inline: one simulated session executes tens of millions of
// events, so the pop-advance-invoke cycle must not pay cross-TU call overhead.
#ifndef SRC_SIMKIT_SIMULATION_H_
#define SRC_SIMKIT_SIMULATION_H_

#include <algorithm>

#include "src/simkit/event_queue.h"
#include "src/simkit/time.h"

namespace simkit {

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `cb` after `delay` nanoseconds (clamped to now for negative delays).
  EventId ScheduleAfter(SimDuration delay, EventCallback cb) {
    return ScheduleAt(now_ + std::max<SimDuration>(delay, 0), std::move(cb));
  }

  // Schedules `cb` at absolute time `when` (clamped to now if in the past).
  EventId ScheduleAt(SimTime when, EventCallback cb) {
    return queue_.ScheduleAt(std::max(when, now_), std::move(cb));
  }

  bool Cancel(EventId id) { return queue_.Cancel(id); }

  // Runs events until the queue empties or the clock passes `deadline`.
  // Events scheduled exactly at `deadline` are executed. Returns the final clock value.
  SimTime RunUntil(SimTime deadline) {
    SimTime when = 0;
    EventCallback cb;
    while (queue_.PopNextAtOrBefore(deadline, &when, &cb)) {
      // Advance the clock before the callback so handlers observe their own timestamp.
      now_ = when;
      cb();
      cb.Reset();
    }
    if (now_ < deadline) {
      now_ = deadline;
    }
    return now_;
  }

  // Runs events until the queue is empty.
  SimTime RunToCompletion() {
    while (Step()) {
    }
    return now_;
  }

  // Runs exactly one event if present; returns false when the queue is empty.
  bool Step() {
    SimTime when = 0;
    EventCallback cb;
    if (!queue_.PopNext(&when, &cb)) {
      return false;
    }
    // Advance the clock before the callback so handlers observe their own timestamp.
    now_ = when;
    cb();
    return true;
  }

  size_t PendingEvents() const { return queue_.Size(); }

  const EventQueue& queue() const { return queue_; }

 private:
  SimTime now_ = 0;
  EventQueue queue_;
};

}  // namespace simkit

#endif  // SRC_SIMKIT_SIMULATION_H_
