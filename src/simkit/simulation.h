// Simulation driver: owns the clock and the event queue and advances time by executing events
// in order. All substrates (kernel, devices, monitors) schedule against one Simulation.
#ifndef SRC_SIMKIT_SIMULATION_H_
#define SRC_SIMKIT_SIMULATION_H_

#include <functional>

#include "src/simkit/event_queue.h"
#include "src/simkit/time.h"

namespace simkit {

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `cb` after `delay` nanoseconds (clamped to now for negative delays).
  EventId ScheduleAfter(SimDuration delay, EventCallback cb);

  // Schedules `cb` at absolute time `when` (clamped to now if in the past).
  EventId ScheduleAt(SimTime when, EventCallback cb);

  bool Cancel(EventId id) { return queue_.Cancel(id); }

  // Runs events until the queue empties or the clock passes `deadline`.
  // Events scheduled exactly at `deadline` are executed. Returns the final clock value.
  SimTime RunUntil(SimTime deadline);

  // Runs events until the queue is empty.
  SimTime RunToCompletion();

  // Runs exactly one event if present; returns false when the queue is empty.
  bool Step();

  size_t PendingEvents() const { return queue_.Size(); }

 private:
  SimTime now_ = 0;
  EventQueue queue_;
};

}  // namespace simkit

#endif  // SRC_SIMKIT_SIMULATION_H_
