// Statistics helpers used by the correlation analysis (Section 3.3.1 of the paper) and by the
// benchmark harnesses: summary statistics, percentiles, Pearson correlation and histograms.
#ifndef SRC_SIMKIT_STATS_H_
#define SRC_SIMKIT_STATS_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace simkit {

// Incremental mean/variance (Welford). Cheap enough to keep per counter.
class RunningStat {
 public:
  void Add(double x);
  size_t Count() const { return count_; }
  double Mean() const { return count_ == 0 ? 0.0 : mean_; }
  double Variance() const;  // sample variance (n-1)
  double StdDev() const;
  double Min() const { return count_ == 0 ? 0.0 : min_; }
  double Max() const { return count_ == 0 ? 0.0 : max_; }
  double Sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

double Mean(std::span<const double> xs);
double StdDev(std::span<const double> xs);

// Linearly interpolated percentile, p in [0, 100]. Returns 0 for empty input.
double Percentile(std::vector<double> xs, double p);

// Pearson product-moment correlation coefficient between xs and ys (equal length).
// Returns 0 when either side has zero variance or the inputs are empty/mismatched.
// This is the statistic the paper uses to rank performance events (Table 3).
double PearsonCorrelation(std::span<const double> xs, std::span<const double> ys);

// Fixed-bin histogram for the figure benches.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);
  void Add(double x);
  size_t BinCount(size_t i) const { return counts_.at(i); }
  size_t Bins() const { return counts_.size(); }
  double BinLow(size_t i) const;
  size_t Total() const { return total_; }
  // Renders a one-line-per-bin ASCII bar chart, used by figure benches.
  std::string Render(size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

}  // namespace simkit

#endif  // SRC_SIMKIT_STATS_H_
