// A test-and-test-and-set spin lock for critical sections measured in nanoseconds — shard-map
// probes, counter bumps — where parking a thread (std::mutex) costs more than the section it
// guards. Spins with a CPU relax hint, then yields, so an oversubscribed machine (more
// runnable threads than cores) makes progress instead of burning a quantum.
//
// Satisfies BasicLockable (lock/unlock) and Lockable (try_lock), so std::lock_guard and
// std::unique_lock work. Not recursive, not fair; do not hold across anything that blocks.
#ifndef SRC_SIMKIT_SPINLOCK_H_
#define SRC_SIMKIT_SPINLOCK_H_

#include <atomic>
#include <thread>

namespace simkit {

// One CPU "relax" hint: tells the pipeline (and a hyper-sibling) that this is a spin-wait
// iteration. Cheap everywhere; a no-op on architectures without such a hint.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      // Contended: spin read-only (no cache-line ping-pong), escalating to yield so a
      // single-core host can run the holder.
      int spins = 0;
      while (locked_.load(std::memory_order_relaxed)) {
        if (++spins < 64) {
          CpuRelax();
        } else {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

  bool try_lock() { return !locked_.exchange(true, std::memory_order_acquire); }

  void unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace simkit

#endif  // SRC_SIMKIT_SPINLOCK_H_
