// Discrete-event queue: the heart of the simulator. Events are (time, sequence, callback)
// triples ordered by time with FIFO tie-breaking, so simultaneous events run in scheduling
// order and every run is deterministic. Events can be cancelled via the returned handle.
//
// Storage is a slab of pooled slots with per-slot generation counters:
//  - a slot holds the callback; the binary heap holds 24-byte POD (time, seq, slot, gen)
//    entries, so heap sift operations never move callbacks;
//  - an EventId encodes (generation << 32 | slot). Cancel is O(1): if the id's generation
//    matches the slot's, bump the generation and put the slot back on the free list. The
//    heap entry becomes stale and is skipped lazily when it reaches the top — there is no
//    cancelled-id side table to grow, and slab capacity is bounded by the high-water mark
//    of concurrently pending events;
//  - popped slots also bump the generation, so ids are never resurrected by slot reuse;
//  - when stale entries outnumber live events 4:1 the heap is compacted in place (amortized
//    O(1) per cancel), so even pathological schedule/cancel churn keeps heap memory
//    proportional to the live event count.
// The (time, seq) FIFO-tie determinism contract is unchanged: seq is assigned in ScheduleAt
// order exactly as before, and (when, seq) is a strict total order, so pop order is
// independent of heap layout.
#ifndef SRC_SIMKIT_EVENT_QUEUE_H_
#define SRC_SIMKIT_EVENT_QUEUE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/simkit/inline_callback.h"
#include "src/simkit/time.h"

namespace simkit {

using EventCallback = InlineCallback;
using EventId = uint64_t;

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `cb` to run at absolute time `when`. Returns an id usable with Cancel().
  EventId ScheduleAt(SimTime when, EventCallback cb) {
    uint32_t slot = AcquireSlot();
    Slot& s = slots_[slot];
    s.cb = std::move(cb);
    heap_.push_back(Entry{when, next_seq_++, slot, s.generation});
    std::push_heap(heap_.begin(), heap_.end(), EntryAfter{});
    ++live_count_;
    return MakeId(slot, s.generation);
  }

  // Cancels a pending event. Returns false if the event already ran or was cancelled.
  bool Cancel(EventId id) {
    uint32_t slot = static_cast<uint32_t>(id);
    uint32_t generation = static_cast<uint32_t>(id >> 32);
    if (slot >= slots_.size() || slots_[slot].generation != generation || generation == 0) {
      return false;
    }
    ReleaseSlot(slot);
    --live_count_;
    MaybeCompact();
    return true;
  }

  // True if no live (non-cancelled) events remain.
  bool Empty() const { return live_count_ == 0; }

  // Time of the earliest live event; kSimTimeNever when empty.
  SimTime NextTime() const {
    DropStaleHead();
    return heap_.empty() ? kSimTimeNever : heap_.front().when;
  }

  // Pops and runs the earliest live event; returns its time. Requires !Empty().
  // NOTE: callers that own a clock should use PopNext and advance the clock BEFORE invoking
  // the callback, so the callback observes the event's own timestamp.
  SimTime RunNext();

  // Pops the earliest live event without running it. Returns false when empty.
  bool PopNext(SimTime* when, EventCallback* cb) {
    DropStaleHead();
    if (heap_.empty()) {
      return false;
    }
    const Entry& top = heap_.front();
    *when = top.when;
    uint32_t slot = top.slot;
    *cb = std::move(slots_[slot].cb);
    ReleaseSlot(slot);
    PopHead();
    --live_count_;
    return true;
  }

  // Pops the earliest live event only if it is at or before `deadline` (single head check —
  // the driver's hot loop). Returns false when empty or the head is later.
  bool PopNextAtOrBefore(SimTime deadline, SimTime* when, EventCallback* cb) {
    DropStaleHead();
    if (heap_.empty() || heap_.front().when > deadline) {
      return false;
    }
    const Entry& top = heap_.front();
    *when = top.when;
    uint32_t slot = top.slot;
    *cb = std::move(slots_[slot].cb);
    ReleaseSlot(slot);
    PopHead();
    --live_count_;
    return true;
  }

  // Number of live events.
  size_t Size() const { return live_count_; }

  // Slab/heap introspection for the bounded-memory regression tests: the slot pool is bounded
  // by the high-water mark of *concurrently pending* events and the heap by a small multiple
  // of the live count — never by cancellation volume.
  size_t SlabCapacity() const { return slots_.size(); }
  size_t HeapSize() const { return heap_.size(); }

 private:
  struct Slot {
    EventCallback cb;
    // 0 is never a live generation, so an EventId of 0 is always invalid.
    uint32_t generation = 0;
    uint32_t next_free = kNoFreeSlot;
  };

  struct Entry {
    SimTime when;
    uint64_t seq;
    uint32_t slot;
    uint32_t generation;
  };

  // "a runs after b": orders the min-heap so the earliest (when, seq) sits at the front.
  struct EntryAfter {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  static constexpr uint32_t kNoFreeSlot = UINT32_MAX;
  // Compaction only kicks in past this heap size, so small queues never pay for it.
  static constexpr size_t kCompactMinHeap = 64;

  static EventId MakeId(uint32_t slot, uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) | slot;
  }

  uint32_t AcquireSlot() {
    if (free_head_ != kNoFreeSlot) {
      uint32_t slot = free_head_;
      free_head_ = slots_[slot].next_free;
      ++slots_[slot].generation;  // 0 -> 1 on first use; stale ids can never match again
      return slot;
    }
    slots_.emplace_back();
    slots_.back().generation = 1;
    return static_cast<uint32_t>(slots_.size() - 1);
  }

  // Invalidates the slot's ids, drops its callback and returns it to the free list. The
  // slot's heap entry (if still queued) becomes stale and is skipped lazily.
  void ReleaseSlot(uint32_t slot) {
    Slot& s = slots_[slot];
    ++s.generation;
    s.cb.Reset();
    s.next_free = free_head_;
    free_head_ = slot;
  }

  bool Stale(const Entry& entry) const {
    return slots_[entry.slot].generation != entry.generation;
  }

  void PopHead() const {
    std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
    heap_.pop_back();
  }

  // Pops heap entries whose slot generation moved on (cancelled events).
  void DropStaleHead() const {
    while (!heap_.empty() && Stale(heap_.front())) {
      PopHead();
    }
  }

  // Once stale entries dominate, filter them out and re-heapify. Each compaction removes
  // >= 3/4 of the heap, and only cancellations grow the stale share, so the cost is
  // amortized O(1) per cancel and heap memory stays proportional to live events.
  void MaybeCompact() {
    if (heap_.size() < kCompactMinHeap || heap_.size() <= 4 * live_count_) {
      return;
    }
    heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                               [this](const Entry& entry) { return Stale(entry); }),
                heap_.end());
    std::make_heap(heap_.begin(), heap_.end(), EntryAfter{});
  }

  mutable std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  uint32_t free_head_ = kNoFreeSlot;
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
};

}  // namespace simkit

#endif  // SRC_SIMKIT_EVENT_QUEUE_H_
