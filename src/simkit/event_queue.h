// Discrete-event queue: the heart of the simulator. Events are (time, sequence, callback)
// triples ordered by time with FIFO tie-breaking, so simultaneous events run in scheduling
// order and every run is deterministic. Events can be cancelled via the returned handle.
#ifndef SRC_SIMKIT_EVENT_QUEUE_H_
#define SRC_SIMKIT_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/simkit/time.h"

namespace simkit {

using EventCallback = std::function<void()>;
using EventId = uint64_t;

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `cb` to run at absolute time `when`. Returns an id usable with Cancel().
  EventId ScheduleAt(SimTime when, EventCallback cb);

  // Cancels a pending event. Returns false if the event already ran or was cancelled.
  bool Cancel(EventId id);

  // True if no live (non-cancelled) events remain.
  bool Empty() const;

  // Time of the earliest live event; kSimTimeNever when empty.
  SimTime NextTime() const;

  // Pops and runs the earliest live event; returns its time. Requires !Empty().
  // NOTE: callers that own a clock should use PopNext and advance the clock BEFORE invoking
  // the callback, so the callback observes the event's own timestamp.
  SimTime RunNext();

  // Pops the earliest live event without running it. Returns false when empty.
  bool PopNext(SimTime* when, EventCallback* cb);

  // Number of live events.
  size_t Size() const { return live_count_; }

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;
    EventId id;
    // Mutable: callbacks move out of the priority queue when run.
    mutable EventCallback cb;

    bool operator>(const Entry& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  void DropCancelledHead() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  size_t live_count_ = 0;
};

}  // namespace simkit

#endif  // SRC_SIMKIT_EVENT_QUEUE_H_
