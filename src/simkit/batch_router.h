// Batched shard routing: the producer-side half of a sharded ingest pipeline. A producer
// pushes items one at a time; the router buckets them by shard and hands the downstream sink
// whole batches, so the per-item cost is one hash + one append, and the expensive dispatch —
// a ring-buffer push, an atomic ticket, a wakeup — is paid once per `batch_size` items
// instead of once per item.
//
// A router is owned by exactly one producer thread (it does not synchronize); many producers
// each own a router feeding the same sinks. Per-shard item order is preserved: items of one
// shard leave in the order they were pushed, batch boundaries notwithstanding. Flush() hands
// off every partial batch (in shard-index order) and must be called before the producer
// hands control to whoever waits on the sink.
#ifndef SRC_SIMKIT_BATCH_ROUTER_H_
#define SRC_SIMKIT_BATCH_ROUTER_H_

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace simkit {

template <typename Item>
class BatchRouter {
 public:
  using Batch = std::vector<Item>;
  // shard_of(item) -> shard index in [0, shards); sink(shard, batch) takes ownership of the
  // batch. The sink runs on the producer's thread (typically a bounded-ring push that may
  // block for backpressure).
  BatchRouter(size_t shards, size_t batch_size, std::function<size_t(const Item&)> shard_of,
              std::function<void(size_t, Batch&&)> sink)
      : batch_size_(batch_size == 0 ? 1 : batch_size),
        shard_of_(std::move(shard_of)),
        sink_(std::move(sink)),
        pending_(shards) {
    for (Batch& batch : pending_) {
      batch.reserve(batch_size_);
    }
  }
  BatchRouter(const BatchRouter&) = delete;
  BatchRouter& operator=(const BatchRouter&) = delete;
  ~BatchRouter() { Flush(); }

  void Push(Item item) {
    size_t shard = shard_of_(item);
    Batch& batch = pending_[shard];
    batch.push_back(std::move(item));
    if (batch.size() >= batch_size_) {
      Dispatch(shard);
    }
  }

  // Hands every partial batch to the sink, in shard-index order.
  void Flush() {
    for (size_t shard = 0; shard < pending_.size(); ++shard) {
      if (!pending_[shard].empty()) {
        Dispatch(shard);
      }
    }
  }

 private:
  void Dispatch(size_t shard) {
    Batch full = std::move(pending_[shard]);
    pending_[shard] = Batch();
    pending_[shard].reserve(batch_size_);
    sink_(shard, std::move(full));
  }

  size_t batch_size_;
  std::function<size_t(const Item&)> shard_of_;
  std::function<void(size_t, Batch&&)> sink_;
  std::vector<Batch> pending_;
};

}  // namespace simkit

#endif  // SRC_SIMKIT_BATCH_ROUTER_H_
