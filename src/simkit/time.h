// Simulated time. All simulation components express time as SimTime, a signed 64-bit count of
// nanoseconds since simulation start. Helpers convert to/from the human units used in the paper
// (milliseconds for response times, nanoseconds for task-clock counters).
#ifndef SRC_SIMKIT_TIME_H_
#define SRC_SIMKIT_TIME_H_

#include <cstdint>

namespace simkit {

// Nanoseconds since simulation start.
using SimTime = int64_t;

// A duration, also in nanoseconds. Kept as a distinct alias for readability of interfaces.
using SimDuration = int64_t;

inline constexpr SimTime kSimTimeNever = INT64_MAX;

constexpr SimDuration Nanoseconds(int64_t n) { return n; }
constexpr SimDuration Microseconds(int64_t us) { return us * 1000; }
constexpr SimDuration Milliseconds(int64_t ms) { return ms * 1000 * 1000; }
constexpr SimDuration Seconds(int64_t s) { return s * 1000 * 1000 * 1000; }

constexpr double ToMilliseconds(SimDuration d) { return static_cast<double>(d) / 1e6; }
constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / 1e9; }

// The minimum human-perceivable delay used throughout the paper (Section 1, footnote 1).
inline constexpr SimDuration kPerceivableDelay = Milliseconds(100);

}  // namespace simkit

#endif  // SRC_SIMKIT_TIME_H_
