// Small-buffer move-only callable for the event queue's hot path. std::function heap-allocates
// any capture list larger than two pointers and pays a virtual-ish dispatch through _M_manager;
// the simulator schedules tens of millions of events per run whose captures are all a handful
// of scalars, so InlineCallback stores them in a fixed in-object buffer with direct
// function-pointer dispatch. Oversized callables still work via a transparent heap fallback,
// keeping the type a drop-in replacement for std::function<void()> as an event callback.
#ifndef SRC_SIMKIT_INLINE_CALLBACK_H_
#define SRC_SIMKIT_INLINE_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace simkit {

class InlineCallback {
 public:
  // Big enough for every scheduler/app lambda in the tree (this + a few ids); measured, not
  // guessed: the largest hot-path capture today is 24 bytes.
  static constexpr size_t kInlineBytes = 48;

  InlineCallback() = default;

  template <typename F, typename = std::enable_if_t<
                            !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                            std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    Emplace(std::forward<F>(f));
  }

  InlineCallback(InlineCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { Reset(); }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-construct into dst from src, then destroy src's object.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename F>
  struct InlineOps {
    static void Invoke(void* storage) { (*std::launder(static_cast<F*>(storage)))(); }
    static void Relocate(void* dst, void* src) {
      F* from = std::launder(static_cast<F*>(src));
      ::new (dst) F(std::move(*from));
      from->~F();
    }
    static void Destroy(void* storage) { std::launder(static_cast<F*>(storage))->~F(); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  template <typename F>
  struct HeapOps {
    static F*& Ptr(void* storage) { return *std::launder(static_cast<F**>(storage)); }
    static void Invoke(void* storage) { (*Ptr(storage))(); }
    static void Relocate(void* dst, void* src) { ::new (dst) F*(Ptr(src)); }
    static void Destroy(void* storage) { delete Ptr(storage); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  template <typename F>
  void Emplace(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::kOps;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapOps<Fn>::kOps;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace simkit

#endif  // SRC_SIMKIT_INLINE_CALLBACK_H_
