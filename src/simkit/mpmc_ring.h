// A bounded multi-producer multi-consumer ring buffer (Dmitry Vyukov's array-based MPMC
// queue): each cell carries a sequence number that encodes, relative to the head/tail
// tickets, whether the cell is free to write or ready to read. Producers and consumers claim
// tickets with one CAS each and never touch a lock; the only waiting is the bounded-capacity
// backpressure of Push on a full ring.
//
// Ordering guarantees (what the detector service's determinism argument leans on):
//  - Per-producer FIFO: two pushes by the same thread are assigned increasing tickets, so
//    every consumer that sees both sees them in push order.
//  - Global ticket order: items are popped in ticket order, so with a single consumer the
//    interleaving of all producers is a total order consistent with each producer's FIFO.
// There is no cross-producer ordering promise beyond that — which is exactly the freedom a
// shard worker exploits: sessions are single-producer, so per-session record order survives
// any interleaving of other sessions' producers.
//
// Capacity is rounded up to a power of two (minimum 2). T must be default-constructible and
// move-assignable; cells hold T by value.
#ifndef SRC_SIMKIT_MPMC_RING_H_
#define SRC_SIMKIT_MPMC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>

#include "src/simkit/spinlock.h"

namespace simkit {

template <typename T>
class MpmcRing {
 public:
  explicit MpmcRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) {
      cap <<= 1;
    }
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }
  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  size_t capacity() const { return mask_ + 1; }

  // Attempts to enqueue; false when the ring is full. The value is moved from only on
  // success.
  bool TryPush(T& value) {
    size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      size_t seq = cell.seq.load(std::memory_order_acquire);
      intptr_t dif = static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        // Cell is free for ticket `pos`; claim the ticket.
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // the cell still holds an unconsumed item from a lap ago: full
      } else {
        pos = tail_.load(std::memory_order_relaxed);  // lost the race; reload
      }
    }
  }

  // Enqueues, waiting out a full ring (bounded-queue backpressure). Spins briefly, then
  // yields — the consumers own the CPU it is waiting for.
  void Push(T value) {
    int spins = 0;
    while (!TryPush(value)) {
      if (++spins < 64) {
        CpuRelax();
      } else {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }

  // Attempts to dequeue into `out`; false when the ring is empty.
  bool TryPop(T& out) {
    size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      size_t seq = cell.seq.load(std::memory_order_acquire);
      intptr_t dif = static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          out = std::move(cell.value);
          // Mark the cell free for the producer one lap ahead.
          cell.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // empty (or the producer that claimed this ticket hasn't published)
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

 private:
  // Sequence and value share a cell; cells are padded apart by the array stride of T. The
  // hot head/tail tickets get their own cache lines so producers and consumers do not
  // false-share.
  struct Cell {
    std::atomic<size_t> seq;
    T value;
  };

  std::unique_ptr<Cell[]> cells_;
  size_t mask_ = 0;
  alignas(64) std::atomic<size_t> tail_{0};  // next push ticket
  alignas(64) std::atomic<size_t> head_{0};  // next pop ticket
};

}  // namespace simkit

#endif  // SRC_SIMKIT_MPMC_RING_H_
