// Best-effort core affinity for pinned shard workers. Pinning a worker to one core keeps its
// shards' session arenas hot in that core's private cache and stops the scheduler migrating
// the thread mid-drain; on machines (or CI runners) without an affinity API — or with fewer
// cores than workers — everything degrades gracefully to "not pinned".
#ifndef SRC_SIMKIT_AFFINITY_H_
#define SRC_SIMKIT_AFFINITY_H_

namespace simkit {

// Number of cores the calling thread may run on (hardware_concurrency, floored at 1).
int OnlineCoreCount();

// Pins the calling thread to `core` (taken modulo OnlineCoreCount()). Returns true when the
// pin took effect; false when the platform has no affinity API or the call failed. Callers
// must treat pinning as an optimization, never a correctness requirement.
bool PinCurrentThreadToCore(int core);

}  // namespace simkit

#endif  // SRC_SIMKIT_AFFINITY_H_
