#include "src/simkit/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

namespace simkit {

int32_t ThreadPool::DefaultJobCount() {
  if (const char* env = std::getenv("HANGDOCTOR_JOBS"); env != nullptr && *env != '\0') {
    char* end = nullptr;
    long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value > 0) {
      return static_cast<int32_t>(std::min(value, 1024L));
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int32_t>(hw);
}

ThreadPool::ThreadPool(int32_t threads) {
  if (threads <= 0) {
    threads = DefaultJobCount();
  }
  queues_.reserve(static_cast<size_t>(threads));
  for (int32_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(static_cast<size_t>(threads));
  for (int32_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i]() { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t target;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
    target = static_cast<size_t>(next_queue_++ % queues_.size());
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this]() { return pending_ == 0; });
}

void ThreadPool::ParallelFor(int64_t n, const std::function<void(int64_t)>& body) {
  for (int64_t i = 0; i < n; ++i) {
    Submit([&body, i]() { body(i); });
  }
  Wait();
}

std::function<void()> ThreadPool::FindWork(size_t self) {
  // Own queue first, newest task (LIFO keeps the working set warm)...
  {
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      std::function<void()> task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return task;
    }
  }
  // ...then steal the oldest task from the other workers (FIFO spreads the big jobs).
  for (size_t offset = 1; offset < queues_.size(); ++offset) {
    WorkerQueue& victim = *queues_[(self + offset) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      std::function<void()> task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return task;
    }
  }
  return nullptr;
}

void ThreadPool::WorkerLoop(size_t self) {
  for (;;) {
    std::function<void()> task = FindWork(self);
    if (task == nullptr) {
      std::unique_lock<std::mutex> lock(mutex_);
      if (shutdown_) {
        return;
      }
      // Re-check under the lock via a short timed wait: a task may have been enqueued
      // between the failed FindWork and this wait.
      work_available_.wait_for(lock, std::chrono::milliseconds(10));
      continue;
    }
    try {
      task();
    } catch (...) {
      // Tasks own their error handling; a stray exception must not kill the worker.
    }
    bool drained;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      drained = --pending_ == 0;
    }
    if (drained) {
      all_done_.notify_all();
    }
  }
}

}  // namespace simkit
