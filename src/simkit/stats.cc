#include "src/simkit/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace simkit {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::Variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::StdDev() const { return std::sqrt(Variance()); }

double Mean(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (double x : xs) {
    s += x;
  }
  return s / static_cast<double>(xs.size());
}

double StdDev(std::span<const double> xs) {
  if (xs.size() < 2) {
    return 0.0;
  }
  double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) {
    s += (x - m) * (x - m);
  }
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) {
    return 0.0;
  }
  std::sort(xs.begin(), xs.end());
  p = std::clamp(p, 0.0, 100.0);
  double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

double PearsonCorrelation(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    return 0.0;
  }
  double mx = Mean(xs);
  double my = Mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    double dx = xs[i] - mx;
    double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::Add(double x) {
  ++total_;
  double span = hi_ - lo_;
  if (span <= 0.0) {
    ++counts_[0];
    return;
  }
  double frac = (x - lo_) / span;
  auto idx = static_cast<int64_t>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp<int64_t>(idx, 0, static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(idx)];
}

double Histogram::BinLow(size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

std::string Histogram::Render(size_t max_width) const {
  size_t peak = 1;
  for (size_t c : counts_) {
    peak = std::max(peak, c);
  }
  std::ostringstream out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    size_t width = counts_[i] * max_width / peak;
    out << "[" << BinLow(i) << ", " << BinLow(i + 1) << ") ";
    for (size_t w = 0; w < width; ++w) {
      out << '#';
    }
    out << " " << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace simkit
