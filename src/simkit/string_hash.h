// Transparent string hashing for unordered containers, so lookups by std::string_view or
// const char* never materialize a temporary std::string. Use as
//   std::unordered_map<std::string, V, simkit::StringHash, std::equal_to<>>
#ifndef SRC_SIMKIT_STRING_HASH_H_
#define SRC_SIMKIT_STRING_HASH_H_

#include <string>
#include <string_view>

namespace simkit {

struct StringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  size_t operator()(const std::string& s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  size_t operator()(const char* s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

}  // namespace simkit

#endif  // SRC_SIMKIT_STRING_HASH_H_
