#include "src/simkit/rng.h"

namespace simkit {

int64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) {
    return 0;
  }
  if (mean < 30.0) {
    // Knuth inversion.
    double l = std::exp(-mean);
    int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for count noise.
  double v = Normal(mean, std::sqrt(mean));
  return v < 0.0 ? 0 : static_cast<int64_t>(v + 0.5);
}

}  // namespace simkit
