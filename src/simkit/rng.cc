#include "src/simkit/rng.h"

#include <cmath>

namespace simkit {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng::Rng(uint64_t seed, uint64_t stream) : seed_(seed), stream_(stream) {
  state_ = SplitMix64(seed ^ SplitMix64(stream));
  inc_ = (SplitMix64(stream ^ 0xda3e39cb94b95bdbULL) << 1u) | 1u;
  // Warm up per the PCG reference implementation.
  NextU32();
}

uint32_t Rng::NextU32() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint64_t Rng::NextU64() {
  return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (lo >= hi) {
    return lo;
  }
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  // Rejection sampling to remove modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v = NextU64();
  while (v >= limit) {
    v = NextU64();
  }
  return lo + static_cast<int64_t>(v % range);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) {
    u1 = NextDouble();
  }
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

double Rng::Exponential(double mean) {
  double u = NextDouble();
  while (u <= 1e-300) {
    u = NextDouble();
  }
  return -mean * std::log(u);
}

int64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) {
    return 0;
  }
  if (mean < 30.0) {
    // Knuth inversion.
    double l = std::exp(-mean);
    int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for count noise.
  double v = Normal(mean, std::sqrt(mean));
  return v < 0.0 ? 0 : static_cast<int64_t>(v + 0.5);
}

Rng Rng::Fork(uint64_t tag) {
  return Rng(SplitMix64(seed_ ^ SplitMix64(tag)), SplitMix64(stream_ + 0x632be59bd9b4e019ULL + tag));
}

}  // namespace simkit
