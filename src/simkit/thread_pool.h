// A small work-stealing thread pool for fanning out independent simulation jobs.
//
// Each worker owns a deque: it pops its own work LIFO (cache-warm) and steals FIFO from
// victims when empty, so a handful of long jobs spread across cores without a central
// bottleneck. The pool runs host OS threads and is entirely outside simulated time — the
// determinism story is that callers hand it *independent* jobs (each with its own Rng
// stream) and fold results in submission order, so outputs are bit-identical at any worker
// count or scheduling order. See src/workload/fleet.h for the canonical consumer.
#ifndef SRC_SIMKIT_THREAD_POOL_H_
#define SRC_SIMKIT_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace simkit {

class ThreadPool {
 public:
  // `threads` <= 0 selects DefaultJobCount().
  explicit ThreadPool(int32_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks must not let exceptions escape (the pool swallows them to stay
  // alive; callers that care capture errors inside the task — see workload::RunFleet).
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void Wait();

  // Submits `body(0) .. body(n-1)` and waits for all of them.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& body);

  int32_t thread_count() const { return static_cast<int32_t>(workers_.size()); }

  // The HANGDOCTOR_JOBS environment variable when set to a positive integer, otherwise
  // hardware_concurrency (never less than 1). CI pins this to keep runs reproducible.
  static int32_t DefaultJobCount();

 private:
  // One per worker thread: a mutex-guarded deque. Owner pops back, thieves pop front.
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t self);
  // Pops from own queue (back) or steals from a victim (front). Empty when none found.
  std::function<void()> FindWork(size_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  int64_t pending_ = 0;     // submitted but not yet finished
  uint64_t next_queue_ = 0; // round-robin submission target
  bool shutdown_ = false;
};

}  // namespace simkit

#endif  // SRC_SIMKIT_THREAD_POOL_H_
