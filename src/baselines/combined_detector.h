// UT+TI combination (Section 4.1): resource utilizations are sampled only *during* soft hangs
// (the response time must exceed 100 ms first), and stack traces are collected only once a
// utilization threshold is also violated. UTH+TI is the cheapest baseline but inherits UTH's
// misses; UTL+TI prunes some of UTL's false positives but not the UI operations that are both
// slow and busy.
#ifndef SRC_BASELINES_COMBINED_DETECTOR_H_
#define SRC_BASELINES_COMBINED_DETECTOR_H_

#include <unordered_map>

#include "src/baselines/utilization_detector.h"

namespace baselines {

struct CombinedDetectorConfig {
  UtilizationThresholds thresholds;
  simkit::SimDuration timeout = simkit::kPerceivableDelay;
  simkit::SimDuration period = simkit::Milliseconds(100);
  simkit::SimDuration sample_interval = simkit::Milliseconds(20);
  hangdoctor::TraceAnalyzerConfig analyzer;
  hangdoctor::MonitorCosts costs;
  std::string label = "UT+TI";
};

class CombinedDetector : public Detector {
 public:
  CombinedDetector(droidsim::Phone* phone, droidsim::App* app, CombinedDetectorConfig config);
  ~CombinedDetector() override;

  std::string name() const override { return config_.label; }
  const std::vector<DetectionOutcome>& outcomes() const override { return outcomes_; }
  const hangdoctor::OverheadMeter& overhead() const override { return overhead_; }

  // droidsim::AppObserver:
  void OnInputEventStart(droidsim::App& app, const droidsim::ActionExecution& execution,
                         int32_t event_index) override;
  void OnInputEventEnd(droidsim::App& app, const droidsim::ActionExecution& execution,
                       int32_t event_index) override;
  void OnActionQuiesced(droidsim::App& app, const droidsim::ActionExecution& execution) override;

 private:
  struct LiveExecution {
    std::vector<bool> event_open;
    bool flagged = false;
    std::vector<droidsim::StackTrace> traces;
  };

  // Samples the main thread's utilization while (execution_id, event_index) is still hanging.
  void HangTick(int64_t execution_id, int32_t event_index);

  droidsim::Phone* phone_;
  droidsim::App* app_;
  CombinedDetectorConfig config_;
  hangdoctor::TraceAnalyzer analyzer_;
  hangdoctor::OverheadMeter overhead_;
  droidsim::StackSampler sampler_;
  std::unordered_map<int64_t, LiveExecution> live_;
  std::vector<DetectionOutcome> outcomes_;
  kernelsim::ThreadStats window_stats_;
  simkit::SimTime window_start_ = 0;
  simkit::EventId pending_tick_ = 0;
};

}  // namespace baselines

#endif  // SRC_BASELINES_COMBINED_DETECTOR_H_
