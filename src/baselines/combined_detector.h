// UT+TI combination (Section 4.1): resource utilizations are sampled only *during* soft hangs
// (the response time must exceed 100 ms first), and stack traces are collected only once a
// utilization threshold is also violated. UTH+TI is the cheapest baseline but inherits UTH's
// misses; UTL+TI prunes some of UTL's false positives but not the UI operations that are both
// slow and busy.
//
// This class is the droidsim host; detection logic lives in CombinedCore (detector_cores.h).
#ifndef SRC_BASELINES_COMBINED_DETECTOR_H_
#define SRC_BASELINES_COMBINED_DETECTOR_H_

#include <unordered_map>
#include <vector>

#include "src/baselines/detector.h"
#include "src/droidsim/phone.h"
#include "src/droidsim/stack_sampler.h"

namespace baselines {

class CombinedDetector : public Detector {
 public:
  CombinedDetector(droidsim::Phone* phone, droidsim::App* app, CombinedDetectorConfig config);
  ~CombinedDetector() override;

  std::string name() const override { return core_.config().label; }
  const std::vector<DetectionOutcome>& outcomes() const override { return core_.outcomes(); }
  const hangdoctor::OverheadMeter& overhead() const override { return core_.overhead(); }

  // droidsim::AppObserver:
  void OnInputEventStart(droidsim::App& app, const droidsim::ActionExecution& execution,
                         int32_t event_index) override;
  void OnInputEventEnd(droidsim::App& app, const droidsim::ActionExecution& execution,
                       int32_t event_index) override;
  void OnActionQuiesced(droidsim::App& app, const droidsim::ActionExecution& execution) override;

 private:
  // Samples the main thread's utilization while (execution_id, event_index) is still hanging.
  void HangTick(int64_t execution_id, int32_t event_index);

  droidsim::Phone* phone_;
  droidsim::App* app_;
  CombinedCore core_;
  droidsim::StackSampler sampler_;
  std::unordered_map<int64_t, std::vector<bool>> event_open_;
  kernelsim::ThreadStats window_stats_;
  simkit::SimTime window_start_ = 0;
  simkit::EventId pending_tick_ = 0;
};

}  // namespace baselines

#endif  // SRC_BASELINES_COMBINED_DETECTOR_H_
